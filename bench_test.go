package fattree_test

// One benchmark per table/figure of the paper's evaluation, plus
// microbenchmarks of the load-bearing inner loops. The per-figure benches
// run the experiment harness at reduced scale so `go test -bench=.`
// finishes in minutes; cmd/ftbench reproduces the full paper scale.

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"fattree/internal/cps"
	"fattree/internal/des"
	"fattree/internal/exp"
	"fattree/internal/fabric"
	"fattree/internal/fmgr"
	"fattree/internal/hsd"
	"fattree/internal/invariant"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/obs"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/sched"
	"fattree/internal/topo"
	"fattree/internal/wire"
)

func render(b *testing.B, t *exp.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if b.N == 1 {
		// Print the regenerated artifact once per bench run.
		b.Log("\n" + renderString(b, t))
	}
}

func renderString(b *testing.B, t *exp.Table) string {
	b.Helper()
	var sb stringWriter
	if err := t.Render(&sb); err != nil {
		b.Fatal(err)
	}
	return string(sb)
}

type stringWriter []byte

func (s *stringWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

var _ io.Writer = (*stringWriter)(nil)

// BenchmarkFigure1 regenerates Figure 1 (routing-aware vs random order,
// dst = src+4 mod 16).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Figure1(5)
		render(b, t, err)
	}
}

// BenchmarkFigure2 regenerates Figure 2 (normalized bandwidth vs message
// size for Shift and Recursive-Doubling under random order).
func BenchmarkFigure2(b *testing.B) {
	o := exp.DefaultFigure2Opts()
	o.Cluster = topo.Cluster324
	o.Sizes = []int64{8 << 10, 64 << 10, 512 << 10}
	o.ShiftStages = 4
	for i := 0; i < b.N; i++ {
		t, err := exp.Figure2(o)
		render(b, t, err)
	}
}

// BenchmarkFigure3 regenerates Figure 3 (average max HSD vs cluster size
// for the six collectives under 25 random orders).
func BenchmarkFigure3(b *testing.B) {
	o := exp.Figure3Opts{
		Clusters:    []topo.PGFT{topo.Cluster128, topo.Cluster324},
		Seeds:       10,
		ShiftStride: 5,
	}
	for i := 0; i < b.N; i++ {
		t, err := exp.Figure3(o)
		render(b, t, err)
	}
}

// BenchmarkTable3 regenerates Table 3 (proposed routing+order HSD = 1 on
// full and partial trees; random-ranking comparison column).
func BenchmarkTable3(b *testing.B) {
	o := exp.Table3Opts{
		Cases: []exp.Table3Case{
			{Name: "RLFT2-128 full", Cluster: topo.Cluster128, Drop: 0, Seed: 1},
			{Name: "RLFT2-128 Cont.-8", Cluster: topo.Cluster128, Drop: 8, Seed: 1},
			{Name: "RLFT2-324 full", Cluster: topo.Cluster324, Drop: 0, Seed: 1},
			{Name: "RLFT2-324 Cont.-18", Cluster: topo.Cluster324, Drop: 18, Seed: 1},
		},
		RandomSeeds: 3,
		ShiftStride: 3,
	}
	for i := 0; i < b.N; i++ {
		t, err := exp.Table3(o)
		render(b, t, err)
	}
}

// BenchmarkRingAdversarial regenerates the Section II adversarial-order
// measurement (the 7.1% bandwidth case).
func BenchmarkRingAdversarial(b *testing.B) {
	o := exp.RingOpts{Cluster: topo.Cluster324, Bytes: 64 << 10, Config: netsim.DefaultConfig()}
	for i := 0; i < b.N; i++ {
		t, err := exp.RingAdversarial(o)
		render(b, t, err)
	}
}

// BenchmarkContentionFree regenerates the Section VII verification (full
// bandwidth, cut-through latency under the proposed configuration).
func BenchmarkContentionFree(b *testing.B) {
	o := exp.CFOpts{Cluster: topo.Cluster324, Bytes: 64 << 10, ShiftStages: 4, Config: netsim.DefaultConfig()}
	for i := 0; i < b.N; i++ {
		t, err := exp.ContentionFree(o)
		render(b, t, err)
	}
}

// BenchmarkWrapAblation regenerates the partial-tree wrap-around study.
func BenchmarkWrapAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.WrapAblation(topo.Cluster128, 2)
		render(b, t, err)
	}
}

// BenchmarkRoutingAblation regenerates the routing-choice ablation.
func BenchmarkRoutingAblation(b *testing.B) {
	g := topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2})
	for i := 0; i < b.N; i++ {
		t, err := exp.RoutingAblation(g)
		render(b, t, err)
	}
}

// BenchmarkBidirAblation regenerates the flat-vs-topology-aware
// recursive-doubling ablation.
func BenchmarkBidirAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.BidirAblation(topo.Cluster324)
		render(b, t, err)
	}
}

// --- Microbenchmarks of the inner loops ---

// BenchmarkBuildTopology1944 measures graph construction of the paper's
// 1944-node cluster.
func BenchmarkBuildTopology1944(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := topo.Build(topo.Cluster1944); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDModK1944 measures forwarding-table computation at paper
// scale (270 switches x 1944 destinations).
func BenchmarkDModK1944(b *testing.B) {
	t := topo.MustBuild(topo.Cluster1944)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.DModK(t)
	}
}

// BenchmarkHSDShiftStage1944 measures one analytic stage: 1944 flows
// traced over 6 hops each.
func BenchmarkHSDShiftStage1944(b *testing.B) {
	t := topo.MustBuild(topo.Cluster1944)
	lft := route.DModK(t)
	a := hsd.NewAnalyzer(lft)
	n := t.NumHosts()
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{i, (i + 5) % n}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Stage(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimRingStage324 measures the packet simulator on one full
// Ring stage (324 messages of 64 KiB, ~65k packets).
func BenchmarkNetsimRingStage324(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(t)
	nw, err := netsim.New(lft, netsim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := t.NumHosts()
	msgs := make([]netsim.Message, n)
	for i := range msgs {
		msgs[i] = netsim.Message{Src: i, Dst: (i + 1) % n, Bytes: 64 << 10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Run(msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPSShiftStage measures stage materialization of the Shift.
func BenchmarkCPSShiftStage(b *testing.B) {
	s := cps.Shift(1944)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Stage(i % s.NumStages())
	}
}

// BenchmarkTopoAwareBuild1944 measures construction of the Section VI
// sequence at paper scale.
func BenchmarkTopoAwareBuild1944(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cps.TopoAwareRecursiveDoubling(topo.Cluster1944.M); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderingAdversarial measures the adversarial-order
// construction.
func BenchmarkOrderingAdversarial(b *testing.B) {
	t := topo.MustBuild(topo.Cluster1944)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := order.Adversarial(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJobAnalyzeRecDbl measures a full analytic run of recursive
// doubling on the 324-node cluster.
func BenchmarkJobAnalyzeRecDbl(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	job, err := mpi.NewContentionFreeJob(t, nil)
	if err != nil {
		b.Fatal(err)
	}
	seq := cps.RecursiveDoubling(t.NumHosts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := job.Analyze(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiJob regenerates the multi-job composition experiment.
func BenchmarkMultiJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.MultiJob(topo.Cluster324)
		render(b, t, err)
	}
}

// BenchmarkFaultResilience regenerates the degraded-fabric study.
func BenchmarkFaultResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.FaultResilience(topo.Cluster128, 2)
		render(b, t, err)
	}
}

// BenchmarkBufferAblation regenerates the input-buffer depth study.
func BenchmarkBufferAblation(b *testing.B) {
	o := exp.BufferOpts{
		Cluster: topo.Cluster128,
		Bytes:   64 << 10,
		Buffers: []int{1, 8, 32},
		Stages:  3,
		Seed:    1,
	}
	for i := 0; i < b.N; i++ {
		t, err := exp.BufferAblation(o)
		render(b, t, err)
	}
}

// BenchmarkFabricReroute measures fault-aware table recomputation.
func BenchmarkFabricReroute(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := fabric.NewFaultSet(t)
		if err := fs.FailRandomFabricLinks(4, int64(i)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := fs.RouteAround(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedAllocFree measures the allocator's steady-state churn.
func BenchmarkSchedAllocFree(b *testing.B) {
	t := topo.MustBuild(topo.Cluster1944)
	a, err := sched.New(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j1, err := a.Alloc(648)
		if err != nil {
			b.Fatal(err)
		}
		j2, err := a.Alloc(324)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(j1.ID); err != nil {
			b.Fatal(err)
		}
		if err := a.Free(j2.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveComparison regenerates the adaptive-vs-proactive
// routing comparison.
func BenchmarkAdaptiveComparison(b *testing.B) {
	o := exp.AdaptiveOpts{Cluster: topo.Cluster128, Bytes: 64 << 10, Seed: 1}
	for i := 0; i < b.N; i++ {
		t, err := exp.AdaptiveComparison(o)
		render(b, t, err)
	}
}

// BenchmarkJitterSensitivity regenerates the OS-jitter study.
func BenchmarkJitterSensitivity(b *testing.B) {
	o := exp.JitterOpts{
		Cluster: topo.Cluster128,
		Bytes:   64 << 10,
		Jitters: []des.Time{0, 20 * des.Microsecond, 100 * des.Microsecond},
		Stages:  3,
		Seed:    1,
	}
	for i := 0; i < b.N; i++ {
		t, err := exp.JitterSensitivity(o)
		render(b, t, err)
	}
}

// BenchmarkHSDAnalyzeSequential measures the single-threaded full-Shift
// analysis on the 324-node cluster.
func BenchmarkHSDAnalyzeSequential(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(t)
	o := order.Topology(t.NumHosts(), nil)
	seq := cps.Shift(t.NumHosts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hsd.Analyze(lft, o, seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHSDAnalyzeParallel measures the worker-pool variant on the
// same job; compare against BenchmarkHSDAnalyzeSequential for the
// speedup.
func BenchmarkHSDAnalyzeParallel(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(t)
	o := order.Topology(t.NumHosts(), nil)
	seq := cps.Shift(t.NumHosts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hsd.AnalyzeParallel(lft, o, seq, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaperAblation regenerates the oversubscription study.
func BenchmarkTaperAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.TaperAblation()
		render(b, t, err)
	}
}

// BenchmarkPatternSweep regenerates the synthetic-pattern sweep.
func BenchmarkPatternSweep(b *testing.B) {
	o := exp.PatternOpts{Cluster: topo.Cluster128, Bytes: 32 << 10, Seed: 1}
	for i := 0; i < b.N; i++ {
		t, err := exp.PatternSweep(o)
		render(b, t, err)
	}
}

// BenchmarkCollectiveLatency regenerates the schedule-latency study.
func BenchmarkCollectiveLatency(b *testing.B) {
	o := exp.LatencyOpts{Cluster: topo.Cluster324, Sizes: []int64{2 << 10, 128 << 10}}
	for i := 0; i < b.N; i++ {
		t, err := exp.CollectiveLatency(o)
		render(b, t, err)
	}
}

// BenchmarkSemanticsComparison regenerates the progression-semantics
// study.
func BenchmarkSemanticsComparison(b *testing.B) {
	o := exp.SemanticsOpts{Cluster: topo.Cluster128, Bytes: 32 << 10, Seed: 1}
	for i := 0; i < b.N; i++ {
		t, err := exp.SemanticsComparison(o)
		render(b, t, err)
	}
}

// BenchmarkPlacementComparison regenerates the placement-policy study.
func BenchmarkPlacementComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.PlacementComparison(topo.Cluster128)
		render(b, t, err)
	}
}

// BenchmarkSchedulerPolicies regenerates the admission-policy study.
func BenchmarkSchedulerPolicies(b *testing.B) {
	o := exp.DefaultQueueOpts()
	o.Base.Jobs = 150
	for i := 0; i < b.N; i++ {
		t, err := exp.SchedulerPolicies(o)
		render(b, t, err)
	}
}

// BenchmarkNetsimDependentRecDbl measures the dependency-gated simulator
// on a full recursive-doubling schedule.
func BenchmarkNetsimDependentRecDbl(b *testing.B) {
	t := topo.MustBuild(topo.Cluster128)
	job, err := mpi.NewContentionFreeJob(t, nil)
	if err != nil {
		b.Fatal(err)
	}
	seq := cps.RecursiveDoubling(t.NumHosts())
	cfg := netsim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := job.SimulateMode(seq, 32<<10, mpi.Dependent, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledVsWalk1944 runs the same HSD workload — a
// stride-sampled Shift over the 1944-host RLFT, the
// BenchmarkHSDAnalyzeSequential-equivalent job at paper scale — once
// through per-pair table walks and once through the compiled path cache.
// The acceptance bar for the cache is >=3x on the "compiled" variant.
// The "compile" sub-benchmark prices the one-time arena build that the
// replays amortize.
func BenchmarkCompiledVsWalk1944(b *testing.B) {
	t := topo.MustBuild(topo.Cluster1944)
	n := t.NumHosts()
	lft := route.DModK(t)
	o := order.Topology(n, nil)
	full := cps.Shift(n)
	stages := make([]int, 0, full.NumStages()/9+1)
	for s := 0; s < full.NumStages(); s += 9 {
		stages = append(stages, s)
	}
	seq, err := mpi.SampleStages(full, stages)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsd.Analyze(lft, o, seq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := route.CompileParallel(route.Router(lft), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	c, err := route.Compile(lft)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsd.Analyze(c, o, seq); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNetsimObsOverhead prices the observability tax on the
// simulator hot path with the same Ring stage as
// BenchmarkNetsimRingStage324: "off" is the nil-check-only baseline
// (must stay within noise of that benchmark), "metrics" attaches the
// registry, and "full" adds probes and the Chrome tracer writing to
// discard sinks.
func BenchmarkNetsimObsOverhead(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(t)
	n := t.NumHosts()
	msgs := make([]netsim.Message, n)
	for i := range msgs {
		msgs[i] = netsim.Message{Src: i, Dst: (i + 1) % n, Bytes: 64 << 10}
	}
	run := func(b *testing.B, cfg netsim.Config) {
		nw, err := netsim.New(lft, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := nw.Run(msgs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, netsim.DefaultConfig()) })
	b.Run("metrics", func(b *testing.B) {
		cfg := netsim.DefaultConfig()
		cfg.Metrics = obs.NewRegistry()
		run(b, cfg)
	})
	b.Run("full", func(b *testing.B) {
		cfg := netsim.DefaultConfig()
		cfg.Metrics = obs.NewRegistry()
		cfg.Probes = obs.NewSampler(io.Discard, 10*des.Microsecond)
		cfg.Trace = obs.NewTracer(io.Discard)
		run(b, cfg)
	})
}

// BenchmarkServeRoute measures the fabric daemon's read path end to end
// — HTTP mux, inflight gate, snapshot load, compiled-path lookup, JSON
// encode — with concurrent clients hammering /v1/route on the paper's
// 324-node cluster, the deployment the daemon fronts. RCU snapshot
// reads should keep per-request cost flat as parallelism rises.
func BenchmarkServeRoute(b *testing.B) {
	m, err := fmgr.New(fmgr.Config{
		Topo:        topo.MustBuild(topo.Cluster324),
		Metrics:     obs.NewRegistry(),
		MaxInflight: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Start()
	defer m.Close()
	h := m.Handler()
	n := m.Current().Topo.NumHosts()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			src := i % n
			dst := (i + 7) % n
			i++
			req := httptest.NewRequest("GET", "/v1/route?src="+strconv.Itoa(src)+"&dst="+strconv.Itoa(dst), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
	b.StopTimer()
	// One route per request, so routes/s is directly comparable with
	// BenchmarkServeRouteSet324's batched protocol.
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkServeRouteSet324 measures the batched binary route path on
// the paper's 324-node cluster: one RouteSet frame resolves a whole
// job's src->dst set (324 hosts, 104,652 ordered pairs) through
// ServeWire — sniffless pipe transport, frame decode, snapshot lookup
// of the placement-precomputed response, and the conn write. The
// routes/s metric is the headline against the per-pair JSON path in
// BenchmarkServeRoute.
func BenchmarkServeRouteSet324(b *testing.B) {
	m, err := fmgr.New(fmgr.Config{
		Topo:    topo.MustBuild(topo.Cluster324),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Start()
	defer m.Close()
	n := m.Current().Topo.NumHosts()
	alloc, err := m.AllocJob(n, false)
	if err != nil {
		b.Fatal(err)
	}
	for m.Current().JobRouteSets[alloc.ID].Frame == nil {
		time.Sleep(time.Millisecond) // wait out the debounced placement rebuild
	}
	routesPerReq := float64(n * (n - 1))

	bench := func(b *testing.B, req wire.Message, wantPairs int) {
		b.RunParallel(func(pb *testing.PB) {
			srv, cli := net.Pipe()
			go m.ServeWire(srv)
			defer cli.Close()
			br := bufio.NewReaderSize(cli, 1<<20)
			for pb.Next() {
				if err := wire.WriteMessage(cli, req); err != nil {
					b.Fatal(err)
				}
				resp, err := wire.ReadMessage(br)
				if err != nil {
					b.Fatal(err)
				}
				rs, ok := resp.(*wire.RouteSetResp)
				if !ok || len(rs.Pairs) != wantPairs {
					b.Fatalf("resp %T with %d pairs, want %d", resp, len(rs.Pairs), wantPairs)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)*float64(wantPairs)/b.Elapsed().Seconds(), "routes/s")
	}

	b.Run("job", func(b *testing.B) {
		// The steady-state production shape: the whole-job set served
		// from the placement-time precomputed frame.
		bench(b, &wire.RouteSetReq{ByJob: true, Job: uint64(alloc.ID)}, int(routesPerReq))
	})
	b.Run("pairs324", func(b *testing.B) {
		// Explicit-batch shape: 324 pairs resolved from the CSR arena
		// per request.
		pairs := make([][2]uint32, n)
		for i := range pairs {
			pairs[i] = [2]uint32{uint32(i), uint32((i + 7) % n)}
		}
		bench(b, &wire.RouteSetReq{Pairs: pairs}, n)
	})
}

// BenchmarkSweepOrderingsParallel compares the sequential Walk-based
// ordering sweep against the compiled parallel sweep on the 324-node
// cluster — the Figure 3 inner loop.
func BenchmarkSweepOrderingsParallel(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	n := t.NumHosts()
	lft := route.DModK(t)
	var orders []*order.Ordering
	for s := int64(0); s < 10; s++ {
		orders = append(orders, order.Random(n, nil, s))
	}
	full := cps.Shift(n)
	stages := make([]int, 0, full.NumStages()/4+1)
	for s := 0; s < full.NumStages(); s += 4 {
		stages = append(stages, s)
	}
	seq, err := mpi.SampleStages(full, stages)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("walk-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsd.SweepOrderings(lft, orders, seq); err != nil {
				b.Fatal(err)
			}
		}
	})
	c, err := route.Compile(lft)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsd.SweepOrderingsParallel(c, orders, seq, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInvariantSuite324 runs the full invariant catalog — all 15
// executable theorem and representation checks — against the paper's
// 324-node cluster under compiled D-Mod-K, the exact workload of `make
// check` and the CI theorem-verification job.
func BenchmarkInvariantSuite324(b *testing.B) {
	t := topo.MustBuild(topo.Cluster324)
	c, err := route.Compile(route.DModK(t))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := invariant.Run(invariant.NewInstance(t, c, nil), nil)
		if !rep.Pass {
			b.Fatalf("catalog failed: %v", rep.FailedNames())
		}
	}
}
