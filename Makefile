# Convenience targets; everything is plain `go` underneath.

GO ?= go
# Benchmark iteration budget; CI smoke runs use BENCHTIME=1x.
BENCHTIME ?= 1s

.PHONY: all build vet test race bench bench-json bench-track bench-gate report daemon-smoke experiments experiments-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/hsd/ ./internal/netsim/ ./internal/exp/ ./internal/obs/... ./internal/fmgr/...

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) ./...

# Machine-readable benchmark snapshot of the top-level suite, for
# tracking perf over time (one dated JSON stream per run).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) -json . > BENCH_$$(date +%Y-%m-%d).json

# Ingest today's bench-json output into results/bench/ and compare
# against the baseline (first recorded run seeds it).
bench-track: bench-json
	$(GO) run ./cmd/ftreport bench -in BENCH_$$(date +%Y-%m-%d).json

# Same, but fail (non-zero exit) on regressions beyond tolerance.
bench-gate: bench-json
	$(GO) run ./cmd/ftreport bench -in BENCH_$$(date +%Y-%m-%d).json -gate

# End-to-end observability smoke: simulate a small cluster with probes
# and tracing on, then render the self-contained HTML report.
report:
	$(GO) run ./cmd/ftsim -topo 128 -cps recursive-doubling -order random \
		-mode barrier -metrics probes.jsonl -trace trace.json
	$(GO) run ./cmd/ftreport html -metrics probes.jsonl -trace trace.json -o report.html

# End-to-end fabric-daemon smoke: boot ftfabricd on a loopback port,
# poll /healthz, exercise a route query and a fault injection, then
# SIGTERM for a graceful drain. Fails if any request or the shutdown
# misbehaves.
daemon-smoke:
	./scripts/daemon_smoke.sh

# Regenerate every table and figure at paper scale (minutes).
experiments:
	$(GO) run ./cmd/ftbench -exp all

experiments-quick:
	$(GO) run ./cmd/ftbench -exp all -quick

fuzz:
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=30s ./internal/topo/
	$(GO) test -fuzz=FuzzParseTopologyFile -fuzztime=30s ./internal/topo/
	$(GO) test -fuzz=FuzzParseLFTs -fuzztime=30s ./internal/fabric/

clean:
	$(GO) clean ./...
