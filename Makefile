# Convenience targets; everything is plain `go` underneath.

GO ?= go
# Benchmark iteration budget; CI smoke runs use BENCHTIME=1x.
BENCHTIME ?= 1s

.PHONY: all build vet test race bench bench-json experiments experiments-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/hsd/ ./internal/netsim/ ./internal/exp/ ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) ./...

# Machine-readable benchmark snapshot of the top-level suite, for
# tracking perf over time (one dated JSON stream per run).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) -json . > BENCH_$$(date +%Y-%m-%d).json

# Regenerate every table and figure at paper scale (minutes).
experiments:
	$(GO) run ./cmd/ftbench -exp all

experiments-quick:
	$(GO) run ./cmd/ftbench -exp all -quick

fuzz:
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=30s ./internal/topo/
	$(GO) test -fuzz=FuzzParseTopologyFile -fuzztime=30s ./internal/topo/
	$(GO) test -fuzz=FuzzParseLFTs -fuzztime=30s ./internal/fabric/

clean:
	$(GO) clean ./...
