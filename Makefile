# Convenience targets; everything is plain `go` underneath.

GO ?= go
# Benchmark iteration budget; CI smoke runs use BENCHTIME=1x.
BENCHTIME ?= 1s
# Per-target fuzzing budget for fuzz and fuzz-smoke.
FUZZTIME ?= 30s
# load-curve knobs: topology, loop shape, ladder and per-level window.
LOADTOPO ?= 324
LOADMODE ?= closed
LOADLEVELS ?= 1,2,4,8
LOADDURATION ?= 2s
LOADAGREE ?= 0

.PHONY: all build vet test race bench bench-json bench-netsim bench-track bench-gate report check daemon-smoke load-curve replica-smoke experiments experiments-quick fuzz fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# ./internal/netsim includes the sharded event-loop suite, so the
# parallel DES (mailbox exchange, window pump, cross-shard credits)
# runs under the race detector here.
race:
	$(GO) test -race ./internal/hsd/ ./internal/netsim/ ./internal/exp/ ./internal/obs/... ./internal/fmgr/... ./internal/fclient/ ./internal/wire/

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) ./...

# Just the simulator's perf-sensitive benchmarks — the event core and
# the paper-scale netsim reproductions — for quick iteration on the
# hot path.
bench-netsim:
	$(GO) test -run '^$$' -bench 'Netsim|Figure2|CollectiveLatency|ContentionFree|SchedAllocFree' -benchmem -benchtime=$(BENCHTIME) .

# Machine-readable benchmark snapshot of the top-level suite, for
# tracking perf over time (one dated JSON stream per run).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) -json . > BENCH_$$(date +%Y-%m-%d).json

# Ingest today's bench-json output into results/bench/ and compare
# against the baseline (first recorded run seeds it).
bench-track: bench-json
	$(GO) run ./cmd/ftreport bench -in BENCH_$$(date +%Y-%m-%d).json

# Same, but fail (non-zero exit) on regressions beyond tolerance.
bench-gate: bench-json
	$(GO) run ./cmd/ftreport bench -in BENCH_$$(date +%Y-%m-%d).json -gate

# End-to-end observability smoke: simulate a small cluster with probes
# and tracing on, then render the self-contained HTML report.
report:
	$(GO) run ./cmd/ftsim -topo 128 -cps recursive-doubling -order random \
		-mode barrier -metrics probes.jsonl -trace trace.json
	$(GO) run ./cmd/ftreport html -metrics probes.jsonl -trace trace.json -o report.html

# Theorem verification: run the full invariant catalog (see
# docs/TESTING.md) on the paper cluster, a k-ary-n-tree, an XGFT, and
# seeded random RLFTs. Non-zero exit on any failed check.
check:
	$(GO) run ./cmd/ftcheck -topo 324 -rand 3 -seed 1
	$(GO) run ./cmd/ftcheck -topo kary:4,3
	$(GO) run ./cmd/ftcheck -topo "pgft:3;2,2,2;1,2,2;1,1,1"

# End-to-end fabric-daemon smoke: boot ftfabricd on a loopback port,
# poll /healthz, exercise a route query and a fault injection, then
# SIGTERM for a graceful drain. Fails if any request or the shutdown
# misbehaves.
daemon-smoke:
	./scripts/daemon_smoke.sh

# Saturation curve against a live daemon: boot ftfabricd on LOADTOPO,
# sweep the LOADLEVELS ladder (LOADMODE closed = concurrency, open =
# req/s) for LOADDURATION per level, pull the fabric event journal and
# render load.html. LOADAGREE > 0 gates on client/server p99 agreement.
load-curve:
	TOPO=$(LOADTOPO) MODE=$(LOADMODE) LEVELS=$(LOADLEVELS) \
		DURATION=$(LOADDURATION) AGREE=$(LOADAGREE) ./scripts/load_sweep.sh

# Multi-replica smoke: two ftfabricd replicas, one fault stream, epoch
# convergence, a binary-protocol ftload sweep across both (the
# epoch-mix guard must stay silent), a dual-protocol HTML report and a
# route-set benchmark artifact.
replica-smoke:
	TOPO=$(LOADTOPO) LEVELS=$(LOADLEVELS) DURATION=$(LOADDURATION) \
		./scripts/replica_smoke.sh

# Regenerate every table and figure at paper scale (minutes).
experiments:
	$(GO) run ./cmd/ftbench -exp all

experiments-quick:
	$(GO) run ./cmd/ftbench -exp all -quick

fuzz:
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/topo/
	$(GO) test -fuzz=FuzzParseTopologyFile -fuzztime=$(FUZZTIME) ./internal/topo/
	$(GO) test -fuzz=FuzzParseLFTs -fuzztime=$(FUZZTIME) ./internal/fabric/

# The invariant-harness fuzzers (docs/TESTING.md): topology file parser,
# fabric JSON document, fault-injection -> lenient-compile pipeline,
# binary wire-protocol decoder.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseTopologyFile -fuzztime=$(FUZZTIME) ./internal/topo/
	$(GO) test -fuzz=FuzzDoc -fuzztime=$(FUZZTIME) ./internal/fabric/
	$(GO) test -fuzz=FuzzFaultCompileLenient -fuzztime=$(FUZZTIME) ./internal/invariant/
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=$(FUZZTIME) ./internal/wire/

clean:
	$(GO) clean ./...
