// Fault tolerance walkthrough: a cable dies mid-life on a production
// cluster. This example plays the operator's timeline end to end — the
// healthy fabric, the failure, the subnet manager's reroute, the
// degraded-but-running state, and the repair — measuring contention and
// bandwidth at every step with both instruments (analytic HSD and the
// packet simulator).
package main

import (
	"fmt"
	"log"

	"fattree/internal/cps"
	"fattree/internal/fabric"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	cluster, err := topo.Build(topo.Cluster324)
	if err != nil {
		log.Fatal(err)
	}
	n := cluster.NumHosts()
	o := order.Topology(n, nil)
	cfg := netsim.DefaultConfig()
	shift := cps.Shift(n)

	measure := func(label string, lft *route.LFT) {
		rep, err := hsd.AnalyzeParallel(lft, o, shift, 0)
		if err != nil {
			log.Fatal(err)
		}
		job, err := mpi.NewJob(lft, o)
		if err != nil {
			log.Fatal(err)
		}
		sampled, err := mpi.SampleStages(shift, []int{0, 107, 215})
		if err != nil {
			log.Fatal(err)
		}
		st, err := job.Simulate(sampled, 128<<10, false, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s max HSD %d  avg %.2f  normalized BW %.3f\n",
			label, rep.MaxHSD(), rep.AvgMaxHSD(), job.NormalizedBandwidth(st, cfg))
	}

	fmt.Printf("cluster %v, shift collective, topology order\n\n", topo.Cluster324)

	// 1. Healthy fabric.
	measure("healthy (d-mod-k)", route.DModK(cluster))

	// 2. Three cables die; the subnet manager reroutes around them.
	fs := fabric.NewFaultSet(cluster)
	if err := fs.FailRandomFabricLinks(3, 42); err != nil {
		log.Fatal(err)
	}
	rerouted, res, err := fs.RouteAround()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- %d cables fail; reroute: %d unroutable hosts, %d broken pairs --\n\n",
		fs.Failed(), len(res.UnroutableHosts), res.BrokenPairs)
	measure("degraded (rerouted)", rerouted)

	// 3. The cables are replaced; routing returns to the closed form.
	for i := range cluster.Links {
		fs.Revive(topo.LinkID(i))
	}
	repaired, res2, err := fs.RouteAround()
	if err != nil {
		log.Fatal(err)
	}
	if len(res2.UnroutableHosts) != 0 || res2.BrokenPairs != 0 {
		log.Fatalf("repair left damage: %+v", res2)
	}
	fmt.Println()
	measure("repaired (= d-mod-k)", repaired)

	fmt.Println("\nreading: reroutes keep every pair connected at the cost of a local HSD bump;")
	fmt.Println("repairing the cables restores the exact closed-form tables and HSD = 1.")
}
