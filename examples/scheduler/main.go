// Scheduler study: a utility cluster runs many jobs at once — the case
// the paper declares out of scope. This example drives the granule-aware
// allocator through a queue of jobs and verifies, with the analytic HSD
// model, that all concurrently placed contention-free jobs can run Shift
// collectives simultaneously without a single shared link.
package main

import (
	"fmt"
	"log"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/route"
	"fattree/internal/sched"
	"fattree/internal/topo"
)

func main() {
	cluster, err := topo.Build(topo.Cluster1944)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := sched.New(cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %v, %d hosts, allocation granule %d\n\n",
		topo.Cluster1944, cluster.NumHosts(), alloc.Granule())

	// A queue of job requests: sizes in granule units and off-granule
	// stragglers.
	requests := []int{648, 324, 324, 100, 324, 162}
	var placed []*sched.Allocation
	for i, size := range requests {
		j, err := alloc.Alloc(size)
		if err != nil {
			fmt.Printf("job %d (%4d hosts): REJECTED (%v)\n", i, size, err)
			continue
		}
		placed = append(placed, j)
		fmt.Printf("job %d (%4d hosts): hosts [%d..%d], contention-free=%v\n",
			i, size, j.Hosts[0], j.Hosts[len(j.Hosts)-1], j.ContentionFree)
	}
	fmt.Printf("\nutilization: %.1f%%, free hosts: %d\n", 100*alloc.Utilization(), alloc.FreeHosts())

	// Pairwise isolation levels.
	fmt.Println("\npairwise isolation (level where jobs first share a sub-tree; 4 = fully disjoint):")
	for i := 0; i < len(placed); i++ {
		for k := i + 1; k < len(placed); k++ {
			lvl, err := alloc.IsolationLevel(placed[i].ID, placed[k].ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  job %d vs job %d: level %d\n", i, k, lvl)
		}
	}

	// All contention-free jobs fire Shift collectives simultaneously;
	// the combined per-link flow count must stay at 1.
	lft := route.DModK(cluster)
	a := hsd.NewAnalyzer(lft)
	var cfJobs []*sched.Allocation
	for _, j := range placed {
		if j.ContentionFree {
			cfJobs = append(cfJobs, j)
		}
	}
	worst := 0
	stages := 40 // sample: combined analysis of the first stages
	for s := 0; s < stages; s++ {
		var pairs [][2]int
		for _, j := range cfJobs {
			shift := cps.Shift(len(j.Hosts))
			st := shift.Stage(s % shift.NumStages())
			for _, p := range st {
				pairs = append(pairs, [2]int{j.Hosts[p.Src], j.Hosts[p.Dst]})
			}
		}
		res, err := a.Stage(pairs)
		if err != nil {
			log.Fatal(err)
		}
		if res.MaxHSD > worst {
			worst = res.MaxHSD
		}
	}
	fmt.Printf("\n%d contention-free jobs running Shift simultaneously: combined max HSD = %d\n",
		len(cfJobs), worst)
	if worst == 1 {
		fmt.Println("the single-job guarantee composes across granule-aligned jobs.")
	}
}
