// Cluster design study: on the 324-node RLFT, compare every collective
// of the MVAPICH/OpenMPI catalogue (Table 1) under the topology-aware
// order versus random rank placement — the decision a cluster operator
// faces when configuring the subnet manager and the batch scheduler.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	cluster, err := topo.Build(topo.Cluster324)
	if err != nil {
		log.Fatal(err)
	}
	n := cluster.NumHosts()
	// Compile the tables once: every catalogue row and every random-order
	// sweep below replays the same 324^2 paths from the packed cache.
	lft, err := route.Compile(route.DModK(cluster))
	if err != nil {
		log.Fatal(err)
	}
	good := order.Topology(n, nil)
	seeds := []int64{1, 2, 3, 4, 5}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "collective\talgorithm\tCPS\tordered HSD\trandom HSD (mean of 5)")

	seen := map[mpi.CPSKind]bool{}
	for _, use := range mpi.Catalog {
		if seen[use.CPS] {
			continue // one row per distinct sequence
		}
		seen[use.CPS] = true
		if use.Pow2Only && n&(n-1) != 0 {
			// The library would not pick this algorithm for 324
			// ranks; evaluate it anyway — the CPS handles non-pow2
			// via pre/post proxy stages.
			_ = use
		}
		seq, err := mpi.NewSequence(use.CPS, n)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := hsd.Analyze(lft, good, seq)
		if err != nil {
			log.Fatal(err)
		}
		var orders []*order.Ordering
		for _, s := range seeds {
			orders = append(orders, order.Random(n, nil, s))
		}
		sw, err := hsd.SweepOrderingsParallel(lft, orders, seq, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2f\t%.2f\n",
			use.Collective, use.Algorithm, use.CPS, rep.AvgMaxHSD(), sw.Mean)
	}

	// The paper's fix for the bidirectional family: the Section VI
	// topology-aware recursive doubling.
	ta, err := cps.TopoAwareRecursiveDoubling(topo.Cluster324.M)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := hsd.Analyze(lft, good, ta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "allreduce\tthis paper (Sec. VI)\t%s\t%.2f\t-\n", ta.Name(), rep.AvgMaxHSD())
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading: 1.00 under 'ordered HSD' means zero contention in every stage;")
	fmt.Println("the flat recursive-doubling rows show why Section VI reshapes the exchange.")
}
