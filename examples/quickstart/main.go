// Quickstart: build a real-life fat-tree, program D-Mod-K routing, use
// the topology-aware MPI node order, and confirm that a global all-to-all
// (the Shift CPS) is contention free — then see what a random order would
// have cost.
package main

import (
	"fmt"
	"log"

	"fattree/internal/cps"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/topo"
)

func main() {
	// A 324-node cluster of 36-port switches: 18 leaves x 18 hosts,
	// 9 spines reached over 2 parallel links per leaf.
	spec, err := topo.RLFT2(18, 18)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := topo.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %v (%d hosts, %d switches, %d links)\n",
		spec, cluster.NumHosts(), spec.TotalSwitches(), len(cluster.Links))

	// The paper's recommended configuration: D-Mod-K routing plus the
	// matching rank order.
	job, err := mpi.NewContentionFreeJob(cluster, nil)
	if err != nil {
		log.Fatal(err)
	}

	// All-to-all decomposes into the Shift permutation sequence.
	alltoall := cps.Shift(job.Size())
	rep, err := job.Analyze(alltoall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shift under topology order: max HSD = %d (contention-free: %v)\n",
		rep.MaxHSD(), rep.ContentionFree())

	// A random order on the very same fabric and routing:
	bad, err := mpi.NewJob(job.Route, order.Random(cluster.NumHosts(), nil, 42))
	if err != nil {
		log.Fatal(err)
	}
	badRep, err := bad.Analyze(alltoall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shift under random order:   max HSD = %d, avg %.2f\n",
		badRep.MaxHSD(), badRep.AvgMaxHSD())

	// Packet-level confirmation on a few stages: normalized bandwidth
	// of the ordered configuration is ~1.0.
	sampled, err := mpi.SampleStages(alltoall, []int{0, 80, 161, 242})
	if err != nil {
		log.Fatal(err)
	}
	cfg := netsim.DefaultConfig()
	st, err := job.Simulate(sampled, 128<<10, false, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packet sim (4 stages, 128 KiB): normalized BW = %.3f\n",
		job.NormalizedBandwidth(st, cfg))
}
