// Partial-job study: a utility cluster rarely hands a job the whole
// fabric. This example removes random end-ports from a 324-node RLFT,
// rebuilds the rank-compacted D-Mod-K routing for the survivors, and
// shows (a) that the Shift stays contention free when the switch arity K
// divides the job size, and (b) the wrap-around hot spot that appears
// the moment it does not — the boundary condition of the paper's
// partial-tree claim.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	cluster, err := topo.Build(topo.Cluster324)
	if err != nil {
		log.Fatal(err)
	}
	n := cluster.NumHosts()
	k, _ := topo.Cluster324.IsRLFT()
	fmt.Printf("cluster: %v, N=%d, K=%d\n\n", topo.Cluster324, n, k)
	fmt.Println("drop  job   job%K  shift maxHSD  topo-RD maxHSD  fixup stages")

	r := rand.New(rand.NewSource(7))
	for _, drop := range []int{18, 36, 90, 10, 25} {
		perm := r.Perm(n)
		active := append([]int(nil), perm[drop:]...)
		lft, err := route.DModKActive(cluster, active)
		if err != nil {
			log.Fatal(err)
		}
		o := order.Topology(n, active)

		shift, err := hsd.Analyze(lft, o, cps.Shift(len(active)))
		if err != nil {
			log.Fatal(err)
		}

		ta, err := cps.TopoAwareRecursiveDoublingPartial(topo.Cluster324.M, active)
		if err != nil {
			log.Fatal(err)
		}
		taRep, err := hsd.Analyze(lft, o, ta)
		if err != nil {
			log.Fatal(err)
		}
		fixups := 0
		for _, g := range ta.Groups() {
			fixups += g.Fixups
		}

		fmt.Printf("%4d  %4d  %5d  %12d  %14d  %12d\n",
			drop, len(active), len(active)%k, shift.MaxHSD(), taRep.MaxHSD(), fixups)
	}

	fmt.Println("\nreading: rows with job%K == 0 reproduce the paper's HSD=1 partial-tree result;")
	fmt.Println("rows with job%K != 0 show the Shift wrap-around collision (max HSD 2) —")
	fmt.Println("schedulers should allocate fat-tree jobs in multiples of the switch arity.")
}
