// Adversarial placement: reproduces the Section II horror story end to
// end in the packet simulator. The same fabric, the same routing, the
// same Ring traffic — only the MPI rank placement differs, and the
// effective bandwidth collapses by roughly the switch arity K.
package main

import (
	"fmt"
	"log"

	"fattree/internal/des"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	cluster, err := topo.Build(topo.Cluster324)
	if err != nil {
		log.Fatal(err)
	}
	n := cluster.NumHosts()
	lft := route.DModK(cluster)
	cfg := netsim.DefaultConfig()
	const bytes = 128 << 10

	run := func(o *order.Ordering) {
		job, err := mpi.NewJob(lft, o)
		if err != nil {
			log.Fatal(err)
		}
		// A single Ring stage: every rank sends one message to the
		// next rank.
		seq, err := mpi.NewSequence(mpi.CPSRing, n)
		if err != nil {
			log.Fatal(err)
		}
		one, err := mpi.SampleStages(seq, []int{0})
		if err != nil {
			log.Fatal(err)
		}
		st, err := job.Simulate(one, bytes, false, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := job.Analyze(one)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s  max HSD %2d   normalized BW %.3f   mean latency %7.2f us\n",
			o.Label, rep.MaxHSD(), job.NormalizedBandwidth(st, cfg),
			float64(st.MeanLatency())/float64(des.Microsecond))
	}

	fmt.Printf("Ring permutation on %v, %d KiB messages\n\n", topo.Cluster324, bytes>>10)
	run(order.Topology(n, nil))
	adv, err := order.Adversarial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	run(adv)
	fmt.Println("\npaper: adversarial placement reaches only ~7.1% of nominal bandwidth")
	fmt.Println("(231.5 of 3250 MB/s per host), a factor-K oversubscription of one up-link.")
}
