#!/bin/sh
# Daemon smoke test: boot ftfabricd, wait for /healthz, exercise the
# read and write paths once each, then SIGTERM and require a clean
# graceful exit. Used by `make daemon-smoke` and the CI daemon job.
set -eu

ADDR=${ADDR:-127.0.0.1:7474}
TOPO=${TOPO:-128}
BIN=${BIN:-./ftfabricd.smoke}
LOG=${LOG:-ftfabricd.smoke.log}

fail() {
    echo "daemon-smoke: $1" >&2
    [ -f "$LOG" ] && sed 's/^/daemon-smoke: ftfabricd: /' "$LOG" >&2
    exit 1
}

go build -o "$BIN" ./cmd/ftfabricd
"$BIN" -topo "$TOPO" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$BIN" "$LOG"' EXIT

# Readiness: /healthz must come up within ~5s.
i=0
until curl -fs "http://$ADDR/healthz" 2>/dev/null | grep -q '"ok": *true'; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "/healthz never came up"
    kill -0 "$PID" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
done

# Read path: a route query returns the schema-stamped document.
curl -fsS "http://$ADDR/v1/route?src=0&dst=17" | grep -q '"schema": *"fattree-route/v1"' \
    || fail "route query failed"

# Write path: inject random faults, then the fabric document must
# eventually report them (the reroute is debounced).
curl -fsS -X POST "http://$ADDR/v1/faults" -d '{"fail_random":2}' | grep -q '"accepted": *[1-9]' \
    || fail "fault injection rejected"
i=0
until curl -fsS "http://$ADDR/v1/fabric" | grep -q '"failed_links": *\[ *[0-9]'; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "reroute never surfaced in /v1/fabric"
    sleep 0.1
done

# Metrics: the swap must have bumped the epoch gauge past the initial 1.
curl -fsS "http://$ADDR/metrics" | grep -q '"fmgr_epoch"' || fail "metrics missing fmgr_epoch"

# Graceful shutdown: SIGTERM drains and exits zero.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "daemon did not exit after SIGTERM"
    sleep 0.1
done
wait "$PID" || fail "daemon exited non-zero after SIGTERM"
grep -q "shutting down" "$LOG" || fail "missing graceful-shutdown log line"
echo "daemon-smoke: ok"
