#!/bin/sh
# Replica smoke: boot TWO ftfabricd replicas from the same topology and
# fault seed, feed both the same fault stream, verify they converge to
# the same epoch, then sweep the binary route protocol across both with
# ftload — whose epoch-mix guard must stay silent: the client may bounce
# between replicas but must never observe a route set that rolls its
# epoch backwards. Also runs a JSON sweep so the rendered report carries
# the p99-vs-load curve for both protocols, and snapshots the batched
# route-set benchmark as an artifact.
#
# Tunables (environment): ADDR_A, ADDR_B, TOPO, LEVELS, DURATION, OUT.
set -eu

ADDR_A=${ADDR_A:-127.0.0.1:7494}
ADDR_B=${ADDR_B:-127.0.0.1:7495}
TOPO=${TOPO:-324}
LEVELS=${LEVELS:-1,2}
DURATION=${DURATION:-1s}
SEED=${SEED:-7}
OUT=${OUT:-replica}
BIN=${BIN:-./ftfabricd.replica}
LOG_A=${LOG_A:-ftfabricd.replica.a.log}
LOG_B=${LOG_B:-ftfabricd.replica.b.log}

fail() {
    echo "replica-smoke: $1" >&2
    [ -f "$LOG_A" ] && sed 's/^/replica-smoke: replica-a: /' "$LOG_A" >&2
    [ -f "$LOG_B" ] && sed 's/^/replica-smoke: replica-b: /' "$LOG_B" >&2
    exit 1
}

go build -o "$BIN" ./cmd/ftfabricd
"$BIN" -topo "$TOPO" -addr "$ADDR_A" -seed "$SEED" >"$LOG_A" 2>&1 &
PID_A=$!
"$BIN" -topo "$TOPO" -addr "$ADDR_B" -seed "$SEED" >"$LOG_B" 2>&1 &
PID_B=$!
trap 'kill "$PID_A" "$PID_B" 2>/dev/null || true; rm -f "$BIN" "$LOG_A" "$LOG_B"' EXIT

wait_up() {
    i=0
    until curl -fs "http://$1/healthz" 2>/dev/null | grep -q '"ok": *true'; do
        i=$((i + 1))
        [ "$i" -le 50 ] || fail "$1 /healthz never came up"
        sleep 0.1
    done
}
wait_up "$ADDR_A"
wait_up "$ADDR_B"

epoch_of() {
    curl -fs "http://$1/v1/order" 2>/dev/null \
        | grep -o '"epoch": *[0-9]*' | grep -o '[0-9]*' || echo -1
}

# The same fault stream onto both replicas. Identical seeds make the
# fail_random draws identical, so both must compute identical tables.
for n in 2 1; do
    curl -fsS -X POST "http://$ADDR_A/v1/faults" -d "{\"fail_random\":$n}" >/dev/null \
        || fail "fault injection rejected by replica A"
    curl -fsS -X POST "http://$ADDR_B/v1/faults" -d "{\"fail_random\":$n}" >/dev/null \
        || fail "fault injection rejected by replica B"
    sleep 0.2
done

# Epoch reconciliation: both replicas must land on the same epoch.
i=0
while :; do
    EA=$(epoch_of "$ADDR_A")
    EB=$(epoch_of "$ADDR_B")
    [ "$EA" = "$EB" ] && [ "$EA" -ge 3 ] && break
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "replicas never converged (epochs $EA vs $EB)"
    sleep 0.1
done
echo "replica-smoke: both replicas at epoch $EA after the shared fault stream"

# JSON sweep against replica A — the per-pair baseline curve.
go run ./cmd/ftload -addr "http://$ADDR_A" -mode closed -levels "$LEVELS" \
    -duration "$DURATION" -out "$OUT.http.json" \
    || fail "JSON sweep failed"

# Binary sweep across BOTH replicas. ftload exits non-zero and prints
# an epoch-mix line if any response rolled the epoch backwards; the
# grep below keeps the guarantee visible even if exit codes get lost
# in a pipeline someday.
go run ./cmd/ftload -addr "http://$ADDR_A,http://$ADDR_B" -proto binary -batch 32 \
    -mode closed -levels "$LEVELS" -duration "$DURATION" -out "$OUT.wire.json" \
    2>"$OUT.ftload.err" \
    || { cat "$OUT.ftload.err" >&2; fail "binary sweep failed"; }
if grep -q "epoch-mix" "$OUT.ftload.err"; then
    cat "$OUT.ftload.err" >&2
    fail "client observed mixed epochs across replicas"
fi
rm -f "$OUT.ftload.err"
grep -q '"protocol": *"binary"' "$OUT.wire.json" || fail "binary sweep missing protocol stamp"
grep -q '"epoch_regressions"' "$OUT.wire.json" && fail "binary sweep recorded epoch regressions"

# One report, both protocols: a curve section each.
go run ./cmd/ftreport html -load "$OUT.http.json,$OUT.wire.json" -o "$OUT.html"
grep -q "binary, batch 32" "$OUT.html" || fail "report missing the binary curve section"
grep -q "GET /v1/route" "$OUT.html" || fail "report missing the JSON curve section"

# Benchmark artifact: the batched route-set path at paper scale.
go test -run '^$' -bench 'ServeRouteSet324' -benchtime 1x . >"$OUT.bench.txt" \
    || fail "route-set benchmark failed"
grep -q "BenchmarkServeRouteSet324" "$OUT.bench.txt" || fail "benchmark artifact empty"

kill -TERM "$PID_A" "$PID_B"
for PID in "$PID_A" "$PID_B"; do
    i=0
    while kill -0 "$PID" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "a replica did not exit after SIGTERM"
        sleep 0.1
    done
done
echo "replica-smoke: ok ($OUT.http.json, $OUT.wire.json, $OUT.html, $OUT.bench.txt)"
