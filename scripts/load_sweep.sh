#!/bin/sh
# Load sweep: boot ftfabricd, sweep offered load against it with
# ftload, pull the fabric event journal after a fault injection, and
# render everything (p99-vs-load curve + event timeline) into one HTML
# report. Used by `make load-curve` and the CI load-smoke job.
#
# Tunables (environment): ADDR, TOPO, MODE (closed|open), LEVELS,
# DURATION, AGREE (0 disables the client/server p99 agreement gate),
# OUT (basename for load JSON / events JSON / HTML).
set -eu

ADDR=${ADDR:-127.0.0.1:7484}
TOPO=${TOPO:-324}
MODE=${MODE:-closed}
LEVELS=${LEVELS:-1,2,4,8}
DURATION=${DURATION:-2s}
AGREE=${AGREE:-0}
OUT=${OUT:-load}
BIN=${BIN:-./ftfabricd.load}
LOG=${LOG:-ftfabricd.load.log}

fail() {
    echo "load-sweep: $1" >&2
    [ -f "$LOG" ] && sed 's/^/load-sweep: ftfabricd: /' "$LOG" >&2
    exit 1
}

go build -o "$BIN" ./cmd/ftfabricd
"$BIN" -topo "$TOPO" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$BIN" "$LOG"' EXIT

i=0
until curl -fs "http://$ADDR/healthz" 2>/dev/null | grep -q '"ok": *true'; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "/healthz never came up"
    kill -0 "$PID" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
done

# The sweep itself. -agree makes ftload exit non-zero when the client
# and server p99 disagree beyond the fraction at the lowest level.
AGREE_FLAGS=""
[ "$AGREE" != "0" ] && AGREE_FLAGS="-agree $AGREE"
go run ./cmd/ftload -addr "http://$ADDR" -mode "$MODE" -levels "$LEVELS" \
    -duration "$DURATION" $AGREE_FLAGS -out "$OUT.json" \
    || fail "ftload sweep failed"
grep -q '"schema": *"fattree-load/v1"' "$OUT.json" || fail "sweep output missing schema stamp"
grep -q '"errors": *[1-9]' "$OUT.json" && fail "sweep saw request errors"

# Prometheus exposition: content negotiation must switch /metrics off
# JSON, and the RED family must carry the swept endpoint.
curl -fsS -H 'Accept: text/plain' "http://$ADDR/metrics" \
    | grep -q '^# TYPE fmgr_http_requests_total counter' \
    || fail "/metrics did not negotiate Prometheus exposition"

# Event journal: inject one fault, wait for the swap record, archive
# the fault -> reroute -> validate -> swap replay.
curl -fsS -X POST "http://$ADDR/v1/faults" -d '{"fail_random":1}' >/dev/null \
    || fail "fault injection rejected"
i=0
until curl -fsS "http://$ADDR/v1/events" | grep -q '"kind": *"swap"'; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "swap never reached the event journal"
    sleep 0.1
done
curl -fsS "http://$ADDR/v1/events" > "$OUT.events.json"
grep -q '"schema": *"fattree-events/v1"' "$OUT.events.json" || fail "events missing schema stamp"
grep -q '"kind": *"reroute"' "$OUT.events.json" || fail "events missing reroute record"

go run ./cmd/ftreport html -load "$OUT.json" -events "$OUT.events.json" -o "$OUT.html"
grep -q "Load curve" "$OUT.html" || fail "report missing load curve"
grep -q "Fabric events" "$OUT.html" || fail "report missing fabric events"

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "daemon did not exit after SIGTERM"
    sleep 0.1
done
wait "$PID" || fail "daemon exited non-zero after SIGTERM"
echo "load-sweep: ok ($OUT.json, $OUT.events.json, $OUT.html)"
