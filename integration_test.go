package fattree_test

// Cross-package integration tests: the full pipeline from a topology
// spec to agreement between the two measurement instruments. These are
// the "two independent implementations must agree" checks DESIGN.md
// promises.

import (
	"testing"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// TestInstrumentsAgreeOnContention cross-validates the analytic HSD
// model against the packet simulator: for single permutation stages with
// known contention structure, the synchronized stage time must scale
// with the analytic max HSD.
func TestInstrumentsAgreeOnContention(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	cfg := netsim.DefaultConfig()
	const bytes = 128 << 10

	stageTime := func(o *order.Ordering, seq cps.Sequence) (float64, int) {
		rep, err := hsd.Analyze(lft, o, seq)
		if err != nil {
			t.Fatal(err)
		}
		job, err := mpi.NewJob(lft, o)
		if err != nil {
			t.Fatal(err)
		}
		st, err := job.Simulate(seq, bytes, true, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.Duration), rep.MaxHSD()
	}

	// Contention-free reference: one shift stage under topology order.
	seq, err := mpi.SampleStages(cps.Shift(n), []int{4})
	if err != nil {
		t.Fatal(err)
	}
	cleanT, cleanHSD := stageTime(order.Topology(n, nil), seq)
	if cleanHSD != 1 {
		t.Fatalf("reference stage HSD = %d, want 1", cleanHSD)
	}

	// Contended stages under random orders: measured slowdown must
	// track the analytic HSD within modeling slack.
	for seed := int64(0); seed < 4; seed++ {
		badT, badHSD := stageTime(order.Random(n, nil, seed), seq)
		if badHSD < 2 {
			continue // this seed happened to be clean
		}
		slow := badT / cleanT
		lo := float64(badHSD) * 0.6
		hi := float64(badHSD) * 1.5
		if slow < lo || slow > hi {
			t.Errorf("seed %d: analytic HSD %d but measured slowdown %.2f (expected within [%.1f, %.1f])",
				seed, badHSD, slow, lo, hi)
		}
	}
}

// TestPipelineFromSpecString walks the user journey: parse a spec, build
// the fabric, program routing, assign ranks, verify the guarantee, and
// measure it.
func TestPipelineFromSpecString(t *testing.T) {
	g, err := topo.ParseSpec("rlft2:8,8")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	job, err := mpi.NewContentionFreeJob(tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := job.Size()
	sel, err := mpi.SelectAlgorithm(mpi.MVAPICH, "alltoall", n, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := job.Analyze(sel.Sequence)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ContentionFree() {
		t.Fatalf("alltoall (%s) HSD = %d on %v", sel.Use.Algorithm, rep.MaxHSD(), g)
	}
	cfg := netsim.DefaultConfig()
	st, err := job.Simulate(sel.Sequence, 64<<10, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nb := job.NormalizedBandwidth(st, cfg); nb < 0.9 {
		t.Errorf("normalized bandwidth %.3f, want ~1", nb)
	}
	if st.OutOfOrderPackets != 0 {
		t.Errorf("%d packets out of order", st.OutOfOrderPackets)
	}
}

// TestAnalyticAdversarialPredictsSimulatedCollapse pins the 7.1% story
// quantitatively: 1/maxHSD must predict the simulated normalized
// bandwidth of the adversarial ring within modeling slack.
func TestAnalyticAdversarialPredictsSimulatedCollapse(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	adv, err := order.Adversarial(tp)
	if err != nil {
		t.Fatal(err)
	}
	ring := cps.Ring(n)
	rep, err := hsd.Analyze(lft, adv, ring)
	if err != nil {
		t.Fatal(err)
	}
	job, err := mpi.NewJob(lft, adv)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.DefaultConfig()
	st, err := job.Simulate(ring, 64<<10, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured := job.NormalizedBandwidth(st, cfg)
	// Prediction: the hot link (wire rate) shared by maxHSD flows, per
	// host, normalized by the PCIe cap.
	predicted := cfg.LinkBandwidth / float64(rep.MaxHSD()) / cfg.HostBandwidth
	if measured < predicted*0.7 || measured > predicted*1.3 {
		t.Errorf("measured %.4f vs predicted %.4f (HSD %d) — instruments disagree",
			measured, predicted, rep.MaxHSD())
	}
}
