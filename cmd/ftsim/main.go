// Command ftsim runs the packet-level network simulator on a collective:
// it reports effective bandwidth (absolute and normalized to the PCIe
// injection capacity) and message latency, under a chosen node ordering.
//
// Usage:
//
//	ftsim -topo 324 -cps ring -order topology -bytes 262144
//	ftsim -topo 324 -cps ring -order adversarial -bytes 65536
//	ftsim -topo 1944 -cps shift -order random -bytes 131072 -sample 8
//	ftsim -topo 324 -cps ring -trace run.json -metrics run.jsonl
//	ftsim -topo 1944 -cps shift -sample 8 -shards -1
//	ftsim -topo 324 -cps shift -sample 4 -progress 1s -link-probes links.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fattree/internal/cps"
	"fattree/internal/des"
	"fattree/internal/engine"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/obs"
	"fattree/internal/obs/prof"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	var (
		spec     = flag.String("topo", "324", "topology spec")
		engName  = flag.String("engine", "", "routing engine from the registry (default dmodk; \"list\" prints them)")
		cpsName  = flag.String("cps", "ring", "CPS name (see fthsd) or topo-aware")
		ordering = flag.String("order", "topology", "ordering: topology | random | adversarial")
		seed     = flag.Int64("seed", 1, "random-ordering seed")
		bytes    = flag.Int64("bytes", 262144, "message payload per stage pair")
		mode     = flag.String("mode", "async", "stage progression: async | dependent | barrier")
		sample   = flag.Int("sample", 0, "sample this many stages of long sequences (0 = all)")
		linkBW   = flag.Float64("link-bw", 4000e6, "link bandwidth bytes/s")
		hostBW   = flag.Float64("host-bw", 3250e6, "host injection bandwidth bytes/s")
		bufPkts  = flag.Int("buffers", 8, "input-buffer packets per switch port")
		shards   = flag.Int("shards", 1, "event-loop shards: 1 = sequential, N > 1 = parallel sub-tree partitions, -1 = one per CPU")
		progress = flag.Duration("progress", 0, "print a live progress line to stderr at this wall-clock interval (0 = off)")
		sinks    obs.FileSinks
	)
	sinks.RegisterFlags(flag.CommandLine)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	if *engName == "list" {
		for _, info := range engine.Infos() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}
	err := pf.Start()
	if err == nil {
		err = run(*spec, *engName, *cpsName, *ordering, *seed, *bytes, *mode, *sample, *linkBW, *hostBW, *bufPkts, *shards, *progress, &sinks)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftsim:", err)
		os.Exit(1)
	}
}

func run(spec, engName, cpsName, ordering string, seed, bytes int64, modeName string, sample int, linkBW, hostBW float64, bufPkts, shards int, progress time.Duration, sinks *obs.FileSinks) error {
	var mode mpi.Mode
	switch modeName {
	case "async":
		mode = mpi.Async
	case "dependent":
		mode = mpi.Dependent
	case "barrier":
		mode = mpi.Barrier
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	n := t.NumHosts()
	var rt route.Router = route.DModK(t)
	if engName != "" {
		e, err := engine.Build(engName, t, engine.Options{Seed: seed})
		if err != nil {
			return err
		}
		tb, err := e.Tables(nil)
		if err != nil {
			return err
		}
		rt = tb.Router
	}

	var o *order.Ordering
	switch ordering {
	case "topology":
		o = order.Topology(n, nil)
	case "random":
		o = order.Random(n, nil, seed)
	case "adversarial":
		o, err = order.Adversarial(t)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown ordering %q", ordering)
	}

	var seq cps.Sequence
	if cpsName == "topo-aware" {
		seq, err = mpi.NewTopoAwareSequence(g.M, nil)
	} else {
		seq, err = mpi.NewSequence(mpi.CPSKind(cpsName), n)
	}
	if err != nil {
		return err
	}
	if sample > 0 && sample < seq.NumStages() {
		idx := make([]int, sample)
		step := seq.NumStages() / sample
		for i := range idx {
			idx[i] = i * step
		}
		seq, err = mpi.SampleStages(seq, idx)
		if err != nil {
			return err
		}
	}

	cfg := netsim.DefaultConfig()
	cfg.LinkBandwidth = linkBW
	cfg.HostBandwidth = hostBW
	cfg.BufferPackets = bufPkts
	cfg.Shards = shards
	if err := sinks.Open(); err != nil {
		return err
	}
	cfg.Metrics = sinks.Registry
	cfg.Probes = sinks.Sampler
	cfg.Trace = sinks.Tracer
	cfg.LinkProbes = sinks.LinkSampler
	if progress > 0 {
		p := &netsim.Progress{}
		cfg.Progress = p
		stop := p.Report(os.Stderr, progress, "ftsim")
		defer stop()
	}
	job, err := mpi.NewJob(rt, o)
	if err != nil {
		return err
	}
	st, err := job.SimulateMode(seq, bytes, mode, cfg)
	if cerr := sinks.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s / %s / %s / %s on %s\n", seq.Name(), rt.Label(), o.Label, mode, g)
	fmt.Printf("  stages: %d  messages: %d  bytes: %d\n", seq.NumStages(), st.MessagesDelivered, st.BytesDelivered)
	fmt.Printf("  makespan: %.3f ms  events: %d\n", float64(st.Duration)/float64(des.Millisecond), st.Events)
	fmt.Printf("  aggregate BW: %.1f MB/s  normalized: %.3f\n",
		st.EffectiveBandwidth()/1e6, job.NormalizedBandwidth(st, cfg))
	fmt.Printf("  msg latency: mean %.2f us  min %.2f us  max %.2f us\n",
		float64(st.MeanLatency())/float64(des.Microsecond),
		float64(st.LatencyMin)/float64(des.Microsecond),
		float64(st.LatencyMax)/float64(des.Microsecond))
	for i, d := range st.StageDurations {
		fmt.Printf("  stage %3d: %.3f ms\n", i, float64(d)/float64(des.Millisecond))
	}
	return nil
}
