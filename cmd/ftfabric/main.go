// Command ftfabric exercises the InfiniBand management-plane emulation:
// fabric discovery (ibnetdiscover-style inventory), OpenSM-style LFT
// dumps, and link-fault rerouting reports.
//
// Usage:
//
//	ftfabric -topo 324 -discover
//	ftfabric -topo 324 -dump-lfts > lfts.txt
//	ftfabric -topo 324 -fail 4 -seed 2 -report
package main

import (
	"flag"
	"fmt"
	"os"

	"fattree/internal/cps"
	"fattree/internal/fabric"
	"fattree/internal/hsd"
	"fattree/internal/obs/prof"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	var (
		spec     = flag.String("topo", "324", "topology spec")
		discover = flag.Bool("discover", false, "sweep the fabric and print the inventory")
		dumpLFTs = flag.Bool("dump-lfts", false, "print OpenSM-style forwarding tables")
		fail     = flag.Int("fail", 0, "kill this many random fabric links, reroute and report")
		seed     = flag.Int64("seed", 1, "fault-draw seed")
		report   = flag.Bool("report", false, "analyze Shift HSD on the (re)routed fabric")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*spec, *discover, *dumpLFTs, *fail, *seed, *report)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftfabric:", err)
		os.Exit(1)
	}
}

func run(spec string, discover, dumpLFTs bool, fail int, seed int64, report bool) error {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	sn := fabric.NewSubnet(t)

	did := false
	if discover {
		did = true
		inv, err := sn.Discover()
		if err != nil {
			return err
		}
		fmt.Printf("fabric %s: %d hosts, %d switches, %d links\n", g, inv.Hosts, inv.Switches, inv.Links)
		for _, guid := range inv.SortedSwitchGUIDs() {
			fmt.Printf("  switch 0x%016x: %d connected ports\n", uint64(guid), inv.PortsBySwitch[guid])
		}
	}

	var lft *route.LFT
	if fail > 0 {
		did = true
		fs := fabric.NewFaultSet(t)
		if err := fs.FailRandomFabricLinks(fail, seed); err != nil {
			return err
		}
		rerouted, res, err := fs.RouteAround()
		if err != nil {
			return err
		}
		lft = rerouted
		fmt.Printf("rerouted around %d dead links: %d unroutable hosts, %d broken pairs\n",
			fs.Failed(), len(res.UnroutableHosts), res.BrokenPairs)
	} else {
		lft = route.DModK(t)
	}

	if dumpLFTs {
		did = true
		st := sn.Program(lft)
		if err := st.WriteLFTs(os.Stdout); err != nil {
			return err
		}
	}
	if report {
		did = true
		rep, err := hsd.Analyze(lft, order.Topology(t.NumHosts(), nil), cps.Shift(t.NumHosts()))
		if err != nil {
			return err
		}
		fmt.Printf("shift under %s + topology order: max HSD %d, avg max HSD %.3f, contention-free %v\n",
			lft.Name, rep.MaxHSD(), rep.AvgMaxHSD(), rep.ContentionFree())
	}
	if !did {
		flag.Usage()
	}
	return nil
}
