// Command ftfabric exercises the InfiniBand management-plane emulation:
// fabric discovery (ibnetdiscover-style inventory), OpenSM-style LFT
// dumps, and link-fault rerouting reports.
//
// Usage:
//
//	ftfabric -topo 324 -discover
//	ftfabric -topo 324 -dump-lfts > lfts.txt
//	ftfabric -topo 324 -fail 4 -seed 2 -report
//	ftfabric -topo 324 -discover -fail 4 -report -json
//
// With -json the discover/fault/report results are emitted as one
// schema-stamped fattree-fabric/v1 document instead of text, following
// the fthsd -json convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fattree/internal/cps"
	"fattree/internal/fabric"
	"fattree/internal/hsd"
	"fattree/internal/obs/prof"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	var (
		spec     = flag.String("topo", "324", "topology spec")
		discover = flag.Bool("discover", false, "sweep the fabric and print the inventory")
		dumpLFTs = flag.Bool("dump-lfts", false, "print OpenSM-style forwarding tables")
		fail     = flag.Int("fail", 0, "kill this many random fabric links, reroute and report")
		seed     = flag.Int64("seed", 1, "fault-draw seed")
		report   = flag.Bool("report", false, "analyze Shift HSD on the (re)routed fabric")
		jsonOut  = flag.Bool("json", false, "emit a fattree-fabric/v1 JSON document instead of text")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*spec, *discover, *dumpLFTs, *fail, *seed, *report, *jsonOut)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftfabric:", err)
		os.Exit(1)
	}
}

func run(spec string, discover, dumpLFTs bool, fail int, seed int64, report, jsonOut bool) error {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	sn := fabric.NewSubnet(t)
	doc := fabric.NewDoc(t)

	did := false
	if discover {
		did = true
		inv, err := sn.Discover()
		if err != nil {
			return err
		}
		doc.SetInventory(inv)
		if !jsonOut {
			fmt.Printf("fabric %s: %d hosts, %d switches, %d links\n", g, inv.Hosts, inv.Switches, inv.Links)
			for _, guid := range inv.SortedSwitchGUIDs() {
				fmt.Printf("  switch 0x%016x: %d connected ports\n", uint64(guid), inv.PortsBySwitch[guid])
			}
		}
	}

	var lft *route.LFT
	if fail > 0 {
		did = true
		fs := fabric.NewFaultSet(t)
		if err := fs.FailRandomFabricLinks(fail, seed); err != nil {
			return err
		}
		rerouted, res, err := fs.RouteAround()
		if err != nil {
			return err
		}
		lft = rerouted
		doc.SetFaults(fs, res)
		if !jsonOut {
			fmt.Printf("rerouted around %d dead links: %d unroutable hosts, %d broken pairs\n",
				fs.Failed(), len(res.UnroutableHosts), res.BrokenPairs)
		}
	} else {
		lft = route.DModK(t)
	}
	doc.Routing = lft.Name

	if dumpLFTs {
		did = true
		if jsonOut {
			return fmt.Errorf("-dump-lfts has its own text format; drop -json")
		}
		st := sn.Program(lft)
		if err := st.WriteLFTs(os.Stdout); err != nil {
			return err
		}
	}
	if report {
		did = true
		rep, err := shiftReport(t, lft)
		if err != nil {
			return err
		}
		doc.HSD = &fabric.HSDDoc{
			Sequence:       rep.Sequence,
			Ordering:       rep.Ordering,
			Stages:         len(rep.Stages),
			MaxHSD:         rep.MaxHSD(),
			AvgMaxHSD:      rep.AvgMaxHSD(),
			ContentionFree: rep.ContentionFree(),
		}
		if !jsonOut {
			fmt.Printf("shift under %s + topology order: max HSD %d, avg max HSD %.3f, contention-free %v\n",
				lft.Name, rep.MaxHSD(), rep.AvgMaxHSD(), rep.ContentionFree())
		}
	}
	// Bare -json is itself an action: emit the base fabric document
	// (topology + routing identity) with no optional sections.
	if !did && !jsonOut {
		flag.Usage()
		return nil
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

// shiftReport analyzes the Shift sequence under the topology order,
// skipping pairs a faulted fabric cannot deliver (the analyzer errors on
// dead-end tables otherwise).
func shiftReport(t *topo.Topology, lft *route.LFT) (*hsd.Report, error) {
	paths, err := route.CompileLenient(lft)
	if err != nil {
		return nil, err
	}
	n := t.NumHosts()
	seq := cps.Shift(n)
	o := order.Topology(n, nil)
	a := hsd.NewAnalyzer(paths)
	rep := &hsd.Report{Sequence: seq.Name(), Ordering: o.Label, Routing: lft.Name}
	var pairs [][2]int
	for s := 0; s < seq.NumStages(); s++ {
		pairs = pairs[:0]
		for _, p := range seq.Stage(s) {
			src, dst := o.HostOf[p.Src], o.HostOf[p.Dst]
			if src == dst || paths.Broken(src, dst) {
				continue
			}
			pairs = append(pairs, [2]int{src, dst})
		}
		sr, err := a.Stage(pairs)
		if err != nil {
			return nil, err
		}
		rep.Stages = append(rep.Stages, sr)
	}
	return rep, nil
}
