// Command ftreport turns the toolchain's telemetry into reports:
//
//	ftreport blame -topo 324 -cps recursive-doubling -order random
//	    attributes every overloaded link to the exact flows crossing it
//	    (the HSD model with flow tracking), as a table or -json.
//
//	ftreport html -metrics probes.jsonl -trace trace.json -o report.html
//	    renders the simulator's probe and trace streams into one
//	    self-contained HTML file: link-utilization heatmap, stage
//	    timeline, sparklines and quantile tables. No external assets.
//	    -load adds an ftload sweep as a p99-vs-offered-load curve;
//	    -events adds the daemon's fabric event journal as a timeline;
//	    -linkprobes adds the queue-depth-over-time heatmap, the hot-links
//	    table and (with a sharded -metrics stream) the shard-balance table;
//	    -bakeoff adds an ftbakeoff engine comparison: per-fault-level
//	    tables plus routability degradation curves.
//
//	ftreport bench -in BENCH_2026-08-05.json
//	    ingests `make bench-json` output into the dated history under
//	    results/bench/, compares against the baseline and, with -gate,
//	    exits non-zero on regressions beyond -tolerance.
//
// See docs/OBSERVABILITY.md for every schema this command reads and
// writes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"fattree/internal/mpi"
	"fattree/internal/order"
	"fattree/internal/report"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "blame":
		err = cmdBlame(os.Args[2:])
	case "html":
		err = cmdHTML(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ftreport: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == errGate {
			// The gate's whole point is the exit code; the table already
			// told the story.
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "ftreport:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ftreport <blame|html|bench> [flags]

  blame  attribute overloaded links to the flows crossing them
  html   render probe/trace streams into a self-contained HTML report
  bench  track benchmark history and gate on regressions

Run 'ftreport <subcommand> -h' for flags.`)
}

// outWriter opens the -o target, defaulting to stdout.
func outWriter(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

// closeOut closes w unless it is stdout.
func closeOut(w io.WriteCloser) error {
	if w == os.Stdout {
		return nil
	}
	return w.Close()
}

func cmdBlame(args []string) error {
	fs := flag.NewFlagSet("ftreport blame", flag.ExitOnError)
	var (
		spec     = fs.String("topo", "324", "topology spec")
		cpsName  = fs.String("cps", "recursive-doubling", "CPS: shift | ring | binomial | dissemination | tournament | recursive-doubling | recursive-halving | topo-aware")
		ordering = fs.String("order", "random", "ordering: topology | random | adversarial")
		seed     = fs.Int64("seed", 0, "seed for the random ordering")
		drop     = fs.Int("drop", 0, "randomly exclude this many end-ports (partial job)")
		dropSeed = fs.Int64("drop-seed", 1, "seed for the exclusion draw")
		asJSON   = fs.Bool("json", false, "emit the machine-readable report instead of the table")
		top      = fs.Int("top", 8, "flows to print per hot link in the table (0 = all)")
		outPath  = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)

	rep, err := buildBlame(*spec, *cpsName, *ordering, *seed, *drop, *dropSeed)
	if err != nil {
		return err
	}
	w, err := outWriter(*outPath)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
	} else {
		err = rep.WriteBlameTable(w, *top)
	}
	if cerr := closeOut(w); err == nil {
		err = cerr
	}
	return err
}

// buildBlame assembles topology, routing, ordering and sequence the
// same way fthsd does, then runs the tracked analysis.
func buildBlame(spec, cpsName, ordering string, seed int64, drop int, dropSeed int64) (*report.BlameReport, error) {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	t, err := topo.Build(g)
	if err != nil {
		return nil, err
	}
	n := t.NumHosts()
	var active []int
	if drop > 0 {
		r := rand.New(rand.NewSource(dropSeed))
		perm := r.Perm(n)
		active = append([]int(nil), perm[drop:]...)
	}
	var lft *route.LFT
	if active == nil {
		lft = route.DModK(t)
	} else {
		lft, err = route.DModKActive(t, active)
		if err != nil {
			return nil, err
		}
	}
	rt, err := route.Compile(lft)
	if err != nil {
		return nil, err
	}
	jobSize := n
	if active != nil {
		jobSize = len(active)
	}
	var o *order.Ordering
	switch ordering {
	case "topology":
		o = order.Topology(n, active)
	case "random":
		o = order.Random(n, active, seed)
	case "adversarial":
		if active != nil {
			return nil, fmt.Errorf("adversarial ordering supports full population only")
		}
		o, err = order.Adversarial(t)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown ordering %q", ordering)
	}
	if cpsName == "topo-aware" {
		s, err := mpi.NewTopoAwareSequence(g.M, active)
		if err != nil {
			return nil, err
		}
		return report.BuildBlame(rt, o, s)
	}
	s, err := mpi.NewSequence(mpi.CPSKind(cpsName), jobSize)
	if err != nil {
		return nil, err
	}
	return report.BuildBlame(rt, o, s)
}

func cmdHTML(args []string) error {
	fs := flag.NewFlagSet("ftreport html", flag.ExitOnError)
	var (
		metrics    = fs.String("metrics", "", "probe JSONL stream (from -metrics of ftsim/fthsd)")
		trace      = fs.String("trace", "", "Chrome trace file (from -trace of ftsim/fthsd)")
		load       = fs.String("load", "", "fattree-load/v1 sweep (from ftload -out)")
		events     = fs.String("events", "", "fattree-events/v1 journal (from GET /v1/events)")
		linkprobes = fs.String("linkprobes", "", "fattree-linkprobe/v1 stream (from -link-probes of ftsim)")
		bakeoffIn  = fs.String("bakeoff", "", "fattree-bakeoff/v1 verdict (from ftbakeoff -o)")
		outPath    = fs.String("o", "report.html", "output HTML file (- for stdout)")
		title      = fs.String("title", "", "report title")
		stamp      = fs.Bool("stamp", true, "include a generation timestamp (disable for reproducible output)")
		maxRows    = fs.Int("max-heatmap-rows", 64, "cap on heatmap channel rows")
	)
	fs.Parse(args)
	if *metrics == "" && *trace == "" && *load == "" && *events == "" && *linkprobes == "" && *bakeoffIn == "" {
		return fmt.Errorf("html: need at least one of -metrics, -trace, -load, -events, -linkprobes, -bakeoff")
	}
	var in report.Inputs
	if *metrics != "" {
		f, err := os.Open(*metrics)
		if err != nil {
			return err
		}
		in.Probes, err = report.ParseProbes(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		in.Trace, err = report.ParseTrace(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *load != "" {
		// Comma-separated sweeps (e.g. JSON and binary over the same
		// daemon) each render as their own curve section.
		for _, path := range strings.Split(*load, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			doc, err := report.ParseLoad(f)
			f.Close()
			if err != nil {
				return err
			}
			in.Loads = append(in.Loads, doc)
		}
	}
	if *events != "" {
		f, err := os.Open(*events)
		if err != nil {
			return err
		}
		in.Events, err = report.ParseEvents(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *linkprobes != "" {
		f, err := os.Open(*linkprobes)
		if err != nil {
			return err
		}
		in.LinkProbes, err = report.ParseProbes(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *bakeoffIn != "" {
		f, err := os.Open(*bakeoffIn)
		if err != nil {
			return err
		}
		in.Bakeoff, err = report.ParseBakeoff(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	opt := report.HTMLOptions{
		Title:          *title,
		MaxHeatmapRows: *maxRows,
	}
	if *metrics != "" {
		opt.MetricsFile = filepath.Base(*metrics)
	}
	if *trace != "" {
		opt.TraceFile = filepath.Base(*trace)
	}
	if *load != "" {
		var bases []string
		for _, path := range strings.Split(*load, ",") {
			if path = strings.TrimSpace(path); path != "" {
				bases = append(bases, filepath.Base(path))
			}
		}
		opt.LoadFile = strings.Join(bases, ", ")
	}
	if *events != "" {
		opt.EventsFile = filepath.Base(*events)
	}
	if *linkprobes != "" {
		opt.LinkProbesFile = filepath.Base(*linkprobes)
	}
	if *bakeoffIn != "" {
		opt.BakeoffFile = filepath.Base(*bakeoffIn)
	}
	if *stamp {
		opt.Generated = time.Now().UTC().Format(time.RFC3339)
	}
	w, err := outWriter(*outPath)
	if err != nil {
		return err
	}
	err = report.RenderHTML(w, in, opt)
	if cerr := closeOut(w); err == nil {
		err = cerr
	}
	return err
}

// errGate signals a failed -gate; main maps it to a bare exit 1.
var errGate = fmt.Errorf("bench gate failed")

var dateInName = regexp.MustCompile(`\d{4}-\d{2}-\d{2}`)

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("ftreport bench", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "bench output to ingest: `go test -json` or plain -bench text (- for stdin); empty compares newest history entry only")
		history   = fs.String("history", filepath.Join("results", "bench"), "history directory")
		date      = fs.String("date", "", "date of the run (YYYY-MM-DD; default from -in filename, else today)")
		label     = fs.String("label", "", "freeform label stored with the run")
		baseline  = fs.String("baseline", "", "baseline run to compare against (default <history>/baseline.json)")
		tolerance = fs.Float64("tolerance", 0.10, "allowed slowdown fraction before a bench counts as regressed")
		gate      = fs.Bool("gate", false, "exit non-zero when regressions exceed tolerance")
		noSave    = fs.Bool("no-save", false, "compare only; do not write the run into the history")
	)
	fs.Parse(args)

	var cur *report.BenchRun
	if *in != "" {
		var r io.Reader
		if *in == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		results, err := report.ParseGoBench(r)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			return fmt.Errorf("bench: no benchmark results found in %s", *in)
		}
		d := *date
		if d == "" {
			d = dateInName.FindString(filepath.Base(*in))
		}
		if d == "" {
			d = time.Now().UTC().Format("2006-01-02")
		}
		cur = &report.BenchRun{Date: d, Label: *label, Results: results}
		if !*noSave {
			path, seeded, err := report.SaveRun(*history, cur)
			if err != nil {
				return err
			}
			fmt.Printf("recorded %d benchmarks in %s\n", len(results), path)
			if seeded {
				fmt.Printf("seeded %s from this run; future gates compare against it\n",
					filepath.Join(*history, "baseline.json"))
				return nil
			}
		}
	} else {
		runs, err := report.LoadHistory(*history)
		if err != nil {
			return err
		}
		if len(runs) == 0 {
			return fmt.Errorf("bench: no runs under %s; ingest one with -in", *history)
		}
		cur = runs[len(runs)-1]
	}

	basePath := *baseline
	if basePath == "" {
		basePath = filepath.Join(*history, "baseline.json")
	}
	base, err := report.LoadRun(basePath)
	if err != nil {
		return fmt.Errorf("bench: loading baseline: %w", err)
	}
	c := report.Compare(base, cur, *tolerance)
	if err := c.WriteTable(os.Stdout); err != nil {
		return err
	}
	if *gate && c.Bad() {
		return errGate
	}
	return nil
}
