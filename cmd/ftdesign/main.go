// Command ftdesign is a capacity planner: given a desired node count and
// a switch port count, it enumerates the Real-Life Fat-Tree
// configurations that can host it, with their hardware bills (switches,
// cables), allocation granules and spare capacity — the decision a
// cluster architect makes before anything in this repository runs.
//
// Usage:
//
//	ftdesign -nodes 1900 -ports 36
//	ftdesign -nodes 500 -ports 24 -max-levels 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"fattree/internal/obs/prof"
	"fattree/internal/topo"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 324, "required end-port count")
		ports     = flag.Int("ports", 36, "switch port count (2K)")
		maxLevels = flag.Int("max-levels", 3, "maximum tree levels to consider")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*nodes, *ports, *maxLevels)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftdesign:", err)
		os.Exit(1)
	}
}

type option struct {
	g      topo.PGFT
	spare  int
	levels int
}

func run(nodes, ports, maxLevels int) error {
	if nodes < 1 {
		return fmt.Errorf("need a positive node count")
	}
	if ports < 2 || ports%2 != 0 {
		return fmt.Errorf("switch port count must be a positive even number, got %d", ports)
	}
	k := ports / 2
	opts := enumerate(nodes, k, maxLevels)
	if len(opts) == 0 {
		return fmt.Errorf("no RLFT built from %d-port switches fits %d nodes within %d levels (max %d)",
			ports, nodes, maxLevels, maxCapacity(k, maxLevels))
	}

	fmt.Printf("RLFT options for >= %d nodes on %d-port switches (K=%d):\n\n", nodes, ports, k)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "topology\tnodes\tspare\tlevels\tswitches\tcables\tgranule\tdiameter")
	for _, o := range opts {
		t, err := topo.Build(o.g)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			o.g, o.g.NumHosts(), o.spare, o.levels,
			o.g.TotalSwitches(), len(t.Links), o.g.AllocationGranule(), o.g.Diameter())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nreading: pick the smallest spare that meets growth plans; allocate jobs in")
	fmt.Println("multiples of the granule to keep the contention-free guarantee (see README).")
	return nil
}

// enumerate lists the RLFT2/RLFT3 shapes holding at least `nodes` hosts,
// smallest first, deduplicated by capacity per level count.
func enumerate(nodes, k, maxLevels int) []option {
	var out []option
	if maxLevels >= 2 {
		for leaves := 1; leaves <= 2*k; leaves++ {
			g, err := topo.RLFT2(k, leaves)
			if err != nil {
				continue
			}
			if g.NumHosts() >= nodes {
				out = append(out, option{g: g, spare: g.NumHosts() - nodes, levels: 2})
			}
		}
	}
	if maxLevels >= 3 {
		for groups := 1; groups <= 2*k; groups++ {
			g, err := topo.RLFT3(k, groups)
			if err != nil {
				continue
			}
			if g.NumHosts() >= nodes {
				out = append(out, option{g: g, spare: g.NumHosts() - nodes, levels: 3})
			}
		}
	}
	// Single switch covers tiny clusters.
	if nodes <= 2*k {
		if g, err := topo.NewPGFT(1, []int{2 * k}, []int{1}, []int{1}); err == nil {
			out = append(out, option{g: g, spare: 2*k - nodes, levels: 1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].spare != out[j].spare {
			return out[i].spare < out[j].spare
		}
		return out[i].levels < out[j].levels
	})
	// Keep the best few per level count.
	perLevel := map[int]int{}
	var trimmed []option
	for _, o := range out {
		if perLevel[o.levels] < 3 {
			trimmed = append(trimmed, o)
			perLevel[o.levels]++
		}
	}
	return trimmed
}

func maxCapacity(k, maxLevels int) int {
	best := 2 * k
	if maxLevels >= 2 {
		best = 2 * k * k
	}
	if maxLevels >= 3 {
		best = 2 * k * k * k
	}
	return best
}
