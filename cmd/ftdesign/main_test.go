package main

import "testing"

func TestEnumerateFindsPaperCluster(t *testing.T) {
	// 1900 nodes on 36-port switches: the tightest option must be the
	// paper's 1944-node RLFT.
	opts := enumerate(1900, 18, 3)
	if len(opts) == 0 {
		t.Fatal("no options")
	}
	best := opts[0]
	if best.g.NumHosts() != 1944 || best.spare != 44 {
		t.Errorf("best option = %v (%d hosts, %d spare), want the 1944-node RLFT",
			best.g, best.g.NumHosts(), best.spare)
	}
}

func TestEnumerateSmall(t *testing.T) {
	// 20 nodes on 8-port switches: a 2-level option must exist; single
	// switch cannot fit 20 > 2K=8.
	opts := enumerate(20, 4, 3)
	if len(opts) == 0 {
		t.Fatal("no options")
	}
	for _, o := range opts {
		if o.g.NumHosts() < 20 {
			t.Errorf("option %v too small", o.g)
		}
		if o.levels == 1 {
			t.Errorf("single switch cannot host 20 nodes on 8 ports")
		}
	}
	// Tiny cluster gets the single-switch option.
	tiny := enumerate(6, 4, 3)
	found := false
	for _, o := range tiny {
		if o.levels == 1 {
			found = true
		}
	}
	if !found {
		t.Error("6 nodes on 8-port switches should offer a single switch")
	}
}

func TestEnumerateRespectsMaxLevels(t *testing.T) {
	for _, o := range enumerate(100, 4, 2) {
		if o.levels > 2 {
			t.Errorf("option %v exceeds max levels", o.g)
		}
	}
	// 100 nodes cannot fit on 8-port switches within 2 levels (max 32).
	if opts := enumerate(100, 4, 2); len(opts) != 0 {
		t.Errorf("impossible request produced %d options", len(opts))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 36, 3); err == nil {
		t.Error("zero nodes accepted")
	}
	if err := run(10, 35, 3); err == nil {
		t.Error("odd port count accepted")
	}
	if err := run(1<<20, 8, 3); err == nil {
		t.Error("impossible size accepted")
	}
}

func TestMaxCapacity(t *testing.T) {
	if got := maxCapacity(4, 1); got != 8 {
		t.Errorf("1-level capacity = %d, want 8", got)
	}
	if got := maxCapacity(4, 2); got != 32 {
		t.Errorf("2-level capacity = %d, want 32", got)
	}
	if got := maxCapacity(18, 3); got != 11664 {
		t.Errorf("3-level capacity = %d, want 11664", got)
	}
}
