// Command ftfabricd runs the fabric-manager daemon: the long-running
// subnet-manager role (OpenSM in the paper's deployment) serving
// routes, the topology-aware MPI node order, job placements and the
// standing Shift-HSD contention summary over HTTP, while rerouting
// around injected link faults in the background. Readers always see one
// consistent snapshot; fault handling is debounced and validated before
// the snapshot swap.
//
// Usage:
//
//	ftfabricd -topo 324 -addr 127.0.0.1:7474
//	curl localhost:7474/v1/route?src=0\&dst=17
//	curl -X POST localhost:7474/v1/faults -d '{"fail_random":3}'
//	curl localhost:7474/v1/hsd
//
// The same listener also speaks the compact binary route protocol
// (internal/wire): connections opening with the protocol magic are
// sniffed off to the batched RouteSet/Epoch/Order handler, everything
// else is HTTP. ftload -proto binary and the fclient library use it.
//
// SIGINT/SIGTERM drain in-flight requests and stop the event loop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fattree/internal/engine"
	"fattree/internal/fmgr"
	"fattree/internal/obs"
	"fattree/internal/obs/prof"
	"fattree/internal/topo"
	"fattree/internal/wire"
)

func main() {
	var (
		spec        = flag.String("topo", "324", "topology spec")
		engName     = flag.String("engine", "", "routing engine from the registry (default dmodk; \"list\" prints them)")
		addr        = flag.String("addr", "127.0.0.1:7474", "listen address")
		maxInflight = flag.Int("max-inflight", 64, "concurrent /v1 requests before 429")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request handling timeout")
		debounce    = flag.Duration("debounce", 25*time.Millisecond, "fault-event coalescing window before a reroute")
		seed        = flag.Int64("seed", 1, "seed for fail_random fault draws")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget")
		spanTrace   = flag.String("span-trace", "", "write request and rebuild spans to `file` in Chrome trace-event format")
		spanSample  = flag.Int("span-sample", 1, "trace one in N eligible requests (with -span-trace)")
		journal     = flag.Int("journal", 1024, "fabric event journal capacity (GET /v1/events)")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	if *engName == "list" {
		for _, info := range engine.Infos() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ftfabricd:", err)
		os.Exit(1)
	}
	err := run(options{
		Spec:        *spec,
		Engine:      *engName,
		Addr:        *addr,
		MaxInflight: *maxInflight,
		Timeout:     *timeout,
		Debounce:    *debounce,
		Seed:        *seed,
		Drain:       *drain,
		SpanTrace:   *spanTrace,
		SpanSample:  *spanSample,
		Journal:     *journal,
	})
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftfabricd:", err)
		os.Exit(1)
	}
}

type options struct {
	Spec, Engine, Addr  string
	MaxInflight         int
	Timeout, Debounce   time.Duration
	Seed                int64
	Drain               time.Duration
	SpanTrace           string
	SpanSample, Journal int
}

func run(o options) error {
	g, err := topo.ParseSpec(o.Spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	var spans *obs.SpanTracer
	if o.SpanTrace != "" {
		f, err := os.Create(o.SpanTrace)
		if err != nil {
			return fmt.Errorf("span-trace: %w", err)
		}
		tr := obs.NewTracer(f)
		spans = obs.NewSpanTracer(tr, 1, "ftfabricd")
		defer func() {
			tr.Close()
			f.Close()
		}()
	}
	m, err := fmgr.New(fmgr.Config{
		Topo:           t,
		Engine:         o.Engine,
		Debounce:       o.Debounce,
		Rand:           rand.New(rand.NewSource(o.Seed)),
		Metrics:        reg,
		MaxInflight:    o.MaxInflight,
		RequestTimeout: o.Timeout,
		Spans:          spans,
		SpanSample:     o.SpanSample,
		JournalSize:    o.Journal,
	})
	if err != nil {
		return err
	}
	m.Start()
	defer m.Close()

	srv := &http.Server{
		Handler:           m.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// One listener, two protocols: first-byte sniffing routes binary
	// connections to ServeWire, the rest to the HTTP server.
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(wire.Split(ln, m.ServeWire)) }()
	fmt.Printf("ftfabricd: serving %s (%d hosts, epoch %d, engine %s) on %s (http+wire)\n",
		g, t.NumHosts(), m.Current().Epoch, m.Current().Engine, o.Addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("ftfabricd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.Drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
