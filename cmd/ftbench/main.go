// Command ftbench regenerates the paper's tables and figures. Every
// experiment of DESIGN.md's index is available; -exp all runs the full
// evaluation at paper scale, -quick shrinks clusters and sampling for a
// fast smoke run.
//
// Usage:
//
//	ftbench -exp all -quick
//	ftbench -exp f3
//	ftbench -exp t3 > table3.txt
//	ftbench -exp cf -quick -trace cf.json -metrics cf.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fattree/internal/engine"
	"fattree/internal/exp"
	"fattree/internal/netsim"
	"fattree/internal/obs"
	"fattree/internal/obs/prof"
	"fattree/internal/topo"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment: f1 | f2 | f3 | t3 | ring | cf | wrap | routing | bidir | semantics | placement | latency | taper | patterns | adaptive | jitter | buffers | jobs | queue | faults | all")
		engName  = flag.String("engine", "", "routing engine from the registry for the engine-parametric experiments (default dmodk; \"list\" prints them)")
		quick    = flag.Bool("quick", false, "reduced scale for a fast run")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut  = flag.Bool("json", false, "emit JSON (fattree-table/v1) instead of aligned text")
		compiled = flag.Bool("compiled", true, "analyze via the compiled path cache (disable to force per-pair table walks)")
		shards   = flag.Int("shards", 1, "event-loop shards for every simulation: 1 = sequential, N > 1 = parallel sub-tree partitions, -1 = one per CPU")
		progress = flag.Duration("progress", 0, "print a live progress line to stderr at this wall-clock interval (0 = off)")
		sinks    obs.FileSinks
	)
	sinks.RegisterFlags(flag.CommandLine)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	if *engName == "list" {
		for _, info := range engine.Infos() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}
	exp.UseCompiledPaths = *compiled
	exp.EngineName = *engName
	err := sinks.Open()
	if err == nil && (sinks.Enabled() || *shards != 1 || *progress > 0) {
		// Attach the sinks and the shard count to every simulation the
		// experiments run; the trace concatenates all runs on a shared
		// timeline, and one Progress accumulates across the sweep.
		var prog *netsim.Progress
		if *progress > 0 {
			prog = &netsim.Progress{}
			stop := prog.Report(os.Stderr, *progress, "ftbench")
			defer stop()
		}
		exp.Instrument = func(cfg *netsim.Config) {
			cfg.Metrics = sinks.Registry
			cfg.Probes = sinks.Sampler
			cfg.Trace = sinks.Tracer
			cfg.LinkProbes = sinks.LinkSampler
			cfg.Progress = prog
			cfg.Shards = *shards
		}
	}
	if err == nil {
		err = pf.Start()
	}
	if err == nil {
		err = run(*which, *quick, *csvOut, *jsonOut)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if cerr := sinks.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftbench:", err)
		os.Exit(1)
	}
}

func run(which string, quick, csvOut, jsonOut bool) error {
	sel := map[string]bool{}
	for _, w := range strings.Split(which, ",") {
		sel[strings.TrimSpace(w)] = true
	}
	ran := false
	want := func(k string) bool {
		hit := sel["all"] || sel[k]
		if hit {
			ran = true
		}
		return hit
	}
	out := os.Stdout
	emit := func(t *exp.Table) error {
		switch {
		case jsonOut:
			return t.RenderJSON(out)
		case csvOut:
			return t.RenderCSV(out)
		}
		return t.Render(out)
	}

	if want("f1") {
		t, err := exp.Figure1(5)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("f2") {
		o := exp.DefaultFigure2Opts()
		if quick {
			o.Cluster = topo.Cluster324
			o.Sizes = []int64{8 << 10, 64 << 10, 512 << 10}
			o.ShiftStages = 4
		}
		t, err := exp.Figure2(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("f3") {
		o := exp.DefaultFigure3Opts()
		if quick {
			o.Clusters = []topo.PGFT{topo.Cluster128, topo.Cluster324}
			o.Seeds = 5
			o.ShiftStride = 7
		}
		t, err := exp.Figure3(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("t3") {
		o := exp.DefaultTable3Opts()
		if quick {
			o.Cases = o.Cases[:6]
			o.RandomSeeds = 3
			o.ShiftStride = 5
		}
		t, err := exp.Table3(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("ring") {
		o := exp.DefaultRingOpts()
		if quick {
			o.Cluster = topo.Cluster324
			o.Bytes = 64 << 10
		}
		t, err := exp.RingAdversarial(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("cf") {
		o := exp.DefaultCFOpts()
		if quick {
			o.Cluster = topo.Cluster324
			o.Bytes = 64 << 10
			o.ShiftStages = 4
		}
		t, err := exp.ContentionFree(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("wrap") {
		cluster := topo.Cluster324
		seeds := 5
		if quick {
			cluster = topo.Cluster128
			seeds = 2
		}
		t, err := exp.WrapAblation(cluster, seeds)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("routing") {
		cluster := topo.Cluster1728
		if quick {
			cluster = topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2})
		}
		t, err := exp.RoutingAblation(cluster)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("bidir") {
		cluster := topo.Cluster1944
		if quick {
			cluster = topo.Cluster324
		}
		t, err := exp.BidirAblation(cluster)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("queue") {
		o := exp.DefaultQueueOpts()
		if quick {
			o.Base.Jobs = 150
		}
		t, err := exp.SchedulerPolicies(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("semantics") {
		o := exp.DefaultSemanticsOpts()
		if quick {
			o.Cluster = topo.Cluster128
			o.Bytes = 32 << 10
		}
		t, err := exp.SemanticsComparison(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("placement") {
		cluster := topo.Cluster324
		if quick {
			cluster = topo.Cluster128
		}
		t, err := exp.PlacementComparison(cluster)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("latency") {
		o := exp.DefaultLatencyOpts()
		if quick {
			o.Sizes = []int64{2 << 10, 128 << 10}
		}
		t, err := exp.CollectiveLatency(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("taper") {
		t, err := exp.TaperAblation()
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("patterns") {
		o := exp.DefaultPatternOpts()
		if quick {
			o.Cluster = topo.Cluster128
			o.Bytes = 32 << 10
		}
		t, err := exp.PatternSweep(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("adaptive") {
		o := exp.DefaultAdaptiveOpts()
		if quick {
			o.Cluster = topo.Cluster128
			o.Bytes = 64 << 10
		}
		t, err := exp.AdaptiveComparison(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("jitter") {
		o := exp.DefaultJitterOpts()
		if quick {
			o.Cluster = topo.Cluster128
			o.Bytes = 64 << 10
			o.Stages = 3
		}
		t, err := exp.JitterSensitivity(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("buffers") {
		o := exp.DefaultBufferOpts()
		if quick {
			o.Cluster = topo.Cluster128
			o.Bytes = 64 << 10
			o.Buffers = []int{1, 4, 16}
			o.Stages = 3
		}
		t, err := exp.BufferAblation(o)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("jobs") {
		cluster := topo.Cluster1944
		if quick {
			cluster = topo.Cluster324
		}
		t, err := exp.MultiJob(cluster)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("faults") {
		cluster := topo.Cluster324
		seeds := 5
		if quick {
			cluster = topo.Cluster128
			seeds = 2
		}
		t, err := exp.FaultResilience(cluster, seeds)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("no experiment matched %q (see -h for the list)", which)
	}
	return nil
}
