// Command ftroute computes forwarding tables for a fat-tree and either
// dumps them (like dump_lfts.sh would for an InfiniBand fabric), verifies
// their correctness, or traces a single source-destination path.
//
// Usage:
//
//	ftroute -topo 324 -routing dmodk -verify
//	ftroute -topo 324 -trace 0,323
//	ftroute -topo "pgft:2;4,4;1,2;1,2" -dump | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fattree/internal/engine"
	"fattree/internal/obs/prof"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	var (
		spec    = flag.String("topo", "324", "topology spec")
		routing = flag.String("routing", "dmodk", "routing: dmodk | dmodk-naive | minhop-random")
		engName = flag.String("engine", "", "routing engine from the registry (\"list\" prints them); overrides -routing")
		seed    = flag.Int64("seed", 1, "seed for randomized routings")
		verify  = flag.Bool("verify", false, "verify delivery, minimality and up*/down* shape")
		dump    = flag.Bool("dump", false, "dump the forwarding tables")
		trace   = flag.String("trace", "", "trace a path: src,dst")
		active  = flag.String("active", "", "comma-separated active end-ports for rank-compacted d-mod-k (partial job)")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*spec, *routing, *engName, *seed, *verify, *dump, *trace, *active)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftroute:", err)
		os.Exit(1)
	}
}

func run(spec, routing, engName string, seed int64, verify, dump bool, trace, activeList string) error {
	if engName == "list" {
		for _, info := range engine.Infos() {
			props := []string{}
			if info.LFT {
				props = append(props, "lft")
			}
			if info.FaultAware {
				props = append(props, "fault-aware")
			}
			fmt.Printf("%-16s %-13s %s\n", info.Name, strings.Join(props, ","), info.Description)
		}
		return nil
	}
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	var active []int
	if activeList != "" {
		for _, f := range strings.Split(activeList, ",") {
			h, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad -active entry %q: %v", f, err)
			}
			active = append(active, h)
		}
	}
	var lft *route.LFT
	if engName != "" {
		if active != nil {
			return fmt.Errorf("-active is incompatible with -engine")
		}
		e, err := engine.Build(engName, t, engine.Options{Seed: seed})
		if err != nil {
			return err
		}
		tb, err := e.Tables(nil)
		if err != nil {
			return err
		}
		if tb.LFT == nil {
			return fmt.Errorf("engine %q has no forwarding-table realization to verify or dump", engName)
		}
		lft = tb.LFT
	} else {
		switch routing {
		case "dmodk":
			if active != nil {
				// Malformed sets (duplicates, out-of-range hosts) surface
				// here as errors, not panics.
				lft, err = route.DModKActive(t, active)
				if err != nil {
					return err
				}
			} else {
				lft = route.DModK(t)
			}
		case "dmodk-naive":
			lft = route.DModKNaive(t)
		case "minhop-random":
			lft = route.MinHopRandom(t, seed)
		default:
			return fmt.Errorf("unknown routing %q", routing)
		}
		if active != nil && routing != "dmodk" {
			return fmt.Errorf("-active requires -routing dmodk")
		}
	}
	did := false
	if verify {
		did = true
		if err := route.Verify(lft, 0); err != nil {
			return err
		}
		conflicts, err := route.DownPortConflicts(lft)
		if err != nil {
			return err
		}
		fmt.Printf("%s on %s: all %d^2 pairs verified, %d down-port conflicts\n",
			lft.Name, g, t.NumHosts(), conflicts)
	}
	if trace != "" {
		did = true
		s, d, ok := strings.Cut(trace, ",")
		if !ok {
			return fmt.Errorf("trace wants src,dst")
		}
		src, err := strconv.Atoi(s)
		if err != nil {
			return err
		}
		dst, err := strconv.Atoi(d)
		if err != nil {
			return err
		}
		hops, err := lft.Trace(src, dst)
		if err != nil {
			return err
		}
		fmt.Printf("%d -> %d (%d hops):\n", src, dst, len(hops))
		for i, h := range hops {
			lk := &t.Links[h.Link]
			lo := t.Node(t.Ports[lk.Lower].Node)
			up := t.Node(t.Ports[lk.Upper].Node)
			dir := "up  "
			if !h.Up {
				dir = "down"
			}
			fmt.Printf("  %2d %s %v <-> %v\n", i, dir, lo, up)
		}
	}
	if dump || !did {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintf(w, "# %s forwarding tables for %s\n", lft.Name, g)
		for l := 1; l <= g.H; l++ {
			for _, id := range t.ByLevel[l] {
				n := t.Node(id)
				fmt.Fprintf(w, "switch %v\n", n)
				for dst := 0; dst < t.NumHosts(); dst++ {
					p := lft.OutPort(id, dst)
					if p == topo.None {
						continue
					}
					port := t.Ports[p]
					tag := 'u'
					if port.Dir == topo.Down {
						tag = 'd'
					}
					fmt.Fprintf(w, "  dst %4d -> %c%d\n", dst, tag, port.Num)
				}
			}
		}
	}
	return nil
}
