// Command ftviz renders fat-tree topologies: Graphviz DOT for drawing,
// optionally annotated with per-link flow counts of a traffic stage, or
// the paper's Figure 1-style per-leaf up-port listing.
//
// Usage:
//
//	ftviz -topo "pgft:2;4,4;1,2;1,2" -dot > tree.dot
//	ftviz -topo "pgft:2;4,4;1,2;1,2" -dot -shift 4 -order random -seed 2
//	ftviz -topo "pgft:2;4,4;1,2;1,2" -fig1 -shift 4 -order topology
package main

import (
	"flag"
	"fmt"
	"os"

	"fattree/internal/hsd"
	"fattree/internal/obs/prof"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
	"fattree/internal/viz"
)

func main() {
	var (
		spec     = flag.String("topo", "pgft:2;4,4;1,2;1,2", "topology spec")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT")
		fig1     = flag.Bool("fig1", false, "emit the Figure 1-style leaf/up-port listing")
		shift    = flag.Int("shift", 0, "annotate with the displacement-d permutation's link loads (0 = none)")
		ordering = flag.String("order", "topology", "ordering: topology | random")
		seed     = flag.Int64("seed", 0, "random-ordering seed")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*spec, *dot, *fig1, *shift, *ordering, *seed)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftviz:", err)
		os.Exit(1)
	}
}

func run(spec string, dot, fig1 bool, shift int, ordering string, seed int64) error {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	lft := route.DModK(t)
	n := t.NumHosts()

	var o *order.Ordering
	switch ordering {
	case "topology":
		o = order.Topology(n, nil)
	case "random":
		o = order.Random(n, nil, seed)
	default:
		return fmt.Errorf("unknown ordering %q", ordering)
	}

	var pairs [][2]int
	if shift > 0 {
		for r := 0; r < n; r++ {
			pairs = append(pairs, [2]int{o.HostOf[r], o.HostOf[(r+shift)%n]})
		}
	}

	if fig1 {
		if pairs == nil {
			return fmt.Errorf("-fig1 needs -shift")
		}
		return viz.Figure1Style(os.Stdout, lft, pairs)
	}
	if !dot {
		return fmt.Errorf("pick -dot or -fig1")
	}
	opts := viz.DOTOptions{RankPerLevel: true}
	if pairs != nil {
		a := hsd.NewAnalyzer(lft)
		if _, err := a.Stage(pairs); err != nil {
			return err
		}
		up, down := a.LinkLoads(nil, nil)
		opts.UpLoads, opts.DownLoads = up, down
		opts.HotThreshold = 2
	}
	return viz.WriteDOT(os.Stdout, t, opts)
}
