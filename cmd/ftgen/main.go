// Command ftgen builds a PGFT/RLFT topology and writes its description
// (header plus full link list) to stdout or a file.
//
// Usage:
//
//	ftgen -topo 324 [-o cluster.topo] [-summary]
//	ftgen -topo "pgft:2;4,4;1,2;1,2"
//	ftgen -topo "rlft3:18,6" -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"fattree/internal/obs/prof"
	"fattree/internal/topo"
)

func main() {
	var (
		spec    = flag.String("topo", "324", "topology spec (see internal/topo.ParseSpec)")
		out     = flag.String("o", "", "output file (default stdout)")
		summary = flag.Bool("summary", false, "print structural summary instead of the link list")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*spec, *out, *summary)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftgen:", err)
		os.Exit(1)
	}
}

func run(spec, out string, summary bool) error {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if summary {
		fmt.Fprintf(w, "%s\n", g)
		fmt.Fprintf(w, "hosts:    %d\n", t.NumHosts())
		for l := 1; l <= g.H; l++ {
			fmt.Fprintf(w, "level %d:  %d switches (%d down, %d up ports each)\n",
				l, g.NumSwitches(l), g.DownPorts(l), g.UpPorts(l))
		}
		fmt.Fprintf(w, "links:    %d\n", len(t.Links))
		if k, ok := g.IsRLFT(); ok {
			fmt.Fprintf(w, "RLFT:     yes (arity K=%d, switches have %d ports)\n", k, 2*k)
		} else {
			fmt.Fprintf(w, "RLFT:     no\n")
		}
		fmt.Fprintf(w, "CBB:      constant=%v\n", g.ConstantCBB())
		return nil
	}
	_, err = t.WriteTo(w)
	return err
}
