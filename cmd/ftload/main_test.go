package main

import (
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fattree/internal/fmgr"
	"fattree/internal/obs"
	"fattree/internal/topo"
	"fattree/internal/wire"
)

func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	g, err := topo.ParseSpec("rlft2:4,8")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fmgr.New(fmgr.Config{
		Topo:    tp,
		Metrics: obs.NewRegistry(),
		Rand:    rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	t.Cleanup(m.Close)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestSweepClosed(t *testing.T) {
	srv := startDaemon(t)
	doc, err := sweep(config{
		Addr:     srv.URL,
		Mode:     "closed",
		Levels:   "2,1", // deliberately unsorted
		Duration: 150 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Seed:     1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "fattree-load/v1" || doc.Endpoint != "GET /v1/route" {
		t.Fatalf("doc header: %+v", doc)
	}
	if doc.Hosts != 32 {
		t.Fatalf("hosts = %d, want 32", doc.Hosts)
	}
	if len(doc.Levels) != 2 {
		t.Fatalf("%d levels, want 2", len(doc.Levels))
	}
	// Ladder must be emitted monotone even when given unsorted.
	if doc.Levels[0].Concurrency != 1 || doc.Levels[1].Concurrency != 2 {
		t.Fatalf("levels not sorted: %+v", doc.Levels)
	}
	for i, lvl := range doc.Levels {
		if lvl.Mode != "closed" || lvl.Sent == 0 || lvl.Errors != 0 {
			t.Fatalf("level %d: %+v", i, lvl)
		}
		if lvl.P50US <= 0 || lvl.P99US < lvl.P50US || lvl.MaxUS < lvl.P99US {
			t.Fatalf("level %d quantiles disordered: %+v", i, lvl)
		}
		if lvl.ServerP99US <= 0 {
			t.Fatalf("level %d: server histogram recorded nothing: %+v", i, lvl)
		}
		if lvl.BucketP99US <= 0 {
			t.Fatalf("level %d: no bucketized client p99: %+v", i, lvl)
		}
	}
	// Loopback with no contention: client and server tails must agree
	// within a loose factor once both go through the same buckets.
	if err := checkAgreement(doc, 3.0); err != nil {
		t.Fatalf("agreement at generous tolerance: %v", err)
	}
}

func TestSweepOpen(t *testing.T) {
	srv := startDaemon(t)
	doc, err := sweep(config{
		Addr:        srv.URL,
		Mode:        "open",
		Levels:      "200",
		Duration:    200 * time.Millisecond,
		Warmup:      20 * time.Millisecond,
		Outstanding: 64,
		Seed:        1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lvl := doc.Levels[0]
	if lvl.Mode != "open" || lvl.OfferedRPS != 200 {
		t.Fatalf("level: %+v", lvl)
	}
	if lvl.Sent == 0 || lvl.Errors != 0 {
		t.Fatalf("open level served nothing cleanly: %+v", lvl)
	}
	// At 200/s a loopback route lookup never saturates 64 outstanding.
	if lvl.Shed != 0 {
		t.Fatalf("shed %d ticks at trivial load", lvl.Shed)
	}
}

// startDualDaemon serves HTTP and the binary protocol on one sniffed
// listener — the shape ftfabricd deploys — and returns its base URL.
func startDualDaemon(t *testing.T) string {
	t.Helper()
	g, err := topo.ParseSpec("rlft2:4,8")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fmgr.New(fmgr.Config{Topo: tp, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	t.Cleanup(m.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(wire.Split(ln, m.ServeWire))
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func TestSweepBinaryClosed(t *testing.T) {
	url := startDualDaemon(t)
	doc, err := sweep(config{
		Addr:     url,
		Proto:    "binary",
		Batch:    8,
		Mode:     "closed",
		Levels:   "2",
		Duration: 150 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Seed:     1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Protocol != "binary" || doc.Batch != 8 || doc.Endpoint != "route_set" {
		t.Fatalf("doc header: %+v", doc)
	}
	lvl := doc.Levels[0]
	if lvl.Sent == 0 || lvl.Errors != 0 || lvl.EpochRegressions != 0 {
		t.Fatalf("level: %+v", lvl)
	}
	if lvl.RoutesRPS < lvl.AchievedRPS*7.9 {
		t.Fatalf("routes/s %.0f not ~8x req/s %.0f", lvl.RoutesRPS, lvl.AchievedRPS)
	}
	if lvl.ServerP99US <= 0 {
		t.Fatalf("wire histogram recorded nothing: %+v", lvl)
	}
}

func TestSweepBinaryOpen(t *testing.T) {
	url := startDualDaemon(t)
	doc, err := sweep(config{
		Addr:        url,
		Proto:       "binary",
		Batch:       4,
		Mode:        "open",
		Levels:      "200",
		Duration:    200 * time.Millisecond,
		Warmup:      20 * time.Millisecond,
		Outstanding: 64,
		Seed:        1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lvl := doc.Levels[0]
	if lvl.Mode != "open" || lvl.Sent == 0 || lvl.Errors != 0 || lvl.Shed != 0 {
		t.Fatalf("level: %+v", lvl)
	}
}

func TestParseAddrs(t *testing.T) {
	base, bin, err := parseAddrs("http://a:1, http://b:2/")
	if err != nil || base != "http://a:1" || len(bin) != 2 || bin[0] != "a:1" || bin[1] != "b:2" {
		t.Fatalf("base=%q bin=%v err=%v", base, bin, err)
	}
	if _, _, err := parseAddrs("https://a:1"); err == nil {
		t.Fatal("https accepted for binary dialing")
	}
	if _, _, err := parseAddrs(" ,"); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestSweepBadInputs(t *testing.T) {
	if _, err := sweep(config{Mode: "sideways"}, io.Discard); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := parseLevels(""); err == nil {
		t.Fatal("empty ladder accepted")
	}
	if _, err := parseLevels("4,-1"); err == nil {
		t.Fatal("negative level accepted")
	}
}

func TestHistDelta(t *testing.T) {
	bounds := []float64{10, 100}
	before := obs.HistogramSnapshot{Bounds: bounds, Counts: []uint64{5, 2, 0}, Count: 7, Sum: 100}
	after := obs.HistogramSnapshot{Bounds: bounds, Counts: []uint64{5, 6, 1}, Count: 12, Sum: 400}
	d := histDelta(before, after)
	if d.Count != 5 || d.Sum != 300 {
		t.Fatalf("delta count/sum: %+v", d)
	}
	if d.Counts[0] != 0 || d.Counts[1] != 4 || d.Counts[2] != 1 {
		t.Fatalf("delta counts: %v", d.Counts)
	}
	if q := d.Quantile(0.5); q <= 10 || q > 100 {
		t.Fatalf("delta p50 %v outside (10,100]", q)
	}
}

func TestExactQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := exactQuantile(s, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := exactQuantile(s, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := exactQuantile(s, 0.5); got != 2.5 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := exactQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}
