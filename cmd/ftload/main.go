// Command ftload sweeps offered load against a running ftfabricd and
// reports the latency curve: for each rung of a concurrency ladder
// (closed loop) or offered-rate ladder (open loop) it hammers one
// endpoint for a fixed window, measures client-side p50/p95/p99, and
// cross-checks the tail against the daemon's own per-endpoint RED
// histogram over the same window. The sweep is written as a
// fattree-load/v1 JSON document that `ftreport html -load` turns into
// a p99-vs-offered-load curve.
//
// Usage:
//
//	ftfabricd -topo 324 &
//	ftload -addr http://127.0.0.1:7474 -mode closed -levels 1,2,4,8 -duration 2s -out load.json
//	ftload -addr http://127.0.0.1:7474 -mode open -levels 200,400,800 -agree 0.25
//	ftload -addr http://127.0.0.1:7474 -proto binary -batch 32 -levels 1,2,4,8
//
// With -proto binary each request is one batched RouteSet frame of
// -batch random pairs over the compact wire protocol (same listener,
// sniffed by magic byte), sent through the fclient library. -addr may
// then list several replicas comma-separated; the client sheds stale
// or unhealthy ones. Every response epoch is checked for monotonicity:
// a rollback prints an "epoch-mix" line to stderr and fails the run,
// which the replica smoke test greps for.
//
// With -agree F the run fails (exit 1) unless, at the lowest level,
// the client-side p99 — re-bucketed through the server's histogram
// bounds after subtracting the measured RTT floor — agrees with the
// server histogram p99 within fraction F.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fattree/internal/fclient"
	"fattree/internal/obs"
	"fattree/internal/report"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:7474", "daemon base URL; -proto binary accepts a comma-separated replica list")
		proto       = flag.String("proto", "json", "json (per-pair HTTP) or binary (batched RouteSet frames)")
		batch       = flag.Int("batch", 16, "binary: random pairs per RouteSet request")
		mode        = flag.String("mode", "closed", "closed (concurrency ladder) or open (offered-rate ladder)")
		levels      = flag.String("levels", "1,2,4,8", "comma-separated ladder: workers (closed) or requests/sec (open)")
		duration    = flag.Duration("duration", 2*time.Second, "measurement window per level")
		warmup      = flag.Duration("warmup", 250*time.Millisecond, "per-level warmup excluded from stats")
		outstanding = flag.Int("max-outstanding", 256, "open loop: in-flight cap before ticks are shed")
		seed        = flag.Int64("seed", 1, "seed for src/dst pair draws")
		agree       = flag.Float64("agree", 0, "fail unless client and server p99 agree within this fraction at the lowest level (0 disables)")
		out         = flag.String("out", "", "write the fattree-load/v1 document here (default stdout)")
	)
	flag.Parse()
	doc, err := sweep(config{
		Addr:        *addr,
		Proto:       *proto,
		Batch:       *batch,
		Mode:        *mode,
		Levels:      *levels,
		Duration:    *duration,
		Warmup:      *warmup,
		Outstanding: *outstanding,
		Seed:        *seed,
	}, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftload:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "ftload:", err)
		os.Exit(1)
	}
	if *agree > 0 {
		if err := checkAgreement(doc, *agree); err != nil {
			fmt.Fprintln(os.Stderr, "ftload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ftload: client/server p99 agree within %.0f%% at the lowest level\n", *agree*100)
	}
	var regressions int64
	for _, lvl := range doc.Levels {
		regressions += lvl.EpochRegressions
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "ftload: epoch-mix: %d response(s) rolled the epoch backwards\n", regressions)
		os.Exit(1)
	}
}

// config parameterizes one sweep; separated from flags so tests drive
// sweeps in-process.
type config struct {
	Addr        string
	Proto       string // "" or "json" or "binary"
	Batch       int    // binary: pairs per RouteSet request
	Mode        string
	Levels      string
	Duration    time.Duration
	Warmup      time.Duration
	Outstanding int
	Seed        int64

	binAddrs []string // dial targets derived from Addr by sweep()
}

// endpointLabel is the swept route's RED endpoint label; it must match
// the daemon's so the server histogram lookup finds the right series.
func endpointLabel(proto string) string {
	if proto == "binary" {
		return "route_set"
	}
	return "GET /v1/route"
}

// histogramMetric names the daemon histogram the label lives under.
func histogramMetric(proto string) string {
	if proto == "binary" {
		return "fmgr_wire_request_duration_us"
	}
	return "fmgr_http_request_duration_us"
}

// parseAddrs splits the comma-separated replica list into the HTTP base
// URL used for metadata/metrics (the first replica) and the host:port
// dial targets for the binary client.
func parseAddrs(addr string) (httpBase string, binAddrs []string, err error) {
	for _, part := range strings.Split(addr, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part == "" {
			continue
		}
		if strings.HasPrefix(part, "https://") {
			return "", nil, fmt.Errorf("binary protocol needs plain TCP, not %q", part)
		}
		if httpBase == "" {
			httpBase = part
		}
		binAddrs = append(binAddrs, strings.TrimPrefix(part, "http://"))
	}
	if httpBase == "" {
		return "", nil, fmt.Errorf("empty address list %q", addr)
	}
	return httpBase, binAddrs, nil
}

func sweep(cfg config, progress io.Writer) (*report.LoadDoc, error) {
	if cfg.Mode != "closed" && cfg.Mode != "open" {
		return nil, fmt.Errorf("unknown mode %q (want closed or open)", cfg.Mode)
	}
	if cfg.Proto == "" {
		cfg.Proto = "json"
	}
	if cfg.Proto != "json" && cfg.Proto != "binary" {
		return nil, fmt.Errorf("unknown protocol %q (want json or binary)", cfg.Proto)
	}
	if cfg.Batch <= 0 || cfg.Proto == "json" {
		cfg.Batch = 1 // JSON resolves exactly one route per request
	}
	ladder, err := parseLevels(cfg.Levels)
	if err != nil {
		return nil, err
	}
	httpBase, binAddrs, err := parseAddrs(cfg.Addr)
	if err != nil {
		return nil, err
	}
	cfg.Addr = httpBase
	cfg.binAddrs = binAddrs
	client := &http.Client{Timeout: 10 * time.Second}

	hosts, err := numHosts(client, cfg.Addr)
	if err != nil {
		return nil, err
	}
	var floorUS, floorP99US float64
	if cfg.Proto == "binary" {
		floorUS, floorP99US, err = rttFloorBinary(binAddrs)
	} else {
		floorUS, floorP99US, err = rttFloorUS(client, cfg.Addr)
	}
	if err != nil {
		return nil, err
	}
	doc := &report.LoadDoc{
		Schema:        report.LoadSchema,
		Target:        cfg.Addr,
		Endpoint:      endpointLabel(cfg.Proto),
		Protocol:      cfg.Proto,
		Hosts:         hosts,
		RTTFloorUS:    floorUS,
		RTTFloorP99US: floorP99US,
	}
	if cfg.Proto == "binary" {
		doc.Batch = cfg.Batch
	}
	fmt.Fprintf(progress, "ftload: %s (%s), %d hosts, rtt floor %.1fµs (p99 %.1fµs), %s ladder %v\n",
		cfg.Addr, cfg.Proto, hosts, floorUS, floorP99US, cfg.Mode, ladder)

	for _, rung := range ladder {
		before, err := serverHistogram(client, cfg.Addr, cfg.Proto)
		if err != nil {
			return nil, err
		}
		var lvl report.LoadLevel
		if cfg.Mode == "closed" {
			lvl, err = closedLevel(client, cfg, int(rung), hosts)
		} else {
			lvl, err = openLevel(client, cfg, rung, hosts)
		}
		if err != nil {
			return nil, err
		}
		after, err := serverHistogram(client, cfg.Addr, cfg.Proto)
		if err != nil {
			return nil, err
		}
		lvl.ServerP99US = histDelta(before, after).Quantile(0.99)
		lvl.RoutesRPS = lvl.AchievedRPS * float64(cfg.Batch)
		doc.Levels = append(doc.Levels, lvl)
		line := fmt.Sprintf("ftload: %s: %.0f req/s (%.0f routes/s), p50 %.1fµs p99 %.1fµs (server p99 %.1fµs), %d errors",
			levelLabel(lvl), lvl.AchievedRPS, lvl.RoutesRPS, lvl.P50US, lvl.P99US, lvl.ServerP99US, lvl.Errors)
		if lvl.Mode == "open" {
			line += fmt.Sprintf(", shed %d (%.0f/s)", lvl.Shed, lvl.ShedRPS)
		}
		fmt.Fprintln(progress, line)
	}
	return doc, nil
}

func levelLabel(lvl report.LoadLevel) string {
	if lvl.Mode == "closed" {
		return fmt.Sprintf("closed c=%d", lvl.Concurrency)
	}
	return fmt.Sprintf("open %.0f/s", lvl.OfferedRPS)
}

// parseLevels parses the comma ladder and sorts it ascending so the
// emitted sweep is monotone in offered load.
func parseLevels(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad level %q (want a positive number)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty level ladder")
	}
	sort.Float64s(out)
	return out, nil
}

// numHosts learns the cluster size from GET /v1/order.
func numHosts(client *http.Client, addr string) (int, error) {
	var doc struct {
		HostOf []int `json:"host_of"`
	}
	if err := getJSON(client, addr+"/v1/order", &doc); err != nil {
		return 0, err
	}
	if len(doc.HostOf) == 0 {
		return 0, fmt.Errorf("daemon reports zero hosts")
	}
	return len(doc.HostOf), nil
}

// rttFloorUS measures the /healthz round trip — the HTTP-stack overhead
// a client-side latency carries that the server-side handler histogram
// does not — and returns its median plus its bucketized p99. The median
// characterizes the typical floor; the p99 is what the agreement gate
// subtracts, because client and server distributions are compared tail
// against tail and the transport tail (scheduler wakeups, TCP jitter)
// is far fatter than the transport median.
func rttFloorUS(client *http.Client, addr string) (median, p99 float64, err error) {
	const probes = 200
	samples := make([]float64, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		resp, err := client.Get(addr + "/healthz")
		if err != nil {
			return 0, 0, fmt.Errorf("healthz probe: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		samples = append(samples, float64(time.Since(start).Microseconds()))
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], bucketizedP99(samples), nil
}

// bucketizedP99 estimates p99 through the server's histogram bounds, so
// every quantity the agreement gate compares carries the same bucketing
// error.
func bucketizedP99(samples []float64) float64 {
	counts := make([]uint64, len(obs.DefaultREDBucketsUS)+1)
	for _, s := range samples {
		counts[sort.SearchFloat64s(obs.DefaultREDBucketsUS, s)]++
	}
	return obs.HistogramSnapshot{Bounds: obs.DefaultREDBucketsUS, Counts: counts}.Quantile(0.99)
}

// serverHistogram fetches the daemon's RED duration histogram for the
// swept endpoint from the JSON /metrics snapshot.
func serverHistogram(client *http.Client, addr, proto string) (obs.HistogramSnapshot, error) {
	var snap obs.Snapshot
	if err := getJSON(client, addr+"/metrics", &snap); err != nil {
		return obs.HistogramSnapshot{}, err
	}
	name := obs.Labeled(histogramMetric(proto), "endpoint", endpointLabel(proto))
	h, ok := snap.Histograms[name]
	if !ok {
		// No request served yet: an empty snapshot with the default
		// bounds subtracts cleanly.
		h = obs.HistogramSnapshot{
			Bounds: obs.DefaultREDBucketsUS,
			Counts: make([]uint64, len(obs.DefaultREDBucketsUS)+1),
		}
	}
	return h, nil
}

// histDelta subtracts two cumulative snapshots of the same histogram,
// leaving the distribution observed between them.
func histDelta(before, after obs.HistogramSnapshot) obs.HistogramSnapshot {
	d := obs.HistogramSnapshot{
		Bounds: after.Bounds,
		Counts: make([]uint64, len(after.Counts)),
		Sum:    after.Sum - before.Sum,
		Count:  after.Count - before.Count,
	}
	for i := range after.Counts {
		c := after.Counts[i]
		if i < len(before.Counts) && before.Counts[i] <= c {
			c -= before.Counts[i]
		}
		d.Counts[i] = c
	}
	return d
}

func getJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// worker state shared by both loop shapes.
type collector struct {
	mu       sync.Mutex
	samples  []float64 // client RTT, microseconds
	errors   int64
	maxEpoch uint64 // binary: highest response epoch seen
	regress  int64  // binary: responses older than an earlier one
}

func (c *collector) record(us float64, ok bool) {
	c.mu.Lock()
	c.samples = append(c.samples, us)
	if !ok {
		c.errors++
	}
	c.mu.Unlock()
}

// epoch checks response-epoch monotonicity across the whole level: any
// rollback is an epoch mix — some replica answered with older tables
// after a newer epoch was already observed.
func (c *collector) epoch(e uint64) {
	c.mu.Lock()
	if e < c.maxEpoch {
		c.regress++
	} else {
		c.maxEpoch = e
	}
	c.mu.Unlock()
}

// oneRequest fires a single route lookup for a random pair and reports
// its RTT and whether it succeeded (200/503 both count as served; 503
// is a legitimate degraded-fabric answer, anything else is an error).
func oneRequest(client *http.Client, addr string, rng *rand.Rand, hosts int) (float64, bool) {
	src := rng.Intn(hosts)
	dst := rng.Intn(hosts)
	start := time.Now()
	resp, err := client.Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", addr, src, dst))
	us := float64(time.Since(start).Microseconds())
	if err != nil {
		return us, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return us, resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable
}

// newBinaryClient builds one fclient over the sweep's replica list.
func newBinaryClient(cfg config) (*fclient.Client, error) {
	return fclient.New(fclient.Config{Addrs: cfg.binAddrs, RequestTimeout: 10 * time.Second})
}

// rttFloorBinary measures the wire-protocol transport floor: EpochReq
// round trips through the same client stack the sweep uses.
func rttFloorBinary(addrs []string) (median, p99 float64, err error) {
	fc, err := fclient.New(fclient.Config{Addrs: addrs})
	if err != nil {
		return 0, 0, err
	}
	defer fc.Close()
	const probes = 200
	samples := make([]float64, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		if _, _, err := fc.Epoch(); err != nil {
			return 0, 0, fmt.Errorf("epoch probe: %w", err)
		}
		samples = append(samples, float64(time.Since(start).Microseconds()))
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], bucketizedP99(samples), nil
}

// oneBinaryRequest fires one batched RouteSet for random pairs and
// reports its RTT, success, and the response epoch (0 on failure).
func oneBinaryRequest(fc *fclient.Client, rng *rand.Rand, hosts, batch int, pairs [][2]uint32) (float64, bool, uint64) {
	pairs = pairs[:0]
	for i := 0; i < batch; i++ {
		pairs = append(pairs, [2]uint32{uint32(rng.Intn(hosts)), uint32(rng.Intn(hosts))})
	}
	start := time.Now()
	rs, err := fc.RouteSet("", pairs)
	us := float64(time.Since(start).Microseconds())
	if err != nil {
		return us, false, 0
	}
	return us, true, rs.Epoch
}

// closedLevelBinary is the closed loop over the wire protocol: one
// persistent fclient per worker, back-to-back batched RouteSets.
func closedLevelBinary(cfg config, workers, hosts int) (report.LoadLevel, error) {
	col := &collector{}
	warmupEnd := time.Now().Add(cfg.Warmup)
	deadline := warmupEnd.Add(cfg.Duration)
	clients := make([]*fclient.Client, workers)
	for w := range clients {
		fc, err := newBinaryClient(cfg)
		if err != nil {
			return report.LoadLevel{}, err
		}
		clients[w] = fc
		defer fc.Close()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			pairs := make([][2]uint32, 0, cfg.Batch)
			for time.Now().Before(deadline) {
				us, ok, epoch := oneBinaryRequest(clients[w], rng, hosts, cfg.Batch, pairs)
				if time.Now().After(warmupEnd) {
					col.record(us, ok)
					if ok {
						col.epoch(epoch)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	lvl := summarize(col, cfg.Duration)
	lvl.Mode = "closed"
	lvl.Concurrency = workers
	return lvl, nil
}

// openLevelBinary offers a fixed RouteSet rate on a ticker, drawing
// clients from a free list so at most Outstanding are ever alive.
func openLevelBinary(cfg config, rps float64, hosts int) (report.LoadLevel, error) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		return report.LoadLevel{}, fmt.Errorf("rate %.0f/s too fast to tick", rps)
	}
	col := &collector{}
	sem := make(chan struct{}, cfg.Outstanding)
	free := make(chan *fclient.Client, cfg.Outstanding)
	var created []*fclient.Client
	var createdMu sync.Mutex
	getClient := func() (*fclient.Client, error) {
		select {
		case fc := <-free:
			return fc, nil
		default:
			fc, err := newBinaryClient(cfg)
			if err != nil {
				return nil, err
			}
			createdMu.Lock()
			created = append(created, fc)
			createdMu.Unlock()
			return fc, nil
		}
	}
	defer func() {
		for _, fc := range created {
			fc.Close()
		}
	}()
	rngMu := sync.Mutex{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	drawPairs := func(batch int) [][2]uint32 {
		rngMu.Lock()
		defer rngMu.Unlock()
		pairs := make([][2]uint32, batch)
		for i := range pairs {
			pairs[i] = [2]uint32{uint32(rng.Intn(hosts)), uint32(rng.Intn(hosts))}
		}
		return pairs
	}

	var shed int64
	var wg sync.WaitGroup
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	warmupEnd := time.Now().Add(cfg.Warmup)
	deadline := warmupEnd.Add(cfg.Duration)
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			if now.After(warmupEnd) {
				shed++
			}
			continue
		}
		fc, err := getClient()
		if err != nil {
			<-sem
			return report.LoadLevel{}, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			pairs := drawPairs(cfg.Batch)
			start := time.Now()
			rs, err := fc.RouteSet("", pairs)
			us := float64(time.Since(start).Microseconds())
			if start.After(warmupEnd) {
				col.record(us, err == nil)
				if err == nil {
					col.epoch(rs.Epoch)
				}
			}
			free <- fc
		}()
	}
	wg.Wait()
	lvl := summarize(col, cfg.Duration)
	lvl.Mode = "open"
	lvl.OfferedRPS = rps
	lvl.Shed = shed
	if cfg.Duration > 0 {
		lvl.ShedRPS = float64(shed) / cfg.Duration.Seconds()
	}
	return lvl, nil
}

// closedLevel runs `workers` goroutines back-to-back for the window:
// offered load equals capacity at this concurrency.
func closedLevel(client *http.Client, cfg config, workers, hosts int) (report.LoadLevel, error) {
	if cfg.Proto == "binary" {
		return closedLevelBinary(cfg, workers, hosts)
	}
	col := &collector{}
	warmupEnd := time.Now().Add(cfg.Warmup)
	deadline := warmupEnd.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for time.Now().Before(deadline) {
				us, ok := oneRequest(client, cfg.Addr, rng, hosts)
				if time.Now().After(warmupEnd) {
					col.record(us, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	lvl := summarize(col, cfg.Duration)
	lvl.Mode = "closed"
	lvl.Concurrency = workers
	return lvl, nil
}

// openLevel offers a fixed rate on a ticker regardless of completions,
// shedding ticks when the outstanding cap is hit — the saturation
// signal a closed loop cannot produce.
func openLevel(client *http.Client, cfg config, rps float64, hosts int) (report.LoadLevel, error) {
	if cfg.Proto == "binary" {
		return openLevelBinary(cfg, rps, hosts)
	}
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		return report.LoadLevel{}, fmt.Errorf("rate %.0f/s too fast to tick", rps)
	}
	col := &collector{}
	sem := make(chan struct{}, cfg.Outstanding)
	rngMu := sync.Mutex{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pair := func() (int, int) {
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Intn(hosts), rng.Intn(hosts)
	}

	var shed int64
	var wg sync.WaitGroup
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	warmupEnd := time.Now().Add(cfg.Warmup)
	deadline := warmupEnd.Add(cfg.Duration)
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			if now.After(warmupEnd) {
				shed++
			}
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			src, dst := pair()
			start := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", cfg.Addr, src, dst))
			us := float64(time.Since(start).Microseconds())
			ok := false
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable
			}
			if start.After(warmupEnd) {
				col.record(us, ok)
			}
		}()
	}
	wg.Wait()
	lvl := summarize(col, cfg.Duration)
	lvl.Mode = "open"
	lvl.OfferedRPS = rps
	lvl.Shed = shed
	if cfg.Duration > 0 {
		lvl.ShedRPS = float64(shed) / cfg.Duration.Seconds()
	}
	return lvl, nil
}

// summarize folds collected samples into a LoadLevel: exact quantiles,
// plus a p99 re-estimated through the server's histogram bounds so the
// client and server tails carry the same bucketing error.
func summarize(col *collector, window time.Duration) report.LoadLevel {
	col.mu.Lock()
	samples := col.samples
	errors := col.errors
	regress := col.regress
	col.mu.Unlock()
	lvl := report.LoadLevel{
		Sent:             int64(len(samples)),
		Errors:           errors,
		EpochRegressions: regress,
		DurationS:        window.Seconds(),
	}
	if len(samples) == 0 {
		return lvl
	}
	sort.Float64s(samples)
	lvl.AchievedRPS = float64(len(samples)) / window.Seconds()
	lvl.P50US = exactQuantile(samples, 0.50)
	lvl.P95US = exactQuantile(samples, 0.95)
	lvl.P99US = exactQuantile(samples, 0.99)
	lvl.MaxUS = samples[len(samples)-1]

	lvl.BucketP99US = bucketizedP99(samples)
	return lvl
}

// exactQuantile interpolates between order statistics of sorted
// samples.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	return sorted[lo] + (sorted[hi]-sorted[lo])*(pos-float64(lo))
}

// checkAgreement gates on the lowest level: after subtracting the RTT
// floor's p99 (tail against tail — client latency is transport plus
// handling, and at low load the transport tail dominates), the client's
// bucketized p99 must land within `frac` of the server's histogram p99,
// or within one fine bucket (250µs) absolute — bucket-edge effects at
// microsecond scales otherwise dominate the relative error.
func checkAgreement(doc *report.LoadDoc, frac float64) error {
	if len(doc.Levels) == 0 {
		return fmt.Errorf("no levels to check")
	}
	lvl := doc.Levels[0]
	if lvl.ServerP99US <= 0 {
		return fmt.Errorf("server histogram recorded nothing at the lowest level")
	}
	client := lvl.BucketP99US - doc.RTTFloorP99US
	if client < 0 {
		client = 0
	}
	diff := math.Abs(client - lvl.ServerP99US)
	if diff <= 250 {
		return nil
	}
	if rel := diff / lvl.ServerP99US; rel > frac {
		return fmt.Errorf("client p99 %.1fµs (floor-p99-adjusted %.1fµs) vs server p99 %.1fµs: off by %.0f%% > %.0f%%",
			lvl.BucketP99US, client, lvl.ServerP99US, rel*100, frac*100)
	}
	return nil
}
