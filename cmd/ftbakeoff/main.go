// Command ftbakeoff races every registered routing engine through an
// escalating fault storm on a seeded fabric and reports per-engine
// routability, Shift-HSD degradation, reroute wall-clock latency and
// (with -sim) netsim max queue depth. The verdict is a schema-stamped
// fattree-bakeoff/v1 JSON document that ftreport html renders as a
// comparison table with degradation curves.
//
// Usage:
//
//	ftbakeoff -topo 324 -seed 7 -o bakeoff.json
//	ftbakeoff -topo rlft2:4,8 -engines dmodk,fault-resilient -sim
//	ftbakeoff -topo rlft2:4,8 -min-routability 50   # CI gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"fattree/internal/bakeoff"
	"fattree/internal/engine"
	"fattree/internal/obs/prof"
	"fattree/internal/topo"
)

func main() {
	var (
		spec    = flag.String("topo", "324", "topology spec")
		engines = flag.String("engines", "", "comma-separated engines to race (default: all registered)")
		seed    = flag.Int64("seed", 7, "seed for fault draws and seeded engines")
		sim     = flag.Bool("sim", false, "simulate sampled Shift stages for max queue depth (slower)")
		bytes   = flag.Int64("bytes", 64<<10, "per-message payload for -sim")
		stages  = flag.Int("sim-stages", 4, "Shift stages sampled per cell for -sim")
		minRout = flag.Float64("min-routability", 0, "fail when any engine drops below this routability % at any level")
		out     = flag.String("o", "", "write the fattree-bakeoff/v1 JSON verdict to this file")
		jsonOut = flag.Bool("json", false, "print the JSON verdict to stdout instead of the table")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*spec, *engines, *seed, *sim, *bytes, *stages, *minRout, *out, *jsonOut)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftbakeoff:", err)
		os.Exit(1)
	}
}

func run(spec, engines string, seed int64, sim bool, bytes int64, stages int, minRout float64, out string, jsonOut bool) error {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	cfg := bakeoff.Config{Topo: t, Seed: seed, Sim: sim, Bytes: bytes, SimStages: stages}
	if engines != "" {
		for _, name := range strings.Split(engines, ",") {
			name = strings.TrimSpace(name)
			// Resolve early so a typo reports the registered names
			// before any work happens.
			if _, err := engine.Build(name, t, engine.Options{Seed: seed}); err != nil {
				return err
			}
			cfg.Engines = append(cfg.Engines, name)
		}
	}
	doc, err := bakeoff.Run(cfg)
	if err != nil {
		return err
	}

	if out != "" {
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	} else {
		printTable(doc)
	}

	if minRout > 0 {
		for _, lv := range doc.Levels {
			for _, er := range lv.Engines {
				if er.Err != "" {
					return fmt.Errorf("level %s: engine %s failed: %s", lv.Name, er.Engine, er.Err)
				}
				if er.RoutabilityPct < minRout {
					return fmt.Errorf("level %s: engine %s routability %.2f%% below gate %.2f%%",
						lv.Name, er.Engine, er.RoutabilityPct, minRout)
				}
			}
		}
	}
	return nil
}

func printTable(doc *bakeoff.Doc) {
	fmt.Printf("# bake-off on %s (%d hosts, seed %d)\n", doc.Topology, doc.Hosts, doc.Seed)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "level\tfaults\tengine\troutability\tbroken\tmax-hsd\tavg-hsd\treroute")
	for _, lv := range doc.Levels {
		for _, er := range lv.Engines {
			if er.Err != "" {
				fmt.Fprintf(w, "%s\t%d\t%s\tERROR: %s\t\t\t\t\n", lv.Name, len(lv.FailedLinks), er.Engine, er.Err)
				continue
			}
			depth := ""
			if er.MaxQueueDepth >= 0 {
				depth = fmt.Sprintf("\tqdepth=%d", er.MaxQueueDepth)
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%.2f%%\t%d\t%d\t%.2f\t%dus%s\n",
				lv.Name, len(lv.FailedLinks), er.Engine, er.RoutabilityPct,
				er.BrokenPairs, er.MaxHSD, er.AvgMaxHSD, er.RerouteUS, depth)
		}
	}
	w.Flush()
}
