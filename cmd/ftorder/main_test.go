package main

import (
	"testing"

	"fattree/internal/topo"
)

func TestHostName(t *testing.T) {
	g := topo.Cluster324 // 18 hosts per leaf
	cases := map[int]string{
		0:   "node000-00",
		17:  "node000-17",
		18:  "node001-00",
		323: "node017-17",
	}
	for h, want := range cases {
		if got := hostName(g, h); got != want {
			t.Errorf("hostName(%d) = %q, want %q", h, got, want)
		}
	}
}

func TestHostNamesUnique(t *testing.T) {
	g := topo.Cluster128
	seen := make(map[string]bool)
	for h := 0; h < g.NumHosts(); h++ {
		name := hostName(g, h)
		if seen[name] {
			t.Fatalf("duplicate host name %q", name)
		}
		seen[name] = true
	}
}
