// Command ftorder emits the topology-aware MPI rank order for a cluster
// or an allocation on it — the artifact a batch system feeds to mpirun
// as a rankfile/hostfile so that MPI_COMM_WORLD ranks land on the
// end-ports the routing expects.
//
// Usage:
//
//	ftorder -topo 324                          # full cluster rankfile
//	ftorder -topo 324 -job 162                 # first granule-aligned job
//	ftorder -topo 324 -drop 18 -drop-seed 3    # partial cluster
//	ftorder -topo 324 -format hostlist
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fattree/internal/obs/prof"
	"fattree/internal/order"
	"fattree/internal/sched"
	"fattree/internal/topo"
)

func main() {
	var (
		spec     = flag.String("topo", "324", "topology spec")
		job      = flag.Int("job", 0, "allocate a job of this size via the granule-aware scheduler (0 = whole cluster)")
		drop     = flag.Int("drop", 0, "exclude this many random end-ports")
		dropSeed = flag.Int64("drop-seed", 1, "seed for the exclusion draw")
		format   = flag.String("format", "rankfile", "output: rankfile | hostlist")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	err := pf.Start()
	if err == nil {
		err = run(*spec, *job, *drop, *dropSeed, *format)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftorder:", err)
		os.Exit(1)
	}
}

func run(spec string, jobSize, drop int, dropSeed int64, format string) error {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	n := t.NumHosts()

	var active []int
	switch {
	case jobSize > 0:
		alloc, err := sched.New(t)
		if err != nil {
			return err
		}
		j, err := alloc.Alloc(jobSize)
		if err != nil {
			return err
		}
		active = j.Hosts
		if !j.ContentionFree {
			fmt.Fprintf(os.Stderr, "ftorder: warning: %d is not a multiple of the allocation granule %d; the job is not guaranteed contention free\n",
				jobSize, alloc.Granule())
		}
	case drop > 0:
		r := rand.New(rand.NewSource(dropSeed))
		perm := r.Perm(n)
		active = append([]int(nil), perm[drop:]...)
	}

	o := order.Topology(n, active)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch format {
	case "rankfile":
		// OpenMPI rankfile syntax: rank <r>=<host> slot=0. Host names
		// follow the leaf-based convention node<leaf>-<slot>.
		for r, h := range o.HostOf {
			fmt.Fprintf(w, "rank %d=%s slot=0\n", r, hostName(g, h))
		}
	case "hostlist":
		for _, h := range o.HostOf {
			fmt.Fprintf(w, "%s\n", hostName(g, h))
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

// hostName derives a deterministic node name from the end-port index:
// node<leaf>-<slot> for trees with leaves, node<index> otherwise.
func hostName(g topo.PGFT, h int) string {
	k := g.Mi(1)
	return fmt.Sprintf("node%03d-%02d", h/k, h%k)
}
