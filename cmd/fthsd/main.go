// Command fthsd runs the analytic Hot-Spot-Degree model: it reports, for
// a topology, routing, node ordering and collective permutation sequence,
// the per-stage maximum number of flows sharing a link. HSD = 1 means
// contention-free traffic. This mirrors the ibdm-based tool of Sections
// II and VII.
//
// Usage:
//
//	fthsd -topo 324 -cps shift -order topology
//	fthsd -topo 1944 -cps recursive-doubling -order random -seeds 25
//	fthsd -topo 324 -cps topo-aware -order topology -drop 18
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fattree/internal/cps"
	"fattree/internal/des"
	"fattree/internal/engine"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/obs"
	"fattree/internal/obs/prof"
	"fattree/internal/order"
	"fattree/internal/report"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func main() {
	var (
		spec     = flag.String("topo", "324", "topology spec")
		engName  = flag.String("engine", "", "routing engine from the registry (default dmodk; \"list\" prints them)")
		cpsName  = flag.String("cps", "shift", "CPS: shift | ring | binomial | dissemination | tournament | recursive-doubling | recursive-halving | topo-aware")
		ordering = flag.String("order", "topology", "ordering: topology | random | adversarial")
		seeds    = flag.Int("seeds", 1, "random orderings to sweep")
		drop     = flag.Int("drop", 0, "randomly exclude this many end-ports (partial job)")
		dropSeed = flag.Int64("drop-seed", 1, "seed for the exclusion draw")
		perStage = flag.Bool("stages", false, "print per-stage detail")
		levels   = flag.Bool("levels", false, "print the per-tree-level breakdown of the worst stage")
		compiled = flag.Bool("compiled", true, "analyze via the compiled path cache (disable to force per-pair table walks)")
		jsonOut  = flag.Bool("json", false, "emit the full per-stage report as JSON (fattree-blame/v1) instead of text")
		sinks    obs.FileSinks
	)
	sinks.RegisterFlags(flag.CommandLine)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()
	if *engName == "list" {
		for _, info := range engine.Infos() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}
	err := sinks.Open()
	if err == nil {
		err = pf.Start()
	}
	if err == nil {
		err = run(*spec, *engName, *cpsName, *ordering, *seeds, *drop, *dropSeed, *perStage, *levels, *compiled, *jsonOut, &sinks)
	}
	if perr := pf.Stop(); err == nil {
		err = perr
	}
	if cerr := sinks.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fthsd:", err)
		os.Exit(1)
	}
}

// emitObs exports an analytic report through the observability sinks:
// summary gauges, a per-stage HSD histogram and flow counters into the
// registry, plus a synthetic timeline onto the tracer — the HSD model
// has no clock, so each stage becomes a span lasting its max HSD in
// microseconds, the synchronized-bandwidth cost model where a stage
// with HSD h takes h times the contention-free stage time.
func emitObs(rep *hsd.Report, sinks *obs.FileSinks) {
	if !sinks.Enabled() {
		return
	}
	reg := sinks.Registry
	reg.Gauge("fthsd_stages").Set(int64(len(rep.Stages)))
	reg.Gauge("fthsd_max_hsd").Set(int64(rep.MaxHSD()))
	hist := reg.MustHistogram("fthsd_stage_max_hsd", []float64{1, 2, 4, 8, 16, 32, 64})
	flows := reg.Counter("fthsd_flows_total")
	hot := reg.Counter("fthsd_hot_links_total")
	tr := sinks.Tracer
	tr.ProcessName(0, fmt.Sprintf("%s / %s / %s", rep.Sequence, rep.Routing, rep.Ordering))
	var at des.Time
	for i, s := range rep.Stages {
		hist.Observe(float64(s.MaxHSD))
		flows.Add(int64(s.Flows))
		hot.Add(int64(s.HotLinks))
		dur := des.Time(s.MaxHSD) * des.Microsecond
		if dur <= 0 {
			dur = des.Microsecond
		}
		tr.Complete(0, 0, at, dur, fmt.Sprintf("stage %d", i),
			obs.Num("max_hsd", float64(s.MaxHSD)),
			obs.Num("flows", float64(s.Flows)),
			obs.Num("hot_links", float64(s.HotLinks)))
		at += dur
	}
}

func run(spec, engName, cpsName, ordering string, seeds, drop int, dropSeed int64, perStage, levels, compiled, jsonOut bool, sinks *obs.FileSinks) error {
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return err
	}
	t, err := topo.Build(g)
	if err != nil {
		return err
	}
	n := t.NumHosts()

	var active []int
	if drop > 0 {
		r := rand.New(rand.NewSource(dropSeed))
		perm := r.Perm(n)
		active = append([]int(nil), perm[drop:]...)
	}
	var lft *route.LFT
	var rt route.Router
	if engName != "" {
		if active != nil {
			return fmt.Errorf("-drop is incompatible with -engine")
		}
		e, err := engine.Build(engName, t, engine.Options{Seed: dropSeed})
		if err != nil {
			return err
		}
		tb, err := e.Tables(nil)
		if err != nil {
			return err
		}
		// Engine routers come pre-compiled wherever possible; lft stays
		// nil for source-based engines, which only -levels needs.
		rt, lft = tb.Router, tb.LFT
	} else {
		if active == nil {
			lft = route.DModK(t)
		} else {
			lft, err = route.DModKActive(t, active)
			if err != nil {
				return err
			}
		}
		// The compiled path cache makes multi-ordering sweeps and long
		// sequences iterate packed arenas instead of re-walking the tables.
		rt = lft
		if compiled {
			c, err := route.Compile(lft)
			if err != nil {
				return err
			}
			rt = c
		}
	}
	jobSize := n
	if active != nil {
		jobSize = len(active)
	}

	var seq cps.Sequence
	if cpsName == "topo-aware" {
		seq, err = mpi.NewTopoAwareSequence(g.M, active)
	} else {
		seq, err = mpi.NewSequence(mpi.CPSKind(cpsName), jobSize)
	}
	if err != nil {
		return err
	}

	switch ordering {
	case "topology":
		return analyzeOne(rt, lft, order.Topology(n, active), seq, perStage, levels, jsonOut, sinks)
	case "adversarial":
		o, err := order.Adversarial(t)
		if err != nil {
			return err
		}
		if active != nil {
			return fmt.Errorf("adversarial ordering supports full population only")
		}
		return analyzeOne(rt, lft, o, seq, perStage, levels, jsonOut, sinks)
	case "random":
		if jsonOut && seeds == 1 {
			return analyzeOne(rt, lft, order.Random(n, active, 0), seq, perStage, levels, true, sinks)
		}
		if jsonOut {
			return fmt.Errorf("-json needs a single ordering; use -seeds 1")
		}
		var orders []*order.Ordering
		for s := 0; s < seeds; s++ {
			orders = append(orders, order.Random(n, active, int64(s)))
		}
		sw, err := hsd.SweepOrderingsParallel(rt, orders, seq, 0)
		if err != nil {
			return err
		}
		if sinks.Enabled() {
			// Sweeps have no per-stage report; record the summary on the
			// metrics stream (Record is a no-op without -metrics).
			sinks.Sampler.Record(map[string]interface{}{
				"sweep": map[string]float64{"mean": sw.Mean, "min": sw.Min, "max": sw.Max},
				"seeds": seeds,
			})
		}
		fmt.Printf("%s / %s / random x%d on %s (job %d):\n", seq.Name(), rt.Label(), seeds, g, jobSize)
		fmt.Printf("  avg max HSD: mean %.3f  min %.3f  max %.3f\n", sw.Mean, sw.Min, sw.Max)
	default:
		return fmt.Errorf("unknown ordering %q", ordering)
	}
	return nil
}

// analyzeOne reports a single ordering: the usual text summary, or with
// jsonOut the full per-stage blame report (fattree-blame/v1) on stdout.
// The obs sinks are fed either way.
func analyzeOne(rt route.Router, lft *route.LFT, o *order.Ordering, seq cps.Sequence, perStage, levels, jsonOut bool, sinks *obs.FileSinks) error {
	rep, err := hsd.AnalyzeParallel(rt, o, seq, 0)
	if err != nil {
		return err
	}
	emitObs(rep, sinks)
	if jsonOut {
		blame, err := report.BuildBlame(rt, o, seq)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(blame)
	}
	printReport(rep, perStage)
	if levels {
		if lft == nil {
			return fmt.Errorf("-levels needs forwarding tables; %s has no LFT realization", rt.Label())
		}
		return printLevels(lft, o, seq, rep)
	}
	return nil
}

// printLevels re-analyzes the worst stage and prints its per-tree-level
// maximum flow counts, locating where the hot spot lives.
func printLevels(lft *route.LFT, o *order.Ordering, seq cps.Sequence, rep *hsd.Report) error {
	worst, worstHSD := -1, -1
	for i, s := range rep.Stages {
		if s.MaxHSD > worstHSD {
			worst, worstHSD = i, s.MaxHSD
		}
	}
	if worst < 0 {
		return nil
	}
	a := hsd.NewAnalyzer(lft)
	stage := seq.Stage(worst)
	pairs := make([][2]int, 0, len(stage))
	for _, p := range stage {
		pairs = append(pairs, [2]int{o.HostOf[p.Src], o.HostOf[p.Dst]})
	}
	if _, err := a.Stage(pairs); err != nil {
		return err
	}
	up, down := a.LevelLoads()
	fmt.Printf("  worst stage %d per-level max flows (up/down):\n", worst)
	for l := 0; l < len(up); l++ {
		name := "host links"
		if l > 0 {
			name = fmt.Sprintf("level %d-%d", l, l+1)
		}
		fmt.Printf("    %-11s %d / %d\n", name, up[l], down[l])
	}
	return nil
}

func printReport(rep *hsd.Report, perStage bool) {
	fmt.Printf("%s / %s / %s:\n", rep.Sequence, rep.Routing, rep.Ordering)
	fmt.Printf("  stages: %d  max HSD: %d  avg max HSD: %.3f  contention-free: %v\n",
		len(rep.Stages), rep.MaxHSD(), rep.AvgMaxHSD(), rep.ContentionFree())
	fmt.Printf("  synchronized effective bandwidth: %.3f of nominal\n", rep.SyncEffectiveBandwidth())
	if perStage {
		for i, s := range rep.Stages {
			fmt.Printf("  stage %4d: flows %5d  max HSD %d (up %d / down %d)  hot links %d\n",
				i, s.Flows, s.MaxHSD, s.MaxUpHSD, s.MaxDownHSD, s.HotLinks)
		}
	}
}
