// Command ftcheck verifies the paper's theorems and construction rules
// against a concrete topology + routing + ordering instance and emits a
// schema-stamped fattree-check/v1 verdict. It is the CLI face of the
// internal/invariant catalog: topology wiring (Section IV.B), RLFT
// restrictions (IV.C), D-Mod-K shape and Theorem-2 down-path uniqueness
// (Section V), CPS structure (Section III) and the contention-freedom
// headline result (Theorem 1 / Section VII).
//
// Usage:
//
//	ftcheck -topo 324                                  # full catalog on the paper cluster
//	ftcheck -topo kary:4,3 -checks topo,route          # subset by kind prefix
//	ftcheck -topo 324 -routing minhop-random -json     # broken routing -> failing verdict
//	ftcheck -topo 324 -order random -seed 3            # shuffled ordering -> HSD > 1
//	ftcheck -topo 324 -fault-random 2 -reroute         # fault + reroute still passes
//	ftcheck -topo 324 -engine fault-resilient          # catalog over a registry engine
//	ftcheck -topo 324 -engine nodetype-lb -fault-random 2   # engine's own fault handling
//	ftcheck -rand 20 -seed 1                           # sweep 20 seeded random RLFTs
//	ftcheck -list                                      # catalog names and paper refs
//
// Exit status is 0 only when every selected check passes on the main
// instance and on every random-sweep draw.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fattree/internal/engine"
	"fattree/internal/fabric"
	"fattree/internal/invariant"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// document is the JSON verdict: the invariant report plus the fault and
// random-sweep context needed to reproduce it.
type document struct {
	*invariant.Report
	Faults []int                   `json:"faults,omitempty"`
	Rand   []invariant.RandVerdict `json:"rand,omitempty"`
}

func main() {
	var (
		spec      = flag.String("topo", "324", "topology spec")
		routing   = flag.String("routing", "dmodk", "routing: dmodk | dmodk-naive | minhop-random | smodk")
		engName   = flag.String("engine", "", "routing engine from the registry (\"list\" prints them); overrides -routing and brings its own fault handling")
		ordering  = flag.String("order", "topology", "ordering: topology | random | adversarial | cyclic")
		seed      = flag.Int64("seed", 1, "seed for -order random, -routing minhop-random, -fault-random and the -rand sweep base")
		checksArg = flag.String("checks", "all", "comma-separated check names or kind prefixes (see -list)")
		randN     = flag.Int("rand", 0, "also sweep this many seeded random RLFTs under compiled D-Mod-K")
		faultsArg = flag.String("fault", "", "comma-separated link IDs to fail before checking")
		faultRand = flag.Int("fault-random", 0, "fail this many random fabric links")
		reroute   = flag.Bool("reroute", false, "route around the faults (RouteAround + lenient compile) instead of checking the stale tables")
		jsonOut   = flag.Bool("json", false, "emit the fattree-check/v1 verdict as JSON")
		list      = flag.Bool("list", false, "list the check catalog and exit")
	)
	flag.Parse()
	if *list {
		for _, c := range invariant.Catalog() {
			fmt.Printf("%-24s %s\n", c.Name, c.Ref)
		}
		return
	}
	if *engName == "list" {
		for _, info := range engine.Infos() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}
	ok, err := run(*spec, *routing, *engName, *ordering, *seed, *checksArg, *randN, *faultsArg, *faultRand, *reroute, *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftcheck:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// run checks one instance (plus an optional random sweep) and reports
// whether everything passed. Errors are usage/build problems, not check
// failures.
func run(spec, routing, engName, ordering string, seed int64, checksArg string, randN int, faultsArg string, faultRand int, reroute, jsonOut bool, w io.Writer) (bool, error) {
	checks, err := invariant.Select(checksArg)
	if err != nil {
		return false, err
	}
	g, err := topo.ParseSpec(spec)
	if err != nil {
		return false, err
	}
	t, err := topo.Build(g)
	if err != nil {
		return false, err
	}

	in, faults, err := buildInstance(t, routing, engName, ordering, seed, faultsArg, faultRand, reroute)
	if err != nil {
		return false, err
	}
	rep := invariant.Run(in, checks)
	doc := &document{Report: rep, Faults: faults}

	if randN > 0 {
		doc.Rand = invariant.SweepRandom(seed, randN, checks, func(rg topo.PGFT) (*invariant.Instance, error) {
			rt, err := topo.Build(rg)
			if err != nil {
				return nil, err
			}
			c, err := route.Compile(route.DModK(rt))
			if err != nil {
				return nil, err
			}
			return invariant.NewInstance(rt, c, nil), nil
		})
	}

	pass := rep.Pass
	for _, v := range doc.Rand {
		if !v.Pass || v.Error != "" {
			pass = false
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return pass, enc.Encode(doc)
	}
	printText(w, doc, pass)
	return pass, nil
}

// buildInstance assembles the system under check: topology, routing
// (optionally over a faulted fabric, stale or rerouted), and ordering.
// With -engine, the registry engine produces the tables — including its
// own fault handling, so -reroute is redundant and refused.
func buildInstance(t *topo.Topology, routing, engName, ordering string, seed int64, faultsArg string, faultRand int, reroute bool) (*invariant.Instance, []int, error) {
	n := t.NumHosts()

	fs := fabric.NewFaultSet(t)
	if faultsArg != "" {
		for _, f := range strings.Split(faultsArg, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, nil, fmt.Errorf("bad -fault entry %q: %v", f, err)
			}
			if id < 0 || id >= len(t.Links) {
				return nil, nil, fmt.Errorf("-fault link %d out of range [0,%d)", id, len(t.Links))
			}
			fs.Fail(topo.LinkID(id))
		}
	}
	if faultRand > 0 {
		if err := fs.FailRandomFabricLinks(faultRand, seed); err != nil {
			return nil, nil, err
		}
	}
	var faults []int
	for _, l := range fs.FailedLinks() {
		faults = append(faults, int(l))
	}

	var in *invariant.Instance
	if engName != "" {
		if reroute {
			return nil, nil, fmt.Errorf("-reroute is incompatible with -engine (engines handle faults themselves)")
		}
		e, err := engine.Build(engName, t, engine.Options{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		var efs *fabric.FaultSet
		if len(faults) > 0 {
			efs = fs
		}
		tb, err := e.Tables(efs)
		if err != nil {
			return nil, nil, err
		}
		in = invariant.NewInstance(t, tb.Router, nil)
		if len(tb.Unroutable) > 0 {
			unroutable := make(map[int]bool, len(tb.Unroutable))
			for _, j := range tb.Unroutable {
				unroutable[j] = true
			}
			in.Unroutable = func(j int) bool { return unroutable[j] }
		}
	} else if len(faults) > 0 && reroute {
		if routing != "dmodk" {
			return nil, nil, fmt.Errorf("-reroute implies D-Mod-K tables; drop -routing %s", routing)
		}
		lft, res, err := fs.RouteAround()
		if err != nil {
			return nil, nil, err
		}
		c, err := route.CompileLenient(lft)
		if err != nil {
			return nil, nil, err
		}
		unroutable := make(map[int]bool, len(res.UnroutableHosts))
		for _, j := range res.UnroutableHosts {
			unroutable[j] = true
		}
		in = invariant.NewInstance(t, c, nil)
		in.Unroutable = func(j int) bool { return unroutable[j] }
	} else {
		var r route.Router
		switch routing {
		case "dmodk":
			r = route.DModK(t)
		case "dmodk-naive":
			r = route.DModKNaive(t)
		case "minhop-random":
			r = route.MinHopRandom(t, seed)
		case "smodk":
			r = route.NewSModK(t)
		default:
			return nil, nil, fmt.Errorf("unknown routing %q", routing)
		}
		c, err := route.Compile(r)
		if err != nil {
			return nil, nil, err
		}
		in = invariant.NewInstance(t, c, nil)
	}
	if len(faults) > 0 {
		// Checked even without -reroute: stale tables crossing a dead
		// link are exactly what route.alive is for.
		in.Alive = fs.Alive
	}

	switch ordering {
	case "topology":
		// NewInstance default.
	case "random":
		in.Ordering = order.Random(n, nil, seed)
	case "adversarial":
		o, err := order.Adversarial(t)
		if err != nil {
			return nil, nil, err
		}
		in.Ordering = o
	case "cyclic":
		o, err := order.Cyclic(t)
		if err != nil {
			return nil, nil, err
		}
		in.Ordering = o
	default:
		return nil, nil, fmt.Errorf("unknown ordering %q", ordering)
	}
	return in, faults, nil
}

func printText(w io.Writer, doc *document, pass bool) {
	rep := doc.Report
	fmt.Fprintf(w, "%s  hosts %d  routing %s  ordering %s\n", rep.Topology, rep.Hosts, rep.Routing, rep.Ordering)
	if len(doc.Faults) > 0 {
		fmt.Fprintf(w, "faulted links: %v\n", doc.Faults)
	}
	for _, c := range rep.Checks {
		switch c.Status {
		case invariant.Pass:
			fmt.Fprintf(w, "  PASS %-24s %s\n", c.Name, c.Ref)
		case invariant.Skip:
			fmt.Fprintf(w, "  SKIP %-24s %s\n", c.Name, c.SkipReason)
		case invariant.Fail:
			fmt.Fprintf(w, "  FAIL %-24s %s\n", c.Name, c.Error)
			if cx := c.Counterexample; cx != nil {
				fmt.Fprintf(w, "       counterexample: %s\n", cxString(cx))
			}
		}
	}
	fmt.Fprintf(w, "%d passed, %d failed, %d skipped\n", rep.Passed, rep.Failed, rep.Skipped)
	for _, v := range doc.Rand {
		switch {
		case v.Error != "":
			fmt.Fprintf(w, "rand seed %d %s: build error: %s\n", v.Seed, v.Spec, v.Error)
		case v.Pass:
			fmt.Fprintf(w, "rand seed %d %s (%d hosts): pass\n", v.Seed, v.Spec, v.Hosts)
		default:
			fmt.Fprintf(w, "rand seed %d %s (%d hosts): FAIL %s, shrunk to %s\n",
				v.Seed, v.Spec, v.Hosts, strings.Join(v.Failed, ","), v.ShrunkSpec)
			if v.Counterexample != nil {
				fmt.Fprintf(w, "       counterexample: %s\n", cxString(v.Counterexample))
			}
		}
	}
	if pass {
		fmt.Fprintln(w, "ok")
	} else {
		fmt.Fprintln(w, "FAILED")
	}
}

// cxString renders a counterexample on one line.
func cxString(cx *invariant.Counterexample) string {
	var parts []string
	if cx.Spec != "" {
		parts = append(parts, "spec "+cx.Spec)
	}
	if len(cx.Pair) == 2 {
		parts = append(parts, fmt.Sprintf("pair %d->%d", cx.Pair[0], cx.Pair[1]))
	}
	if cx.Sequence != "" {
		parts = append(parts, "sequence "+cx.Sequence)
	}
	if cx.Stage != nil {
		parts = append(parts, fmt.Sprintf("stage %d", *cx.Stage))
	}
	if cx.Link != nil {
		parts = append(parts, fmt.Sprintf("link %d load %d", *cx.Link, cx.Load))
	}
	if len(cx.Flows) > 0 {
		parts = append(parts, fmt.Sprintf("flows %v", cx.Flows))
	}
	if cx.Detail != "" {
		parts = append(parts, cx.Detail)
	}
	return strings.Join(parts, "; ")
}
