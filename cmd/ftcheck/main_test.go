package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// checkRun drives the CLI body and returns its pass verdict plus the
// decoded JSON document.
func checkRun(t *testing.T, spec, routing, ordering string, seed int64, checks string, randN int, faults string, faultRand int, reroute bool) (bool, *document) {
	t.Helper()
	var buf bytes.Buffer
	ok, err := run(spec, routing, "", ordering, seed, checks, randN, faults, faultRand, reroute, true, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON verdict: %v\n%s", err, buf.String())
	}
	return ok, &doc
}

// TestAcceptanceMatrix: the full catalog passes on the paper cluster, a
// k-ary-n-tree, an XGFT and 20 seeded random RLFTs in one invocation.
func TestAcceptanceMatrix(t *testing.T) {
	randN := 20
	if testing.Short() {
		randN = 3
	}
	for _, tc := range []struct {
		name, spec string
		rand       int
	}{
		{"rlft-324", "324", randN},
		{"kary-4-3", "kary:4,3", 0},
		{"xgft", "pgft:3;2,2,2;1,2,2;1,1,1", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ok, doc := checkRun(t, tc.spec, "dmodk", "topology", 1, "all", tc.rand, "", 0, false)
			if !ok || !doc.Pass {
				t.Fatalf("%s: verdict failed: %v", tc.spec, doc.FailedNames())
			}
			if doc.Schema != "fattree-check/v1" {
				t.Fatalf("schema = %q", doc.Schema)
			}
			if len(doc.Rand) != tc.rand {
				t.Fatalf("got %d rand verdicts, want %d", len(doc.Rand), tc.rand)
			}
			for _, v := range doc.Rand {
				if !v.Pass || v.Error != "" {
					t.Errorf("rand seed %d (%s): failed=%v err=%s", v.Seed, v.Spec, v.Failed, v.Error)
				}
			}
		})
	}
}

// TestBrokenRoutingFails: random up-port selection violates Theorem 2
// and contention freedom, and the verdict carries a minimal
// counterexample pair.
func TestBrokenRoutingFails(t *testing.T) {
	ok, doc := checkRun(t, "rlft2:4,8", "minhop-random", "topology", 7, "all", 0, "", 0, false)
	if ok || doc.Pass {
		t.Fatal("minhop-random passed the theorem checks")
	}
	failed := strings.Join(doc.FailedNames(), ",")
	if !strings.Contains(failed, "route.thm2-down-unique") || !strings.Contains(failed, "hsd.contention-free") {
		t.Fatalf("failed checks = %s", failed)
	}
	for _, c := range doc.Checks {
		if c.Name == "route.thm2-down-unique" {
			if c.Counterexample == nil || len(c.Counterexample.Pair) != 2 || c.Counterexample.Link == nil {
				t.Fatalf("thm2 counterexample incomplete: %+v", c.Counterexample)
			}
		}
	}
}

// TestShuffledOrderingFails: a random rank placement breaks only the
// contention-freedom invariant; the blamed link and its flows are in the
// counterexample.
func TestShuffledOrderingFails(t *testing.T) {
	ok, doc := checkRun(t, "rlft2:4,8", "dmodk", "random", 3, "all", 0, "", 0, false)
	if ok || doc.Pass {
		t.Fatal("shuffled ordering passed")
	}
	if got := doc.FailedNames(); len(got) != 1 || got[0] != "hsd.contention-free" {
		t.Fatalf("failed checks = %v, want only hsd.contention-free", got)
	}
	for _, c := range doc.Checks {
		if c.Name == "hsd.contention-free" {
			cx := c.Counterexample
			if cx == nil || cx.Link == nil || cx.Load < 2 || len(cx.Flows) < 2 {
				t.Fatalf("contention counterexample incomplete: %+v", cx)
			}
		}
	}
}

// TestFaultedLinkFails: one dead link under stale tables fails
// route.alive and blames exactly that link; with -reroute the verdict
// recovers to pass.
func TestFaultedLinkFails(t *testing.T) {
	ok, doc := checkRun(t, "rlft2:4,8", "dmodk", "topology", 1, "all", 0, "", 1, false)
	if ok || doc.Pass {
		t.Fatal("stale tables over a dead link passed")
	}
	if len(doc.Faults) != 1 {
		t.Fatalf("faults = %v, want one", doc.Faults)
	}
	found := false
	for _, c := range doc.Checks {
		if c.Name == "route.alive" {
			if c.Status != "fail" {
				t.Fatalf("route.alive = %s", c.Status)
			}
			cx := c.Counterexample
			if cx == nil || cx.Link == nil || *cx.Link != doc.Faults[0] {
				t.Fatalf("route.alive blames %+v, want link %d", cx, doc.Faults[0])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("route.alive missing from the verdict")
	}

	ok, doc = checkRun(t, "rlft2:4,8", "dmodk", "topology", 1, "all", 0, "", 1, true)
	if !ok || !doc.Pass {
		t.Fatalf("rerouted fault still fails: %v", doc.FailedNames())
	}
}

// TestExplicitFaultList: -fault accepts explicit link IDs.
func TestExplicitFaultList(t *testing.T) {
	ok, doc := checkRun(t, "kary:2,2", "dmodk", "topology", 1, "route.alive", 0, "4", 0, false)
	if ok {
		t.Fatalf("explicit fault passed: %+v", doc.Checks)
	}
	if len(doc.Faults) != 1 || doc.Faults[0] != 4 {
		t.Fatalf("faults = %v", doc.Faults)
	}
}

// TestCheckSelection: a kind prefix runs only that group, and unknown
// names error.
func TestCheckSelection(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run("kary:2,2", "dmodk", "", "topology", 1, "topo", 0, "", 0, false, true, &buf)
	if err != nil || !ok {
		t.Fatalf("topo-only run: ok=%v err=%v", ok, err)
	}
	var doc document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, c := range doc.Checks {
		if !strings.HasPrefix(c.Name, "topo.") {
			t.Fatalf("unexpected check %s in topo-only run", c.Name)
		}
	}
	if _, err := run("kary:2,2", "dmodk", "", "topology", 1, "nope", 0, "", 0, false, true, &buf); err == nil {
		t.Fatal("unknown check name accepted")
	}
}

// TestTextOutput: the human format ends with the overall verdict word.
func TestTextOutput(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run("kary:2,2", "dmodk", "", "topology", 1, "all", 0, "", 0, false, false, &buf)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !strings.HasSuffix(strings.TrimSpace(buf.String()), "ok") {
		t.Fatalf("text output does not end with ok:\n%s", buf.String())
	}
}
