// Package fattree reproduces Eitan Zahavi's "Fat-Trees Routing and Node
// Ordering Providing Contention Free Traffic for MPI Global Collectives":
// Parallel-Ports Generalized Fat-Trees and Real-Life Fat-Trees
// (internal/topo), D-Mod-K routing (internal/route), the eight collective
// permutation sequences and the Section VI topology-aware recursive
// doubling (internal/cps), MPI node orderings (internal/order), the
// analytic Hot-Spot-Degree model (internal/hsd), a packet-level
// InfiniBand-like simulator (internal/des, internal/netsim), the MPI
// binding layer (internal/mpi) and the experiment harness regenerating
// every table and figure of the paper (internal/exp, cmd/ftbench).
//
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
// results. The top-level bench_test.go carries one benchmark per table
// and figure.
package fattree
