package bakeoff

import (
	"bytes"
	"encoding/json"
	"testing"

	"fattree/internal/engine"
	"fattree/internal/report"
	"fattree/internal/topo"
)

func buildTopo(t testing.TB, spec string) *topo.Topology {
	t.Helper()
	g, err := topo.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestRunSmall(t *testing.T) {
	tp := buildTopo(t, "rlft2:4,8")
	doc, err := Run(Config{Topo: tp, Seed: 7, Sim: true, SimStages: 2, Bytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema {
		t.Errorf("schema = %q, want %q", doc.Schema, Schema)
	}
	if len(doc.Levels) < 3 {
		t.Fatalf("only %d fault levels, want >= 3", len(doc.Levels))
	}
	if len(doc.Engines) < 4 {
		t.Fatalf("only %d engines, want >= 4", len(doc.Engines))
	}
	for _, lv := range doc.Levels {
		if len(lv.Engines) != len(doc.Engines) {
			t.Fatalf("level %s has %d cells for %d engines", lv.Name, len(lv.Engines), len(doc.Engines))
		}
		for _, er := range lv.Engines {
			if er.Engine == "broken-test" {
				continue // engine_test.go registers it process-wide
			}
			if er.Err != "" {
				t.Errorf("level %s engine %s: %v", lv.Name, er.Engine, er.Err)
			}
			if lv.Name == "healthy" {
				if er.RoutabilityPct != 100 {
					t.Errorf("healthy %s routability = %v, want 100", er.Engine, er.RoutabilityPct)
				}
				if er.MaxQueueDepth < 0 {
					t.Errorf("healthy %s queue depth missing with Sim on", er.Engine)
				}
			}
			if er.RoutabilityPct < 0 || er.RoutabilityPct > 100 {
				t.Errorf("level %s engine %s routability %v out of range", lv.Name, er.Engine, er.RoutabilityPct)
			}
		}
	}

	// The verdict must round-trip as JSON — it is what CI parses.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Levels) != len(doc.Levels) {
		t.Fatalf("round-trip mangled the doc: %+v", back)
	}
}

// TestFaultAwareBeatsOblivious pins the bake-off's reason to exist: at
// the 1-link level, every fault-aware engine must keep strictly more
// pairs routable than the fault-oblivious tables it is compared to.
func TestFaultAwareBeatsOblivious(t *testing.T) {
	tp := buildTopo(t, "rlft2:4,8")
	doc, err := Run(Config{Topo: tp, Seed: 7, Engines: []string{"dmodk", "fault-resilient", "dmodk-naive", "minhop-random"}})
	if err != nil {
		t.Fatal(err)
	}
	var level *Level
	for i := range doc.Levels {
		if doc.Levels[i].Name == "1-link" {
			level = &doc.Levels[i]
		}
	}
	if level == nil {
		t.Fatal("no 1-link level")
	}
	cell := func(name string) EngineResult {
		for _, er := range level.Engines {
			if er.Engine == name {
				return er
			}
		}
		t.Fatalf("no cell for %s", name)
		return EngineResult{}
	}
	for _, aware := range []string{"dmodk", "fault-resilient"} {
		for _, oblivious := range []string{"dmodk-naive", "minhop-random"} {
			if a, o := cell(aware), cell(oblivious); a.RoutabilityPct <= o.RoutabilityPct {
				t.Errorf("%s routability %.2f%% not above %s's %.2f%%",
					aware, a.RoutabilityPct, oblivious, o.RoutabilityPct)
			}
		}
	}
	if c := cell("fault-resilient"); c.BrokenPairs != 0 {
		t.Errorf("fault-resilient left %d broken pairs on a 1-link fault", c.BrokenPairs)
	}
}

func TestStormLevelsDeterministic(t *testing.T) {
	tp := buildTopo(t, "rlft2:4,8")
	a, err := StormLevels(tp, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StormLevels(tp, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		la, lb := a[i].FS.FailedLinks(), b[i].FS.FailedLinks()
		if len(la) != len(lb) {
			t.Fatalf("level %s: %d vs %d failed links across runs", a[i].Name, len(la), len(lb))
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("level %s: fault draw not deterministic", a[i].Name)
			}
		}
	}
}

// BenchmarkEngineBakeoff324 is the CI-tracked cost of a full bake-off on
// the paper cluster (all registered engines, all storm levels, analytic
// metrics only).
func BenchmarkEngineBakeoff324(b *testing.B) {
	tp := buildTopo(b, "324")
	names := []string{}
	for _, n := range engine.Names() {
		if n != "broken-test" {
			names = append(names, n)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Topo: tp, Seed: 7, Engines: names}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVerdictWireCompat pins that a real verdict round-trips through
// the report package's mirror of the fattree-bakeoff/v1 schema — the
// two packages share the wire format, not the types.
func TestVerdictWireCompat(t *testing.T) {
	doc, err := Run(Config{Topo: buildTopo(t, "rlft2:4,8"), Engines: []string{"dmodk", "smodk"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := report.ParseBakeoff(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Topology != doc.Topology || len(parsed.Levels) != len(doc.Levels) || len(parsed.Engines) != 2 {
		t.Fatalf("parsed %+v from %+v", parsed, doc)
	}
	for li, l := range doc.Levels {
		for ei, e := range l.Engines {
			p := parsed.Levels[li].Engines[ei]
			if p.Engine != e.Engine || p.RoutabilityPct != e.RoutabilityPct || p.RerouteUS != e.RerouteUS {
				t.Fatalf("level %s engine %s: parsed %+v, want %+v", l.Name, e.Engine, p, e)
			}
		}
	}
}
