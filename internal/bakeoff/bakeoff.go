// Package bakeoff runs every registered routing engine through an
// escalating fault storm on a seeded fabric and scores each one on
// routability, Shift contention (HSD), reroute wall-clock latency and —
// optionally — simulated max queue depth. This is the comparative
// methodology of the Gliksberg fault-resiliency paper applied to the
// repository's engine registry: the same fabric, the same faults, every
// engine, one schema-stamped verdict (fattree-bakeoff/v1) that
// cmd/ftbakeoff emits and ftreport html renders as a comparison table
// with degradation curves.
package bakeoff

import (
	"time"

	"fattree/internal/cps"
	"fattree/internal/engine"
	"fattree/internal/fabric"
	"fattree/internal/hsd"
	"fattree/internal/netsim"
	"fattree/internal/obs"
	"fattree/internal/topo"
)

// Schema stamps bake-off documents, following the repository's
// fattree-*/v1 convention. Bump /vN on breaking changes.
const Schema = "fattree-bakeoff/v1"

// Doc is the bake-off verdict: one Level per fault-storm rung, one
// EngineResult per engine per rung.
type Doc struct {
	Schema   string        `json:"schema"`
	Topology string        `json:"topology"`
	Hosts    int           `json:"hosts"`
	Seed     int64         `json:"seed"`
	Engines  []engine.Info `json:"engines"`
	Levels   []Level       `json:"levels"`
}

// Level is one rung of the fault storm.
type Level struct {
	Name string `json:"name"`
	// FailedLinks are the dead link IDs at this rung (cumulative storms
	// list everything dead, not the delta).
	FailedLinks []int          `json:"failed_links"`
	Engines     []EngineResult `json:"engines"`
}

// EngineResult scores one engine at one fault level. When the engine
// failed outright, Err carries the error and every metric is zero.
type EngineResult struct {
	Engine string `json:"engine"`
	Err    string `json:"err,omitempty"`
	// RoutabilityPct is the percentage of ordered src!=dst pairs served.
	RoutabilityPct float64 `json:"routability_pct"`
	// Unroutable counts hosts that lost their only uplink.
	Unroutable int `json:"unroutable"`
	// BrokenPairs counts unserved ordered pairs between routable hosts.
	BrokenPairs int `json:"broken_pairs"`
	// MaxHSD and AvgMaxHSD summarize Shift over the served pairs;
	// ContentionFree means every stage stayed at HSD <= 1.
	MaxHSD         int     `json:"max_hsd"`
	AvgMaxHSD      float64 `json:"avg_max_hsd"`
	ContentionFree bool    `json:"contention_free"`
	// RerouteUS is the wall-clock microseconds the engine took to
	// produce tables for this fault level (table build + path compile).
	RerouteUS int64 `json:"reroute_us"`
	// MaxQueueDepth is netsim's worst input-buffer depth over the
	// sampled Shift stages; -1 when simulation was off.
	MaxQueueDepth int64 `json:"max_queue_depth"`
}

// Config parameterizes a bake-off run.
type Config struct {
	// Topo is the fabric under test (required).
	Topo *topo.Topology
	// Engines lists the engines to race; nil races every registered one.
	Engines []string
	// Seed drives the fault draws and seeded engines.
	Seed int64
	// Opts is passed to every engine builder.
	Opts engine.Options
	// Levels are the fault-storm rungs; nil uses StormLevels.
	Levels []FaultLevel
	// Sim enables the netsim queue-depth probe (slower).
	Sim bool
	// Bytes is the per-message payload when Sim is on (default 64 KiB).
	Bytes int64
	// SimStages caps how many Shift stages are simulated per cell,
	// spread evenly across the sequence (default 4).
	SimStages int
}

// FaultLevel is one named fault set of the storm.
type FaultLevel struct {
	Name string
	FS   *fabric.FaultSet
}

// StormLevels builds the default escalating storm: healthy fabric, one
// random fabric link, every link of one top-level switch, and a
// correlated leaf-spine failure (half of one leaf's uplinks plus one
// random link) — the three degradation regimes of the fault-resiliency
// literature on top of the baseline.
func StormLevels(t *topo.Topology, seed int64) ([]FaultLevel, error) {
	g := t.Spec
	levels := []FaultLevel{{Name: "healthy", FS: fabric.NewFaultSet(t)}}

	one := fabric.NewFaultSet(t)
	if err := one.FailRandomFabricLinks(1, seed); err != nil {
		return nil, err
	}
	levels = append(levels, FaultLevel{Name: "1-link", FS: one})

	// A whole top-level switch: every down link of one spine dies, the
	// way a bricked switch or a powered-off line card looks to the SM.
	top := t.ByLevel[g.H]
	sw := fabric.NewFaultSet(t)
	node := t.Node(top[int(seed%int64(len(top)))])
	for _, pid := range node.Down {
		sw.Fail(t.Ports[pid].Link)
	}
	levels = append(levels, FaultLevel{Name: "spine-switch", FS: sw})

	// Correlated leaf-spine: half of one leaf's uplinks plus a random
	// fabric link elsewhere — the multi-point damage a cable bundle cut
	// or a rack-level power event produces.
	leaf := t.Node(t.ByLevel[1][0])
	ls := fabric.NewFaultSet(t)
	for i, pid := range leaf.Up {
		if i%2 == 0 {
			ls.Fail(t.Ports[pid].Link)
		}
	}
	if err := ls.FailRandomFabricLinks(1, seed+1); err != nil {
		return nil, err
	}
	levels = append(levels, FaultLevel{Name: "leaf-spine", FS: ls})
	return levels, nil
}

// Run races the engines through the storm and assembles the verdict.
// Engine build failures abort; per-level table failures are recorded in
// the cell and the race continues.
func Run(cfg Config) (*Doc, error) {
	t := cfg.Topo
	names := cfg.Engines
	if names == nil {
		names = engine.Names()
	}
	levels := cfg.Levels
	if levels == nil {
		var err error
		levels, err = StormLevels(t, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Bytes == 0 {
		cfg.Bytes = 64 << 10
	}
	if cfg.SimStages == 0 {
		cfg.SimStages = 4
	}

	doc := &Doc{Schema: Schema, Topology: t.Spec.String(), Hosts: t.NumHosts(), Seed: cfg.Seed}
	byName := make(map[string]engine.Info)
	for _, info := range engine.Infos() {
		byName[info.Name] = info
	}
	engines := make(map[string]engine.Engine, len(names))
	opts := cfg.Opts
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	for _, name := range names {
		e, err := engine.Build(name, t, opts)
		if err != nil {
			return nil, err
		}
		engines[name] = e
		doc.Engines = append(doc.Engines, byName[name])
	}

	for _, lv := range levels {
		level := Level{Name: lv.Name, FailedLinks: []int{}}
		for _, l := range lv.FS.FailedLinks() {
			level.FailedLinks = append(level.FailedLinks, int(l))
		}
		for _, name := range names {
			level.Engines = append(level.Engines, scoreCell(t, engines[name], lv.FS, cfg))
		}
		doc.Levels = append(doc.Levels, level)
	}
	return doc, nil
}

// scoreCell races one engine against one fault level.
func scoreCell(t *topo.Topology, e engine.Engine, fs *fabric.FaultSet, cfg Config) EngineResult {
	res := EngineResult{Engine: e.Name(), MaxQueueDepth: -1}
	start := time.Now()
	tb, err := e.Tables(fs)
	res.RerouteUS = time.Since(start).Microseconds()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	n := t.NumHosts()
	res.RoutabilityPct = 100 * tb.Routability(n)
	res.Unroutable = len(tb.Unroutable)
	res.BrokenPairs = tb.BrokenPairs

	unset := make([]bool, n)
	for _, u := range tb.Unroutable {
		unset[u] = true
	}
	served := func(src, dst int) bool {
		return src != dst && !unset[src] && !unset[dst] && !tb.Compiled.Broken(src, dst)
	}

	// Shift over the served pairs: the degradation the paper's headline
	// metric suffers at this fault level.
	seq := cps.Shift(n)
	a := hsd.NewAnalyzer(tb.Router)
	first := true
	sum, stages := 0.0, 0
	var pairs [][2]int
	for s := 0; s < seq.NumStages(); s++ {
		pairs = pairs[:0]
		for _, p := range seq.Stage(s) {
			if served(int(p.Src), int(p.Dst)) {
				pairs = append(pairs, [2]int{int(p.Src), int(p.Dst)})
			}
		}
		if len(pairs) == 0 {
			continue
		}
		sr, err := a.Stage(pairs)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		if first || sr.MaxHSD > res.MaxHSD {
			res.MaxHSD = sr.MaxHSD
		}
		first = false
		sum += float64(sr.MaxHSD)
		stages++
	}
	if stages > 0 {
		res.AvgMaxHSD = sum / float64(stages)
	}
	res.ContentionFree = res.MaxHSD <= 1

	if cfg.Sim {
		depth, err := simQueueDepth(tb, seq, served, cfg)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.MaxQueueDepth = depth
	}
	return res
}

// simQueueDepth replays a sampled subset of Shift stages through netsim
// and reports the worst input-buffer depth any link saw.
func simQueueDepth(tb *engine.Tables, seq cps.Sequence, served func(int, int) bool, cfg Config) (int64, error) {
	reg := obs.NewRegistry()
	sc := netsim.DefaultConfig()
	sc.Metrics = reg
	nw, err := netsim.New(tb.Router, sc)
	if err != nil {
		return 0, err
	}
	step := seq.NumStages() / cfg.SimStages
	if step == 0 {
		step = 1
	}
	var stages [][]netsim.Message
	for s := 0; s < seq.NumStages(); s += step {
		var msgs []netsim.Message
		for _, p := range seq.Stage(s) {
			if served(int(p.Src), int(p.Dst)) {
				msgs = append(msgs, netsim.Message{Src: int(p.Src), Dst: int(p.Dst), Bytes: cfg.Bytes})
			}
		}
		if len(msgs) > 0 {
			stages = append(stages, msgs)
		}
	}
	if len(stages) == 0 {
		return 0, nil
	}
	if _, err := nw.RunStages(stages); err != nil {
		return 0, err
	}
	return reg.Gauge("netsim_link_max_queue_depth").Value(), nil
}
