package fabric

import (
	"fmt"
	"math/rand"

	"fattree/internal/route"
	"fattree/internal/topo"
)

// FaultSet marks dead cables. A production subnet manager reroutes around
// exactly this information after a sweep notices missing links.
type FaultSet struct {
	t    *topo.Topology
	dead []bool
}

// NewFaultSet returns an all-alive fault set for the topology.
func NewFaultSet(t *topo.Topology) *FaultSet {
	return &FaultSet{t: t, dead: make([]bool, len(t.Links))}
}

// Fail marks a link dead. Failing a host's only uplink makes that host
// unroutable; RouteAround reports it.
func (f *FaultSet) Fail(l topo.LinkID) { f.dead[l] = true }

// Revive marks a link alive again.
func (f *FaultSet) Revive(l topo.LinkID) { f.dead[l] = false }

// Alive reports whether a link is usable.
func (f *FaultSet) Alive(l topo.LinkID) bool { return !f.dead[l] }

// Failed returns the number of dead links.
func (f *FaultSet) Failed() int {
	n := 0
	for _, d := range f.dead {
		if d {
			n++
		}
	}
	return n
}

// FailRandomFabricLinks kills n distinct switch-to-switch links (host
// uplinks are spared so every end-port stays routable), deterministic
// per seed.
func (f *FaultSet) FailRandomFabricLinks(n int, seed int64) error {
	return f.FailRandomFabricLinksRand(n, rand.New(rand.NewSource(seed)))
}

// FailRandomFabricLinksRand is FailRandomFabricLinks with an injected
// RNG, so long-lived callers (the fabric-manager daemon, deterministic
// tests) thread one *rand.Rand through every draw instead of reseeding
// per call.
func (f *FaultSet) FailRandomFabricLinksRand(n int, r *rand.Rand) error {
	var fabricLinks []topo.LinkID
	for i := range f.t.Links {
		lk := &f.t.Links[i]
		if f.t.Node(f.t.Ports[lk.Lower].Node).Kind == topo.Switch && !f.dead[i] {
			fabricLinks = append(fabricLinks, topo.LinkID(i))
		}
	}
	if n > len(fabricLinks) {
		return fmt.Errorf("fabric: cannot fail %d of %d fabric links", n, len(fabricLinks))
	}
	r.Shuffle(len(fabricLinks), func(i, j int) {
		fabricLinks[i], fabricLinks[j] = fabricLinks[j], fabricLinks[i]
	})
	for _, l := range fabricLinks[:n] {
		f.dead[l] = true
	}
	return nil
}

// FailedLinks returns the dead link IDs in ascending order.
func (f *FaultSet) FailedLinks() []topo.LinkID {
	var out []topo.LinkID
	for i, d := range f.dead {
		if d {
			out = append(out, topo.LinkID(i))
		}
	}
	return out
}

// RerouteResult reports the collateral damage of a reroute.
type RerouteResult struct {
	// UnroutableHosts lost their only uplink; no traffic can reach or
	// leave them.
	UnroutableHosts []int
	// BrokenPairs counts ordered (src,dst) combinations that remained
	// without a minimal up*/down* path. Fat-tree routing is minimal by
	// construction; under heavy correlated faults a source's alive
	// up-links may all lead to spines that lost their link into the
	// destination's sub-tree, which only a non-minimal detour could
	// recover — a limitation real ftree engines share.
	BrokenPairs int
}

// RouteAround recomputes D-Mod-K-style forwarding tables avoiding dead
// links, the way OpenSM's ftree engine reroutes after a link failure:
// for every destination it grows the reachable "down cone" from the
// destination upward (preferring the parallel copy equation (1) would
// use), then points every other switch up towards the cone (preferring
// the equation (1) up port, falling back to the next alive candidate).
// With no faults the result is bit-identical to route.DModK.
func (f *FaultSet) RouteAround() (*route.LFT, RerouteResult, error) {
	t := f.t
	g := t.Spec
	lft := route.NewLFT(t, fmt.Sprintf("d-mod-k-reroute[%d faults]", f.Failed()))
	n := t.NumHosts()

	wprod := make([]int, g.H+1)
	mprod := make([]int, g.H+1)
	wprod[0], mprod[0] = 1, 1
	for l := 1; l <= g.H; l++ {
		wprod[l] = wprod[l-1] * g.Wi(l)
		mprod[l] = mprod[l-1] * g.Mi(l)
	}

	var res RerouteResult
	// canReach[node] for the current destination.
	canReach := make([]bool, len(t.Nodes))

	for j := 0; j < n; j++ {
		for i := range canReach {
			canReach[i] = false
		}
		host := t.Host(j)
		uplink := t.Ports[host.Up[0]].Link
		if !f.Alive(uplink) {
			res.UnroutableHosts = append(res.UnroutableHosts, j)
			continue
		}
		canReach[host.ID] = true

		// Grow the down cone level by level: at level l the ancestors
		// of j are the switches whose digits above l match j's. Among
		// parallel links into a parent, equation (1)'s copy wins when
		// alive.
		frontier := []topo.NodeID{host.ID}
		for l := 0; l < g.H; l++ {
			var next []topo.NodeID
			for _, cid := range frontier {
				c := t.Node(cid)
				for _, pid := range c.Up {
					if !f.Alive(t.Ports[pid].Link) {
						continue
					}
					peerPort := t.PeerPort(pid)
					parent := t.Ports[peerPort].Node
					if lft.Out[parent][j] == topo.None {
						lft.Out[parent][j] = peerPort
						canReach[parent] = true
						next = append(next, parent)
					} else if preferredDown(t, g, wprod, mprod, j, parent, l+1) == peerPort {
						lft.Out[parent][j] = peerPort
					}
				}
			}
			frontier = dedupe(next)
		}

		deadUp := make(map[int]bool) // unroutable hosts, for pair accounting
		for _, u := range res.UnroutableHosts {
			deadUp[u] = true
		}

		// Point everything else up, top level down to the leaves, so
		// parents' reachability is known before children choose.
		for l := g.H - 1; l >= 0; l-- {
			for _, id := range t.ByLevel[l] {
				node := t.Node(id)
				if canReach[id] || (node.Kind == topo.Host && node.Index == j) {
					continue
				}
				if node.Kind == topo.Host && node.Index != j {
					// Hosts have one uplink.
					pid := node.Up[0]
					if f.Alive(t.Ports[pid].Link) && canReach[t.PeerNode(pid)] {
						lft.Out[id][j] = pid
						canReach[id] = true
					} else if !deadUp[node.Index] {
						res.BrokenPairs++
					}
					continue
				}
				u := len(node.Up)
				q0 := (j / wprod[l]) % u
				for k := 0; k < u; k++ {
					pid := node.Up[(q0+k)%u]
					if !f.Alive(t.Ports[pid].Link) {
						continue
					}
					if canReach[t.PeerNode(pid)] {
						lft.Out[id][j] = pid
						canReach[id] = true
						break
					}
				}
			}
		}
	}
	return lft, res, nil
}

// preferredDown returns the down port (as a PortID on parent) that the
// fault-free equation (1) rule would use towards destination j from a
// level-l parent, or topo.None if out of range.
func preferredDown(t *topo.Topology, g topo.PGFT, wprod, mprod []int, j int, parent topo.NodeID, l int) topo.PortID {
	node := t.Node(parent)
	a := (j / mprod[l-1]) % g.Mi(l)
	k := (j / wprod[l-1]) % (g.Wi(l) * g.Pi(l)) / g.Wi(l)
	r := a + k*g.Mi(l)
	if r >= len(node.Down) {
		return topo.None
	}
	return node.Down[r]
}

func dedupe(ids []topo.NodeID) []topo.NodeID {
	seen := make(map[topo.NodeID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
