package fabric

import (
	"encoding/json"
	"strings"
	"testing"

	"fattree/internal/topo"
)

func TestDocJSONShape(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	doc := NewDoc(tp)
	if doc.Schema != Schema || doc.Hosts != 128 || doc.Topology != tp.Spec.String() {
		t.Fatalf("base doc: %+v", doc)
	}

	sn := NewSubnet(tp)
	inv, err := sn.Discover()
	if err != nil {
		t.Fatal(err)
	}
	doc.SetInventory(inv)
	if len(doc.Inv) != inv.Switches {
		t.Fatalf("%d inventory entries, want %d", len(doc.Inv), inv.Switches)
	}
	for i, sw := range doc.Inv {
		if !strings.HasPrefix(sw.GUID, "0x") || len(sw.GUID) != 18 {
			t.Fatalf("GUID %q not 0x + 16 hex digits", sw.GUID)
		}
		if i > 0 && doc.Inv[i-1].GUID >= sw.GUID {
			t.Fatalf("inventory not sorted: %q before %q", doc.Inv[i-1].GUID, sw.GUID)
		}
	}

	fs := NewFaultSet(tp)
	if err := fs.FailRandomFabricLinks(3, 1); err != nil {
		t.Fatal(err)
	}
	_, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	doc.SetFaults(fs, res)
	if len(doc.Faults.FailedLinks) != 3 {
		t.Fatalf("failed links: %v", doc.Faults.FailedLinks)
	}
	for i := 1; i < len(doc.Faults.FailedLinks); i++ {
		if doc.Faults.FailedLinks[i-1] >= doc.Faults.FailedLinks[i] {
			t.Fatalf("failed links not ascending: %v", doc.Faults.FailedLinks)
		}
	}

	// Round-trip: the optional sections survive, the empty ones vanish.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Faults == nil || back.Faults.BrokenPairs != res.BrokenPairs {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.HSD != nil {
		t.Fatal("HSD section materialized from nothing")
	}
	bare, err := json.Marshal(NewDoc(tp))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"faults", "hsd", "switches_by_guid", "routing"} {
		if strings.Contains(string(bare), `"`+key+`"`) {
			t.Fatalf("bare doc leaks empty %q section: %s", key, bare)
		}
	}
}

func TestFailedLinksTracksReviveOrder(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	fs := NewFaultSet(tp)
	// Fail out of order; FailedLinks must come back ascending.
	var fabricLinks []topo.LinkID
	for i, l := range tp.Links {
		if l.Level >= 2 {
			fabricLinks = append(fabricLinks, topo.LinkID(i))
		}
	}
	fs.Fail(fabricLinks[5])
	fs.Fail(fabricLinks[1])
	fs.Fail(fabricLinks[3])
	got := fs.FailedLinks()
	if len(got) != 3 || got[0] != fabricLinks[1] || got[1] != fabricLinks[3] || got[2] != fabricLinks[5] {
		t.Fatalf("FailedLinks = %v", got)
	}
	fs.Revive(fabricLinks[3])
	if got := fs.FailedLinks(); len(got) != 2 || got[0] != fabricLinks[1] || got[1] != fabricLinks[5] {
		t.Fatalf("after revive: %v", got)
	}
}

// TestParseDocAcceptsEmitted: every document this package emits —
// bare, inventory, faults, HSD — parses back and validates.
func TestParseDocAcceptsEmitted(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	doc := NewDoc(tp)
	sn := NewSubnet(tp)
	inv, err := sn.Discover()
	if err != nil {
		t.Fatal(err)
	}
	doc.SetInventory(inv)
	fs := NewFaultSet(tp)
	if err := fs.FailRandomFabricLinks(3, 1); err != nil {
		t.Fatal(err)
	}
	_, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	doc.SetFaults(fs, res)
	doc.HSD = &HSDDoc{Sequence: "shift", Ordering: "topology", Stages: 127, MaxHSD: 1, AvgMaxHSD: 1, ContentionFree: true}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDoc(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Hosts != doc.Hosts || back.Faults.BrokenPairs != res.BrokenPairs {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestParseDocRejectsInconsistent: each schema rule catches its own
// class of corruption.
func TestParseDocRejectsInconsistent(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{2, 2}, []int{1, 2}, []int{1, 1}))
	base := func() *Doc { return NewDoc(tp) }
	for name, corrupt := range map[string]func(*Doc){
		"schema":          func(d *Doc) { d.Schema = "fattree-fabric/v0" },
		"topology":        func(d *Doc) { d.Topology = "nope" },
		"hosts":           func(d *Doc) { d.Hosts = 1 << 20 },
		"links":           func(d *Doc) { d.Links = -1 },
		"guid":            func(d *Doc) { d.Inv = []SwitchDoc{{GUID: "12ab", Ports: 4}} },
		"guid-order":      func(d *Doc) { d.Inv = []SwitchDoc{{GUID: "0x2", Ports: 4}, {GUID: "0x1", Ports: 4}} },
		"ports":           func(d *Doc) { d.Inv = []SwitchDoc{{GUID: "0x1", Ports: 0}} },
		"fault-range":     func(d *Doc) { d.Faults = &FaultDoc{FailedLinks: []int{d.Links}} },
		"fault-order":     func(d *Doc) { d.Faults = &FaultDoc{FailedLinks: []int{3, 2}} },
		"unroutable":      func(d *Doc) { d.Faults = &FaultDoc{UnroutableHosts: []int{d.Hosts}} },
		"broken-pairs":    func(d *Doc) { d.Faults = &FaultDoc{BrokenPairs: -1} },
		"hsd-avg":         func(d *Doc) { d.HSD = &HSDDoc{MaxHSD: 1, AvgMaxHSD: 2, ContentionFree: true} },
		"hsd-contradicts": func(d *Doc) { d.HSD = &HSDDoc{MaxHSD: 3, AvgMaxHSD: 2, ContentionFree: true} },
	} {
		d := base()
		corrupt(d)
		raw, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseDoc(strings.NewReader(string(raw))); err == nil {
			t.Errorf("%s: corrupted doc accepted", name)
		}
	}
	if _, err := ParseDoc(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}
