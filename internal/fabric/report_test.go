package fabric

import (
	"encoding/json"
	"strings"
	"testing"

	"fattree/internal/topo"
)

func TestDocJSONShape(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	doc := NewDoc(tp)
	if doc.Schema != Schema || doc.Hosts != 128 || doc.Topology != tp.Spec.String() {
		t.Fatalf("base doc: %+v", doc)
	}

	sn := NewSubnet(tp)
	inv, err := sn.Discover()
	if err != nil {
		t.Fatal(err)
	}
	doc.SetInventory(inv)
	if len(doc.Inv) != inv.Switches {
		t.Fatalf("%d inventory entries, want %d", len(doc.Inv), inv.Switches)
	}
	for i, sw := range doc.Inv {
		if !strings.HasPrefix(sw.GUID, "0x") || len(sw.GUID) != 18 {
			t.Fatalf("GUID %q not 0x + 16 hex digits", sw.GUID)
		}
		if i > 0 && doc.Inv[i-1].GUID >= sw.GUID {
			t.Fatalf("inventory not sorted: %q before %q", doc.Inv[i-1].GUID, sw.GUID)
		}
	}

	fs := NewFaultSet(tp)
	if err := fs.FailRandomFabricLinks(3, 1); err != nil {
		t.Fatal(err)
	}
	_, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	doc.SetFaults(fs, res)
	if len(doc.Faults.FailedLinks) != 3 {
		t.Fatalf("failed links: %v", doc.Faults.FailedLinks)
	}
	for i := 1; i < len(doc.Faults.FailedLinks); i++ {
		if doc.Faults.FailedLinks[i-1] >= doc.Faults.FailedLinks[i] {
			t.Fatalf("failed links not ascending: %v", doc.Faults.FailedLinks)
		}
	}

	// Round-trip: the optional sections survive, the empty ones vanish.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Faults == nil || back.Faults.BrokenPairs != res.BrokenPairs {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.HSD != nil {
		t.Fatal("HSD section materialized from nothing")
	}
	bare, err := json.Marshal(NewDoc(tp))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"faults", "hsd", "switches_by_guid", "routing"} {
		if strings.Contains(string(bare), `"`+key+`"`) {
			t.Fatalf("bare doc leaks empty %q section: %s", key, bare)
		}
	}
}

func TestFailedLinksTracksReviveOrder(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	fs := NewFaultSet(tp)
	// Fail out of order; FailedLinks must come back ascending.
	var fabricLinks []topo.LinkID
	for i, l := range tp.Links {
		if l.Level >= 2 {
			fabricLinks = append(fabricLinks, topo.LinkID(i))
		}
	}
	fs.Fail(fabricLinks[5])
	fs.Fail(fabricLinks[1])
	fs.Fail(fabricLinks[3])
	got := fs.FailedLinks()
	if len(got) != 3 || got[0] != fabricLinks[1] || got[1] != fabricLinks[3] || got[2] != fabricLinks[5] {
		t.Fatalf("FailedLinks = %v", got)
	}
	fs.Revive(fabricLinks[3])
	if got := fs.FailedLinks(); len(got) != 2 || got[0] != fabricLinks[1] || got[1] != fabricLinks[5] {
		t.Fatalf("after revive: %v", got)
	}
}
