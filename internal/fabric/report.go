package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fattree/internal/topo"
)

// Schema stamps the machine-readable fabric document emitted by
// `ftfabric -json` and served by the daemon's GET /v1/fabric — the
// discover/fault counterpart of the fattree-blame/v1 convention. Bump
// /vN on backwards-incompatible changes.
const Schema = "fattree-fabric/v1"

// SwitchDoc is one discovered switch in a Doc.
type SwitchDoc struct {
	GUID  string `json:"guid"` // 0x-prefixed hex
	Ports int    `json:"ports"`
}

// FaultDoc summarizes the fault state and the reroute's collateral
// damage. FailedLinks lists dead link IDs in ascending order.
type FaultDoc struct {
	FailedLinks     []int `json:"failed_links"`
	UnroutableHosts []int `json:"unroutable_hosts"`
	BrokenPairs     int   `json:"broken_pairs"`
}

// HSDDoc is the cached Shift-HSD summary of the (re)routed tables.
type HSDDoc struct {
	Sequence       string  `json:"sequence"`
	Ordering       string  `json:"ordering"`
	Stages         int     `json:"stages"`
	MaxHSD         int     `json:"max_hsd"`
	AvgMaxHSD      float64 `json:"avg_max_hsd"`
	ContentionFree bool    `json:"contention_free"`
}

// Doc is the schema-stamped machine-readable fabric report: inventory,
// routing identity, and optional fault and contention sections.
type Doc struct {
	Schema   string      `json:"schema"`
	Topology string      `json:"topology"`
	Hosts    int         `json:"hosts"`
	Switches int         `json:"switches"`
	Links    int         `json:"links"`
	Routing  string      `json:"routing,omitempty"`
	Inv      []SwitchDoc `json:"switches_by_guid,omitempty"`
	Faults   *FaultDoc   `json:"faults,omitempty"`
	HSD      *HSDDoc     `json:"hsd,omitempty"`
}

// NewDoc starts a Doc with the topology identity filled in.
func NewDoc(t *topo.Topology) *Doc {
	return &Doc{
		Schema:   Schema,
		Topology: t.Spec.String(),
		Hosts:    t.NumHosts(),
		Switches: t.Spec.TotalSwitches(),
		Links:    len(t.Links),
	}
}

// SetInventory fills the discovery section from a sweep result.
func (d *Doc) SetInventory(inv *Inventory) {
	d.Hosts = inv.Hosts
	d.Switches = inv.Switches
	d.Links = inv.Links
	d.Inv = d.Inv[:0]
	for _, g := range inv.SortedSwitchGUIDs() {
		d.Inv = append(d.Inv, SwitchDoc{
			GUID:  guidString(g),
			Ports: inv.PortsBySwitch[g],
		})
	}
}

// SetFaults fills the fault section from a fault set and reroute result.
func (d *Doc) SetFaults(fs *FaultSet, res RerouteResult) {
	fd := &FaultDoc{
		FailedLinks:     []int{},
		UnroutableHosts: []int{},
		BrokenPairs:     res.BrokenPairs,
	}
	for _, l := range fs.FailedLinks() {
		fd.FailedLinks = append(fd.FailedLinks, int(l))
	}
	fd.UnroutableHosts = append(fd.UnroutableHosts, res.UnroutableHosts...)
	d.Faults = fd
}

func guidString(g GUID) string {
	return fmt.Sprintf("0x%016x", uint64(g))
}

// maxDocNodes caps the node count of a topology a document may ask
// Validate to build — generously above the 1944-host paper clusters but
// far below anything that could exhaust memory.
const maxDocNodes = 1 << 22

// tooLargeToValidate reports whether building the spec would exceed
// maxDocNodes hosts or switches, using overflow-safe arithmetic (the
// parsed tuple is untrusted input).
func tooLargeToValidate(g topo.PGFT) bool {
	mul := func(a, b int) int {
		if b != 0 && a > maxDocNodes/b {
			return maxDocNodes + 1
		}
		return a * b
	}
	hosts := 1
	for _, m := range g.M {
		hosts = mul(hosts, m)
	}
	if hosts > maxDocNodes {
		return true
	}
	total := 0
	for l := 1; l <= g.H; l++ {
		sw := 1
		for i := 0; i < l; i++ {
			sw = mul(sw, g.W[i])
		}
		for i := l; i < g.H; i++ {
			sw = mul(sw, g.M[i])
		}
		total += sw
		if total > maxDocNodes {
			return true
		}
	}
	return false
}

// ParseDoc decodes a fattree-fabric/v1 document and validates it against
// the schema's internal consistency rules: the topology tuple must
// parse, the inventory counts must fit it, GUIDs must be well-formed and
// strictly ascending, fault lists must name real links and hosts, and
// the HSD summary must be self-consistent (contention free iff max HSD
// is at most 1). Consumers of daemon or ftfabric output get either a
// document every emitter invariant holds for, or an error — never a
// half-plausible one.
func ParseDoc(r io.Reader) (*Doc, error) {
	var d Doc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("fabric: parse doc: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the document's internal consistency; see ParseDoc.
func (d *Doc) Validate() error {
	if d.Schema != Schema {
		return fmt.Errorf("fabric: doc schema %q, want %q", d.Schema, Schema)
	}
	g, err := topo.ParseSpec(d.Topology)
	if err != nil {
		return fmt.Errorf("fabric: doc topology: %w", err)
	}
	// Bound the build before materializing an attacker-sized fabric: a
	// validator must not allocate gigabytes because a document asked to.
	if tooLargeToValidate(g) {
		return fmt.Errorf("fabric: doc topology %s too large to validate", d.Topology)
	}
	t, err := topo.Build(g)
	if err != nil {
		return fmt.Errorf("fabric: doc topology: %w", err)
	}
	if d.Hosts < 0 || d.Hosts > t.NumHosts() {
		return fmt.Errorf("fabric: doc reports %d hosts, %s has %d", d.Hosts, d.Topology, t.NumHosts())
	}
	if d.Switches < 0 || d.Switches > g.TotalSwitches() {
		return fmt.Errorf("fabric: doc reports %d switches, %s has %d", d.Switches, d.Topology, g.TotalSwitches())
	}
	if d.Links < 0 || d.Links > len(t.Links) {
		return fmt.Errorf("fabric: doc reports %d links, %s has %d", d.Links, d.Topology, len(t.Links))
	}
	var prev uint64
	for i, sw := range d.Inv {
		if !strings.HasPrefix(sw.GUID, "0x") {
			return fmt.Errorf("fabric: doc switch %d: guid %q is not 0x-prefixed hex", i, sw.GUID)
		}
		guid, err := strconv.ParseUint(sw.GUID[2:], 16, 64)
		if err != nil {
			return fmt.Errorf("fabric: doc switch %d: guid %q: %v", i, sw.GUID, err)
		}
		if sw.Ports <= 0 {
			return fmt.Errorf("fabric: doc switch %s: %d ports", sw.GUID, sw.Ports)
		}
		if i > 0 && guid <= prev {
			return fmt.Errorf("fabric: doc switch %d: guid %s not strictly ascending", i, sw.GUID)
		}
		prev = guid
	}
	if f := d.Faults; f != nil {
		for i, l := range f.FailedLinks {
			if l < 0 || l >= d.Links {
				return fmt.Errorf("fabric: doc failed link %d out of range [0,%d)", l, d.Links)
			}
			if i > 0 && l <= f.FailedLinks[i-1] {
				return fmt.Errorf("fabric: doc failed links not strictly ascending at %d", l)
			}
		}
		for _, j := range f.UnroutableHosts {
			if j < 0 || j >= d.Hosts {
				return fmt.Errorf("fabric: doc unroutable host %d out of range [0,%d)", j, d.Hosts)
			}
		}
		if max := d.Hosts * (d.Hosts - 1); f.BrokenPairs < 0 || f.BrokenPairs > max {
			return fmt.Errorf("fabric: doc reports %d broken pairs, at most %d possible", f.BrokenPairs, max)
		}
	}
	if h := d.HSD; h != nil {
		if h.Stages < 0 || h.MaxHSD < 0 {
			return fmt.Errorf("fabric: doc hsd: %d stages, max %d", h.Stages, h.MaxHSD)
		}
		if h.AvgMaxHSD < 0 || h.AvgMaxHSD > float64(h.MaxHSD)+1e-9 {
			return fmt.Errorf("fabric: doc hsd: avg max %g exceeds max %d", h.AvgMaxHSD, h.MaxHSD)
		}
		if h.ContentionFree != (h.MaxHSD <= 1) {
			return fmt.Errorf("fabric: doc hsd: contention_free %v contradicts max HSD %d", h.ContentionFree, h.MaxHSD)
		}
	}
	return nil
}
