package fabric

import (
	"fmt"

	"fattree/internal/topo"
)

// Schema stamps the machine-readable fabric document emitted by
// `ftfabric -json` and served by the daemon's GET /v1/fabric — the
// discover/fault counterpart of the fattree-blame/v1 convention. Bump
// /vN on backwards-incompatible changes.
const Schema = "fattree-fabric/v1"

// SwitchDoc is one discovered switch in a Doc.
type SwitchDoc struct {
	GUID  string `json:"guid"` // 0x-prefixed hex
	Ports int    `json:"ports"`
}

// FaultDoc summarizes the fault state and the reroute's collateral
// damage. FailedLinks lists dead link IDs in ascending order.
type FaultDoc struct {
	FailedLinks     []int `json:"failed_links"`
	UnroutableHosts []int `json:"unroutable_hosts"`
	BrokenPairs     int   `json:"broken_pairs"`
}

// HSDDoc is the cached Shift-HSD summary of the (re)routed tables.
type HSDDoc struct {
	Sequence       string  `json:"sequence"`
	Ordering       string  `json:"ordering"`
	Stages         int     `json:"stages"`
	MaxHSD         int     `json:"max_hsd"`
	AvgMaxHSD      float64 `json:"avg_max_hsd"`
	ContentionFree bool    `json:"contention_free"`
}

// Doc is the schema-stamped machine-readable fabric report: inventory,
// routing identity, and optional fault and contention sections.
type Doc struct {
	Schema   string      `json:"schema"`
	Topology string      `json:"topology"`
	Hosts    int         `json:"hosts"`
	Switches int         `json:"switches"`
	Links    int         `json:"links"`
	Routing  string      `json:"routing,omitempty"`
	Inv      []SwitchDoc `json:"switches_by_guid,omitempty"`
	Faults   *FaultDoc   `json:"faults,omitempty"`
	HSD      *HSDDoc     `json:"hsd,omitempty"`
}

// NewDoc starts a Doc with the topology identity filled in.
func NewDoc(t *topo.Topology) *Doc {
	return &Doc{
		Schema:   Schema,
		Topology: t.Spec.String(),
		Hosts:    t.NumHosts(),
		Switches: t.Spec.TotalSwitches(),
		Links:    len(t.Links),
	}
}

// SetInventory fills the discovery section from a sweep result.
func (d *Doc) SetInventory(inv *Inventory) {
	d.Hosts = inv.Hosts
	d.Switches = inv.Switches
	d.Links = inv.Links
	d.Inv = d.Inv[:0]
	for _, g := range inv.SortedSwitchGUIDs() {
		d.Inv = append(d.Inv, SwitchDoc{
			GUID:  guidString(g),
			Ports: inv.PortsBySwitch[g],
		})
	}
}

// SetFaults fills the fault section from a fault set and reroute result.
func (d *Doc) SetFaults(fs *FaultSet, res RerouteResult) {
	fd := &FaultDoc{
		FailedLinks:     []int{},
		UnroutableHosts: []int{},
		BrokenPairs:     res.BrokenPairs,
	}
	for _, l := range fs.FailedLinks() {
		fd.FailedLinks = append(fd.FailedLinks, int(l))
	}
	fd.UnroutableHosts = append(fd.UnroutableHosts, res.UnroutableHosts...)
	d.Faults = fd
}

func guidString(g GUID) string {
	return fmt.Sprintf("0x%016x", uint64(g))
}
