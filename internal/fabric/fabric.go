// Package fabric emulates the InfiniBand management plane the paper's
// tooling (ibdm / ibutils, OpenSM) operates on: node GUIDs, LID
// assignment, switch forwarding tables keyed by destination LID, an
// ibnetdiscover-style sweep of the cabling, and link fault injection
// with rerouting. It sits between the abstract topology/routing packages
// and anything that wants to look like a real subnet: the same
// structures a subnet manager would program into hardware.
package fabric

import (
	"fmt"
	"sort"

	"fattree/internal/route"
	"fattree/internal/topo"
)

// LID is an InfiniBand local identifier. LID 0 is reserved; assignment
// starts at 1.
type LID uint16

// GUID is a node's globally unique identifier. The emulation derives it
// deterministically from the node's position so dumps are reproducible.
type GUID uint64

// Subnet is a managed fabric: the wired topology plus the management
// identifiers and programmed forwarding state.
type Subnet struct {
	T *topo.Topology
	// LIDOf maps node IDs to LIDs (hosts first, then switches by level
	// and index — the order a subnet manager sweep would find them).
	LIDOf []LID
	// NodeOf is the inverse map (index 0 unused).
	NodeOf []topo.NodeID
	// GUIDs per node.
	GUIDOf []GUID

	hostLIDs []LID // host index -> LID
}

// NewSubnet assigns LIDs and GUIDs over a built topology.
func NewSubnet(t *topo.Topology) *Subnet {
	s := &Subnet{T: t}
	s.LIDOf = make([]LID, len(t.Nodes))
	s.GUIDOf = make([]GUID, len(t.Nodes))
	s.NodeOf = make([]topo.NodeID, 1, len(t.Nodes)+1) // LID 0 reserved
	next := LID(1)
	assign := func(id topo.NodeID) {
		s.LIDOf[id] = next
		s.NodeOf = append(s.NodeOf, id)
		n := t.Node(id)
		s.GUIDOf[id] = guidFor(n)
		next++
	}
	for _, id := range t.ByLevel[0] {
		assign(id)
	}
	for l := 1; l <= t.Spec.H; l++ {
		for _, id := range t.ByLevel[l] {
			assign(id)
		}
	}
	s.hostLIDs = make([]LID, t.NumHosts())
	for j := 0; j < t.NumHosts(); j++ {
		s.hostLIDs[j] = s.LIDOf[t.HostID(j)]
	}
	return s
}

// guidFor derives a stable GUID: 0xFA55 vendor prefix, level, and index.
func guidFor(n *topo.Node) GUID {
	return GUID(0xFA55)<<48 | GUID(n.Level)<<40 | GUID(uint32(n.Index))
}

// HostLID returns the LID of end-port j.
func (s *Subnet) HostLID(j int) LID { return s.hostLIDs[j] }

// Node returns the node behind a LID.
func (s *Subnet) Node(l LID) (*topo.Node, error) {
	if l == 0 || int(l) >= len(s.NodeOf) {
		return nil, fmt.Errorf("fabric: LID %d out of range", l)
	}
	return s.T.Node(s.NodeOf[l]), nil
}

// SwitchTables is the hardware view of a routing: for every switch, a
// linear forwarding table indexed by destination LID whose entries are
// physical egress port numbers (down ports first, then up ports — the
// port numbering a real switch exposes).
type SwitchTables struct {
	S *Subnet
	// Egress[switchNode][lid] is the physical egress port, or -1.
	Egress map[topo.NodeID][]int16
}

// PhysPort converts a topo.PortID to the node's physical port number:
// down ports are 1..nDown, up ports nDown+1..nDown+nUp (ports are
// 1-based on real switches; 0 means unassigned here).
func PhysPort(t *topo.Topology, p topo.PortID) int16 {
	port := &t.Ports[p]
	n := t.Node(port.Node)
	if port.Dir == topo.Down {
		return int16(port.Num + 1)
	}
	return int16(len(n.Down) + port.Num + 1)
}

// Program converts destination-indexed forwarding tables into LID-keyed
// switch tables — what OpenSM would write into the hardware. Only
// host-destination entries exist (the paper's traffic is host to host);
// switch-destination LIDs map to -1.
func (s *Subnet) Program(lft *route.LFT) *SwitchTables {
	st := &SwitchTables{S: s, Egress: make(map[topo.NodeID][]int16)}
	t := s.T
	maxLID := len(s.NodeOf)
	for l := 1; l <= t.Spec.H; l++ {
		for _, id := range t.ByLevel[l] {
			tab := make([]int16, maxLID)
			for i := range tab {
				tab[i] = -1
			}
			for dst := 0; dst < t.NumHosts(); dst++ {
				out := lft.OutPort(id, dst)
				if out == topo.None {
					continue
				}
				tab[s.hostLIDs[dst]] = PhysPort(t, out)
			}
			st.Egress[id] = tab
		}
	}
	return st
}

// Lookup returns the egress physical port a switch uses for a LID.
func (st *SwitchTables) Lookup(sw topo.NodeID, dst LID) (int16, error) {
	tab, ok := st.Egress[sw]
	if !ok {
		return -1, fmt.Errorf("fabric: node %d has no table (not a switch?)", sw)
	}
	if int(dst) >= len(tab) {
		return -1, fmt.Errorf("fabric: LID %d out of table range", dst)
	}
	return tab[dst], nil
}

// Inventory is the result of a discovery sweep: what ibnetdiscover would
// print for this subnet.
type Inventory struct {
	Hosts    int
	Switches int
	Links    int
	// PortsBySwitch counts connected ports per switch GUID.
	PortsBySwitch map[GUID]int
}

// Discover sweeps the fabric breadth-first from host 0, following cables
// like the subnet manager's directed-route probing, and returns the
// inventory. It errors if the sweep does not reach every node (a cabling
// bug the real tool would surface the same way).
func (s *Subnet) Discover() (*Inventory, error) {
	t := s.T
	inv := &Inventory{PortsBySwitch: make(map[GUID]int)}
	seen := make([]bool, len(t.Nodes))
	queue := []topo.NodeID{t.HostID(0)}
	seen[t.HostID(0)] = true
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := t.Node(id)
		switch n.Kind {
		case topo.Host:
			inv.Hosts++
		case topo.Switch:
			inv.Switches++
			inv.PortsBySwitch[s.GUIDOf[id]] = len(n.Up) + len(n.Down)
		}
		for _, ports := range [][]topo.PortID{n.Up, n.Down} {
			for _, pid := range ports {
				inv.Links++
				peer := t.PeerNode(pid)
				if !seen[peer] {
					seen[peer] = true
					queue = append(queue, peer)
				}
			}
		}
	}
	inv.Links /= 2 // every cable counted from both sides
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("fabric: discovery did not reach %v", t.Node(topo.NodeID(i)))
		}
	}
	return inv, nil
}

// SortedSwitchGUIDs returns the discovered switch GUIDs in ascending
// order, for deterministic reporting.
func (inv *Inventory) SortedSwitchGUIDs() []GUID {
	out := make([]GUID, 0, len(inv.PortsBySwitch))
	for g := range inv.PortsBySwitch {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
