package fabric

import (
	"bytes"
	"strings"
	"testing"

	"fattree/internal/route"
	"fattree/internal/topo"
)

func TestLIDAssignment(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	s := NewSubnet(tp)
	// LIDs are dense, start at 1, hosts first.
	if s.HostLID(0) != 1 {
		t.Errorf("host 0 LID = %d, want 1", s.HostLID(0))
	}
	if s.HostLID(127) != 128 {
		t.Errorf("host 127 LID = %d, want 128", s.HostLID(127))
	}
	seen := make(map[LID]bool)
	for id := range tp.Nodes {
		l := s.LIDOf[id]
		if l == 0 {
			t.Fatalf("node %d has LID 0", id)
		}
		if seen[l] {
			t.Fatalf("duplicate LID %d", l)
		}
		seen[l] = true
	}
	if len(seen) != len(tp.Nodes) {
		t.Errorf("assigned %d LIDs for %d nodes", len(seen), len(tp.Nodes))
	}
	// Round trip.
	n, err := s.Node(s.HostLID(64))
	if err != nil || n.Kind != topo.Host || n.Index != 64 {
		t.Errorf("Node(HostLID(64)) = %v, %v", n, err)
	}
	if _, err := s.Node(0); err == nil {
		t.Error("LID 0 resolved")
	}
	if _, err := s.Node(9999); err == nil {
		t.Error("out-of-range LID resolved")
	}
}

func TestGUIDsUniqueAndStable(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	a := NewSubnet(tp)
	b := NewSubnet(tp)
	seen := make(map[GUID]bool)
	for id := range tp.Nodes {
		if a.GUIDOf[id] != b.GUIDOf[id] {
			t.Fatalf("GUID of node %d not stable", id)
		}
		if seen[a.GUIDOf[id]] {
			t.Fatalf("duplicate GUID %x", a.GUIDOf[id])
		}
		seen[a.GUIDOf[id]] = true
	}
}

func TestProgramAndLookup(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	s := NewSubnet(tp)
	lft := route.DModK(tp)
	st := s.Program(lft)
	// Every switch has a table; every host LID resolves to a valid
	// physical port; following the physical ports delivers the packet.
	for dst := 0; dst < tp.NumHosts(); dst += 17 {
		lid := s.HostLID(dst)
		cur := tp.LeafOf((dst + 64) % 128).ID // start away from dst
		for hops := 0; ; hops++ {
			if hops > 2*tp.Spec.H+1 {
				t.Fatalf("physical forwarding loop to lid %d", lid)
			}
			node := tp.Node(cur)
			if node.Kind == topo.Host {
				if node.Index != dst {
					t.Fatalf("delivered to host %d, want %d", node.Index, dst)
				}
				break
			}
			phys, err := st.Lookup(cur, lid)
			if err != nil {
				t.Fatal(err)
			}
			if phys < 1 {
				t.Fatalf("switch %v has no entry for lid %d", node, lid)
			}
			// Convert the physical port back to a PortID.
			var pid topo.PortID
			if int(phys) <= len(node.Down) {
				pid = node.Down[phys-1]
			} else {
				pid = node.Up[int(phys)-1-len(node.Down)]
			}
			cur = tp.PeerNode(pid)
		}
	}
	// Lookups on non-switches and silly LIDs fail.
	if _, err := st.Lookup(tp.HostID(0), 5); err == nil {
		t.Error("host lookup succeeded")
	}
	if _, err := st.Lookup(tp.ByLevel[1][0], 60000); err == nil {
		t.Error("out-of-range LID lookup succeeded")
	}
}

func TestDiscoverInventory(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	s := NewSubnet(tp)
	inv, err := s.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Hosts != 324 {
		t.Errorf("hosts = %d, want 324", inv.Hosts)
	}
	if inv.Switches != 27 {
		t.Errorf("switches = %d, want 27", inv.Switches)
	}
	if inv.Links != len(tp.Links) {
		t.Errorf("links = %d, want %d", inv.Links, len(tp.Links))
	}
	for _, g := range inv.SortedSwitchGUIDs() {
		if inv.PortsBySwitch[g] != 36 {
			t.Errorf("switch %x has %d connected ports, want 36", g, inv.PortsBySwitch[g])
		}
	}
}

func TestLFTDumpRoundTrip(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	s := NewSubnet(tp)
	st := s.Program(route.DModK(tp))
	var buf bytes.Buffer
	if err := st.WriteLFTs(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLFTs(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(parsed) != 6 {
		t.Fatalf("parsed %d switches, want 6", len(parsed))
	}
	// Self-diff is empty.
	if d := DiffLFTs(parsed, parsed); len(d) != 0 {
		t.Errorf("self diff = %v", d)
	}
	// A different routing diffs non-empty.
	st2 := s.Program(route.MinHopRandom(tp, 3))
	var buf2 bytes.Buffer
	if err := st2.WriteLFTs(&buf2); err != nil {
		t.Fatal(err)
	}
	parsed2, err := ParseLFTs(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffLFTs(parsed, parsed2); len(d) == 0 {
		t.Error("different routings produced identical dumps")
	}
}

func TestParseLFTsErrors(t *testing.T) {
	cases := []string{
		"0x0001 003 : (host L0:0)\n", // entry before header
		"Unicast lids of switch guid 0x0 (L1:0):\n",
		"Unicast lids [0x1-0x10] of switch Lid 0xZZ guid 0x0 (L1:0):\n",
		"Unicast lids [0x1-0x10] of switch Lid 0x11 guid 0x0 (L1:0):\nbogus\n",
		"Unicast lids [0x1-0x10] of switch Lid 0x11 guid 0x0 (L1:0):\n0xZZ 003 : x\n",
		"Unicast lids [0x1-0x10] of switch Lid 0x11 guid 0x0 (L1:0):\n0x01 zz : x\n",
	}
	for i, in := range cases {
		if _, err := ParseLFTs(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, in)
		}
	}
}

func TestPhysPortNumbering(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	leaf := tp.SwitchAt(1, 0)
	// Down ports are 1..18, up ports 19..36.
	if got := PhysPort(tp, leaf.Down[0]); got != 1 {
		t.Errorf("first down port = %d, want 1", got)
	}
	if got := PhysPort(tp, leaf.Down[17]); got != 18 {
		t.Errorf("last down port = %d, want 18", got)
	}
	if got := PhysPort(tp, leaf.Up[0]); got != 19 {
		t.Errorf("first up port = %d, want 19", got)
	}
	if got := PhysPort(tp, leaf.Up[17]); got != 36 {
		t.Errorf("last up port = %d, want 36", got)
	}
}
