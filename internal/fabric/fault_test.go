package fabric

import (
	"testing"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func TestRouteAroundNoFaultsEqualsDModK(t *testing.T) {
	for _, g := range []topo.PGFT{
		topo.Cluster128,
		topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}),
	} {
		tp := topo.MustBuild(g)
		fs := NewFaultSet(tp)
		got, res, err := fs.RouteAround()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.UnroutableHosts) != 0 || res.BrokenPairs != 0 {
			t.Fatalf("%v: damage %+v with no faults", g, res)
		}
		want := route.DModK(tp)
		for id := range tp.Nodes {
			for j := 0; j < tp.NumHosts(); j++ {
				if got.Out[id][j] != want.Out[id][j] {
					t.Fatalf("%v: node %d dst %d: reroute %d != d-mod-k %d",
						g, id, j, got.Out[id][j], want.Out[id][j])
				}
			}
		}
	}
}

func TestRouteAroundSurvivesFabricFaults(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	for _, kill := range []int{1, 4, 12} {
		for seed := int64(0); seed < 3; seed++ {
			fs := NewFaultSet(tp)
			if err := fs.FailRandomFabricLinks(kill, seed); err != nil {
				t.Fatal(err)
			}
			lft, res, err := fs.RouteAround()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.UnroutableHosts) != 0 {
				t.Fatalf("kill=%d seed=%d: hosts unroutable %v", kill, seed, res.UnroutableHosts)
			}
			if res.BrokenPairs != 0 {
				t.Fatalf("kill=%d seed=%d: %d broken pairs at moderate fault level", kill, seed, res.BrokenPairs)
			}
			// Every pair still delivered over a path avoiding dead
			// links.
			n := tp.NumHosts()
			for src := 0; src < n; src += 7 {
				for dst := 0; dst < n; dst += 11 {
					if src == dst {
						continue
					}
					hops, err := lft.Trace(src, dst)
					if err != nil {
						t.Fatalf("kill=%d seed=%d: %v", kill, seed, err)
					}
					for _, h := range hops {
						if !fs.Alive(h.Link) {
							t.Fatalf("kill=%d seed=%d: %d->%d crosses dead link %d",
								kill, seed, src, dst, h.Link)
						}
					}
				}
			}
		}
	}
}

func TestRouteAroundHostUplinkFault(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	fs := NewFaultSet(tp)
	// Kill host 5's only uplink.
	h := tp.Host(5)
	fs.Fail(tp.Ports[h.Up[0]].Link)
	lft, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnroutableHosts) != 1 || res.UnroutableHosts[0] != 5 {
		t.Fatalf("unroutable = %v, want [5]", res.UnroutableHosts)
	}
	// Other pairs unaffected.
	if _, err := lft.Trace(0, 127); err != nil {
		t.Errorf("unrelated pair broken: %v", err)
	}
}

func TestRouteAroundGracefulDegradation(t *testing.T) {
	// A single fabric fault should cause at most mild contention under
	// the Shift: flows that used the dead link fold onto a neighbour.
	tp := topo.MustBuild(topo.Cluster324)
	fs := NewFaultSet(tp)
	if err := fs.FailRandomFabricLinks(1, 7); err != nil {
		t.Fatal(err)
	}
	lft, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnroutableHosts) != 0 || res.BrokenPairs != 0 {
		t.Fatalf("unexpected damage %+v", res)
	}
	rep, err := hsd.Analyze(lft, order.Topology(tp.NumHosts(), nil), cps.Shift(tp.NumHosts()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxHSD() > 3 {
		t.Errorf("single fault drove max HSD to %d; expected graceful (<= 3)", rep.MaxHSD())
	}
	if rep.AvgMaxHSD() > 2.0 {
		t.Errorf("single fault avg max HSD = %.2f; expected < 2", rep.AvgMaxHSD())
	}
}

func TestRouteAroundExtremeFaultsReportBrokenPairs(t *testing.T) {
	// At ~30% dead fabric links, minimal up*/down* routing cannot save
	// every pair; the reroute must report it rather than loop or panic.
	tp := topo.MustBuild(topo.Cluster128)
	broken := 0
	for seed := int64(0); seed < 5; seed++ {
		fs := NewFaultSet(tp)
		if err := fs.FailRandomFabricLinks(40, seed); err != nil {
			t.Fatal(err)
		}
		_, res, err := fs.RouteAround()
		if err != nil {
			t.Fatal(err)
		}
		broken += res.BrokenPairs
	}
	if broken == 0 {
		t.Log("no broken pairs even at 30% faults (lucky seeds) — acceptable")
	}
}

func TestFaultSetBookkeeping(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	fs := NewFaultSet(tp)
	if fs.Failed() != 0 {
		t.Fatalf("fresh set has %d failures", fs.Failed())
	}
	fs.Fail(3)
	fs.Fail(3)
	fs.Fail(5)
	if fs.Failed() != 2 {
		t.Errorf("Failed = %d, want 2", fs.Failed())
	}
	if fs.Alive(3) || !fs.Alive(4) {
		t.Error("alive flags wrong")
	}
	fs.Revive(3)
	if fs.Failed() != 1 || !fs.Alive(3) {
		t.Error("revive failed")
	}
	if err := fs.FailRandomFabricLinks(1<<20, 1); err == nil {
		t.Error("impossible fault count accepted")
	}
}
