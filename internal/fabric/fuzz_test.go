package fabric

import (
	"bytes"
	"strings"
	"testing"

	"fattree/internal/route"
	"fattree/internal/topo"
)

func FuzzParseLFTs(f *testing.F) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{2, 2}, []int{1, 2}, []int{1, 1}))
	s := NewSubnet(tp)
	st := s.Program(route.DModK(tp))
	var buf bytes.Buffer
	if err := st.WriteLFTs(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("Unicast lids [0x1-0x10] of switch Lid 0x11 guid 0x0 (L1:0):\n0x0001 003 : (host L0:0)\n")
	f.Add("0x0001 003 : entry before header\n")
	f.Add("Unicast lids Lid 0xZZ\n")
	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := ParseLFTs(strings.NewReader(in))
		if err != nil {
			return
		}
		// Self-diff of anything parsed must be empty.
		if d := DiffLFTs(parsed, parsed); len(d) != 0 {
			t.Fatalf("self-diff non-empty: %v", d)
		}
	})
}
