package fabric

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fattree/internal/route"
	"fattree/internal/topo"
)

func FuzzParseLFTs(f *testing.F) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{2, 2}, []int{1, 2}, []int{1, 1}))
	s := NewSubnet(tp)
	st := s.Program(route.DModK(tp))
	var buf bytes.Buffer
	if err := st.WriteLFTs(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("Unicast lids [0x1-0x10] of switch Lid 0x11 guid 0x0 (L1:0):\n0x0001 003 : (host L0:0)\n")
	f.Add("0x0001 003 : entry before header\n")
	f.Add("Unicast lids Lid 0xZZ\n")
	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := ParseLFTs(strings.NewReader(in))
		if err != nil {
			return
		}
		// Self-diff of anything parsed must be empty.
		if d := DiffLFTs(parsed, parsed); len(d) != 0 {
			t.Fatalf("self-diff non-empty: %v", d)
		}
	})
}

// FuzzDoc throws arbitrary bytes at the fattree-fabric/v1 parser. Any
// document it accepts must re-marshal into a document it accepts again
// (validation is stable under the JSON round trip), and anything it
// rejects must not crash.
func FuzzDoc(f *testing.F) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{2, 2}, []int{1, 2}, []int{1, 1}))
	doc := NewDoc(tp)
	sn := NewSubnet(tp)
	if inv, err := sn.Discover(); err == nil {
		doc.SetInventory(inv)
	}
	seed, err := json.Marshal(doc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"schema":"fattree-fabric/v1","topology":"kary:2,2","hosts":4,"switches":4,"links":12}`)
	f.Add(`{"schema":"fattree-fabric/v1","topology":"324","hosts":324,"switches":27,"links":648,"faults":{"failed_links":[1,2],"unroutable_hosts":[],"broken_pairs":0}}`)
	f.Add(`{"schema":"wrong"}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ParseDoc(strings.NewReader(in))
		if err != nil {
			return
		}
		raw, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("accepted doc does not marshal: %v", err)
		}
		if _, err := ParseDoc(bytes.NewReader(raw)); err != nil {
			t.Fatalf("accepted doc rejected after round trip: %v\n%s", err, raw)
		}
	})
}
