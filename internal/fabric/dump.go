package fabric

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fattree/internal/topo"
)

// This file implements the OpenSM-flavoured dump format for programmed
// forwarding tables, in the spirit of "dump_lfts":
//
//	Unicast lids [0x1-0x1c8] of switch Lid 0x145 guid 0xfa55000100000000 (L1:0):
//	0x0001 019 : (host L0:0)
//	...
//
// and a parser that reads the dump back for diffing two subnet states.

// WriteLFTs dumps every switch's LID-keyed table.
func (st *SwitchTables) WriteLFTs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := st.S
	t := s.T
	ids := make([]topo.NodeID, 0, len(st.Egress))
	for id := range st.Egress {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := t.Node(id)
		tab := st.Egress[id]
		fmt.Fprintf(bw, "Unicast lids [0x1-0x%x] of switch Lid 0x%x guid 0x%016x (L%d:%d):\n",
			len(tab)-1, s.LIDOf[id], uint64(s.GUIDOf[id]), n.Level, n.Index)
		for lid := 1; lid < len(tab); lid++ {
			if tab[lid] < 0 {
				continue
			}
			dst := t.Node(s.NodeOf[lid])
			fmt.Fprintf(bw, "0x%04x %03d : (%s L%d:%d)\n",
				lid, tab[lid], dst.Kind, dst.Level, dst.Index)
		}
	}
	return bw.Flush()
}

// ParsedLFTs is the egress map recovered from a dump: switch LID ->
// destination LID -> physical port.
type ParsedLFTs map[LID]map[LID]int16

// ParseLFTs reads a WriteLFTs dump.
func ParseLFTs(r io.Reader) (ParsedLFTs, error) {
	out := make(ParsedLFTs)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var cur map[LID]int16
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "Unicast lids") {
			// ... of switch Lid 0x145 guid ...
			fields := strings.Fields(line)
			lidIdx := -1
			for i, f := range fields {
				if f == "Lid" && i+1 < len(fields) {
					lidIdx = i + 1
					break
				}
			}
			if lidIdx < 0 {
				return nil, fmt.Errorf("fabric: line %d: malformed switch header", lineNo)
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(fields[lidIdx], "0x"), 16, 16)
			if err != nil {
				return nil, fmt.Errorf("fabric: line %d: bad switch lid: %v", lineNo, err)
			}
			cur = make(map[LID]int16)
			out[LID(v)] = cur
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fabric: line %d: entry before switch header", lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("fabric: line %d: malformed entry", lineNo)
		}
		lid, err := strconv.ParseUint(strings.TrimPrefix(fields[0], "0x"), 16, 16)
		if err != nil {
			return nil, fmt.Errorf("fabric: line %d: bad lid: %v", lineNo, err)
		}
		port, err := strconv.ParseInt(fields[1], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("fabric: line %d: bad port: %v", lineNo, err)
		}
		cur[LID(lid)] = int16(port)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// DiffLFTs compares two parsed dumps and returns a list of human-readable
// differences (missing switches, missing entries, port mismatches).
func DiffLFTs(a, b ParsedLFTs) []string {
	var diffs []string
	for sw, ta := range a {
		tb, ok := b[sw]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("switch 0x%x only in first dump", sw))
			continue
		}
		for lid, pa := range ta {
			pb, ok := tb[lid]
			switch {
			case !ok:
				diffs = append(diffs, fmt.Sprintf("switch 0x%x lid 0x%x only in first dump", sw, lid))
			case pa != pb:
				diffs = append(diffs, fmt.Sprintf("switch 0x%x lid 0x%x: port %d vs %d", sw, lid, pa, pb))
			}
		}
		for lid := range tb {
			if _, ok := ta[lid]; !ok {
				diffs = append(diffs, fmt.Sprintf("switch 0x%x lid 0x%x only in second dump", sw, lid))
			}
		}
	}
	for sw := range b {
		if _, ok := a[sw]; !ok {
			diffs = append(diffs, fmt.Sprintf("switch 0x%x only in second dump", sw))
		}
	}
	sort.Strings(diffs)
	return diffs
}
