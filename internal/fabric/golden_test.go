package fabric

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fattree/internal/route"
	"fattree/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (run with -update to refresh)", name)
	}
}

func TestGoldenLFTDump(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{2, 2}, []int{1, 2}, []int{1, 1}))
	s := NewSubnet(tp)
	st := s.Program(route.DModK(tp))
	var buf bytes.Buffer
	if err := st.WriteLFTs(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "lfts_small.txt", buf.Bytes())
	// The golden dump must parse back.
	parsed, err := ParseLFTs(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 4 {
		t.Errorf("parsed %d switches, want 4", len(parsed))
	}
}
