// Package order implements MPI node orderings: the assignment of MPI
// ranks to cluster end-ports. The paper's central point is that this
// assignment must match the routing: with the topology-aware order
// (rank r on the r-th end-port in RLFT index order) D-Mod-K routes all
// collective permutation sequences without contention, while random
// orders lose up to 60% of the bandwidth and adversarial orders up to
// 92.9% (Section II).
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"fattree/internal/topo"
)

// Ordering maps MPI ranks to end-port indices and back.
type Ordering struct {
	// Label describes how the ordering was generated.
	Label string
	// HostOf[rank] is the end-port index running that rank.
	HostOf []int
	// rankOf[host] is the rank on that end-port, or -1 when the host
	// is not part of the job.
	rankOf []int
}

// New builds an ordering from an explicit rank->host table. numHosts is
// the cluster size (end-port index space).
func New(label string, numHosts int, hostOf []int) (*Ordering, error) {
	o := &Ordering{Label: label, HostOf: append([]int(nil), hostOf...)}
	o.rankOf = make([]int, numHosts)
	for i := range o.rankOf {
		o.rankOf[i] = -1
	}
	for r, h := range o.HostOf {
		if h < 0 || h >= numHosts {
			return nil, fmt.Errorf("order: rank %d on host %d, out of range [0,%d)", r, h, numHosts)
		}
		if o.rankOf[h] != -1 {
			return nil, fmt.Errorf("order: host %d assigned to ranks %d and %d", h, o.rankOf[h], r)
		}
		o.rankOf[h] = r
	}
	return o, nil
}

// Size returns the job size (number of ranks).
func (o *Ordering) Size() int { return len(o.HostOf) }

// NumHosts returns the cluster size the ordering was built for.
func (o *Ordering) NumHosts() int { return len(o.rankOf) }

// RankOf returns the rank on host h, or -1 if h runs no rank.
func (o *Ordering) RankOf(h int) int { return o.rankOf[h] }

// Active returns the sorted end-port indices taking part in the job.
func (o *Ordering) Active() []int {
	a := append([]int(nil), o.HostOf...)
	sort.Ints(a)
	return a
}

// Topology returns the paper's routing-aware order on the given active
// hosts: rank r runs on the r-th active end-port in ascending RLFT index
// order. With active == nil the whole cluster participates.
func Topology(numHosts int, active []int) *Ordering {
	hosts := activeOrAll(numHosts, active)
	sort.Ints(hosts)
	o, err := New("topology", numHosts, hosts)
	if err != nil {
		panic(err) // sorted unique input cannot fail
	}
	return o
}

// Random returns a uniformly random rank assignment over the active
// hosts, deterministic for a seed (the paper's 25-seed sweeps).
func Random(numHosts int, active []int, seed int64) *Ordering {
	hosts := activeOrAll(numHosts, active)
	sort.Ints(hosts)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	o, err := New(fmt.Sprintf("random(%d)", seed), numHosts, hosts)
	if err != nil {
		panic(err)
	}
	return o
}

func activeOrAll(numHosts int, active []int) []int {
	if active == nil {
		all := make([]int, numHosts)
		for i := range all {
			all[i] = i
		}
		return all
	}
	seen := make(map[int]bool, len(active))
	out := make([]int, 0, len(active))
	for _, h := range active {
		if h < 0 || h >= numHosts {
			panic(fmt.Sprintf("order: active host %d out of range [0,%d)", h, numHosts))
		}
		if seen[h] {
			panic(fmt.Sprintf("order: duplicate active host %d", h))
		}
		seen[h] = true
		out = append(out, h)
	}
	return out
}

// Adversarial builds the Section II worst case for the Ring permutation
// on a fully populated RLFT: every leaf's hosts all send to hosts of
// other leaves, picked so that under D-Mod-K all K flows leaving a leaf
// squeeze through a single up-going port (link oversubscription K, the
// measured 7.1% bandwidth case).
//
// The construction computes a destination permutation sigma with
// sigma(x) never in x's leaf and sigma(x) mod K fixed per leaf, then
// flattens sigma's cycles into a rank order so that the Ring stage
// reproduces sigma except at the few cycle-splice points. It requires a
// 2-or-more-level RLFT with K dividing the leaf count.
func Adversarial(t *topo.Topology) (*Ordering, error) {
	g := t.Spec
	k, ok := g.IsRLFT()
	if !ok {
		return nil, fmt.Errorf("order: adversarial order needs an RLFT, got %v", g)
	}
	if g.H < 2 {
		return nil, fmt.Errorf("order: adversarial order needs >= 2 levels")
	}
	n := g.NumHosts()
	leaves := n / k
	if leaves%k != 0 {
		return nil, fmt.Errorf("order: adversarial order needs K (%d) to divide the leaf count (%d)", k, leaves)
	}
	// sigma: the host in leaf l = c + K*t, slot x, sends to the slot-c
	// host of leaf (t*K + x + c + 1) mod L. Per fixed c the K-sized
	// blocks over t tile all leaves, so sigma is a bijection; the +c+1
	// offset keeps every destination outside the sender's leaf.
	sigma := make([]int, n)
	for l := 0; l < leaves; l++ {
		c := l % k
		tt := l / k
		for x := 0; x < k; x++ {
			dstLeaf := (tt*k + x + c + 1) % leaves
			sigma[l*k+x] = dstLeaf*k + c
		}
	}
	// Flatten cycles into a rank order: ranks follow sigma so that the
	// Ring flow rank r -> rank r+1 equals sigma on all but the splice
	// points between cycles.
	hostOf := make([]int, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		for x := start; !seen[x]; x = sigma[x] {
			seen[x] = true
			hostOf = append(hostOf, x)
		}
	}
	return New("adversarial", n, hostOf)
}

// Inverse returns the host->rank table as a slice (rank -1 for inactive
// hosts); a convenience for traffic translation loops.
func (o *Ordering) Inverse() []int {
	return append([]int(nil), o.rankOf...)
}

// Cyclic returns the round-robin placement batch schedulers call
// "cyclic" distribution: rank r runs on leaf (r mod L), slot (r div L).
// It spreads consecutive ranks across leaf switches — good for
// per-process memory bandwidth, catastrophic for fat-tree collectives,
// because consecutive destinations no longer map to consecutive leaf
// slots and the D-Mod-K spread breaks. The paper's "topology" order is
// the block distribution.
func Cyclic(t *topo.Topology) (*Ordering, error) {
	g := t.Spec
	if g.H < 1 {
		return nil, fmt.Errorf("order: cyclic order needs a tree")
	}
	hostsPerLeaf := g.Mi(1)
	n := g.NumHosts()
	leaves := n / hostsPerLeaf
	hostOf := make([]int, n)
	for r := 0; r < n; r++ {
		leaf := r % leaves
		slot := r / leaves
		hostOf[r] = leaf*hostsPerLeaf + slot
	}
	o, err := New("cyclic", n, hostOf)
	if err != nil {
		return nil, err
	}
	return o, nil
}
