package order_test

import (
	"testing"

	"fattree/internal/invariant"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// TestBijectionOnGeneratedRLFTs: every ordering constructor yields a
// rank<->host bijection over the active set on randomized real-life
// fat-trees, with inactive hosts consistently reporting rank -1.
func TestBijectionOnGeneratedRLFTs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := invariant.RandRLFT(seed)
		tp := topo.MustBuild(g)
		n := g.NumHosts()

		check := func(name string, o *order.Ordering) {
			t.Helper()
			if err := invariant.OrderingBijection(o); err != nil {
				t.Errorf("seed %d (%v) %s: %v", seed, g, name, err)
			}
		}
		check("topology", order.Topology(n, nil))
		check("random", order.Random(n, nil, seed))
		if o, err := order.Cyclic(tp); err == nil {
			check("cyclic", o)
		} else {
			t.Errorf("seed %d (%v) cyclic: %v", seed, g, err)
		}
		// Adversarial needs K to divide the leaf count; not every draw
		// qualifies.
		if o, err := order.Adversarial(tp); err == nil {
			check("adversarial", o)
		}

		// Partial jobs: every third end-port active.
		var active []int
		for h := 0; h < n; h += 3 {
			active = append(active, h)
		}
		check("topology-partial", order.Topology(n, active))
		check("random-partial", order.Random(n, active, seed))
	}
}

// TestBijectionRejectsCorruptOrdering: the helper actually bites when a
// rank table is tampered with.
func TestBijectionRejectsCorruptOrdering(t *testing.T) {
	o := order.Topology(8, nil)
	o.HostOf[0] = o.HostOf[1]
	if err := invariant.OrderingBijection(o); err == nil {
		t.Fatal("duplicated host accepted as a bijection")
	}
	o = order.Topology(8, nil)
	o.HostOf[3] = 99
	if err := invariant.OrderingBijection(o); err == nil {
		t.Fatal("out-of-range host accepted as a bijection")
	}
}
