package order

import (
	"testing"

	"fattree/internal/topo"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 4, []int{0, 1, 2, 3}); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	if _, err := New("x", 4, []int{0, 0}); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := New("x", 4, []int{4}); err == nil {
		t.Error("out-of-range host accepted")
	}
	if _, err := New("x", 4, []int{-1}); err == nil {
		t.Error("negative host accepted")
	}
}

func TestTopologyOrder(t *testing.T) {
	o := Topology(8, nil)
	if o.Size() != 8 || o.NumHosts() != 8 {
		t.Fatalf("size/hosts = %d/%d, want 8/8", o.Size(), o.NumHosts())
	}
	for r := 0; r < 8; r++ {
		if o.HostOf[r] != r {
			t.Errorf("rank %d on host %d, want identity", r, o.HostOf[r])
		}
		if o.RankOf(r) != r {
			t.Errorf("RankOf(%d) = %d, want identity", r, o.RankOf(r))
		}
	}
}

func TestTopologyOrderPartial(t *testing.T) {
	o := Topology(10, []int{7, 2, 9, 4})
	want := []int{2, 4, 7, 9}
	for r, h := range want {
		if o.HostOf[r] != h {
			t.Errorf("rank %d on host %d, want %d", r, o.HostOf[r], h)
		}
	}
	if o.RankOf(3) != -1 {
		t.Errorf("inactive host has rank %d, want -1", o.RankOf(3))
	}
	active := o.Active()
	for i, h := range want {
		if active[i] != h {
			t.Fatalf("Active() = %v, want %v", active, want)
		}
	}
}

func TestRandomOrderDeterministicPerSeed(t *testing.T) {
	a := Random(100, nil, 5)
	b := Random(100, nil, 5)
	c := Random(100, nil, 6)
	sameAB, sameAC := true, true
	for r := range a.HostOf {
		if a.HostOf[r] != b.HostOf[r] {
			sameAB = false
		}
		if a.HostOf[r] != c.HostOf[r] {
			sameAC = false
		}
	}
	if !sameAB {
		t.Error("same seed gave different orders")
	}
	if sameAC {
		t.Error("different seeds gave identical orders")
	}
	// It must still be a permutation.
	seen := make(map[int]bool)
	for _, h := range a.HostOf {
		if seen[h] {
			t.Fatalf("host %d twice", h)
		}
		seen[h] = true
	}
	if len(seen) != 100 {
		t.Fatalf("only %d hosts covered", len(seen))
	}
}

func TestRandomOrderPartialKeepsActiveSet(t *testing.T) {
	active := []int{3, 1, 4, 15, 9, 2, 6}
	o := Random(16, active, 7)
	if o.Size() != len(active) {
		t.Fatalf("size = %d, want %d", o.Size(), len(active))
	}
	got := o.Active()
	want := []int{1, 2, 3, 4, 6, 9, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Active = %v, want %v", got, want)
		}
	}
}

func TestActivePanics(t *testing.T) {
	for _, bad := range [][]int{{0, 0}, {-1}, {16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("active %v did not panic", bad)
				}
			}()
			Topology(16, bad)
		}()
	}
}

func TestAdversarialProperties(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128) // K=8, 16 leaves
	o, err := Adversarial(tp)
	if err != nil {
		t.Fatal(err)
	}
	k := 8
	n := tp.NumHosts()
	if o.Size() != n {
		t.Fatalf("size = %d, want %d", o.Size(), n)
	}
	// Under the Ring pattern (rank r -> r+1), count per-leaf
	// destination slots: excluding splice points, all flows leaving a
	// leaf must target one slot (one D-Mod-K up port), and no flow may
	// stay inside its leaf.
	slotCount := make(map[int]map[int]int) // leaf -> slot -> flows
	splices := 0
	for r := 0; r < n; r++ {
		src := o.HostOf[r]
		dst := o.HostOf[(r+1)%n]
		if src/k == dst/k {
			splices++ // only cycle splices may stay inside the leaf
			continue
		}
		leaf := src / k
		if slotCount[leaf] == nil {
			slotCount[leaf] = make(map[int]int)
		}
		slotCount[leaf][dst%k]++
	}
	// Cycle splices scatter a handful of stray flows, but every leaf
	// must still be dominated by one slot (one up port) carrying close
	// to K flows — that is what creates the K-fold oversubscription.
	for leaf, slots := range slotCount {
		best := 0
		for _, c := range slots {
			if c > best {
				best = c
			}
		}
		if best < k-2 {
			t.Errorf("leaf %d: dominant slot carries %d flows, want >= %d", leaf, best, k-2)
		}
	}
	if splices > n/k {
		t.Errorf("too many splice flows: %d", splices)
	}
}

func TestAdversarialMaximizesLeafCongestion(t *testing.T) {
	// At least one leaf must push (almost) all its K flows through one
	// slot, i.e. max per-leaf single-slot count close to K.
	tp := topo.MustBuild(topo.Cluster324) // K=18, 18 leaves
	o, err := Adversarial(tp)
	if err != nil {
		t.Fatal(err)
	}
	k := 18
	n := tp.NumHosts()
	best := 0
	counts := make(map[[2]int]int) // (leaf, slot) -> flows
	for r := 0; r < n; r++ {
		src := o.HostOf[r]
		dst := o.HostOf[(r+1)%n]
		if src/k == dst/k {
			continue
		}
		counts[[2]int{src / k, dst % k}]++
	}
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if best < k-2 {
		t.Errorf("max flows per leaf up-port = %d, want close to K=%d", best, k)
	}
}

func TestAdversarialErrors(t *testing.T) {
	// Non-RLFT rejected.
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 4}, []int{1, 1}))
	if _, err := Adversarial(tp); err == nil {
		t.Error("non-RLFT accepted")
	}
	// Single level rejected.
	tp1 := topo.MustBuild(topo.MustPGFT(1, []int{8}, []int{1}, []int{1}))
	if _, err := Adversarial(tp1); err == nil {
		t.Error("single-level tree accepted")
	}
	// K not dividing leaf count rejected: RLFT2(4, 2) has 2 leaves, K=4.
	g, err := topo.RLFT2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Adversarial(topo.MustBuild(g)); err == nil {
		t.Error("K not dividing leaf count accepted")
	}
}

func TestInverseMatchesRankOf(t *testing.T) {
	o := Random(32, nil, 3)
	inv := o.Inverse()
	for h, r := range inv {
		if r != o.RankOf(h) {
			t.Fatalf("Inverse[%d] = %d, RankOf = %d", h, r, o.RankOf(h))
		}
		if r >= 0 && o.HostOf[r] != h {
			t.Fatalf("HostOf[Inverse[%d]] = %d", h, o.HostOf[r])
		}
	}
}

func TestCyclicOrdering(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128) // 16 leaves x 8 hosts
	o, err := Cyclic(tp)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 on leaf 0 slot 0; rank 1 on leaf 1 slot 0; rank 16 on
	// leaf 0 slot 1.
	if o.HostOf[0] != 0 {
		t.Errorf("rank 0 on host %d", o.HostOf[0])
	}
	if o.HostOf[1] != 8 {
		t.Errorf("rank 1 on host %d, want 8 (leaf 1 slot 0)", o.HostOf[1])
	}
	if o.HostOf[16] != 1 {
		t.Errorf("rank 16 on host %d, want 1 (leaf 0 slot 1)", o.HostOf[16])
	}
	// It is a permutation covering everything.
	seen := make(map[int]bool)
	for _, h := range o.HostOf {
		if seen[h] {
			t.Fatalf("host %d twice", h)
		}
		seen[h] = true
	}
	if len(seen) != 128 {
		t.Errorf("covered %d hosts", len(seen))
	}
}
