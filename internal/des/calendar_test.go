package des

import (
	"math/rand"
	"sort"
	"testing"
)

// The calendar-queue specifics: dispatch events, the NextEvent drain,
// lazy slot sorting, overflow redistribution, and scheduler reuse.

func TestDispatchEventPayload(t *testing.T) {
	s := NewScheduler()
	type rec struct {
		kind uint16
		a, b int32
		c    int64
	}
	var got []rec
	s.SetHandler(func(kind uint16, a, b int32, c int64) {
		got = append(got, rec{kind, a, b, c})
	})
	s.AtEvent(20, 7, 1, 2, 3)
	s.AtEvent(10, 9, -4, 5, -1<<40)
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	want := []rec{{9, -4, 5, -1 << 40}, {7, 1, 2, 3}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("payloads = %+v, want %+v", got, want)
	}
}

func TestNextEventDrain(t *testing.T) {
	// NextEvent must pop dispatch events in the same order Run would,
	// returning their payloads, while running closure events itself.
	s := NewScheduler()
	var closures []Time
	s.At(15, func() { closures = append(closures, 15) })
	s.AtEvent(10, 1, 10, 0, 0)
	s.AtEvent(20, 1, 20, 0, 0)
	s.At(25, func() { closures = append(closures, 25) })
	var dispatched []int32
	for {
		kind, a, _, _, ok := s.NextEvent()
		if !ok {
			break
		}
		if kind != 1 {
			t.Fatalf("kind = %d, want 1", kind)
		}
		dispatched = append(dispatched, a)
	}
	if len(dispatched) != 2 || dispatched[0] != 10 || dispatched[1] != 20 {
		t.Fatalf("dispatch order = %v, want [10 20]", dispatched)
	}
	if len(closures) != 2 || closures[0] != 15 || closures[1] != 25 {
		t.Fatalf("closure order = %v, want [15 25]", closures)
	}
	if s.Pending() != 0 || s.Executed() != 4 {
		t.Fatalf("pending = %d executed = %d, want 0 and 4", s.Pending(), s.Executed())
	}
}

func TestOverflowRebase(t *testing.T) {
	// Events past the wheel horizon wait in overflow and must still pop
	// in global time order once the wheel rebases onto them.
	s := NewScheduler()
	horizon := Time(numSlots) * slotWidth
	var got []Time
	s.SetHandler(func(kind uint16, a, b int32, c int64) {
		got = append(got, s.Now())
	})
	times := []Time{1, horizon + 5, 3 * horizon, horizon + 2, 2, 5 * horizon}
	for _, at := range times {
		s.AtEvent(at, 0, 0, 0, 0)
	}
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestInsertIntoDrainingSlot(t *testing.T) {
	// A handler scheduling into the slot the cursor is consuming must
	// still run in timestamp order (the lazy sort covers the unpopped
	// suffix only).
	s := NewScheduler()
	var got []Time
	s.SetHandler(func(kind uint16, a, b int32, c int64) {
		got = append(got, s.Now())
		if a == 1 {
			// Same slot as the events below, already partly drained.
			s.AtEvent(s.Now()+2, 0, 0, 0, 0)
			s.AtEvent(s.Now()+1, 0, 0, 0, 0)
		}
	})
	s.AtEvent(0, 0, 1, 0, 0)
	s.AtEvent(4, 0, 0, 0, 0)
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	want := []Time{0, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestOutOfOrderSlotAppends(t *testing.T) {
	// Descending-time pushes land in one slot out of order, forcing the
	// dirty sort; FIFO ties must survive it.
	s := NewScheduler()
	var got []int32
	s.SetHandler(func(kind uint16, a, b int32, c int64) {
		got = append(got, a)
	})
	s.AtEvent(3, 0, 30, 0, 0)
	s.AtEvent(1, 0, 10, 0, 0)
	s.AtEvent(2, 0, 20, 0, 0)
	s.AtEvent(1, 0, 11, 0, 0) // tie with the second push
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	want := []int32{10, 11, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerReset(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.SetHandler(func(kind uint16, a, b int32, c int64) { ran++ })
	s.AtEvent(10, 0, 0, 0, 0)
	s.At(20, func() { ran++ })
	s.AtEvent(5*Time(numSlots)*slotWidth, 0, 0, 0, 0) // parked in overflow
	s.Reset()
	if s.Pending() != 0 || s.Now() != 0 {
		t.Fatalf("after Reset: pending = %d now = %d", s.Pending(), s.Now())
	}
	// The dropped events must never fire; fresh ones must.
	s.AtEvent(7, 0, 0, 0, 0)
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	if ran != 1 {
		t.Errorf("ran %d events after reset, want 1", ran)
	}
	if s.Now() != 7 {
		t.Errorf("now = %d, want 7", s.Now())
	}
}

func TestClosureRegistryRecycled(t *testing.T) {
	// Closure slots are freed as closures run, so steady-state closure
	// traffic must not grow the registry.
	s := NewScheduler()
	for round := 0; round < 100; round++ {
		s.After(1, func() {})
		if !s.Run(0) {
			t.Fatal("run hit bound")
		}
	}
	if len(s.fns) > 1 {
		t.Errorf("closure registry grew to %d entries, want <= 1", len(s.fns))
	}
}

func TestNextAtPeeksDirtySlot(t *testing.T) {
	s := NewScheduler()
	s.SetHandler(func(kind uint16, a, b int32, c int64) {})
	s.AtEvent(5, 0, 0, 0, 0)
	s.AtEvent(2, 0, 0, 0, 0) // out-of-order append marks the slot dirty
	if at, ok := s.NextAt(); !ok || at != 2 {
		t.Fatalf("NextAt = %d,%v, want 2,true", at, ok)
	}
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
}

func TestRunBeforeExclusiveBound(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.SetHandler(func(kind uint16, a, b int32, c int64) { got = append(got, s.Now()) })
	for _, at := range []Time{10, 20, 30} {
		s.AtEvent(at, 0, 0, 0, 0)
	}
	if n := s.RunBefore(30); n != 2 {
		t.Fatalf("RunBefore ran %d events, want 2", n)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.AdvanceTo(25)
	if s.Now() != 25 {
		t.Fatalf("now = %d after AdvanceTo, want 25", s.Now())
	}
	if n := s.RunBefore(31); n != 1 || s.Now() != 30 {
		t.Fatalf("second RunBefore ran %d (now %d), want 1 at 30", n, s.Now())
	}
}

func TestRandomizedPopOrder(t *testing.T) {
	// Torture the wheel: random timestamps spanning slots, laps and the
	// overflow path, plus handler-scheduled followups, must pop in
	// exact (time, push order) sequence.
	rng := rand.New(rand.NewSource(42))
	s := NewScheduler()
	type ev struct {
		at  Time
		seq int32
	}
	var want []ev
	var got []ev
	var seq int32
	push := func(at Time) {
		s.AtEvent(at, 0, seq, 0, 0)
		want = append(want, ev{at, seq})
		seq++
	}
	s.SetHandler(func(kind uint16, a, b int32, c int64) {
		got = append(got, ev{s.Now(), a})
		if a%7 == 0 {
			push(s.Now() + Time(rng.Int63n(3*int64(numSlots)*int64(slotWidth))))
		}
	})
	for i := 0; i < 2000; i++ {
		push(Time(rng.Int63n(2 * int64(numSlots) * int64(slotWidth))))
	}
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
