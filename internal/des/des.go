// Package des is a minimal discrete-event simulation kernel: a time-ordered
// event queue with deterministic FIFO tie-breaking. It underpins the
// packet-level network simulator the paper builds in OMNeT++ (Section II).
package des

import "container/heap"

// Time is simulation time in picoseconds. The int64 range covers ~106
// days of simulated time, far beyond any experiment here.
type Time int64

// Common time units.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

type event struct {
	at     Time
	seq    uint64
	fn     func()
	daemon bool
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Scheduler runs events in time order; ties run in scheduling order.
// Daemon events (AtDaemon/AfterDaemon) run only while regular work
// remains queued: once the last regular event has executed, leftover
// daemon events are discarded without advancing the clock, so periodic
// instrumentation never extends a simulation or keeps it alive.
type Scheduler struct {
	now        Time
	seq        uint64
	events     eventHeap
	ran        uint64
	work       int // queued non-daemon events
	maxPending int // high-water mark of work
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of queued regular (non-daemon) events.
func (s *Scheduler) Pending() int { return s.work }

// MaxPending returns the high-water mark of the queue depth — how deep
// the regular event heap ever got. Observability probes sample Pending
// over time; this captures the peak between samples. Daemon events are
// excluded so enabling probes does not alter the reading.
func (s *Scheduler) MaxPending() int { return s.maxPending }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 { return s.ran }

// At schedules fn at absolute time t; scheduling in the past panics
// (it would silently corrupt causality).
func (s *Scheduler) At(t Time, fn func()) {
	s.schedule(t, fn, false)
}

// After schedules fn d after the current time.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// AtDaemon schedules fn at absolute time t as a daemon event: it runs
// only if regular work is still queued when its turn comes, and is
// otherwise discarded without advancing the clock.
func (s *Scheduler) AtDaemon(t Time, fn func()) {
	s.schedule(t, fn, true)
}

// AfterDaemon schedules a daemon event d after the current time.
func (s *Scheduler) AfterDaemon(d Time, fn func()) { s.AtDaemon(s.now+d, fn) }

func (s *Scheduler) schedule(t Time, fn func(), daemon bool) {
	if t < s.now {
		panic("des: event scheduled in the past")
	}
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn, daemon: daemon})
	s.seq++
	if !daemon {
		s.work++
		if s.work > s.maxPending {
			s.maxPending = s.work
		}
	}
}

// Step runs the next event; it reports false when no regular events
// remain (any leftover daemon events are dropped, clock untouched).
func (s *Scheduler) Step() bool {
	if s.work == 0 {
		s.events = s.events[:0]
		return false
	}
	e := heap.Pop(&s.events).(event)
	if !e.daemon {
		s.work--
	}
	s.now = e.at
	s.ran++
	e.fn()
	return true
}

// Run drains the queue. maxEvents bounds runaway simulations (0 = no
// bound); it returns false if the bound was hit with events pending.
func (s *Scheduler) Run(maxEvents uint64) bool {
	for n := uint64(0); s.Step(); n++ {
		if maxEvents > 0 && n+1 >= maxEvents && len(s.events) > 0 {
			return false
		}
	}
	return true
}

// RunUntil runs events with time <= t, then sets the clock to t.
func (s *Scheduler) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}
