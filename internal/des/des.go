// Package des is a minimal discrete-event simulation kernel: a time-ordered
// event queue with deterministic FIFO tie-breaking. It underpins the
// packet-level network simulator the paper builds in OMNeT++ (Section II).
//
// The kernel offers two event forms. Closure events (At/After) are
// convenient but allocate; they suit coarse events like probe ticks.
// Dispatch events (AtEvent/AfterEvent) carry a plain-old-data payload —
// a kind tag plus three integer operands — stored inline in the queue and
// routed to the scheduler's Handler, so the hot path of a large
// simulation schedules millions of events without a single allocation.
// Both forms share one queue and one deterministic ordering.
//
// The queue is a calendar queue (timing wheel): events within the wheel's
// horizon land in fixed-width time slots, each a small append-only array
// with a consumed-prefix cursor that is sorted lazily — by stable
// insertion sort on time alone — the first time the clock reaches the
// slot; events beyond the horizon wait in an overflow list that is
// redistributed when the wheel drains to it. Simulators schedule almost
// exclusively a few link-latencies ahead, so slots hold a handful of
// events: a push is a bounds check and an append, and a pop is a copy
// off the sorted prefix — instead of sifting through one deep global
// heap, which is otherwise most of the simulator's runtime. Appends
// keep equal-time events in scheduling order, so the stable time-only
// sort yields exact (time, sequence) pop order, bit-identical to a
// single ordered queue.
package des

import "math/bits"

// Time is simulation time in picoseconds. The int64 range covers ~106
// days of simulated time, far beyond any experiment here.
type Time int64

// Common time units.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Calendar geometry: 2^13 ps ≈ 8.2 ns slots, 4096 slots ≈ 33.6 µs
// horizon. Default link/switch latencies are 100 ns and MTU wire times
// ~0.5 µs, so in practice every event lands inside the wheel, and the
// slots stay small enough that sorting one on first pop touches a
// handful of cache lines. Events past the horizon (probe ticks, jitter
// timers) take the overflow path.
const (
	slotShift = 13
	slotWidth = Time(1) << slotShift
	numSlots  = 4096
)

// Handler consumes dispatch events scheduled with AtEvent/AfterEvent.
// The kind tag and the three operands are whatever the caller packed.
type Handler func(kind uint16, a, b int32, c int64)

// event is one 32-byte queue entry. key packs the dispatch kind, the
// daemon and closure flags, and the scheduling sequence number; for a
// closure event a indexes the scheduler's fns registry (keeping the
// function pointer out of the hot array). Events are stored by value in
// the slot arrays, so scheduling never allocates for dispatch events.
type event struct {
	at   Time
	key  uint64
	c    int64
	a, b int32
}

// key layout: [63:48] kind, [47] daemon, [46] closure, [45:0] seq.
// 2^46 sequence numbers bound one run at ~7e13 events.
const (
	keyKindShift        = 48
	keyDaemon    uint64 = 1 << 47
	keyClosure   uint64 = 1 << 46
	keySeqMask   uint64 = keyClosure - 1
)

// Scheduler runs events in time order; ties run in scheduling order.
// Daemon events (AtDaemon/AfterDaemon) run only while regular work
// remains queued: once the last regular event has executed, leftover
// daemon events are discarded without advancing the clock, so periodic
// instrumentation never extends a simulation or keeps it alive.
type Scheduler struct {
	now        Time
	seq        uint64
	handler    Handler
	ran        uint64
	work       int // queued non-daemon events
	pending    int // queued events of either kind
	maxPending int // high-water mark of work

	base     Time // wheel window start, multiple of slotWidth
	cursor   int  // slots before cursor are empty
	occ      [numSlots / 64]uint64
	slots    [numSlots]slot
	overflow []event // events at base+horizon or later, unordered

	// Calendar pressure telemetry, reset with Reset: how many times the
	// wheel re-anchored at the overflow list, the overflow list's
	// high-water length, and the peak count of simultaneously occupied
	// wheel slots. All maintained on already-rare paths (first insert
	// into an empty slot, overflow push, rebase), so the hot path pays
	// nothing for them.
	rebases      uint64
	overflowPeak int
	occSlots     int
	occSlotsPeak int

	// bufs recycles slot backing arrays: a slot hands its array back the
	// moment it drains and grabs one on its next first insert. Without
	// this, every slot index a burst ever lands on would retain a
	// burst-sized array, and memory would scale with simulated time
	// instead of with peak concurrent events.
	bufs [][]event

	// fns is the closure registry: events stay plain data, and a closure
	// event's a operand indexes here. Slots are recycled through fnFree
	// as their events fire.
	fns    []func()
	fnFree []int32
}

// slot holds one wheel slot's events; ev[:head] is the already-popped
// prefix. Inserts append; an append that breaks ascending time order
// marks the slot dirty, and the unpopped suffix is insertion-sorted by
// (at, seq) lazily, when the cursor reaches the slot — so the insert
// hot path costs one comparison against maxAt, and the common case of
// in-order appends never sorts at all. ev is nil while the slot is
// empty — its storage lives in the scheduler's buffer pool.
type slot struct {
	ev    []event
	maxAt Time
	head  int32
	dirty bool
}

// sort orders the unpopped suffix ascending by (at, seq). Appends happen
// in push order, so the array is already seq-ascending: a stable
// insertion sort on at alone (strict less) yields (at, seq) order with
// one comparison per step. Events land mostly in arrival order, so the
// handful of entries a slot holds beats anything with setup cost.
func (sl *slot) sort() {
	sl.dirty = false
	ev := sl.ev
	for i := int(sl.head) + 1; i < len(ev); i++ {
		e := ev[i]
		j := i
		for j > int(sl.head) && e.at < ev[j-1].at {
			ev[j] = ev[j-1]
			j--
		}
		ev[j] = e
	}
}

// grab takes a pooled (empty, zeroed) backing array.
func (s *Scheduler) grab() []event {
	if n := len(s.bufs); n > 0 {
		b := s.bufs[n-1]
		s.bufs = s.bufs[:n-1]
		return b
	}
	return make([]event, 0, 8)
}

// release returns a drained slot's array to the pool.
func (s *Scheduler) release(sl *slot) {
	s.occSlots--
	s.bufs = append(s.bufs, sl.ev[:0])
	sl.ev = nil
	sl.maxAt = 0
	sl.head = 0
	sl.dirty = false
}

// slotInsert appends e to slot i, deferring ordering to the lazy sort
// at pop time. Inserting into the slot the cursor is draining is fine:
// e.at >= now, so sorting the unpopped suffix keeps global order.
func (s *Scheduler) slotInsert(i int, e event) {
	sl := &s.slots[i]
	if sl.ev == nil {
		sl.ev = s.grab()
		s.occSlots++
		if s.occSlots > s.occSlotsPeak {
			s.occSlotsPeak = s.occSlots
		}
	}
	sl.ev = append(sl.ev, e)
	if e.at < sl.maxAt {
		sl.dirty = true
	} else {
		sl.maxAt = e.at
	}
	s.occ[i>>6] |= 1 << uint(i&63)
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// SetHandler installs the dispatch-event consumer. Must be set before
// the first AtEvent/AfterEvent is executed.
func (s *Scheduler) SetHandler(h Handler) { s.handler = h }

// Reset returns the scheduler to time zero with an empty queue, keeping
// the queue's capacity (and the handler) for reuse across runs.
func (s *Scheduler) Reset() {
	s.clear()
	s.now = 0
	s.seq = 0
	s.ran = 0
	s.maxPending = 0
	s.base = 0
	s.rebases = 0
	s.overflowPeak = 0
	s.occSlotsPeak = 0
}

// clear drops every queued event and empties the closure registry so
// retained closures don't leak.
func (s *Scheduler) clear() {
	if s.pending > 0 {
		for i := range s.slots {
			if s.slots[i].ev != nil {
				s.release(&s.slots[i])
			}
		}
		s.overflow = s.overflow[:0]
		s.occ = [numSlots / 64]uint64{}
	}
	for i := range s.fns {
		s.fns[i] = nil
	}
	s.fns = s.fns[:0]
	s.fnFree = s.fnFree[:0]
	s.cursor = 0
	s.pending = 0
	s.work = 0
	s.occSlots = 0
}

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// AdvanceTo moves the clock forward to t without running anything;
// moving backwards panics. Used by barrier-stage drivers to align the
// clock across stage boundaries.
func (s *Scheduler) AdvanceTo(t Time) {
	if t < s.now {
		panic("des: clock moved backwards")
	}
	s.now = t
}

// Pending returns the number of queued regular (non-daemon) events.
func (s *Scheduler) Pending() int { return s.work }

// MaxPending returns the high-water mark of the queue depth — how deep
// the regular event queue ever got. Observability probes sample Pending
// over time; this captures the peak between samples. Daemon events are
// excluded so enabling probes does not alter the reading.
func (s *Scheduler) MaxPending() int { return s.maxPending }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 { return s.ran }

// Rebases returns how many times the calendar wheel re-anchored at the
// overflow list since the last Reset. Frequent rebases mean the
// workload schedules far past the wheel horizon and the overflow list
// is doing the queue's work.
func (s *Scheduler) Rebases() uint64 { return s.rebases }

// OverflowHighWater returns the overflow list's peak length since the
// last Reset.
func (s *Scheduler) OverflowHighWater() int { return s.overflowPeak }

// OccupiedSlotsHighWater returns the peak number of simultaneously
// occupied wheel slots since the last Reset — how spread out in time
// the pending event set got.
func (s *Scheduler) OccupiedSlotsHighWater() int { return s.occSlotsPeak }

// NextAt returns the timestamp of the earliest queued event, or ok ==
// false when the queue is empty. Daemon events count: they hold a place
// in the queue even though they may be discarded.
func (s *Scheduler) NextAt() (Time, bool) {
	if s.pending == 0 {
		return 0, false
	}
	if i := s.firstOccupied(s.cursor); i >= 0 {
		sl := &s.slots[i]
		if sl.dirty {
			sl.sort()
		}
		return sl.ev[sl.head].at, true
	}
	min := s.overflow[0].at
	for i := 1; i < len(s.overflow); i++ {
		if s.overflow[i].at < min {
			min = s.overflow[i].at
		}
	}
	return min, true
}

// regFn parks a closure in the registry and returns its index.
func (s *Scheduler) regFn(fn func()) int32 {
	if n := len(s.fnFree); n > 0 {
		idx := s.fnFree[n-1]
		s.fnFree = s.fnFree[:n-1]
		s.fns[idx] = fn
		return idx
	}
	s.fns = append(s.fns, fn)
	return int32(len(s.fns) - 1)
}

// At schedules fn at absolute time t; scheduling in the past panics
// (it would silently corrupt causality).
func (s *Scheduler) At(t Time, fn func()) {
	s.push(event{at: t, key: keyClosure, a: s.regFn(fn)})
}

// After schedules fn d after the current time.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// AtDaemon schedules fn at absolute time t as a daemon event: it runs
// only if regular work is still queued when its turn comes, and is
// otherwise discarded without advancing the clock.
func (s *Scheduler) AtDaemon(t Time, fn func()) {
	s.push(event{at: t, key: keyClosure | keyDaemon, a: s.regFn(fn)})
}

// AfterDaemon schedules a daemon event d after the current time.
func (s *Scheduler) AfterDaemon(d Time, fn func()) { s.AtDaemon(s.now+d, fn) }

// AtEvent schedules a dispatch event at absolute time t. The payload is
// stored inline in the queue — no allocation — and delivered to the
// Handler when the event fires.
func (s *Scheduler) AtEvent(t Time, kind uint16, a, b int32, c int64) {
	s.push(event{at: t, key: uint64(kind) << keyKindShift, a: a, b: b, c: c})
}

// AfterEvent schedules a dispatch event d after the current time.
func (s *Scheduler) AfterEvent(d Time, kind uint16, a, b int32, c int64) {
	s.AtEvent(s.now+d, kind, a, b, c)
}

// push files an event into its wheel slot or the overflow list. Events
// never land before the cursor: e.at >= now, and the cursor trails the
// slot of the last popped event.
func (s *Scheduler) push(e event) {
	if e.at < s.now {
		panic("des: event scheduled in the past")
	}
	e.key |= s.seq
	s.seq++
	if d := (e.at - s.base) >> slotShift; d < numSlots {
		s.slotInsert(int(d), e)
	} else {
		s.overflow = append(s.overflow, e)
		if len(s.overflow) > s.overflowPeak {
			s.overflowPeak = len(s.overflow)
		}
	}
	s.pending++
	if e.key&keyDaemon == 0 {
		s.work++
		if s.work > s.maxPending {
			s.maxPending = s.work
		}
	}
}

// firstOccupied returns the first non-empty slot at or after from, or
// -1 if the wheel is empty from there on.
func (s *Scheduler) firstOccupied(from int) int {
	w := from >> 6
	b := s.occ[w] &^ (1<<uint(from&63) - 1)
	for {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
		w++
		if w >= len(s.occ) {
			return -1
		}
		b = s.occ[w]
	}
}

// rebase re-anchors the wheel at the earliest overflow event and
// redistributes what now fits. Caller guarantees the wheel is empty and
// the overflow is not.
func (s *Scheduler) rebase() {
	s.rebases++
	min := s.overflow[0].at
	for i := 1; i < len(s.overflow); i++ {
		if s.overflow[i].at < min {
			min = s.overflow[i].at
		}
	}
	s.base = min &^ (slotWidth - 1)
	s.cursor = 0
	keep := s.overflow[:0]
	for _, e := range s.overflow {
		d := (e.at - s.base) >> slotShift
		if d >= numSlots {
			keep = append(keep, e)
			continue
		}
		s.slotInsert(int(d), e)
	}
	s.overflow = keep
}

// Step runs the next event; it reports false when no regular events
// remain (any leftover daemon events are dropped, clock untouched).
func (s *Scheduler) Step() bool {
	if s.work == 0 {
		s.clear()
		return false
	}
	// Pop inline: the cursor slot usually still has events, so the
	// common case is one bit test, one copy and a head bump.
	i := s.cursor
	if s.occ[i>>6]&(1<<uint(i&63)) == 0 {
		i = s.firstOccupied(i)
		if i < 0 {
			s.rebase()
			i = s.firstOccupied(0)
		}
		s.cursor = i
	}
	sl := &s.slots[i]
	if sl.dirty {
		sl.sort()
	}
	h := sl.head
	e := sl.ev[h]
	sl.head = h + 1
	if int(h+1) == len(sl.ev) {
		s.release(sl)
		s.occ[i>>6] &^= 1 << uint(i&63)
	}
	s.pending--
	if e.key&keyDaemon == 0 {
		s.work--
	}
	s.now = e.at
	s.ran++
	if e.key&keyClosure != 0 {
		fn := s.fns[e.a]
		s.fns[e.a] = nil
		s.fnFree = append(s.fnFree, e.a)
		fn()
	} else {
		s.handler(uint16(e.key>>keyKindShift), e.a, e.b, e.c)
	}
	return true
}

// Run drains the queue. maxEvents bounds runaway simulations (0 = no
// bound); it returns false if the bound was hit with events pending.
func (s *Scheduler) Run(maxEvents uint64) bool {
	for n := uint64(0); s.Step(); n++ {
		if maxEvents > 0 && n+1 >= maxEvents && s.pending > 0 {
			return false
		}
	}
	return true
}

// NextEvent pops queued events until it reaches a dispatch event, whose
// payload it returns; closure events execute inside the call. ok ==
// false means no regular events remain (leftover daemon events are
// dropped, clock untouched). A simulator's hot loop can switch on the
// returned kind directly instead of going through the Handler
// indirection — same pop order, one indirect call less per event.
// Mirrors Step's body: keep the two in sync.
func (s *Scheduler) NextEvent() (kind uint16, a, b int32, c int64, ok bool) {
	for {
		if s.work == 0 {
			s.clear()
			return 0, 0, 0, 0, false
		}
		i := s.cursor
		if s.occ[i>>6]&(1<<uint(i&63)) == 0 {
			i = s.firstOccupied(i)
			if i < 0 {
				s.rebase()
				i = s.firstOccupied(0)
			}
			s.cursor = i
		}
		sl := &s.slots[i]
		if sl.dirty {
			sl.sort()
		}
		h := sl.head
		e := sl.ev[h]
		sl.head = h + 1
		if int(h+1) == len(sl.ev) {
			s.release(sl)
			s.occ[i>>6] &^= 1 << uint(i&63)
		}
		s.pending--
		if e.key&keyDaemon == 0 {
			s.work--
		}
		s.now = e.at
		s.ran++
		if e.key&keyClosure != 0 {
			fn := s.fns[e.a]
			s.fns[e.a] = nil
			s.fnFree = append(s.fnFree, e.a)
			fn()
			continue
		}
		return uint16(e.key >> keyKindShift), e.a, e.b, e.c, true
	}
}

// RunUntil runs events with time <= t, then sets the clock to t.
func (s *Scheduler) RunUntil(t Time) {
	for {
		at, ok := s.NextAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunBefore runs regular events with time strictly less than t and
// reports how many ran. The clock is left at the last executed event
// (not advanced to t), so a caller coordinating several schedulers can
// align clocks itself. Daemon events before t run under the usual rule.
func (s *Scheduler) RunBefore(t Time) uint64 {
	var n uint64
	for s.work > 0 {
		at, ok := s.NextAt()
		if !ok || at >= t {
			break
		}
		s.Step()
		n++
	}
	return n
}
