package des

import (
	"testing"
	"testing/quick"
)

func TestEventOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("final time = %d, want 30", s.Now())
	}
	if s.Executed() != 3 {
		t.Errorf("executed = %d, want 3", s.Executed())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("ties ran out of order: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var trace []Time
	s.At(10, func() {
		trace = append(trace, s.Now())
		s.After(5, func() { trace = append(trace, s.Now()) })
	})
	s.Run(0)
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run(0)
}

func TestRunBound(t *testing.T) {
	s := NewScheduler()
	var bomb func()
	n := 0
	bomb = func() {
		n++
		s.After(1, bomb)
	}
	s.At(0, bomb)
	if s.Run(100) {
		t.Error("unbounded chain reported clean completion")
	}
	if n == 0 || n > 100 {
		t.Errorf("ran %d events under bound 100", n)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.RunUntil(12)
	if len(got) != 2 {
		t.Fatalf("ran %d events, want 2", len(got))
	}
	if s.Now() != 12 {
		t.Errorf("now = %d, want 12", s.Now())
	}
	s.RunUntil(100)
	if len(got) != 4 {
		t.Errorf("ran %d events total, want 4", len(got))
	}
}

func TestPendingCount(t *testing.T) {
	s := NewScheduler()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestDaemonEvents(t *testing.T) {
	// A self-re-arming daemon interleaves with work but never outlives
	// it: the tick queued past the last work event is discarded and the
	// clock stays at the final work event.
	s := NewScheduler()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now())
		s.AfterDaemon(2, tick)
	}
	s.AtDaemon(0, tick)
	worked := 0
	for _, at := range []Time{1, 3, 5} {
		s.At(at, func() { worked++ })
	}
	if s.Pending() != 3 {
		t.Errorf("pending = %d, want 3 (daemon events excluded)", s.Pending())
	}
	if !s.Run(0) {
		t.Fatal("run hit bound")
	}
	if worked != 3 {
		t.Errorf("ran %d work events, want 3", worked)
	}
	// Daemon ticks at 0, 2, 4; the tick armed for 6 is dropped.
	if len(ticks) != 3 || ticks[0] != 0 || ticks[1] != 2 || ticks[2] != 4 {
		t.Errorf("daemon ticks = %v, want [0 2 4]", ticks)
	}
	if s.Now() != 5 {
		t.Errorf("final time = %d, want 5 (daemon must not advance the clock)", s.Now())
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after run", s.Pending())
	}
	// A daemon scheduled on a drained scheduler never runs.
	s.AtDaemon(10, func() { t.Error("daemon ran with no work queued") })
	s.Run(0)
	if s.Now() != 5 {
		t.Errorf("time advanced to %d by a work-less daemon", s.Now())
	}
}

func TestDaemonTieWithLastWorkEvent(t *testing.T) {
	// A daemon scheduled earlier than a work event at the same time
	// still runs (FIFO tie-break); scheduled later, it is dropped.
	s := NewScheduler()
	ran := false
	s.AtDaemon(5, func() { ran = true })
	s.At(5, func() {})
	s.Run(0)
	if !ran {
		t.Error("earlier-scheduled daemon at tied time did not run")
	}

	s2 := NewScheduler()
	s2.At(5, func() {})
	s2.AtDaemon(5, func() { t.Error("later-scheduled daemon ran after final work event") })
	s2.Run(0)
}

func TestMaxPendingExcludesDaemons(t *testing.T) {
	s := NewScheduler()
	s.At(1, func() {})
	s.At(2, func() {})
	s.AtDaemon(1, func() {})
	s.AtDaemon(2, func() {})
	if s.MaxPending() != 2 {
		t.Errorf("max pending = %d, want 2", s.MaxPending())
	}
	s.Run(0)
	if s.MaxPending() != 2 {
		t.Errorf("max pending after run = %d, want 2", s.MaxPending())
	}
}

func TestMonotonicClockQuick(t *testing.T) {
	// Property: for any batch of event times, execution times are
	// non-decreasing.
	f := func(times []uint16) bool {
		s := NewScheduler()
		var seen []Time
		for _, at := range times {
			at := Time(at)
			s.At(at, func() { seen = append(seen, s.Now()) })
		}
		s.Run(0)
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Errorf("Second = %d ps", Second)
	}
	if Microsecond != 1000*Nanosecond {
		t.Errorf("Microsecond = %d", Microsecond)
	}
}

func TestCalendarPressureTelemetry(t *testing.T) {
	s := NewScheduler()
	// Two near events land in distinct wheel slots; one far event lands
	// past the horizon, on the overflow list, and forces a rebase when
	// the wheel drains.
	horizon := slotWidth * numSlots
	ran := 0
	s.At(1, func() { ran++ })
	s.At(slotWidth+1, func() { ran++ })
	s.At(2*horizon, func() { ran++ })
	if got := s.OccupiedSlotsHighWater(); got < 2 {
		t.Errorf("occupied-slots high water %d, want >= 2", got)
	}
	if got := s.OverflowHighWater(); got != 1 {
		t.Errorf("overflow high water %d, want 1", got)
	}
	if got := s.Rebases(); got != 0 {
		t.Errorf("rebases before running: %d, want 0", got)
	}
	if !s.Run(0) {
		t.Fatal("run did not drain")
	}
	if ran != 3 {
		t.Fatalf("ran %d events, want 3", ran)
	}
	if got := s.Rebases(); got < 1 {
		t.Errorf("rebases after draining past the horizon: %d, want >= 1", got)
	}

	// Reset clears the telemetry with the rest of the scheduler state.
	s.Reset()
	if s.Rebases() != 0 || s.OverflowHighWater() != 0 || s.OccupiedSlotsHighWater() != 0 {
		t.Errorf("Reset kept telemetry: rebases %d overflow %d slots %d",
			s.Rebases(), s.OverflowHighWater(), s.OccupiedSlotsHighWater())
	}
}
