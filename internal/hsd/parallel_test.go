package hsd

import (
	"testing"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	for _, ord := range []*order.Ordering{order.Topology(n, nil), order.Random(n, nil, 3)} {
		for _, seq := range []cps.Sequence{cps.Shift(n), cps.RecursiveDoubling(n), cps.Binomial(n)} {
			seqRep, err := Analyze(lft, ord, seq)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8, 0} {
				parRep, err := AnalyzeParallel(lft, ord, seq, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(parRep.Stages) != len(seqRep.Stages) {
					t.Fatalf("%s w=%d: stage counts differ", seq.Name(), workers)
				}
				for s := range seqRep.Stages {
					if parRep.Stages[s] != seqRep.Stages[s] {
						t.Fatalf("%s w=%d stage %d: %+v != %+v",
							seq.Name(), workers, s, parRep.Stages[s], seqRep.Stages[s])
					}
				}
			}
		}
	}
}

func TestAnalyzeParallelValidation(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	if _, err := AnalyzeParallel(lft, order.Topology(128, nil), cps.Ring(64), 4); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := AnalyzeParallel(lft, order.Topology(64, nil), cps.Ring(64), 4); err == nil {
		t.Error("host-count mismatch accepted")
	}
}

func TestAnalyzeParallelEmptySequence(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	// A single-rank job has zero shift stages.
	o := order.Topology(128, []int{5})
	rep, err := AnalyzeParallel(lft, o, cps.Shift(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 0 {
		t.Errorf("stages = %d, want 0", len(rep.Stages))
	}
}

func TestAnalyzeParallelPropagatesErrors(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	// Corrupt the table to force a walk error.
	leaf := tp.LeafOf(0)
	lft.Out[leaf.ID][127] = topo.None
	o := order.Topology(128, nil)
	if _, err := AnalyzeParallel(lft, o, cps.Shift(128), 4); err == nil {
		t.Error("walk error swallowed")
	}
}

func TestSweepOrderingsParallelMatchesSequential(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	var orders []*order.Ordering
	for seed := int64(0); seed < 8; seed++ {
		orders = append(orders, order.Random(n, nil, seed))
	}
	seq := cps.Dissemination(n)
	want, err := SweepOrderings(lft, orders, seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepOrderingsParallel(lft, orders, seq, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("parallel sweep %+v != sequential %+v", got, want)
	}
	empty, err := SweepOrderingsParallel(lft, nil, seq, 4)
	if err != nil || empty.Samples != 0 {
		t.Errorf("empty sweep = %+v, %v", empty, err)
	}
}
