package hsd

import (
	"testing"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// stagePairs translates one CPS stage to end-port pairs under o.
func stagePairs(t *testing.T, o *order.Ordering, seq cps.Sequence, stage int) [][2]int {
	t.Helper()
	st := seq.Stage(stage)
	pairs := make([][2]int, 0, len(st))
	for _, p := range st {
		pairs = append(pairs, [2]int{o.HostOf[p.Src], o.HostOf[p.Dst]})
	}
	return pairs
}

// TestStageFlowsMatchCounters pins the tracking invariant on the paper's
// 324-node cluster: for every directed link the recorded flow set has
// exactly as many members as the bare counter, on both the compiled
// fast path and the table-walk path, and the stage summary is identical
// with tracking on and off.
func TestStageFlowsMatchCounters(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	compiled, err := route.Compile(lft)
	if err != nil {
		t.Fatal(err)
	}
	o := order.Random(tp.NumHosts(), nil, 7)
	pairs := stagePairs(t, o, cps.RecursiveDoubling(tp.NumHosts()), 3)

	for _, rt := range []route.Router{lft, compiled} {
		plain := NewAnalyzer(rt)
		base, err := plain.Stage(pairs)
		if err != nil {
			t.Fatal(err)
		}
		baseUp, baseDown := plain.LinkLoads(nil, nil)

		a := NewAnalyzer(rt)
		a.SetTrackFlows(true)
		got, err := a.Stage(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("%s: tracked summary %+v != plain %+v", rt.Label(), got, base)
		}
		hot := 0
		for l := range tp.Links {
			for _, up := range []bool{true, false} {
				want := baseDown[l]
				if up {
					want = baseUp[l]
				}
				flows := a.StageFlows(topo.LinkID(l), up)
				if len(flows) != int(want) {
					t.Fatalf("%s: link %d up=%v: %d tracked flows, counter %d",
						rt.Label(), l, up, len(flows), want)
				}
				if want > 1 {
					hot++
				}
				// Every member must really cross the link: re-walk it.
				for _, fi := range flows {
					p := pairs[fi]
					found := false
					err := rt.Walk(p[0], p[1], func(link topo.LinkID, u bool) {
						if int(link) == l && u == up {
							found = true
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if !found {
						t.Fatalf("%s: flow %d->%d blamed on link %d up=%v it never crosses",
							rt.Label(), p[0], p[1], l, up)
					}
				}
			}
		}
		if hot == 0 {
			t.Errorf("%s: random ordering produced no hot links (want contention)", rt.Label())
		}
	}
}

// TestStageFlowsContentionFree checks the negative space: under D-Mod-K
// with the topology-aware ordering and the topo-aware recursive
// doubling every recorded flow set has at most one member, matching the
// paper's contention-freedom claim.
func TestStageFlowsContentionFree(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	o := order.Topology(tp.NumHosts(), nil)
	seq, err := cps.TopoAwareRecursiveDoubling(tp.Spec.M)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(lft)
	a.SetTrackFlows(true)
	pairs := make([][2]int, 0, tp.NumHosts())
	for s := 0; s < seq.NumStages(); s++ {
		pairs = pairs[:0]
		for _, p := range seq.Stage(s) {
			pairs = append(pairs, [2]int{o.HostOf[p.Src], o.HostOf[p.Dst]})
		}
		sr, err := a.Stage(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if sr.MaxHSD > 1 {
			t.Fatalf("stage %d: max HSD %d under topology ordering", s, sr.MaxHSD)
		}
		for l := range tp.Links {
			if n := len(a.StageFlows(topo.LinkID(l), true)); n > 1 {
				t.Fatalf("stage %d: link %d up tracked %d flows", s, l, n)
			}
			if n := len(a.StageFlows(topo.LinkID(l), false)); n > 1 {
				t.Fatalf("stage %d: link %d down tracked %d flows", s, l, n)
			}
		}
	}
	// Tracking off: StageFlows must return nil, not stale data.
	a.SetTrackFlows(false)
	if a.StageFlows(0, true) != nil {
		t.Error("StageFlows returned data with tracking off")
	}
}
