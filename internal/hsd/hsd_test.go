package hsd

import (
	"testing"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// theoremTopos are complete RLFTs used to validate Theorems 1 and 2.
var theoremTopos = []topo.PGFT{
	topo.Cluster128,
	topo.Cluster324,
	topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}),
	topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}),
	topo.MustPGFT(3, []int{6, 6, 4}, []int{1, 6, 3}, []int{1, 1, 2}),
}

func TestTheorem1ShiftContentionFree(t *testing.T) {
	// Theorems 1+2: D-Mod-K + topology order + Shift CPS gives HSD = 1
	// in every stage on every complete RLFT.
	for _, g := range theoremTopos {
		tp := topo.MustBuild(g)
		lft := route.DModK(tp)
		o := order.Topology(tp.NumHosts(), nil)
		rep, err := Analyze(lft, o, cps.Shift(tp.NumHosts()))
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !rep.ContentionFree() {
			t.Errorf("%v: shift max HSD = %d, want 1", g, rep.MaxHSD())
		}
		if rep.AvgMaxHSD() != 1.0 {
			t.Errorf("%v: shift avg max HSD = %v, want 1.0", g, rep.AvgMaxHSD())
		}
	}
}

func TestUnidirectionalCPSContentionFree(t *testing.T) {
	// Shift is a superset of all unidirectional CPS, so they must all be
	// contention free too.
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	o := order.Topology(n, nil)
	for _, seq := range []cps.Sequence{
		cps.Ring(n), cps.RingAllgather(n), cps.Binomial(n),
		cps.BinomialReduce(n), cps.Dissemination(n), cps.Tournament(n),
	} {
		rep, err := Analyze(lft, o, seq)
		if err != nil {
			t.Fatalf("%s: %v", seq.Name(), err)
		}
		if !rep.ContentionFree() {
			t.Errorf("%s: max HSD = %d, want 1", seq.Name(), rep.MaxHSD())
		}
	}
}

func TestTopoAwareRecursiveDoublingContentionFree(t *testing.T) {
	// Section VI: the tree-structured recursive doubling keeps HSD = 1
	// under D-Mod-K with topology ordering on full RLFTs.
	for _, g := range theoremTopos {
		tp := topo.MustBuild(g)
		lft := route.DModK(tp)
		seq, err := cps.TopoAwareRecursiveDoubling(g.M)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		o := order.Topology(tp.NumHosts(), nil)
		rep, err := Analyze(lft, o, seq)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !rep.ContentionFree() {
			t.Errorf("%v: topo-aware RD max HSD = %d, want 1", g, rep.MaxHSD())
		}
	}
}

func TestPlainRecursiveDoublingCongestsUnderRandomOrder(t *testing.T) {
	// The flat XOR pattern with a random order creates hot spots (the
	// Figure 2/3 "Butterfly" behaviour).
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	rep, err := Analyze(lft, order.Random(n, nil, 1), cps.RecursiveDoubling(n))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxHSD() < 2 {
		t.Errorf("random-order recursive doubling max HSD = %d, want >= 2", rep.MaxHSD())
	}
}

func TestFigure1ShiftBy4(t *testing.T) {
	// Figure 1: 16 hosts, destination = (source+4) mod 16. With the
	// routing-aware order every link carries one flow; with a random
	// order hot spots appear (the figure shows 3).
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	lft := route.DModK(tp)
	seq := shiftBy4{16}
	good, err := Analyze(lft, order.Topology(16, nil), seq)
	if err != nil {
		t.Fatal(err)
	}
	if !good.ContentionFree() {
		t.Errorf("ordered shift-by-4 max HSD = %d, want 1", good.MaxHSD())
	}
	hot := 0
	for seed := int64(0); seed < 10; seed++ {
		bad, err := Analyze(lft, order.Random(16, nil, seed), seq)
		if err != nil {
			t.Fatal(err)
		}
		if bad.MaxHSD() > 1 {
			hot++
		}
	}
	if hot < 5 {
		t.Errorf("only %d of 10 random orders caused hot spots", hot)
	}
}

// shiftBy4 is the single-stage Figure 1 pattern.
type shiftBy4 struct{ n int }

func (s shiftBy4) Name() string        { return "shift+4" }
func (s shiftBy4) Size() int           { return s.n }
func (s shiftBy4) NumStages() int      { return 1 }
func (s shiftBy4) Bidirectional() bool { return false }
func (s shiftBy4) Stage(int) cps.Stage {
	st := make(cps.Stage, s.n)
	for i := 0; i < s.n; i++ {
		st[i] = cps.Pair{Src: int32(i), Dst: int32((i + 4) % s.n)}
	}
	return st
}

func TestAdversarialRingOversubscription(t *testing.T) {
	// Section II: the adversarial order drives one leaf up-port to
	// carry ~K flows (oversubscription 18 on the 1944-node cluster; we
	// verify the K-fold shape on the smaller 324 cluster).
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	o, err := order.Adversarial(tp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(lft, o, cps.Ring(tp.NumHosts()))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.MaxHSD(); got < 16 || got > 19 {
		t.Errorf("adversarial ring max HSD = %d, want ~K=18", got)
	}
}

func TestPartialShiftContentionFree(t *testing.T) {
	// Table 3 partial cases: random exclusions with rank-compacted
	// D-Mod-K and topology ordering. Every-other-host and contiguous
	// removals must stay contention free; fully random removals are
	// exercised in the Table 3 experiment itself.
	tp := topo.MustBuild(topo.Cluster324)
	n := tp.NumHosts()
	// Remove one full leaf (hosts 36..53).
	var active []int
	for j := 0; j < n; j++ {
		if j >= 36 && j < 54 {
			continue
		}
		active = append(active, j)
	}
	lft, err := route.DModKActive(tp, active)
	if err != nil {
		t.Fatal(err)
	}
	o := order.Topology(n, active)
	rep, err := Analyze(lft, o, cps.Shift(len(active)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ContentionFree() {
		t.Errorf("leaf-removed shift max HSD = %d, want 1", rep.MaxHSD())
	}
}

func TestSyncEffectiveBandwidth(t *testing.T) {
	rep := &Report{Stages: []StageResult{
		{MaxHSD: 1, Flows: 10},
		{MaxHSD: 3, Flows: 10},
		{MaxHSD: 0, Flows: 0}, // skipped
	}}
	if got, want := rep.SyncEffectiveBandwidth(), 2.0/4.0; got != want {
		t.Errorf("SyncEffectiveBandwidth = %v, want %v", got, want)
	}
	empty := &Report{}
	if got := empty.SyncEffectiveBandwidth(); got != 1 {
		t.Errorf("empty report bandwidth = %v, want 1", got)
	}
}

func TestReportAggregates(t *testing.T) {
	rep := &Report{Stages: []StageResult{
		{MaxHSD: 1, Flows: 4},
		{MaxHSD: 5, Flows: 4},
		{MaxHSD: 2, Flows: 4},
	}}
	if rep.MaxHSD() != 5 {
		t.Errorf("MaxHSD = %d, want 5", rep.MaxHSD())
	}
	if got, want := rep.AvgMaxHSD(), (1+5+2)/3.0; got != want {
		t.Errorf("AvgMaxHSD = %v, want %v", got, want)
	}
	if rep.ContentionFree() {
		t.Error("contended report claims freedom")
	}
}

func TestSweepOrderings(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	var orders []*order.Ordering
	for seed := int64(0); seed < 5; seed++ {
		orders = append(orders, order.Random(n, nil, seed))
	}
	sw, err := SweepOrderings(lft, orders, cps.Ring(n))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Samples != 5 {
		t.Errorf("samples = %d, want 5", sw.Samples)
	}
	if sw.Min > sw.Mean || sw.Mean > sw.Max {
		t.Errorf("inconsistent sweep: min=%v mean=%v max=%v", sw.Min, sw.Mean, sw.Max)
	}
	if sw.Mean <= 1.0 {
		t.Errorf("random ring mean HSD = %v, expected > 1", sw.Mean)
	}
	empty, err := SweepOrderings(lft, nil, cps.Ring(n))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Samples != 0 || empty.Mean != 0 {
		t.Errorf("empty sweep = %+v", empty)
	}
}

func TestAnalyzeSizeMismatch(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	if _, err := Analyze(lft, order.Topology(128, nil), cps.Ring(64)); err == nil {
		t.Error("sequence/ordering size mismatch accepted")
	}
	if _, err := Analyze(lft, order.Topology(64, nil), cps.Ring(64)); err == nil {
		t.Error("ordering/topology host-count mismatch accepted")
	}
}

func TestAnalyzeHostPairsSelfFlowsSkipped(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	rep, err := AnalyzeHostPairs(lft, "self", [][][2]int{{{3, 3}, {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].MaxHSD != 1 {
		t.Errorf("max HSD = %d, want 1", rep.Stages[0].MaxHSD)
	}
}

func TestLinkLoadsExposeCounters(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	a := NewAnalyzer(lft)
	if _, err := a.Stage([][2]int{{0, 127}}); err != nil {
		t.Fatal(err)
	}
	up, down := a.LinkLoads(nil, nil)
	ups, downs := 0, 0
	for _, v := range up {
		ups += int(v)
	}
	for _, v := range down {
		downs += int(v)
	}
	// One flow across a 2-level tree: 2 up hops, 2 down hops.
	if ups != 2 || downs != 2 {
		t.Errorf("hops = %d up / %d down, want 2/2", ups, downs)
	}
}

func TestSModKEquallyContentionFreeForShift(t *testing.T) {
	// The source-based mirror of D-Mod-K is just as contention free for
	// permutation traffic — the paper prefers D-Mod-K because only a
	// destination-based rule fits InfiniBand forwarding tables.
	for _, g := range theoremTopos {
		tp := topo.MustBuild(g)
		rt := route.NewSModK(tp)
		o := order.Topology(tp.NumHosts(), nil)
		rep, err := Analyze(rt, o, cps.Shift(tp.NumHosts()))
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !rep.ContentionFree() {
			t.Errorf("%v: s-mod-k shift max HSD = %d, want 1", g, rep.MaxHSD())
		}
	}
}

func TestLevelLoads(t *testing.T) {
	// Two flows sharing a leaf up-port on the Figure 1 tree: the hot
	// spot must show at level 1 (leaf-to-spine), not at the host links.
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	lft := route.DModK(tp)
	a := NewAnalyzer(lft)
	if _, err := a.Stage([][2]int{{0, 4}, {1, 8}}); err != nil {
		t.Fatal(err)
	}
	up, down := a.LevelLoads()
	if up[0] != 1 {
		t.Errorf("host-link level max = %d, want 1", up[0])
	}
	if up[1] != 2 {
		t.Errorf("fabric level max = %d, want 2 (the shared up-port)", up[1])
	}
	if down[0] != 1 || down[1] != 1 {
		t.Errorf("down levels = %v/%v, want 1/1", down[0], down[1])
	}
}
