package hsd

import (
	"fmt"
	"runtime"
	"sync"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
)

// AnalyzeParallel is Analyze with the stages fanned out over a worker
// pool — stages are independent, so the per-link counting parallelizes
// embarrassingly. Each worker owns its counter arrays; results land in a
// pre-sized slice, so no ordering coordination is needed. workers <= 0
// uses GOMAXPROCS. The router must be safe for concurrent Walk calls
// (LFTs and S-Mod-K are; the adaptive router serializes internally).
func AnalyzeParallel(rt route.Router, o *order.Ordering, seq cps.Sequence, workers int) (*Report, error) {
	if o.Size() != seq.Size() {
		return nil, fmt.Errorf("hsd: ordering size %d != sequence size %d", o.Size(), seq.Size())
	}
	if o.NumHosts() != rt.Topology().NumHosts() {
		return nil, fmt.Errorf("hsd: ordering hosts %d != topology hosts %d", o.NumHosts(), rt.Topology().NumHosts())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nStages := seq.NumStages()
	if workers > nStages {
		workers = nStages
	}
	rep := &Report{
		Sequence: seq.Name(),
		Ordering: o.Label,
		Routing:  rt.Label(),
		Stages:   make([]StageResult, nStages),
	}
	if nStages == 0 {
		return rep, nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int, nStages)
	)
	for s := 0; s < nStages; s++ {
		next <- s
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := NewAnalyzer(rt)
			var pairs [][2]int
			for s := range next {
				stage := seq.Stage(s)
				pairs = pairs[:0]
				for _, p := range stage {
					pairs = append(pairs, [2]int{o.HostOf[p.Src], o.HostOf[p.Dst]})
				}
				sr, err := a.Stage(pairs)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				rep.Stages[s] = sr
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

// SweepOrderingsParallel fans the per-ordering analyses of a sweep over
// a worker pool (orderings are independent too). workers <= 0 uses
// GOMAXPROCS.
func SweepOrderingsParallel(rt route.Router, orders []*order.Ordering, seq cps.Sequence, workers int) (Sweep, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(orders) {
		workers = len(orders)
	}
	if len(orders) == 0 {
		return Sweep{}, nil
	}
	vals := make([]float64, len(orders))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int, len(orders))
	)
	for i := range orders {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rep, err := Analyze(rt, orders[i], seq)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				vals[i] = rep.AvgMaxHSD()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Sweep{}, firstErr
	}
	sw := Sweep{Min: vals[0], Max: vals[0], Samples: len(vals)}
	for _, v := range vals {
		sw.Mean += v
		if v < sw.Min {
			sw.Min = v
		}
		if v > sw.Max {
			sw.Max = v
		}
	}
	sw.Mean /= float64(len(vals))
	return sw, nil
}
