package hsd

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// TestCompiledAnalyzerEquivalence asserts the compiled fast path produces
// bit-identical StageResults to the Walk-based analyzer across every
// routing x collective combination on small PGFTs, under both the
// topology and a random ordering.
func TestCompiledAnalyzerEquivalence(t *testing.T) {
	topos := []topo.PGFT{
		topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}),
		topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}),
	}
	seqs := func(n int) []cps.Sequence {
		return []cps.Sequence{
			cps.Shift(n),
			cps.Ring(n),
			cps.Binomial(n),
			cps.RecursiveDoubling(n),
			cps.Dissemination(n),
			cps.Tournament(n),
		}
	}
	for _, g := range topos {
		tp := topo.MustBuild(g)
		n := tp.NumHosts()
		half := make([]int, 0, n/2)
		for h := 0; h < n; h += 2 {
			half = append(half, h)
		}
		partial, err := route.DModKActive(tp, half)
		if err != nil {
			t.Fatal(err)
		}
		routers := []route.Router{
			route.DModK(tp),
			route.DModKNaive(tp),
			route.MinHopRandom(tp, 42),
			route.NewSModK(tp),
			partial,
		}
		for _, rt := range routers {
			c, err := route.Compile(rt)
			if err != nil {
				t.Fatalf("%v %s: %v", g, rt.Label(), err)
			}
			job := n
			var active []int
			if rt == route.Router(partial) {
				job, active = len(half), half
			}
			orders := []*order.Ordering{
				order.Topology(n, active),
				order.Random(n, active, 7),
			}
			for _, seq := range seqs(job) {
				for oi, o := range orders {
					want, err := Analyze(rt, o, seq)
					if err != nil {
						t.Fatalf("%v %s %s: %v", g, rt.Label(), seq.Name(), err)
					}
					got, err := Analyze(c, o, seq)
					if err != nil {
						t.Fatalf("%v %s %s compiled: %v", g, rt.Label(), seq.Name(), err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("%v %s %s order %d: compiled report diverges\nwalk:     %+v\ncompiled: %+v",
							g, rt.Label(), seq.Name(), oi, want.Stages, got.Stages)
					}
					par, err := AnalyzeParallel(c, o, seq, 3)
					if err != nil {
						t.Fatalf("%v %s %s parallel: %v", g, rt.Label(), seq.Name(), err)
					}
					if !reflect.DeepEqual(want, par) {
						t.Errorf("%v %s %s order %d: parallel compiled report diverges",
							g, rt.Label(), seq.Name(), oi)
					}
				}
			}
		}
	}
}

// TestCompiledConcurrentHammer shares one compiled router between many
// goroutines, each driving its own analyses and sweeps. Run under
// -race (make race / CI) this proves the arena is safe for concurrent
// readers.
func TestCompiledConcurrentHammer(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	n := tp.NumHosts()
	c, err := route.Compile(route.DModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	seq := cps.Shift(n)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := order.Random(n, nil, int64(i))
			rep, err := Analyze(c, o, seq)
			if err != nil {
				errs <- err
				return
			}
			if rep.MaxHSD() < 1 {
				errs <- fmt.Errorf("goroutine %d: empty report", i)
				return
			}
			sw, err := SweepOrderingsParallel(c, []*order.Ordering{o, order.Topology(n, nil)}, cps.Ring(n), 2)
			if err != nil {
				errs <- err
				return
			}
			if sw.Min < 1 {
				errs <- fmt.Errorf("goroutine %d: empty sweep", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
