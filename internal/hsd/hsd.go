// Package hsd implements the paper's analytic contention model: given a
// topology, a routing, an MPI node ordering and a collective permutation
// sequence, it counts the flows crossing every directed link in every
// stage. The per-link flow count is the Hot Spot Degree (HSD); a maximal
// HSD of 1 across all stages means the traffic is contention free and the
// network delivers full bandwidth and cut-through latency. This is the
// role the ibdm-based tool plays in Sections II and VII.
package hsd

import (
	"fmt"
	"math"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// StageResult is the contention summary of one stage.
type StageResult struct {
	// MaxHSD is the highest flow count on any directed link.
	MaxHSD int
	// Flows is the number of flows in the stage.
	Flows int
	// HotLinks is the number of directed links with more than one flow.
	HotLinks int
	// MaxUpHSD and MaxDownHSD split the maximum by direction.
	MaxUpHSD, MaxDownHSD int
}

// Report aggregates a whole sequence.
type Report struct {
	Sequence string
	Ordering string
	Routing  string
	Stages   []StageResult
}

// MaxHSD returns the worst per-link flow count over all stages.
func (r *Report) MaxHSD() int {
	m := 0
	for _, s := range r.Stages {
		if s.MaxHSD > m {
			m = s.MaxHSD
		}
	}
	return m
}

// AvgMaxHSD returns the mean over stages of the per-stage maximum — the
// quantity plotted in Figure 3 and tabulated in Table 3. Stages with no
// flows are skipped.
func (r *Report) AvgMaxHSD() float64 {
	sum, n := 0.0, 0
	for _, s := range r.Stages {
		if s.Flows == 0 {
			continue
		}
		sum += float64(s.MaxHSD)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ContentionFree reports whether every stage has HSD <= 1.
func (r *Report) ContentionFree() bool { return r.MaxHSD() <= 1 }

// SyncEffectiveBandwidth models fully synchronized stage progression: a
// stage completes when its most contended link drains, so it lasts
// MaxHSD time units instead of 1. The return value is the normalized
// effective bandwidth, total stage work over total time (1.0 means
// contention free).
func (r *Report) SyncEffectiveBandwidth() float64 {
	work, time := 0.0, 0.0
	for _, s := range r.Stages {
		if s.Flows == 0 {
			continue
		}
		work++
		time += float64(s.MaxHSD)
	}
	if time == 0 {
		return 1
	}
	return work / time
}

// Analyzer counts flows per directed link. It is reusable across stages
// and sequences to avoid re-allocating counters.
type Analyzer struct {
	rt route.Router
	pp route.PackedPather // non-nil when rt exposes compiled paths
	// cnt holds the per-directed-link flow counters interleaved as
	// cnt[link<<1|1] (up) and cnt[link<<1] (down) — the same encoding as
	// route.PathEntry, so the compiled fast path increments cnt[entry]
	// directly, branch free.
	cnt []int32
	// memb, when tracking is on, records per directed-link slot which
	// pair indexes of the current Stage crossed it — the flow-level
	// evidence behind contention blame reports. Same indexing as cnt.
	track bool
	memb  [][]int32
}

// NewAnalyzer creates an analyzer bound to a forwarding table set. When
// the router is a compiled path cache (route.PackedPather), Stage skips
// the per-hop Walk callback and iterates the packed path slices directly
// — the order-of-magnitude lever behind the parallel ordering sweeps.
func NewAnalyzer(rt route.Router) *Analyzer {
	nl := len(rt.Topology().Links)
	a := &Analyzer{rt: rt, cnt: make([]int32, 2*nl)}
	if pp, ok := rt.(route.PackedPather); ok {
		a.pp = pp
	}
	return a
}

// SetTrackFlows toggles flow-membership recording: with tracking on,
// every Stage call also remembers which pairs crossed each directed
// link, retrievable via StageFlows. Tracking costs one slice append per
// hop per flow, so it stays off for bulk sweeps and on for forensics.
func (a *Analyzer) SetTrackFlows(on bool) {
	a.track = on
	if on && a.memb == nil {
		a.memb = make([][]int32, len(a.cnt))
	}
}

// StageFlows returns the indexes into the last Stage call's pairs slice
// of the flows that crossed link l in the given direction. It returns
// nil when tracking is off; with tracking on the slice length always
// equals the link's flow counter. The returned slice is reused by the
// next Stage call — copy it to keep it.
func (a *Analyzer) StageFlows(l topo.LinkID, up bool) []int32 {
	if !a.track {
		return nil
	}
	i := int(l) << 1
	if up {
		i |= 1
	}
	return a.memb[i]
}

// Stage counts one stage of host-index flows: pairs are (source end-port,
// destination end-port). It returns the stage summary.
func (a *Analyzer) Stage(pairs [][2]int) (StageResult, error) {
	clear(a.cnt)
	if a.track {
		for i := range a.memb {
			a.memb[i] = a.memb[i][:0]
		}
		return a.stageTracked(pairs)
	}
	res := StageResult{Flows: len(pairs)}
	if a.pp != nil {
		cnt := a.cnt
		for _, p := range pairs {
			if p[0] == p[1] {
				continue
			}
			path, err := a.pp.PackedPath(p[0], p[1])
			if err != nil {
				return res, err
			}
			for _, e := range path {
				cnt[e]++
			}
		}
		return a.summarize(res), nil
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			continue
		}
		err := a.rt.Walk(p[0], p[1], func(l topo.LinkID, up bool) {
			i := int(l) << 1
			if up {
				i |= 1
			}
			a.cnt[i]++
		})
		if err != nil {
			return res, err
		}
	}
	return a.summarize(res), nil
}

// stageTracked is the Stage loop with flow-membership recording, split
// out so the bulk path above stays append free.
func (a *Analyzer) stageTracked(pairs [][2]int) (StageResult, error) {
	res := StageResult{Flows: len(pairs)}
	for i, p := range pairs {
		if p[0] == p[1] {
			continue
		}
		idx := int32(i)
		if a.pp != nil {
			path, err := a.pp.PackedPath(p[0], p[1])
			if err != nil {
				return res, err
			}
			for _, e := range path {
				a.cnt[e]++
				a.memb[e] = append(a.memb[e], idx)
			}
			continue
		}
		err := a.rt.Walk(p[0], p[1], func(l topo.LinkID, up bool) {
			e := int(l) << 1
			if up {
				e |= 1
			}
			a.cnt[e]++
			a.memb[e] = append(a.memb[e], idx)
		})
		if err != nil {
			return res, err
		}
	}
	return a.summarize(res), nil
}

// summarize folds the per-link counters into the stage summary.
func (a *Analyzer) summarize(res StageResult) StageResult {
	for i := 0; i < len(a.cnt); i += 2 {
		u, d := int(a.cnt[i|1]), int(a.cnt[i])
		if u > res.MaxUpHSD {
			res.MaxUpHSD = u
		}
		if d > res.MaxDownHSD {
			res.MaxDownHSD = d
		}
		if u > 1 {
			res.HotLinks++
		}
		if d > 1 {
			res.HotLinks++
		}
	}
	res.MaxHSD = res.MaxUpHSD
	if res.MaxDownHSD > res.MaxHSD {
		res.MaxHSD = res.MaxDownHSD
	}
	return res
}

// LinkLoads returns copies of the current per-link flow counters (after
// the last Stage call), for histogram-style reporting. Caller-provided
// buffers with sufficient capacity are reused instead of allocating, so
// a reporting loop over many stages can run allocation free; pass nil to
// allocate fresh slices.
func (a *Analyzer) LinkLoads(upBuf, downBuf []int32) (up, down []int32) {
	nl := len(a.cnt) / 2
	up = ensureLen(upBuf, nl)
	down = ensureLen(downBuf, nl)
	for i := 0; i < nl; i++ {
		up[i] = a.cnt[i<<1|1]
		down[i] = a.cnt[i<<1]
	}
	return up, down
}

func ensureLen(b []int32, n int) []int32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int32, n)
}

// Analyze runs a full sequence through the analyzer: CPS ranks are
// translated to end-ports via the ordering.
func Analyze(rt route.Router, o *order.Ordering, seq cps.Sequence) (*Report, error) {
	if o.Size() != seq.Size() {
		return nil, fmt.Errorf("hsd: ordering size %d != sequence size %d", o.Size(), seq.Size())
	}
	if o.NumHosts() != rt.Topology().NumHosts() {
		return nil, fmt.Errorf("hsd: ordering hosts %d != topology hosts %d", o.NumHosts(), rt.Topology().NumHosts())
	}
	a := NewAnalyzer(rt)
	rep := &Report{Sequence: seq.Name(), Ordering: o.Label, Routing: rt.Label()}
	var pairs [][2]int
	for s := 0; s < seq.NumStages(); s++ {
		stage := seq.Stage(s)
		pairs = pairs[:0]
		for _, p := range stage {
			pairs = append(pairs, [2]int{o.HostOf[p.Src], o.HostOf[p.Dst]})
		}
		sr, err := a.Stage(pairs)
		if err != nil {
			return nil, err
		}
		rep.Stages = append(rep.Stages, sr)
	}
	return rep, nil
}

// AnalyzeHostPairs runs explicit end-port stages (no rank translation),
// used for raw traffic patterns like the adversarial Ring.
func AnalyzeHostPairs(rt route.Router, name string, stages [][][2]int) (*Report, error) {
	a := NewAnalyzer(rt)
	rep := &Report{Sequence: name, Ordering: "explicit", Routing: rt.Label()}
	for _, st := range stages {
		sr, err := a.Stage(st)
		if err != nil {
			return nil, err
		}
		rep.Stages = append(rep.Stages, sr)
	}
	return rep, nil
}

// Sweep summarizes AvgMaxHSD over several orderings (the paper's 25
// random seeds): mean, min and max of the per-ordering averages.
type Sweep struct {
	Mean, Min, Max float64
	Samples        int
}

// SweepOrderings analyzes the sequence under each ordering and aggregates
// the per-ordering AvgMaxHSD values.
func SweepOrderings(rt route.Router, orders []*order.Ordering, seq cps.Sequence) (Sweep, error) {
	sw := Sweep{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, o := range orders {
		rep, err := Analyze(rt, o, seq)
		if err != nil {
			return Sweep{}, err
		}
		v := rep.AvgMaxHSD()
		sw.Mean += v
		if v < sw.Min {
			sw.Min = v
		}
		if v > sw.Max {
			sw.Max = v
		}
		sw.Samples++
	}
	if sw.Samples > 0 {
		sw.Mean /= float64(sw.Samples)
	} else {
		sw.Min, sw.Max = 0, 0
	}
	return sw, nil
}

// LevelLoads summarizes the current per-link counters (after the last
// Stage call) by tree level: index l holds the maximum flow count over
// links joining levels l and l+1 (index 0 = host links), split by
// direction.
func (a *Analyzer) LevelLoads() (up, down []int) {
	t := a.rt.Topology()
	up = make([]int, t.Spec.H)
	down = make([]int, t.Spec.H)
	for i := range t.Links {
		lvl := t.Links[i].Level - 1
		if u := int(a.cnt[i<<1|1]); u > up[lvl] {
			up[lvl] = u
		}
		if d := int(a.cnt[i<<1]); d > down[lvl] {
			down[lvl] = d
		}
	}
	return up, down
}
