package hsd

import (
	"math/rand"
	"testing"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// enumerateRLFTs machine-generates valid 2- and 3-level RLFT specs from
// the constructor constraints, keeping host counts small enough for
// exhaustive per-stage analysis.
func enumerateRLFTs(maxHosts int) []topo.PGFT {
	var out []topo.PGFT
	for _, k := range []int{2, 3, 4, 6, 8, 9, 12} {
		for leaves := 1; leaves <= 2*k; leaves++ {
			g, err := topo.RLFT2(k, leaves)
			if err != nil {
				continue
			}
			if g.NumHosts() <= maxHosts {
				out = append(out, g)
			}
		}
		for groups := 1; groups <= 2*k; groups++ {
			g, err := topo.RLFT3(k, groups)
			if err != nil {
				continue
			}
			if g.NumHosts() <= maxHosts {
				out = append(out, g)
			}
		}
	}
	return out
}

// TestTheoremsAcrossGeneratedRLFTs is the end-to-end sweep: for every
// machine-generated RLFT, the full pipeline (build -> D-Mod-K ->
// topology order -> Shift and topo-aware recursive doubling) must be
// contention free; and with granule-multiple random removals the
// rank-compacted variant must be too.
func TestTheoremsAcrossGeneratedRLFTs(t *testing.T) {
	specs := enumerateRLFTs(300)
	if len(specs) < 10 {
		t.Fatalf("generator produced only %d specs", len(specs))
	}
	rng := rand.New(rand.NewSource(99))
	for _, g := range specs {
		tp, err := topo.Build(g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		n := tp.NumHosts()
		lft := route.DModK(tp)
		o := order.Topology(n, nil)

		rep, err := Analyze(lft, o, cps.Shift(n))
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !rep.ContentionFree() {
			t.Errorf("%v: full shift max HSD = %d", g, rep.MaxHSD())
		}

		ta, err := cps.TopoAwareRecursiveDoubling(g.M)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		taRep, err := Analyze(lft, o, ta)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !taRep.ContentionFree() {
			t.Errorf("%v: topo-aware RD max HSD = %d", g, taRep.MaxHSD())
		}

		// Partial: drop one granule's worth of random hosts (when the
		// tree is big enough to leave at least 2 hosts running).
		gran := g.AllocationGranule()
		if n-gran < 2 {
			continue
		}
		perm := rng.Perm(n)
		active := append([]int(nil), perm[gran:]...)
		plft, err := route.DModKActive(tp, active)
		if err != nil {
			t.Fatalf("%v partial tables: %v", g, err)
		}
		po := order.Topology(n, active)
		pRep, err := Analyze(plft, po, cps.Shift(len(active)))
		if err != nil {
			t.Fatalf("%v partial: %v", g, err)
		}
		if !pRep.ContentionFree() {
			t.Errorf("%v: partial shift (drop %d) max HSD = %d", g, gran, pRep.MaxHSD())
		}
	}
	t.Logf("verified %d generated RLFTs end to end", len(specs))
}
