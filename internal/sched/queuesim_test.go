package sched

import (
	"testing"

	"fattree/internal/des"
	"fattree/internal/topo"
)

func queueCfg(pad bool) QueueConfig {
	return QueueConfig{
		Seed:             3,
		Jobs:             200,
		MeanInterarrival: 10 * des.Millisecond,
		MeanDuration:     60 * des.Millisecond,
		MaxGranules:      4,
		AlignedFraction:  0.3,
		PadToGranule:     pad,
	}
}

func TestSimulateQueueCompletesAll(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	st, err := SimulateQueue(tp, queueCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 200 {
		t.Fatalf("completed %d of 200", st.Completed)
	}
	if st.AvgUtilization <= 0 || st.AvgUtilization > 1 {
		t.Errorf("utilization = %v", st.AvgUtilization)
	}
	if st.Makespan <= 0 {
		t.Errorf("makespan = %v", st.Makespan)
	}
	if st.MeanWait < 0 {
		t.Errorf("mean wait = %v", st.MeanWait)
	}
}

func TestSimulateQueuePaddingTradeoff(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	raw, err := SimulateQueue(tp, queueCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	padded, err := SimulateQueue(tp, queueCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	// Padding makes every job a granule multiple; all contiguous
	// placements then carry the solo guarantee. Scattered fallbacks
	// under fragmentation may still lose it, but the fraction must
	// beat raw admission decisively.
	if padded.CFFraction() < raw.CFFraction() {
		t.Errorf("padded CF fraction %v below raw %v", padded.CFFraction(), raw.CFFraction())
	}
	// Fragmentation under ~80% offered load forces some scattered
	// placements even for padded sizes — the measured gap that
	// motivates the WaitForAligned policy.
	if padded.CFFraction() < 0.6 {
		t.Errorf("padded CF fraction = %v, want >= 0.6", padded.CFFraction())
	}
	t.Logf("CF fraction: raw %.3f, padded %.3f", raw.CFFraction(), padded.CFFraction())
	// Raw admission leaves ragged jobs without the guarantee.
	if raw.CFFraction() >= 0.99 {
		t.Errorf("raw CF fraction = %v, expected below 1", raw.CFFraction())
	}
	if raw.CFFraction() <= 0.1 {
		t.Errorf("raw CF fraction = %v, suspiciously low", raw.CFFraction())
	}
}

func TestSimulateQueueWaitForAligned(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	cfg := queueCfg(true)
	cfg.WaitForAligned = true
	st, err := SimulateQueue(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != cfg.Jobs {
		t.Fatalf("completed %d of %d", st.Completed, cfg.Jobs)
	}
	// Aligned-only admission of padded sizes: every job isolated.
	if st.Isolated != st.Completed {
		t.Errorf("isolated %d of %d", st.Isolated, st.Completed)
	}
	if st.CFFraction() != 1.0 {
		t.Errorf("CF fraction = %v, want 1.0", st.CFFraction())
	}
	// The price is waiting: mean wait at least that of the permissive
	// policy.
	loose, err := SimulateQueue(tp, queueCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanWait < loose.MeanWait {
		t.Errorf("aligned-only wait %v below permissive %v", st.MeanWait, loose.MeanWait)
	}
}

func TestSimulateQueueDeterministic(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	cfg := queueCfg(false)
	cfg.MaxGranules = 8
	a, err := SimulateQueue(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateQueue(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSimulateQueueValidation(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	bad := []QueueConfig{
		{},
		{Jobs: 1, MeanInterarrival: 1, MeanDuration: 1, MaxGranules: 1000},
		{Jobs: 0, MeanInterarrival: 1, MeanDuration: 1, MaxGranules: 1},
		{Jobs: 1, MeanInterarrival: 0, MeanDuration: 1, MaxGranules: 1},
	}
	for i, cfg := range bad {
		if _, err := SimulateQueue(tp, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
