package sched

import (
	"testing"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func newAlloc(t *testing.T, g topo.PGFT) *Allocator {
	t.Helper()
	a, err := New(topo.MustBuild(g))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRequiresRLFT(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 4}, []int{1, 1}))
	if _, err := New(tp); err == nil {
		t.Error("non-RLFT accepted")
	}
}

func TestGranuleIsSecondFromTopSubtreeSize(t *testing.T) {
	// On RLFTs the allocation granule equals the size of a level-(h-1)
	// sub-tree — the paper's "multiplications of 324" unit.
	for _, g := range []topo.PGFT{topo.Cluster128, topo.Cluster324, topo.Cluster1728, topo.Cluster1944} {
		a := newAlloc(t, g)
		if want := g.MProd(g.H - 1); a.Granule() != want {
			t.Errorf("%v: granule %d != level-(h-1) subtree size %d", g, a.Granule(), want)
		}
	}
}

func TestAllocLifecycle(t *testing.T) {
	a := newAlloc(t, topo.Cluster324)
	if a.FreeHosts() != 324 || a.Utilization() != 0 {
		t.Fatalf("fresh allocator: free=%d util=%v", a.FreeHosts(), a.Utilization())
	}
	j1, err := a.Alloc(162) // 9 granules
	if err != nil {
		t.Fatal(err)
	}
	if !j1.ContentionFree {
		t.Error("aligned granule-multiple job not marked contention free")
	}
	if j1.Hosts[0] != 0 || j1.Hosts[161] != 161 {
		t.Errorf("first job spans [%d,%d], want [0,161]", j1.Hosts[0], j1.Hosts[161])
	}
	j2, err := a.Alloc(162)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Hosts[0] != 162 {
		t.Errorf("second job starts at %d, want 162", j2.Hosts[0])
	}
	if a.FreeHosts() != 0 || a.Utilization() != 1 {
		t.Errorf("full machine: free=%d util=%v", a.FreeHosts(), a.Utilization())
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("over-allocation accepted")
	}
	if err := a.Free(j1.ID); err != nil {
		t.Fatal(err)
	}
	if a.FreeHosts() != 162 {
		t.Errorf("after free: %d hosts free", a.FreeHosts())
	}
	if err := a.Free(j1.ID); err == nil {
		t.Error("double free accepted")
	}
	if got := len(a.Jobs()); got != 1 {
		t.Errorf("live jobs = %d, want 1", got)
	}
}

func TestAllocNonGranuleMarksNotCF(t *testing.T) {
	a := newAlloc(t, topo.Cluster324)
	j, err := a.Alloc(100) // not a multiple of 18
	if err != nil {
		t.Fatal(err)
	}
	if j.ContentionFree {
		t.Error("non-granule job marked contention free")
	}
}

func TestAllocFragmentedFallsBack(t *testing.T) {
	a := newAlloc(t, topo.Cluster128) // granule 8
	// Fragment the machine: fill, free alternating granules.
	var jobs []*Allocation
	for i := 0; i < 16; i++ {
		j, err := a.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i := 0; i < 16; i += 2 {
		if err := a.Free(jobs[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	// 64 hosts free, but max contiguous run is 8: a 16-host job must
	// scatter and be marked not contention free.
	j, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if j.ContentionFree {
		t.Error("scattered job marked contention free")
	}
	if len(j.Hosts) != 16 {
		t.Errorf("scatter size = %d", len(j.Hosts))
	}
	// An 8-host job still fits contiguously and aligned.
	j8, err := a.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if !j8.ContentionFree {
		t.Error("aligned 8-host job not contention free")
	}
}

func TestAllocErrors(t *testing.T) {
	a := newAlloc(t, topo.Cluster128)
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero-size job accepted")
	}
	if _, err := a.Alloc(1000); err == nil {
		t.Error("oversized job accepted")
	}
	if err := a.Free(99); err == nil {
		t.Error("freeing unknown job succeeded")
	}
}

func TestIsolationLevel(t *testing.T) {
	a := newAlloc(t, topo.Cluster1944) // granule 324 = level-2 subtree
	j1, err := a.Alloc(324)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := a.Alloc(324)
	if err != nil {
		t.Fatal(err)
	}
	// Two whole level-2 sub-trees: they share only the top level (3).
	lvl, err := a.IsolationLevel(j1.ID, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 3 {
		t.Errorf("aligned jobs isolation = %d, want 3 (meet at the top only)", lvl)
	}
	if _, err := a.IsolationLevel(j1.ID, 99); err == nil {
		t.Error("unknown job accepted")
	}
	// Force a leaf-sharing pair on the small cluster: fill an aligned
	// prefix, then two 4-host jobs — the second has no aligned slot and
	// must split leaf 15 with the first.
	b := newAlloc(t, topo.Cluster128)
	if _, err := b.Alloc(120); err != nil {
		t.Fatal(err)
	}
	ja, err := b.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if ja.Hosts[0] != 120 || jb.Hosts[0] != 124 {
		t.Fatalf("placement = %d/%d, want 120/124", ja.Hosts[0], jb.Hosts[0])
	}
	lvl, err = b.IsolationLevel(ja.ID, jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 1 {
		t.Errorf("leaf-splitting jobs isolation = %d, want 1", lvl)
	}
}

func TestTwoAlignedJobsRunContentionFreeTogether(t *testing.T) {
	// The multi-job claim the scheduler is built on: two granule-aligned
	// jobs on the global (uncompacted) D-Mod-K tables can both run full
	// Shift collectives simultaneously with combined HSD = 1.
	tp := topo.MustBuild(topo.Cluster324)
	a, err := New(tp)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := a.Alloc(162)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := a.Alloc(162)
	if err != nil {
		t.Fatal(err)
	}
	if !j1.ContentionFree || !j2.ContentionFree {
		t.Fatal("expected both jobs contention free")
	}
	lft := route.DModK(tp)
	shiftA := cps.Shift(len(j1.Hosts))
	shiftB := cps.Shift(len(j2.Hosts))
	var stages [][][2]int
	for s := 0; s < shiftA.NumStages(); s++ {
		var pairs [][2]int
		for _, p := range shiftA.Stage(s) {
			pairs = append(pairs, [2]int{j1.Hosts[p.Src], j1.Hosts[p.Dst]})
		}
		for _, p := range shiftB.Stage(s) {
			pairs = append(pairs, [2]int{j2.Hosts[p.Src], j2.Hosts[p.Dst]})
		}
		stages = append(stages, pairs)
	}
	rep, err := hsd.AnalyzeHostPairs(lft, "two-job shift", stages)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ContentionFree() {
		t.Errorf("two aligned jobs contend: max HSD = %d", rep.MaxHSD())
	}
}

func TestSlotPartitionedJobsAreAccidentallyFree(t *testing.T) {
	// A subtlety of D-Mod-K: jobs that split leaves but take the *same
	// slot range in every shared leaf* use disjoint up-port sets (the
	// up port is the destination slot), so they do not contend. The
	// scheduler does not rely on this, but the property is real.
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	var hostsA, hostsB []int
	for leaf := 0; leaf < 4; leaf++ {
		for i := 0; i < 9; i++ {
			hostsA = append(hostsA, leaf*18+i)
			hostsB = append(hostsB, leaf*18+9+i)
		}
	}
	if worst := twoJobWorstHSD(t, lft, hostsA, hostsB); worst != 1 {
		t.Errorf("slot-partitioned jobs max HSD = %d, want 1", worst)
	}
}

func TestLeafSharingUnequalJobsContend(t *testing.T) {
	// The counterpoint, and the reason the scheduler insists on
	// granule alignment: two jobs that are each contention free in
	// isolation (contiguous, granule-multiple sizes) but share a leaf
	// collide on that leaf's up-ports. Job A = hosts [0,36), job B =
	// hosts [27,45): both internally fine, but in any stage A's flows
	// from leaf 1 cover all 18 up-ports while B's add 9 more.
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	hostsA := mkRange(0, 36)
	hostsB := mkRange(27, 18)
	// Each alone is contention free.
	for _, hosts := range [][]int{hostsA, hostsB} {
		shift := cps.Shift(len(hosts))
		var stages [][][2]int
		for s := 0; s < shift.NumStages(); s++ {
			var pairs [][2]int
			for _, p := range shift.Stage(s) {
				pairs = append(pairs, [2]int{hosts[p.Src], hosts[p.Dst]})
			}
			stages = append(stages, pairs)
		}
		rep, err := hsd.AnalyzeHostPairs(lft, "solo", stages)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.ContentionFree() {
			t.Fatalf("solo job on %d..%d not contention free (HSD %d)", hosts[0], hosts[len(hosts)-1], rep.MaxHSD())
		}
	}
	// Together they contend.
	if worst := twoJobWorstHSD(t, lft, hostsA, hostsB); worst < 2 {
		t.Errorf("leaf-sharing jobs max HSD = %d, expected contention", worst)
	}
}

// twoJobWorstHSD runs both jobs' Shifts stage-aligned (the shorter job
// cycles through its stages) and returns the worst combined per-link HSD.
func twoJobWorstHSD(t *testing.T, lft *route.LFT, hostsA, hostsB []int) int {
	t.Helper()
	shiftA := cps.Shift(len(hostsA))
	shiftB := cps.Shift(len(hostsB))
	worst := 0
	for s := 0; s < shiftA.NumStages(); s++ {
		var pairs [][2]int
		for _, p := range shiftA.Stage(s) {
			pairs = append(pairs, [2]int{hostsA[p.Src], hostsA[p.Dst]})
		}
		for _, p := range shiftB.Stage(s % shiftB.NumStages()) {
			pairs = append(pairs, [2]int{hostsB[p.Src], hostsB[p.Dst]})
		}
		rep, err := hsd.AnalyzeHostPairs(lft, "two-job", [][][2]int{pairs})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MaxHSD() > worst {
			worst = rep.MaxHSD()
		}
	}
	return worst
}
