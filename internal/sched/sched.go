package sched

import (
	"fmt"
	"sort"

	"fattree/internal/topo"
)

// Allocator places MPI jobs onto a Real-Life Fat-Tree so that the
// paper's contention-free guarantee survives. The paper proves the
// guarantee for a single job spanning the whole machine and remarks that
// utility clusters run many jobs, pointing at sub-allocations "in
// multiplications of 324 nodes" on the maximal 3-level tree; this
// Allocator turns that remark into a scheduler.
//
// Two facts drive the policy (both verified by this repository's
// experiments):
//
//  1. Within a job routed by the global D-Mod-K tables, the Shift CPS is
//     contention free when the job occupies a contiguous block of
//     end-ports whose size is a multiple of the allocation granule
//     G = prod(w_i)*p_h (at any offset) — on an RLFT, G equals the size
//     of a level-(h-1) sub-tree (324 on the paper's 1944-node cluster).
//  2. Jobs in disjoint granule blocks never share a link: each block is
//     a set of whole level-(h-1) sub-trees, so all intra-job traffic
//     stays on that sub-tree's links plus its private slice of top
//     switch ports.
type Allocator struct {
	t       *topo.Topology
	granule int
	freeRun []bool // per host
	jobs    map[JobID]*Allocation
	nextID  JobID
}

// JobID names an allocation.
type JobID int

// Allocation is a placed job.
type Allocation struct {
	ID    JobID
	Hosts []int // ascending end-port indices
	// ContentionFree reports whether the job's own collectives keep
	// HSD = 1: a contiguous block whose size is a granule multiple
	// (any offset — the Shift wrap stays aligned regardless).
	ContentionFree bool
	// Isolated additionally guarantees the job never shares a granule
	// block (level-(h-1) sub-tree) with any other allocation: the
	// block starts on a granule boundary and covers whole granules,
	// so concurrent jobs cannot contend with it either.
	Isolated bool
}

// New builds an allocator for an RLFT topology.
func New(t *topo.Topology) (*Allocator, error) {
	if _, ok := t.Spec.IsRLFT(); !ok {
		return nil, fmt.Errorf("sched: allocator needs an RLFT, got %v", t.Spec)
	}
	return &Allocator{
		t:       t,
		granule: t.Spec.AllocationGranule(),
		freeRun: make([]bool, t.NumHosts()),
		jobs:    make(map[JobID]*Allocation),
	}, nil
}

// Granule returns the contention-free allocation unit.
func (a *Allocator) Granule() int { return a.granule }

// FreeHosts returns the number of unallocated end-ports.
func (a *Allocator) FreeHosts() int {
	n := 0
	for _, used := range a.freeRun {
		if !used {
			n++
		}
	}
	return n
}

// Utilization returns allocated fraction of the machine.
func (a *Allocator) Utilization() float64 {
	return 1 - float64(a.FreeHosts())/float64(len(a.freeRun))
}

// Alloc places a job of the given size. It prefers (in order): a
// granule-aligned contiguous block, any contiguous block, and finally a
// scatter of whatever is free. The Allocation records which guarantees
// the placement preserves (see Allocation).
func (a *Allocator) Alloc(size int) (*Allocation, error) {
	if size < 1 {
		return nil, fmt.Errorf("sched: job size %d", size)
	}
	if size > a.FreeHosts() {
		return nil, fmt.Errorf("sched: %d hosts requested, %d free", size, a.FreeHosts())
	}
	hosts := a.findAligned(size)
	aligned := hosts != nil
	if hosts == nil {
		hosts = a.findContiguous(size)
	}
	contiguous := hosts != nil
	if hosts == nil {
		hosts = a.scatter(size)
	}
	return a.place(hosts, contiguous, aligned, size)
}

// AllocAligned places a job only if a granule-aligned contiguous block
// exists, failing otherwise — the admission policy that guarantees both
// contention freedom and isolation (at the cost of queueing delay).
func (a *Allocator) AllocAligned(size int) (*Allocation, error) {
	if size < 1 {
		return nil, fmt.Errorf("sched: job size %d", size)
	}
	hosts := a.findAligned(size)
	if hosts == nil {
		return nil, fmt.Errorf("sched: no aligned block of %d hosts available", size)
	}
	return a.place(hosts, true, true, size)
}

func (a *Allocator) place(hosts []int, contiguous, aligned bool, size int) (*Allocation, error) {
	alloc := &Allocation{
		ID:             a.nextID,
		Hosts:          hosts,
		ContentionFree: contiguous && size%a.granule == 0,
		Isolated:       aligned && size%a.granule == 0,
	}
	a.nextID++
	for _, h := range hosts {
		a.freeRun[h] = true
	}
	a.jobs[alloc.ID] = alloc
	return alloc, nil
}

// Free releases a job's hosts.
func (a *Allocator) Free(id JobID) error {
	alloc, ok := a.jobs[id]
	if !ok {
		return fmt.Errorf("sched: unknown job %d", id)
	}
	for _, h := range alloc.Hosts {
		a.freeRun[h] = false
	}
	delete(a.jobs, id)
	return nil
}

// Jobs returns the live allocations in ID order.
func (a *Allocator) Jobs() []*Allocation {
	ids := make([]int, 0, len(a.jobs))
	for id := range a.jobs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]*Allocation, 0, len(ids))
	for _, id := range ids {
		out = append(out, a.jobs[JobID(id)])
	}
	return out
}

// findAligned looks for a free contiguous block of `size` starting at a
// granule boundary.
func (a *Allocator) findAligned(size int) []int {
	n := len(a.freeRun)
	for start := 0; start+size <= n; start += a.granule {
		if a.runFree(start, size) {
			return mkRange(start, size)
		}
	}
	return nil
}

// findContiguous looks for any free contiguous block.
func (a *Allocator) findContiguous(size int) []int {
	n := len(a.freeRun)
	for start := 0; start+size <= n; start++ {
		if a.runFree(start, size) {
			return mkRange(start, size)
		}
	}
	return nil
}

// scatter gathers the lowest free hosts.
func (a *Allocator) scatter(size int) []int {
	out := make([]int, 0, size)
	for h := 0; h < len(a.freeRun) && len(out) < size; h++ {
		if !a.freeRun[h] {
			out = append(out, h)
		}
	}
	return out
}

func (a *Allocator) runFree(start, size int) bool {
	for h := start; h < start+size; h++ {
		if a.freeRun[h] {
			return false
		}
	}
	return true
}

func mkRange(start, size int) []int {
	out := make([]int, size)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// IsolationLevel returns the lowest tree level at which two jobs share a
// sub-tree: 1 means they share a leaf switch (worst — they contend for
// the same up-links), h means they only meet inside a top-level group,
// and h+1 means the jobs occupy disjoint level-h sub-trees and cannot
// contend anywhere.
func (a *Allocator) IsolationLevel(x, y JobID) (int, error) {
	jx, ok := a.jobs[x]
	if !ok {
		return 0, fmt.Errorf("sched: unknown job %d", x)
	}
	jy, ok := a.jobs[y]
	if !ok {
		return 0, fmt.Errorf("sched: unknown job %d", y)
	}
	g := a.t.Spec
	for l := 1; l <= g.H; l++ {
		size := g.MProd(l)
		sx := subtreeSet(jx.Hosts, size)
		sy := subtreeSet(jy.Hosts, size)
		for s := range sx {
			if sy[s] {
				return l, nil
			}
		}
	}
	return g.H + 1, nil
}

func subtreeSet(hosts []int, size int) map[int]bool {
	out := make(map[int]bool)
	for _, h := range hosts {
		out[h/size] = true
	}
	return out
}
