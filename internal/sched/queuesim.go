package sched

import (
	"fmt"
	"math/rand"

	"fattree/internal/des"
	"fattree/internal/topo"
)

// QueueConfig drives a synthetic job-trace simulation through the
// allocator: jobs arrive, wait FIFO until they fit, run, and leave. It
// quantifies the operational cost of the contention-free policy — how
// much utilization padding job sizes up to the allocation granule
// sacrifices, against how many jobs run with the HSD = 1 guarantee.
type QueueConfig struct {
	Seed int64
	// Rand, when non-nil, supplies every random draw of the simulation
	// and takes precedence over Seed — callers that run many simulations
	// (or need daemon-grade determinism) inject one RNG instead of
	// reseeding per run.
	Rand             *rand.Rand
	Jobs             int
	MeanInterarrival des.Time
	MeanDuration     des.Time
	// MaxGranules bounds job sizes: a request draws uniformly from
	// [1, MaxGranules] granules, then (unless AlignedFraction applies)
	// subtracts a random sub-granule remainder.
	MaxGranules int
	// AlignedFraction is the probability a request is already a
	// granule multiple.
	AlignedFraction float64
	// PadToGranule rounds every request up to the next granule
	// multiple before allocation (the contention-free admission
	// policy).
	PadToGranule bool
	// WaitForAligned admits a job only into a granule-aligned block,
	// keeping it queued otherwise — full isolation at the cost of
	// waiting. Implies the padded sizes should be granule multiples to
	// be useful.
	WaitForAligned bool
}

// QueueStats summarizes a queue simulation.
type QueueStats struct {
	Completed      int
	ContentionFree int
	Isolated       int
	// MeanWait is the average time jobs spent queued.
	MeanWait des.Time
	// AvgUtilization is the time-weighted allocated fraction.
	AvgUtilization float64
	// Makespan is when the last job finished.
	Makespan des.Time
}

// CFFraction is the share of jobs that ran with the guarantee.
func (q QueueStats) CFFraction() float64 {
	if q.Completed == 0 {
		return 0
	}
	return float64(q.ContentionFree) / float64(q.Completed)
}

type queuedJob struct {
	size    int
	arrived des.Time
	dur     des.Time
}

// SimulateQueue replays a generated trace through the allocator under
// the given admission policy.
func SimulateQueue(t *topo.Topology, cfg QueueConfig) (QueueStats, error) {
	if cfg.Jobs < 1 || cfg.MeanInterarrival <= 0 || cfg.MeanDuration <= 0 || cfg.MaxGranules < 1 {
		return QueueStats{}, fmt.Errorf("sched: bad queue config %+v", cfg)
	}
	alloc, err := New(t)
	if err != nil {
		return QueueStats{}, err
	}
	g := alloc.Granule()
	if cfg.MaxGranules*g > t.NumHosts() {
		return QueueStats{}, fmt.Errorf("sched: MaxGranules %d exceeds the machine (%d hosts, granule %d)",
			cfg.MaxGranules, t.NumHosts(), g)
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	sched := des.NewScheduler()

	var (
		stats     QueueStats
		queue     []queuedJob
		lastEvent des.Time
		utilAcc   float64
		waitSum   des.Time
	)
	account := func() {
		now := sched.Now()
		utilAcc += alloc.Utilization() * float64(now-lastEvent)
		lastEvent = now
	}
	var admit func()
	admit = func() {
		for len(queue) > 0 {
			j := queue[0]
			var a *Allocation
			var err error
			if cfg.WaitForAligned {
				a, err = alloc.AllocAligned(j.size)
			} else {
				if j.size > alloc.FreeHosts() {
					return // FIFO head blocks
				}
				a, err = alloc.Alloc(j.size)
			}
			if err != nil {
				return // FIFO head blocks until space frees
			}
			queue = queue[1:]
			waitSum += sched.Now() - j.arrived
			if a.ContentionFree {
				stats.ContentionFree++
			}
			if a.Isolated {
				stats.Isolated++
			}
			id := a.ID
			sched.After(j.dur, func() {
				account()
				if err := alloc.Free(id); err != nil {
					panic(err)
				}
				stats.Completed++
				admit()
			})
		}
	}

	// Generate arrivals.
	at := des.Time(0)
	for i := 0; i < cfg.Jobs; i++ {
		at += des.Time(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		size := (1 + rng.Intn(cfg.MaxGranules)) * g
		if rng.Float64() >= cfg.AlignedFraction {
			size -= rng.Intn(g) // ragged request
		}
		if cfg.PadToGranule && size%g != 0 {
			size += g - size%g
		}
		dur := des.Time(rng.ExpFloat64() * float64(cfg.MeanDuration))
		if dur < des.Nanosecond {
			dur = des.Nanosecond
		}
		j := queuedJob{size: size, dur: dur}
		sched.At(at, func() {
			account()
			j.arrived = sched.Now()
			queue = append(queue, j)
			admit()
		})
	}
	if !sched.Run(0) {
		return QueueStats{}, fmt.Errorf("sched: queue simulation did not drain")
	}
	if len(queue) > 0 {
		return QueueStats{}, fmt.Errorf("sched: %d jobs stuck in the queue", len(queue))
	}
	stats.Makespan = sched.Now()
	if stats.Makespan > 0 {
		stats.AvgUtilization = utilAcc / float64(stats.Makespan)
	}
	if stats.Completed > 0 {
		stats.MeanWait = waitSum / des.Time(stats.Completed)
	}
	return stats, nil
}
