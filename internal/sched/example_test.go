package sched_test

import (
	"fmt"

	"fattree/internal/sched"
	"fattree/internal/topo"
)

// Place two jobs on the 1944-node cluster and check their isolation.
func ExampleAllocator() {
	cluster := topo.MustBuild(topo.Cluster1944)
	a, err := sched.New(cluster)
	if err != nil {
		panic(err)
	}
	fmt.Println("granule:", a.Granule())
	j1, _ := a.Alloc(648)
	j2, _ := a.Alloc(324)
	fmt.Println("job1 contention-free:", j1.ContentionFree)
	fmt.Println("job2 contention-free:", j2.ContentionFree)
	lvl, _ := a.IsolationLevel(j1.ID, j2.ID)
	fmt.Println("isolation level:", lvl)
	fmt.Printf("utilization: %.1f%%\n", 100*a.Utilization())
	// Output:
	// granule: 324
	// job1 contention-free: true
	// job2 contention-free: true
	// isolation level: 3
	// utilization: 50.0%
}
