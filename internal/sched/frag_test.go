package sched

import (
	"math/rand"
	"testing"

	"fattree/internal/des"
	"fattree/internal/topo"
)

// checkInvariants asserts the allocator's bookkeeping after any
// alloc/free sequence: live jobs hold pairwise-disjoint ascending host
// sets, every held host is marked used, and FreeHosts accounts for
// exactly the remainder.
func checkInvariants(t *testing.T, a *Allocator) {
	t.Helper()
	held := make(map[int]JobID)
	for _, j := range a.Jobs() {
		for i, h := range j.Hosts {
			if i > 0 && j.Hosts[i-1] >= h {
				t.Fatalf("job %d hosts not ascending: %v", j.ID, j.Hosts)
			}
			if owner, dup := held[h]; dup {
				t.Fatalf("host %d held by jobs %d and %d", h, owner, j.ID)
			}
			held[h] = j.ID
			if !a.freeRun[h] {
				t.Fatalf("job %d holds host %d but it is marked free", j.ID, h)
			}
		}
	}
	if got, want := a.FreeHosts(), len(a.freeRun)-len(held); got != want {
		t.Fatalf("FreeHosts = %d, want %d (%d held)", got, want, len(held))
	}
}

// TestAllocReleaseReallocKeepsGranuleInvariant drives full
// alloc→release→alloc cycles and checks that freed granule blocks come
// back with the full guarantee: after any interleaving of frees, a
// granule-multiple request that fits an aligned hole is placed aligned,
// contention free, and isolated.
func TestAllocReleaseReallocKeepsGranuleInvariant(t *testing.T) {
	a := newAlloc(t, topo.Cluster324)
	g := a.Granule()
	blocks := a.t.NumHosts() / g // 18 granule blocks

	// Cycle 1: fill the machine with granule jobs, free the odd ones.
	first := make([]JobID, 0, blocks)
	for i := 0; i < blocks; i++ {
		al, err := a.AllocAligned(g)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, al.ID)
	}
	if a.FreeHosts() != 0 {
		t.Fatalf("machine not full: %d free", a.FreeHosts())
	}
	for i := 1; i < blocks; i += 2 {
		if err := a.Free(first[i]); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, a)

	// Cycle 2: the odd holes are exactly one granule wide; every
	// granule request must land back in one, aligned and isolated.
	second := make([]JobID, 0, blocks/2)
	for i := 1; i < blocks; i += 2 {
		al, err := a.Alloc(g)
		if err != nil {
			t.Fatal(err)
		}
		if !al.ContentionFree || !al.Isolated {
			t.Fatalf("refilled granule hole lost guarantees: %+v", al)
		}
		if al.Hosts[0]%g != 0 || len(al.Hosts) != g {
			t.Fatalf("refill not granule aligned: start %d len %d", al.Hosts[0], len(al.Hosts))
		}
		second = append(second, al.ID)
	}
	if a.FreeHosts() != 0 {
		t.Fatalf("refill left %d hosts free", a.FreeHosts())
	}
	checkInvariants(t, a)

	// Cycle 3: free everything in interleaved order, then one job can
	// span the whole machine again — release fully coalesces.
	for i := 0; i < blocks; i += 2 {
		if err := a.Free(first[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range second {
		if err := a.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, a)
	whole, err := a.AllocAligned(a.t.NumHosts())
	if err != nil {
		t.Fatalf("machine did not coalesce after frees: %v", err)
	}
	if !whole.Isolated || len(whole.Hosts) != a.t.NumHosts() {
		t.Fatalf("whole-machine realloc: %+v", whole)
	}
}

// TestAllocFragmentationDegradesThenRecovers pins the fallback ladder
// under fragmentation. Filling the machine one host at a time and then
// freeing chosen hosts carves exact free patterns: first a run of g
// hosts that crosses a granule boundary (contiguous placement possible,
// aligned impossible), then only sub-granule runs and scattered singles
// (scatter placement, no CF flag). Freeing everything restores the
// aligned path.
func TestAllocFragmentationDegradesThenRecovers(t *testing.T) {
	a := newAlloc(t, topo.Cluster128)
	g := a.Granule() // 8 on the 128-host cluster
	n := a.t.NumHosts()

	// Fill host by host, recording which job holds which host.
	owner := make(map[int]JobID, n)
	for i := 0; i < n; i++ {
		al, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		owner[al.Hosts[0]] = al.ID
	}
	if a.FreeHosts() != 0 {
		t.Fatalf("fill left %d hosts free", a.FreeHosts())
	}
	freeHost := func(h int) {
		t.Helper()
		if err := a.Free(owner[h]); err != nil {
			t.Fatal(err)
		}
		delete(owner, h)
	}

	// Free hosts 1..g+g/2-1: a contiguous run longer than g that starts
	// off-boundary and whose only aligned start (host g) cannot reach a
	// full granule (host g+g/2 is still held).
	for h := 1; h < g+g/2; h++ {
		freeHost(h)
	}
	checkInvariants(t, a)
	if _, err := a.AllocAligned(g); err == nil {
		t.Fatal("AllocAligned found a block in a wedged machine")
	}
	spill, err := a.Alloc(g)
	if err != nil {
		t.Fatal(err)
	}
	if !spill.ContentionFree || spill.Isolated {
		t.Fatalf("contiguous unaligned placement flags: %+v", spill)
	}
	if spill.Hosts[0] != 1 {
		t.Fatalf("contiguous placement at %d, want 1", spill.Hosts[0])
	}

	// Now only hosts g+g/2-g..: remaining free run is g/2-1 < g. Free
	// alternating hosts in the next block for g scattered singles; a
	// granule request must fall through to scatter and lose CF.
	for i := 0; i < g; i++ {
		freeHost(2*g + 2*i)
	}
	checkInvariants(t, a)
	scat, err := a.Alloc(g)
	if err != nil {
		t.Fatal(err)
	}
	if scat.ContentionFree || scat.Isolated {
		t.Fatalf("scattered placement flags: %+v", scat)
	}
	if len(scat.Hosts) != g {
		t.Fatalf("scatter served %d hosts, want %d", len(scat.Hosts), g)
	}

	// Recovery: free every remaining single plus both test jobs; the
	// aligned path comes back isolated.
	for h := range owner {
		freeHost(h)
	}
	if err := a.Free(spill.ID); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(scat.ID); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, a)
	again, err := a.AllocAligned(g)
	if err != nil {
		t.Fatalf("aligned path did not recover: %v", err)
	}
	if !again.Isolated {
		t.Fatalf("recovered aligned alloc not isolated: %+v", again)
	}
}

// TestAllocFreeRandomizedChurn hammers the allocator with a seeded
// random alloc/free mix and re-checks the invariants continuously; a
// final drain must return the machine to fully free.
func TestAllocFreeRandomizedChurn(t *testing.T) {
	a := newAlloc(t, topo.Cluster128)
	g := a.Granule()
	rng := rand.New(rand.NewSource(7))
	var live []JobID
	for step := 0; step < 500; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			if err := a.Free(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			size := 1 + rng.Intn(2*g)
			al, err := a.Alloc(size)
			if err != nil {
				if size <= a.FreeHosts() {
					t.Fatalf("step %d: alloc(%d) failed with %d free: %v",
						step, size, a.FreeHosts(), err)
				}
				continue
			}
			if len(al.Hosts) != size {
				t.Fatalf("step %d: got %d hosts, want %d", step, len(al.Hosts), size)
			}
			live = append(live, al.ID)
		}
		if step%25 == 0 {
			checkInvariants(t, a)
		}
	}
	for _, id := range live {
		if err := a.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, a)
	if a.FreeHosts() != a.t.NumHosts() {
		t.Fatalf("drain left %d of %d hosts", a.FreeHosts(), a.t.NumHosts())
	}
	if len(a.Jobs()) != 0 {
		t.Fatalf("drain left %d live jobs", len(a.Jobs()))
	}
}

// TestSimulateQueueInjectedRand covers the QueueConfig.Rand hook: an
// injected RNG takes precedence over Seed, two runs from identically
// seeded injected RNGs agree, and a shared RNG threads state across
// consecutive simulations (the daemon-grade reuse mode).
func TestSimulateQueueInjectedRand(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	base := QueueConfig{
		Seed:             3,
		Jobs:             60,
		MeanInterarrival: 10 * des.Millisecond,
		MeanDuration:     40 * des.Millisecond,
		MaxGranules:      4,
		AlignedFraction:  0.3,
	}

	cfgA := base
	cfgA.Rand = rand.New(rand.NewSource(99))
	a, err := SimulateQueue(tp, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := base
	cfgB.Seed = 12345 // must be ignored when Rand is set
	cfgB.Rand = rand.New(rand.NewSource(99))
	b, err := SimulateQueue(tp, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identically seeded injected RNGs diverged: %+v vs %+v", a, b)
	}

	// Precedence: same Seed without Rand gives the Seed-driven trace,
	// which differs from the injected-RNG trace.
	seeded, err := SimulateQueue(tp, base)
	if err != nil {
		t.Fatal(err)
	}
	if seeded == a {
		t.Error("injected RNG produced the Seed trace; Rand not taking precedence")
	}

	// A shared RNG advances across runs: back-to-back simulations on one
	// stream see different draws.
	shared := rand.New(rand.NewSource(7))
	cfgS := base
	cfgS.Rand = shared
	s1, err := SimulateQueue(tp, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SimulateQueue(tp, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Error("shared RNG repeated a trace; stream did not advance")
	}
}
