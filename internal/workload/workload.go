// Package workload generates synthetic traffic patterns for the packet
// simulator beyond the MPI collectives: the classic suite used to stress
// interconnects (random permutations, uniform random, transpose, tornado,
// incast). Section II's methodology — translate a pattern into per
// end-port destination sequences and let hosts progress asynchronously —
// applies to all of them.
package workload

import (
	"fmt"
	"math/rand"

	"fattree/internal/netsim"
)

// Pattern names a traffic generator.
type Pattern string

// The supported patterns.
const (
	// RandomPermutation draws one uniform permutation; every host sends
	// to its image.
	RandomPermutation Pattern = "random-permutation"
	// UniformRandom has every host send `Repeats` messages to
	// independent uniform destinations.
	UniformRandom Pattern = "uniform-random"
	// Transpose sends i -> (i*stride) mod N with stride = sqrt-ish of
	// N, the matrix-transpose pattern known to stress fat-tree up-links.
	Transpose Pattern = "transpose"
	// Tornado sends i -> (i + N/2 - 1) mod N, the worst case of ring
	// topologies, a mild case for fat-trees.
	Tornado Pattern = "tornado"
	// Incast makes every host send to destination 0 — pure endpoint
	// congestion no routing can fix.
	Incast Pattern = "incast"
	// NearestNeighbor sends i -> i+1 without wrap inside each leaf
	// group of size Stride (set via Config.Stride).
	NearestNeighbor Pattern = "nearest-neighbor"
)

// Config parameterizes generation.
type Config struct {
	Hosts   int
	Bytes   int64
	Repeats int   // messages per host (default 1)
	Seed    int64 // RNG seed for randomized patterns
	Stride  int   // pattern-specific stride (0 = auto)
}

// Generate builds the message list for a pattern.
func Generate(p Pattern, c Config) ([]netsim.Message, error) {
	if c.Hosts < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts, got %d", c.Hosts)
	}
	if c.Bytes < 1 {
		return nil, fmt.Errorf("workload: need positive message size, got %d", c.Bytes)
	}
	rep := c.Repeats
	if rep < 1 {
		rep = 1
	}
	rng := rand.New(rand.NewSource(c.Seed))
	n := c.Hosts
	var msgs []netsim.Message
	add := func(src, dst int) {
		if src != dst {
			msgs = append(msgs, netsim.Message{Src: src, Dst: dst, Bytes: c.Bytes})
		}
	}
	switch p {
	case RandomPermutation:
		for r := 0; r < rep; r++ {
			perm := rng.Perm(n)
			for i, d := range perm {
				add(i, d)
			}
		}
	case UniformRandom:
		for r := 0; r < rep; r++ {
			for i := 0; i < n; i++ {
				add(i, rng.Intn(n))
			}
		}
	case Transpose:
		stride := c.Stride
		if stride == 0 {
			stride = isqrt(n)
		}
		for r := 0; r < rep; r++ {
			for i := 0; i < n; i++ {
				add(i, (i*stride)%n)
			}
		}
	case Tornado:
		d := n/2 - 1
		if d < 1 {
			d = 1
		}
		for r := 0; r < rep; r++ {
			for i := 0; i < n; i++ {
				add(i, (i+d)%n)
			}
		}
	case Incast:
		for r := 0; r < rep; r++ {
			for i := 1; i < n; i++ {
				add(i, 0)
			}
		}
	case NearestNeighbor:
		group := c.Stride
		if group == 0 {
			group = 2
		}
		for r := 0; r < rep; r++ {
			for i := 0; i < n; i++ {
				if (i+1)%group != 0 && i+1 < n {
					add(i, i+1)
				}
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown pattern %q", p)
	}
	if len(msgs) == 0 {
		return nil, fmt.Errorf("workload: pattern %s generated no traffic for %d hosts", p, n)
	}
	return msgs, nil
}

// All lists the supported patterns.
func All() []Pattern {
	return []Pattern{RandomPermutation, UniformRandom, Transpose, Tornado, Incast, NearestNeighbor}
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
