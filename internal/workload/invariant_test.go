package workload_test

import (
	"testing"

	"fattree/internal/invariant"
	"fattree/internal/netsim"
	"fattree/internal/workload"
)

func pairs(msgs []netsim.Message) [][2]int {
	out := make([][2]int, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, [2]int{m.Src, m.Dst})
	}
	return out
}

// TestPermutationPatterns: the patterns documented as permutations
// really generate at most one send and one receive per host each round,
// so a single round is admissible as one CPS stage.
func TestPermutationPatterns(t *testing.T) {
	const n = 24
	gen := func(p workload.Pattern, seed int64, stride int) [][2]int {
		t.Helper()
		msgs, err := workload.Generate(p, workload.Config{Hosts: n, Bytes: 1, Seed: seed, Stride: stride})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		return pairs(msgs)
	}
	for seed := int64(0); seed < 5; seed++ {
		if err := invariant.PermutationPairs(gen(workload.RandomPermutation, seed, 0), n); err != nil {
			t.Errorf("random-permutation seed %d: %v", seed, err)
		}
	}
	if err := invariant.PermutationPairs(gen(workload.Tornado, 0, 0), n); err != nil {
		t.Errorf("tornado: %v", err)
	}
	// i -> i*stride mod n is a bijection exactly when stride is coprime
	// to n; 5 is coprime to 24.
	if err := invariant.PermutationPairs(gen(workload.Transpose, 0, 5), n); err != nil {
		t.Errorf("transpose stride 5: %v", err)
	}
}

// TestNonPermutationPatternsRejected: the checker distinguishes the
// patterns that genuinely concentrate traffic.
func TestNonPermutationPatternsRejected(t *testing.T) {
	const n = 64
	msgs, err := workload.Generate(workload.Incast, workload.Config{Hosts: n, Bytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.PermutationPairs(pairs(msgs), n); err == nil {
		t.Error("incast accepted as a permutation")
	}
	msgs, err = workload.Generate(workload.UniformRandom, workload.Config{Hosts: n, Bytes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.PermutationPairs(pairs(msgs), n); err == nil {
		t.Error("uniform-random draw with collisions accepted as a permutation")
	}
	// Non-coprime transpose folds several sources onto one destination.
	msgs, err = workload.Generate(workload.Transpose, workload.Config{Hosts: n, Bytes: 1, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.PermutationPairs(pairs(msgs), n); err == nil {
		t.Error("transpose stride 4 on 64 hosts accepted as a permutation")
	}
}
