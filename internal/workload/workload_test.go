package workload

import (
	"testing"

	"fattree/internal/netsim"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func TestGenerateShapes(t *testing.T) {
	c := Config{Hosts: 64, Bytes: 1024, Seed: 1}
	for _, p := range All() {
		msgs, err := Generate(p, c)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(msgs) == 0 {
			t.Fatalf("%s: empty", p)
		}
		for _, m := range msgs {
			if m.Src == m.Dst {
				t.Fatalf("%s: self message", p)
			}
			if m.Src < 0 || m.Src >= 64 || m.Dst < 0 || m.Dst >= 64 {
				t.Fatalf("%s: out of range %v", p, m)
			}
			if m.Bytes != 1024 {
				t.Fatalf("%s: wrong size %d", p, m.Bytes)
			}
		}
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	msgs, err := Generate(RandomPermutation, Config{Hosts: 100, Bytes: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dsts := make(map[int]bool)
	srcs := make(map[int]bool)
	for _, m := range msgs {
		if dsts[m.Dst] || srcs[m.Src] {
			t.Fatalf("duplicate endpoint in permutation")
		}
		dsts[m.Dst] = true
		srcs[m.Src] = true
	}
	// Fixed points are dropped, so <= 100 messages.
	if len(msgs) > 100 || len(msgs) < 90 {
		t.Errorf("permutation produced %d messages", len(msgs))
	}
}

func TestIncastTargetsZero(t *testing.T) {
	msgs, err := Generate(Incast, Config{Hosts: 16, Bytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 15 {
		t.Fatalf("incast messages = %d, want 15", len(msgs))
	}
	for _, m := range msgs {
		if m.Dst != 0 {
			t.Fatalf("incast message to %d", m.Dst)
		}
	}
}

func TestRepeats(t *testing.T) {
	a, err := Generate(Tornado, Config{Hosts: 16, Bytes: 64, Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Tornado, Config{Hosts: 16, Bytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3*len(b) {
		t.Errorf("repeats: %d vs 3x%d", len(a), len(b))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Tornado, Config{Hosts: 1, Bytes: 64}); err == nil {
		t.Error("single host accepted")
	}
	if _, err := Generate(Tornado, Config{Hosts: 16, Bytes: 0}); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := Generate("bogus", Config{Hosts: 16, Bytes: 64}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _ := Generate(UniformRandom, Config{Hosts: 32, Bytes: 64, Seed: 5})
	b, _ := Generate(UniformRandom, Config{Hosts: 32, Bytes: 64, Seed: 5})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPatternsRunThroughSimulator(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	nw, err := netsim.New(lft, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range All() {
		msgs, err := Generate(p, Config{Hosts: 128, Bytes: 8192, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		st, err := nw.Run(msgs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var want int64
		for _, m := range msgs {
			want += m.Bytes
		}
		if st.BytesDelivered != want {
			t.Errorf("%s: delivered %d of %d bytes", p, st.BytesDelivered, want)
		}
	}
}

func TestIsqrt(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 8: 2, 9: 3, 323: 17, 324: 18, 1944: 44}
	for n, want := range cases {
		if got := isqrt(n); got != want {
			t.Errorf("isqrt(%d) = %d, want %d", n, got, want)
		}
	}
}
