package topo

import "fmt"

// NodeKind distinguishes end-ports (hosts) from switches.
type NodeKind uint8

const (
	// Host is a compute end-port at level 0.
	Host NodeKind = iota
	// Switch is a crossbar at level 1..H.
	Switch
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// NodeID is a dense identifier into Topology.Nodes.
type NodeID int32

// PortID is a dense identifier into Topology.Ports.
type PortID int32

// LinkID is a dense identifier into Topology.Links.
type LinkID int32

// None marks an absent node/port/link reference.
const None = -1

// Direction tells whether a port faces up (towards the roots) or down
// (towards the hosts).
type Direction uint8

const (
	// Up ports connect a node to level l+1.
	Up Direction = iota
	// Down ports connect a node to level l-1.
	Down
)

func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Node is a host or switch in the built topology.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Level int // 0 for hosts
	// Digits is the PGFT address vector, little-endian: Digits[i-1] is
	// the digit for tree level i. For i <= Level the digit ranges over
	// [0, w_i); for i > Level over [0, m_i).
	Digits []int
	// Index is the little-endian mixed-radix value of Digits within the
	// node's level; for hosts it is the canonical end-port index used by
	// the D-Mod-K routing and the topology-aware MPI node order.
	Index int
	// Up and Down list the node's port IDs by port number (q for up
	// ports, r for down ports).
	Up, Down []PortID
}

// Port is one side of a link.
type Port struct {
	ID   PortID
	Node NodeID
	Dir  Direction
	Num  int    // q (up) or r (down) within the owning node
	Link LinkID // None when unconnected
}

// Link is a full-duplex cable between an up-going port of a lower node and
// a down-going port of an upper node.
type Link struct {
	ID    LinkID
	Lower PortID // up-going port on the level-l node
	Upper PortID // down-going port on the level-(l+1) node
	Level int    // the upper node's level (1..H)
}

// String renders a node as e.g. "switch L2 [3 0 1]".
func (n *Node) String() string {
	return fmt.Sprintf("%s L%d %v", n.Kind, n.Level, n.Digits)
}
