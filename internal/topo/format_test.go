package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestFormatRoundTrip(t *testing.T) {
	for _, g := range []PGFT{
		Cluster128,
		Cluster324,
		MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}),
		MustPGFT(1, []int{8}, []int{1}, []int{1}),
	} {
		tp := MustBuild(g)
		var buf bytes.Buffer
		if _, err := tp.WriteTo(&buf); err != nil {
			t.Fatalf("%v: WriteTo: %v", g, err)
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: Parse: %v", g, err)
		}
		if got.Spec.String() != g.String() {
			t.Errorf("round trip spec %v != %v", got.Spec, g)
		}
		if len(got.Links) != len(tp.Links) {
			t.Errorf("%v: round trip links %d != %d", g, len(got.Links), len(tp.Links))
		}
	}
}

func TestParseHeaderOnly(t *testing.T) {
	tp, err := Parse(strings.NewReader("pgft h=2 m=4,4 w=1,2 p=1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts() != 16 {
		t.Errorf("hosts = %d, want 16", tp.NumHosts())
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\npgft h=1 m=4 w=1 p=1\n# trailing\n"
	tp, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts() != 4 {
		t.Errorf("hosts = %d, want 4", tp.NumHosts())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"unknown directive", "frob x\n"},
		{"link before header", "link L0:0/u0 L1:0/d0\n"},
		{"duplicate header", "pgft h=1 m=4 w=1 p=1\npgft h=1 m=4 w=1 p=1\n"},
		{"bad h", "pgft h=x m=4 w=1 p=1\n"},
		{"bad list", "pgft h=1 m=4,a w=1 p=1\n"},
		{"missing equals", "pgft h1\n"},
		{"unknown field", "pgft h=1 m=4 w=1 p=1 z=3\n"},
		{"inconsistent lengths", "pgft h=2 m=4 w=1 p=1\n"},
		{"bad link endpoint", "pgft h=1 m=4 w=1 p=1\nlink bogus L1:0/d0\n"},
		{"link arity", "pgft h=1 m=4 w=1 p=1\nlink L0:0/u0\n"},
		{"wrong link wiring", "pgft h=1 m=4 w=1 p=1\nlink L0:0/u0 L1:0/d1\n"},
		{"link direction swap", "pgft h=1 m=4 w=1 p=1\nlink L0:0/d0 L1:0/u0\n"},
		{"link out of range", "pgft h=1 m=4 w=1 p=1\nlink L0:9/u0 L1:0/d0\n"},
		{"nonadjacent levels", "pgft h=2 m=4,4 w=1,2 p=1,2\nlink L0:0/u0 L2:0/d0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.in)); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestParseAcceptsOwnLinkLines(t *testing.T) {
	tp := MustBuild(MustPGFT(2, []int{3, 2}, []int{1, 3}, []int{1, 1}))
	var buf bytes.Buffer
	if _, err := tp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Every emitted link line must verify.
	if _, err := Parse(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("self round-trip failed: %v\n%s", err, buf.String())
	}
	// Corrupt one port number; parsing must fail.
	s := buf.String()
	bad := strings.Replace(s, "link L0:0/u0", "link L0:1/u0", 1)
	if bad == s {
		t.Fatal("test setup: pattern not found")
	}
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("corrupted link accepted")
	}
}
