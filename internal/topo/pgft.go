// Package topo implements the fat-tree topology models of Zahavi's
// "Fat-Trees Routing and Node Ordering Providing Contention Free Traffic
// for MPI Global Collectives" (Section IV): Parallel Ports Generalized
// Fat-Trees (PGFT) and their practically-buildable sub-class, Real Life
// Fat-Trees (RLFT).
//
// A PGFT is canonically defined by the tuple
//
//	PGFT(h; m1..mh; w1..wh; p1..ph)
//
// where h is the number of switch levels, m_l is the number of distinct
// lower-level nodes connected to each node at level l, w_l is the number of
// distinct level-l nodes connected to each node at level l-1, and p_l is the
// number of parallel links between each such connected pair.
//
// Nodes are addressed by digit vectors (Section IV.B): a node at level l
// carries h digits; digit positions 1..l range over [0, w_i) and positions
// l+1..h range over [0, m_i). Hosts sit at level 0, so all their digits are
// in the m ranges and the little-endian mixed-radix value of the digit
// vector is the host's linear index.
package topo

import (
	"fmt"
)

// PGFT is the canonical parameter tuple of a Parallel Ports Generalized
// Fat-Tree. Slices are indexed 0..H-1 for tree levels 1..H.
type PGFT struct {
	// H is the number of switch levels (hosts occupy level 0).
	H int
	// M[l-1] is the number of distinct children of a level-l node.
	M []int
	// W[l-1] is the number of distinct parents of a level-(l-1) node.
	W []int
	// P[l-1] is the number of parallel links between a connected
	// level-(l-1)/level-l node pair.
	P []int
}

// NewPGFT validates the parameter vectors and returns the spec.
func NewPGFT(h int, m, w, p []int) (PGFT, error) {
	g := PGFT{H: h, M: append([]int(nil), m...), W: append([]int(nil), w...), P: append([]int(nil), p...)}
	if err := g.Validate(); err != nil {
		return PGFT{}, err
	}
	return g, nil
}

// MustPGFT is NewPGFT that panics on invalid parameters. Intended for
// package-level construction of well-known topologies and for tests.
func MustPGFT(h int, m, w, p []int) PGFT {
	g, err := NewPGFT(h, m, w, p)
	if err != nil {
		panic(err)
	}
	return g
}

// Validate checks structural sanity of the parameter tuple.
func (g PGFT) Validate() error {
	if g.H < 1 {
		return fmt.Errorf("topo: PGFT needs at least one level, got h=%d", g.H)
	}
	if len(g.M) != g.H || len(g.W) != g.H || len(g.P) != g.H {
		return fmt.Errorf("topo: PGFT(h=%d) wants %d-long m/w/p vectors, got %d/%d/%d",
			g.H, g.H, len(g.M), len(g.W), len(g.P))
	}
	for l := 1; l <= g.H; l++ {
		if g.M[l-1] < 1 || g.W[l-1] < 1 || g.P[l-1] < 1 {
			return fmt.Errorf("topo: PGFT level %d has non-positive parameter (m=%d w=%d p=%d)",
				l, g.M[l-1], g.W[l-1], g.P[l-1])
		}
	}
	return nil
}

// Mi returns m_l (1-based level).
func (g PGFT) Mi(l int) int { return g.M[l-1] }

// Wi returns w_l (1-based level).
func (g PGFT) Wi(l int) int { return g.W[l-1] }

// Pi returns p_l (1-based level).
func (g PGFT) Pi(l int) int { return g.P[l-1] }

// NumHosts returns the number of end-ports N = prod(m_l).
func (g PGFT) NumHosts() int {
	n := 1
	for _, m := range g.M {
		n *= m
	}
	return n
}

// NumSwitches returns the number of switches at level l (1-based):
// prod_{i<=l} w_i * prod_{i>l} m_i.
func (g PGFT) NumSwitches(l int) int {
	n := 1
	for i := 1; i <= l; i++ {
		n *= g.W[i-1]
	}
	for i := l + 1; i <= g.H; i++ {
		n *= g.M[i-1]
	}
	return n
}

// TotalSwitches returns the switch count over all levels.
func (g PGFT) TotalSwitches() int {
	n := 0
	for l := 1; l <= g.H; l++ {
		n += g.NumSwitches(l)
	}
	return n
}

// UpPorts returns the number of up-going ports of a node at level l
// (0 <= l < H): w_{l+1} * p_{l+1}.
func (g PGFT) UpPorts(l int) int {
	if l >= g.H {
		return 0
	}
	return g.W[l] * g.P[l]
}

// DownPorts returns the number of down-going ports of a node at level l
// (1 <= l <= H): m_l * p_l.
func (g PGFT) DownPorts(l int) int {
	if l < 1 {
		return 0
	}
	return g.M[l-1] * g.P[l-1]
}

// MProd returns prod_{i=1..l} m_i; MProd(0) == 1.
func (g PGFT) MProd(l int) int {
	n := 1
	for i := 1; i <= l; i++ {
		n *= g.M[i-1]
	}
	return n
}

// WProd returns prod_{i=1..l} w_i; WProd(0) == 1.
func (g PGFT) WProd(l int) int {
	n := 1
	for i := 1; i <= l; i++ {
		n *= g.W[i-1]
	}
	return n
}

// ConstantCBB reports whether the tree keeps a constant cross-bisectional
// bandwidth: at every internal level the aggregate down-going capacity of a
// node equals its aggregate up-going capacity, m_l*p_l == w_{l+1}*p_{l+1}
// for l = 1..H-1 (the first RLFT restriction, Section IV.C).
func (g PGFT) ConstantCBB() bool {
	for l := 1; l < g.H; l++ {
		if g.M[l-1]*g.P[l-1] != g.W[l]*g.P[l] {
			return false
		}
	}
	return true
}

// SingleHostUplink reports whether end-ports attach through exactly one
// cable: w_1 == 1 and p_1 == 1 (the second RLFT restriction).
func (g PGFT) SingleHostUplink() bool {
	return g.W[0] == 1 && g.P[0] == 1
}

// Arity returns the switch arity K (half the port count of a constant-radix
// switch) if the topology uses same-port-count switches everywhere, else
// (0, false). Leaf switches have m_1*p_1 down + w_2*p_2 up; the top level
// must expose 2K down-going ports (third RLFT restriction).
func (g PGFT) Arity() (int, bool) {
	if g.H == 1 {
		// Single-level "tree" is one layer of switches; arity is half
		// of its down port count when that count is even.
		d := g.DownPorts(1)
		if d%2 != 0 {
			return 0, false
		}
		return d / 2, true
	}
	k := g.M[0] * g.P[0] // leaf down ports
	for l := 1; l < g.H; l++ {
		if g.DownPorts(l) != k || g.UpPorts(l) != k {
			return 0, false
		}
	}
	if g.DownPorts(g.H) != 2*k {
		return 0, false
	}
	return k, true
}

// IsRLFT reports whether the spec satisfies all three Real Life Fat-Tree
// restrictions of Section IV.C, returning the switch arity K when it does.
func (g PGFT) IsRLFT() (int, bool) {
	if !g.ConstantCBB() || !g.SingleHostUplink() {
		return 0, false
	}
	return g.Arity()
}

// AllocationGranule returns the job-size granule of the contention-free
// guarantee: with randomly chosen end-ports, the rank-compacted D-Mod-K
// routing keeps the Shift CPS at HSD = 1 exactly when the job size is a
// multiple of prod(w_i) * p_h. This is the constant behind the paper's
// Section V remark that the maximal 3-level 36-port-switch RLFT admits
// congestion-free sub-allocations "in multiplications of 324 nodes":
// the Shift wrap-around stays aligned with the cyclic up-port assignment
// at every tree level only at these sizes.
func (g PGFT) AllocationGranule() int {
	return g.WProd(g.H) * g.Pi(g.H)
}

// IsXGFT reports whether the spec degenerates to an Extended Generalized
// Fat-Tree, i.e. no parallel ports anywhere.
func (g PGFT) IsXGFT() bool {
	for _, p := range g.P {
		if p != 1 {
			return false
		}
	}
	return true
}

// String renders the canonical tuple notation.
func (g PGFT) String() string {
	return fmt.Sprintf("PGFT(%d;%s;%s;%s)", g.H, intList(g.M), intList(g.W), intList(g.P))
}

func intList(v []int) string {
	s := ""
	for i, x := range v {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s
}

// KAryNTree returns the classic k-ary-n-tree as a PGFT: n levels of
// switches with k children and k parents each (k^n hosts).
func KAryNTree(k, n int) (PGFT, error) {
	if k < 1 || n < 1 {
		return PGFT{}, fmt.Errorf("topo: k-ary-n-tree wants positive k and n, got k=%d n=%d", k, n)
	}
	m := make([]int, n)
	w := make([]int, n)
	p := make([]int, n)
	for i := 0; i < n; i++ {
		m[i], w[i], p[i] = k, k, 1
	}
	w[0] = 1 // hosts have a single parent switch in the usual drawing
	return NewPGFT(n, m, w, p)
}

// MaximalRLFT returns the largest h-level RLFT buildable from 2K-port
// switches: m = (K,...,K,2K), w = (1,K,...,K), p = all ones. For example
// MaximalRLFT(3, 18) is RLFT(3;18,18,36;1,18,18;1,1,1) with 11664 hosts.
func MaximalRLFT(h, k int) (PGFT, error) {
	if h < 1 || k < 1 {
		return PGFT{}, fmt.Errorf("topo: maximal RLFT wants positive h and K, got h=%d K=%d", h, k)
	}
	m := make([]int, h)
	w := make([]int, h)
	p := make([]int, h)
	for i := 0; i < h; i++ {
		m[i], w[i], p[i] = k, k, 1
	}
	m[h-1] = 2 * k
	w[0] = 1
	g, err := NewPGFT(h, m, w, p)
	if err != nil {
		return PGFT{}, err
	}
	if _, ok := g.IsRLFT(); !ok && h > 1 {
		return PGFT{}, fmt.Errorf("topo: internal error: %v is not an RLFT", g)
	}
	return g, nil
}

// RLFT2 builds a two-level RLFT from 2K-port switches holding exactly
// leaves*K hosts, using parallel ports to keep the spine switches fully
// populated (the Figure 4(b) construction). leaves must divide 2*K*K and
// K*leaves must be divisible by 2K (i.e. leaves even or K even).
func RLFT2(k, leaves int) (PGFT, error) {
	if k < 1 || leaves < 1 || leaves > 2*k {
		return PGFT{}, fmt.Errorf("topo: RLFT2 wants 1 <= leaves <= 2K, got K=%d leaves=%d", k, leaves)
	}
	// Each leaf has K up links; spines have 2K down ports, so the spine
	// count is leaves*K/(2K) = leaves/2 when leaves is even. Each spine
	// then connects to every leaf with p = 2K/leaves parallel links,
	// which must be integral.
	if (2*k)%leaves != 0 {
		return PGFT{}, fmt.Errorf("topo: RLFT2(K=%d, leaves=%d): 2K must be divisible by leaves", k, leaves)
	}
	p2 := 2 * k / leaves
	if k%p2 != 0 {
		return PGFT{}, fmt.Errorf("topo: RLFT2(K=%d, leaves=%d): parallel port count %d must divide K", k, leaves, p2)
	}
	w2 := k / p2
	return NewPGFT(2, []int{k, leaves}, []int{1, w2}, []int{1, p2})
}

// RLFT3 builds a three-level RLFT from 2K-port switches with
// K*K*topGroups hosts (topGroups <= 2K). Level-2 switches split their K up
// links across w3 = K/p3 spines with p3 = 2K/topGroups parallel links.
func RLFT3(k, topGroups int) (PGFT, error) {
	if k < 1 || topGroups < 1 || topGroups > 2*k {
		return PGFT{}, fmt.Errorf("topo: RLFT3 wants 1 <= topGroups <= 2K, got K=%d topGroups=%d", k, topGroups)
	}
	if (2*k)%topGroups != 0 {
		return PGFT{}, fmt.Errorf("topo: RLFT3(K=%d, groups=%d): 2K must be divisible by groups", k, topGroups)
	}
	p3 := 2 * k / topGroups
	if k%p3 != 0 {
		return PGFT{}, fmt.Errorf("topo: RLFT3(K=%d, groups=%d): parallel port count %d must divide K", k, topGroups, p3)
	}
	w3 := k / p3
	return NewPGFT(3, []int{k, k, topGroups}, []int{1, k, w3}, []int{1, 1, p3})
}

// The concrete cluster sizes studied in the paper's Figure 3 and Section II.
var (
	// Cluster128 is a 128-host two-level tree of 16-port switches
	// (16 leaves of 8 hosts): RLFT(2;8,16;1,8;1,1).
	Cluster128 = MustPGFT(2, []int{8, 16}, []int{1, 8}, []int{1, 1})
	// Cluster324 is a 324-host two-level tree of 36-port switches
	// (18 leaves of 18 hosts, 9 spines with 2 parallel links per leaf):
	// RLFT(2;18,18;1,9;1,2).
	Cluster324 = MustPGFT(2, []int{18, 18}, []int{1, 9}, []int{1, 2})
	// Cluster1728 is a 1728-host three-level tree of 24-port switches:
	// RLFT(3;12,12,12;1,12,6;1,1,2).
	Cluster1728 = MustPGFT(3, []int{12, 12, 12}, []int{1, 12, 6}, []int{1, 1, 2})
	// Cluster1944 is the paper's 1944-host three-level tree of 36-port
	// switches: RLFT(3;18,18,6;1,18,3;1,1,6).
	Cluster1944 = MustPGFT(3, []int{18, 18, 6}, []int{1, 18, 3}, []int{1, 1, 6})
)
