package topo

import (
	"testing"
)

func TestNewPGFTValidation(t *testing.T) {
	cases := []struct {
		name    string
		h       int
		m, w, p []int
		wantErr bool
	}{
		{"valid 2-level", 2, []int{4, 4}, []int{1, 2}, []int{1, 2}, false},
		{"zero levels", 0, nil, nil, nil, true},
		{"short m", 2, []int{4}, []int{1, 2}, []int{1, 2}, true},
		{"short w", 2, []int{4, 4}, []int{1}, []int{1, 2}, true},
		{"short p", 2, []int{4, 4}, []int{1, 2}, []int{1}, true},
		{"zero m", 2, []int{0, 4}, []int{1, 2}, []int{1, 2}, true},
		{"negative w", 2, []int{4, 4}, []int{-1, 2}, []int{1, 2}, true},
		{"zero p", 2, []int{4, 4}, []int{1, 2}, []int{1, 0}, true},
		{"single level", 1, []int{8}, []int{1}, []int{1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewPGFT(tc.h, tc.m, tc.w, tc.p)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewPGFT(%d,%v,%v,%v) err=%v, wantErr=%v", tc.h, tc.m, tc.w, tc.p, err, tc.wantErr)
			}
		})
	}
}

func TestPGFTCounts(t *testing.T) {
	// Figure 4(b): 16 hosts, 8-port switches, PGFT(2;4,4;1,2;1,2).
	g := MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2})
	if got := g.NumHosts(); got != 16 {
		t.Errorf("NumHosts = %d, want 16", got)
	}
	if got := g.NumSwitches(1); got != 4 {
		t.Errorf("NumSwitches(1) = %d, want 4 leaves", got)
	}
	if got := g.NumSwitches(2); got != 2 {
		t.Errorf("NumSwitches(2) = %d, want 2 spines", got)
	}
	if got := g.TotalSwitches(); got != 6 {
		t.Errorf("TotalSwitches = %d, want 6", got)
	}
	if got := g.UpPorts(1); got != 4 {
		t.Errorf("UpPorts(1) = %d, want 4", got)
	}
	if got := g.DownPorts(1); got != 4 {
		t.Errorf("DownPorts(1) = %d, want 4", got)
	}
	if got := g.DownPorts(2); got != 8 {
		t.Errorf("DownPorts(2) = %d, want 8", got)
	}
	if got := g.UpPorts(2); got != 0 {
		t.Errorf("UpPorts(2) = %d, want 0 at the top", got)
	}
}

func TestFigure4XGFTvsPGFT(t *testing.T) {
	// Figure 4(a): same 16 hosts without parallel ports needs 4 spines
	// with only 4 of 8 ports used; (b) with p2=2 needs 2 fully used
	// spines. Both must keep CBB.
	xgft := MustPGFT(2, []int{4, 4}, []int{1, 4}, []int{1, 1})
	pgft := MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2})
	if !xgft.IsXGFT() {
		t.Errorf("%v should be an XGFT", xgft)
	}
	if pgft.IsXGFT() {
		t.Errorf("%v should not be an XGFT", pgft)
	}
	if !xgft.ConstantCBB() || !pgft.ConstantCBB() {
		t.Errorf("both Figure 4 trees must keep constant CBB")
	}
	if got := xgft.NumSwitches(2); got != 4 {
		t.Errorf("XGFT spines = %d, want 4", got)
	}
	if got := pgft.NumSwitches(2); got != 2 {
		t.Errorf("PGFT spines = %d, want 2", got)
	}
	// The XGFT wastes spine ports: 4 down ports on an 8-port switch.
	if got := xgft.DownPorts(2); got != 4 {
		t.Errorf("XGFT spine down ports = %d, want 4", got)
	}
	if got := pgft.DownPorts(2); got != 8 {
		t.Errorf("PGFT spine down ports = %d, want 8", got)
	}
	// Only the parallel-port variant is a Real Life Fat-Tree with K=4.
	if k, ok := pgft.IsRLFT(); !ok || k != 4 {
		t.Errorf("PGFT IsRLFT = (%d,%v), want (4,true)", k, ok)
	}
	if _, ok := xgft.IsRLFT(); ok {
		t.Errorf("the Figure 4(a) XGFT must not qualify as constant-radix RLFT")
	}
}

func TestPaperClusters(t *testing.T) {
	cases := []struct {
		name   string
		g      PGFT
		hosts  int
		arity  int
		levels int
	}{
		{"128", Cluster128, 128, 8, 2},
		{"324", Cluster324, 324, 18, 2},
		{"1728", Cluster1728, 1728, 12, 3},
		{"1944", Cluster1944, 1944, 18, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.NumHosts(); got != tc.hosts {
				t.Errorf("%v hosts = %d, want %d", tc.g, got, tc.hosts)
			}
			if tc.g.H != tc.levels {
				t.Errorf("%v levels = %d, want %d", tc.g, tc.g.H, tc.levels)
			}
			k, ok := tc.g.IsRLFT()
			if !ok {
				t.Fatalf("%v is not an RLFT", tc.g)
			}
			if k != tc.arity {
				t.Errorf("%v arity = %d, want %d", tc.g, k, tc.arity)
			}
		})
	}
}

func TestMaximalRLFT(t *testing.T) {
	g, err := MaximalRLFT(3, 18)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: RLFT(3;18,18,36;1,18,18;1,1,1) has 11664 hosts.
	if got := g.NumHosts(); got != 11664 {
		t.Errorf("maximal 3-level K=18 hosts = %d, want 11664", got)
	}
	if k, ok := g.IsRLFT(); !ok || k != 18 {
		t.Errorf("IsRLFT = (%d,%v), want (18,true)", k, ok)
	}
	if !g.IsXGFT() {
		t.Errorf("maximal RLFT should have no parallel ports")
	}
	if _, err := MaximalRLFT(0, 18); err == nil {
		t.Errorf("MaximalRLFT(0,18) should fail")
	}
}

func TestKAryNTree(t *testing.T) {
	g, err := KAryNTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumHosts(); got != 64 {
		t.Errorf("4-ary-3-tree hosts = %d, want 64", got)
	}
	if !g.IsXGFT() {
		t.Errorf("k-ary-n-tree must be an XGFT")
	}
	if !g.ConstantCBB() {
		t.Errorf("k-ary-n-tree must keep constant CBB")
	}
	if _, err := KAryNTree(0, 3); err == nil {
		t.Errorf("KAryNTree(0,3) should fail")
	}
}

func TestRLFT2Constructions(t *testing.T) {
	// leaves=2K degenerates to the maximal tree (p=1).
	g, err := RLFT2(18, 36)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumHosts(); got != 648 {
		t.Errorf("RLFT2(18,36) hosts = %d, want 648", got)
	}
	if k, ok := g.IsRLFT(); !ok || k != 18 {
		t.Errorf("RLFT2(18,36) IsRLFT = (%d,%v), want (18,true)", k, ok)
	}
	// leaves=18 matches Cluster324.
	g, err = RLFT2(18, 18)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != Cluster324.String() {
		t.Errorf("RLFT2(18,18) = %v, want %v", g, Cluster324)
	}
	// Invalid shapes.
	if _, err := RLFT2(18, 37); err == nil {
		t.Errorf("leaves > 2K should fail")
	}
	if _, err := RLFT2(18, 5); err == nil {
		t.Errorf("leaves not dividing 2K should fail")
	}
}

func TestRLFT3Constructions(t *testing.T) {
	g, err := RLFT3(18, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != Cluster1944.String() {
		t.Errorf("RLFT3(18,6) = %v, want %v", g, Cluster1944)
	}
	g, err = RLFT3(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != Cluster1728.String() {
		t.Errorf("RLFT3(12,12) = %v, want %v", g, Cluster1728)
	}
	if _, err := RLFT3(18, 7); err == nil {
		t.Errorf("groups not dividing 2K should fail")
	}
}

func TestArityRejectsIrregular(t *testing.T) {
	// Leaf has 4 down + 4 up, but second level has 4 down + 8 up: not
	// constant radix.
	g := MustPGFT(3, []int{4, 4, 8}, []int{1, 4, 8}, []int{1, 1, 1})
	if _, ok := g.Arity(); ok {
		t.Errorf("%v should not have constant arity", g)
	}
}

func TestHostDigitRoundTrip(t *testing.T) {
	g := Cluster1944
	for _, j := range []int{0, 1, 17, 18, 323, 324, 1000, 1943} {
		// Reconstruct j from its digits.
		got := 0
		mul := 1
		for i := 1; i <= g.H; i++ {
			got += g.HostDigit(j, i) * mul
			mul *= g.Mi(i)
		}
		if got != j {
			t.Errorf("digit round-trip of %d gave %d", j, got)
		}
	}
}

func TestStringNotation(t *testing.T) {
	g := Cluster324
	want := "PGFT(2;18,18;1,9;1,2)"
	if got := g.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestAllocationGranule(t *testing.T) {
	cases := []struct {
		g    PGFT
		want int
	}{
		{Cluster128, 8},    // prod(w)=8, p2=1
		{Cluster324, 18},   // prod(w)=9, p2=2
		{Cluster1728, 144}, // prod(w)=72, p3=2
		{Cluster1944, 324}, // prod(w)=54, p3=6
	}
	for _, tc := range cases {
		if got := tc.g.AllocationGranule(); got != tc.want {
			t.Errorf("%v granule = %d, want %d", tc.g, got, tc.want)
		}
	}
	// The paper's Section V example: the maximal 3-level 36-port tree
	// admits congestion-free sub-allocations in multiples of 324.
	g, err := MaximalRLFT(3, 18)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.AllocationGranule(); got != 324 {
		t.Errorf("maximal RLFT(3,18) granule = %d, want 324 (the paper's sub-allocation unit)", got)
	}
}
