package topo

// HostDigit returns digit position i (1-based) of host index j in the m
// mixed radix: a_i = (j / prod_{k<i} m_k) mod m_i.
func (g PGFT) HostDigit(j, i int) int {
	return (j / g.MProd(i-1)) % g.Mi(i)
}

// IsDescendantHost reports whether host j lies in the sub-tree under the
// switch sw: all of j's m-radix digits above sw's level must match the
// switch's digits.
func (t *Topology) IsDescendantHost(sw *Node, j int) bool {
	for i := sw.Level + 1; i <= t.Spec.H; i++ {
		if t.Spec.HostDigit(j, i) != sw.Digits[i-1] {
			return false
		}
	}
	return true
}

// LeafOf returns the leaf switch (level 1) host j attaches to, assuming
// the single-uplink RLFT restriction (w_1 == 1). With w_1 > 1 it returns
// the parent with digit 0.
func (t *Topology) LeafOf(j int) *Node {
	h := t.Host(j)
	up := t.Ports[h.Up[0]]
	return &t.Nodes[t.Ports[t.PeerPort(up.ID)].Node]
}

// LCALevel returns the level of the lowest common ancestor sub-tree of
// hosts a and b: the smallest l such that all digits above l agree (so
// traffic between them must climb exactly to level l). Returns 0 when
// a == b.
func (g PGFT) LCALevel(a, b int) int {
	if a == b {
		return 0
	}
	l := g.H
	for l > 1 {
		// Check whether digits at positions l..H all agree; walking
		// down from the top, the first disagreement pins the level.
		if g.HostDigit(a, l) != g.HostDigit(b, l) {
			return l
		}
		l--
	}
	return 1
}

// HostsUnder returns the host indices in the sub-tree below sw, in
// ascending index order.
func (t *Topology) HostsUnder(sw *Node) []int {
	if sw.Kind == Host {
		return []int{sw.Index}
	}
	below := t.Spec.MProd(sw.Level)
	base := 0
	mul := t.Spec.MProd(sw.Level)
	for i := sw.Level + 1; i <= t.Spec.H; i++ {
		base += sw.Digits[i-1] * mul
		mul *= t.Spec.Mi(i)
	}
	hosts := make([]int, below)
	for k := 0; k < below; k++ {
		hosts[k] = base + k
	}
	return hosts
}

// ParentsOf returns the distinct parent node IDs of n (each reachable via
// p_{l+1} parallel links), in parent digit order.
func (t *Topology) ParentsOf(n *Node) []NodeID {
	if n.Level >= t.Spec.H {
		return nil
	}
	w := t.Spec.Wi(n.Level + 1)
	out := make([]NodeID, 0, w)
	seen := make(map[NodeID]bool, w)
	for _, pid := range n.Up {
		peer := t.Ports[t.PeerPort(pid)].Node
		if !seen[peer] {
			seen[peer] = true
			out = append(out, peer)
		}
	}
	return out
}

// ChildrenOf returns the distinct child node IDs of n, in child digit
// order.
func (t *Topology) ChildrenOf(n *Node) []NodeID {
	if n.Level == 0 {
		return nil
	}
	m := t.Spec.Mi(n.Level)
	out := make([]NodeID, 0, m)
	seen := make(map[NodeID]bool, m)
	for _, pid := range n.Down {
		peer := t.Ports[t.PeerPort(pid)].Node
		if !seen[peer] {
			seen[peer] = true
			out = append(out, peer)
		}
	}
	return out
}

// UpPortTo returns the up-going port numbers on n that reach the parent
// with digit b at position level+1 (one per parallel link, ascending).
func (t *Topology) UpPortTo(n *Node, parentDigit int) []int {
	w := t.Spec.Wi(n.Level + 1)
	p := t.Spec.Pi(n.Level + 1)
	out := make([]int, 0, p)
	for k := 0; k < p; k++ {
		out = append(out, parentDigit+k*w)
	}
	return out
}

// Diameter returns the maximum hop count between two end-ports: up to
// the roots and back down.
func (g PGFT) Diameter() int { return 2 * g.H }

// BisectionLinks returns the number of cables crossing into the top
// level — on a constant-CBB tree this equals the host count, the
// "full bisection" property marketing sheets quote.
func (g PGFT) BisectionLinks() int {
	if g.H < 2 {
		return 0
	}
	return g.NumSwitches(g.H-1) * g.UpPorts(g.H-1)
}

// LinksAtLevel counts the cables joining levels l-1 and l.
func (t *Topology) LinksAtLevel(l int) int {
	n := 0
	for i := range t.Links {
		if t.Links[i].Level == l {
			n++
		}
	}
	return n
}
