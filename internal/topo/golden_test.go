package topo

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenTopologyFile(t *testing.T) {
	tp := MustBuild(MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	var buf bytes.Buffer
	if _, err := tp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fig4b.topo")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("topology serialization changed; run with -update if intentional")
	}
	// The golden file must parse back into the same spec.
	got, err := Parse(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.String() != tp.Spec.String() {
		t.Errorf("golden parses to %v, want %v", got.Spec, tp.Spec)
	}
}
