package topo

import "fmt"

// Topology is a fully wired PGFT instance.
type Topology struct {
	Spec  PGFT
	Nodes []Node
	Ports []Port
	Links []Link
	// ByLevel[l] lists node IDs at level l in Index order
	// (ByLevel[0] are the hosts).
	ByLevel [][]NodeID
}

// Build constructs the node/port/link graph for the spec following the
// PGFT connection rules of Section IV.B: ports (l, a, q) and (l+1, b, r)
// are connected iff a and b agree on every digit except position l+1, and
// the k-th of the p_{l+1} parallel links joins up-going port
// q = b_{l+1} + k*w_{l+1} to down-going port r = a_{l+1} + k*m_{l+1}.
func Build(spec PGFT) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{Spec: spec}
	t.ByLevel = make([][]NodeID, spec.H+1)

	// Create nodes level by level, hosts first.
	for l := 0; l <= spec.H; l++ {
		count := t.levelCount(l)
		t.ByLevel[l] = make([]NodeID, count)
		for idx := 0; idx < count; idx++ {
			kind := Switch
			if l == 0 {
				kind = Host
			}
			id := NodeID(len(t.Nodes))
			n := Node{
				ID:     id,
				Kind:   kind,
				Level:  l,
				Digits: t.digitsOf(l, idx),
				Index:  idx,
			}
			// Allocate ports.
			nUp := spec.UpPorts(l)
			nDown := 0
			if l > 0 {
				nDown = spec.DownPorts(l)
			}
			n.Up = make([]PortID, nUp)
			n.Down = make([]PortID, nDown)
			for q := 0; q < nUp; q++ {
				pid := PortID(len(t.Ports))
				t.Ports = append(t.Ports, Port{ID: pid, Node: id, Dir: Up, Num: q, Link: None})
				n.Up[q] = pid
			}
			for r := 0; r < nDown; r++ {
				pid := PortID(len(t.Ports))
				t.Ports = append(t.Ports, Port{ID: pid, Node: id, Dir: Down, Num: r, Link: None})
				n.Down[r] = pid
			}
			t.Nodes = append(t.Nodes, n)
			t.ByLevel[l][idx] = id
		}
	}

	// Wire links bottom-up.
	for l := 0; l < spec.H; l++ {
		wUp := spec.Wi(l + 1)
		pUp := spec.Pi(l + 1)
		mUp := spec.Mi(l + 1)
		for _, aid := range t.ByLevel[l] {
			a := &t.Nodes[aid]
			for q := 0; q < wUp*pUp; q++ {
				b := q % wUp          // parent digit at position l+1
				k := q / wUp          // parallel copy
				aDigit := a.Digits[l] // a_{l+1}: A's digit at position l+1 (0-based slot l)
				// Parent digits: copy of A's with position l+1 set to b.
				pd := append([]int(nil), a.Digits...)
				pd[l] = b
				pidx := t.indexOf(l+1, pd)
				bid := t.ByLevel[l+1][pidx]
				bn := &t.Nodes[bid]
				r := aDigit + k*mUp
				lid := LinkID(len(t.Links))
				lower := a.Up[q]
				upper := bn.Down[r]
				if t.Ports[lower].Link != None {
					return nil, fmt.Errorf("topo: up port %v of %v wired twice", q, a)
				}
				if t.Ports[upper].Link != None {
					return nil, fmt.Errorf("topo: down port %v of %v wired twice", r, bn)
				}
				t.Links = append(t.Links, Link{ID: lid, Lower: lower, Upper: upper, Level: l + 1})
				t.Ports[lower].Link = lid
				t.Ports[upper].Link = lid
			}
		}
	}

	// Every port must be connected.
	for i := range t.Ports {
		if t.Ports[i].Link == None {
			n := &t.Nodes[t.Ports[i].Node]
			return nil, fmt.Errorf("topo: %s port %d of %v left unconnected", t.Ports[i].Dir, t.Ports[i].Num, n)
		}
	}
	return t, nil
}

// MustBuild is Build that panics on error; for tests and fixed specs.
func MustBuild(spec PGFT) *Topology {
	t, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// levelCount returns the number of nodes at level l.
func (t *Topology) levelCount(l int) int {
	if l == 0 {
		return t.Spec.NumHosts()
	}
	return t.Spec.NumSwitches(l)
}

// radixAt returns the range of digit position i (1-based) for a node at
// level l: w_i when i <= l, m_i when i > l.
func (t *Topology) radixAt(l, i int) int {
	if i <= l {
		return t.Spec.Wi(i)
	}
	return t.Spec.Mi(i)
}

// digitsOf decodes a level-l node's linear index into its digit vector
// (little-endian mixed radix).
func (t *Topology) digitsOf(l, idx int) []int {
	d := make([]int, t.Spec.H)
	for i := 1; i <= t.Spec.H; i++ {
		r := t.radixAt(l, i)
		d[i-1] = idx % r
		idx /= r
	}
	return d
}

// indexOf encodes a digit vector back into the linear index at level l.
func (t *Topology) indexOf(l int, digits []int) int {
	idx := 0
	mul := 1
	for i := 1; i <= t.Spec.H; i++ {
		idx += digits[i-1] * mul
		mul *= t.radixAt(l, i)
	}
	return idx
}

// NumHosts returns the number of end-ports.
func (t *Topology) NumHosts() int { return len(t.ByLevel[0]) }

// HostID returns the node ID of host j (its canonical end-port index).
func (t *Topology) HostID(j int) NodeID { return t.ByLevel[0][j] }

// Host returns host j.
func (t *Topology) Host(j int) *Node { return &t.Nodes[t.ByLevel[0][j]] }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node { return &t.Nodes[id] }

// SwitchAt returns the switch with the given level (1-based) and level
// index.
func (t *Topology) SwitchAt(level, idx int) *Node {
	return &t.Nodes[t.ByLevel[level][idx]]
}

// PeerPort returns the port on the far side of p's link.
func (t *Topology) PeerPort(p PortID) PortID {
	lk := &t.Links[t.Ports[p].Link]
	if lk.Lower == p {
		return lk.Upper
	}
	return lk.Lower
}

// PeerNode returns the node on the far side of p's link.
func (t *Topology) PeerNode(p PortID) NodeID {
	return t.Ports[t.PeerPort(p)].Node
}

// LinkOf returns the link attached to port p.
func (t *Topology) LinkOf(p PortID) *Link { return &t.Links[t.Ports[p].Link] }
