package topo

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"324", "1944", "pgft:2;18,18;1,9;1,2", "rlft2:18,18", "rlft3:18,6",
		"max:3,18", "kary:4,3", "pgft:1;8;1;1", "", "pgft:", "bogus:1,2",
		"pgft:2;4,4;1,2", "pgft:99;1;1;1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseSpec(s)
		if err != nil {
			return
		}
		// Any accepted spec must validate and produce sane counts.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails validation: %v", s, err)
		}
		if g.NumHosts() < 1 {
			t.Fatalf("accepted spec %q has %d hosts", s, g.NumHosts())
		}
		// Keep the builder off absurdly large accepted specs.
		if g.NumHosts() > 5000 || g.TotalSwitches() > 5000 {
			return
		}
		tp, err := Build(g)
		if err != nil {
			t.Fatalf("accepted spec %q does not build: %v", s, err)
		}
		for i := range tp.Ports {
			if tp.Ports[i].Link == None {
				t.Fatalf("spec %q built with unconnected port", s)
			}
		}
	})
}

func FuzzParseTopologyFile(f *testing.F) {
	// Seed with a real round-trip and a few corruptions.
	tp := MustBuild(MustPGFT(2, []int{2, 2}, []int{1, 2}, []int{1, 1}))
	var buf bytes.Buffer
	if _, err := tp.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("pgft h=1 m=4 w=1 p=1\n")
	f.Add("pgft h=1 m=4 w=1 p=1\nlink L0:0/u0 L1:0/d0\n")
	f.Add("# comment only\n")
	f.Add("pgft h=2 m=4,4 w=1,2 p=1,2\nlink L9:9/u9 L9:9/d9\n")
	f.Fuzz(func(t *testing.T, s string) {
		// Must never panic; on success the topology must be coherent.
		got, err := Parse(strings.NewReader(s))
		if err != nil {
			return
		}
		if got.NumHosts() < 1 {
			t.Fatalf("parsed topology with %d hosts", got.NumHosts())
		}
		if len(got.Links) == 0 && got.Spec.H > 0 && got.NumHosts() > 0 {
			t.Fatalf("parsed topology with no links")
		}
	})
}
