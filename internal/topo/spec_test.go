package topo

import "testing"

func TestParseSpecNamed(t *testing.T) {
	for name, want := range map[string]PGFT{
		"128": Cluster128, "324": Cluster324, "1728": Cluster1728, "1944": Cluster1944,
	} {
		got, err := ParseSpec(name)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", name, err)
			continue
		}
		if got.String() != want.String() {
			t.Errorf("ParseSpec(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseSpecForms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"pgft:2;4,4;1,2;1,2", "PGFT(2;4,4;1,2;1,2)"},
		{"rlft2:18,18", Cluster324.String()},
		{"rlft3:18,6", Cluster1944.String()},
		{"max:3,18", "PGFT(3;18,18,36;1,18,18;1,1,1)"},
		{"kary:4,2", "PGFT(2;4,4;1,4;1,1)"},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("ParseSpec(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "bogus", "pgft:", "pgft:2;4,4;1,2", "pgft:x;4;1;1",
		"pgft:1;a;1;1", "pgft:1;4;b;1", "pgft:1;4;1;c",
		"rlft2:18", "rlft2:18,5", "rlft3:18,x", "max:0,4", "kary:0,1",
		"frob:1,2", "pgft:2;4;1,2;1,2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
