package topo

import (
	"testing"
	"testing/quick"
)

func TestLeafOf(t *testing.T) {
	tp := MustBuild(Cluster324)
	for j := 0; j < tp.NumHosts(); j++ {
		leaf := tp.LeafOf(j)
		if leaf.Level != 1 {
			t.Fatalf("leaf of %d at level %d", j, leaf.Level)
		}
		if want := j / 18; leaf.Index != want {
			t.Errorf("leaf of host %d = %d, want %d", j, leaf.Index, want)
		}
	}
}

func TestIsDescendantHost(t *testing.T) {
	tp := MustBuild(Cluster1944)
	// Every host is a descendant of its own leaf and of all top
	// switches' subtrees only when digits agree.
	for _, j := range []int{0, 17, 18, 323, 324, 1943} {
		leaf := tp.LeafOf(j)
		if !tp.IsDescendantHost(leaf, j) {
			t.Errorf("host %d should descend from its leaf %v", j, leaf)
		}
		other := tp.LeafOf((j + 18) % tp.NumHosts())
		if tp.IsDescendantHost(other, j) {
			t.Errorf("host %d should not descend from leaf %v", j, other)
		}
	}
	// Top-level switches cover everything.
	for _, sid := range tp.ByLevel[tp.Spec.H] {
		sw := tp.Node(sid)
		for _, j := range []int{0, 971, 1943} {
			if !tp.IsDescendantHost(sw, j) {
				t.Errorf("top switch %v should cover host %d", sw, j)
			}
		}
	}
}

func TestHostsUnder(t *testing.T) {
	tp := MustBuild(Cluster1728)
	// A level-2 switch covers m1*m2 = 144 contiguous hosts.
	sw := tp.SwitchAt(2, 0)
	hosts := tp.HostsUnder(sw)
	if len(hosts) != 144 {
		t.Fatalf("level-2 subtree size = %d, want 144", len(hosts))
	}
	for i, h := range hosts {
		if h != i {
			t.Fatalf("hosts under first level-2 switch = %v..., want 0..143", hosts[:i+1])
		}
		if !tp.IsDescendantHost(sw, h) {
			t.Fatalf("HostsUnder returned non-descendant %d", h)
		}
	}
	// Spot-check a later subtree: switch with digit d3=5 covers
	// [720, 864).
	var sw5 *Node
	for _, sid := range tp.ByLevel[2] {
		n := tp.Node(sid)
		if n.Digits[2] == 5 && n.Digits[0] == 0 && n.Digits[1] == 0 {
			sw5 = n
			break
		}
	}
	if sw5 == nil {
		t.Fatal("no level-2 switch with digits (0,0,5)")
	}
	h5 := tp.HostsUnder(sw5)
	if h5[0] != 720 || h5[len(h5)-1] != 863 {
		t.Errorf("subtree (0,0,5) spans [%d,%d], want [720,863]", h5[0], h5[len(h5)-1])
	}
}

func TestLCALevel(t *testing.T) {
	g := Cluster1944 // m = 18, 18, 6
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},     // same leaf
		{0, 17, 1},    // same leaf
		{0, 18, 2},    // same level-2 subtree, different leaves
		{0, 323, 2},   // last host of the first level-2 subtree
		{0, 324, 3},   // different level-2 subtree
		{0, 1943, 3},  //
		{324, 340, 1}, // both in leaf 18
		{324, 647, 2}, // within second level-2 subtree
	}
	for _, tc := range cases {
		if got := g.LCALevel(tc.a, tc.b); got != tc.want {
			t.Errorf("LCALevel(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLCALevelSymmetricQuick(t *testing.T) {
	g := Cluster1728
	n := g.NumHosts()
	f := func(a, b uint16) bool {
		x, y := int(a)%n, int(b)%n
		return g.LCALevel(x, y) == g.LCALevel(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParentsChildren(t *testing.T) {
	tp := MustBuild(Cluster324)
	leaf := tp.SwitchAt(1, 3)
	parents := tp.ParentsOf(leaf)
	if len(parents) != 9 {
		t.Fatalf("leaf parents = %d, want 9 distinct spines", len(parents))
	}
	for _, pid := range parents {
		sp := tp.Node(pid)
		if sp.Level != 2 {
			t.Errorf("parent %v not at level 2", sp)
		}
		kids := tp.ChildrenOf(sp)
		if len(kids) != 18 {
			t.Errorf("spine %v children = %d, want 18", sp, len(kids))
		}
		found := false
		for _, k := range kids {
			if k == leaf.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("spine %v missing child leaf %v", sp, leaf)
		}
	}
	host := tp.Host(40)
	if got := tp.ParentsOf(host); len(got) != 1 {
		t.Errorf("host parents = %d, want 1", len(got))
	}
	if got := tp.ChildrenOf(host); got != nil {
		t.Errorf("host children = %v, want nil", got)
	}
	top := tp.SwitchAt(2, 0)
	if got := tp.ParentsOf(top); got != nil {
		t.Errorf("top switch parents = %v, want nil", got)
	}
}

func TestUpPortTo(t *testing.T) {
	tp := MustBuild(Cluster324)
	leaf := tp.SwitchAt(1, 0)
	// w2=9, p2=2: parent digit 4 is reachable via up ports 4 and 13.
	ports := tp.UpPortTo(leaf, 4)
	if len(ports) != 2 || ports[0] != 4 || ports[1] != 13 {
		t.Fatalf("UpPortTo(leaf,4) = %v, want [4 13]", ports)
	}
	for _, q := range ports {
		peer := tp.Node(tp.PeerNode(leaf.Up[q]))
		if peer.Digits[1] != 4 {
			t.Errorf("up port %d reaches parent digit %d, want 4", q, peer.Digits[1])
		}
	}
}

func TestPeerPortInvolution(t *testing.T) {
	tp := MustBuild(Cluster128)
	for i := range tp.Ports {
		p := PortID(i)
		if got := tp.PeerPort(tp.PeerPort(p)); got != p {
			t.Fatalf("PeerPort not an involution at %d", i)
		}
	}
}

func TestDiameterAndBisection(t *testing.T) {
	if got := Cluster324.Diameter(); got != 4 {
		t.Errorf("324 diameter = %d, want 4", got)
	}
	if got := Cluster1944.Diameter(); got != 6 {
		t.Errorf("1944 diameter = %d, want 6", got)
	}
	// Constant CBB: bisection links equal the host count.
	for _, g := range []PGFT{Cluster128, Cluster324, Cluster1728, Cluster1944} {
		if got := g.BisectionLinks(); got != g.NumHosts() {
			t.Errorf("%v bisection links = %d, want %d (full bisection)", g, got, g.NumHosts())
		}
	}
	// A tapered tree has fewer.
	tapered := MustPGFT(2, []int{24, 12}, []int{1, 12}, []int{1, 1})
	if got := tapered.BisectionLinks(); got != tapered.NumHosts()/2 {
		t.Errorf("2:1 taper bisection = %d, want %d", got, tapered.NumHosts()/2)
	}
	if got := MustPGFT(1, []int{8}, []int{1}, []int{1}).BisectionLinks(); got != 0 {
		t.Errorf("single level bisection = %d, want 0", got)
	}
}

func TestLinksAtLevel(t *testing.T) {
	tp := MustBuild(Cluster324)
	if got := tp.LinksAtLevel(1); got != 324 {
		t.Errorf("host links = %d, want 324", got)
	}
	if got := tp.LinksAtLevel(2); got != 324 {
		t.Errorf("fabric links = %d, want 324", got)
	}
	if tp.LinksAtLevel(1)+tp.LinksAtLevel(2) != len(tp.Links) {
		t.Error("level link counts do not cover all links")
	}
}
