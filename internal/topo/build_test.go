package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkWiring verifies the structural invariants every built PGFT must
// satisfy.
func checkWiring(t *testing.T, tp *Topology) {
	t.Helper()
	g := tp.Spec
	// Node counts per level.
	if got := len(tp.ByLevel[0]); got != g.NumHosts() {
		t.Errorf("%v: hosts = %d, want %d", g, got, g.NumHosts())
	}
	for l := 1; l <= g.H; l++ {
		if got := len(tp.ByLevel[l]); got != g.NumSwitches(l) {
			t.Errorf("%v: level %d switches = %d, want %d", g, l, got, g.NumSwitches(l))
		}
	}
	// Port counts per node and full connectivity.
	for i := range tp.Nodes {
		n := &tp.Nodes[i]
		if got := len(n.Up); got != g.UpPorts(n.Level) {
			t.Errorf("%v: %v up ports = %d, want %d", g, n, got, g.UpPorts(n.Level))
		}
		wantDown := 0
		if n.Level > 0 {
			wantDown = g.DownPorts(n.Level)
		}
		if got := len(n.Down); got != wantDown {
			t.Errorf("%v: %v down ports = %d, want %d", g, n, got, wantDown)
		}
	}
	for i := range tp.Ports {
		if tp.Ports[i].Link == None {
			t.Errorf("%v: port %d unconnected", g, i)
		}
	}
	// Links join adjacent levels, lower-up to upper-down, and each link
	// is referenced by exactly its two ports.
	refs := make(map[LinkID]int)
	for i := range tp.Ports {
		refs[tp.Ports[i].Link]++
	}
	for i := range tp.Links {
		lk := &tp.Links[i]
		lo := &tp.Ports[lk.Lower]
		up := &tp.Ports[lk.Upper]
		if lo.Dir != Up || up.Dir != Down {
			t.Errorf("%v: link %d directions wrong", g, i)
		}
		ln := &tp.Nodes[lo.Node]
		un := &tp.Nodes[up.Node]
		if un.Level != ln.Level+1 {
			t.Errorf("%v: link %d joins levels %d and %d", g, i, ln.Level, un.Level)
		}
		if refs[lk.ID] != 2 {
			t.Errorf("%v: link %d referenced by %d ports, want 2", g, i, refs[lk.ID])
		}
	}
	// The k-th parallel connection rule: up port q on node a reaches the
	// parent whose digit at position l+1 is q mod w, on its down port
	// a.Digits[l] + (q/w)*m.
	for i := range tp.Nodes {
		a := &tp.Nodes[i]
		if a.Level == g.H {
			continue
		}
		w := g.Wi(a.Level + 1)
		m := g.Mi(a.Level + 1)
		for q, pid := range a.Up {
			peer := &tp.Ports[tp.PeerPort(pid)]
			parent := &tp.Nodes[peer.Node]
			if parent.Digits[a.Level] != q%w {
				t.Fatalf("%v: %v up port %d reaches parent digit %d, want %d",
					g, a, q, parent.Digits[a.Level], q%w)
			}
			wantR := a.Digits[a.Level] + (q/w)*m
			if peer.Num != wantR {
				t.Fatalf("%v: %v up port %d lands on down port %d, want %d",
					g, a, q, peer.Num, wantR)
			}
			// All non-(l+1) digits must agree.
			for d := 0; d < g.H; d++ {
				if d == a.Level {
					continue
				}
				if parent.Digits[d] != a.Digits[d] {
					t.Fatalf("%v: %v connected to non-matching parent %v (digit %d)",
						g, a, parent, d+1)
				}
			}
		}
	}
}

func TestBuildFigure4b(t *testing.T) {
	tp := MustBuild(MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	checkWiring(t, tp)
	if got := len(tp.Links); got != 16+16 {
		t.Errorf("links = %d, want 32 (16 host + 16 fabric)", got)
	}
	// Each of the 2 spines must reach each leaf over exactly 2 parallel
	// links.
	for _, sid := range tp.ByLevel[2] {
		sp := tp.Node(sid)
		seen := make(map[NodeID]int)
		for _, pid := range sp.Down {
			seen[tp.PeerNode(pid)]++
		}
		if len(seen) != 4 {
			t.Errorf("spine %v reaches %d leaves, want 4", sp, len(seen))
		}
		for leaf, c := range seen {
			if c != 2 {
				t.Errorf("spine %v reaches leaf %v over %d links, want 2", sp, tp.Node(leaf), c)
			}
		}
	}
}

func TestBuildPaperClusters(t *testing.T) {
	for _, g := range []PGFT{Cluster128, Cluster324, Cluster1728, Cluster1944} {
		tp, err := Build(g)
		if err != nil {
			t.Fatalf("Build(%v): %v", g, err)
		}
		checkWiring(t, tp)
	}
}

func TestBuildSingleLevel(t *testing.T) {
	// A single crossbar with 8 hosts.
	tp := MustBuild(MustPGFT(1, []int{8}, []int{1}, []int{1}))
	checkWiring(t, tp)
	if len(tp.ByLevel[1]) != 1 {
		t.Fatalf("want exactly one switch, got %d", len(tp.ByLevel[1]))
	}
	if got := len(tp.Links); got != 8 {
		t.Errorf("links = %d, want 8", got)
	}
}

// randomSpec draws a small random PGFT for property testing.
func randomSpec(r *rand.Rand) PGFT {
	h := 1 + r.Intn(3)
	m := make([]int, h)
	w := make([]int, h)
	p := make([]int, h)
	for i := 0; i < h; i++ {
		m[i] = 1 + r.Intn(4)
		w[i] = 1 + r.Intn(3)
		p[i] = 1 + r.Intn(2)
	}
	w[0] = 1 // keep graphs small and host-uplink-like
	return MustPGFT(h, m, w, p)
}

func TestBuildPropertyRandomSpecs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		g := randomSpec(r)
		tp, err := Build(g)
		if err != nil {
			t.Fatalf("Build(%v): %v", g, err)
		}
		checkWiring(t, tp)
	}
}

func TestDigitsIndexRoundTripQuick(t *testing.T) {
	tp := MustBuild(Cluster324)
	f := func(raw uint16, lvl uint8) bool {
		l := int(lvl) % (tp.Spec.H + 1)
		idx := int(raw) % tp.levelCount(l)
		d := tp.digitsOf(l, idx)
		return tp.indexOf(l, d) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNodeIndexMatchesPosition(t *testing.T) {
	tp := MustBuild(Cluster1728)
	for l := 0; l <= tp.Spec.H; l++ {
		for i, id := range tp.ByLevel[l] {
			n := tp.Node(id)
			if n.Index != i || n.Level != l {
				t.Fatalf("node %v filed under level %d pos %d", n, l, i)
			}
		}
	}
}

func TestHostLinearIndexIsMixedRadix(t *testing.T) {
	tp := MustBuild(Cluster1944)
	g := tp.Spec
	for _, j := range []int{0, 1, 18, 19, 324, 1943} {
		h := tp.Host(j)
		for i := 1; i <= g.H; i++ {
			if h.Digits[i-1] != g.HostDigit(j, i) {
				t.Errorf("host %d digit %d = %d, want %d", j, i, h.Digits[i-1], g.HostDigit(j, i))
			}
		}
	}
}
