package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec turns a command-line topology description into a PGFT.
// Accepted forms:
//
//	128 | 324 | 1728 | 1944          — the paper's named clusters
//	pgft:h;m1,..,mh;w1,..,wh;p1,..,ph — explicit tuple
//	rlft2:K,leaves                   — two-level RLFT builder
//	rlft3:K,groups                   — three-level RLFT builder
//	max:h,K                          — maximal h-level RLFT of 2K-port switches
//	kary:k,n                         — k-ary-n-tree
//	PGFT(h;m1,..,mh;w1,..,wh;p1,..,ph) — the canonical String() form, so
//	every tuple a report or verdict prints parses back unchanged
func ParseSpec(s string) (PGFT, error) {
	switch s {
	case "128":
		return Cluster128, nil
	case "324":
		return Cluster324, nil
	case "1728":
		return Cluster1728, nil
	case "1944":
		return Cluster1944, nil
	}
	if inner, ok := strings.CutPrefix(s, "PGFT("); ok {
		inner, ok = strings.CutSuffix(inner, ")")
		if !ok {
			return PGFT{}, fmt.Errorf("topo: unterminated spec %q", s)
		}
		return ParseSpec("pgft:" + inner)
	}
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return PGFT{}, fmt.Errorf("topo: unrecognized spec %q (try \"324\" or \"pgft:2;18,18;1,9;1,2\")", s)
	}
	switch kind {
	case "pgft":
		parts := strings.Split(rest, ";")
		if len(parts) != 4 {
			return PGFT{}, fmt.Errorf("topo: pgft spec wants h;m;w;p, got %q", rest)
		}
		h, err := strconv.Atoi(parts[0])
		if err != nil {
			return PGFT{}, fmt.Errorf("topo: bad level count in %q: %v", s, err)
		}
		m, err := parseIntList(parts[1])
		if err != nil {
			return PGFT{}, fmt.Errorf("topo: bad m vector in %q: %v", s, err)
		}
		w, err := parseIntList(parts[2])
		if err != nil {
			return PGFT{}, fmt.Errorf("topo: bad w vector in %q: %v", s, err)
		}
		p, err := parseIntList(parts[3])
		if err != nil {
			return PGFT{}, fmt.Errorf("topo: bad p vector in %q: %v", s, err)
		}
		return NewPGFT(h, m, w, p)
	case "rlft2", "rlft3", "max", "kary":
		args, err := parseIntList(rest)
		if err != nil || len(args) != 2 {
			return PGFT{}, fmt.Errorf("topo: %s spec wants two integers, got %q", kind, rest)
		}
		switch kind {
		case "rlft2":
			return RLFT2(args[0], args[1])
		case "rlft3":
			return RLFT3(args[0], args[1])
		case "max":
			return MaximalRLFT(args[0], args[1])
		default:
			return KAryNTree(args[0], args[1])
		}
	default:
		return PGFT{}, fmt.Errorf("topo: unknown spec kind %q", kind)
	}
}
