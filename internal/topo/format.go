package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a small, ibnetdiscover-flavoured description:
//
//	pgft h=2 m=18,18 w=1,9 p=1,2
//	link L1:4/u7 L2:3/d22
//	...
//
// The header line carries the canonical tuple; each link line names the
// lower node ("L<level>:<index>" with its up port u<q>) and the upper node
// (down port d<r>). Writing always emits the full link list; parsing
// accepts a bare header (the links are reproducible from the spec) and, if
// link lines are present, verifies them against the reconstructed wiring.

// WriteTo serializes the topology.
func (t *Topology) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "pgft h=%d m=%s w=%s p=%s\n",
		t.Spec.H, intList(t.Spec.M), intList(t.Spec.W), intList(t.Spec.P))); err != nil {
		return n, err
	}
	for i := range t.Links {
		lk := &t.Links[i]
		lo := &t.Ports[lk.Lower]
		up := &t.Ports[lk.Upper]
		ln := &t.Nodes[lo.Node]
		un := &t.Nodes[up.Node]
		if err := count(fmt.Fprintf(bw, "link L%d:%d/u%d L%d:%d/d%d\n",
			ln.Level, ln.Index, lo.Num, un.Level, un.Index, up.Num)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Parse reads a topology description, rebuilds the graph from the header
// tuple and verifies any link lines against the canonical wiring.
func Parse(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var t *Topology
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "pgft":
			if t != nil {
				return nil, fmt.Errorf("topo: line %d: duplicate pgft header", lineNo)
			}
			spec, err := parseHeader(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: %v", lineNo, err)
			}
			t, err = Build(spec)
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: %v", lineNo, err)
			}
		case "link":
			if t == nil {
				return nil, fmt.Errorf("topo: line %d: link before pgft header", lineNo)
			}
			if err := t.verifyLinkLine(fields[1:]); err != nil {
				return nil, fmt.Errorf("topo: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("topo: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("topo: missing pgft header")
	}
	return t, nil
}

func parseHeader(fields []string) (PGFT, error) {
	var h int
	var m, w, p []int
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return PGFT{}, fmt.Errorf("malformed header field %q", f)
		}
		switch k {
		case "h":
			n, err := strconv.Atoi(v)
			if err != nil {
				return PGFT{}, fmt.Errorf("bad h: %v", err)
			}
			h = n
		case "m", "w", "p":
			vals, err := parseIntList(v)
			if err != nil {
				return PGFT{}, fmt.Errorf("bad %s: %v", k, err)
			}
			switch k {
			case "m":
				m = vals
			case "w":
				w = vals
			case "p":
				p = vals
			}
		default:
			return PGFT{}, fmt.Errorf("unknown header field %q", k)
		}
	}
	return NewPGFT(h, m, w, p)
}

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// verifyLinkLine checks one "L1:4/u7 L2:3/d22" pair against the built
// wiring.
func (t *Topology) verifyLinkLine(fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("link wants 2 endpoints, got %d", len(fields))
	}
	loLevel, loIdx, loDir, loPort, err := parseEndpoint(fields[0])
	if err != nil {
		return err
	}
	upLevel, upIdx, upDir, upPort, err := parseEndpoint(fields[1])
	if err != nil {
		return err
	}
	if loDir != Up || upDir != Down {
		return fmt.Errorf("link endpoints must be lower/u and upper/d")
	}
	if upLevel != loLevel+1 {
		return fmt.Errorf("link levels must be adjacent, got %d and %d", loLevel, upLevel)
	}
	if loLevel < 0 || loLevel > t.Spec.H || loIdx < 0 || loIdx >= len(t.ByLevel[loLevel]) {
		return fmt.Errorf("no node L%d:%d", loLevel, loIdx)
	}
	if upIdx < 0 || upIdx >= len(t.ByLevel[upLevel]) {
		return fmt.Errorf("no node L%d:%d", upLevel, upIdx)
	}
	lo := &t.Nodes[t.ByLevel[loLevel][loIdx]]
	up := &t.Nodes[t.ByLevel[upLevel][upIdx]]
	if loPort >= len(lo.Up) {
		return fmt.Errorf("node %v has no up port %d", lo, loPort)
	}
	if upPort >= len(up.Down) {
		return fmt.Errorf("node %v has no down port %d", up, upPort)
	}
	lp := lo.Up[loPort]
	if t.Ports[lp].Link == None {
		return fmt.Errorf("port u%d of %v unconnected", loPort, lo)
	}
	peer := t.Ports[t.PeerPort(lp)]
	if peer.Node != up.ID || peer.Num != upPort {
		return fmt.Errorf("link mismatch: u%d of %v connects to d%d of %v, file says d%d of %v",
			loPort, lo, peer.Num, &t.Nodes[peer.Node], upPort, up)
	}
	return nil
}

// parseEndpoint decodes "L1:4/u7".
func parseEndpoint(s string) (level, idx int, dir Direction, port int, err error) {
	if !strings.HasPrefix(s, "L") {
		return 0, 0, 0, 0, fmt.Errorf("malformed endpoint %q", s)
	}
	rest := s[1:]
	lvlStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("malformed endpoint %q", s)
	}
	idxStr, portStr, ok := strings.Cut(rest, "/")
	if !ok || len(portStr) < 2 {
		return 0, 0, 0, 0, fmt.Errorf("malformed endpoint %q", s)
	}
	level, err = strconv.Atoi(lvlStr)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("malformed level in %q: %v", s, err)
	}
	idx, err = strconv.Atoi(idxStr)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("malformed index in %q: %v", s, err)
	}
	switch portStr[0] {
	case 'u':
		dir = Up
	case 'd':
		dir = Down
	default:
		return 0, 0, 0, 0, fmt.Errorf("malformed port in %q", s)
	}
	port, err = strconv.Atoi(portStr[1:])
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("malformed port in %q: %v", s, err)
	}
	return level, idx, dir, port, nil
}
