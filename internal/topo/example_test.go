package topo_test

import (
	"fmt"

	"fattree/internal/topo"
)

// Build the paper's 324-node cluster and inspect its shape.
func ExampleBuild() {
	t := topo.MustBuild(topo.Cluster324)
	k, _ := t.Spec.IsRLFT()
	fmt.Println(t.Spec)
	fmt.Println("hosts:", t.NumHosts())
	fmt.Println("leaves:", t.Spec.NumSwitches(1))
	fmt.Println("spines:", t.Spec.NumSwitches(2))
	fmt.Println("arity K:", k)
	fmt.Println("allocation granule:", t.Spec.AllocationGranule())
	// Output:
	// PGFT(2;18,18;1,9;1,2)
	// hosts: 324
	// leaves: 18
	// spines: 9
	// arity K: 18
	// allocation granule: 18
}

// Parse a command-line topology spec.
func ExampleParseSpec() {
	g, err := topo.ParseSpec("rlft3:18,6")
	if err != nil {
		panic(err)
	}
	fmt.Println(g, "=", g.NumHosts(), "hosts")
	// Output:
	// PGFT(3;18,18,6;1,18,3;1,1,6) = 1944 hosts
}

// Locate a host's leaf switch and the level where two hosts' paths must
// meet.
func ExamplePGFT_LCALevel() {
	g := topo.Cluster1944
	fmt.Println("same leaf:", g.LCALevel(0, 17))
	fmt.Println("same level-2 subtree:", g.LCALevel(0, 323))
	fmt.Println("across the top:", g.LCALevel(0, 324))
	// Output:
	// same leaf: 1
	// same level-2 subtree: 2
	// across the top: 3
}
