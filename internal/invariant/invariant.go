// Package invariant is an executable catalog of the paper's correctness
// properties: every theorem, construction rule and representation
// contract of the pipeline — PGFT wiring (Section IV.B), RLFT
// restrictions (IV.C), D-Mod-K routing shape and Theorem-2 down-path
// uniqueness (Section V), collective-permutation-sequence structure
// (Section III) and the contention-freedom headline result — expressed
// as machine-checkable invariants over a concrete topology + routing +
// ordering instance.
//
// The same checks serve three callers: `go test` property sweeps over
// randomized fabrics (RandRLFT + Shrink), the fabric-manager daemon's
// snapshot validation (LenientArena), and the cmd/ftcheck CLI, which
// emits a schema-stamped fattree-check/v1 verdict for CI. Checks report
// pass/fail/skip with a structured counterexample; pair-indexed checks
// scan ascending (src, dst), so the reported counterexample is always
// the lexicographically minimal failing pair.
package invariant

import (
	"fmt"
	"strings"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// Schema stamps ftcheck verdict documents, following the repository's
// fattree-*/v1 convention. Bump /vN on breaking changes.
const Schema = "fattree-check/v1"

// Status is a check outcome.
type Status string

// The three check outcomes. Skip means the invariant's precondition
// does not hold for the instance (e.g. Theorem 2 needs constant CBB),
// so the check asserts nothing.
const (
	Pass Status = "pass"
	Fail Status = "fail"
	Skip Status = "skip"
)

// Counterexample pins a failing check to concrete evidence. All fields
// are optional; pair-level checks fill Pair with the minimal failing
// (src, dst) end-ports, contention checks add the blamed link and its
// flows, randomized sweeps add the shrunk topology tuple.
type Counterexample struct {
	// Spec is the (shrunk) topology tuple the failure reproduces on.
	Spec string `json:"spec,omitempty"`
	// Pair is the minimal failing [src, dst] end-port pair.
	Pair []int `json:"pair,omitempty"`
	// Sequence and Stage locate a failing collective stage.
	Sequence string `json:"sequence,omitempty"`
	Stage    *int   `json:"stage,omitempty"`
	// Link is the blamed link ID; Load its flow count; Flows the
	// [src, dst] end-port pairs crossing it.
	Link  *int     `json:"link,omitempty"`
	Load  int      `json:"load,omitempty"`
	Flows [][2]int `json:"flows,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Result is one check's verdict on one instance.
type Result struct {
	Name           string          `json:"name"`
	Ref            string          `json:"ref,omitempty"`
	Status         Status          `json:"status"`
	Error          string          `json:"error,omitempty"`
	SkipReason     string          `json:"skip_reason,omitempty"`
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// Check is one executable invariant. Name is dotted kind.property
// ("route.thm2-down-unique"); Ref anchors it to the paper.
type Check struct {
	Name string
	Ref  string
	Run  func(*Instance) Result
}

// Instance is the concrete system under check.
type Instance struct {
	// Topo is required.
	Topo *topo.Topology
	// Router is the routing under check; routing and contention checks
	// skip when nil.
	Router route.Router
	// Ordering is the MPI rank placement; defaults to the topology
	// order over the full cluster.
	Ordering *order.Ordering
	// Unroutable marks end-ports known to have lost their uplink; pair
	// checks require pairs touching them to be recorded as broken.
	Unroutable func(int) bool
	// Alive reports link usability (nil = every link alive); the
	// route.alive check requires served paths to avoid dead links.
	Alive func(topo.LinkID) bool
	// Sequences are the collective permutation sequences validated and
	// analyzed; defaults to the Table-2 family at cluster size.
	Sequences []cps.Sequence
}

// NewInstance builds an instance with defaults filled: topology
// ordering, all links alive, the standard CPS family.
func NewInstance(t *topo.Topology, r route.Router, o *order.Ordering) *Instance {
	in := &Instance{Topo: t, Router: r, Ordering: o}
	in.fill()
	return in
}

func (in *Instance) fill() {
	n := in.Topo.NumHosts()
	if in.Ordering == nil {
		in.Ordering = order.Topology(n, nil)
	}
	if in.Sequences == nil {
		in.Sequences = DefaultSequences(in.Topo.Spec, in.Ordering.Size())
	}
}

// DefaultSequences returns the Table-2 CPS family at job size n, plus
// the Section-VI topology-aware recursive doubling when the spec admits
// it at full cluster size.
func DefaultSequences(g topo.PGFT, n int) []cps.Sequence {
	seqs := []cps.Sequence{
		cps.Shift(n),
		cps.Ring(n),
		cps.Binomial(n),
		cps.Dissemination(n),
		cps.Tournament(n),
		cps.RecursiveDoubling(n),
		cps.RecursiveHalving(n),
	}
	if n == g.NumHosts() {
		if ta, err := cps.TopoAwareRecursiveDoubling(g.M); err == nil {
			seqs = append(seqs, ta)
		}
	}
	return seqs
}

// broken reports whether the instance's router records the pair as
// having no served path (lenient-compiled arenas over faulted fabrics).
func (in *Instance) broken(src, dst int) bool {
	if c, ok := in.Router.(*route.Compiled); ok {
		return c.Broken(src, dst)
	}
	return false
}

// unroutable is the nil-safe Unroutable predicate.
func (in *Instance) unroutable(j int) bool {
	return in.Unroutable != nil && in.Unroutable(j)
}

// Catalog returns every invariant, topology checks first. The order is
// stable; ftcheck and the docs list it verbatim.
func Catalog() []Check {
	return []Check{
		{Name: "topo.addressing", Ref: "Section IV.B", Run: checkAddressing},
		{Name: "topo.connection-rule", Ref: "Section IV.B", Run: checkConnectionRule},
		{Name: "topo.cbb", Ref: "Section IV.C restriction 1", Run: checkCBB},
		{Name: "topo.host-uplink", Ref: "Section IV.C restriction 2", Run: checkHostUplink},
		{Name: "topo.roundtrip", Ref: "file format", Run: checkRoundTrip},
		{Name: "order.bijection", Ref: "Section II", Run: checkOrderingBijection},
		{Name: "cps.permutation", Ref: "Section III", Run: checkCPSPermutation},
		{Name: "route.total", Ref: "Section V", Run: checkRouteTotal},
		{Name: "route.updown", Ref: "up*/down* deadlock freedom", Run: checkRouteUpDown},
		{Name: "route.minimal", Ref: "Section V", Run: checkRouteMinimal},
		{Name: "route.alive", Ref: "fault model", Run: checkRouteAlive},
		{Name: "route.thm2-down-unique", Ref: "Theorem 2", Run: checkThm2DownUnique},
		{Name: "route.compiled-equiv", Ref: "path cache contract", Run: checkCompiledEquiv},
		{Name: "route.lenient-broken", Ref: "path cache contract", Run: checkLenientBroken},
		{Name: "hsd.contention-free", Ref: "Theorem 1 / Section VII", Run: checkContentionFree},
		{Name: "sim.zero-stalls", Ref: "Theorem 1 vs Section II", Run: checkSimZeroStalls},
	}
}

// Select resolves a comma-separated check list: "all", exact names
// ("route.total"), or kind prefixes ("topo" selects every topo.*).
func Select(names string) ([]Check, error) {
	cat := Catalog()
	if names == "" || names == "all" {
		return cat, nil
	}
	var out []Check
	seen := make(map[string]bool)
	for _, want := range strings.Split(names, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		matched := false
		for _, c := range cat {
			if c.Name == want || strings.HasPrefix(c.Name, want+".") {
				matched = true
				if !seen[c.Name] {
					seen[c.Name] = true
					out = append(out, c)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("invariant: unknown check %q (try \"all\" or one of %s)", want, strings.Join(Names(), ", "))
		}
	}
	return out, nil
}

// Names lists the catalog's check names in order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, c := range cat {
		out[i] = c.Name
	}
	return out
}

// Report is a full verdict over one instance, stamped fattree-check/v1.
type Report struct {
	Schema   string   `json:"schema"`
	Topology string   `json:"topology"`
	Hosts    int      `json:"hosts"`
	Routing  string   `json:"routing,omitempty"`
	Ordering string   `json:"ordering,omitempty"`
	Pass     bool     `json:"pass"`
	Passed   int      `json:"passed"`
	Failed   int      `json:"failed"`
	Skipped  int      `json:"skipped"`
	Checks   []Result `json:"checks"`
}

// FailedNames returns the names of the failing checks.
func (r *Report) FailedNames() []string {
	var out []string
	for _, c := range r.Checks {
		if c.Status == Fail {
			out = append(out, c.Name)
		}
	}
	return out
}

// Run executes the checks against the instance and assembles the
// verdict. A nil or empty checks slice runs the whole catalog.
func Run(in *Instance, checks []Check) *Report {
	in.fill()
	if len(checks) == 0 {
		checks = Catalog()
	}
	rep := &Report{
		Schema:   Schema,
		Topology: in.Topo.Spec.String(),
		Hosts:    in.Topo.NumHosts(),
		Ordering: in.Ordering.Label,
	}
	if in.Router != nil {
		rep.Routing = in.Router.Label()
	}
	for _, c := range checks {
		res := c.Run(in)
		res.Name, res.Ref = c.Name, c.Ref
		switch res.Status {
		case Pass:
			rep.Passed++
		case Fail:
			rep.Failed++
		case Skip:
			rep.Skipped++
		}
		rep.Checks = append(rep.Checks, res)
	}
	rep.Pass = rep.Failed == 0
	return rep
}

// pass, failf and skipf are Result constructors for check bodies.
func pass() Result { return Result{Status: Pass} }

func failf(cx *Counterexample, format string, args ...any) Result {
	return Result{Status: Fail, Error: fmt.Sprintf(format, args...), Counterexample: cx}
}

func skipf(format string, args ...any) Result {
	return Result{Status: Skip, SkipReason: fmt.Sprintf(format, args...)}
}

func intp(v int) *int { return &v }
