package invariant

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/obs"
)

// simStageSamples bounds how many Shift stages the packet simulator
// replays for the cross-check; the analytic HSD verdict already covers
// every stage, so the simulation only needs representative coverage.
const simStageSamples = 4

// simMessageMTUs sizes the per-flow payload (in MTUs) so each stage
// pipelines several packets per flow through the fabric.
const simMessageMTUs = 6

// checkSimZeroStalls cross-validates the packet simulator against the
// analytic model: when HSD analysis declares the Shift sequence
// contention free, replaying its stages through netsim must record zero
// credit stalls (netsim_host_credit_stalls_total and
// netsim_switch_credit_stalls_total) — credit exhaustion is exactly how
// link contention manifests in virtual cut-through switching. A failure
// means the two models of the same fabric disagree.
func checkSimZeroStalls(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	g := in.Topo.Spec
	if !g.ConstantCBB() || !g.SingleHostUplink() {
		return skipf("contention freedom requires constant CBB and single host uplink; not guaranteed for %v", g)
	}
	if in.hasFaults() {
		return skipf("the zero-stall cross-check claims nothing on degraded fabrics")
	}
	seq := cps.Shift(in.Ordering.Size())
	rep, err := hsd.Analyze(in.Router, in.Ordering, seq)
	if err != nil {
		return failf(nil, "HSD analysis failed: %v", err)
	}
	if !rep.ContentionFree() {
		return skipf("HSD model reports contention (max HSD %d); the zero-stall claim covers contention-free traffic only", rep.MaxHSD())
	}
	job, err := mpi.NewJob(in.Router, in.Ordering)
	if err != nil {
		return failf(nil, "building MPI job failed: %v", err)
	}
	sampled, err := mpi.SampleStages(seq, spreadStages(seq.NumStages(), simStageSamples))
	if err != nil {
		return failf(nil, "sampling stages failed: %v", err)
	}
	reg := obs.NewRegistry()
	cfg := netsim.DefaultConfig()
	cfg.Metrics = reg
	bytes := int64(simMessageMTUs * cfg.MTU)
	st, err := job.SimulateMode(sampled, bytes, mpi.Barrier, cfg)
	if err != nil {
		return failf(nil, "simulation failed: %v", err)
	}
	hostStalls := reg.Counter("netsim_host_credit_stalls_total").Value()
	switchStalls := reg.Counter("netsim_switch_credit_stalls_total").Value()
	if hostStalls+switchStalls != 0 {
		return failf(&Counterexample{
			Sequence: seq.Name(),
			Detail: fmt.Sprintf("%d host and %d switch credit stalls over %d simulated stages (%d messages delivered)",
				hostStalls, switchStalls, sampled.NumStages(), st.MessagesDelivered),
		}, "HSD says contention free, but the packet simulator stalled on credits %d times",
			hostStalls+switchStalls)
	}
	return pass()
}

// spreadStages picks up to k stage indices spread evenly across [0, n),
// always including the first and last stage.
func spreadStages(n, k int) []int {
	if n <= k {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		idx = append(idx, i*(n-1)/(k-1))
	}
	return idx
}
