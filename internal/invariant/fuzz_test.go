package invariant

import (
	"math/rand"
	"testing"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// FuzzFaultCompileLenient drives the fault-injection → reroute →
// lenient-compile pipeline with fuzzed fault patterns and asserts the
// full routing invariant group on the result: broken-bitset consistency,
// arena/table equivalence, up*/down* shape, minimality and no dead-link
// crossings. Any violation is a real routing or compile bug.
func FuzzFaultCompileLenient(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1))
	f.Add(int64(3), uint8(3), uint8(2))
	f.Add(int64(-9), uint8(7), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, faults, topoSel uint8) {
		var g topo.PGFT
		switch topoSel % 3 {
		case 0:
			g = topo.MustPGFT(2, []int{4, 8}, []int{1, 4}, []int{1, 1}) // RLFT2(4,8)
		case 1:
			g, _ = topo.KAryNTree(2, 3)
		default:
			g = topo.MustPGFT(3, []int{2, 2, 2}, []int{1, 2, 2}, []int{1, 1, 1}) // XGFT
		}
		tp := topo.MustBuild(g)
		fs := fabric.NewFaultSet(tp)
		if err := fs.FailRandomFabricLinksRand(int(faults)%4, rand.New(rand.NewSource(seed))); err != nil {
			t.Skip()
		}
		if seed%2 == 0 {
			// Also cut one host uplink, so the unroutable-host contract
			// is exercised.
			j := int((uint64(seed) >> 1) % uint64(tp.NumHosts()))
			fs.Fail(tp.Ports[tp.Host(j).Up[0]].Link)
		}
		lft, res, err := fs.RouteAround()
		if err != nil {
			t.Fatalf("RouteAround: %v", err)
		}
		c, err := route.CompileLenient(lft)
		if err != nil {
			t.Fatalf("CompileLenient: %v", err)
		}
		unroutable := make(map[int]bool, len(res.UnroutableHosts))
		for _, j := range res.UnroutableHosts {
			unroutable[j] = true
		}
		isUnroutable := func(j int) bool { return unroutable[j] }
		if err := LenientArena(tp, c, isUnroutable); err != nil {
			t.Fatalf("LenientArena rejects the rerouted arena: %v", err)
		}
		in := NewInstance(tp, c, nil)
		in.Alive = fs.Alive
		in.Unroutable = isUnroutable
		checks, err := Select("route")
		if err != nil {
			t.Fatal(err)
		}
		if rep := Run(in, checks); !rep.Pass {
			t.Fatalf("%v with %d faults: %v", g, fs.Failed(), rep.FailedNames())
		}
	})
}
