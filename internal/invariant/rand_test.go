package invariant

import (
	"testing"

	"fattree/internal/route"
	"fattree/internal/topo"
)

// TestRandPGFTDeterministicAndValid: a seed always maps to the same
// buildable tuple.
func TestRandPGFTDeterministicAndValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := RandPGFT(seed)
		if g.String() != RandPGFT(seed).String() {
			t.Fatalf("seed %d is not deterministic", seed)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: invalid tuple %v: %v", seed, g, err)
		}
		if _, err := topo.Build(g); err != nil {
			t.Fatalf("seed %d: %v does not build: %v", seed, g, err)
		}
	}
}

// TestRandRLFTDeterministicAndReal: every draw is a genuine RLFT of
// bounded size.
func TestRandRLFTDeterministicAndReal(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := RandRLFT(seed)
		if g.String() != RandRLFT(seed).String() {
			t.Fatalf("seed %d is not deterministic", seed)
		}
		if _, ok := g.IsRLFT(); !ok {
			t.Fatalf("seed %d: %v is not an RLFT", seed, g)
		}
		if n := g.NumHosts(); n < 2 || n > 512 {
			t.Fatalf("seed %d: %v has %d hosts, want 2..512", seed, g, n)
		}
	}
}

// TestRandPGFTStructuralSweep runs the topology + structural routing
// checks (no theorem claims) over random PGFTs, including non-CBB and
// multi-uplink shapes.
func TestRandPGFTStructuralSweep(t *testing.T) {
	checks, err := Select("topo,order,cps,route.total,route.updown,route.minimal")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		g := RandPGFT(seed)
		in, err := dmodkInstance(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep := Run(in, checks); !rep.Pass {
			t.Errorf("seed %d (%v): %v", seed, g, rep.FailedNames())
		}
	}
}

// TestSweepRandomPassesOnRLFTs is the acceptance sweep at library level:
// the full catalog passes on 20 seeded random RLFTs under compiled
// D-Mod-K.
func TestSweepRandomPassesOnRLFTs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog sweep over 20 random RLFTs")
	}
	verdicts := SweepRandom(1, 20, nil, dmodkInstance)
	if len(verdicts) != 20 {
		t.Fatalf("got %d verdicts, want 20", len(verdicts))
	}
	for _, v := range verdicts {
		if v.Error != "" || !v.Pass {
			t.Errorf("seed %d (%s): pass=%v failed=%v err=%s", v.Seed, v.Spec, v.Pass, v.Failed, v.Error)
		}
	}
}

// TestSweepRandomShrinksFailingDraw: a broken routing makes the sweep
// fail, and the verdict carries a shrunk spec plus a counterexample.
func TestSweepRandomShrinksFailingDraw(t *testing.T) {
	checks, err := Select("route.thm2-down-unique,hsd.contention-free")
	if err != nil {
		t.Fatal(err)
	}
	build := func(g topo.PGFT) (*Instance, error) {
		tp, err := topo.Build(g)
		if err != nil {
			return nil, err
		}
		c, err := route.Compile(route.MinHopRandom(tp, 5))
		if err != nil {
			return nil, err
		}
		return NewInstance(tp, c, nil), nil
	}
	verdicts := SweepRandom(7, 3, checks, build)
	foundFail := false
	for _, v := range verdicts {
		if v.Pass {
			continue
		}
		foundFail = true
		if v.ShrunkSpec == "" {
			t.Errorf("seed %d failed without a shrunk spec", v.Seed)
			continue
		}
		if v.Counterexample == nil {
			t.Errorf("seed %d failed without a counterexample", v.Seed)
		}
		shrunk := mustParseSpec(t, v.ShrunkSpec)
		if shrunk.NumHosts() > mustParseSpec(t, v.Spec).NumHosts() {
			t.Errorf("seed %d: shrunk %s is larger than the draw %s", v.Seed, v.ShrunkSpec, v.Spec)
		}
	}
	if !foundFail {
		t.Fatal("minhop-random passed the theorem checks on every draw; broken-input detection is dead")
	}
}

// mustParseSpec re-parses the canonical PGFT(h;m;w;p) string. Rebuilding
// from the verdict string (not a retained struct) pins that the report
// alone is enough to reproduce.
func mustParseSpec(t *testing.T, s string) topo.PGFT {
	t.Helper()
	g, err := topo.ParseSpec(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return g
}

// TestShrinkMinimality: the shrunk tuple still fails, and no single-step
// reduction of it does — the definition of a local minimum.
func TestShrinkMinimality(t *testing.T) {
	fails := func(g topo.PGFT) bool { return g.NumHosts() >= 16 }
	g := Shrink(topo.Cluster324, fails)
	if !fails(g) {
		t.Fatalf("shrunk %v no longer fails", g)
	}
	for _, cand := range shrinkCandidates(g) {
		if cand.Validate() == nil && fails(cand) {
			t.Errorf("shrink stopped early: %v still fails", cand)
		}
	}
	if g.NumHosts() >= topo.Cluster324.NumHosts() {
		t.Errorf("shrink made no progress from %v to %v", topo.Cluster324, g)
	}
}
