package invariant

import (
	"strings"
	"testing"

	"fattree/internal/fabric"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// dmodkInstance builds the standard system under check for a spec:
// topology, compiled D-Mod-K, topology ordering.
func dmodkInstance(g topo.PGFT) (*Instance, error) {
	t, err := topo.Build(g)
	if err != nil {
		return nil, err
	}
	c, err := route.Compile(route.DModK(t))
	if err != nil {
		return nil, err
	}
	return NewInstance(t, c, nil), nil
}

func mustInstance(t *testing.T, g topo.PGFT) *Instance {
	t.Helper()
	in, err := dmodkInstance(g)
	if err != nil {
		t.Fatalf("build instance for %v: %v", g, err)
	}
	return in
}

func statusOf(rep *Report, name string) Status {
	for _, c := range rep.Checks {
		if c.Name == name {
			return c.Status
		}
	}
	return ""
}

func findResult(rep *Report, name string) Result {
	for _, c := range rep.Checks {
		if c.Name == name {
			return c
		}
	}
	return Result{}
}

// TestCatalogPassesOnKnownTopologies runs the full catalog under
// compiled D-Mod-K on the acceptance family: the paper's 324-host RLFT,
// a k-ary-n-tree, an XGFT, and a non-CBB PGFT (where the theorem checks
// must skip, not fail).
func TestCatalogPassesOnKnownTopologies(t *testing.T) {
	cases := []struct {
		name     string
		spec     topo.PGFT
		thm2     Status // expected route.thm2-down-unique status
		hsdCheck Status // expected hsd.contention-free status
	}{
		{"rlft-324", topo.Cluster324, Pass, Pass},
		{"kary-4-3", must(topo.KAryNTree(4, 3)), Pass, Pass},
		{"xgft", topo.MustPGFT(3, []int{2, 2, 2}, []int{1, 2, 2}, []int{1, 1, 1}), Pass, Pass},
		{"non-cbb-pgft", topo.MustPGFT(2, []int{4, 6}, []int{1, 2}, []int{1, 1}), Skip, Skip},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Run(mustInstance(t, tc.spec), nil)
			if !rep.Pass {
				t.Fatalf("catalog failed on %v: %v", tc.spec, rep.FailedNames())
			}
			if got := statusOf(rep, "route.thm2-down-unique"); got != tc.thm2 {
				t.Errorf("route.thm2-down-unique = %s, want %s", got, tc.thm2)
			}
			if got := statusOf(rep, "hsd.contention-free"); got != tc.hsdCheck {
				t.Errorf("hsd.contention-free = %s, want %s", got, tc.hsdCheck)
			}
			if rep.Schema != Schema {
				t.Errorf("report schema %q, want %q", rep.Schema, Schema)
			}
		})
	}
}

func must(g topo.PGFT, err error) topo.PGFT {
	if err != nil {
		panic(err)
	}
	return g
}

// TestRandomUpPortRoutingFails pins the first deliberately-broken input:
// the minhop-random baseline violates Theorem 2 and contention freedom
// on an RLFT, and the counterexamples carry concrete evidence.
func TestRandomUpPortRoutingFails(t *testing.T) {
	g := must(topo.RLFT2(4, 8))
	tp := topo.MustBuild(g)
	c, err := route.Compile(route.MinHopRandom(tp, 7))
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(NewInstance(tp, c, nil), nil)
	if rep.Pass {
		t.Fatalf("catalog passed for minhop-random on %v", g)
	}
	thm2 := findResult(rep, "route.thm2-down-unique")
	if thm2.Status != Fail {
		t.Fatalf("route.thm2-down-unique = %s, want fail", thm2.Status)
	}
	if thm2.Counterexample == nil || len(thm2.Counterexample.Pair) != 2 || thm2.Counterexample.Link == nil {
		t.Errorf("thm2 counterexample lacks pair/link evidence: %+v", thm2.Counterexample)
	}
	hsdRes := findResult(rep, "hsd.contention-free")
	if hsdRes.Status != Fail {
		t.Fatalf("hsd.contention-free = %s, want fail", hsdRes.Status)
	}
	cx := hsdRes.Counterexample
	if cx == nil || cx.Link == nil || cx.Stage == nil || cx.Load < 2 || len(cx.Flows) != cx.Load && len(cx.Flows) != maxBlameFlows {
		t.Errorf("hsd counterexample lacks blame evidence: %+v", cx)
	}
}

// TestShuffledOrderingFails pins the second broken input: a random
// ordering under correct D-Mod-K breaks contention freedom, while every
// structural routing check still passes.
func TestShuffledOrderingFails(t *testing.T) {
	g := must(topo.RLFT2(4, 8))
	tp := topo.MustBuild(g)
	c, err := route.Compile(route.DModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(NewInstance(tp, c, order.Random(tp.NumHosts(), nil, 3)), nil)
	if rep.Pass {
		t.Fatalf("catalog passed for a shuffled ordering on %v", g)
	}
	failed := rep.FailedNames()
	if len(failed) != 1 || failed[0] != "hsd.contention-free" {
		t.Fatalf("want only hsd.contention-free to fail, got %v", failed)
	}
	cx := findResult(rep, "hsd.contention-free").Counterexample
	if cx == nil || cx.Link == nil || len(cx.Flows) < 2 {
		t.Errorf("contention counterexample lacks flows: %+v", cx)
	}
}

// detourRouter replaces one same-leaf pair's path with a delivered,
// up*/down*-shaped but non-minimal detour over the leaf's first spine —
// the signature of a buggy reroute that forgot the minimality rule.
type detourRouter struct {
	route.Router
	src, dst int
}

func (d *detourRouter) Walk(src, dst int, visit func(topo.LinkID, bool)) error {
	if src != d.src || dst != d.dst {
		return d.Router.Walk(src, dst, visit)
	}
	t := d.Topology()
	leaf := t.LeafOf(src)
	srcUp := t.Ports[t.Host(src).Up[0]].Link
	leafUp := t.Ports[leaf.Up[0]].Link
	dstUp := t.Ports[t.Host(dst).Up[0]].Link
	visit(srcUp, true)
	visit(leafUp, true)
	visit(leafUp, false)
	visit(dstUp, false)
	return nil
}

// TestNonMinimalPathFails pins a delivered-but-non-minimal path: only
// route.minimal fails, naming the lexicographically first damaged pair.
func TestNonMinimalPathFails(t *testing.T) {
	g := must(topo.RLFT2(4, 8))
	tp := topo.MustBuild(g)
	rep := Run(NewInstance(tp, &detourRouter{Router: route.DModK(tp), src: 0, dst: 1}, nil), nil)
	if rep.Pass {
		t.Fatal("catalog passed for a router with a non-minimal path")
	}
	res := findResult(rep, "route.minimal")
	if res.Status != Fail {
		t.Fatalf("route.minimal = %s, want fail", res.Status)
	}
	if res.Counterexample == nil || len(res.Counterexample.Pair) != 2 ||
		res.Counterexample.Pair[0] != 0 || res.Counterexample.Pair[1] != 1 {
		t.Errorf("want minimal counterexample pair [0 1], got %+v", res.Counterexample)
	}
	if got := statusOf(rep, "route.total"); got != Pass {
		t.Errorf("route.total = %s, want pass (the detour still delivers)", got)
	}
}

// TestFaultedLinkStaleTablesFail pins the third broken input: tables
// computed before a fault keep crossing the dead link, and route.alive
// names the first pair doing so.
func TestFaultedLinkStaleTablesFail(t *testing.T) {
	g := must(topo.RLFT2(4, 8))
	tp := topo.MustBuild(g)
	c, err := route.Compile(route.DModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	fs := fabric.NewFaultSet(tp)
	// Fail one mid-tier (leaf->spine) link; stale D-Mod-K still uses it.
	var fault topo.LinkID = -1
	for i := range tp.Links {
		if tp.Node(tp.Ports[tp.Links[i].Lower].Node).Kind == topo.Switch {
			fault = topo.LinkID(i)
			break
		}
	}
	fs.Fail(fault)
	in := NewInstance(tp, c, nil)
	in.Alive = fs.Alive
	rep := Run(in, nil)
	if rep.Pass {
		t.Fatal("catalog passed for stale tables over a faulted link")
	}
	res := findResult(rep, "route.alive")
	if res.Status != Fail {
		t.Fatalf("route.alive = %s, want fail", res.Status)
	}
	if res.Counterexample == nil || res.Counterexample.Link == nil || topo.LinkID(*res.Counterexample.Link) != fault {
		t.Errorf("want dead link %d blamed, got %+v", fault, res.Counterexample)
	}
	// Theorem checks must skip (not fail) on the degraded instance.
	if got := statusOf(rep, "route.thm2-down-unique"); got != Skip {
		t.Errorf("route.thm2-down-unique = %s, want skip on faulted fabric", got)
	}
	if got := statusOf(rep, "hsd.contention-free"); got != Skip {
		t.Errorf("hsd.contention-free = %s, want skip on faulted fabric", got)
	}
}

// TestReroutedFaultPasses is the flip side: after RouteAround plus a
// lenient compile the catalog passes again (theorem checks skip), so the
// harness distinguishes stale tables from a correct repair.
func TestReroutedFaultPasses(t *testing.T) {
	g := must(topo.RLFT2(4, 8))
	tp := topo.MustBuild(g)
	fs := fabric.NewFaultSet(tp)
	if err := fs.FailRandomFabricLinks(2, 11); err != nil {
		t.Fatal(err)
	}
	lft, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	c, err := route.CompileLenient(lft)
	if err != nil {
		t.Fatal(err)
	}
	unroutable := make(map[int]bool)
	for _, j := range res.UnroutableHosts {
		unroutable[j] = true
	}
	in := NewInstance(tp, c, nil)
	in.Alive = fs.Alive
	in.Unroutable = func(j int) bool { return unroutable[j] }
	rep := Run(in, nil)
	if !rep.Pass {
		t.Fatalf("catalog failed on a correctly rerouted fabric: %v", rep.FailedNames())
	}
}

// TestLenientArena covers the shared fmgr validation helper on both a
// clean arena and one with real broken pairs from a host-uplink cut.
func TestLenientArena(t *testing.T) {
	g := must(topo.RLFT2(4, 8))
	tp := topo.MustBuild(g)
	c, err := route.CompileLenient(route.DModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	if err := LenientArena(tp, c, nil); err != nil {
		t.Fatalf("clean arena rejected: %v", err)
	}
	// An unroutable host whose pairs are NOT marked broken must be
	// rejected.
	if err := LenientArena(tp, c, func(j int) bool { return j == 3 }); err == nil {
		t.Fatal("arena accepted served pairs touching an unroutable host")
	}

	fs := fabric.NewFaultSet(tp)
	fs.Fail(tp.Links[tp.Ports[tp.Host(0).Up[0]].Link].ID)
	lft, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := route.CompileLenient(lft)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnroutableHosts) != 1 || res.UnroutableHosts[0] != 0 {
		t.Fatalf("want host 0 unroutable, got %v", res.UnroutableHosts)
	}
	if err := LenientArena(tp, cl, func(j int) bool { return j == 0 }); err != nil {
		t.Fatalf("faulted arena rejected: %v", err)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Catalog()) {
		t.Fatalf("Select(all) = %d checks, err %v", len(all), err)
	}
	topoOnly, err := Select("topo")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range topoOnly {
		if !strings.HasPrefix(c.Name, "topo.") {
			t.Errorf("Select(topo) returned %s", c.Name)
		}
	}
	if len(topoOnly) != 5 {
		t.Errorf("Select(topo) = %d checks, want 5", len(topoOnly))
	}
	mixed, err := Select("route.total, cps")
	if err != nil || len(mixed) != 2 {
		t.Fatalf("Select(route.total, cps) = %v checks, err %v", len(mixed), err)
	}
	if _, err := Select("no.such-check"); err == nil {
		t.Fatal("Select accepted an unknown check name")
	}
}

func TestOrderingBijectionHelper(t *testing.T) {
	if err := OrderingBijection(order.Topology(8, nil)); err != nil {
		t.Fatalf("topology order rejected: %v", err)
	}
	if err := OrderingBijection(order.Random(8, []int{1, 3, 5}, 2)); err != nil {
		t.Fatalf("partial random order rejected: %v", err)
	}
	bad := order.Topology(8, nil)
	bad.HostOf[2] = bad.HostOf[3] // duplicate host behind the back
	if err := OrderingBijection(bad); err == nil {
		t.Fatal("duplicate-host ordering accepted")
	}
}

func TestPermutationPairs(t *testing.T) {
	if err := PermutationPairs([][2]int{{0, 1}, {1, 2}, {2, 0}}, 3); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	for _, tc := range []struct {
		name  string
		pairs [][2]int
	}{
		{"out-of-range", [][2]int{{0, 3}}},
		{"self-flow", [][2]int{{1, 1}}},
		{"double-send", [][2]int{{0, 1}, {0, 2}}},
		{"double-receive", [][2]int{{0, 2}, {1, 2}}},
	} {
		if err := PermutationPairs(tc.pairs, 3); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
