package invariant

import (
	"fmt"

	"fattree/internal/route"
	"fattree/internal/topo"
)

// LenientArena validates a (possibly leniently) compiled path arena as a
// servable routing state: every non-broken pair's packed path must start
// at the source host, follow connected links, keep the up*/down* shape
// (the property that makes fat-tree routing deadlock free — credit
// cycles need a down-then-up turn), and end at the destination host; and
// pairs touching a host the caller knows to be unroutable must be marked
// broken, so reachability is total over what the arena claims to serve.
//
// It returns the first violation in ascending (src, dst) order, or nil.
// This is the check the fabric manager runs on every candidate snapshot
// before swapping it in; ftcheck reaches the same assertions through the
// route.* catalog checks.
func LenientArena(t *topo.Topology, c *route.Compiled, unroutable func(int) bool) error {
	n := t.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || c.Broken(src, dst) {
				continue
			}
			if unroutable != nil && (unroutable(src) || unroutable(dst)) {
				return fmt.Errorf("invariant: pair %d->%d touches an unroutable host but is not marked broken", src, dst)
			}
			path, err := c.PackedPath(src, dst)
			if err != nil {
				return err
			}
			cur := t.HostID(src)
			descending := false
			for i, e := range path {
				l := route.EntryLink(e)
				if l < 0 || int(l) >= len(t.Links) {
					return fmt.Errorf("invariant: pair %d->%d hop %d names link %d, out of range [0,%d)", src, dst, i, l, len(t.Links))
				}
				lk := &t.Links[l]
				lower, upper := t.Ports[lk.Lower].Node, t.Ports[lk.Upper].Node
				if route.EntryUp(e) {
					if descending {
						return fmt.Errorf("invariant: pair %d->%d climbs after descending at hop %d", src, dst, i)
					}
					if lower != cur {
						return fmt.Errorf("invariant: pair %d->%d hop %d does not start at the current node", src, dst, i)
					}
					cur = upper
				} else {
					descending = true
					if upper != cur {
						return fmt.Errorf("invariant: pair %d->%d hop %d does not start at the current node", src, dst, i)
					}
					cur = lower
				}
			}
			if cur != t.HostID(dst) {
				return fmt.Errorf("invariant: pair %d->%d ends at node %d, want host %d", src, dst, cur, dst)
			}
		}
	}
	return nil
}
