package invariant

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/report"
)

// checkCPSPermutation verifies the Section III structural property of
// every sequence in the instance's family: each stage is a (partial)
// permutation — ranks in range, no self flows, no rank sending or
// receiving twice.
func checkCPSPermutation(in *Instance) Result {
	for _, seq := range in.Sequences {
		if err := cps.Validate(seq); err != nil {
			return failf(&Counterexample{Sequence: seq.Name(), Detail: err.Error()},
				"sequence %q has a non-permutation stage", seq.Name())
		}
	}
	return pass()
}

// PermutationPairs checks that explicit end-port pairs form a partial
// permutation on [0, n): every endpoint in range, no self flows, no
// endpoint sending or receiving twice. It is the host-index analogue of
// cps.Validate, for traffic produced outside the CPS layer (workload
// generators, schedulers).
func PermutationPairs(pairs [][2]int, n int) error {
	srcSeen := make(map[int]int, len(pairs))
	dstSeen := make(map[int]int, len(pairs))
	for i, p := range pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return fmt.Errorf("flow %d: %d->%d out of range [0,%d)", i, p[0], p[1], n)
		}
		if p[0] == p[1] {
			return fmt.Errorf("flow %d: self flow at %d", i, p[0])
		}
		if j, dup := srcSeen[p[0]]; dup {
			return fmt.Errorf("flows %d and %d: %d sends twice", j, i, p[0])
		}
		if j, dup := dstSeen[p[1]]; dup {
			return fmt.Errorf("flows %d and %d: %d receives twice", j, i, p[1])
		}
		srcSeen[p[0]] = i
		dstSeen[p[1]] = i
	}
	return nil
}

// maxBlameFlows caps the flows attached to a contention counterexample;
// the full set is always in the blame report, the verdict only needs
// enough to identify the collision.
const maxBlameFlows = 8

// checkContentionFree verifies the headline result: under the instance's
// routing and ordering, every stage of the Shift CPS — the canonical
// superset of all unidirectional collectives (Section III) — has
// HSD = 1. The guarantee needs constant CBB, single host uplink and an
// intact fabric; the check skips otherwise. On failure the counterexample
// names the first hot stage, its worst link, and the colliding flows via
// the blame pipeline.
func checkContentionFree(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	g := in.Topo.Spec
	if !g.ConstantCBB() || !g.SingleHostUplink() {
		return skipf("contention freedom requires constant CBB and single host uplink; not guaranteed for %v", g)
	}
	if in.hasFaults() {
		return skipf("contention freedom claims nothing on degraded fabrics")
	}
	seq := cps.Shift(in.Ordering.Size())
	rep, err := hsd.Analyze(in.Router, in.Ordering, seq)
	if err != nil {
		return failf(nil, "HSD analysis failed: %v", err)
	}
	if rep.ContentionFree() {
		return pass()
	}
	blame, err := report.BuildBlame(in.Router, in.Ordering, seq)
	if err != nil {
		return failf(nil, "max HSD %d > 1, and blame attribution failed: %v", rep.MaxHSD(), err)
	}
	for _, st := range blame.Stages {
		if len(st.HotLinks) == 0 {
			continue
		}
		hl := st.HotLinks[0]
		cx := &Counterexample{
			Sequence: seq.Name(),
			Stage:    intp(st.Stage),
			Link:     intp(hl.Link),
			Load:     hl.Load,
			Detail:   fmt.Sprintf("%s %s -> %s", hl.Dir, hl.From, hl.To),
		}
		for _, f := range hl.Flows {
			if len(cx.Flows) == maxBlameFlows {
				break
			}
			cx.Flows = append(cx.Flows, [2]int{f.Src, f.Dst})
		}
		return failf(cx, "stage %d of %s drives %d flows over link %d (max HSD %d)",
			st.Stage, seq.Name(), hl.Load, hl.Link, blame.MaxHSD)
	}
	return failf(nil, "max HSD %d > 1 but no hot link attributed (analyzer/blame disagree)", rep.MaxHSD())
}
