package invariant

import (
	"math/rand"

	"fattree/internal/topo"
)

// RandPGFT returns a random valid PGFT tuple, deterministic for a seed:
// 1-3 levels with small m/w/p parameters (at most a few hundred hosts),
// including non-CBB and multi-uplink shapes the RLFT restrictions forbid.
// Property sweeps use it to exercise the topology and structural routing
// invariants on fabrics nobody hand-picked.
func RandPGFT(seed int64) topo.PGFT {
	r := rand.New(rand.NewSource(seed))
	h := 1 + r.Intn(3)
	m := make([]int, h)
	w := make([]int, h)
	p := make([]int, h)
	for i := 0; i < h; i++ {
		m[i] = 1 + r.Intn(4)
		w[i] = 1 + r.Intn(3)
		p[i] = 1 + r.Intn(2)
	}
	return topo.MustPGFT(h, m, w, p)
}

// randRLFTMenu enumerates the valid (constructor, K, size) parameter
// space RandRLFT draws from: every RLFT2/RLFT3 combination with at most
// ~512 hosts. The menu is deterministic, so a seed always maps to the
// same spec.
func randRLFTMenu() []topo.PGFT {
	var menu []topo.PGFT
	for _, k := range []int{2, 3, 4, 6, 8, 9, 12} {
		for leaves := 2; leaves <= 2*k; leaves++ {
			if g, err := topo.RLFT2(k, leaves); err == nil && g.NumHosts() <= 512 {
				menu = append(menu, g)
			}
		}
	}
	for _, k := range []int{2, 3, 4} {
		for groups := 1; groups <= 2*k; groups++ {
			if g, err := topo.RLFT3(k, groups); err == nil && g.NumHosts() <= 512 {
				menu = append(menu, g)
			}
		}
	}
	return menu
}

// RandRLFT returns a random Real Life Fat-Tree, deterministic for a
// seed: a 2- or 3-level RLFT2/RLFT3 construction with at most ~512
// hosts. These satisfy all three Section IV.C restrictions, so the full
// catalog — Theorem 2 and contention freedom included — must pass on
// them under D-Mod-K.
func RandRLFT(seed int64) topo.PGFT {
	menu := randRLFTMenu()
	r := rand.New(rand.NewSource(seed))
	return menu[r.Intn(len(menu))]
}

// Shrink greedily minimizes a failing topology: starting from a tuple
// for which fails returns true, it repeatedly tries to drop the top
// level or decrement one m/w/p parameter, keeping any candidate that
// still validates and still fails, until no single-step reduction
// reproduces the failure. The result is the minimal counterexample a
// human debugs instead of the random draw that found it.
func Shrink(g topo.PGFT, fails func(topo.PGFT) bool) topo.PGFT {
	if !fails(g) {
		return g
	}
	// Each adopted candidate strictly reduces H + sum(m+w+p), so the
	// loop terminates; the cap is a backstop against a non-deterministic
	// fails predicate.
	for iter := 0; iter < 1024; iter++ {
		improved := false
		for _, cand := range shrinkCandidates(g) {
			if cand.Validate() != nil {
				continue
			}
			if fails(cand) {
				g = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return g
}

// shrinkCandidates returns every single-step reduction of the tuple:
// truncate the top level, or decrement one parameter (floored at 1).
func shrinkCandidates(g topo.PGFT) []topo.PGFT {
	var out []topo.PGFT
	if g.H > 1 {
		out = append(out, topo.PGFT{
			H: g.H - 1,
			M: append([]int(nil), g.M[:g.H-1]...),
			W: append([]int(nil), g.W[:g.H-1]...),
			P: append([]int(nil), g.P[:g.H-1]...),
		})
	}
	dec := func(v []int, i int) []int {
		c := append([]int(nil), v...)
		c[i]--
		return c
	}
	for i := 0; i < g.H; i++ {
		if g.M[i] > 1 {
			out = append(out, topo.PGFT{H: g.H, M: dec(g.M, i), W: append([]int(nil), g.W...), P: append([]int(nil), g.P...)})
		}
		if g.W[i] > 1 {
			out = append(out, topo.PGFT{H: g.H, M: append([]int(nil), g.M...), W: dec(g.W, i), P: append([]int(nil), g.P...)})
		}
		if g.P[i] > 1 {
			out = append(out, topo.PGFT{H: g.H, M: append([]int(nil), g.M...), W: append([]int(nil), g.W...), P: dec(g.P, i)})
		}
	}
	return out
}

// RandVerdict is one seed's outcome in a randomized sweep.
type RandVerdict struct {
	Seed  int64  `json:"seed"`
	Spec  string `json:"spec"`
	Hosts int    `json:"hosts"`
	Pass  bool   `json:"pass"`
	// Failed lists the failing check names; Error records a build
	// failure (topology or routing construction, not a check verdict).
	Failed []string `json:"failed,omitempty"`
	Error  string   `json:"error,omitempty"`
	// ShrunkSpec is the minimal failing tuple found by Shrink, and
	// Counterexample the first failing check's evidence on it.
	ShrunkSpec     string          `json:"shrunk_spec,omitempty"`
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// SweepRandom runs the checks over n seeded random RLFTs (seeds base,
// base+1, …). build constructs the instance under test for a tuple —
// typically topology + D-Mod-K + compiled arena — so the same sweep can
// exercise any routing or ordering. Failing draws are shrunk to a
// minimal counterexample; reproducing one later only needs the seed and
// the same build function.
func SweepRandom(base int64, n int, checks []Check, build func(topo.PGFT) (*Instance, error)) []RandVerdict {
	out := make([]RandVerdict, 0, n)
	for i := 0; i < n; i++ {
		seed := base + int64(i)
		g := RandRLFT(seed)
		v := RandVerdict{Seed: seed, Spec: g.String(), Hosts: g.NumHosts()}
		in, err := build(g)
		if err != nil {
			v.Error = err.Error()
			out = append(out, v)
			continue
		}
		rep := Run(in, checks)
		v.Pass = rep.Pass
		if !rep.Pass {
			v.Failed = rep.FailedNames()
			fails := func(cand topo.PGFT) bool {
				cin, err := build(cand)
				return err == nil && !Run(cin, checks).Pass
			}
			shrunk := Shrink(g, fails)
			v.ShrunkSpec = shrunk.String()
			if sin, err := build(shrunk); err == nil {
				for _, c := range Run(sin, checks).Checks {
					if c.Status == Fail {
						cx := c.Counterexample
						if cx == nil {
							cx = &Counterexample{}
						}
						cx.Spec = shrunk.String()
						cx.Detail = joinDetail(c.Name, c.Error, cx.Detail)
						v.Counterexample = cx
						break
					}
				}
			}
		}
		out = append(out, v)
	}
	return out
}

// joinDetail folds a check's name and error into the counterexample
// detail so a sweep verdict is self-describing.
func joinDetail(name, errMsg, detail string) string {
	s := name + ": " + errMsg
	if detail != "" {
		s += " (" + detail + ")"
	}
	return s
}
