package invariant

import (
	"bytes"
	"fmt"

	"fattree/internal/order"
	"fattree/internal/topo"
)

// checkAddressing verifies the Section IV.B tuple-addressing bijection on
// the built graph: every node's digit vector is in range (w_i below or at
// its level, m_i above) and re-encodes to the node's linear Index, and
// host digits agree with the spec's closed-form HostDigit.
func checkAddressing(in *Instance) Result {
	t := in.Topo
	g := t.Spec
	for l := 0; l <= g.H; l++ {
		for _, id := range t.ByLevel[l] {
			n := t.Node(id)
			idx, mul := 0, 1
			for i := 1; i <= g.H; i++ {
				r := g.Mi(i)
				if i <= l {
					r = g.Wi(i)
				}
				d := n.Digits[i-1]
				if d < 0 || d >= r {
					return failf(&Counterexample{
						Detail: fmt.Sprintf("%v digit %d is %d, range [0,%d)", n, i, d, r),
					}, "digit out of range at %v", n)
				}
				idx += d * mul
				mul *= r
			}
			if idx != n.Index {
				return failf(&Counterexample{
					Detail: fmt.Sprintf("%v digits encode index %d, node says %d", n, idx, n.Index),
				}, "digit/index mismatch at %v", n)
			}
			if l == 0 {
				for i := 1; i <= g.H; i++ {
					if got := g.HostDigit(n.Index, i); got != n.Digits[i-1] {
						return failf(&Counterexample{
							Pair:   []int{n.Index, n.Index},
							Detail: fmt.Sprintf("HostDigit(%d,%d)=%d, built digit %d", n.Index, i, got, n.Digits[i-1]),
						}, "host digit formula mismatch at host %d", n.Index)
					}
				}
			}
		}
	}
	return pass()
}

// checkConnectionRule verifies every link against the Section IV.B PGFT
// connection rule: endpoints on adjacent levels whose digit vectors agree
// everywhere except position l+1, joined by the k-th parallel cable at
// up port q = b_{l+1} + k*w_{l+1} and down port r = a_{l+1} + k*m_{l+1};
// and that no port was left unconnected.
func checkConnectionRule(in *Instance) Result {
	t := in.Topo
	g := t.Spec
	for i := range t.Ports {
		if t.Ports[i].Link == topo.None {
			n := t.Node(t.Ports[i].Node)
			return failf(&Counterexample{
				Detail: fmt.Sprintf("%s port %d of %v unconnected", t.Ports[i].Dir, t.Ports[i].Num, n),
			}, "unconnected port on %v", n)
		}
	}
	for i := range t.Links {
		lk := &t.Links[i]
		lo, up := &t.Ports[lk.Lower], &t.Ports[lk.Upper]
		a, b := t.Node(lo.Node), t.Node(up.Node)
		l := a.Level
		cx := &Counterexample{Link: intp(i)}
		if lo.Dir != topo.Up || up.Dir != topo.Down || b.Level != l+1 || lk.Level != l+1 {
			cx.Detail = fmt.Sprintf("link %d joins %v port %d (%s) to %v port %d (%s)", i, a, lo.Num, lo.Dir, b, up.Num, up.Dir)
			return failf(cx, "link %d endpoints malformed", i)
		}
		for d := 1; d <= g.H; d++ {
			if d != l+1 && a.Digits[d-1] != b.Digits[d-1] {
				cx.Detail = fmt.Sprintf("link %d: %v and %v disagree at digit %d (may only differ at %d)", i, a, b, d, l+1)
				return failf(cx, "link %d violates the digit-agreement rule", i)
			}
		}
		w, m := g.Wi(l+1), g.Mi(l+1)
		k := lo.Num / w
		if lo.Num%w != b.Digits[l] {
			cx.Detail = fmt.Sprintf("link %d: up port %d of %v should carry parent digit %d, reaches digit %d", i, lo.Num, a, lo.Num%w, b.Digits[l])
			return failf(cx, "link %d violates the up-port rule q = b+k*w", i)
		}
		if up.Num != a.Digits[l]+k*m {
			cx.Detail = fmt.Sprintf("link %d: down port should be r = %d + %d*%d = %d, got %d", i, a.Digits[l], k, m, a.Digits[l]+k*m, up.Num)
			return failf(cx, "link %d violates the down-port rule r = a+k*m", i)
		}
	}
	return pass()
}

// checkCBB verifies that the spec-level constant-CBB predicate (first
// RLFT restriction) agrees with the built graph: at every internal level
// each switch's up-going port count equals its down-going port count
// exactly when the predicate claims so.
func checkCBB(in *Instance) Result {
	t := in.Topo
	g := t.Spec
	graphCBB := true
	detail := ""
	for l := 1; l < g.H && graphCBB; l++ {
		for _, id := range t.ByLevel[l] {
			n := t.Node(id)
			if len(n.Up) != len(n.Down) {
				graphCBB = false
				detail = fmt.Sprintf("%v has %d up / %d down ports", n, len(n.Up), len(n.Down))
				break
			}
		}
	}
	if graphCBB != g.ConstantCBB() {
		return failf(&Counterexample{Detail: detail},
			"spec predicate ConstantCBB=%v but built graph says %v", g.ConstantCBB(), graphCBB)
	}
	return pass()
}

// checkHostUplink verifies the single-host-uplink predicate (second RLFT
// restriction) against the built graph: every end-port has exactly one
// up-going cable exactly when the spec claims w_1 == p_1 == 1.
func checkHostUplink(in *Instance) Result {
	t := in.Topo
	g := t.Spec
	graphSingle := true
	detail := ""
	for _, id := range t.ByLevel[0] {
		n := t.Node(id)
		if len(n.Up) != 1 {
			graphSingle = false
			detail = fmt.Sprintf("host %d has %d uplinks", n.Index, len(n.Up))
			break
		}
	}
	if graphSingle != g.SingleHostUplink() {
		return failf(&Counterexample{Detail: detail},
			"spec predicate SingleHostUplink=%v but built graph says %v", g.SingleHostUplink(), graphSingle)
	}
	return pass()
}

// checkRoundTrip verifies the topology-file writer and parser agree:
// serializing the topology, parsing it back and serializing again must
// reproduce the bytes exactly, and the parsed spec must equal the
// original tuple.
func checkRoundTrip(in *Instance) Result {
	t := in.Topo
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return failf(nil, "serialize: %v", err)
	}
	first := buf.String()
	t2, err := topo.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return failf(&Counterexample{Detail: firstLine(first)}, "parse own output: %v", err)
	}
	if t2.Spec.String() != t.Spec.String() {
		return failf(&Counterexample{Spec: t2.Spec.String()},
			"parsed spec %v, wrote %v", t2.Spec, t.Spec)
	}
	var buf2 bytes.Buffer
	if _, err := t2.WriteTo(&buf2); err != nil {
		return failf(nil, "re-serialize: %v", err)
	}
	if buf2.String() != first {
		return failf(&Counterexample{Detail: firstDiff(first, buf2.String())},
			"write->parse->write is not byte identical")
	}
	return pass()
}

// checkOrderingBijection verifies the instance's ordering through
// OrderingBijection.
func checkOrderingBijection(in *Instance) Result {
	if err := OrderingBijection(in.Ordering); err != nil {
		return failf(&Counterexample{Detail: err.Error()}, "ordering %q is not a bijection", in.Ordering.Label)
	}
	return pass()
}

// OrderingBijection checks that an ordering is a bijection between ranks
// and a subset of end-ports: every rank's host is in range, no host
// carries two ranks, and the host->rank inverse agrees with the forward
// table. It is the property every placement the fabric manager or a
// scheduler hands out must satisfy.
func OrderingBijection(o *order.Ordering) error {
	n := o.NumHosts()
	seen := make(map[int]int, o.Size())
	for r, h := range o.HostOf {
		if h < 0 || h >= n {
			return fmt.Errorf("rank %d on host %d, out of range [0,%d)", r, h, n)
		}
		if prev, dup := seen[h]; dup {
			return fmt.Errorf("host %d carries ranks %d and %d", h, prev, r)
		}
		seen[h] = r
		if got := o.RankOf(h); got != r {
			return fmt.Errorf("RankOf(%d) = %d, want %d", h, got, r)
		}
	}
	for h := 0; h < n; h++ {
		if _, active := seen[h]; !active && o.RankOf(h) != -1 {
			return fmt.Errorf("inactive host %d reports rank %d", h, o.RankOf(h))
		}
	}
	return nil
}

// firstLine returns the first line of s, for counterexample details.
func firstLine(s string) string {
	if i := bytes.IndexByte([]byte(s), '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// firstDiff locates the first differing line of two serializations.
func firstDiff(a, b string) string {
	la := bytes.Split([]byte(a), []byte("\n"))
	lb := bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}
