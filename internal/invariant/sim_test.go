package invariant

import (
	"testing"

	"fattree/internal/route"
	"fattree/internal/topo"
)

func TestSimZeroStallsContentionFree(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	in := NewInstance(tp, route.DModK(tp), nil)
	res := checkSimZeroStalls(in)
	if res.Status != Pass {
		t.Fatalf("contention-free instance: %s (%s)", res.Status, res.Error)
	}
}

func TestSimZeroStallsSkipsContended(t *testing.T) {
	// Random minimal-hop routing breaks Theorem 1, so the HSD model
	// reports contention and the cross-check must skip, not fail.
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	in := NewInstance(tp, route.MinHopRandom(tp, 3), nil)
	res := checkSimZeroStalls(in)
	if res.Status != Skip {
		t.Fatalf("contended instance: %s (%s), want skip", res.Status, res.Error)
	}
}

func TestSpreadStages(t *testing.T) {
	got := spreadStages(10, 4)
	want := []int{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("spreadStages(10,4) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spreadStages(10,4) = %v, want %v", got, want)
		}
	}
	if got := spreadStages(3, 4); len(got) != 3 {
		t.Fatalf("spreadStages(3,4) = %v, want all 3 stages", got)
	}
}
