package invariant

import (
	"errors"
	"fmt"

	"fattree/internal/route"
	"fattree/internal/topo"
)

// tracePair walks src->dst through the router with hop-level
// verification: every reported link must attach to the node the previous
// hop ended on, and the walk must end on the destination end-port. It
// returns the packed hops.
func tracePair(t *topo.Topology, r route.Router, src, dst int) ([]route.PathEntry, error) {
	cur := t.HostID(src)
	var hops []route.PathEntry
	var chainErr error
	err := r.Walk(src, dst, func(l topo.LinkID, up bool) {
		if chainErr != nil {
			return
		}
		if l < 0 || int(l) >= len(t.Links) {
			chainErr = fmt.Errorf("hop %d names link %d, out of range [0,%d)", len(hops), l, len(t.Links))
			return
		}
		lk := &t.Links[l]
		from, to := lk.Upper, lk.Lower
		if up {
			from, to = lk.Lower, lk.Upper
		}
		if t.Ports[from].Node != cur {
			chainErr = fmt.Errorf("hop %d traverses link %d from %v, but the path is at %v",
				len(hops), l, t.Node(t.Ports[from].Node), t.Node(cur))
			return
		}
		cur = t.Ports[to].Node
		hops = append(hops, route.PackEntry(l, up))
	})
	if err != nil {
		return nil, err
	}
	if chainErr != nil {
		return nil, chainErr
	}
	if cur != t.HostID(dst) {
		return nil, fmt.Errorf("path ends at %v, not host %d", t.Node(cur), dst)
	}
	return hops, nil
}

// skipNoRouter is the shared gate for routing checks on router-less
// instances.
func skipNoRouter() Result { return skipf("no router bound to the instance") }

// hasFaults reports whether the instance carries any degradation: dead
// links, unroutable hosts, or recorded broken pairs. Theorem-level checks
// (down-path uniqueness, contention freedom) only claim anything on
// intact fabrics and skip when it returns true.
func (in *Instance) hasFaults() bool {
	if in.Unroutable != nil {
		for j := 0; j < in.Topo.NumHosts(); j++ {
			if in.Unroutable(j) {
				return true
			}
		}
	}
	if in.Alive != nil {
		for l := range in.Topo.Links {
			if !in.Alive(topo.LinkID(l)) {
				return true
			}
		}
	}
	if c, ok := in.Router.(*route.Compiled); ok && c.NumBroken() > 0 {
		return true
	}
	return false
}

// checkRouteTotal verifies LFT totality: every ordered (src, dst) pair is
// either walked to delivery or explicitly recorded as broken, and pairs
// touching an unroutable host are never served.
func checkRouteTotal(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	t := in.Topo
	n := t.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if in.unroutable(src) || in.unroutable(dst) {
				if !in.broken(src, dst) {
					return failf(&Counterexample{Pair: []int{src, dst}},
						"pair %d->%d touches an unroutable host but is not recorded broken", src, dst)
				}
				continue
			}
			if in.broken(src, dst) {
				continue
			}
			if _, err := tracePair(t, in.Router, src, dst); err != nil {
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: err.Error()},
					"pair %d->%d is not delivered", src, dst)
			}
		}
	}
	return pass()
}

// checkRouteUpDown verifies the up*/down* shape every deadlock-free
// fat-tree routing must keep: once a path turns downwards it never
// climbs again.
func checkRouteUpDown(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	t := in.Topo
	n := t.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || in.broken(src, dst) || in.unroutable(src) || in.unroutable(dst) {
				continue
			}
			hops, err := tracePair(t, in.Router, src, dst)
			if err != nil {
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: err.Error()},
					"pair %d->%d failed to walk", src, dst)
			}
			descending := false
			for i, e := range hops {
				if route.EntryUp(e) && descending {
					return failf(&Counterexample{Pair: []int{src, dst}, Link: intp(int(route.EntryLink(e)))},
						"pair %d->%d climbs again at hop %d after descending", src, dst, i)
				}
				if !route.EntryUp(e) {
					descending = true
				}
			}
		}
	}
	return pass()
}

// checkRouteMinimal verifies minimality: every served path takes exactly
// 2*LCALevel(src, dst) hops — up to the lowest common ancestor sub-tree
// and straight down. This also holds on faulted fabrics, because paths a
// reroute cannot keep minimal must be recorded broken instead (the
// lenient-compile contract).
func checkRouteMinimal(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	t := in.Topo
	n := t.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || in.broken(src, dst) || in.unroutable(src) || in.unroutable(dst) {
				continue
			}
			hops, err := tracePair(t, in.Router, src, dst)
			if err != nil {
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: err.Error()},
					"pair %d->%d failed to walk", src, dst)
			}
			if want := 2 * t.Spec.LCALevel(src, dst); len(hops) != want {
				return failf(&Counterexample{Pair: []int{src, dst},
					Detail: fmt.Sprintf("%d hops, minimal is %d", len(hops), want)},
					"pair %d->%d takes a non-minimal path", src, dst)
			}
		}
	}
	return pass()
}

// checkRouteAlive verifies that no served path traverses a dead link.
// Freshly rerouted tables pass; stale tables computed before a fault
// fail, which is how ftcheck -fault demonstrates a failing verdict.
func checkRouteAlive(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	if in.Alive == nil {
		return pass() // no fault model: every link alive by definition
	}
	t := in.Topo
	n := t.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || in.broken(src, dst) || in.unroutable(src) || in.unroutable(dst) {
				continue
			}
			hops, err := tracePair(t, in.Router, src, dst)
			if err != nil {
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: err.Error()},
					"pair %d->%d failed to walk", src, dst)
			}
			for _, e := range hops {
				if l := route.EntryLink(e); !in.Alive(l) {
					return failf(&Counterexample{Pair: []int{src, dst}, Link: intp(int(l))},
						"pair %d->%d crosses dead link %d", src, dst, l)
				}
			}
		}
	}
	return pass()
}

// checkThm2DownUnique verifies Theorem 2 generically over any Router:
// under all-to-all traffic every switch down port carries traffic towards
// exactly one destination. The theorem needs the first two RLFT
// restrictions (constant CBB, single host uplink) and an intact fabric;
// the check skips otherwise — non-CBB PGFTs genuinely violate it.
func checkThm2DownUnique(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	g := in.Topo.Spec
	if !g.ConstantCBB() || !g.SingleHostUplink() {
		return skipf("Theorem 2 requires constant CBB and single host uplink; %v has neither guarantee", g)
	}
	if in.hasFaults() {
		return skipf("Theorem 2 claims nothing on degraded fabrics")
	}
	t := in.Topo
	n := t.NumHosts()
	// destOn[port] = the destination first seen descending through that
	// down port, or -1.
	destOn := make([]int, len(t.Ports))
	for i := range destOn {
		destOn[i] = -1
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			var clash Result
			hops, err := tracePair(t, in.Router, src, dst)
			if err != nil {
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: err.Error()},
					"pair %d->%d failed to walk", src, dst)
			}
			for _, e := range hops {
				if route.EntryUp(e) {
					continue
				}
				l := route.EntryLink(e)
				port := t.Links[l].Upper
				switch destOn[port] {
				case -1:
					destOn[port] = dst
				case dst:
				default:
					clash = failf(&Counterexample{Pair: []int{src, dst}, Link: intp(int(l)),
						Detail: fmt.Sprintf("down port %d of %v carries destinations %d and %d",
							t.Ports[port].Num, t.Node(t.Ports[port].Node), destOn[port], dst)},
						"pair %d->%d shares a down port with destination %d", src, dst, destOn[port])
				}
				if clash.Status == Fail {
					return clash
				}
			}
		}
	}
	return pass()
}

// checkCompiledEquiv verifies the compiled path cache is a transparent
// acceleration: for every served pair the packed path equals the inner
// router's walk hop for hop.
func checkCompiledEquiv(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	c, ok := in.Router.(*route.Compiled)
	if !ok {
		return skipf("router %q is not a compiled path cache", in.Router.Label())
	}
	inner := c.Inner()
	n := in.Topo.NumHosts()
	var buf []route.PathEntry
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || c.Broken(src, dst) {
				continue
			}
			packed, err := c.PackedPath(src, dst)
			if err != nil {
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: err.Error()},
					"PackedPath failed for served pair %d->%d", src, dst)
			}
			buf = buf[:0]
			err = inner.Walk(src, dst, func(l topo.LinkID, up bool) {
				buf = append(buf, route.PackEntry(l, up))
			})
			if err != nil {
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: err.Error()},
					"inner router fails pair %d->%d the cache serves", src, dst)
			}
			if len(buf) != len(packed) {
				return failf(&Counterexample{Pair: []int{src, dst},
					Detail: fmt.Sprintf("cache has %d hops, inner walk %d", len(packed), len(buf))},
					"compiled path length diverges for pair %d->%d", src, dst)
			}
			for i := range buf {
				if buf[i] != packed[i] {
					return failf(&Counterexample{Pair: []int{src, dst},
						Detail: fmt.Sprintf("hop %d: cache link %d up=%v, inner link %d up=%v", i,
							route.EntryLink(packed[i]), route.EntryUp(packed[i]),
							route.EntryLink(buf[i]), route.EntryUp(buf[i]))},
						"compiled path diverges for pair %d->%d", src, dst)
				}
			}
		}
	}
	return pass()
}

// checkLenientBroken verifies the lenient-compile contract: a pair is in
// the broken bitset exactly when the inner router either fails to walk it
// or walks a non-minimal path; broken pairs answer ErrNoPath; NumBroken
// equals the bitset population; and unroutable hosts only appear in
// broken pairs.
func checkLenientBroken(in *Instance) Result {
	if in.Router == nil {
		return skipNoRouter()
	}
	c, ok := in.Router.(*route.Compiled)
	if !ok {
		return skipf("router %q is not a compiled path cache", in.Router.Label())
	}
	inner := c.Inner()
	t := in.Topo
	n := t.NumHosts()
	broken := 0
	hops := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			hops = 0
			walkErr := inner.Walk(src, dst, func(topo.LinkID, bool) { hops++ })
			minimal := walkErr == nil && hops == 2*t.Spec.LCALevel(src, dst)
			if b := c.Broken(src, dst); b != !minimal {
				detail := "inner walk is minimal"
				if walkErr != nil {
					detail = walkErr.Error()
				} else if !minimal {
					detail = fmt.Sprintf("inner walk takes %d hops, minimal is %d", hops, 2*t.Spec.LCALevel(src, dst))
				}
				return failf(&Counterexample{Pair: []int{src, dst}, Detail: detail},
					"pair %d->%d: broken=%v disagrees with the inner router", src, dst, b)
			}
			if c.Broken(src, dst) {
				broken++
				if _, err := c.PackedPath(src, dst); !errors.Is(err, route.ErrNoPath) {
					return failf(&Counterexample{Pair: []int{src, dst}},
						"broken pair %d->%d does not answer ErrNoPath (got %v)", src, dst, err)
				}
			} else if in.unroutable(src) || in.unroutable(dst) {
				return failf(&Counterexample{Pair: []int{src, dst}},
					"pair %d->%d touches an unroutable host but is served", src, dst)
			}
		}
	}
	if broken != c.NumBroken() {
		return failf(&Counterexample{Detail: fmt.Sprintf("bitset has %d pairs, NumBroken says %d", broken, c.NumBroken())},
			"NumBroken disagrees with the broken bitset")
	}
	return pass()
}
