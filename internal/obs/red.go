package obs

import (
	"strconv"
	"sync"
	"time"
)

// RED is per-endpoint request instrumentation following the RED method:
// Rate (requests), Errors and Duration. One RED owns a family of
// labeled series in a registry —
//
//	<prefix>_requests_total{endpoint="...",code="2xx"}   counter
//	<prefix>_errors_total{endpoint="..."}                counter
//	<prefix>_request_duration_us{endpoint="..."}         histogram
//
// — with one Endpoint handle per served route. Handles are created once
// (typically at mux construction) and observed per request with two
// atomic adds plus one histogram observation, so the serving hot path
// pays no lock and no allocation. A nil *RED hands out nil endpoint
// handles, making disabled instrumentation free, matching the rest of
// this package.
type RED struct {
	reg    *Registry
	prefix string
	bounds []float64

	mu  sync.Mutex
	eps map[string]*REDEndpoint
}

// DefaultREDBucketsUS is the request-duration bucket ladder in
// microseconds: fine enough near the bottom that a loopback route
// lookup (single-digit µs) lands in a narrow bucket, so interpolated
// tail quantiles stay comparable with exact client-side measurements.
var DefaultREDBucketsUS = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1e6,
}

// NewRED builds a RED family with the given metric prefix (e.g.
// "fmgr_http") and duration bucket bounds in microseconds (nil selects
// DefaultREDBucketsUS). A nil registry yields a nil RED.
func NewRED(reg *Registry, prefix string, boundsUS []float64) *RED {
	if reg == nil {
		return nil
	}
	if boundsUS == nil {
		boundsUS = DefaultREDBucketsUS
	}
	return &RED{reg: reg, prefix: prefix, bounds: boundsUS, eps: map[string]*REDEndpoint{}}
}

// REDEndpoint is the per-endpoint handle triplet. All methods are
// nil-safe no-ops.
type REDEndpoint struct {
	codes    [6]*Counter // index status/100, clamped; [0] catches transport-level failures
	errors   *Counter
	duration *Histogram
}

// Endpoint returns (creating on first use) the handles for one endpoint
// label, e.g. "GET /v1/route". Nil RED returns nil.
func (r *RED) Endpoint(name string) *REDEndpoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.eps[name]; ok {
		return e
	}
	e := &REDEndpoint{
		errors:   r.reg.Counter(Labeled(r.prefix+"_errors_total", "endpoint", name)),
		duration: r.reg.MustHistogram(Labeled(r.prefix+"_request_duration_us", "endpoint", name), r.bounds),
	}
	for class := range e.codes {
		code := strconv.Itoa(class) + "xx"
		if class == 0 {
			code = "error"
		}
		e.codes[class] = r.reg.Counter(Labeled(r.prefix+"_requests_total", "endpoint", name, "code", code))
	}
	r.eps[name] = e
	return e
}

// Observe records one finished request: its status class counter, the
// error counter when status >= 400 (or status <= 0, the transport-error
// sentinel), and the duration histogram.
func (e *REDEndpoint) Observe(status int, d time.Duration) {
	if e == nil {
		return
	}
	class := status / 100
	if class < 0 || status <= 0 || class >= len(e.codes) {
		class = 0
	}
	e.codes[class].Inc()
	if status >= 400 || status <= 0 {
		e.errors.Inc()
	}
	e.duration.Observe(float64(d.Microseconds()))
}
