package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// spanEvent mirrors the trace-event fields spans serialize.
type spanEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

func parseSpans(t *testing.T, raw string) []spanEvent {
	t.Helper()
	var doc struct {
		TraceEvents []spanEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("span trace is not valid Chrome JSON: %v\n%s", err, raw)
	}
	return doc.TraceEvents
}

func TestSpanTracerEmitsLinkedSpans(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	st := NewSpanTracer(tr, 9, "daemon")

	root := st.StartTrace("GET /v1/route")
	root.Tag(Str("src", "0"), Num("dst", 17))
	child := root.Child("lookup")
	child.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events := parseSpans(t, b.String())
	var spans []spanEvent
	for _, ev := range events {
		if ev.Ph == "X" {
			spans = append(spans, ev)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	ch, rt := spans[0], spans[1] // child ends first
	if ch.Name != "lookup" || rt.Name != "GET /v1/route" {
		t.Fatalf("span names: %q, %q", ch.Name, rt.Name)
	}
	if ch.Args["trace_id"] != rt.Args["trace_id"] {
		t.Fatalf("trace ids differ: %v vs %v", ch.Args["trace_id"], rt.Args["trace_id"])
	}
	if ch.Args["parent_id"] != rt.Args["span_id"] {
		t.Fatalf("child parent %v != root span %v", ch.Args["parent_id"], rt.Args["span_id"])
	}
	if rt.Args["src"] != "0" || rt.Args["dst"] != float64(17) {
		t.Fatalf("tags lost: %v", rt.Args)
	}
	if ch.Pid != 9 || rt.Pid != 9 || ch.Tid != rt.Tid {
		t.Fatalf("lane placement: pid %d/%d tid %d/%d", ch.Pid, rt.Pid, ch.Tid, rt.Tid)
	}
}

// TestSpanTracerDistinctTraces: two roots get distinct trace ids.
func TestSpanTracerDistinctTraces(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	st := NewSpanTracer(tr, 1, "d")
	a := st.StartTrace("a")
	c := st.StartTrace("b")
	if a.TraceID() == c.TraceID() || a.TraceID() == "" {
		t.Fatalf("trace ids not distinct: %q vs %q", a.TraceID(), c.TraceID())
	}
	a.End()
	c.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanNilSafety: the disabled chain never panics and emits nothing.
func TestSpanNilSafety(t *testing.T) {
	var st *SpanTracer
	sp := st.StartTrace("x")
	sp.Tag(Str("k", "v"))
	ch := sp.Child("y")
	ch.End()
	sp.End()
	if sp != nil || ch != nil || sp.TraceID() != "" {
		t.Fatal("nil chain leaked a value")
	}
	if NewSpanTracer(nil, 1, "x") != nil {
		t.Fatal("NewSpanTracer(nil) should be nil")
	}
}
