// Package prof is the shared pprof flag wiring of the cmd/* tools: it
// registers -cpuprofile and -memprofile on a FlagSet and manages the
// profile lifecycles, so the nine commands don't copy-paste the same
// boilerplate.
//
// Usage in a main:
//
//	pf := prof.Register(flag.CommandLine)
//	flag.Parse()
//	if err := pf.Start(); err != nil { ... }
//	err := run(...)
//	if perr := pf.Stop(); err == nil { err = perr }
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles holds the flag values and the live CPU profile handle.
type Profiles struct {
	cpu, mem string
	cpuFile  *os.File
}

// Register adds -cpuprofile/-memprofile to fs and returns the handle to
// start/stop them around the program's work.
func Register(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to `file` on exit")
	return p
}

// Start begins CPU profiling if -cpuprofile was given.
func (p *Profiles) Start() error {
	if p == nil || p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile if
// requested. Safe to call when Start was a no-op or never ran.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
			return first
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
	}
	return first
}
