package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestNoFlagsIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	var nilP *Profiles
	if nilP.Start() != nil || nilP.Stop() != nil {
		t.Error("nil Profiles not inert")
	}
}

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	// Stop again must be a harmless no-op (mem profile rewritten ok).
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartErrorOnBadPath(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		p.Stop()
		t.Fatal("expected error for uncreatable profile path")
	}
}
