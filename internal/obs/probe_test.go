package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fattree/internal/des"
)

func decodeSamples(t *testing.T, raw string) []sampleRecord {
	t.Helper()
	var recs []sampleRecord
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var r sampleRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestSamplerTicksWithScheduler runs a sampler against a scheduler that
// has work spanning 10 us and checks the tick cadence, the values and
// that the sampler stops when the simulation drains.
func TestSamplerTicksWithScheduler(t *testing.T) {
	sched := des.NewScheduler()
	var buf bytes.Buffer
	s := NewSampler(&buf, 2*des.Microsecond)
	state := 0.0
	// Simulated work: an event every microsecond for 10 us mutating
	// state; the sampler should see the running value.
	for i := 1; i <= 10; i++ {
		sched.At(des.Time(i)*des.Microsecond, func() { state++ })
	}
	s.Series("state", func(now des.Time, buf []float64) []float64 {
		return append(buf, state)
	})
	s.Series("pair", func(now des.Time, buf []float64) []float64 {
		return append(buf, 1, 2)
	})
	s.Start(sched)
	if !sched.Run(0) {
		t.Fatal("run aborted")
	}
	// Ticks at 0,2,4,6,8 us; the daemon tick armed for 10 us is
	// discarded once the last work event has run. The owner closes the
	// stream with one explicit end-of-run sample.
	s.Sample(sched.Now())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := decodeSamples(t, buf.String())
	// Five ticks plus the final sample, two series each.
	if len(recs) != 12 {
		t.Fatalf("got %d records, want 12:\n%s", len(recs), buf.String())
	}
	if recs[0].T != 0 || recs[0].Series != "state" || recs[0].Values[0] != 0 {
		t.Errorf("first record = %+v", recs[0])
	}
	last := recs[len(recs)-2]
	if last.T != int64(10*des.Microsecond) || last.Values[0] != 10 {
		t.Errorf("final sample = %+v, want state 10 at t=10us", last)
	}
	if recs[len(recs)-1].Series != "pair" || len(recs[len(recs)-1].Values) != 2 {
		t.Errorf("vector series record = %+v", recs[len(recs)-1])
	}
	// The scheduler must be fully drained — the sampler may not keep
	// re-arming after the simulation finished.
	if sched.Pending() != 0 {
		t.Errorf("%d events still pending after run", sched.Pending())
	}
}

func TestSamplerStopsOnEmptySchedule(t *testing.T) {
	sched := des.NewScheduler()
	var buf bytes.Buffer
	s := NewSampler(&buf, des.Microsecond)
	s.Series("x", func(now des.Time, b []float64) []float64 { return append(b, 1) })
	s.Start(sched) // nothing pending: samples once, must not re-arm
	if sched.Pending() != 0 {
		t.Fatalf("sampler armed %d events on an idle scheduler", sched.Pending())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if recs := decodeSamples(t, buf.String()); len(recs) != 1 {
		t.Errorf("got %d records, want 1", len(recs))
	}
}

func TestSamplerRecordAndReset(t *testing.T) {
	var buf bytes.Buffer
	s := NewSampler(&buf, 0) // non-positive interval defaults to 1 us
	if s.Interval() != des.Microsecond {
		t.Errorf("interval = %v", s.Interval())
	}
	s.Series("x", func(now des.Time, b []float64) []float64 { return append(b, 1) })
	s.Reset() // drops the series
	sched := des.NewScheduler()
	sched.At(1, func() {})
	s.Start(sched)
	sched.Run(0)
	s.Record(map[string]string{"series": "snapshot", "kind": "final"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want only the Record line:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "snapshot") {
		t.Errorf("record line = %q", lines[0])
	}
}
