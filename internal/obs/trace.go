package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"

	"fattree/internal/des"
)

// Tracer writes a Chrome trace-event stream: a JSON object whose
// traceEvents array holds one event per call. The output opens directly
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Timestamps are des.Time picoseconds converted to the format's
// microsecond unit, so simulated time reads naturally in the viewer.
// Process IDs (pid) group lanes — the simulator uses one process for
// hosts, one for links and one for collective phase markers — and
// thread IDs (tid) are the lanes themselves (host index, channel index).
//
// All methods are nil-safe no-ops and safe for concurrent use. The
// first write error is latched and reported by Close/Err.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	events int64
	err    error
	closed bool
}

// Arg is one key/value entry of a trace event's args object.
type Arg struct {
	key   string
	str   string
	num   float64
	isStr bool
}

// Str builds a string-valued event argument.
func Str(key, val string) Arg { return Arg{key: key, str: val, isStr: true} }

// Num builds a number-valued event argument.
func Num(key string, val float64) Arg { return Arg{key: key, num: val} }

// NewTracer starts a trace stream on w. Call Close to finish the JSON
// document; without it the file is truncated mid-array and viewers
// reject it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w)}
	_, t.err = t.w.WriteString(
		"{\"displayTimeUnit\":\"ns\",\"otherData\":{\"schema\":\"" + TraceSchema + "\"},\"traceEvents\":[")
	return t
}

// Events returns the number of events recorded so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close terminates the JSON document and flushes. Safe to call on nil
// and more than once.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		_, t.err = t.w.WriteString("]}\n")
	}
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	return t.err
}

// ts formats a picosecond time as the trace format's microseconds.
func ts(t des.Time) string {
	return strconv.FormatFloat(float64(t)/1e6, 'g', -1, 64)
}

// writeEvent emits one raw event. header is the pre-rendered portion up
// to (not including) the args object; args may be empty.
func (t *Tracer) writeEvent(header string, args []Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.closed {
		return
	}
	if t.events > 0 {
		t.w.WriteByte(',')
	}
	t.w.WriteString("\n{")
	t.w.WriteString(header)
	if len(args) > 0 {
		t.w.WriteString(",\"args\":{")
		for i, a := range args {
			if i > 0 {
				t.w.WriteByte(',')
			}
			t.w.WriteString(strconv.Quote(a.key))
			t.w.WriteByte(':')
			if a.isStr {
				t.w.WriteString(strconv.Quote(a.str))
			} else {
				t.w.WriteString(strconv.FormatFloat(a.num, 'g', -1, 64))
			}
		}
		t.w.WriteByte('}')
	}
	_, t.err = t.w.WriteString("}")
	t.events++
}

// ProcessName labels a pid lane group (a metadata event).
func (t *Tracer) ProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.writeEvent(
		fmt.Sprintf("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0", pid),
		[]Arg{Str("name", name)})
}

// ThreadName labels one lane within a pid group (a metadata event).
func (t *Tracer) ThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.writeEvent(
		fmt.Sprintf("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d", pid, tid),
		[]Arg{Str("name", name)})
}

// Instant records a point event on a lane.
func (t *Tracer) Instant(pid, tid int, at des.Time, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.writeEvent(
		fmt.Sprintf("\"name\":%s,\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%s",
			strconv.Quote(name), pid, tid, ts(at)),
		args)
}

// Complete records a duration event [start, start+dur] on a lane.
func (t *Tracer) Complete(pid, tid int, start, dur des.Time, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.writeEvent(
		fmt.Sprintf("\"name\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s",
			strconv.Quote(name), pid, tid, ts(start), ts(dur)),
		args)
}

// Counter records counter-series values at a point in time; the viewer
// plots each named series as a track under the pid group.
func (t *Tracer) Counter(pid int, at des.Time, name string, series ...Arg) {
	if t == nil {
		return
	}
	t.writeEvent(
		fmt.Sprintf("\"name\":%s,\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%s",
			strconv.Quote(name), pid, ts(at)),
		series)
}
