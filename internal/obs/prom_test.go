package obs

import (
	"strings"
	"testing"
)

func TestLabeled(t *testing.T) {
	if got := Labeled("m"); got != "m" {
		t.Fatalf("no labels: %q", got)
	}
	if got := Labeled("m", "a", "x"); got != `m{a="x"}` {
		t.Fatalf("one label: %q", got)
	}
	if got := Labeled("m", "a", "x", "b", "y"); got != `m{a="x",b="y"}` {
		t.Fatalf("two labels: %q", got)
	}
	if got := Labeled("m", "a", `q"\`+"\n"); got != `m{a="q\"\\\n"}` {
		t.Fatalf("escaping: %q", got)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"fmgr_epoch":    "fmgr_epoch",
		"a.b-c/d":       "a_b_c_d",
		"0abc":          "_abc",
		"":              "_",
		"ns:metric_us9": "ns:metric_us9",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheus pins the exposition rendering exactly: types,
// label passthrough, cumulative buckets with +Inf, sum/count, sorted
// deterministic order, one TYPE line per labeled family.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total").Add(7)
	r.Counter(Labeled("rpc_total", "endpoint", "/v1/route")).Add(3)
	r.Counter(Labeled("rpc_total", "endpoint", "/v1/order")).Add(2)
	r.Gauge("epoch").Set(5)
	h := r.MustHistogram("lat_us", []float64{1, 10, 100})
	h.Observe(0.5) // bucket le=1
	h.Observe(5)   // bucket le=10
	h.Observe(5)
	h.Observe(1000) // overflow

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE epoch gauge
epoch 5
# TYPE lat_us histogram
lat_us_bucket{le="1"} 1
lat_us_bucket{le="10"} 3
lat_us_bucket{le="100"} 3
lat_us_bucket{le="+Inf"} 4
lat_us_sum 1010.5
lat_us_count 4
# TYPE req_total counter
req_total 7
# TYPE rpc_total counter
rpc_total{endpoint="/v1/order"} 2
rpc_total{endpoint="/v1/route"} 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWritePrometheusLabeledHistogram checks the le label merges after
// existing labels and the family shares one TYPE line.
func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	for _, ep := range []string{"a", "b"} {
		h := r.MustHistogram(Labeled("dur_us", "endpoint", ep), []float64{10})
		h.Observe(3)
	}
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE dur_us histogram") != 1 {
		t.Fatalf("want exactly one TYPE line:\n%s", out)
	}
	for _, line := range []string{
		`dur_us_bucket{endpoint="a",le="10"} 1`,
		`dur_us_bucket{endpoint="a",le="+Inf"} 1`,
		`dur_us_sum{endpoint="a"} 3`,
		`dur_us_count{endpoint="b"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

// TestWritePrometheusGaugeFunc: lazily computed gauges reach the
// exposition like stored ones.
func TestWritePrometheusGaugeFunc(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"process_uptime_seconds", "go_goroutines", "go_heap_inuse_bytes", "go_heap_objects"} {
		if !strings.Contains(b.String(), "# TYPE "+m+" gauge\n"+m+" ") {
			t.Fatalf("missing runtime gauge %s in:\n%s", m, b.String())
		}
	}
	snap := r.Snapshot()
	if snap.Gauges["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %d, want >= 1", snap.Gauges["go_goroutines"])
	}
	if snap.Gauges["go_heap_inuse_bytes"] <= 0 {
		t.Fatalf("go_heap_inuse_bytes = %d, want > 0", snap.Gauges["go_heap_inuse_bytes"])
	}
}
