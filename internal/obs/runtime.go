package obs

import (
	"runtime"
	"time"
)

// RegisterRuntimeMetrics adds process-health gauges to the registry,
// evaluated lazily at snapshot time, so /metrics answers "is the daemon
// healthy" without reaching for pprof:
//
//	process_uptime_seconds  seconds since registration
//	go_goroutines           live goroutine count
//	go_heap_inuse_bytes     bytes in in-use heap spans
//	go_heap_objects         live heap objects
//
// The heap gauges share one runtime.ReadMemStats call per snapshot;
// nothing is paid between snapshots. No-op on a nil registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	r.GaugeFunc("process_uptime_seconds", func() int64 {
		return int64(time.Since(start).Seconds())
	})
	r.GaugeFunc("go_goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	// One ReadMemStats serves both heap gauges: the second func reuses
	// the stats captured by the first within a single Snapshot call.
	var ms runtime.MemStats
	var msAt time.Time
	readMem := func() *runtime.MemStats {
		// Snapshot holds the registry lock while evaluating funcs, so
		// this is never entered concurrently.
		if time.Since(msAt) > 10*time.Millisecond {
			runtime.ReadMemStats(&ms)
			msAt = time.Now()
		}
		return &ms
	}
	r.GaugeFunc("go_heap_inuse_bytes", func() int64 {
		return int64(readMem().HeapInuse)
	})
	r.GaugeFunc("go_heap_objects", func() int64 {
		return int64(readMem().HeapObjects)
	})
}
