package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a registry snapshot.
//
// Metric names in the registry may carry labels in canonical
// `name{key="value",...}` form — build them with Labeled so values are
// escaped correctly. The renderer splits the base name from the label
// set, sanitizes the base to the Prometheus grammar, groups series of
// one base under a single # TYPE line, and renders histograms as the
// cumulative _bucket/_sum/_count triplet the format requires. Output is
// fully sorted, so it is deterministic for a given snapshot.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Labeled builds a canonical labeled metric name, `name{k="v",...}`,
// escaping backslash, double quote and newline in values as the
// exposition format demands. Keys are emitted in the given order; call
// sites should keep that order stable so one series maps to one
// registry entry. With no pairs it returns name unchanged.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitSeries separates a registry metric name into its sanitized base
// name and the raw label body (without braces, possibly empty).
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], strings.TrimSuffix(name[i+1:], "}")
	} else {
		base = name
	}
	return sanitizeMetricName(base), labels
}

// sanitizeMetricName maps an arbitrary base name onto the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	ok := func(i int, c byte) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if !ok(i, s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	b := []byte(s)
	for i := range b {
		if !ok(i, b[i]) {
			b[i] = '_'
		}
	}
	return string(b)
}

// promFloat renders a sample value; the format wants plain decimal or
// scientific notation, which 'g' provides.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promSeries is one (base, labels, render) entry awaiting output.
type promSeries struct {
	base   string
	labels string
	kind   string
	write  func(w *bufio.Writer, base, labels string)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters and gauges as single samples, histograms
// as cumulative le-bucket series with _sum and _count. Gauges include
// any GaugeFunc-computed values already folded into the snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	var all []promSeries
	for name, v := range s.Counters {
		v := v
		base, labels := splitSeries(name)
		all = append(all, promSeries{base, labels, "counter", func(w *bufio.Writer, base, labels string) {
			writeSample(w, base, labels, strconv.FormatInt(v, 10))
		}})
	}
	for name, v := range s.Gauges {
		v := v
		base, labels := splitSeries(name)
		all = append(all, promSeries{base, labels, "gauge", func(w *bufio.Writer, base, labels string) {
			writeSample(w, base, labels, strconv.FormatInt(v, 10))
		}})
	}
	for name, h := range s.Histograms {
		h := h
		base, labels := splitSeries(name)
		all = append(all, promSeries{base, labels, "histogram", func(w *bufio.Writer, base, labels string) {
			cum := uint64(0)
			for i, bound := range h.Bounds {
				cum += at64(h.Counts, i)
				writeSample(w, base+"_bucket", joinLabels(labels, `le="`+promFloat(bound)+`"`), strconv.FormatUint(cum, 10))
			}
			cum += at64(h.Counts, len(h.Bounds))
			writeSample(w, base+"_bucket", joinLabels(labels, `le="+Inf"`), strconv.FormatUint(cum, 10))
			writeSample(w, base+"_sum", labels, promFloat(h.Sum))
			writeSample(w, base+"_count", labels, strconv.FormatUint(cum, 10))
		}})
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].base != all[j].base {
			return all[i].base < all[j].base
		}
		return all[i].labels < all[j].labels
	})
	lastBase := ""
	for _, sr := range all {
		// One # TYPE line per base name; labeled series of one family
		// sort adjacent and share it.
		if sr.base != lastBase {
			lastBase = sr.base
			bw.WriteString("# TYPE ")
			bw.WriteString(sr.base)
			bw.WriteByte(' ')
			bw.WriteString(sr.kind)
			bw.WriteByte('\n')
		}
		sr.write(bw, sr.base, sr.labels)
	}
	return bw.Flush()
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func at64(c []uint64, i int) uint64 {
	if i < 0 || i >= len(c) {
		return 0
	}
	return c[i]
}
