package obs

// Schema version stamps. Every stream the repository emits carries one,
// so downstream tooling (cmd/ftreport above all) can detect what it is
// parsing and fail loudly on incompatible files instead of guessing:
// the probe JSONL opens with a {"schema":"fattree-probes/v1"} record,
// and the Chrome trace document carries the version under otherData
// (ignored by Perfetto, visible to parsers). Bump the /vN suffix on any
// backwards-incompatible change.
const (
	// ProbeSchema stamps the -metrics JSONL stream (probe samples plus
	// the closing registry snapshot).
	ProbeSchema = "fattree-probes/v1"
	// TraceSchema stamps the -trace Chrome trace-event document.
	TraceSchema = "fattree-trace/v1"
	// LinkProbeSchema stamps the -link-probes JSONL stream: per-channel
	// queue-depth and utilization series plus a closing per-link rollup
	// record (max queue depth and busy fraction per directed channel).
	LinkProbeSchema = "fattree-linkprobe/v1"
)

// StreamHeader is the leading record of a probe JSONL stream.
type StreamHeader struct {
	Schema string `json:"schema"`
}
