package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fattree/internal/des"
)

// TestFileSinksProbeIntervalFlag checks the -probe-interval plumbing:
// the flag's wall-style duration becomes the sampler's simulated-time
// period, a code-set Interval wins over the flag, and the metrics
// stream opens with the schema header record.
func TestFileSinksProbeIntervalFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.jsonl")

	var s FileSinks
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s.RegisterFlags(fs)
	if err := fs.Parse([]string{"-metrics", path, "-probe-interval", "500ns"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Sampler.Interval(), 500*des.Nanosecond; got != want {
		t.Errorf("interval = %v, want %v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("metrics stream is empty")
	}
	var hdr StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("first record is not JSON: %v", err)
	}
	if hdr.Schema != ProbeSchema {
		t.Errorf("first record schema = %q, want %q", hdr.Schema, ProbeSchema)
	}

	// Code-set Interval beats the flag.
	var s2 FileSinks
	s2.MetricsPath = filepath.Join(dir, "m2.jsonl")
	s2.Interval = 2 * des.Microsecond
	s2.ProbeEvery = 500 * time.Nanosecond
	if err := s2.Open(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Sampler.Interval(); got != 2*des.Microsecond {
		t.Errorf("code-set interval overridden: %v", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
