package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"fattree/internal/des"
)

// Sampler emits time-series probes as JSONL: at every interval of
// simulated time it evaluates each registered series and writes one
// record per series,
//
//	{"t_ps":1200000,"series":"link_util","values":[0.5,0,...]}
//
// plus whatever summary records the owner appends via Record. The
// sampler drives itself on a des.Scheduler as daemon events: ticks run
// only while regular simulation work remains queued, so the sampler
// never keeps a finished simulation alive, never advances the clock
// past the last real event, and leaves Stats.Duration untouched.
//
// Series callbacks run on the scheduler's goroutine, so they may read
// simulator state without synchronization. The sampler itself is
// mutex-protected, so Flush and Record may be called from elsewhere.
// All methods are nil-safe no-ops.
type Sampler struct {
	mu       sync.Mutex
	w        *bufio.Writer
	interval des.Time
	series   []probeSeries
	scratch  []float64
	err      error
}

type probeSeries struct {
	name string
	// fn fills buf (capacity-reused across ticks) with the series'
	// current values and returns it.
	fn func(now des.Time, buf []float64) []float64
}

// sampleRecord is the JSONL schema of one probe sample.
type sampleRecord struct {
	T      int64     `json:"t_ps"`
	Series string    `json:"series"`
	Values []float64 `json:"values"`
}

// NewSampler creates a sampler writing JSONL to w every interval of
// simulated time. A non-positive interval defaults to 1 microsecond.
func NewSampler(w io.Writer, interval des.Time) *Sampler {
	if interval <= 0 {
		interval = des.Microsecond
	}
	return &Sampler{w: bufio.NewWriter(w), interval: interval}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() des.Time {
	if s == nil {
		return 0
	}
	return s.interval
}

// Series registers a named probe. Owners re-registering for a fresh run
// should call Reset first.
func (s *Sampler) Series(name string, fn func(now des.Time, buf []float64) []float64) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.series = append(s.series, probeSeries{name: name, fn: fn})
}

// Reset drops all registered series (the output stream is kept).
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.series = nil
}

// Start samples now and schedules subsequent ticks on sched as daemon
// events, so the sampler stops with the simulation: a tick queued past
// the last regular event is discarded by the scheduler. Call again
// after loading more work (e.g. per barrier stage) to resume.
func (s *Sampler) Start(sched *des.Scheduler) {
	if s == nil || sched == nil {
		return
	}
	var tick func()
	tick = func() {
		s.sample(sched.Now())
		sched.AfterDaemon(s.interval, tick)
	}
	tick()
}

// Sample evaluates every registered series at the given instant and
// writes their records. Owners call it once at the end of a run: the
// scheduler discards daemon ticks queued past the last regular event,
// so without a final explicit sample the end state would go unrecorded.
func (s *Sampler) Sample(now des.Time) {
	if s == nil {
		return
	}
	s.sample(now)
}

func (s *Sampler) sample(now des.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	for _, p := range s.series {
		s.scratch = p.fn(now, s.scratch[:0])
		s.writeLocked(sampleRecord{T: int64(now), Series: p.name, Values: s.scratch})
	}
}

// Record appends an arbitrary JSONL record (e.g. a final registry
// snapshot) to the probe stream. v must be JSON-serializable.
func (s *Sampler) Record(v interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.writeLocked(v)
}

func (s *Sampler) writeLocked(v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Flush drains buffered output and reports the first error seen.
func (s *Sampler) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	return s.err
}
