package obs

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fattree/internal/des"
)

// FileSinks wires the uniform -trace and -metrics command-line flags
// the cmd/* tools share: a Chrome trace-event file and a JSONL stream
// of time-series probes closed by a final registry snapshot. Typical
// use:
//
//	var sinks obs.FileSinks
//	sinks.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	if err := sinks.Open(); err != nil { ... }
//	cfg.Metrics, cfg.Probes, cfg.Trace = sinks.Registry, sinks.Sampler, sinks.Tracer
//	... run ...
//	err = sinks.Close()
//
// With neither flag set every field stays nil, so attaching the sinks
// to a netsim.Config keeps the simulator's observability disabled.
type FileSinks struct {
	TracePath   string
	MetricsPath string
	// LinkProbesPath is the -link-probes flag value: a second JSONL
	// stream carrying the fattree-linkprobe/v1 per-channel series
	// (queue depth and utilization over simulated time) and the
	// end-of-run per-link rollup.
	LinkProbesPath string
	// Interval is the probe sampling period; NewSampler's default
	// (1 us of simulated time) applies when zero. The -probe-interval
	// flag sets it from the command line (ProbeEvery below); a non-zero
	// Interval set from code wins over the flag.
	Interval des.Time
	// ProbeEvery is the -probe-interval flag value: the probe sampling
	// period as a wall-clock style duration that is read as *simulated*
	// time (500ns of simulation, not of host runtime).
	ProbeEvery time.Duration

	Registry *Registry
	Tracer   *Tracer
	Sampler  *Sampler
	// LinkSampler drives the -link-probes stream; it shares the
	// -probe-interval cadence with Sampler.
	LinkSampler *Sampler

	traceFile     *os.File
	metricsFile   *os.File
	linkProbeFile *os.File
}

// RegisterFlags adds -trace, -metrics and -probe-interval to fs.
func (s *FileSinks) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.TracePath, "trace", "",
		"write lifecycle events to `file` in Chrome trace-event format (open in Perfetto or chrome://tracing)")
	fs.StringVar(&s.MetricsPath, "metrics", "",
		"write metrics and time-series probes to `file` as JSONL")
	fs.StringVar(&s.LinkProbesPath, "link-probes", "",
		"write per-link queue-depth/utilization probes to `file` as JSONL (fattree-linkprobe/v1)")
	fs.DurationVar(&s.ProbeEvery, "probe-interval", 0,
		"probe sampling `period` of simulated time for -metrics and -link-probes (e.g. 500ns, 2us; default 1us)")
}

// Enabled reports whether any output flag was given.
func (s *FileSinks) Enabled() bool {
	return s != nil && (s.TracePath != "" || s.MetricsPath != "" || s.LinkProbesPath != "")
}

// Open creates the requested files and builds the sinks; a no-op when
// neither flag was given.
func (s *FileSinks) Open() error {
	if !s.Enabled() {
		return nil
	}
	s.Registry = NewRegistry()
	if s.TracePath != "" {
		f, err := os.Create(s.TracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		s.traceFile = f
		s.Tracer = NewTracer(f)
	}
	interval := s.Interval
	if interval == 0 && s.ProbeEvery > 0 {
		// time.Duration is nanoseconds, des.Time picoseconds.
		interval = des.Time(s.ProbeEvery.Nanoseconds()) * des.Nanosecond
	}
	if s.MetricsPath != "" {
		f, err := os.Create(s.MetricsPath)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		s.metricsFile = f
		s.Sampler = NewSampler(f, interval)
		s.Sampler.Record(StreamHeader{Schema: ProbeSchema})
	}
	if s.LinkProbesPath != "" {
		f, err := os.Create(s.LinkProbesPath)
		if err != nil {
			return fmt.Errorf("link-probes: %w", err)
		}
		s.linkProbeFile = f
		s.LinkSampler = NewSampler(f, interval)
		s.LinkSampler.Record(StreamHeader{Schema: LinkProbeSchema})
	}
	return nil
}

// Close appends the final registry snapshot to the metrics stream as a
// {"snapshot":{...}} record, terminates the trace document and closes
// both files, reporting the first error seen. Safe to call when Open
// was a no-op or never ran.
func (s *FileSinks) Close() error {
	if !s.Enabled() {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.Sampler != nil {
		s.Sampler.Record(struct {
			Snapshot Snapshot `json:"snapshot"`
		}{s.Registry.Snapshot()})
		keep(s.Sampler.Flush())
	}
	if s.LinkSampler != nil {
		keep(s.LinkSampler.Flush())
	}
	if s.Tracer != nil {
		keep(s.Tracer.Close())
	}
	if s.metricsFile != nil {
		keep(s.metricsFile.Close())
	}
	if s.linkProbeFile != nil {
		keep(s.linkProbeFile.Close())
	}
	if s.traceFile != nil {
		keep(s.traceFile.Close())
	}
	if first != nil {
		return fmt.Errorf("closing observability sinks: %w", first)
	}
	return nil
}
