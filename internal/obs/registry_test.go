package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"

	"fattree/internal/des"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.Max(3)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge.Max(3) lowered the value to %d", got)
	}
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge.Max(9) = %d, want 9", got)
	}
}

// TestNilSafety drives every handle and sink through a nil receiver;
// the contract is that disabled observability costs a nil check and
// nothing else, so none of these may panic.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	g.Max(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.BucketCount(0) != 0 {
		t.Error("nil histogram recorded something")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil {
		t.Error("nil registry handed out a live handle")
	}
	if hh, err := r.Histogram("x", []float64{1}); hh != nil || err != nil {
		t.Error("nil registry handed out a live histogram")
	}
	if names := r.Names(); names != nil {
		t.Errorf("nil registry has names %v", names)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var tr *Tracer
	tr.ProcessName(1, "x")
	tr.ThreadName(1, 2, "x")
	tr.Instant(1, 2, 3, "x")
	tr.Complete(1, 2, 3, 4, "x")
	tr.Counter(1, 2, "x")
	if tr.Events() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Error("nil tracer not inert")
	}
	var s *Sampler
	s.Series("x", func(_ des.Time, buf []float64) []float64 { return buf })
	s.Reset()
	s.Start(nil)
	s.Record(1)
	if s.Flush() != nil || s.Interval() != 0 {
		t.Error("nil sampler not inert")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := newHistogram([]float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	// An observation equal to a bound belongs to that bound's bucket;
	// anything above the last bound overflows.
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0},
		{1.0000001, 1}, {2, 1},
		{2.5, 2}, {5, 2},
		{5.0001, 3}, {100, 3}, {math.Inf(1), 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := make([]uint64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if got := h.BucketCount(i); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	if h.BucketCount(-1) != 0 || h.BucketCount(4) != 0 {
		t.Error("out-of-range bucket indices must read 0")
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Histogram("empty", nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := r.Histogram("desc", []float64{2, 1}); err == nil {
		t.Error("descending bounds accepted")
	}
	if _, err := r.Histogram("dup", []float64{1, 1}); err == nil {
		t.Error("duplicate bounds accepted")
	}
	h1 := r.MustHistogram("ok", []float64{1, 2})
	h2 := r.MustHistogram("ok", []float64{9, 10, 11}) // bounds ignored on reuse
	if h1 != h2 {
		t.Error("same name produced two histograms")
	}
}

func TestHistogramSum(t *testing.T) {
	h, _ := newHistogram([]float64{10})
	for _, v := range []float64{1.5, 2.5, 6} {
		h.Observe(v)
	}
	if got := h.Sum(); math.Abs(got-10) > 1e-12 {
		t.Errorf("sum = %v, want 10", got)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	r.Gauge("depth").Set(4)
	r.MustHistogram("lat", []float64{1, 10}).Observe(3)
	var b1, b2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("snapshot JSON not deterministic:\n%s\n%s", b1.String(), b2.String())
	}
	var decoded Snapshot
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(decoded.Counters, map[string]int64{"a": 1, "b": 2}) {
		t.Errorf("counters decoded as %v", decoded.Counters)
	}
	if decoded.Histograms["lat"].Counts[1] != 1 {
		t.Errorf("histogram decoded as %+v", decoded.Histograms["lat"])
	}
}

// TestConcurrentUpdatesAndSnapshots hammers one registry from many
// goroutines while snapshots are taken — meaningful under -race, and
// the totals must still balance.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("total")
	h := r.MustHistogram("dist", []float64{10, 100})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 150))
			}
		}(w)
	}
	wg.Wait()
	close(done)
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	var buckets uint64
	for i := 0; i < 3; i++ {
		buckets += h.BucketCount(i)
	}
	if buckets != h.Count() {
		t.Errorf("bucket sum %d != count %d", buckets, h.Count())
	}
}

// TestHistogramQuantiles pins the bucket-interpolated estimator against
// distributions whose quantiles are known exactly.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()

	// Uniform 1..100 into decade buckets: every bucket (lo, lo+10] holds
	// ten observations, so linear interpolation recovers the true
	// quantiles exactly: p50 = 50, p95 = 95, p99 = 99.
	u := r.MustHistogram("uniform", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		u.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {0.10, 10}, {1, 100},
	} {
		if got := u.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("uniform q%.2f = %v, want %v", tc.q, got, tc.want)
		}
	}

	// Point mass: 1000 observations of the value 3 in bucket (2, 4].
	// Every quantile lands in that bucket; interpolation positions p50
	// mid-bucket and p99 near its upper edge.
	p := r.MustHistogram("point", []float64{2, 4, 8})
	for i := 0; i < 1000; i++ {
		p.Observe(3)
	}
	if got := p.Quantile(0.5); got <= 2 || got > 4 {
		t.Errorf("point-mass p50 = %v, want within (2,4]", got)
	}

	// Overflow clamps to the last bound.
	o := r.MustHistogram("over", []float64{1, 2})
	o.Observe(100)
	o.Observe(200)
	if got := o.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %v, want clamp to 2", got)
	}

	// Empty histogram and nil receiver report 0.
	e := r.MustHistogram("empty", []float64{1})
	if got := e.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil p50 = %v", got)
	}

	// Snapshots precompute p50/p95/p99 and round-trip through JSON.
	snap := r.Snapshot()
	hs := snap.Histograms["uniform"]
	if hs.P50 != 50 || hs.P95 != 95 || hs.P99 != 99 {
		t.Errorf("snapshot quantiles = %v/%v/%v, want 50/95/99", hs.P50, hs.P95, hs.P99)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Histograms["uniform"].P95; got != 95 {
		t.Errorf("round-tripped p95 = %v", got)
	}
	if got := back.Histograms["uniform"].Quantile(0.25); math.Abs(got-25) > 1e-9 {
		t.Errorf("recomputed q0.25 from parsed snapshot = %v, want 25", got)
	}
}

// TestHistogramQuantileSkewed checks the estimator against a geometric
// pile-up in the lowest buckets, the shape message latencies take.
func TestHistogramQuantileSkewed(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("skew", []float64{1, 2, 5, 10, 100})
	// 900 observations in (0,1], 90 in (1,2], 9 in (2,5], 1 in (5,10].
	for i := 0; i < 900; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 90; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(3)
	}
	h.Observe(7)
	// p50: rank 500 of 1000 inside the first bucket -> 500/900 of (0,1].
	if got, want := h.Quantile(0.5), 500.0/900.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("skew p50 = %v, want %v", got, want)
	}
	// p95: rank 950, 50 into the 90-count bucket (1,2].
	if got, want := h.Quantile(0.95), 1+50.0/90.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("skew p95 = %v, want %v", got, want)
	}
	// p99: rank 990 is exactly the cumulative edge of bucket (1,2].
	if got := h.Quantile(0.99); math.Abs(got-2) > 1e-9 {
		t.Errorf("skew p99 = %v, want 2", got)
	}
}
