// Package obs is the observability layer of the repository: a
// zero-allocation-on-hot-path metrics registry (counters, gauges,
// fixed-bucket histograms), time-series probes driven by the discrete
// event scheduler, and a structured event tracer that exports runs in
// Chrome trace-event format (openable in Perfetto / chrome://tracing).
//
// Every handle and sink in this package is nil-safe: methods on a nil
// *Counter, *Gauge, *Histogram, *Tracer or *Sampler are no-ops, so
// instrumented code can hold nil handles when observability is disabled
// and pay only a nil check on the hot path. All types are safe for
// concurrent use — counters and histograms update with atomics, so a
// snapshot can be taken from another goroutine while a simulation runs.
//
// docs/OBSERVABILITY.md documents the metric names, the probe JSONL
// schema and the trace event schema used across the repository.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 to keep the counter monotonic; negative
// deltas are ignored). No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add applies a delta. No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Max raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. An observation v lands in
// the first bucket whose upper bound satisfies v <= bound; observations
// above the last bound land in the implicit overflow bucket.
type Histogram struct {
	bounds []float64       // ascending upper bounds, immutable after creation
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly ascending at %d (%v <= %v)",
				i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}, nil
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branchless-ish linear scan: bucket counts are small (tens), and a
	// linear scan beats sort.SearchFloat64s for those sizes while
	// allocating nothing.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCount returns the observation count of bucket i, where bucket
// len(bounds) is the overflow bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the current
// bucket counts; see HistogramSnapshot.Quantile for the estimator.
// Returns 0 on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s.Quantile(q)
}

// Registry holds named metrics. The zero value is not usable; a nil
// *Registry hands out nil handles, making disabled instrumentation free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() int64),
	}
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — for values the process can always answer (goroutine count,
// uptime) without anything updating a stored gauge. fn runs with the
// registry lock held and must not call back into the registry. A
// GaugeFunc shadows a stored Gauge of the same name in snapshots.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use; later calls reuse the
// existing instance (the bounds argument is then ignored). A nil
// registry returns a nil (no-op) handle. Invalid bounds return an
// error.
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h, nil
	}
	h, err := newHistogram(bounds)
	if err != nil {
		return nil, err
	}
	r.hists[name] = h
	return h, nil
}

// MustHistogram is Histogram that panics on invalid bounds — for
// statically known bucket layouts.
func (r *Registry) MustHistogram(name string, bounds []float64) *Histogram {
	h, err := r.Histogram(name, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram. P50/P95/P99
// are bucket-interpolated quantile estimates (see Quantile), precomputed
// so JSONL consumers get latency percentiles without re-deriving them.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation within the containing bucket — the
// standard fixed-bucket estimator. The first bucket interpolates from a
// lower edge of 0 (every histogram in this repository observes
// non-negative values); ranks landing in the overflow bucket clamp to
// the last bound, the estimator's resolution limit. The rank is taken
// against the sum of Counts, so the estimate is self-consistent even if
// the snapshot raced a concurrent Observe. An empty histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if len(s.Bounds) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range s.Counts {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * total
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			return lo + (s.Bounds[i]-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a frozen, JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. Safe to call while
// other goroutines keep updating metrics. A nil registry snapshots
// empty maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as a single JSON object. Map keys are
// emitted sorted (encoding/json's behaviour), so output is
// deterministic for a given state.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Names returns the sorted metric names of every kind, for tests and
// documentation tooling.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.gaugeFuncs {
		if _, stored := r.gauges[n]; !stored {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
