package obs

import (
	"testing"
	"time"
)

func TestREDObserve(t *testing.T) {
	r := NewRegistry()
	red := NewRED(r, "svc", []float64{100, 1000})
	ep := red.Endpoint("GET /v1/route")

	ep.Observe(200, 50*time.Microsecond)
	ep.Observe(200, 150*time.Microsecond)
	ep.Observe(404, 10*time.Microsecond)
	ep.Observe(503, 10*time.Microsecond)
	ep.Observe(0, time.Millisecond) // transport failure sentinel

	snap := r.Snapshot()
	checks := map[string]int64{
		`svc_requests_total{endpoint="GET /v1/route",code="2xx"}`:   2,
		`svc_requests_total{endpoint="GET /v1/route",code="4xx"}`:   1,
		`svc_requests_total{endpoint="GET /v1/route",code="5xx"}`:   1,
		`svc_requests_total{endpoint="GET /v1/route",code="error"}`: 1,
		`svc_errors_total{endpoint="GET /v1/route"}`:                3,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h := snap.Histograms[`svc_request_duration_us{endpoint="GET /v1/route"}`]
	if h.Count != 5 {
		t.Fatalf("duration count = %d, want 5", h.Count)
	}
	if h.Sum != 50+150+10+10+1000 {
		t.Fatalf("duration sum = %v", h.Sum)
	}
}

// TestREDEndpointReuse: repeated Endpoint calls return the same handles
// and keep accumulating into the same series.
func TestREDEndpointReuse(t *testing.T) {
	r := NewRegistry()
	red := NewRED(r, "svc", nil)
	a := red.Endpoint("x")
	b := red.Endpoint("x")
	if a != b {
		t.Fatal("Endpoint not cached")
	}
	a.Observe(200, time.Microsecond)
	b.Observe(200, time.Microsecond)
	if got := r.Snapshot().Counters[`svc_requests_total{endpoint="x",code="2xx"}`]; got != 2 {
		t.Fatalf("accumulated = %d, want 2", got)
	}
}

// TestREDNil: the whole chain is a no-op when the registry is nil.
func TestREDNil(t *testing.T) {
	red := NewRED(nil, "svc", nil)
	if red != nil {
		t.Fatal("NewRED(nil) should be nil")
	}
	ep := red.Endpoint("x") // nil receiver
	ep.Observe(200, time.Second)
	ep.Observe(500, time.Second)
}
