package obs

import (
	"strconv"
	"sync/atomic"
	"time"

	"fattree/internal/des"
)

// SpanTracer is a lightweight distributed-tracing facade over the
// Chrome trace-event Tracer: spans carry a trace ID, a span ID and a
// parent link, and serialize as ph:"X" duration events, so a daemon's
// request traces open in chrome://tracing / Perfetto exactly like the
// simulator's packet traces. Wall-clock time is mapped onto the trace's
// microsecond axis relative to the tracer's start.
//
// All methods are nil-safe: a nil *SpanTracer starts nil *Spans whose
// methods (Child, Tag, End) are no-ops, so instrumented code pays one
// nil check when tracing is off — the same contract as the rest of this
// package.
type SpanTracer struct {
	tr    *Tracer
	pid   int
	epoch time.Time
	ids   atomic.Uint64
}

// NewSpanTracer labels lane group pid on tr and returns the span
// factory. Nil tr yields a nil tracer.
func NewSpanTracer(tr *Tracer, pid int, name string) *SpanTracer {
	if tr == nil {
		return nil
	}
	tr.ProcessName(pid, name)
	return &SpanTracer{tr: tr, pid: pid, epoch: time.Now()}
}

// now maps wall time onto the trace clock (des.Time picoseconds).
func (st *SpanTracer) now() des.Time {
	return des.Time(time.Since(st.epoch).Nanoseconds()) * des.Nanosecond
}

// Span is one open span. End it exactly once; children must end before
// (or at least render sensibly when nested within) their parent.
type Span struct {
	st     *SpanTracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  des.Time
	args   []Arg
}

// StartTrace opens a root span under a fresh trace ID. Nil-safe.
func (st *SpanTracer) StartTrace(name string) *Span {
	if st == nil {
		return nil
	}
	id := st.ids.Add(1)
	return &Span{st: st, trace: id, id: id, name: name, start: st.now()}
}

// Child opens a sub-span sharing the receiver's trace ID. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		st:     s.st,
		trace:  s.trace,
		id:     s.st.ids.Add(1),
		parent: s.id,
		name:   name,
		start:  s.st.now(),
	}
}

// Tag attaches arguments rendered into the span's args object at End.
// Nil-safe.
func (s *Span) Tag(args ...Arg) {
	if s == nil {
		return
	}
	s.args = append(s.args, args...)
}

// TagStr attaches one string argument. Unlike the variadic Tag it
// reserves no argument array in the caller's frame, so per-request
// handlers can annotate spans without inflating their stack frames
// (each variadic site costs sizeof(Arg) of caller stack even when the
// span is nil). Nil-safe.
func (s *Span) TagStr(key, val string) {
	if s == nil {
		return
	}
	s.args = append(s.args, Str(key, val))
}

// TagNum attaches one number argument; see TagStr for why this exists
// alongside Tag. Nil-safe.
func (s *Span) TagNum(key string, val float64) {
	if s == nil {
		return
	}
	s.args = append(s.args, Num(key, val))
}

// TraceID returns the span's trace identifier in the hex form embedded
// in the serialized event; zero-string on nil.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return strconv.FormatUint(s.trace, 16)
}

// End closes the span, emitting one complete event on the tracer. All
// spans of one trace share a tid lane, so a request's spans nest
// visually; different traces spread across lanes. Nil-safe, and
// idempotence is not required of callers — End on an already-ended span
// would emit a duplicate, so call it once (defer is the intended use).
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.st.now()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	args := make([]Arg, 0, len(s.args)+3)
	args = append(args,
		Str("trace_id", strconv.FormatUint(s.trace, 16)),
		Str("span_id", strconv.FormatUint(s.id, 16)))
	if s.parent != 0 {
		args = append(args, Str("parent_id", strconv.FormatUint(s.parent, 16)))
	}
	args = append(args, s.args...)
	s.st.tr.Complete(s.st.pid, int(s.trace%64), s.start, dur, s.name, args...)
}
