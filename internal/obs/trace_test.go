package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fattree/internal/des"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeTrace mirrors the subset of the Chrome trace-event schema the
// tracer emits, for validity checks.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		Pid  int                    `json:"pid"`
		Tid  int                    `json:"tid"`
		Ts   *float64               `json:"ts"`
		Dur  *float64               `json:"dur"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
}

func sampleTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.ProcessName(1, "hosts")
	tr.ProcessName(2, "links")
	tr.ThreadName(2, 4, "ch4 n0->n16")
	tr.Instant(1, 0, 0, "inject", Str("msg", "0>5"), Num("seq", 0))
	tr.Complete(2, 4, 100*des.Nanosecond, 512*des.Nanosecond, "pkt 0>5 #0",
		Num("bytes", 2048))
	tr.Instant(2, 4, 700*des.Nanosecond, "head-arrives")
	tr.Counter(0, des.Microsecond, "event_queue", Num("pending", 42))
	tr.Complete(3, 0, 0, 2*des.Microsecond, "stage 0", Num("flows", 2))
	tr.Instant(1, 5, 2*des.Microsecond, "deliver", Str("msg", "0>5"))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 9 {
		t.Fatalf("recorded %d events, want 9", tr.Events())
	}
	return buf.Bytes()
}

// TestTraceGolden pins the exact bytes of the Chrome trace-event
// encoding. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestTraceGolden(t *testing.T) {
	got := sampleTrace(t)
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace diverges from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTraceParses asserts the emitted document is valid JSON in the
// Chrome trace-event shape — what Perfetto actually requires.
func TestTraceParses(t *testing.T) {
	raw := sampleTrace(t)
	var ct chromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if ct.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	if len(ct.TraceEvents) != 9 {
		t.Fatalf("parsed %d events, want 9", len(ct.TraceEvents))
	}
	for i, ev := range ct.TraceEvents {
		if ev.Ph == "" || ev.Name == "" {
			t.Errorf("event %d missing ph/name: %+v", i, ev)
		}
		if ev.Ph != "M" && ev.Ts == nil {
			t.Errorf("event %d (%s) missing ts", i, ev.Name)
		}
		if ev.Ph == "X" && ev.Dur == nil {
			t.Errorf("event %d (%s) is ph=X without dur", i, ev.Name)
		}
	}
	// Spot-check the time unit conversion: 100 ns = 0.1 us.
	if ts := *ct.TraceEvents[4].Ts; ts != 0.1 {
		t.Errorf("Complete ts = %v us, want 0.1", ts)
	}
	if dur := *ct.TraceEvents[4].Dur; dur != 0.512 {
		t.Errorf("Complete dur = %v us, want 0.512", dur)
	}
}

func TestTraceEmptyAndDoubleClose(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("empty trace invalid: %v\n%s", err, buf.Bytes())
	}
	if len(ct.TraceEvents) != 0 {
		t.Errorf("empty trace has %d events", len(ct.TraceEvents))
	}
	// Events after Close are dropped, not appended to a closed array.
	tr.Instant(0, 0, 0, "late")
	if tr.Events() != 0 {
		t.Error("event recorded after Close")
	}
}

func TestTraceQuoting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Instant(0, 0, 0, `na"me`, Str(`k"ey`, `v"al`))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("quoted trace invalid: %v\n%s", err, buf.Bytes())
	}
	if ct.TraceEvents[0].Name != `na"me` {
		t.Errorf("name round-trip = %q", ct.TraceEvents[0].Name)
	}
	if ct.TraceEvents[0].Args[`k"ey`] != `v"al` {
		t.Errorf("args round-trip = %v", ct.TraceEvents[0].Args)
	}
}
