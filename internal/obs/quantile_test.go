package obs

import (
	"sync"
	"testing"
)

// TestQuantileEdgeCases pins the fixed-bucket estimator at its corners:
// empty histogram, a single sample, all-equal values, and values beyond
// the last bound (which clamp to it — "at least this much").
func TestQuantileEdgeCases(t *testing.T) {
	bounds := []float64{10, 100, 1000}

	t.Run("zero samples", func(t *testing.T) {
		h, _ := newHistogram(bounds)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
			}
		}
	})

	t.Run("one sample", func(t *testing.T) {
		h, _ := newHistogram(bounds)
		h.Observe(42)
		// The single sample lands in (10,100]; every quantile must
		// interpolate inside that bucket, never outside it.
		for _, q := range []float64{0.01, 0.5, 0.99} {
			got := h.Quantile(q)
			if got <= 10 || got > 100 {
				t.Fatalf("Quantile(%v) = %v, want within (10,100]", q, got)
			}
		}
	})

	t.Run("all equal", func(t *testing.T) {
		h, _ := newHistogram(bounds)
		for i := 0; i < 1000; i++ {
			h.Observe(50)
		}
		p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
		if p50 <= 10 || p50 > 100 || p99 <= 10 || p99 > 100 {
			t.Fatalf("all-equal p50=%v p99=%v escaped the (10,100] bucket", p50, p99)
		}
		if p99 < p50 {
			t.Fatalf("p99 %v < p50 %v", p99, p50)
		}
	})

	t.Run("beyond last bucket", func(t *testing.T) {
		h, _ := newHistogram(bounds)
		for i := 0; i < 10; i++ {
			h.Observe(1e9) // overflow bucket
		}
		for _, q := range []float64{0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 1000 {
				t.Fatalf("overflow Quantile(%v) = %v, want clamp to 1000", q, got)
			}
		}
	})

	t.Run("quantile out of range clamps", func(t *testing.T) {
		h, _ := newHistogram(bounds)
		h.Observe(5)
		if got := h.Quantile(-1); got < 0 || got > 10 {
			t.Fatalf("Quantile(-1) = %v", got)
		}
		if got := h.Quantile(2); got < 0 || got > 10 {
			t.Fatalf("Quantile(2) = %v", got)
		}
	})

	t.Run("nil receiver", func(t *testing.T) {
		var h *Histogram
		if got := h.Quantile(0.99); got != 0 {
			t.Fatalf("nil Quantile = %v", got)
		}
	})
}

// TestSnapshotQuantileSelfConsistentUnderRace: snapshots taken while
// observations pour in from other goroutines must stay internally
// consistent (rank against the snapshot's own counts, monotone
// quantiles) — run under -race this also proves the data-race freedom
// of snapshot-while-recording.
func TestSnapshotQuantileSelfConsistentUnderRace(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("lat_us", DefaultREDBucketsUS)
	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				v = v*1.7 + 1
				if v > 2e6 {
					v = float64(seed + 1)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		hs, ok := snap.Histograms["lat_us"]
		if !ok {
			t.Fatal("histogram missing from snapshot")
		}
		var total uint64
		for _, c := range hs.Counts {
			total += c
		}
		if !(hs.P50 <= hs.P95 && hs.P95 <= hs.P99) {
			t.Fatalf("non-monotone quantiles: p50=%v p95=%v p99=%v (n=%d)", hs.P50, hs.P95, hs.P99, total)
		}
		if total > 0 && hs.P99 <= 0 {
			t.Fatalf("p99 = %v with %d samples", hs.P99, total)
		}
	}
	close(stop)
	wg.Wait()
}
