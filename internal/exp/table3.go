package exp

import (
	"fmt"
	"math/rand"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// Table3Case is one row of the verification table: a topology and how
// many randomly selected nodes are excluded from the job ("Cont.-X").
// Removals are kept multiples of the topology's allocation granule
// (prod(w_i)*p_h — e.g. K for two-level trees, 324 for the 1944-node
// cluster) so that the Shift wrap-around stays cyclic at every level —
// the regime in which the paper reports HSD = 1 for partial trees (see
// the wrap-around ablation for what happens otherwise).
type Table3Case struct {
	Name    string
	Cluster topo.PGFT
	Drop    int
	Seed    int64
}

// Table3Opts scales the Table 3 run.
type Table3Opts struct {
	Cases       []Table3Case
	RandomSeeds int // random orderings for the comparison column
	ShiftStride int // stage sampling for the Shift (1 = all)
}

// DefaultTable3Opts returns the paper-scale case list: 2- and 3-level
// RLFTs, fully and partially populated.
func DefaultTable3Opts() Table3Opts {
	return Table3Opts{
		Cases: []Table3Case{
			{"RLFT2-128 full", topo.Cluster128, 0, 1},
			{"RLFT2-128 Cont.-8", topo.Cluster128, 8, 1},
			{"RLFT2-128 Cont.-24", topo.Cluster128, 24, 2},
			{"RLFT2-324 full", topo.Cluster324, 0, 1},
			{"RLFT2-324 Cont.-18", topo.Cluster324, 18, 1},
			{"RLFT2-324 Cont.-54", topo.Cluster324, 54, 2},
			{"RLFT3-1728 full", topo.Cluster1728, 0, 1},
			{"RLFT3-1728 Cont.-144", topo.Cluster1728, 144, 1},
			{"RLFT3-1944 full", topo.Cluster1944, 0, 1},
			{"RLFT3-1944 Cont.-324", topo.Cluster1944, 324, 1},
		},
		RandomSeeds: 5,
		ShiftStride: 1,
	}
}

// Table3 reproduces the paper's verification table: for every case, the
// proposed configuration (rank-compacted D-Mod-K routing + topology
// ordering) yields average max HSD of exactly 1 for the Shift CPS (and
// hence all unidirectional CPS) and for the Section VI topology-aware
// recursive doubling; the "random ranking" column shows the average max
// HSD when ranks are assigned randomly, with improvement factors up to
// ~5.2 in the paper.
func Table3(o Table3Opts) (*Table, error) {
	t := &Table{
		Title: "Table 3: proposed routing + MPI node order vs random ranking (avg max HSD)",
		Header: []string{
			"case", "nodes", "job", "shift HSD", "topo-RD HSD", "random shift HSD", "improvement",
		},
	}
	for _, c := range o.Cases {
		tp, err := topo.Build(c.Cluster)
		if err != nil {
			return nil, err
		}
		n := tp.NumHosts()
		active, activeList := activeSet(n, c.Drop, c.Seed)
		lft, err := route.DModKActive(tp, activeList)
		if err != nil {
			return nil, err
		}
		rt := fastRouter(lft)
		ordered := order.Topology(n, activeList)

		shift := cps.Sequence(cps.Shift(len(activeList)))
		if o.ShiftStride > 1 {
			var idx []int
			for s := 0; s < shift.NumStages(); s += o.ShiftStride {
				idx = append(idx, s)
			}
			shift, err = mpi.SampleStages(shift, idx)
			if err != nil {
				return nil, err
			}
		}
		repShift, err := hsd.AnalyzeParallel(rt, ordered, shift, 0)
		if err != nil {
			return nil, err
		}

		taSeq, err := cps.TopoAwareRecursiveDoublingPartial(c.Cluster.M, activeList)
		if err != nil {
			return nil, err
		}
		repTA, err := hsd.AnalyzeParallel(rt, ordered, taSeq, 0)
		if err != nil {
			return nil, err
		}

		var orders []*order.Ordering
		for seed := 0; seed < o.RandomSeeds; seed++ {
			orders = append(orders, order.Random(n, activeList, int64(seed)))
		}
		sw, err := hsd.SweepOrderingsParallel(rt, orders, shift, 0)
		if err != nil {
			return nil, err
		}
		improvement := sw.Mean / repShift.AvgMaxHSD()

		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprint(n),
			fmt.Sprint(len(activeList)),
			f2(repShift.AvgMaxHSD()),
			f2(repTA.AvgMaxHSD()),
			f2(sw.Mean),
			f2(improvement),
		})
		_ = active
	}
	t.Notes = append(t.Notes,
		"paper: all proposed-configuration rows report HSD = 1.00; random-ranking column up to 5.2x worse",
		"partial jobs remove random nodes in multiples of the allocation granule prod(w)*p_h (see the wrap-around ablation)")
	return t, nil
}

// activeSet removes drop random hosts (deterministic per seed) and
// returns both the membership mask and the sorted active list.
func activeSet(n, drop int, seed int64) ([]bool, []int) {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	if drop > 0 {
		r := rand.New(rand.NewSource(seed))
		perm := r.Perm(n)
		for _, h := range perm[:drop] {
			mask[h] = false
		}
	}
	var list []int
	for h, on := range mask {
		if on {
			list = append(list, h)
		}
	}
	return mask, list
}
