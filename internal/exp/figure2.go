package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// Figure2Opts scales the Figure 2 reproduction. The paper simulated a
// 1944-node cluster over the full Shift sequence; the packet-level cost
// of that is enormous, so ShiftStages samples a representative subset of
// stages (the per-stage behaviour is what the average is made of).
type Figure2Opts struct {
	Cluster     topo.PGFT
	Sizes       []int64 // message payloads in bytes
	ShiftStages int     // how many Shift stages to sample (0 = all)
	Seed        int64   // random-ordering seed
	Config      netsim.Config
}

// DefaultFigure2Opts returns the paper-scale parameters.
func DefaultFigure2Opts() Figure2Opts {
	return Figure2Opts{
		Cluster:     topo.Cluster1944,
		Sizes:       []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20},
		ShiftStages: 8,
		Seed:        1,
		Config:      netsim.DefaultConfig(),
	}
}

// Figure2 reproduces "Shift and Recursive Doubling Collectives Normalized
// BW vs. Message Size": random MPI node order, asynchronous stage
// progression, normalized effective bandwidth (1.0 = every host streams
// at the PCIe rate). The paper's shape: bandwidth decreases with message
// size, and Recursive-Doubling sits below Shift because its short
// sequence cannot average contention out.
func Figure2(o Figure2Opts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	lft, err := engineLFT(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	job, err := mpi.NewJob(lft, order.Random(n, nil, o.Seed))
	if err != nil {
		return nil, err
	}

	shift := cps.Sequence(cps.Shift(n))
	if o.ShiftStages > 0 && o.ShiftStages < shift.NumStages() {
		idx := make([]int, o.ShiftStages)
		step := shift.NumStages() / o.ShiftStages
		for i := range idx {
			idx[i] = i * step
		}
		shift, err = mpi.SampleStages(shift, idx)
		if err != nil {
			return nil, err
		}
	}
	recdbl := cps.RecursiveDoubling(n)

	t := &Table{
		Title:  fmt.Sprintf("Figure 2: normalized BW vs message size, %d nodes, random order", n),
		Header: []string{"message bytes", "shift norm BW", "recursive-doubling norm BW"},
	}
	for _, size := range o.Sizes {
		sShift, err := job.Simulate(shift, size, false, simConfig(o.Config))
		if err != nil {
			return nil, err
		}
		sRD, err := job.Simulate(recdbl, size, false, simConfig(o.Config))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(size),
			f3(job.NormalizedBandwidth(sShift, o.Config)),
			f3(job.NormalizedBandwidth(sRD, o.Config)),
		})
	}
	t.Notes = append(t.Notes,
		"paper: ~40-60% plateau for random order, decreasing with message size; recursive doubling below shift",
		fmt.Sprintf("shift sampled to %d stages; async per-host progression", o.ShiftStages))
	return t, nil
}
