package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/fabric"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// FaultResilience measures how gracefully the contention-free
// configuration degrades when fabric cables die and the subnet manager
// reroutes around them (an extension beyond the paper, using its own
// HSD methodology): the Shift CPS under topology ordering on the
// rerouted tables, versus the number of dead switch-to-switch links.
func FaultResilience(cluster topo.PGFT, seeds int) (*Table, error) {
	tp, err := topo.Build(cluster)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	fabricLinks := 0
	for i := range tp.Links {
		if tp.Node(tp.Ports[tp.Links[i].Lower].Node).Kind == topo.Switch {
			fabricLinks++
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("Fault resilience: Shift HSD after reroute, %d nodes (%d fabric links)", n, fabricLinks),
		Header: []string{"dead links", "dead %", "worst max HSD", "mean avg HSD", "broken pairs"},
	}
	for _, kill := range []int{0, 1, 2, 4, 8, 16} {
		if kill > fabricLinks/4 {
			break
		}
		worst := 0
		meanAvg := 0.0
		broken := 0
		for seed := int64(0); seed < int64(seeds); seed++ {
			fs := fabric.NewFaultSet(tp)
			if err := fs.FailRandomFabricLinks(kill, seed+1); err != nil {
				return nil, err
			}
			lft, res, err := fs.RouteAround()
			if err != nil {
				return nil, err
			}
			broken += res.BrokenPairs
			rep, err := hsd.AnalyzeParallel(fastRouter(lft), order.Topology(n, nil), cps.Shift(n), 0)
			if err != nil {
				return nil, err
			}
			if rep.MaxHSD() > worst {
				worst = rep.MaxHSD()
			}
			meanAvg += rep.AvgMaxHSD()
		}
		meanAvg /= float64(seeds)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(kill),
			fmt.Sprintf("%.1f%%", 100*float64(kill)/float64(fabricLinks)),
			fmt.Sprint(worst),
			f2(meanAvg),
			fmt.Sprint(broken),
		})
	}
	t.Notes = append(t.Notes,
		"expected: HSD grows by ~1 near each fault (flows fold onto neighbouring up-links), no cliff",
		"broken pairs stay 0 at these fault levels; minimal up*/down* rerouting keeps every host reachable")
	return t, nil
}
