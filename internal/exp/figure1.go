package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// shiftBy is the fixed-displacement single-stage pattern of Figure 1:
// destination = (source + d) mod N.
type shiftBy struct{ n, d int }

// ShiftBy returns the one-stage displacement-d pattern over n ranks.
func ShiftBy(n, d int) cps.Sequence { return shiftBy{n, d} }

func (s shiftBy) Name() string        { return fmt.Sprintf("shift+%d", s.d) }
func (s shiftBy) Size() int           { return s.n }
func (s shiftBy) NumStages() int      { return 1 }
func (s shiftBy) Bidirectional() bool { return false }
func (s shiftBy) Stage(int) cps.Stage {
	st := make(cps.Stage, s.n)
	for i := 0; i < s.n; i++ {
		st[i] = cps.Pair{Src: int32(i), Dst: int32((i + s.d) % s.n)}
	}
	return st
}

// Figure1 reproduces the paper's introductory example: 16 end-ports on a
// two-level parallel-port fat-tree running destination = (source+4) mod
// 16. A random MPI node order creates hot spots (the paper draws 3);
// the routing-aware order is congestion free.
func Figure1(randomSeeds int) (*Table, error) {
	tp, err := topo.Build(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	if err != nil {
		return nil, err
	}
	rt, err := engineRouter(tp)
	if err != nil {
		return nil, err
	}
	seq := ShiftBy(16, 4)
	t := &Table{
		Title:  "Figure 1: routing-aware vs random MPI node order, dst=(src+4) mod 16",
		Header: []string{"ordering", "max HSD", "hot links"},
	}
	ordered, err := hsd.AnalyzeParallel(rt, order.Topology(16, nil), seq, 0)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"routing-aware", fmt.Sprint(ordered.MaxHSD()), fmt.Sprint(ordered.Stages[0].HotLinks),
	})
	for seed := int64(0); seed < int64(randomSeeds); seed++ {
		rep, err := hsd.AnalyzeParallel(rt, order.Random(16, nil, seed), seq, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("random(seed=%d)", seed),
			fmt.Sprint(rep.MaxHSD()),
			fmt.Sprint(rep.Stages[0].HotLinks),
		})
	}
	t.Notes = append(t.Notes,
		"paper's Figure 1(a) shows 3 hot links for its random order; 1(b) shows zero for the routing-aware order")
	return t, nil
}
