package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/route"
	"fattree/internal/sched"
	"fattree/internal/topo"
)

// MultiJob extends the paper's single-job result to the utility-cluster
// setting it declares out of scope: several jobs run Shift collectives
// simultaneously on the global D-Mod-K tables. Granule-aligned
// allocations stay contention free jointly; a leaf-sharing allocation
// contends even though each job is clean in isolation.
func MultiJob(cluster topo.PGFT) (*Table, error) {
	tp, err := topo.Build(cluster)
	if err != nil {
		return nil, err
	}
	rt, err := engineRouter(tp)
	if err != nil {
		return nil, err
	}
	alloc, err := sched.New(tp)
	if err != nil {
		return nil, err
	}
	g := alloc.Granule()
	n := tp.NumHosts()

	t := &Table{
		Title:  fmt.Sprintf("Multi-job: concurrent Shift collectives, %d nodes (granule %d)", n, g),
		Header: []string{"scenario", "jobs", "aligned", "combined max HSD"},
	}

	// Scenario 1: machine split into granule-aligned halves.
	half := n / 2
	half -= half % g
	ja, err := alloc.Alloc(half)
	if err != nil {
		return nil, err
	}
	jb, err := alloc.Alloc(half)
	if err != nil {
		return nil, err
	}
	worst, err := jointWorstHSD(rt, [][]int{ja.Hosts, jb.Hosts})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"aligned halves", "2", fmt.Sprint(ja.ContentionFree && jb.ContentionFree), fmt.Sprint(worst)})
	if err := alloc.Free(ja.ID); err != nil {
		return nil, err
	}
	if err := alloc.Free(jb.ID); err != nil {
		return nil, err
	}

	// Scenario 2: four aligned jobs.
	quarter := n / 4
	quarter -= quarter % g
	var jobs [][]int
	allCF := true
	var ids []sched.JobID
	for i := 0; i < 4; i++ {
		j, err := alloc.Alloc(quarter)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j.Hosts)
		allCF = allCF && j.ContentionFree
		ids = append(ids, j.ID)
	}
	worst, err = jointWorstHSD(rt, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"aligned quarters", "4", fmt.Sprint(allCF), fmt.Sprint(worst)})
	for _, id := range ids {
		if err := alloc.Free(id); err != nil {
			return nil, err
		}
	}

	// Scenario 3: two leaf-sharing jobs — each clean alone, contending
	// together.
	k, _ := cluster.IsRLFT()
	a := hostRange(0, 2*k)
	b := hostRange(2*k-k/2, k)
	worst, err = jointWorstHSD(rt, [][]int{a, b})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"leaf-sharing pair", "2", "false", fmt.Sprint(worst)})

	t.Notes = append(t.Notes,
		"aligned scenarios keep combined HSD = 1 on shared tables — the single-job guarantee composes",
		"the leaf-sharing pair shows why the allocator refuses such placements")
	return t, nil
}

func hostRange(start, size int) []int {
	out := make([]int, size)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// jointWorstHSD stage-aligns every job's Shift (shorter jobs cycle) and
// returns the worst combined per-link flow count.
func jointWorstHSD(rt route.Router, jobs [][]int) (int, error) {
	shifts := make([]*cps.ShiftSeq, len(jobs))
	maxStages := 0
	for i, hosts := range jobs {
		shifts[i] = cps.Shift(len(hosts))
		if s := shifts[i].NumStages(); s > maxStages {
			maxStages = s
		}
	}
	a := hsd.NewAnalyzer(rt)
	worst := 0
	for s := 0; s < maxStages; s++ {
		var pairs [][2]int
		for i, hosts := range jobs {
			st := shifts[i].Stage(s % shifts[i].NumStages())
			for _, p := range st {
				pairs = append(pairs, [2]int{hosts[p.Src], hosts[p.Dst]})
			}
		}
		res, err := a.Stage(pairs)
		if err != nil {
			return 0, err
		}
		if res.MaxHSD > worst {
			worst = res.MaxHSD
		}
	}
	return worst, nil
}
