package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// AdaptiveOpts scales the adaptive-vs-proactive comparison.
type AdaptiveOpts struct {
	Cluster topo.PGFT
	Bytes   int64
	Seed    int64
}

// DefaultAdaptiveOpts returns the standard setting.
func DefaultAdaptiveOpts() AdaptiveOpts {
	return AdaptiveOpts{Cluster: topo.Cluster324, Bytes: 128 << 10, Seed: 1}
}

// AdaptiveComparison reproduces the introduction's argument against
// adaptive routing: on a randomly-ordered Ring stage, per-packet random
// path selection recovers much of the bandwidth a bad deterministic
// assignment loses — but it delivers packets out of order, which
// Reliable Connected transports cannot accept. The paper's proactive
// combination (D-Mod-K + matching order) gets the bandwidth *and* keeps
// packets in order.
func AdaptiveComparison(o AdaptiveOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	ring := cps.Ring(n)
	cfgDet := netsim.DefaultConfig()
	cfgAda := netsim.DefaultConfig()
	cfgAda.PerPacketRouting = true

	runOne := func(rt route.Router, ord *order.Ordering, cfg netsim.Config) (float64, int64, error) {
		nw, err := netsim.New(rt, simConfig(cfg))
		if err != nil {
			return 0, 0, err
		}
		var msgs []netsim.Message
		for _, p := range ring.Stage(0) {
			msgs = append(msgs, netsim.Message{
				Src: ord.HostOf[p.Src], Dst: ord.HostOf[p.Dst], Bytes: o.Bytes,
			})
		}
		st, err := nw.Run(msgs)
		if err != nil {
			return 0, 0, err
		}
		norm := st.EffectiveBandwidth() / (cfg.HostBandwidth * float64(n))
		return norm, st.OutOfOrderPackets, nil
	}

	lft, err := engineLFT(tp)
	if err != nil {
		return nil, err
	}
	random := order.Random(n, nil, o.Seed)
	good := order.Topology(n, nil)

	t := &Table{
		Title:  fmt.Sprintf("Adaptive vs proactive routing: Ring stage, %d nodes, %d KiB", n, o.Bytes>>10),
		Header: []string{"configuration", "normalized BW", "out-of-order packets"},
	}
	type cfgRow struct {
		name string
		rt   route.Router
		ord  *order.Ordering
		cfg  netsim.Config
	}
	for _, row := range []cfgRow{
		{"d-mod-k + random order (deterministic)", lft, random, cfgDet},
		{"adaptive-random + random order (per packet)", route.NewAdaptive(tp, o.Seed), random, cfgAda},
		{"d-mod-k + topology order (the paper)", lft, good, cfgDet},
	} {
		bw, ooo, err := runOne(row.rt, row.ord, row.cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{row.name, f3(bw), fmt.Sprint(ooo)})
	}
	t.Notes = append(t.Notes,
		"adaptive routing trades ordering for bandwidth; the proactive combination needs no trade",
		"InfiniBand Reliable Connected rejects out-of-order packets, so the middle row is not deployable on it")
	return t, nil
}
