package exp

import "fattree/internal/route"

// UseCompiledPaths selects the analysis fast path for every experiment:
// forwarding-table routers are compiled into a packed per-pair path cache
// (route.Compiled) before HSD analysis, so repeated evaluation of the
// same tables — 25-seed ordering sweeps, multi-sequence figures, the
// Table 3 columns — iterates flat arenas instead of re-walking tables.
// Defaults to on; cmd/ftbench -compiled=false restores the direct walk
// (useful for benchmarking the cache itself, or for topologies too big
// to hold an all-pairs path table in memory).
var UseCompiledPaths = true

// fastRouter returns the analysis router for a forwarding-table set: the
// compiled path cache when enabled, the raw tables otherwise. Compilation
// only fails on broken tables; in that case the raw router is returned so
// the analysis surfaces the same error through the slow path.
func fastRouter(lft *route.LFT) route.Router {
	if !UseCompiledPaths {
		return lft
	}
	c, err := route.Compile(lft)
	if err != nil {
		return lft
	}
	return c
}
