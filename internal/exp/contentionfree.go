package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/des"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/topo"
)

// CFOpts scales the Section VII verification: the proposed configuration
// must deliver full bandwidth and cut-through latency.
type CFOpts struct {
	Cluster     topo.PGFT
	Bytes       int64
	ShiftStages int
	Config      netsim.Config
}

// DefaultCFOpts returns paper-scale parameters.
func DefaultCFOpts() CFOpts {
	return CFOpts{
		Cluster:     topo.Cluster1944,
		Bytes:       256 << 10,
		ShiftStages: 6,
		Config:      netsim.DefaultConfig(),
	}
}

// ContentionFree reproduces the Section VII validation: with D-Mod-K
// routing and the matching MPI node order, the Shift and the topology
// aware Recursive-Doubling sequences run at full bandwidth, and a lone
// small message experiences pure cut-through latency.
func ContentionFree(o CFOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	job, err := mpi.NewContentionFreeJob(tp, nil)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()

	shift := cps.Sequence(cps.Shift(n))
	if o.ShiftStages > 0 && o.ShiftStages < shift.NumStages() {
		idx := make([]int, o.ShiftStages)
		step := shift.NumStages() / o.ShiftStages
		for i := range idx {
			idx[i] = i * step
		}
		shift, err = mpi.SampleStages(shift, idx)
		if err != nil {
			return nil, err
		}
	}
	ta, err := cps.TopoAwareRecursiveDoubling(o.Cluster.M)
	if err != nil {
		return nil, err
	}

	// Uncontended reference: one message of the experiment size across
	// the fabric diameter. A contention-free stage should take no longer
	// than this (plus scheduling noise), no matter how many hosts move.
	nw, err := netsim.New(job.Route, simConfig(o.Config))
	if err != nil {
		return nil, err
	}
	ref, err := nw.Run([]netsim.Message{{Src: 0, Dst: n - 1, Bytes: o.Bytes}})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  fmt.Sprintf("Section VII: contention-free configuration, %d nodes", n),
		Header: []string{"sequence", "avg max HSD", "normalized BW", "worst stage slowdown", "mean msg latency"},
	}
	for _, seq := range []cps.Sequence{shift, ta} {
		rep, err := job.Analyze(seq)
		if err != nil {
			return nil, err
		}
		st, err := job.Simulate(seq, o.Bytes, false, simConfig(o.Config))
		if err != nil {
			return nil, err
		}
		syncSt, err := job.Simulate(seq, o.Bytes, true, simConfig(o.Config))
		if err != nil {
			return nil, err
		}
		worst := des.Time(0)
		for _, d := range syncSt.StageDurations {
			if d > worst {
				worst = d
			}
		}
		t.Rows = append(t.Rows, []string{
			seq.Name(),
			f2(rep.AvgMaxHSD()),
			f3(job.NormalizedBandwidth(st, o.Config)),
			f2(float64(worst) / float64(ref.Duration)),
			fmt.Sprintf("%.2fus", float64(st.MeanLatency())/float64(des.Microsecond)),
		})
	}

	// Cut-through latency probe: one MTU-sized message across the full
	// diameter of the otherwise idle fabric.
	probe, err := nw.Run([]netsim.Message{{Src: 0, Dst: n - 1, Bytes: int64(o.Config.MTU)}})
	if err != nil {
		return nil, err
	}
	links := 2 * o.Cluster.H
	sf := float64(links) * float64(o.Config.MTU) / o.Config.LinkBandwidth * 1e6 // store-and-forward, us
	t.Rows = append(t.Rows, []string{
		"single-MTU probe",
		"-",
		"-",
		"-",
		fmt.Sprintf("%.2fus", float64(probe.MeanLatency())/float64(des.Microsecond)),
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("store-and-forward would serialize %d hops: >= %.2fus; cut-through pays one serialization", links, sf),
		"stage slowdown is the barrier-mode stage makespan over the uncontended single-flow reference (1.0 = contention free)",
		"normalized BW dilutes for sequences with pre/post/fixup stages where only a fraction of hosts transmit")
	return t, nil
}
