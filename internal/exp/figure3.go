package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// Figure3Opts scales the Figure 3 study.
type Figure3Opts struct {
	Clusters []topo.PGFT
	Seeds    int // random orderings per point (paper: 25)
	// ShiftStride samples every k-th stage of the Shift and Ring-style
	// long sequences (1 = all stages, the paper's setting).
	ShiftStride int
}

// DefaultFigure3Opts returns the paper-scale parameters.
func DefaultFigure3Opts() Figure3Opts {
	return Figure3Opts{
		Clusters:    []topo.PGFT{topo.Cluster128, topo.Cluster324, topo.Cluster1728, topo.Cluster1944},
		Seeds:       25,
		ShiftStride: 1,
	}
}

// figure3CPS builds the six collectives of the figure for a job size
// ("Butterfly" is recursive doubling).
func figure3CPS(n, stride int) ([]cps.Sequence, error) {
	shift := cps.Sequence(cps.Shift(n))
	if stride > 1 {
		var idx []int
		for s := 0; s < shift.NumStages(); s += stride {
			idx = append(idx, s)
		}
		var err error
		shift, err = mpi.SampleStages(shift, idx)
		if err != nil {
			return nil, err
		}
	}
	return []cps.Sequence{
		cps.Binomial(n),
		cps.RecursiveDoubling(n), // the figure's "Butterfly"
		cps.Dissemination(n),
		cps.Ring(n),
		shift,
		cps.Tournament(n),
	}, nil
}

// Figure3 reproduces "average of the maximal hot-spot degree over all
// stages, averaged over 25 random MPI node orders" for the four cluster
// sizes. The paper's shape: Ring, Shift and Butterfly grow steeply with
// cluster size; Binomial, Dissemination and Tournament stay low.
func Figure3(o Figure3Opts) (*Table, error) {
	t := &Table{
		Title:  "Figure 3: avg max HSD under random MPI node order (mean [min..max] over seeds)",
		Header: []string{"nodes", "binomial", "butterfly", "dissemination", "ring", "shift", "tournament"},
	}
	for _, g := range o.Clusters {
		tp, err := topo.Build(g)
		if err != nil {
			return nil, err
		}
		rt, err := engineRouter(tp)
		if err != nil {
			return nil, err
		}
		n := tp.NumHosts()
		var orders []*order.Ordering
		for seed := 0; seed < o.Seeds; seed++ {
			orders = append(orders, order.Random(n, nil, int64(seed)))
		}
		seqs, err := figure3CPS(n, o.ShiftStride)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(n)}
		for _, seq := range seqs {
			sw, err := hsd.SweepOrderingsParallel(rt, orders, seq, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%s [%s..%s]", f2(sw.Mean), f2(sw.Min), f2(sw.Max)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: Ring/Shift/Butterfly exhibit exponential growth with cluster size; the others stay flat")
	return t, nil
}
