// Package exp regenerates every table and figure of the paper's
// evaluation: the experiment harness behind cmd/ftbench and the top-level
// benchmarks. Each experiment returns a Table whose rows mirror what the
// paper reports; EXPERIMENTS.md records the paper-vs-measured comparison.
package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"fattree/internal/netsim"
)

// Instrument, when non-nil, is applied to every netsim.Config just
// before it drives a simulation — the hook cmd/ftbench uses to attach
// observability sinks (metrics registry, probe sampler, tracer) to all
// experiment runs without threading flags through each Opts type. Like
// UseCompiledPaths it is a package-level toggle: set it before running
// experiments, not concurrently with them.
var Instrument func(*netsim.Config)

// simConfig applies the Instrument hook to a config about to be used.
func simConfig(cfg netsim.Config) netsim.Config {
	if Instrument != nil {
		Instrument(&cfg)
	}
	return cfg
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(rule, "  ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table in RFC 4180 CSV (header first, notes as
// trailing comment lines) for machine consumption.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the table as one JSON object, rows as objects keyed
// by header name — the shape downstream tooling (ftreport, notebooks)
// wants, without parsing aligned text or CSV comments.
func (t *Table) RenderJSON(w io.Writer) error {
	rows := make([]map[string]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		m := make(map[string]string, len(t.Header))
		for i, h := range t.Header {
			if i < len(row) {
				m[h] = row[i]
			}
		}
		rows = append(rows, m)
	}
	doc := struct {
		Schema string              `json:"schema"`
		Title  string              `json:"title"`
		Header []string            `json:"header"`
		Rows   []map[string]string `json:"rows"`
		Notes  []string            `json:"notes,omitempty"`
	}{"fattree-table/v1", t.Title, t.Header, rows, t.Notes}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Cell returns the value of the first row matching key in column 0, for
// tests that assert on results.
func (t *Table) Cell(rowKey string, col int) (string, bool) {
	for _, row := range t.Rows {
		if len(row) > col && row[0] == rowKey {
			return row[col], true
		}
	}
	return "", false
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
