package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/des"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// SemanticsOpts scales the progression-semantics study.
type SemanticsOpts struct {
	Cluster topo.PGFT
	Bytes   int64
	Seed    int64
}

// DefaultSemanticsOpts returns the standard setting.
func DefaultSemanticsOpts() SemanticsOpts {
	return SemanticsOpts{Cluster: topo.Cluster324, Bytes: 64 << 10, Seed: 1}
}

// SemanticsComparison measures how the three stage-progression models
// compare: async (the paper's Section II model — hosts free-run),
// dependent (real collective semantics — receive-gated), and barrier
// (globally synchronized). Async lower-bounds dependent by construction.
// Barrier is *not* an upper bound for dependent: receive-gating lets
// hosts spill into the next stage at different times, and the resulting
// cross-stage overlap can collide flows that a global barrier would
// keep apart — per-stage HSD = 1 does not compose across overlapping
// stages. The async model the paper uses therefore underestimates real
// collective completion time, and the barrier model can too.
func SemanticsComparison(o SemanticsOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	lft, err := engineLFT(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	cfg := netsim.DefaultConfig()

	seq, err := cps.TopoAwareRecursiveDoubling(o.Cluster.M)
	if err != nil {
		return nil, err
	}
	flat := cps.RecursiveDoubling(n)

	t := &Table{
		Title:  fmt.Sprintf("Progression semantics: allreduce makespans (ms), %d nodes, %d KiB", n, o.Bytes>>10),
		Header: []string{"configuration", "async", "dependent", "barrier"},
	}
	type cfgRow struct {
		name string
		ord  *order.Ordering
		seq  cps.Sequence
	}
	for _, row := range []cfgRow{
		{"topo-aware RD + topology order", order.Topology(n, nil), seq},
		{"flat RD + topology order", order.Topology(n, nil), flat},
		{"flat RD + random order", order.Random(n, nil, o.Seed), flat},
	} {
		job, err := mpi.NewJob(lft, row.ord)
		if err != nil {
			return nil, err
		}
		cells := []string{row.name}
		for _, mode := range []mpi.Mode{mpi.Async, mpi.Dependent, mpi.Barrier} {
			st, err := job.SimulateMode(row.seq, o.Bytes, mode, simConfig(cfg))
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.3f", float64(st.Duration)/float64(des.Millisecond)))
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"async <= dependent by construction; barrier is NOT an upper bound (cross-stage overlap collides flows)",
		"the dependent column is the realistic collective completion time; the others bracket mechanisms, not it")
	return t, nil
}
