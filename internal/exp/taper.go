package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// TaperAblation quantifies the first RLFT restriction (Section IV.C):
// constant cross-bisectional bandwidth. On tapered (oversubscribed)
// trees — fewer up-links than down-links per leaf — even the perfect
// routing and ordering cannot avoid contention: in every Shift stage all
// hosts send, so some up-link must carry at least the taper ratio.
// D-Mod-K still achieves exactly that floor, no worse.
func TaperAblation() (*Table, error) {
	// Two-level trees with 24 hosts per leaf and decreasing up-link
	// counts: 24:24 (CBB, ratio 1), 24:12 (2:1), 24:8 (3:1), 24:6 (4:1).
	cases := []struct {
		name  string
		g     topo.PGFT
		ratio int
	}{
		{"1:1 (CBB)", topo.MustPGFT(2, []int{24, 12}, []int{1, 12}, []int{1, 2}), 1},
		{"2:1", topo.MustPGFT(2, []int{24, 12}, []int{1, 12}, []int{1, 1}), 2},
		{"3:1", topo.MustPGFT(2, []int{24, 12}, []int{1, 8}, []int{1, 1}), 3},
		{"4:1", topo.MustPGFT(2, []int{24, 12}, []int{1, 6}, []int{1, 1}), 4},
	}
	t := &Table{
		Title:  "Ablation: oversubscription (taper) vs Shift HSD under the proposed configuration",
		Header: []string{"taper", "hosts", "up-links/leaf", "max HSD", "avg max HSD", "floor"},
	}
	for _, c := range cases {
		tp, err := topo.Build(c.g)
		if err != nil {
			return nil, err
		}
		n := tp.NumHosts()
		rt, err := engineRouter(tp)
		if err != nil {
			return nil, err
		}
		rep, err := hsd.AnalyzeParallel(rt, order.Topology(n, nil), cps.Shift(n), 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprint(n),
			fmt.Sprint(c.g.UpPorts(1)),
			fmt.Sprint(rep.MaxHSD()),
			f2(rep.AvgMaxHSD()),
			fmt.Sprint(c.ratio),
		})
	}
	t.Notes = append(t.Notes,
		"the contention floor equals the taper ratio: with all hosts sending, up-links must time-share",
		"D-Mod-K meets the floor exactly — the loss is the topology's, not the routing's")
	return t, nil
}
