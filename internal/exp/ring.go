package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// RingOpts scales the adversarial-Ring experiment of Section II.
type RingOpts struct {
	Cluster topo.PGFT
	Bytes   int64
	Config  netsim.Config
}

// DefaultRingOpts returns the paper-scale parameters (the 1944-node
// cluster, where the worst oversubscription is the switch arity 18 and
// the measured bandwidth was 231.5 MB/s ≈ 7.1% of nominal).
func DefaultRingOpts() RingOpts {
	return RingOpts{Cluster: topo.Cluster1944, Bytes: 256 << 10, Config: netsim.DefaultConfig()}
}

// RingAdversarial reproduces the Section II adversarial node-order
// experiment: a Ring permutation under (a) the topology-aware order and
// (b) the adversarial order that drives all K flows of each leaf through
// a single up-going port. It reports analytic HSD and simulated
// normalized bandwidth for both, plus the degradation factor.
func RingAdversarial(o RingOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	lft, err := engineLFT(tp)
	if err != nil {
		return nil, err
	}
	rt, err := engineRouter(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	k, _ := o.Cluster.IsRLFT()
	ring := cps.Ring(n)

	run := func(ord *order.Ordering) (float64, float64, error) {
		rep, err := hsd.AnalyzeParallel(rt, ord, ring, 0)
		if err != nil {
			return 0, 0, err
		}
		job, err := mpi.NewJob(lft, ord)
		if err != nil {
			return 0, 0, err
		}
		st, err := job.Simulate(ring, o.Bytes, false, simConfig(o.Config))
		if err != nil {
			return 0, 0, err
		}
		return rep.AvgMaxHSD(), job.NormalizedBandwidth(st, o.Config), nil
	}

	goodHSD, goodBW, err := run(order.Topology(n, nil))
	if err != nil {
		return nil, err
	}
	adv, err := order.Adversarial(tp)
	if err != nil {
		return nil, err
	}
	advHSD, advBW, err := run(adv)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  fmt.Sprintf("Section II: Ring permutation, %d nodes (K=%d)", n, k),
		Header: []string{"ordering", "avg max HSD", "normalized BW"},
		Rows: [][]string{
			{"topology-aware", f2(goodHSD), f3(goodBW)},
			{"adversarial", f2(advHSD), f3(advBW)},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("degradation factor: %.1fx (paper: ~14x, 7.1%% of nominal; worst oversubscription = K = %d)", goodBW/advBW, k))
	return t, nil
}
