package exp

import (
	"fmt"

	"fattree/internal/des"
	"fattree/internal/sched"
	"fattree/internal/topo"
)

// QueueOpts scales the scheduler-policy study.
type QueueOpts struct {
	Cluster topo.PGFT
	Base    sched.QueueConfig
}

// DefaultQueueOpts returns the standard trace: 500 jobs at ~80% offered
// load on the 324-node cluster.
func DefaultQueueOpts() QueueOpts {
	return QueueOpts{
		Cluster: topo.Cluster324,
		Base: sched.QueueConfig{
			Seed:             1,
			Jobs:             500,
			MeanInterarrival: 10 * des.Millisecond,
			MeanDuration:     60 * des.Millisecond,
			MaxGranules:      4,
			AlignedFraction:  0.3,
		},
	}
}

// SchedulerPolicies replays the same synthetic job trace under three
// admission policies and tabulates the operational trade-off behind the
// paper's guarantee: how many jobs run contention free versus the
// utilization and queueing delay each policy costs.
func SchedulerPolicies(o QueueOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Scheduler admission policies, %d jobs on %d nodes (granule %d)",
			o.Base.Jobs, tp.NumHosts(), o.Cluster.AllocationGranule()),
		Header: []string{"policy", "CF fraction", "isolated fraction", "avg utilization", "mean wait ms"},
	}
	type policy struct {
		name      string
		pad, wait bool
	}
	for _, p := range []policy{
		{"as-requested", false, false},
		{"pad-to-granule", true, false},
		{"pad + aligned-only", true, true},
	} {
		cfg := o.Base
		cfg.PadToGranule = p.pad
		cfg.WaitForAligned = p.wait
		st, err := sched.SimulateQueue(tp, cfg)
		if err != nil {
			return nil, err
		}
		iso := 0.0
		if st.Completed > 0 {
			iso = float64(st.Isolated) / float64(st.Completed)
		}
		t.Rows = append(t.Rows, []string{
			p.name,
			f3(st.CFFraction()),
			f3(iso),
			f3(st.AvgUtilization),
			fmt.Sprintf("%.2f", float64(st.MeanWait)/float64(des.Millisecond)),
		})
	}
	t.Notes = append(t.Notes,
		"padding buys the solo guarantee for most jobs; aligned-only admission buys isolation for all, paid in wait time",
		"fragmentation, not policy, causes the residual non-CF placements under padding")
	return t, nil
}
