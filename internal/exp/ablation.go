package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// WrapAblation documents a boundary condition of the partial-tree claim:
// with random node exclusions, the rank-compacted D-Mod-K keeps the
// Shift contention free exactly when the topology's allocation granule
// G = prod(w_i)*p_h divides the job size N'. Otherwise the Shift's
// wrap-around breaks the cyclic up-port assignment at some level and the
// max HSD rises. The paper's "Cont.-X" rows (and its "multiplications of
// 324 nodes" sub-allocation remark) fall in the divisible regime.
func WrapAblation(cluster topo.PGFT, seeds int) (*Table, error) {
	tp, err := topo.Build(cluster)
	if err != nil {
		return nil, err
	}
	if _, ok := cluster.IsRLFT(); !ok {
		return nil, fmt.Errorf("exp: wrap ablation needs an RLFT")
	}
	g := cluster.AllocationGranule()
	n := tp.NumHosts()
	t := &Table{
		Title:  fmt.Sprintf("Ablation: Shift HSD vs job size modulo the allocation granule (random removals, %d nodes, G=%d)", n, g),
		Header: []string{"dropped", "job", "job mod G", "max HSD", "avg max HSD"},
	}
	for _, drop := range []int{0, g / 2, g - 1, g, g + 1, 2 * g, 2*g + 3} {
		if drop >= n {
			continue
		}
		worst, avg := 0, 0.0
		for seed := int64(0); seed < int64(seeds); seed++ {
			_, active := activeSet(n, drop, seed+1)
			lft, err := route.DModKActive(tp, active)
			if err != nil {
				return nil, err
			}
			o := order.Topology(n, active)
			rep, err := hsd.AnalyzeParallel(fastRouter(lft), o, cps.Shift(len(active)), 0)
			if err != nil {
				return nil, err
			}
			if rep.MaxHSD() > worst {
				worst = rep.MaxHSD()
			}
			avg += rep.AvgMaxHSD()
		}
		avg /= float64(seeds)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(drop), fmt.Sprint(n - drop), fmt.Sprint((n - drop) % g),
			fmt.Sprint(worst), f2(avg),
		})
	}
	t.Notes = append(t.Notes,
		"expected: max HSD = 1 iff job mod G == 0; the wrap-around window of the Shift collides otherwise")
	return t, nil
}

// RoutingAblation compares D-Mod-K against the baselines on the Shift:
// the naive variant (no division by prod w) and the random minimal-hop
// routing both congest even under the ideal node order — the division in
// equation (1) is what decorrelates upper tree levels.
func RoutingAblation(cluster topo.PGFT) (*Table, error) {
	tp, err := topo.Build(cluster)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	o := order.Topology(n, nil)
	shift := cps.Shift(n)
	t := &Table{
		Title:  fmt.Sprintf("Ablation: routing choice under topology order, Shift CPS, %d nodes", n),
		Header: []string{"routing", "max HSD", "avg max HSD"},
	}
	for _, lft := range []*route.LFT{
		route.DModK(tp),
		route.DModKNaive(tp),
		route.MinHopRandom(tp, 1),
	} {
		rep, err := hsd.AnalyzeParallel(fastRouter(lft), o, shift, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{lft.Name, fmt.Sprint(rep.MaxHSD()), f2(rep.AvgMaxHSD())})
	}
	t.Notes = append(t.Notes,
		"only d-mod-k reaches HSD 1; the ablated variants congest despite the ideal MPI node order")
	return t, nil
}

// BidirAblation contrasts the Section VI topology-aware recursive
// doubling with the flat XOR recursive doubling under the proposed
// routing and ordering: the flat pattern congests on parallel-port
// RLFTs, the tree-shaped one does not.
func BidirAblation(cluster topo.PGFT) (*Table, error) {
	tp, err := topo.Build(cluster)
	if err != nil {
		return nil, err
	}
	rt, err := engineRouter(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	o := order.Topology(n, nil)
	flat := cps.RecursiveDoubling(n)
	ta, err := cps.TopoAwareRecursiveDoubling(cluster.M)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: flat vs topology-aware recursive doubling, %d nodes", n),
		Header: []string{"sequence", "stages", "max HSD", "avg max HSD"},
	}
	for _, seq := range []cps.Sequence{flat, ta} {
		rep, err := hsd.AnalyzeParallel(rt, o, seq, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			seq.Name(), fmt.Sprint(seq.NumStages()), fmt.Sprint(rep.MaxHSD()), f2(rep.AvgMaxHSD()),
		})
	}
	t.Notes = append(t.Notes,
		"the Section VI sequence trades a few extra stages for contention freedom")
	return t, nil
}
