package exp

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"fattree/internal/des"
	"fattree/internal/netsim"
	"fattree/internal/topo"
)

func renderOK(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.String()
}

func TestFigure1(t *testing.T) {
	tab, err := Figure1(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// The routing-aware row must show HSD 1 and 0 hot links.
	if v, ok := tab.Cell("routing-aware", 1); !ok || v != "1" {
		t.Errorf("routing-aware max HSD = %q, want 1", v)
	}
	if v, _ := tab.Cell("routing-aware", 2); v != "0" {
		t.Errorf("routing-aware hot links = %q, want 0", v)
	}
	// Most random rows must show contention.
	hot := 0
	for _, row := range tab.Rows[1:] {
		if row[1] != "1" {
			hot++
		}
	}
	if hot < 3 {
		t.Errorf("only %d of 5 random orders congested", hot)
	}
	out := renderOK(t, tab)
	if !strings.Contains(out, "Figure 1") {
		t.Error("render lacks title")
	}
}

func testFigure2Opts() Figure2Opts {
	o := DefaultFigure2Opts()
	o.Cluster = topo.Cluster128
	o.Sizes = []int64{8 << 10, 128 << 10}
	o.ShiftStages = 4
	return o
}

func TestFigure2SmallScale(t *testing.T) {
	tab, err := Figure2(testFigure2Opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	for _, row := range tab.Rows {
		shift, rd := parse(row[1]), parse(row[2])
		if shift <= 0 || shift > 1.01 || rd <= 0 || rd > 1.01 {
			t.Errorf("size %s: normalized BW out of range: shift=%v rd=%v", row[0], shift, rd)
		}
		// Random order must lose bandwidth (well under 1).
		if shift > 0.95 {
			t.Errorf("size %s: shift BW %v suspiciously ideal for random order", row[0], shift)
		}
	}
	// Paper shape: large messages no faster than small ones for shift.
	small := parse(tab.Rows[0][1])
	large := parse(tab.Rows[1][1])
	if large > small*1.1 {
		t.Errorf("bandwidth grows with message size (%v -> %v), contradicting Figure 2", small, large)
	}
}

func TestFigure3SmallScale(t *testing.T) {
	o := Figure3Opts{
		Clusters:    []topo.PGFT{topo.Cluster128, topo.Cluster324},
		Seeds:       5,
		ShiftStride: 7,
	}
	tab, err := Figure3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	mean := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	// Columns: nodes, binomial, butterfly, dissemination, ring, shift,
	// tournament. Ring and shift must grow with cluster size and
	// exceed binomial/tournament.
	for _, row := range tab.Rows {
		if mean(row[4]) <= mean(row[1]) {
			t.Errorf("nodes=%s: ring (%s) not worse than binomial (%s)", row[0], row[4], row[1])
		}
		if mean(row[5]) <= mean(row[6]) {
			t.Errorf("nodes=%s: shift (%s) not worse than tournament (%s)", row[0], row[5], row[6])
		}
	}
	if mean(tab.Rows[1][4]) <= mean(tab.Rows[0][4]) {
		t.Errorf("ring HSD does not grow with cluster size: %s vs %s", tab.Rows[0][4], tab.Rows[1][4])
	}
}

func TestTable3SmallScale(t *testing.T) {
	o := Table3Opts{
		Cases: []Table3Case{
			{"128 full", topo.Cluster128, 0, 1},
			{"128 Cont.-8", topo.Cluster128, 8, 1},
			{"324 Cont.-18", topo.Cluster324, 18, 1},
		},
		RandomSeeds: 3,
		ShiftStride: 3,
	}
	tab, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "1.00" {
			t.Errorf("%s: proposed shift HSD = %s, want 1.00", row[0], row[3])
		}
		rnd, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rnd <= 1.0 {
			t.Errorf("%s: random ranking HSD = %v, expected > 1", row[0], rnd)
		}
	}
}

func TestRingAdversarialSmallScale(t *testing.T) {
	o := RingOpts{Cluster: topo.Cluster324, Bytes: 64 << 10, Config: netsim.DefaultConfig()}
	tab, err := RingAdversarial(o)
	if err != nil {
		t.Fatal(err)
	}
	goodBW, _ := tab.Cell("topology-aware", 2)
	advBW, _ := tab.Cell("adversarial", 2)
	g, err := strconv.ParseFloat(goodBW, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := strconv.ParseFloat(advBW, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.9 {
		t.Errorf("topology-aware ring BW = %v, want ~1", g)
	}
	// K=18: expect roughly an order of magnitude degradation.
	if a > g/5 {
		t.Errorf("adversarial BW %v not dramatically below ordered %v", a, g)
	}
	advHSD, _ := tab.Cell("adversarial", 1)
	h, err := strconv.ParseFloat(advHSD, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h < 16 {
		t.Errorf("adversarial HSD = %v, want ~K=18", h)
	}
}

func TestContentionFreeSmallScale(t *testing.T) {
	o := CFOpts{Cluster: topo.Cluster128, Bytes: 64 << 10, ShiftStages: 4, Config: netsim.DefaultConfig()}
	tab, err := ContentionFree(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for i, row := range tab.Rows[:2] {
		if row[1] != "1.00" {
			t.Errorf("%s: HSD = %s, want 1.00", row[0], row[1])
		}
		bw, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		// The shift keeps every host streaming; the topo-aware RD has
		// pre/post stages where only some hosts transmit, diluting the
		// aggregate metric without contention.
		if i == 0 && bw < 0.9 {
			t.Errorf("%s: normalized BW = %v, want ~1", row[0], bw)
		}
		slow, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if slow > 1.05 {
			t.Errorf("%s: stage slowdown = %v, want ~1.0 (contention free)", row[0], slow)
		}
	}
}

func TestWrapAblation(t *testing.T) {
	tab, err := WrapAblation(topo.Cluster128, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		mod, _ := strconv.Atoi(row[2])
		max, _ := strconv.Atoi(row[3])
		if mod == 0 && max != 1 {
			t.Errorf("drop=%s: K | N' but max HSD = %d", row[0], max)
		}
		if mod != 0 && max < 2 {
			t.Errorf("drop=%s: K does not divide N' but max HSD = %d (expected wrap collision)", row[0], max)
		}
	}
}

func TestRoutingAblation(t *testing.T) {
	// A 3-level tree: the naive variant only diverges from equation (1)
	// above the leaf level.
	tab, err := RoutingAblation(topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Cell("d-mod-k", 1); !ok || v != "1" {
		t.Errorf("d-mod-k max HSD = %q, want 1", v)
	}
	for _, name := range []string{"d-mod-k-naive", "minhop-random"} {
		v, ok := tab.Cell(name, 1)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		if hsd, _ := strconv.Atoi(v); hsd < 2 {
			t.Errorf("%s max HSD = %s, expected congestion", name, v)
		}
	}
}

func TestBidirAblation(t *testing.T) {
	tab, err := BidirAblation(topo.Cluster324)
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := tab.Cell("recursive-doubling", 2)
	ta, _ := tab.Cell("topo-aware-recursive-doubling", 2)
	if ta != "1" {
		t.Errorf("topo-aware max HSD = %s, want 1", ta)
	}
	if v, _ := strconv.Atoi(flat); v < 2 {
		t.Errorf("flat recursive doubling max HSD = %s, expected > 1", flat)
	}
}

func TestTableRenderAndCell(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"x", "1"}, {"longer", "2"}},
		Notes:  []string{"n1"},
	}
	out := renderOK(t, tab)
	for _, want := range []string{"== T ==", "longer", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if v, ok := tab.Cell("x", 1); !ok || v != "1" {
		t.Errorf("Cell(x,1) = %q,%v", v, ok)
	}
	if _, ok := tab.Cell("missing", 1); ok {
		t.Error("Cell found missing row")
	}
}

func TestMultiJob(t *testing.T) {
	tab, err := MultiJob(topo.Cluster324)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Cell("aligned halves", 3); !ok || v != "1" {
		t.Errorf("aligned halves combined HSD = %q, want 1", v)
	}
	if v, ok := tab.Cell("aligned quarters", 3); !ok || v != "1" {
		t.Errorf("aligned quarters combined HSD = %q, want 1", v)
	}
	v, ok := tab.Cell("leaf-sharing pair", 3)
	if !ok {
		t.Fatal("missing leaf-sharing row")
	}
	if hsdV, _ := strconv.Atoi(v); hsdV < 2 {
		t.Errorf("leaf-sharing combined HSD = %s, expected contention", v)
	}
}

func TestFaultResilience(t *testing.T) {
	tab, err := FaultResilience(topo.Cluster128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d, want >= 4", len(tab.Rows))
	}
	// Zero faults: HSD exactly 1.
	if v, _ := tab.Cell("0", 2); v != "1" {
		t.Errorf("fault-free worst HSD = %q, want 1", v)
	}
	// Faults present: degradation stays below the adversarial-order
	// collapse (HSD ~ K = 8) and every pair stays routable.
	for _, row := range tab.Rows[1:] {
		worst, _ := strconv.Atoi(row[2])
		if worst >= 8 {
			t.Errorf("dead=%s: worst HSD = %d, degradation should stay below K", row[0], worst)
		}
		if row[4] != "0" {
			t.Errorf("dead=%s: broken pairs = %s, want 0", row[0], row[4])
		}
	}
	// One or two faults stay mild.
	if worst, _ := strconv.Atoi(tab.Rows[1][2]); worst > 3 {
		t.Errorf("single fault worst HSD = %d, want <= 3", worst)
	}
}

func TestBufferAblation(t *testing.T) {
	o := BufferOpts{
		Cluster: topo.Cluster128,
		Bytes:   64 << 10,
		Buffers: []int{1, 8, 32},
		Stages:  3,
		Seed:    1,
	}
	tab, err := BufferAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ordered, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		buffers, _ := strconv.Atoi(row[0])
		// A single credit stalls even contention-free traffic on the
		// credit round-trip; from 2 slots up the ordered pipeline runs
		// at full rate.
		if buffers >= 2 && ordered < 0.95 {
			t.Errorf("buffers=%s: ordered BW = %v, want ~1", row[0], ordered)
		}
		if buffers == 1 && ordered < 0.7 {
			t.Errorf("buffers=1: ordered BW = %v, even credit-starved should exceed 0.7", ordered)
		}
		random, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if random >= ordered {
			t.Errorf("buffers=%s: random BW %v not below ordered %v", row[0], random, ordered)
		}
	}
}

func TestJitterSensitivity(t *testing.T) {
	o := JitterOpts{
		Cluster: topo.Cluster128,
		Bytes:   64 << 10,
		Jitters: []des.Time{0, 20 * des.Microsecond, 100 * des.Microsecond},
		Stages:  3,
		Seed:    1,
	}
	tab, err := JitterSensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// Zero jitter: slowdown exactly 1.00 for both.
	if tab.Rows[0][2] != "1.00" || tab.Rows[0][4] != "1.00" {
		t.Errorf("zero-jitter row = %v, want unit slowdowns", tab.Rows[0])
	}
	// Slowdowns grow with jitter.
	prev := 1.0
	for _, row := range tab.Rows {
		s, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev-0.01 {
			t.Errorf("ordered slowdown not monotone: %v", tab.Rows)
		}
		prev = s
	}
	// Additivity: the ordered stage duration stays within base + jitter
	// (plus a small margin), never multiplicative queueing.
	baseMs, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	for i, row := range tab.Rows {
		jUs, _ := strconv.ParseFloat(row[0], 64)
		gotMs, _ := strconv.ParseFloat(row[1], 64)
		boundMs := baseMs + jUs/1000*1.05 + 0.005
		if gotMs > boundMs {
			t.Errorf("row %d: ordered stage %.3f ms exceeds additive bound %.3f ms", i, gotMs, boundMs)
		}
	}
}

func TestAdaptiveComparison(t *testing.T) {
	o := AdaptiveOpts{Cluster: topo.Cluster128, Bytes: 64 << 10, Seed: 1}
	tab, err := AdaptiveComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	det, ada, paper := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	// The deterministic random-order row loses bandwidth, in order.
	if parse(det[1]) > 0.9 {
		t.Errorf("deterministic random order BW = %s, expected loss", det[1])
	}
	if det[2] != "0" {
		t.Errorf("deterministic routing delivered %s packets out of order", det[2])
	}
	// The adaptive row recovers bandwidth but reorders packets.
	if parse(ada[1]) <= parse(det[1]) {
		t.Errorf("adaptive BW %s not above deterministic %s", ada[1], det[1])
	}
	if ada[2] == "0" {
		t.Error("adaptive per-packet routing delivered everything in order — suspicious")
	}
	// The paper's configuration: full bandwidth, in order.
	if parse(paper[1]) < 0.95 {
		t.Errorf("paper configuration BW = %s, want ~1", paper[1])
	}
	if paper[2] != "0" {
		t.Errorf("paper configuration reordered %s packets", paper[2])
	}
}

func TestPatternSweep(t *testing.T) {
	o := PatternOpts{Cluster: topo.Cluster128, Bytes: 32 << 10, Seed: 1}
	tab, err := PatternSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 patterns", len(tab.Rows))
	}
	bw := func(name string) float64 {
		v, ok := tab.Cell(name, 2)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Tornado is an aligned permutation: near-full bandwidth.
	if bw("tornado") < 0.9 {
		t.Errorf("tornado BW = %v, want ~1", bw("tornado"))
	}
	// Incast collapses to ~1/(N-1) per sender.
	if bw("incast") > 0.05 {
		t.Errorf("incast BW = %v, want tiny", bw("incast"))
	}
	// A random permutation loses bandwidth like the random-order
	// collectives do.
	rp := bw("random-permutation")
	if rp > 0.9 || rp < 0.2 {
		t.Errorf("random permutation BW = %v, want mid-range loss", rp)
	}
}

func TestTaperAblation(t *testing.T) {
	tab, err := TaperAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		max, _ := strconv.Atoi(row[3])
		floor, _ := strconv.Atoi(row[5])
		if max != floor {
			t.Errorf("taper %s: max HSD = %d, want exactly the floor %d", row[0], max, floor)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,with,commas", "1"}, {"y", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a,b\n", "\"x,with,commas\",1\n", "y,2\n", "# a note\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJSON(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x", "1"}, {"y", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string              `json:"schema"`
		Title  string              `json:"title"`
		Rows   []map[string]string `json:"rows"`
		Notes  []string            `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("RenderJSON output is not valid JSON: %v", err)
	}
	if doc.Schema != "fattree-table/v1" || doc.Title != "T" {
		t.Errorf("envelope = %q %q", doc.Schema, doc.Title)
	}
	if len(doc.Rows) != 2 || doc.Rows[0]["a"] != "x" || doc.Rows[1]["b"] != "2" {
		t.Errorf("rows = %v", doc.Rows)
	}
	if len(doc.Notes) != 1 || doc.Notes[0] != "a note" {
		t.Errorf("notes = %v", doc.Notes)
	}
}

func TestCollectiveLatency(t *testing.T) {
	o := LatencyOpts{Cluster: topo.Cluster324, Sizes: []int64{2 << 10, 128 << 10}}
	tab, err := CollectiveLatency(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		flat, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		ta, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		// On parallel-port RLFTs the topo-aware schedule wins at every
		// size: its extra stages are intra-leaf.
		if ta >= flat {
			t.Errorf("size %s: topo-aware %v us not below flat %v us", row[0], ta, flat)
		}
		if row[3] != "topo-aware" {
			t.Errorf("size %s: winner = %s", row[0], row[3])
		}
	}
}

func TestPlacementComparison(t *testing.T) {
	tab, err := PlacementComparison(topo.Cluster324)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, row := range tab.Rows {
		block, cyclic, random := parse(row[1]), parse(row[2]), parse(row[3])
		switch row[0] {
		case "recursive-doubling":
			// The flat XOR congests under any placement on
			// parallel-port trees.
			if block < 1.1 {
				t.Errorf("flat RD block HSD = %v, expected congestion", block)
			}
		case "topo-aware-recursive-doubling":
			if block != 1.0 {
				t.Errorf("topo-aware block HSD = %v, want 1.00", block)
			}
			// On the symmetric 324 tree, cyclic happens to be a full
			// symmetry (it transposes the two levels) and stays clean;
			// asymmetric 3-level trees break it (see the 1944 note).
			if cyclic != 1.0 {
				t.Errorf("topo-aware cyclic HSD on the symmetric 2-level tree = %v, want 1.00", cyclic)
			}
		default:
			// Shift-family: both block and cyclic are contention free.
			if block != 1.0 {
				t.Errorf("%s: block HSD = %v, want 1.00", row[0], block)
			}
			if cyclic != 1.0 {
				t.Errorf("%s: cyclic HSD = %v, want 1.00 (structure-preserving relabeling)", row[0], cyclic)
			}
		}
		if random <= 1.5 {
			t.Errorf("%s: random HSD = %v, expected heavy congestion", row[0], random)
		}
	}
}

func TestSemanticsComparison(t *testing.T) {
	o := SemanticsOpts{Cluster: topo.Cluster128, Bytes: 32 << 10, Seed: 1}
	tab, err := SemanticsComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, row := range tab.Rows {
		async, dep := parse(row[1]), parse(row[2])
		if async > dep*1.001 {
			t.Errorf("%s: async %v slower than dependent %v", row[0], async, dep)
		}
		if parse(row[3]) <= 0 {
			t.Errorf("%s: barrier makespan %s", row[0], row[3])
		}
	}
	// The realistic (dependent) column must still rank the schedules:
	// topo-aware no slower than flat under the same order.
	if parse(tab.Rows[0][2]) > parse(tab.Rows[1][2])*1.001 {
		t.Errorf("dependent: topo-aware %s slower than flat %s", tab.Rows[0][2], tab.Rows[1][2])
	}
}

func TestSchedulerPolicies(t *testing.T) {
	o := DefaultQueueOpts()
	o.Base.Jobs = 150
	tab, err := SchedulerPolicies(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	raw, pad, aligned := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	if parse(pad[1]) <= parse(raw[1]) {
		t.Errorf("padding did not raise the CF fraction: %s vs %s", pad[1], raw[1])
	}
	if parse(aligned[1]) != 1.0 || parse(aligned[2]) != 1.0 {
		t.Errorf("aligned-only policy: CF %s isolated %s, want 1.000/1.000", aligned[1], aligned[2])
	}
	if parse(aligned[4]) < parse(pad[4]) {
		t.Errorf("aligned-only wait %s below padded %s", aligned[4], pad[4])
	}
}
