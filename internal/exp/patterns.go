package exp

import (
	"fmt"

	"fattree/internal/netsim"
	"fattree/internal/topo"
	"fattree/internal/workload"
)

// PatternOpts scales the synthetic-pattern sweep.
type PatternOpts struct {
	Cluster topo.PGFT
	Bytes   int64
	Seed    int64
}

// DefaultPatternOpts returns the standard setting.
func DefaultPatternOpts() PatternOpts {
	return PatternOpts{Cluster: topo.Cluster324, Bytes: 128 << 10, Seed: 1}
}

// PatternSweep runs the classic synthetic traffic suite through the
// packet simulator under D-Mod-K. It situates the paper's result: the
// contention the collectives suffer under random ordering is the same
// phenomenon a random permutation suffers, and no routing can fix
// endpoint congestion (incast).
func PatternSweep(o PatternOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	lft, err := engineLFT(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	cfg := netsim.DefaultConfig()
	nw, err := netsim.New(lft, simConfig(cfg))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Synthetic patterns under D-Mod-K, %d nodes, %d KiB", n, o.Bytes>>10),
		Header: []string{"pattern", "messages", "normalized BW", "max link util"},
	}
	for _, p := range workload.All() {
		msgs, err := workload.Generate(p, workload.Config{
			Hosts: n, Bytes: o.Bytes, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		st, err := nw.Run(msgs)
		if err != nil {
			return nil, err
		}
		// Normalize to the senders actually involved.
		senders := make(map[int]bool)
		for _, m := range msgs {
			senders[m.Src] = true
		}
		norm := st.EffectiveBandwidth() / (cfg.HostBandwidth * float64(len(senders)))
		t.Rows = append(t.Rows, []string{
			string(p), fmt.Sprint(len(msgs)), f3(norm), f2(st.MaxLinkUtilization()),
		})
	}
	t.Notes = append(t.Notes,
		"tornado and nearest-neighbor are permutations aligned with the index order: near-full bandwidth",
		"incast is endpoint congestion: ~1/(N-1) per sender regardless of routing")
	return t, nil
}
