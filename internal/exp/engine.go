package exp

import (
	"fmt"

	"fattree/internal/engine"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// EngineName selects the registry routing engine every experiment routes
// with; cmd/ftbench -engine sets it. Empty (or "dmodk") keeps the direct
// D-Mod-K construction, which skips the registry and honors
// UseCompiledPaths exactly as before.
var EngineName string

// engineRouter returns the analysis router for the selected engine on a
// healthy fabric. Registry engines hand back their own router (already
// compiled where the engine supports it); the default path compiles the
// D-Mod-K tables per UseCompiledPaths.
func engineRouter(tp *topo.Topology) (route.Router, error) {
	if EngineName == "" || EngineName == "dmodk" {
		return fastRouter(route.DModK(tp)), nil
	}
	tb, err := engineTables(tp)
	if err != nil {
		return nil, err
	}
	return tb.Router, nil
}

// engineLFT returns the selected engine's forwarding tables. Experiments
// that feed a simulator or per-level analyzer need the LFT realization
// itself, so source-based engines without one (s-mod-k) are refused with
// a pointed error rather than silently falling back to D-Mod-K.
func engineLFT(tp *topo.Topology) (*route.LFT, error) {
	if EngineName == "" || EngineName == "dmodk" {
		return route.DModK(tp), nil
	}
	tb, err := engineTables(tp)
	if err != nil {
		return nil, err
	}
	if tb.LFT == nil {
		return nil, fmt.Errorf("exp: this experiment needs forwarding tables; engine %q has no LFT realization", EngineName)
	}
	return tb.LFT, nil
}

func engineTables(tp *topo.Topology) (*engine.Tables, error) {
	e, err := engine.Build(EngineName, tp, engine.Options{})
	if err != nil {
		return nil, err
	}
	return e.Tables(nil)
}
