package exp

import (
	"fmt"

	"fattree/internal/des"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// JitterOpts scales the OS-jitter study.
type JitterOpts struct {
	Cluster topo.PGFT
	Bytes   int64
	Jitters []des.Time
	Stages  int
	Seed    int64
}

// DefaultJitterOpts returns the standard sweep.
func DefaultJitterOpts() JitterOpts {
	return JitterOpts{
		Cluster: topo.Cluster324,
		Bytes:   256 << 10,
		Jitters: []des.Time{0, 10 * des.Microsecond, 50 * des.Microsecond, 200 * des.Microsecond},
		Stages:  4,
		Seed:    1,
	}
}

// JitterSensitivity quantifies the Section VII caveat: even with
// contention-free routing and ordering, OS jitter (skewed injection
// within a synchronized stage) stretches stage completion. For
// contention-free traffic the penalty is additive (roughly the worst
// skew); for a random node order the jitter adds on top of the queueing
// the hot spots already cause — motivating the clock-synchronization
// protocols the paper points to.
func JitterSensitivity(o JitterOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	lft, err := engineLFT(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()

	mkStages := func(ord *order.Ordering) ([][]netsim.Message, error) {
		job, err := mpi.NewJob(lft, ord)
		if err != nil {
			return nil, err
		}
		var stages [][]netsim.Message
		for s := 0; s < o.Stages; s++ {
			stage := job.StageMessages(shiftBy{n, (s*5 + 3) % n}, 0, o.Bytes)
			stages = append(stages, stage)
		}
		return stages, nil
	}
	goodStages, err := mkStages(order.Topology(n, nil))
	if err != nil {
		return nil, err
	}
	badStages, err := mkStages(order.Random(n, nil, o.Seed))
	if err != nil {
		return nil, err
	}

	cfg := netsim.DefaultConfig()
	nw, err := netsim.New(lft, simConfig(cfg))
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  fmt.Sprintf("Jitter sensitivity: synchronized stages, %d nodes, %d KiB", n, o.Bytes>>10),
		Header: []string{"jitter us", "ordered stage ms", "ordered slowdown", "random stage ms", "random slowdown"},
	}
	var base [2]des.Time
	for i, j := range o.Jitters {
		g, err := nw.RunStagesJitter(goodStages, j, o.Seed)
		if err != nil {
			return nil, err
		}
		r, err := nw.RunStagesJitter(badStages, j, o.Seed)
		if err != nil {
			return nil, err
		}
		gd := g.Duration / des.Time(o.Stages)
		rd := r.Duration / des.Time(o.Stages)
		if i == 0 {
			base[0], base[1] = gd, rd
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", j/des.Microsecond),
			fmt.Sprintf("%.3f", float64(gd)/float64(des.Millisecond)),
			f2(float64(gd) / float64(base[0])),
			fmt.Sprintf("%.3f", float64(rd)/float64(des.Millisecond)),
			f2(float64(rd) / float64(base[1])),
		})
	}
	t.Notes = append(t.Notes,
		"contention-free stages absorb jitter additively; contended stages stack it on top of queueing",
		"the paper's Section VII recommends clock-synchronization protocols to bound this skew")
	return t, nil
}
