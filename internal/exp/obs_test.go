package exp

import (
	"bytes"
	"io"
	"testing"

	"fattree/internal/des"
	"fattree/internal/netsim"
	"fattree/internal/obs"
	"fattree/internal/topo"
)

// renderAll runs a representative experiment slate and returns the
// rendered tables as one byte stream.
func renderAll(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	cf, err := ContentionFree(CFOpts{
		Cluster: topo.Cluster128, Bytes: 64 << 10, ShiftStages: 4,
		Config: netsim.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := RingAdversarial(RingOpts{
		Cluster: topo.Cluster324, Bytes: 64 << 10,
		Config: netsim.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{cf, ring} {
		if err := tab.Render(&out); err != nil {
			t.Fatal(err)
		}
		if err := tab.RenderCSV(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

// TestInstrumentPreservesResults mirrors internal/hsd's compiled-vs-walk
// equivalence test: attaching the full observability stack through the
// Instrument hook must leave every rendered experiment table
// byte-identical — observability reads the simulation, never steers it.
func TestInstrumentPreservesResults(t *testing.T) {
	if Instrument != nil {
		t.Fatal("Instrument already set")
	}
	base := renderAll(t)

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(io.Discard)
	sampler := obs.NewSampler(io.Discard, 5*des.Microsecond)
	Instrument = func(cfg *netsim.Config) {
		cfg.Metrics = reg
		cfg.Trace = tracer
		cfg.Probes = sampler
	}
	defer func() { Instrument = nil }()
	instrumented := renderAll(t)
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sampler.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(base, instrumented) {
		t.Errorf("instrumented experiment output diverged:\n--- off ---\n%s\n--- on ---\n%s",
			base, instrumented)
	}
	if reg.Counter("netsim_messages_delivered_total").Value() == 0 {
		t.Error("instrumented runs recorded no deliveries")
	}
	if tracer.Events() == 0 {
		t.Error("instrumented runs produced no trace events")
	}
}

// TestSimConfigNoHook asserts the hook-off path is an identity copy.
func TestSimConfigNoHook(t *testing.T) {
	if Instrument != nil {
		t.Fatal("Instrument already set")
	}
	cfg := netsim.DefaultConfig()
	got := simConfig(cfg)
	if got != cfg {
		t.Errorf("simConfig altered the config with no hook set")
	}
}
