package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// BufferOpts scales the buffer ablation.
type BufferOpts struct {
	Cluster topo.PGFT
	Bytes   int64
	Buffers []int
	Stages  int
	Seed    int64
}

// DefaultBufferOpts returns the standard sweep.
func DefaultBufferOpts() BufferOpts {
	return BufferOpts{
		Cluster: topo.Cluster324,
		Bytes:   256 << 10,
		Buffers: []int{1, 2, 4, 8, 16, 64},
		Stages:  4,
		Seed:    1,
	}
}

// BufferAblation probes the mechanism behind Figure 2's message-size
// dependence: head-of-line blocking in finite input buffers. Under a
// random node order, deeper buffers absorb short contention episodes and
// recover some bandwidth; under the contention-free configuration the
// buffer depth is irrelevant — there is never a second flow to absorb.
func BufferAblation(o BufferOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	lft, err := engineLFT(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()

	shift := cps.Sequence(cps.Shift(n))
	idx := make([]int, o.Stages)
	step := shift.NumStages() / o.Stages
	for i := range idx {
		idx[i] = i * step
	}
	shift, err = mpi.SampleStages(shift, idx)
	if err != nil {
		return nil, err
	}

	goodJob, err := mpi.NewJob(lft, order.Topology(n, nil))
	if err != nil {
		return nil, err
	}
	badJob, err := mpi.NewJob(lft, order.Random(n, nil, o.Seed))
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  fmt.Sprintf("Ablation: input-buffer depth vs normalized BW, Shift, %d nodes, %d KiB", n, o.Bytes>>10),
		Header: []string{"buffer packets", "ordered BW", "random BW", "random max link util"},
	}
	for _, b := range o.Buffers {
		cfg := netsim.DefaultConfig()
		cfg.BufferPackets = b
		g, err := goodJob.Simulate(shift, o.Bytes, false, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		r, err := badJob.Simulate(shift, o.Bytes, false, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(b),
			f3(goodJob.NormalizedBandwidth(g, cfg)),
			f3(badJob.NormalizedBandwidth(r, cfg)),
			f2(r.MaxLinkUtilization()),
		})
	}
	t.Notes = append(t.Notes,
		"ordered column is ~1.0 from 2 slots up (a single credit stalls on the credit round-trip even without contention)",
		"random column improves with depth until the hot links themselves saturate")
	return t, nil
}
