package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/des"
	"fattree/internal/mpi"
	"fattree/internal/netsim"
	"fattree/internal/topo"
)

// LatencyOpts scales the collective-latency crossover study.
type LatencyOpts struct {
	Cluster topo.PGFT
	Sizes   []int64
}

// DefaultLatencyOpts returns the standard sweep.
func DefaultLatencyOpts() LatencyOpts {
	return LatencyOpts{
		Cluster: topo.Cluster324,
		Sizes:   []int64{256, 2 << 10, 16 << 10, 128 << 10, 1 << 20},
	}
}

// CollectiveLatency examines the apparent trade-off behind Section VI:
// the topology-aware recursive doubling buys contention freedom with
// extra stages, so one might expect the flat XOR schedule to win on
// small messages where latency is stage-count bound. Measurement says
// otherwise on parallel-port RLFTs: the topology-aware schedule's extra
// stages are *intra-leaf* (2 links instead of up to 2h), so its total
// path-latency budget is lower too — it wins at every message size,
// on latency as well as bandwidth. Both schedules run under the
// proposed routing and ordering with synchronized stages.
func CollectiveLatency(o LatencyOpts) (*Table, error) {
	tp, err := topo.Build(o.Cluster)
	if err != nil {
		return nil, err
	}
	job, err := mpi.NewContentionFreeJob(tp, nil)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()
	flat := cps.RecursiveDoubling(n)
	ta, err := cps.TopoAwareRecursiveDoubling(o.Cluster.M)
	if err != nil {
		return nil, err
	}
	cfg := netsim.DefaultConfig()

	t := &Table{
		Title: fmt.Sprintf("Allreduce schedule latency: flat (%d stages) vs topology-aware (%d stages), %d nodes",
			flat.NumStages(), ta.NumStages(), n),
		Header: []string{"message bytes", "flat RD us", "topo-aware us", "winner"},
	}
	for _, size := range o.Sizes {
		fs, err := job.Simulate(flat, size, true, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		ts, err := job.Simulate(ta, size, true, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		winner := "topo-aware"
		if fs.Duration < ts.Duration {
			winner = "flat"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(size),
			fmt.Sprintf("%.2f", float64(fs.Duration)/float64(des.Microsecond)),
			fmt.Sprintf("%.2f", float64(ts.Duration)/float64(des.Microsecond)),
			winner,
		})
	}
	t.Notes = append(t.Notes,
		"the topo-aware schedule's extra stages are intra-leaf (short paths): it wins even in the latency-bound regime",
		"large messages add the contention term on top, widening the gap")
	return t, nil
}
