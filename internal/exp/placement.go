package exp

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/topo"
)

// PlacementComparison evaluates the rank-distribution policies a batch
// scheduler offers (block vs cyclic vs random) against the collectives
// catalogue. Block distribution is the paper's topology-aware order.
// Cyclic (round-robin over leaves, e.g. Slurm's --distribution=cyclic)
// turns out to be equally contention free for the constant-displacement
// (Shift-family) collectives on full RLFTs — the leaf-cyclic relabeling
// is an automorphism of the D-Mod-K spread. The Section VI topology
// aware schedule keeps HSD = 1 under cyclic only when the relabeling is
// a full symmetry of the tree (2-level trees, or level-symmetric ones
// like 12x12x12); on asymmetric trees like the 1944-node 18x18x6 it
// congests (measured avg 1.19, max 2). Random placement congests
// everything.
func PlacementComparison(cluster topo.PGFT) (*Table, error) {
	tp, err := topo.Build(cluster)
	if err != nil {
		return nil, err
	}
	rt, err := engineRouter(tp)
	if err != nil {
		return nil, err
	}
	n := tp.NumHosts()

	block := order.Topology(n, nil)
	cyclic, err := order.Cyclic(tp)
	if err != nil {
		return nil, err
	}
	random := order.Random(n, nil, 1)

	ta, err := cps.TopoAwareRecursiveDoubling(cluster.M)
	if err != nil {
		return nil, err
	}
	seqs := []cps.Sequence{
		cps.Shift(n),
		cps.Ring(n),
		cps.Dissemination(n),
		cps.RecursiveDoubling(n),
		ta,
	}
	t := &Table{
		Title:  fmt.Sprintf("Placement policy vs avg max HSD, %d nodes", n),
		Header: []string{"sequence", "block (paper)", "cyclic", "random"},
	}
	for _, seq := range seqs {
		row := []string{seq.Name()}
		for _, o := range []*order.Ordering{block, cyclic, random} {
			rep, err := hsd.AnalyzeParallel(rt, o, seq, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(rep.AvgMaxHSD()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"cyclic placement preserves the Shift-family guarantee on full RLFTs (a structure-preserving relabeling)",
		"the topology-aware schedule survives cyclic only on level-symmetric trees; on 18x18x6 it congests",
		"random placement congests everything — the real enemy is unstructured, not merely non-block, placement")
	return t, nil
}
