package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TraceEvent is one Chrome trace-event record, the subset of fields the
// obs.Tracer emits.
type TraceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`  // microseconds
	Dur  float64                `json:"dur"` // microseconds (ph == "X")
	Args map[string]interface{} `json:"args"`
}

// TraceData is a parsed Chrome trace document.
type TraceData struct {
	Schema string
	Events []TraceEvent

	processes map[int]string
}

// traceDoc is the document envelope.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Schema string `json:"schema"`
	} `json:"otherData"`
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// ParseTrace reads a whole Chrome trace-event document (the -trace file
// written via obs.FileSinks).
func ParseTrace(r io.Reader) (*TraceData, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("report: reading trace: %w", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("report: trace is not a Chrome trace document: %w", err)
	}
	d := &TraceData{
		Schema:    doc.OtherData.Schema,
		Events:    doc.TraceEvents,
		processes: map[int]string{},
	}
	for _, ev := range d.Events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if name, ok := ev.Args["name"].(string); ok {
				d.processes[ev.Pid] = name
			}
		}
	}
	return d, nil
}

// ProcessName returns the label of a pid lane group, or "".
func (d *TraceData) ProcessName(pid int) string {
	if d == nil {
		return ""
	}
	return d.processes[pid]
}

// StageSpan is one collective-phase marker of the trace.
type StageSpan struct {
	Name     string
	Start    float64 // microseconds
	Dur      float64
	Messages float64 // "messages"/"flows" arg when present
}

// StageSpans extracts the "stage N" phase markers, in time order as
// emitted. Both the simulator (collective lane) and fthsd's synthetic
// timeline name their spans this way.
func (d *TraceData) StageSpans() []StageSpan {
	if d == nil {
		return nil
	}
	var spans []StageSpan
	for _, ev := range d.Events {
		if ev.Ph != "X" || !strings.HasPrefix(ev.Name, "stage ") {
			continue
		}
		s := StageSpan{Name: ev.Name, Start: ev.Ts, Dur: ev.Dur}
		for _, key := range []string{"messages", "flows"} {
			if v, ok := ev.Args[key].(float64); ok {
				s.Messages = v
				break
			}
		}
		spans = append(spans, s)
	}
	return spans
}
