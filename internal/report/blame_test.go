package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fattree/internal/cps"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// TestBlameRandomOrdering pins the paper's motivating scenario on the
// 324-node cluster: random rank placement under recursive doubling
// contends, and the report names the guilty links with their full flow
// sets.
func TestBlameRandomOrdering(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	rt, err := route.Compile(route.DModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	o := order.Random(tp.NumHosts(), nil, 7)
	rep, err := BuildBlame(rt, o, cps.RecursiveDoubling(tp.NumHosts()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BlameSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, BlameSchema)
	}
	if rep.ContentionFree || rep.MaxHSD <= 1 {
		t.Fatalf("random ordering reported contention-free (max HSD %d)", rep.MaxHSD)
	}
	if rep.HotLinks == 0 || rep.HotStages == 0 {
		t.Fatalf("no hot links/stages attributed: %+v", rep)
	}
	hot := 0
	for _, s := range rep.Stages {
		for i, h := range s.HotLinks {
			hot++
			if len(h.Flows) != h.Load {
				t.Errorf("stage %d link %d %s: %d flows listed, load %d",
					s.Stage, h.Link, h.Dir, len(h.Flows), h.Load)
			}
			if h.Load <= 1 {
				t.Errorf("stage %d link %d: load %d is not hot", s.Stage, h.Link, h.Load)
			}
			if i > 0 && s.HotLinks[i-1].Load < h.Load {
				t.Errorf("stage %d: hot links not sorted by load", s.Stage)
			}
			if h.From == "" || h.To == "" {
				t.Errorf("stage %d link %d: endpoints not named", s.Stage, h.Link)
			}
			for _, f := range h.Flows {
				if f.SrcRank < 0 || f.DstRank < 0 {
					t.Errorf("stage %d link %d: flow %d->%d has no ranks", s.Stage, h.Link, f.Src, f.Dst)
				}
				if o.HostOf[f.SrcRank] != f.Src || o.HostOf[f.DstRank] != f.Dst {
					t.Errorf("stage %d link %d: rank mapping inconsistent for flow %+v", s.Stage, h.Link, f)
				}
			}
		}
	}
	if hot != rep.HotLinks {
		t.Errorf("HotLinks = %d, stages carry %d", rep.HotLinks, hot)
	}

	// The report must survive a JSON round trip unchanged in substance.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back BlameReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.MaxHSD != rep.MaxHSD || back.HotLinks != rep.HotLinks || len(back.Stages) != len(rep.Stages) {
		t.Errorf("JSON round trip lost data: %+v vs %+v", back, rep)
	}

	var buf bytes.Buffer
	if err := rep.WriteBlameTable(&buf, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"max HSD", "stage ", "link ", "rank "} {
		if !strings.Contains(out, want) {
			t.Errorf("blame table missing %q:\n%s", want, out)
		}
	}
}

// TestBlameContentionFree checks the positive claim: D-Mod-K plus
// topology ordering plus the topo-aware recursive doubling yields an
// empty blame report.
func TestBlameContentionFree(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	seq, err := cps.TopoAwareRecursiveDoubling(tp.Spec.M)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildBlame(route.DModK(tp), order.Topology(tp.NumHosts(), nil), seq)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ContentionFree || rep.MaxHSD > 1 || rep.HotLinks != 0 || rep.HotStages != 0 {
		t.Fatalf("expected contention-free report, got max HSD %d, %d hot links",
			rep.MaxHSD, rep.HotLinks)
	}
	for _, s := range rep.Stages {
		if len(s.HotLinks) != 0 {
			t.Errorf("stage %d carries hot links in a contention-free run", s.Stage)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteBlameTable(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nothing to blame") {
		t.Errorf("contention-free table missing the all-clear line:\n%s", buf.String())
	}
}

// TestBlameSizeMismatch checks the input validation.
func TestBlameSizeMismatch(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 1}))
	rt := route.DModK(tp)
	o := order.Topology(tp.NumHosts(), nil)
	if _, err := BuildBlame(rt, o, cps.Shift(tp.NumHosts()+1)); err == nil {
		t.Error("size mismatch not rejected")
	}
}
