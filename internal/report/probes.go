package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"fattree/internal/obs"
)

// Sample is one tick of one probe series.
type Sample struct {
	T      int64 // picoseconds of simulated time
	Values []float64
}

// Series is the full time line of one probe.
type Series struct {
	Name    string
	Samples []Sample
}

// Width returns the widest value vector seen across the series'
// samples (probe vectors are fixed width in practice, but the parser
// does not assume it).
func (s *Series) Width() int {
	w := 0
	for _, sm := range s.Samples {
		if len(sm.Values) > w {
			w = len(sm.Values)
		}
	}
	return w
}

// ProbeData is a parsed -metrics JSONL stream: the probe series in
// first-seen order, the closing registry snapshot, and bookkeeping
// about lines that were not samples. Malformed lines (invalid JSON) are
// skipped and counted rather than failing the whole file — a truncated
// stream from a crashed run should still render a report.
type ProbeData struct {
	Schema    string
	Series    map[string]*Series
	Order     []string // series names in first-seen order
	Snapshot  *obs.Snapshot
	Rollup    *LinkRollup // link contention rollup, when the stream carries one
	Shards    []ShardStat // per-shard DES telemetry record, when present
	Records   int         // valid records of any kind
	Extra     int         // valid JSON lines that are neither sample, snapshot nor header
	Malformed int         // lines that were not valid JSON
}

// LinkRollup mirrors the netsim rollup record closing a
// fattree-linkprobe/v1 stream: per-directed-channel contention summary
// (channel index: up = 2*link, down = 2*link+1).
type LinkRollup struct {
	DurationPS int64     `json:"duration_ps"`
	MaxQueue   []int     `json:"max_queue"`
	BusyFrac   []float64 `json:"busy_frac"`
}

// ShardStat mirrors one netsim.ShardStats entry from the per-shard
// telemetry record a probe stream carries after a sharded run.
type ShardStat struct {
	Shard           int    `json:"shard"`
	Events          uint64 `json:"events"`
	MaxPending      int    `json:"max_pending"`
	MailboxPeak     int    `json:"mailbox_peak"`
	BusyNS          int64  `json:"busy_ns"`
	StallNS         int64  `json:"stall_ns"`
	CalRebases      uint64 `json:"cal_rebases"`
	CalOverflowPeak int    `json:"cal_overflow_peak"`
	CalSlotsPeak    int    `json:"cal_slots_peak"`
}

// probeLine is the union of every record kind a probe stream carries.
type probeLine struct {
	T        *int64        `json:"t_ps"`
	Series   string        `json:"series"`
	Values   []float64     `json:"values"`
	Schema   string        `json:"schema"`
	Snapshot *obs.Snapshot `json:"snapshot"`

	// Link rollup record ({"rollup":"links",...}).
	Rollup     string    `json:"rollup"`
	DurationPS int64     `json:"duration_ps"`
	MaxQueue   []int     `json:"max_queue"`
	BusyFrac   []float64 `json:"busy_frac"`

	// Per-shard telemetry record ({"shards":[...]}).
	Shards []ShardStat `json:"shards"`
}

// ParseProbes reads a probe JSONL stream (the -metrics file written via
// obs.FileSinks). It returns an error only when the reader itself
// fails; content problems are reported through the Malformed counter so
// partial streams still yield partial data.
func ParseProbes(r io.Reader) (*ProbeData, error) {
	d := &ProbeData{Series: map[string]*Series{}}
	sc := bufio.NewScanner(r)
	// A 1944-host run emits ~4k values per sample line; give the
	// scanner room well beyond the default 64 KiB line cap.
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var p probeLine
		if err := json.Unmarshal(line, &p); err != nil {
			d.Malformed++
			continue
		}
		d.Records++
		switch {
		case p.Schema != "":
			d.Schema = p.Schema
		case p.Snapshot != nil:
			d.Snapshot = p.Snapshot
		case p.Rollup == "links":
			d.Rollup = &LinkRollup{
				DurationPS: p.DurationPS,
				MaxQueue:   p.MaxQueue,
				BusyFrac:   p.BusyFrac,
			}
		case len(p.Shards) > 0:
			d.Shards = p.Shards
		case p.T != nil && p.Series != "":
			s, ok := d.Series[p.Series]
			if !ok {
				s = &Series{Name: p.Series}
				d.Series[p.Series] = s
				d.Order = append(d.Order, p.Series)
			}
			s.Samples = append(s.Samples, Sample{T: *p.T, Values: p.Values})
		default:
			d.Extra++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: reading probe stream: %w", err)
	}
	return d, nil
}

// Get returns the named series, or nil.
func (d *ProbeData) Get(name string) *Series {
	if d == nil {
		return nil
	}
	return d.Series[name]
}
