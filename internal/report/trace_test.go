package report

import (
	"bytes"
	"strings"
	"testing"

	"fattree/internal/des"
	"fattree/internal/obs"
)

// TestParseTraceRoundTrip feeds the parser a document written by the
// real obs.Tracer.
func TestParseTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	tr.ProcessName(1, "collective")
	tr.Complete(1, 0, 0, 2*des.Microsecond, "stage 0", obs.Num("messages", 9))
	tr.Complete(1, 0, 2*des.Microsecond, des.Microsecond, "stage 1", obs.Num("messages", 9))
	tr.Complete(2, 0, 0, des.Nanosecond, "send")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != obs.TraceSchema {
		t.Errorf("schema = %q, want %q", d.Schema, obs.TraceSchema)
	}
	if d.ProcessName(1) != "collective" {
		t.Errorf("process name = %q", d.ProcessName(1))
	}
	spans := d.StageSpans()
	if len(spans) != 2 {
		t.Fatalf("stage spans = %d, want 2: %+v", len(spans), spans)
	}
	if spans[0].Name != "stage 0" || spans[0].Messages != 9 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	// Tracer timestamps are microseconds; 2 µs of simulated time.
	if spans[1].Start != 2 || spans[1].Dur != 1 {
		t.Errorf("span 1 timing = %+v", spans[1])
	}

	var nilData *TraceData
	if nilData.StageSpans() != nil || nilData.ProcessName(1) != "" {
		t.Error("nil TraceData accessors not nil-safe")
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("not a trace")); err == nil {
		t.Error("garbage accepted as trace")
	}
}
