package report

import (
	"bytes"
	"strings"
	"testing"

	"fattree/internal/des"
	"fattree/internal/obs"
)

// TestParseProbesRoundTrip feeds the parser a stream produced by the
// real obs.Sampler — header record, two probe series over three ticks,
// closing registry snapshot — and checks everything lands where it
// should.
func TestParseProbesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := obs.NewSampler(&buf, des.Microsecond)
	s.Record(obs.StreamHeader{Schema: obs.ProbeSchema})
	util := []float64{0, 0, 0}
	s.Series("link_util", func(now des.Time, b []float64) []float64 {
		return append(b, util...)
	})
	queue := 0.0
	s.Series("event_queue", func(now des.Time, b []float64) []float64 {
		return append(b, queue)
	})
	for tick := 0; tick < 3; tick++ {
		util[0] = float64(tick) * 0.25
		util[2] = 1 - float64(tick)*0.25
		queue = float64(10 - tick)
		s.Sample(des.Time(tick) * des.Microsecond)
	}
	r := obs.NewRegistry()
	r.Counter("pkts_sent").Add(42)
	h, err := r.Histogram("msg_latency_ns", []float64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(50)
	h.Observe(50)
	s.Record(struct {
		Snapshot obs.Snapshot `json:"snapshot"`
	}{r.Snapshot()})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	d, err := ParseProbes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != obs.ProbeSchema {
		t.Errorf("schema = %q, want %q", d.Schema, obs.ProbeSchema)
	}
	if d.Malformed != 0 || d.Extra != 0 {
		t.Errorf("clean stream counted malformed=%d extra=%d", d.Malformed, d.Extra)
	}
	if got := d.Order; len(got) != 2 || got[0] != "link_util" || got[1] != "event_queue" {
		t.Errorf("series order = %v", got)
	}
	lu := d.Get("link_util")
	if lu == nil || len(lu.Samples) != 3 || lu.Width() != 3 {
		t.Fatalf("link_util parsed wrong: %+v", lu)
	}
	if lu.Samples[2].T != int64(2*des.Microsecond) {
		t.Errorf("sample time = %d ps, want %d", lu.Samples[2].T, int64(2*des.Microsecond))
	}
	if lu.Samples[2].Values[0] != 0.5 || lu.Samples[2].Values[2] != 0.5 {
		t.Errorf("sample values = %v", lu.Samples[2].Values)
	}
	eq := d.Get("event_queue")
	if eq == nil || len(eq.Samples) != 3 || eq.Samples[0].Values[0] != 10 {
		t.Fatalf("event_queue parsed wrong: %+v", eq)
	}
	if d.Snapshot == nil {
		t.Fatal("snapshot record not captured")
	}
	if d.Snapshot.Counters["pkts_sent"] != 42 {
		t.Errorf("snapshot counter = %d", d.Snapshot.Counters["pkts_sent"])
	}
	hs := d.Snapshot.Histograms["msg_latency_ns"]
	if hs.Count != 2 || hs.P50 == 0 {
		t.Errorf("snapshot histogram lost quantiles: %+v", hs)
	}
	if d.Get("nope") != nil {
		t.Error("Get on missing series not nil")
	}
}

// TestParseProbesMalformed checks that garbage lines are skipped and
// counted instead of poisoning the stream — a truncated file from a
// crashed run must still yield its valid prefix.
func TestParseProbesMalformed(t *testing.T) {
	in := strings.Join([]string{
		`{"schema":"fattree-probes/v1"}`,
		`{"t_ps":1000,"series":"event_queue","values":[5]}`,
		`not json at all`,
		`{"t_ps":2000,"series":"event_queue","values":[3]`, // truncated mid-record
		``,
		`{"note":"valid json, unknown shape"}`,
		`{"t_ps":3000,"series":"event_queue","values":[1]}`,
	}, "\n")
	d, err := ParseProbes(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Malformed != 2 {
		t.Errorf("malformed = %d, want 2", d.Malformed)
	}
	if d.Extra != 1 {
		t.Errorf("extra = %d, want 1", d.Extra)
	}
	eq := d.Get("event_queue")
	if eq == nil || len(eq.Samples) != 2 {
		t.Fatalf("valid samples lost: %+v", eq)
	}
	if eq.Samples[1].T != 3000 || eq.Samples[1].Values[0] != 1 {
		t.Errorf("last sample = %+v", eq.Samples[1])
	}
	if d.Schema != "fattree-probes/v1" {
		t.Errorf("schema = %q", d.Schema)
	}

	// Nil-safety of the accessors.
	var nilData *ProbeData
	if nilData.Get("x") != nil {
		t.Error("nil ProbeData.Get not nil")
	}
}
