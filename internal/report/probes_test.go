package report

import (
	"bytes"
	"strings"
	"testing"

	"fattree/internal/des"
	"fattree/internal/obs"
)

// TestParseProbesRoundTrip feeds the parser a stream produced by the
// real obs.Sampler — header record, two probe series over three ticks,
// closing registry snapshot — and checks everything lands where it
// should.
func TestParseProbesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := obs.NewSampler(&buf, des.Microsecond)
	s.Record(obs.StreamHeader{Schema: obs.ProbeSchema})
	util := []float64{0, 0, 0}
	s.Series("link_util", func(now des.Time, b []float64) []float64 {
		return append(b, util...)
	})
	queue := 0.0
	s.Series("event_queue", func(now des.Time, b []float64) []float64 {
		return append(b, queue)
	})
	for tick := 0; tick < 3; tick++ {
		util[0] = float64(tick) * 0.25
		util[2] = 1 - float64(tick)*0.25
		queue = float64(10 - tick)
		s.Sample(des.Time(tick) * des.Microsecond)
	}
	r := obs.NewRegistry()
	r.Counter("pkts_sent").Add(42)
	h, err := r.Histogram("msg_latency_ns", []float64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(50)
	h.Observe(50)
	s.Record(struct {
		Snapshot obs.Snapshot `json:"snapshot"`
	}{r.Snapshot()})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	d, err := ParseProbes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != obs.ProbeSchema {
		t.Errorf("schema = %q, want %q", d.Schema, obs.ProbeSchema)
	}
	if d.Malformed != 0 || d.Extra != 0 {
		t.Errorf("clean stream counted malformed=%d extra=%d", d.Malformed, d.Extra)
	}
	if got := d.Order; len(got) != 2 || got[0] != "link_util" || got[1] != "event_queue" {
		t.Errorf("series order = %v", got)
	}
	lu := d.Get("link_util")
	if lu == nil || len(lu.Samples) != 3 || lu.Width() != 3 {
		t.Fatalf("link_util parsed wrong: %+v", lu)
	}
	if lu.Samples[2].T != int64(2*des.Microsecond) {
		t.Errorf("sample time = %d ps, want %d", lu.Samples[2].T, int64(2*des.Microsecond))
	}
	if lu.Samples[2].Values[0] != 0.5 || lu.Samples[2].Values[2] != 0.5 {
		t.Errorf("sample values = %v", lu.Samples[2].Values)
	}
	eq := d.Get("event_queue")
	if eq == nil || len(eq.Samples) != 3 || eq.Samples[0].Values[0] != 10 {
		t.Fatalf("event_queue parsed wrong: %+v", eq)
	}
	if d.Snapshot == nil {
		t.Fatal("snapshot record not captured")
	}
	if d.Snapshot.Counters["pkts_sent"] != 42 {
		t.Errorf("snapshot counter = %d", d.Snapshot.Counters["pkts_sent"])
	}
	hs := d.Snapshot.Histograms["msg_latency_ns"]
	if hs.Count != 2 || hs.P50 == 0 {
		t.Errorf("snapshot histogram lost quantiles: %+v", hs)
	}
	if d.Get("nope") != nil {
		t.Error("Get on missing series not nil")
	}
}

// TestParseProbesMalformed checks that garbage lines are skipped and
// counted instead of poisoning the stream — a truncated file from a
// crashed run must still yield its valid prefix.
func TestParseProbesMalformed(t *testing.T) {
	in := strings.Join([]string{
		`{"schema":"fattree-probes/v1"}`,
		`{"t_ps":1000,"series":"event_queue","values":[5]}`,
		`not json at all`,
		`{"t_ps":2000,"series":"event_queue","values":[3]`, // truncated mid-record
		``,
		`{"note":"valid json, unknown shape"}`,
		`{"t_ps":3000,"series":"event_queue","values":[1]}`,
	}, "\n")
	d, err := ParseProbes(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Malformed != 2 {
		t.Errorf("malformed = %d, want 2", d.Malformed)
	}
	if d.Extra != 1 {
		t.Errorf("extra = %d, want 1", d.Extra)
	}
	eq := d.Get("event_queue")
	if eq == nil || len(eq.Samples) != 2 {
		t.Fatalf("valid samples lost: %+v", eq)
	}
	if eq.Samples[1].T != 3000 || eq.Samples[1].Values[0] != 1 {
		t.Errorf("last sample = %+v", eq.Samples[1])
	}
	if d.Schema != "fattree-probes/v1" {
		t.Errorf("schema = %q", d.Schema)
	}

	// Nil-safety of the accessors.
	var nilData *ProbeData
	if nilData.Get("x") != nil {
		t.Error("nil ProbeData.Get not nil")
	}
}

// TestParseProbesLinkRecords checks the fattree-linkprobe/v1 record
// kinds: the contention rollup and the per-shard telemetry record.
func TestParseProbesLinkRecords(t *testing.T) {
	stream := strings.Join([]string{
		`{"schema":"fattree-linkprobe/v1"}`,
		`{"t_ps":0,"series":"queue_depth","values":[0,1]}`,
		`{"t_ps":1000,"series":"queue_depth","values":[2,1]}`,
		`{"rollup":"links","duration_ps":2000,"max_queue":[2,1],"busy_frac":[0.5,0.25]}`,
		`{"shards":[{"shard":0,"events":10,"max_pending":3,"busy_ns":100,"stall_ns":50},{"shard":1,"events":30,"max_pending":4,"busy_ns":120,"stall_ns":30}]}`,
	}, "\n")
	d, err := ParseProbes(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != "fattree-linkprobe/v1" {
		t.Errorf("schema %q", d.Schema)
	}
	if d.Malformed != 0 || d.Extra != 0 {
		t.Errorf("malformed %d extra %d, want 0 0", d.Malformed, d.Extra)
	}
	if d.Rollup == nil || d.Rollup.DurationPS != 2000 {
		t.Fatalf("rollup = %+v", d.Rollup)
	}
	if len(d.Rollup.MaxQueue) != 2 || d.Rollup.MaxQueue[0] != 2 {
		t.Errorf("rollup max queue = %v", d.Rollup.MaxQueue)
	}
	if len(d.Shards) != 2 || d.Shards[1].Events != 30 || d.Shards[0].MaxPending != 3 {
		t.Errorf("shards = %+v", d.Shards)
	}
	if s := d.Get("queue_depth"); s == nil || len(s.Samples) != 2 {
		t.Errorf("queue_depth series = %+v", s)
	}
}

// TestRenderHTMLLinkSections drives the queue-depth heatmap, hot-links
// table and shard-balance table into the page.
func TestRenderHTMLLinkSections(t *testing.T) {
	lp, err := ParseProbes(strings.NewReader(strings.Join([]string{
		`{"schema":"fattree-linkprobe/v1"}`,
		`{"t_ps":0,"series":"queue_depth","values":[0,1,3]}`,
		`{"t_ps":1000,"series":"queue_depth","values":[1,0,2]}`,
		`{"rollup":"links","duration_ps":2000,"max_queue":[1,1,3],"busy_frac":[0.5,0.25,0.75]}`,
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	probes, err := ParseProbes(strings.NewReader(
		`{"shards":[{"shard":0,"events":100,"max_pending":5,"busy_ns":1000000,"stall_ns":500000},{"shard":1,"events":300,"max_pending":7,"busy_ns":2000000,"stall_ns":250000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = RenderHTML(&out, Inputs{Probes: probes, LinkProbes: lp},
		HTMLOptions{LinkProbesFile: "lp.jsonl"})
	if err != nil {
		t.Fatal(err)
	}
	html := out.String()
	for _, want := range []string{
		"Queue depth over time",
		"queue depth heatmap",
		"Shard balance",
		"events imbalance (max/mean): 1.50",
		"fattree-linkprobe/v1",
		"link probes: lp.jsonl",
		// The hot-links table names only the contended channel (depth > 1).
		"<td>ch2</td><td>3</td><td>75</td>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("rendered HTML is missing %q", want)
		}
	}
	if strings.Contains(html, "<td>ch0</td>") || strings.Contains(html, "<td>ch1</td>") {
		t.Error("hot-links table lists depth <= 1 channels")
	}
}
