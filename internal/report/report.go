// Package report turns the repository's telemetry into answers: it
// joins routing/topology structure with the HSD analyzer's flow-level
// evidence into contention "blame" reports that name the colliding
// flows on every overloaded link, parses the probe JSONL and Chrome
// trace streams the obs layer emits, renders them into one
// self-contained HTML file, and tracks benchmark results over time with
// regression gating. cmd/ftreport is the command-line front end;
// docs/OBSERVABILITY.md documents every schema. Stdlib only.
package report

import (
	"fmt"
	"io"
	"sort"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// Stream schema stamps, following the obs package convention: every
// machine-readable artifact names its format so consumers can detect
// incompatibilities. Bump /vN on breaking changes.
const (
	// BlameSchema stamps contention blame reports.
	BlameSchema = "fattree-blame/v1"
	// BenchSchema stamps benchmark history entries under results/bench/.
	BenchSchema = "fattree-bench/v1"
)

// Flow is one src->dst transfer crossing a contended link. Src/Dst are
// end-port indices; SrcRank/DstRank the MPI ranks mapped onto them
// (-1 when the stage was given as explicit host pairs).
type Flow struct {
	Src     int `json:"src"`
	Dst     int `json:"dst"`
	SrcRank int `json:"src_rank"`
	DstRank int `json:"dst_rank"`
}

// HotLink is one overloaded directed link of a stage: its identity,
// position in the tree, load, and every flow crossing it — the paper's
// Hot-Spot Degree argument made concrete enough to act on.
type HotLink struct {
	Link  int    `json:"link"`
	Dir   string `json:"dir"` // "up" | "down"
	Level int    `json:"level"`
	Load  int    `json:"load"`
	From  string `json:"from"`
	To    string `json:"to"`
	Flows []Flow `json:"flows"`
}

// BlameStage is the forensic record of one stage: the usual HSD summary
// plus per-tree-level maxima and the fully attributed hot links.
type BlameStage struct {
	Stage      int `json:"stage"`
	Flows      int `json:"flows"`
	MaxHSD     int `json:"max_hsd"`
	MaxUpHSD   int `json:"max_up_hsd"`
	MaxDownHSD int `json:"max_down_hsd"`
	// LevelUp[l] / LevelDown[l] are the maximum flow counts on links
	// joining levels l and l+1 (index 0 = host links), by direction.
	LevelUp   []int     `json:"level_up"`
	LevelDown []int     `json:"level_down"`
	HotLinks  []HotLink `json:"hot_links,omitempty"`
}

// BlameReport attributes every overloaded link of a sequence to the
// flows crossing it. It is the machine-readable output of
// `ftreport blame` and `fthsd -json`.
type BlameReport struct {
	Schema         string       `json:"schema"`
	Topology       string       `json:"topology"`
	Routing        string       `json:"routing"`
	Ordering       string       `json:"ordering"`
	Sequence       string       `json:"sequence"`
	Hosts          int          `json:"hosts"`
	MaxHSD         int          `json:"max_hsd"`
	HotStages      int          `json:"hot_stages"`
	HotLinks       int          `json:"hot_links"`
	ContentionFree bool         `json:"contention_free"`
	Stages         []BlameStage `json:"stages"`
}

// BuildBlame analyzes the sequence under the ordering with flow
// tracking on and attributes every directed link carrying more than one
// flow to the exact flows crossing it. The per-link loads and flow sets
// come from the same hsd.Analyzer pass, so a hot link's Flows length
// always equals its load counter.
func BuildBlame(rt route.Router, o *order.Ordering, seq cps.Sequence) (*BlameReport, error) {
	t := rt.Topology()
	if o.Size() != seq.Size() {
		return nil, fmt.Errorf("report: ordering size %d != sequence size %d", o.Size(), seq.Size())
	}
	if o.NumHosts() != t.NumHosts() {
		return nil, fmt.Errorf("report: ordering hosts %d != topology hosts %d", o.NumHosts(), t.NumHosts())
	}
	a := hsd.NewAnalyzer(rt)
	a.SetTrackFlows(true)
	rep := &BlameReport{
		Schema:   BlameSchema,
		Topology: t.Spec.String(),
		Routing:  rt.Label(),
		Ordering: o.Label,
		Sequence: seq.Name(),
		Hosts:    t.NumHosts(),
	}
	var pairs [][2]int
	var upBuf, downBuf []int32
	for s := 0; s < seq.NumStages(); s++ {
		stage := seq.Stage(s)
		pairs = pairs[:0]
		for _, p := range stage {
			pairs = append(pairs, [2]int{o.HostOf[p.Src], o.HostOf[p.Dst]})
		}
		sr, err := a.Stage(pairs)
		if err != nil {
			return nil, err
		}
		bs := BlameStage{
			Stage:      s,
			Flows:      sr.Flows,
			MaxHSD:     sr.MaxHSD,
			MaxUpHSD:   sr.MaxUpHSD,
			MaxDownHSD: sr.MaxDownHSD,
		}
		bs.LevelUp, bs.LevelDown = a.LevelLoads()
		upBuf, downBuf = a.LinkLoads(upBuf, downBuf)
		for l := range t.Links {
			for _, up := range []bool{true, false} {
				load := int(downBuf[l])
				if up {
					load = int(upBuf[l])
				}
				if load <= 1 {
					continue
				}
				bs.HotLinks = append(bs.HotLinks, blameLink(t, o, pairs, a, topo.LinkID(l), up, load))
			}
		}
		// Worst first, so the guilty link leads the report; ties break
		// on link id then direction for deterministic output.
		sort.SliceStable(bs.HotLinks, func(i, j int) bool {
			return bs.HotLinks[i].Load > bs.HotLinks[j].Load
		})
		if sr.MaxHSD > 1 {
			rep.HotStages++
		}
		rep.HotLinks += len(bs.HotLinks)
		if sr.MaxHSD > rep.MaxHSD {
			rep.MaxHSD = sr.MaxHSD
		}
		rep.Stages = append(rep.Stages, bs)
	}
	rep.ContentionFree = rep.MaxHSD <= 1
	return rep, nil
}

// blameLink assembles one hot link's record from the analyzer's tracked
// membership.
func blameLink(t *topo.Topology, o *order.Ordering, pairs [][2]int, a *hsd.Analyzer, l topo.LinkID, up bool, load int) HotLink {
	link := &t.Links[l]
	lower := t.Nodes[t.Ports[link.Lower].Node].String()
	upper := t.Nodes[t.Ports[link.Upper].Node].String()
	h := HotLink{
		Link:  int(l),
		Dir:   "down",
		Level: link.Level,
		Load:  load,
		From:  upper,
		To:    lower,
	}
	if up {
		h.Dir = "up"
		h.From, h.To = lower, upper
	}
	for _, fi := range a.StageFlows(l, up) {
		p := pairs[fi]
		f := Flow{Src: p[0], Dst: p[1], SrcRank: -1, DstRank: -1}
		if o != nil {
			f.SrcRank = o.RankOf(p[0])
			f.DstRank = o.RankOf(p[1])
		}
		h.Flows = append(h.Flows, f)
	}
	return h
}

// WriteBlameTable renders the report for humans: a summary line, then
// every hot stage with its overloaded links and the flows crossing
// them. maxFlows caps the flows printed per link (0 = all); truncation
// is announced, never silent.
func (r *BlameReport) WriteBlameTable(w io.Writer, maxFlows int) error {
	_, err := fmt.Fprintf(w, "%s / %s / %s on %s (%d hosts):\n",
		r.Sequence, r.Routing, r.Ordering, r.Topology, r.Hosts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  stages: %d  max HSD: %d  hot stages: %d  hot links: %d  contention-free: %v\n",
		len(r.Stages), r.MaxHSD, r.HotStages, r.HotLinks, r.ContentionFree)
	if r.ContentionFree {
		_, err = fmt.Fprintln(w, "  no link carries more than one flow in any stage; nothing to blame.")
		return err
	}
	for _, s := range r.Stages {
		if len(s.HotLinks) == 0 {
			continue
		}
		fmt.Fprintf(w, "  stage %d: flows %d  max HSD %d (up %d / down %d)  overloaded links %d\n",
			s.Stage, s.Flows, s.MaxHSD, s.MaxUpHSD, s.MaxDownHSD, len(s.HotLinks))
		for _, h := range s.HotLinks {
			fmt.Fprintf(w, "    link %d %s (level %d-%d): %d flows  %s -> %s\n",
				h.Link, h.Dir, h.Level-1, h.Level, h.Load, h.From, h.To)
			n := len(h.Flows)
			show := n
			if maxFlows > 0 && show > maxFlows {
				show = maxFlows
			}
			for _, f := range h.Flows[:show] {
				if f.SrcRank >= 0 {
					fmt.Fprintf(w, "      host %d -> host %d  (rank %d -> rank %d)\n",
						f.Src, f.Dst, f.SrcRank, f.DstRank)
				} else {
					fmt.Fprintf(w, "      host %d -> host %d\n", f.Src, f.Dst)
				}
			}
			if show < n {
				fmt.Fprintf(w, "      ... %d more flows (raise -top to see all)\n", n-show)
			}
		}
	}
	return nil
}
