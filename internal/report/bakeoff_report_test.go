package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func fixtureBakeoff() *BakeoffDoc {
	return &BakeoffDoc{
		Schema:   BakeoffSchema,
		Topology: "rlft2:4,8",
		Hosts:    32,
		Seed:     1,
		Engines: []BakeoffEngine{
			{Name: "dmodk", Description: "paper's D-Mod-K", LFT: true, FaultAware: true},
			{Name: "minhop-random", Description: "random baseline", LFT: true},
		},
		Levels: []BakeoffLevel{
			{Name: "healthy", Engines: []BakeoffResult{
				{Engine: "dmodk", RoutabilityPct: 100, MaxHSD: 1, AvgMaxHSD: 1, ContentionFree: true, RerouteUS: 120, MaxQueueDepth: -1},
				{Engine: "minhop-random", RoutabilityPct: 100, MaxHSD: 3, AvgMaxHSD: 2.5, RerouteUS: 95, MaxQueueDepth: -1},
			}},
			{Name: "1-link", FailedLinks: []int{7}, Engines: []BakeoffResult{
				{Engine: "dmodk", RoutabilityPct: 100, MaxHSD: 2, AvgMaxHSD: 1.2, RerouteUS: 300, MaxQueueDepth: -1},
				{Engine: "minhop-random", Err: "stale tables cross dead link 7"},
			}},
		},
	}
}

// TestParseBakeoff round-trips a verdict through its JSON form and
// rejects the wrong schema.
func TestParseBakeoff(t *testing.T) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(fixtureBakeoff()); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseBakeoff(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Topology != "rlft2:4,8" || len(doc.Levels) != 2 || len(doc.Engines) != 2 {
		t.Fatalf("parsed doc: %+v", doc)
	}
	if _, err := ParseBakeoff(strings.NewReader(`{"schema":"fattree-table/v1"}`)); err == nil {
		t.Fatal("ParseBakeoff accepted a wrong schema")
	}
}

// TestRenderHTMLBakeoff pins the bake-off section: heading, schema
// stamp, per-level tables, the engine rows, the errored cell, and the
// degradation curve SVG.
func TestRenderHTMLBakeoff(t *testing.T) {
	var buf bytes.Buffer
	err := RenderHTML(&buf, Inputs{Bakeoff: fixtureBakeoff()},
		HTMLOptions{BakeoffFile: "bakeoff.json"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<h2>Engine bake-off</h2>",
		"fattree-bakeoff/v1",
		"bake-off: bakeoff.json",
		"rlft2:4,8, 32 hosts, seed 1, 2 engine(s) x 2 fault level(s)",
		"<h3>healthy (0 failed link(s))</h3>",
		"<h3>1-link (1 failed link(s))</h3>",
		"<td>dmodk</td>",
		"stale tables cross dead link 7",
		"routability degradation curves",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The errored engine has no point at the faulted rung, so only the
	// healthy rung carries a minhop marker.
	if n := strings.Count(out, "minhop-random @"); n != 1 {
		t.Errorf("minhop-random has %d curve points, want 1 (errored rung skipped)", n)
	}
}
