package report

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func writeJSONDoc(w io.Writer, v interface{}) error { return json.NewEncoder(w).Encode(v) }

func fixtureLoad() *LoadDoc {
	return &LoadDoc{
		Schema:     LoadSchema,
		Target:     "http://127.0.0.1:7474",
		Endpoint:   "GET /v1/route",
		Hosts:      324,
		RTTFloorUS: 40,
		Levels: []LoadLevel{
			{Mode: "closed", Concurrency: 1, AchievedRPS: 4000, Sent: 8000,
				P50US: 90, P95US: 150, P99US: 220, MaxUS: 900, ServerP99US: 180, DurationS: 2},
			{Mode: "closed", Concurrency: 8, AchievedRPS: 21000, Sent: 42000,
				P50US: 210, P95US: 600, P99US: 1400, MaxUS: 5200, ServerP99US: 1100, DurationS: 2},
		},
	}
}

func fixtureEvents() *EventsDoc {
	return &EventsDoc{
		Schema: EventsSchema,
		Epoch:  3,
		Events: []FabricEvent{
			{Seq: 0, TimeUnixNS: 1_000_000_000, Kind: "fault", Epoch: 1, Detail: "link 17"},
			{Seq: 1, TimeUnixNS: 1_030_000_000, Kind: "reroute", Epoch: 2, DurationUS: 4200, Outcome: "ok", Detail: "failed_links=1"},
			{Seq: 2, TimeUnixNS: 1_031_000_000, Kind: "validate", Epoch: 2, DurationUS: 600, Outcome: "ok"},
			{Seq: 3, TimeUnixNS: 1_032_000_000, Kind: "swap", Epoch: 2, Outcome: "ok"},
		},
	}
}

// fixtureBinaryLoad is a batched wire-protocol sweep of the same
// daemon; rendered as its own curve section next to the JSON one.
func fixtureBinaryLoad() *LoadDoc {
	return &LoadDoc{
		Schema:   LoadSchema,
		Target:   "http://127.0.0.1:7474",
		Endpoint: "route_set",
		Protocol: "binary",
		Batch:    32,
		Hosts:    324,
		Levels: []LoadLevel{
			{Mode: "closed", Concurrency: 8, AchievedRPS: 9000, RoutesRPS: 288000, Sent: 18000,
				P50US: 300, P95US: 700, P99US: 1600, MaxUS: 4000, ServerP99US: 1300, DurationS: 2},
		},
	}
}

func TestRenderHTMLMultiLoad(t *testing.T) {
	var buf bytes.Buffer
	err := RenderHTML(&buf, Inputs{Loads: []*LoadDoc{fixtureLoad(), fixtureBinaryLoad()}}, HTMLOptions{
		LoadFile: "load_json.json, load_bin.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Load curve — GET /v1/route",
		"Load curve — route_set (binary, batch 32)",
		"288000", // routes/s column for the batched sweep
		"21000",  // the JSON sweep's req/s
		"load: load_json.json, load_bin.json",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-load report missing %q", want)
		}
	}
}

func TestParseLoad(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSONDoc(&buf, fixtureLoad()); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseLoad(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Hosts != 324 || len(doc.Levels) != 2 || doc.Levels[1].P99US != 1400 {
		t.Fatalf("round trip: %+v", doc)
	}
	if _, err := ParseLoad(strings.NewReader(`{"schema":"wrong/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ParseLoad(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParseEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSONDoc(&buf, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 4 || doc.Events[0].Kind != "fault" {
		t.Fatalf("round trip: %+v", doc)
	}
	if _, err := ParseEvents(strings.NewReader(`{"schema":"wrong/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestRenderHTMLLoadAndEvents(t *testing.T) {
	var buf bytes.Buffer
	err := RenderHTML(&buf, Inputs{Load: fixtureLoad(), Events: fixtureEvents()}, HTMLOptions{
		LoadFile:   "load.json",
		EventsFile: "events.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Load curve", "closed c=8", "21000", "server p99",
		"load: load.json", "events: events.json",
		LoadSchema, EventsSchema,
		"Fabric events", "reroute", "failed_links=1", "+32 ms",
		"fault", "swap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "<img"} {
		if strings.Contains(out, banned) {
			t.Errorf("report not self-contained: %q", banned)
		}
	}

	// Empty journal: note, no strip.
	buf.Reset()
	if err := RenderHTML(&buf, Inputs{Events: &EventsDoc{Schema: EventsSchema, Dropped: 7}}, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "event journal is empty") || !strings.Contains(out, "dropped 7 older") {
		t.Errorf("empty-journal notes missing:\n%s", out)
	}
	if strings.Contains(out, "Fabric events") {
		t.Error("empty journal still rendered a strip")
	}
}

func TestEventTableCap(t *testing.T) {
	doc := &EventsDoc{Schema: EventsSchema}
	for i := 0; i < maxEventRows+10; i++ {
		doc.Events = append(doc.Events, FabricEvent{
			Seq: uint64(i), TimeUnixNS: int64(i) * 1_000_000, Kind: "fault",
		})
	}
	var buf bytes.Buffer
	if err := RenderHTML(&buf, Inputs{Events: doc}, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "newest 256 of 266 records") {
		t.Errorf("cap note missing:\n%s", out[:400])
	}
	if strings.Contains(out, "<td>9</td>") {
		t.Error("capped table still shows oldest rows")
	}
	if !strings.Contains(out, "<td>265</td>") {
		t.Error("capped table missing newest row")
	}
}
