package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fattree/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureProbes builds a small deterministic probe stream: utilization
// ramping on four channels, a draining event queue, and a closing
// snapshot with one histogram.
func fixtureProbes(t *testing.T) *ProbeData {
	t.Helper()
	r := obs.NewRegistry()
	r.Counter("pkts_sent").Add(1234)
	r.Gauge("hosts").Set(4)
	h, err := r.Histogram("msg_latency_ns", []float64{100, 1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	h.Observe(5000)
	snap := r.Snapshot()
	d := &ProbeData{
		Schema: obs.ProbeSchema,
		Series: map[string]*Series{},
		Order:  []string{"link_util", "event_queue", "credit_stalls"},
	}
	for _, n := range d.Order {
		d.Series[n] = &Series{Name: n}
	}
	for tick := int64(0); tick < 6; tick++ {
		u := float64(tick) / 5
		d.Series["link_util"].Samples = append(d.Series["link_util"].Samples,
			Sample{T: tick * 1_000_000, Values: []float64{u, 1 - u, 0.5, 1.2 * u}})
		d.Series["event_queue"].Samples = append(d.Series["event_queue"].Samples,
			Sample{T: tick * 1_000_000, Values: []float64{float64(12 - 2*tick)}})
		d.Series["credit_stalls"].Samples = append(d.Series["credit_stalls"].Samples,
			Sample{T: tick * 1_000_000, Values: []float64{float64(tick * 3), float64(tick)}})
	}
	d.Snapshot = &snap
	return d
}

// fixtureTrace builds a trace with three stage spans and a process
// label.
func fixtureTrace() *TraceData {
	return &TraceData{
		Schema: obs.TraceSchema,
		Events: []TraceEvent{
			{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]interface{}{"name": "collective"}},
			{Name: "stage 0", Ph: "X", Pid: 1, Ts: 0, Dur: 2.5, Args: map[string]interface{}{"messages": 4.0}},
			{Name: "stage 1", Ph: "X", Pid: 1, Ts: 2.5, Dur: 1.5, Args: map[string]interface{}{"messages": 4.0}},
			{Name: "stage 2", Ph: "X", Pid: 1, Ts: 4.0, Dur: 3.0, Args: map[string]interface{}{"messages": 4.0}},
			{Name: "send", Ph: "X", Pid: 2, Ts: 0, Dur: 1},
		},
		processes: map[int]string{1: "collective"},
	}
}

// TestRenderHTMLGolden pins the full report byte-for-byte. Regenerate
// with `go test ./internal/report -run Golden -update` after deliberate
// renderer changes.
func TestRenderHTMLGolden(t *testing.T) {
	var buf bytes.Buffer
	err := RenderHTML(&buf, Inputs{Probes: fixtureProbes(t), Trace: fixtureTrace()}, HTMLOptions{
		Title:       "golden fixture run",
		MetricsFile: "probes.jsonl",
		TraceFile:   "trace.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.html")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered HTML differs from %s (run with -update after deliberate changes)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestRenderHTMLContent sanity-checks the report's substance beyond the
// golden bytes: self-contained, non-empty heatmap and timeline,
// quantile table present.
func TestRenderHTMLContent(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderHTML(&buf, Inputs{Probes: fixtureProbes(t), Trace: fixtureTrace()}, HTMLOptions{Generated: "test"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banned := range []string{"<script", "http://", "https://", "<link", "<img"} {
		if strings.Contains(out, banned) {
			t.Errorf("report is not self-contained: found %q", banned)
		}
	}
	for _, want := range []string{
		"Link utilization", "<svg", "ch0", // heatmap with channel rows
		"Stage timeline", "stage 0",
		"msg_latency_ns", "p95", // quantile table
		"pkts_sent", "1234",
		obs.ProbeSchema, obs.TraceSchema,
		"generated test",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The overloaded channel (1.2 peak) must show the clamp color.
	if !strings.Contains(out, "#b91c1c") {
		t.Error("utilization above 1 not rendered in the warning color")
	}
}

// TestRenderHTMLPartialInputs checks graceful degradation: each input
// may be missing, and the report says so instead of failing.
func TestRenderHTMLPartialInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderHTML(&buf, Inputs{Probes: fixtureProbes(t)}, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no trace file") {
		t.Error("missing-trace note absent")
	}
	buf.Reset()
	if err := RenderHTML(&buf, Inputs{Trace: fixtureTrace()}, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no probe stream") {
		t.Error("missing-probes note absent")
	}
	buf.Reset()
	if err := RenderHTML(&buf, Inputs{}, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<html") {
		t.Error("empty-input report is not HTML")
	}
}

// TestHeatmapTruncation pins the row cap: more channels than
// MaxHeatmapRows keeps the busiest and announces the cut.
func TestHeatmapTruncation(t *testing.T) {
	d := &ProbeData{Series: map[string]*Series{}, Order: []string{"link_util"}}
	s := &Series{Name: "link_util"}
	vals := make([]float64, 8)
	for i := range vals {
		vals[i] = float64(i) / 8 // channel 7 is the busiest
	}
	s.Samples = append(s.Samples, Sample{T: 0, Values: vals}, Sample{T: 1000, Values: vals})
	d.Series["link_util"] = s
	var buf bytes.Buffer
	if err := RenderHTML(&buf, Inputs{Probes: d}, HTMLOptions{MaxHeatmapRows: 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 busiest of 8") {
		t.Errorf("truncation note absent:\n%s", out)
	}
	if !strings.Contains(out, ">ch7</text>") || strings.Contains(out, ">ch0</text>") {
		t.Error("row cap did not keep the busiest channels")
	}
}
