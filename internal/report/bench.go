package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string  `json:"name"` // normalized: no "-8" GOMAXPROCS suffix
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// BenchRun is one dated benchmark sweep, the unit stored under
// results/bench/.
type BenchRun struct {
	Schema  string        `json:"schema"`
	Date    string        `json:"date"` // YYYY-MM-DD, from the file name or -date flag
	Label   string        `json:"label,omitempty"`
	Results []BenchResult `json:"results"`
}

// Get returns the named result, or nil.
func (r *BenchRun) Get(name string) *BenchResult {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// gomaxprocsSuffix matches the "-8" style suffix `go test -bench`
// appends to benchmark names; stripping it keeps names comparable
// across machines with different core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkStageCompiled-8  1203  987654 ns/op  12 B/op  3 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// test2jsonLine is the subset of a `go test -json` event we need.
type test2jsonLine struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// ParseGoBench reads benchmark results from either `go test -json`
// output (the Makefile's bench-json target) or plain `go test -bench`
// text; the format is auto-detected per line. test2json splits bench
// lines across events mid-line, so Output fields are accumulated and
// re-split before matching.
func ParseGoBench(r io.Reader) ([]BenchResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var text strings.Builder
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev test2jsonLine
		if line[0] == '{' && json.Unmarshal(line, &ev) == nil && ev.Action != "" {
			if ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.Write(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: reading bench output: %w", err)
	}
	var out []BenchResult
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		res := BenchResult{Name: gomaxprocsSuffix.ReplaceAllString(m[1], "")}
		res.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		out = append(out, res)
	}
	return out, nil
}

// runFile matches dated history entries, e.g. "2026-08-05.json".
var runFile = regexp.MustCompile(`^(\d{4}-\d{2}-\d{2})(?:[._-].*)?\.json$`)

// SaveRun writes a run into the history directory as <date>.json,
// creating the directory as needed. When no baseline.json exists yet,
// the run also seeds it, so the first recorded sweep becomes the
// reference that later gates compare against.
func SaveRun(dir string, run *BenchRun) (path string, seededBaseline bool, err error) {
	if run.Date == "" {
		return "", false, fmt.Errorf("report: bench run has no date")
	}
	run.Schema = BenchSchema
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", false, err
	}
	blob, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return "", false, err
	}
	blob = append(blob, '\n')
	path = filepath.Join(dir, run.Date+".json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return "", false, err
	}
	base := filepath.Join(dir, "baseline.json")
	if _, err := os.Stat(base); os.IsNotExist(err) {
		if err := os.WriteFile(base, blob, 0o644); err != nil {
			return path, false, err
		}
		seededBaseline = true
	}
	return path, seededBaseline, nil
}

// LoadRun reads one stored run.
func LoadRun(path string) (*BenchRun, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var run BenchRun
	if err := json.Unmarshal(blob, &run); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return &run, nil
}

// LoadHistory reads every dated entry in the history directory, oldest
// first. baseline.json is not part of the history; load it explicitly.
func LoadHistory(dir string) ([]*BenchRun, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && runFile.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var runs []*BenchRun
	for _, n := range names {
		run, err := LoadRun(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// Delta is one benchmark's baseline-vs-current comparison. Ratio is
// current/baseline ns/op: 1.10 means 10% slower. AllocRatio is the
// same quotient for allocs/op (0 when either side lacks -benchmem
// data); allocation counts are deterministic, so any growth beyond
// tolerance is a real regression, not noise.
type Delta struct {
	Name            string  `json:"name"`
	BaseNsOp        float64 `json:"base_ns_op"`
	CurNsOp         float64 `json:"cur_ns_op"`
	Ratio           float64 `json:"ratio"`
	Regression      bool    `json:"regression"`
	BaseAllocs      float64 `json:"base_allocs_op,omitempty"`
	CurAllocs       float64 `json:"cur_allocs_op,omitempty"`
	AllocRatio      float64 `json:"alloc_ratio,omitempty"`
	AllocRegression bool    `json:"alloc_regression,omitempty"`
}

// Comparison is the outcome of judging a run against a baseline with a
// tolerance: Regressions counts benchmarks slower than
// baseline*(1+tolerance), AllocRegressions those allocating more than
// that; Only* list benchmarks present on one side.
type Comparison struct {
	BaseDate         string   `json:"base_date"`
	CurDate          string   `json:"cur_date"`
	Tolerance        float64  `json:"tolerance"`
	Deltas           []Delta  `json:"deltas"`
	Regressions      int      `json:"regressions"`
	AllocRegressions int      `json:"alloc_regressions"`
	OnlyBase         []string `json:"only_base,omitempty"`
	OnlyCurrent      []string `json:"only_current,omitempty"`
}

// Bad reports whether the comparison found any regression, in time or
// in allocations; the -gate flag keys off this.
func (c *Comparison) Bad() bool { return c.Regressions+c.AllocRegressions > 0 }

// Compare judges cur against base: any shared benchmark whose ns/op or
// allocs/op grew by more than tolerance (a fraction; 0.15 = 15%) is
// flagged. Allocations are only judged when both runs recorded them.
func Compare(base, cur *BenchRun, tolerance float64) *Comparison {
	c := &Comparison{BaseDate: base.Date, CurDate: cur.Date, Tolerance: tolerance}
	seen := map[string]bool{}
	for _, b := range base.Results {
		seen[b.Name] = true
		r := cur.Get(b.Name)
		if r == nil {
			c.OnlyBase = append(c.OnlyBase, b.Name)
			continue
		}
		d := Delta{
			Name:     b.Name,
			BaseNsOp: b.NsPerOp, CurNsOp: r.NsPerOp,
			BaseAllocs: b.AllocsPerOp, CurAllocs: r.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.Ratio = r.NsPerOp / b.NsPerOp
		}
		d.Regression = d.Ratio > 1+tolerance
		if d.Regression {
			c.Regressions++
		}
		if b.AllocsPerOp > 0 {
			d.AllocRatio = r.AllocsPerOp / b.AllocsPerOp
			d.AllocRegression = d.AllocRatio > 1+tolerance
			if d.AllocRegression {
				c.AllocRegressions++
			}
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, r := range cur.Results {
		if !seen[r.Name] {
			c.OnlyCurrent = append(c.OnlyCurrent, r.Name)
		}
	}
	return c
}

// WriteTable renders the comparison for humans, slowest-relative first.
func (c *Comparison) WriteTable(w io.Writer) error {
	_, err := fmt.Fprintf(w, "bench: %s vs baseline %s (tolerance %.0f%%)\n",
		c.CurDate, c.BaseDate, c.Tolerance*100)
	if err != nil {
		return err
	}
	deltas := make([]Delta, len(c.Deltas))
	copy(deltas, c.Deltas)
	sort.SliceStable(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	for _, d := range deltas {
		flag := "  "
		if d.Regression {
			flag = "!!"
		}
		fmt.Fprintf(w, "  %s %-50s %12.0f -> %10.0f ns/op  %+6.1f%%",
			flag, d.Name, d.BaseNsOp, d.CurNsOp, (d.Ratio-1)*100)
		if d.AllocRatio > 0 {
			aflag := ""
			if d.AllocRegression {
				aflag = " !!"
			}
			fmt.Fprintf(w, "   %10.0f -> %8.0f allocs/op  %+6.1f%%%s",
				d.BaseAllocs, d.CurAllocs, (d.AllocRatio-1)*100, aflag)
		}
		fmt.Fprintln(w)
	}
	for _, n := range c.OnlyBase {
		fmt.Fprintf(w, "  -- %-50s dropped (in baseline only)\n", n)
	}
	for _, n := range c.OnlyCurrent {
		fmt.Fprintf(w, "  ++ %-50s new (no baseline)\n", n)
	}
	if c.Bad() {
		fmt.Fprintf(w, "  %d time and %d allocation regression(s) beyond tolerance\n",
			c.Regressions, c.AllocRegressions)
	} else {
		fmt.Fprintln(w, "  no regressions beyond tolerance")
	}
	return nil
}
