package report

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// test2json splits one bench result line across several Output events;
// this fixture mimics that plus interleaved noise.
const test2jsonFixture = `{"Action":"start","Package":"fattree"}
{"Action":"output","Package":"fattree","Output":"goos: linux\n"}
{"Action":"output","Package":"fattree","Output":"BenchmarkStageCompiled-8   \t"}
{"Action":"output","Package":"fattree","Output":"    1203\t    987654 ns/op\t      12 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"fattree","Output":"BenchmarkOrderSweep-8      \t      50\t  22000000 ns/op\n"}
{"Action":"run","Test":"ignored"}
{"Action":"output","Package":"fattree","Output":"PASS\n"}
`

func TestParseGoBenchTest2JSON(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(test2jsonFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkStageCompiled" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", got[0].Name)
	}
	if got[0].Iterations != 1203 || got[0].NsPerOp != 987654 || got[0].BytesPerOp != 12 || got[0].AllocsPerOp != 3 {
		t.Errorf("first result misparsed: %+v", got[0])
	}
	if got[1].Name != "BenchmarkOrderSweep" || got[1].NsPerOp != 22000000 {
		t.Errorf("second result misparsed: %+v", got[1])
	}
}

func TestParseGoBenchRawText(t *testing.T) {
	raw := "goos: linux\nBenchmarkHSD324-16  \t 100\t 5500.5 ns/op\nPASS\n"
	got, err := ParseGoBench(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkHSD324" || got[0].NsPerOp != 5500.5 {
		t.Fatalf("raw text misparsed: %+v", got)
	}
}

// TestBenchHistoryAndGate walks the whole flow: the first saved run
// seeds the baseline, a later run within tolerance passes, and a
// synthetic slowdown beyond tolerance is flagged — the condition
// `ftreport bench -gate` turns into a non-zero exit.
func TestBenchHistoryAndGate(t *testing.T) {
	dir := t.TempDir()
	day1 := &BenchRun{Date: "2026-08-01", Results: []BenchResult{
		{Name: "BenchmarkStageCompiled", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkOrderSweep", NsPerOp: 50000},
		{Name: "BenchmarkRetired", NsPerOp: 10},
	}}
	path, seeded, err := SaveRun(dir, day1)
	if err != nil {
		t.Fatal(err)
	}
	if !seeded {
		t.Error("first run did not seed the baseline")
	}
	if filepath.Base(path) != "2026-08-01.json" {
		t.Errorf("run saved as %s", path)
	}
	if day1.Schema != BenchSchema {
		t.Errorf("schema not stamped: %q", day1.Schema)
	}

	// Second run: one bench 5% slower but allocating double (alloc
	// regression), one 40% slower (time regression), one dropped, one
	// new.
	day2 := &BenchRun{Date: "2026-08-05", Results: []BenchResult{
		{Name: "BenchmarkStageCompiled", NsPerOp: 1050, AllocsPerOp: 200},
		{Name: "BenchmarkOrderSweep", NsPerOp: 70000},
		{Name: "BenchmarkBrandNew", NsPerOp: 7},
	}}
	if _, seeded, err = SaveRun(dir, day2); err != nil {
		t.Fatal(err)
	}
	if seeded {
		t.Error("second run re-seeded the baseline")
	}

	hist, err := LoadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Date != "2026-08-01" || hist[1].Date != "2026-08-05" {
		t.Fatalf("history wrong: %d runs", len(hist))
	}

	base, err := LoadRun(filepath.Join(dir, "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	c := Compare(base, day2, 0.15)
	if c.Regressions != 1 || c.AllocRegressions != 1 || !c.Bad() {
		t.Fatalf("regressions = %d/%d allocs, want 1/1: %+v", c.Regressions, c.AllocRegressions, c.Deltas)
	}
	for _, d := range c.Deltas {
		switch d.Name {
		case "BenchmarkOrderSweep":
			if !d.Regression || d.Ratio != 1.4 {
				t.Errorf("slowdown not flagged: %+v", d)
			}
			if d.AllocRegression || d.AllocRatio != 0 {
				t.Errorf("bench without alloc data judged on allocs: %+v", d)
			}
		case "BenchmarkStageCompiled":
			if d.Regression {
				t.Errorf("within-tolerance drift flagged: %+v", d)
			}
			if !d.AllocRegression || d.AllocRatio != 2 {
				t.Errorf("doubled allocations not flagged: %+v", d)
			}
		}
	}
	if len(c.OnlyBase) != 1 || c.OnlyBase[0] != "BenchmarkRetired" {
		t.Errorf("OnlyBase = %v", c.OnlyBase)
	}
	if len(c.OnlyCurrent) != 1 || c.OnlyCurrent[0] != "BenchmarkBrandNew" {
		t.Errorf("OnlyCurrent = %v", c.OnlyCurrent)
	}

	var buf bytes.Buffer
	if err := c.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"!! BenchmarkOrderSweep", "+40.0%", "allocs/op", "1 time and 1 allocation regression", "dropped", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}

	// Identical runs gate clean.
	if c := Compare(base, day1, 0.15); c.Bad() {
		t.Errorf("self-comparison found %d/%d regressions", c.Regressions, c.AllocRegressions)
	}
}

func TestSaveRunRequiresDate(t *testing.T) {
	if _, _, err := SaveRun(t.TempDir(), &BenchRun{}); err == nil {
		t.Error("dateless run accepted")
	}
}
