package report

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"sort"
	"strings"
)

// HTMLOptions configures RenderHTML.
type HTMLOptions struct {
	// Title heads the page; a default is derived from the inputs when
	// empty.
	Title string
	// MetricsFile / TraceFile / LoadFile / EventsFile / LinkProbesFile /
	// BakeoffFile name the inputs in the provenance lines.
	MetricsFile, TraceFile, LoadFile, EventsFile, LinkProbesFile, BakeoffFile string
	// Generated is a freeform provenance stamp (e.g. a timestamp);
	// omitted when empty so golden tests stay byte-stable.
	Generated string
	// MaxHeatmapRows caps the heatmap's channel rows (default 64); the
	// busiest channels win and truncation is announced in the notes.
	MaxHeatmapRows int
}

// Inputs bundles the optional data sources of one report. Any field
// may be nil; the report shows what it has. Probes and Trace are core
// (their absence is noted), while Load and Events are opt-in extras
// that render only when present.
type Inputs struct {
	Probes *ProbeData
	Trace  *TraceData
	Load   *LoadDoc
	// Loads carries additional sweeps — e.g. the JSON and binary
	// protocols over the same daemon — each rendered as its own curve
	// and table section. Load, when set, renders first.
	Loads  []*LoadDoc
	Events *EventsDoc
	// LinkProbes is a parsed fattree-linkprobe/v1 stream (the -link-probes
	// file): per-channel queue depth and utilization over time plus the
	// closing contention rollup.
	LinkProbes *ProbeData
	// Bakeoff is a parsed fattree-bakeoff/v1 verdict (ftbakeoff -o):
	// the engine comparison tables and degradation curves.
	Bakeoff *BakeoffDoc
}

// RenderHTML renders one self-contained HTML report — no external
// scripts, styles or images, just inline CSS and SVG — from parsed
// probe, trace, load-sweep and fabric-event inputs. Output is
// deterministic for given inputs, which the golden test pins.
func RenderHTML(w io.Writer, in Inputs, opt HTMLOptions) error {
	if opt.MaxHeatmapRows <= 0 {
		opt.MaxHeatmapRows = 64
	}
	v := buildView(in, opt)
	return pageTmpl.Execute(w, v)
}

// htmlView is the template's data: pre-rendered SVG fragments plus
// tables, so the template stays purely structural.
type htmlView struct {
	Title      string
	Generated  string
	Inputs     []string
	Schemas    []string
	Heatmap    template.HTML
	Timeline   template.HTML
	Sparks     []sparkView
	Hists      []histView
	Counters   []kvView
	Gauges     []kvView
	LoadSects  []loadSectionView
	EventStrip template.HTML
	Events     []eventView

	QueueHeatmap   template.HTML
	HotLinks       []hotLinkView
	ShardRows      []shardView
	ShardImbalance string

	BakeoffHead   string
	BakeoffCurve  template.HTML
	BakeoffLevels []bakeoffLevelView

	Notes []string
}

type hotLinkView struct {
	Channel, MaxQueue, BusyPct string
}

type shardView struct {
	Shard, Events, MaxPending, MailboxPeak    string
	BusyMS, StallMS                           string
	CalRebases, CalOverflowPeak, CalSlotsPeak string
}

type loadLevelView struct {
	Level                    string
	RPS, Routes              string
	Sent, Errors             string
	P50, P95, P99, ServerP99 string
}

// loadSectionView is one sweep document's slice of the report: a curve
// plus its level table, titled by what and how the sweep measured.
type loadSectionView struct {
	Title  string
	Curve  template.HTML
	Levels []loadLevelView
}

type eventView struct {
	Seq, Offset, Kind, Epoch, Duration, Outcome, Detail string
}

type sparkView struct {
	Name   string
	Legend string
	SVG    template.HTML
}

type histView struct {
	Name                string
	Count               string
	Mean, P50, P95, P99 string
}

type kvView struct {
	Name  string
	Value string
}

func buildView(in Inputs, opt HTMLOptions) *htmlView {
	probes, trace := in.Probes, in.Trace
	v := &htmlView{Title: opt.Title, Generated: opt.Generated}
	if v.Title == "" {
		v.Title = "fat-tree run report"
	}
	if opt.MetricsFile != "" {
		v.Inputs = append(v.Inputs, "metrics: "+opt.MetricsFile)
	}
	if opt.TraceFile != "" {
		v.Inputs = append(v.Inputs, "trace: "+opt.TraceFile)
	}
	if opt.LoadFile != "" {
		v.Inputs = append(v.Inputs, "load: "+opt.LoadFile)
	}
	if opt.EventsFile != "" {
		v.Inputs = append(v.Inputs, "events: "+opt.EventsFile)
	}
	if opt.LinkProbesFile != "" {
		v.Inputs = append(v.Inputs, "link probes: "+opt.LinkProbesFile)
	}
	if opt.BakeoffFile != "" {
		v.Inputs = append(v.Inputs, "bake-off: "+opt.BakeoffFile)
	}
	if probes != nil && probes.Schema != "" {
		v.Schemas = append(v.Schemas, probes.Schema)
	}
	if in.LinkProbes != nil && in.LinkProbes.Schema != "" {
		v.Schemas = append(v.Schemas, in.LinkProbes.Schema)
	}
	if trace != nil && trace.Schema != "" {
		v.Schemas = append(v.Schemas, trace.Schema)
	}
	if in.Load != nil && in.Load.Schema != "" {
		v.Schemas = append(v.Schemas, in.Load.Schema)
	} else if len(in.Loads) > 0 && in.Loads[0] != nil && in.Loads[0].Schema != "" {
		v.Schemas = append(v.Schemas, in.Loads[0].Schema)
	}
	if in.Events != nil && in.Events.Schema != "" {
		v.Schemas = append(v.Schemas, in.Events.Schema)
	}
	if in.Bakeoff != nil && in.Bakeoff.Schema != "" {
		v.Schemas = append(v.Schemas, in.Bakeoff.Schema)
	}

	if probes == nil {
		v.Notes = append(v.Notes, "no probe stream: heatmap, sparklines and metric tables omitted")
	} else {
		if probes.Malformed > 0 {
			v.Notes = append(v.Notes, fmt.Sprintf("%d malformed line(s) skipped in the probe stream", probes.Malformed))
		}
		v.Heatmap = buildHeatmap(probes.Get("link_util"), opt.MaxHeatmapRows, &v.Notes)
		v.Sparks = buildSparks(probes)
		v.Hists, v.Counters, v.Gauges = buildSnapshotTables(probes)
	}
	if trace == nil {
		v.Notes = append(v.Notes, "no trace file: stage timeline omitted")
	} else {
		v.Timeline = buildTimeline(trace.StageSpans(), &v.Notes)
	}
	// Link probe, load and events sections are opt-in: no note when
	// absent, so reports predating them render unchanged.
	if lp := in.LinkProbes; lp != nil {
		if lp.Malformed > 0 {
			v.Notes = append(v.Notes, fmt.Sprintf("%d malformed line(s) skipped in the link probe stream", lp.Malformed))
		}
		v.QueueHeatmap = buildQueueHeatmap(lp.Get("queue_depth"), opt.MaxHeatmapRows, &v.Notes)
		v.HotLinks = buildHotLinks(lp.Rollup)
	}
	if probes != nil && len(probes.Shards) > 0 {
		v.ShardRows, v.ShardImbalance = buildShardTable(probes.Shards)
	}
	loads := in.Loads
	if in.Load != nil {
		loads = append([]*LoadDoc{in.Load}, loads...)
	}
	for _, ld := range loads {
		if ld == nil {
			continue
		}
		v.LoadSects = append(v.LoadSects, loadSectionView{
			Title:  loadSectionTitle(ld),
			Curve:  buildLoadCurve(ld, &v.Notes),
			Levels: buildLoadTable(ld),
		})
	}
	if in.Events != nil {
		v.EventStrip, v.Events = buildEventSection(in.Events, &v.Notes)
	}
	if in.Bakeoff != nil {
		v.BakeoffHead, v.BakeoffCurve, v.BakeoffLevels = buildBakeoffSection(in.Bakeoff, &v.Notes)
	}
	return v
}

// f formats an SVG coordinate/length with fixed precision, keeping the
// output byte-deterministic.
func f(x float64) string { return strings.TrimSuffix(fmt.Sprintf("%.2f", x), ".00") }

// utilColor maps a utilization in [0,1] to a sequential ramp (near
// white to deep blue); values above 1 clamp to a warning red.
func utilColor(u float64) string {
	if u > 1 {
		return "#b91c1c"
	}
	if u < 0 {
		u = 0
	}
	lerp := func(a, b int) int { return a + int(math.Round(u*float64(b-a))) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(0xf4, 0x1e), lerp(0xf7, 0x40), lerp(0xfa, 0xaf))
}

// buildHeatmap renders the link-utilization heatmap: one row per
// directed channel (busiest first, capped), one column per probe tick.
func buildHeatmap(s *Series, maxRows int, notes *[]string) template.HTML {
	if s == nil || len(s.Samples) == 0 {
		*notes = append(*notes, "no link_util series: heatmap omitted")
		return ""
	}
	nCh := s.Width()
	if nCh == 0 {
		*notes = append(*notes, "link_util series has empty samples: heatmap omitted")
		return ""
	}
	// Rank channels by peak utilization, keep the busiest.
	type ranked struct {
		ch   int
		peak float64
	}
	rk := make([]ranked, nCh)
	for i := range rk {
		rk[i].ch = i
	}
	for _, sm := range s.Samples {
		for i, u := range sm.Values {
			if u > rk[i].peak {
				rk[i].peak = u
			}
		}
	}
	sort.SliceStable(rk, func(i, j int) bool { return rk[i].peak > rk[j].peak })
	rows := nCh
	if rows > maxRows {
		rows = maxRows
		*notes = append(*notes, fmt.Sprintf("heatmap shows the %d busiest of %d directed channels", rows, nCh))
	}
	cols := len(s.Samples)

	const labelW, cellH, legendH = 56.0, 10.0, 26.0
	cellW := math.Max(2, math.Min(18, 820.0/float64(cols)))
	width := labelW + cellW*float64(cols) + 8
	height := cellH*float64(rows) + legendH + 18

	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label="link utilization heatmap">`,
		f(width), f(height), f(width), f(height))
	for r := 0; r < rows; r++ {
		ch := rk[r].ch
		y := float64(r) * cellH
		fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">ch%d</text>`,
			f(labelW-4), f(y+cellH-2), ch)
		for c, sm := range s.Samples {
			u := 0.0
			if ch < len(sm.Values) {
				u = sm.Values[ch]
			}
			fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"><title>ch%d @ %d ps: %.3f</title></rect>`,
				f(labelW+float64(c)*cellW), f(y), f(cellW), f(cellH), utilColor(u), ch, sm.T, u)
		}
	}
	// Time axis: first and last tick.
	axisY := cellH*float64(rows) + 12
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl">%d ps</text>`, f(labelW), f(axisY), s.Samples[0].T)
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">%d ps</text>`,
		f(labelW+cellW*float64(cols)), f(axisY), s.Samples[cols-1].T)
	// Color legend.
	ly := axisY + 6
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="12" height="8" fill="%s"/>`,
			f(labelW+float64(i)*12), f(ly), utilColor(float64(i)/10))
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl">util 0 &#8594; 1 (red &gt; 1)</text>`,
		f(labelW+11*12+6), f(ly+8))
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// buildQueueHeatmap renders the queue-depth-over-time heatmap from a
// link probe stream: one row per directed channel (deepest first,
// capped), one column per probe tick, color scaled to the deepest
// queue seen. A contention-free run renders a flat depth &le; 1 map.
func buildQueueHeatmap(s *Series, maxRows int, notes *[]string) template.HTML {
	if s == nil || len(s.Samples) == 0 {
		*notes = append(*notes, "no queue_depth series: queue heatmap omitted")
		return ""
	}
	nCh := s.Width()
	if nCh == 0 {
		*notes = append(*notes, "queue_depth series has empty samples: queue heatmap omitted")
		return ""
	}
	type ranked struct {
		ch   int
		peak float64
	}
	rk := make([]ranked, nCh)
	for i := range rk {
		rk[i].ch = i
	}
	maxDepth := 0.0
	for _, sm := range s.Samples {
		for i, d := range sm.Values {
			if d > rk[i].peak {
				rk[i].peak = d
			}
			if d > maxDepth {
				maxDepth = d
			}
		}
	}
	if maxDepth == 0 {
		maxDepth = 1
	}
	sort.SliceStable(rk, func(i, j int) bool { return rk[i].peak > rk[j].peak })
	rows := nCh
	if rows > maxRows {
		rows = maxRows
		*notes = append(*notes, fmt.Sprintf("queue heatmap shows the %d deepest of %d directed channels", rows, nCh))
	}
	cols := len(s.Samples)

	const labelW, cellH, legendH = 56.0, 10.0, 26.0
	cellW := math.Max(2, math.Min(18, 820.0/float64(cols)))
	width := labelW + cellW*float64(cols) + 8
	height := cellH*float64(rows) + legendH + 18

	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label="queue depth heatmap">`,
		f(width), f(height), f(width), f(height))
	for r := 0; r < rows; r++ {
		ch := rk[r].ch
		y := float64(r) * cellH
		fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">ch%d</text>`,
			f(labelW-4), f(y+cellH-2), ch)
		for c, sm := range s.Samples {
			d := 0.0
			if ch < len(sm.Values) {
				d = sm.Values[ch]
			}
			fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"><title>ch%d @ %d ps: depth %.0f</title></rect>`,
				f(labelW+float64(c)*cellW), f(y), f(cellW), f(cellH), utilColor(d/maxDepth), ch, sm.T, d)
		}
	}
	axisY := cellH*float64(rows) + 12
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl">%d ps</text>`, f(labelW), f(axisY), s.Samples[0].T)
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">%d ps</text>`,
		f(labelW+cellW*float64(cols)), f(axisY), s.Samples[cols-1].T)
	ly := axisY + 6
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="12" height="8" fill="%s"/>`,
			f(labelW+float64(i)*12), f(ly), utilColor(float64(i)/10))
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl">depth 0 &#8594; %s</text>`,
		f(labelW+11*12+6), f(ly+8), f(maxDepth))
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// maxHotLinks caps the hot-links table at the deepest channels.
const maxHotLinks = 16

// buildHotLinks tabulates the rollup's deepest channels. Depth 1 is a
// packet transmitting with nothing queued behind it — only depth > 1
// marks contention, so a contention-free run yields an empty table.
func buildHotLinks(roll *LinkRollup) []hotLinkView {
	if roll == nil {
		return nil
	}
	type ranked struct {
		ch, depth int
	}
	var rk []ranked
	for ch, d := range roll.MaxQueue {
		if d > 1 {
			rk = append(rk, ranked{ch, d})
		}
	}
	sort.SliceStable(rk, func(i, j int) bool { return rk[i].depth > rk[j].depth })
	if len(rk) > maxHotLinks {
		rk = rk[:maxHotLinks]
	}
	var out []hotLinkView
	for _, r := range rk {
		busy := ""
		if r.ch < len(roll.BusyFrac) {
			busy = f(100 * roll.BusyFrac[r.ch])
		}
		out = append(out, hotLinkView{
			Channel:  fmt.Sprintf("ch%d", r.ch),
			MaxQueue: fmt.Sprintf("%d", r.depth),
			BusyPct:  busy,
		})
	}
	return out
}

// buildShardTable tabulates the per-shard DES telemetry and computes
// the events imbalance (max/mean) headline.
func buildShardTable(shards []ShardStat) ([]shardView, string) {
	var out []shardView
	var sumEv, maxEv uint64
	for _, sh := range shards {
		sumEv += sh.Events
		if sh.Events > maxEv {
			maxEv = sh.Events
		}
		out = append(out, shardView{
			Shard:           fmt.Sprintf("%d", sh.Shard),
			Events:          fmt.Sprintf("%d", sh.Events),
			MaxPending:      fmt.Sprintf("%d", sh.MaxPending),
			MailboxPeak:     fmt.Sprintf("%d", sh.MailboxPeak),
			BusyMS:          f(float64(sh.BusyNS) / 1e6),
			StallMS:         f(float64(sh.StallNS) / 1e6),
			CalRebases:      fmt.Sprintf("%d", sh.CalRebases),
			CalOverflowPeak: fmt.Sprintf("%d", sh.CalOverflowPeak),
			CalSlotsPeak:    fmt.Sprintf("%d", sh.CalSlotsPeak),
		})
	}
	imbalance := ""
	if len(shards) > 0 && sumEv > 0 {
		imbalance = fmt.Sprintf("%.2f", float64(maxEv)*float64(len(shards))/float64(sumEv))
	}
	return out, imbalance
}

// buildTimeline renders the collective stage spans as a single-lane
// timeline.
func buildTimeline(spans []StageSpan, notes *[]string) template.HTML {
	if len(spans) == 0 {
		*notes = append(*notes, "trace has no stage spans: timeline omitted")
		return ""
	}
	end := 0.0
	for _, s := range spans {
		if e := s.Start + s.Dur; e > end {
			end = e
		}
	}
	if end <= 0 {
		end = 1
	}
	const width, barH = 860.0, 22.0
	height := barH + 20
	scale := width / end
	fills := [2]string{"#3b82f6", "#93c5fd"}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label="stage timeline">`,
		f(width), f(height), f(width), f(height))
	for i, s := range spans {
		x, w := s.Start*scale, s.Dur*scale
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, `<rect x="%s" y="0" width="%s" height="%s" fill="%s"><title>%s: %s&#8211;%s &#181;s (%.0f messages)</title></rect>`,
			f(x), f(w), f(barH), fills[i%2], template.HTMLEscapeString(s.Name), f(s.Start), f(s.Start+s.Dur), s.Messages)
		if w >= 34 {
			fmt.Fprintf(&b, `<text x="%s" y="%s" class="bar">%s</text>`,
				f(x+3), f(barH-6), template.HTMLEscapeString(strings.TrimPrefix(s.Name, "stage ")))
		}
	}
	fmt.Fprintf(&b, `<text x="0" y="%s" class="lbl">0 &#181;s</text>`, f(barH+14))
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">%s &#181;s</text>`, f(width), f(barH+14), f(end))
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// buildLoadCurve plots the sweep's latency tail against achieved
// throughput: client p99 (solid) and server histogram p99 (dashed) per
// level.
func buildLoadCurve(load *LoadDoc, notes *[]string) template.HTML {
	if len(load.Levels) == 0 {
		*notes = append(*notes, "load sweep has no levels: curve omitted")
		return ""
	}
	const width, height, left, bottom = 640.0, 200.0, 56.0, 22.0
	maxX, maxY := 0.0, 0.0
	for _, l := range load.Levels {
		if l.AchievedRPS > maxX {
			maxX = l.AchievedRPS
		}
		for _, y := range []float64{l.P99US, l.ServerP99US} {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxX <= 0 {
		maxX = 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	px := func(rps float64) float64 { return left + rps/maxX*(width-left-8) }
	py := func(us float64) float64 { return (height - bottom) * (1 - us/maxY) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label="p99 latency vs offered load">`,
		f(width), f(height), f(width), f(height))
	lines := []struct {
		color, dash string
		y           func(LoadLevel) float64
	}{
		{"#1e40af", "", func(l LoadLevel) float64 { return l.P99US }},
		{"#b45309", "4 3", func(l LoadLevel) float64 { return l.ServerP99US }},
	}
	for _, ln := range lines {
		var pts []string
		for _, l := range load.Levels {
			pts = append(pts, f(px(l.AchievedRPS))+","+f(py(ln.y(l))))
		}
		dash := ""
		if ln.dash != "" {
			dash = ` stroke-dasharray="` + ln.dash + `"`
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5"%s points="%s"/>`,
			ln.color, dash, strings.Join(pts, " "))
		for _, l := range load.Levels {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"><title>%s: %s req/s, p99 %s &#181;s</title></circle>`,
				f(px(l.AchievedRPS)), f(py(ln.y(l))), ln.color,
				template.HTMLEscapeString(loadLevelLabel(l)), f(l.AchievedRPS), f(ln.y(l)))
		}
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl">0 req/s</text>`, f(left), f(height-8))
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">%s req/s</text>`, f(width-8), f(height-8), f(maxX))
	fmt.Fprintf(&b, `<text x="2" y="10" class="lbl">%s &#181;s</text>`, f(maxY))
	fmt.Fprintf(&b, `<text x="%s" y="10" class="lbl">client p99 (solid) vs server p99 (dashed)</text>`, f(left))
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// loadSectionTitle names one sweep's report section by protocol and
// endpoint, so JSON and binary curves over the same daemon read apart.
func loadSectionTitle(ld *LoadDoc) string {
	title := "Load curve"
	if ld.Endpoint != "" {
		title += " — " + ld.Endpoint
	}
	switch {
	case ld.Protocol == "binary" && ld.Batch > 1:
		title += fmt.Sprintf(" (binary, batch %d)", ld.Batch)
	case ld.Protocol != "":
		title += " (" + ld.Protocol + ")"
	}
	return title
}

func loadLevelLabel(l LoadLevel) string {
	if l.Mode == "open" {
		return fmt.Sprintf("open %s/s", f(l.OfferedRPS))
	}
	return fmt.Sprintf("closed c=%d", l.Concurrency)
}

func buildLoadTable(load *LoadDoc) []loadLevelView {
	var out []loadLevelView
	for _, l := range load.Levels {
		routes := l.RoutesRPS
		if routes == 0 {
			routes = l.AchievedRPS // one route per request (JSON, batch 1)
		}
		out = append(out, loadLevelView{
			Level:     loadLevelLabel(l),
			RPS:       f(l.AchievedRPS),
			Routes:    f(routes),
			Sent:      fmt.Sprintf("%d", l.Sent),
			Errors:    fmt.Sprintf("%d", l.Errors),
			P50:       f(l.P50US),
			P95:       f(l.P95US),
			P99:       f(l.P99US),
			ServerP99: f(l.ServerP99US),
		})
	}
	return out
}

// eventColors keys the event strip; unknown kinds fall back to grey.
var eventColors = map[string]string{
	"fault":        "#b91c1c",
	"revive":       "#15803d",
	"fault_random": "#b91c1c",
	"alloc":        "#7c3aed",
	"free":         "#7c3aed",
	"reroute":      "#1d4ed8",
	"validate":     "#0e7490",
	"swap":         "#ca8a04",
}

// maxEventRows caps the event table; truncation is announced in the
// notes, never silent.
const maxEventRows = 256

// buildEventSection renders the fabric event journal: a time strip of
// colored markers plus the record table (newest records win the cap).
func buildEventSection(events *EventsDoc, notes *[]string) (template.HTML, []eventView) {
	evs := events.Events
	if events.Dropped > 0 {
		*notes = append(*notes, fmt.Sprintf("event journal dropped %d older record(s) at its ring capacity", events.Dropped))
	}
	if len(evs) == 0 {
		*notes = append(*notes, "event journal is empty: fabric timeline omitted")
		return "", nil
	}
	t0 := evs[0].TimeUnixNS
	spanMS := float64(evs[len(evs)-1].TimeUnixNS-t0) / 1e6
	if spanMS <= 0 {
		spanMS = 1
	}
	const width, barH = 860.0, 20.0
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label="fabric event timeline">`,
		f(width), f(barH+16), f(width), f(barH+16))
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%s" height="%s" fill="#f3f4f6"/>`, f(width), f(barH))
	for _, ev := range evs {
		offMS := float64(ev.TimeUnixNS-t0) / 1e6
		color, ok := eventColors[ev.Kind]
		if !ok {
			color = "#6b7280"
		}
		fmt.Fprintf(&b, `<rect x="%s" y="1" width="3" height="%s" fill="%s"><title>#%d %s @ +%s ms (epoch %d): %s</title></rect>`,
			f(offMS/spanMS*(width-3)), f(barH-2), color,
			ev.Seq, template.HTMLEscapeString(ev.Kind), f(offMS), ev.Epoch,
			template.HTMLEscapeString(ev.Detail))
	}
	fmt.Fprintf(&b, `<text x="0" y="%s" class="lbl">+0 ms</text>`, f(barH+12))
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">+%s ms</text>`, f(width), f(barH+12), f(spanMS))
	b.WriteString(`</svg>`)

	if len(evs) > maxEventRows {
		*notes = append(*notes, fmt.Sprintf("event table shows the newest %d of %d records", maxEventRows, len(evs)))
		evs = evs[len(evs)-maxEventRows:]
	}
	var rows []eventView
	for _, ev := range evs {
		dur := ""
		if ev.DurationUS > 0 {
			dur = fmt.Sprintf("%d", ev.DurationUS)
		}
		rows = append(rows, eventView{
			Seq:      fmt.Sprintf("%d", ev.Seq),
			Offset:   "+" + f(float64(ev.TimeUnixNS-t0)/1e6) + " ms",
			Kind:     ev.Kind,
			Epoch:    fmt.Sprintf("%d", ev.Epoch),
			Duration: dur,
			Outcome:  ev.Outcome,
			Detail:   ev.Detail,
		})
	}
	return template.HTML(b.String()), rows
}

// sparkSpec reduces one probe series to one or more plotted lines.
type sparkSpec struct {
	series string
	name   string
	lines  []sparkLine
}

type sparkLine struct {
	label  string
	reduce func(values []float64) float64
}

var sparkSpecs = []sparkSpec{
	{series: "credit_stalls", name: "credit stalls (cumulative)", lines: []sparkLine{
		{label: "host", reduce: func(v []float64) float64 { return at(v, 0) }},
		{label: "switch", reduce: func(v []float64) float64 { return at(v, 1) }},
	}},
	{series: "event_queue", name: "event queue depth", lines: []sparkLine{
		{label: "pending", reduce: func(v []float64) float64 { return at(v, 0) }},
	}},
	{series: "buffer_pkts", name: "buffered packets (total)", lines: []sparkLine{
		{label: "total", reduce: sum},
	}},
	{series: "link_util", name: "max link utilization", lines: []sparkLine{
		{label: "max", reduce: maxOf},
	}},
}

func at(v []float64, i int) float64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func maxOf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

var sparkColors = [2]string{"#1e40af", "#b45309"}

// buildSparks renders one sparkline per known series present in the
// stream.
func buildSparks(probes *ProbeData) []sparkView {
	var out []sparkView
	for _, spec := range sparkSpecs {
		s := probes.Get(spec.series)
		if s == nil || len(s.Samples) == 0 {
			continue
		}
		const width, height = 420.0, 64.0
		t0, t1 := s.Samples[0].T, s.Samples[len(s.Samples)-1].T
		span := float64(t1 - t0)
		if span <= 0 {
			span = 1
		}
		// Shared y scale across the spec's lines.
		maxY := 0.0
		vals := make([][]float64, len(spec.lines))
		for li, ln := range spec.lines {
			vals[li] = make([]float64, len(s.Samples))
			for i, sm := range s.Samples {
				y := ln.reduce(sm.Values)
				vals[li][i] = y
				if y > maxY {
					maxY = y
				}
			}
		}
		if maxY == 0 {
			maxY = 1
		}
		var b strings.Builder
		fmt.Fprintf(&b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label="%s">`,
			f(width), f(height), f(width), f(height), template.HTMLEscapeString(spec.name))
		var legend []string
		for li, ln := range spec.lines {
			color := sparkColors[li%2]
			var pts []string
			for i, sm := range s.Samples {
				x := float64(sm.T-t0) / span * (width - 2)
				y := (height - 14) * (1 - vals[li][i]/maxY)
				pts = append(pts, f(x+1)+","+f(y+1))
			}
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
				color, strings.Join(pts, " "))
			legend = append(legend, fmt.Sprintf("%s (last %s)", ln.label, f(vals[li][len(s.Samples)-1])))
		}
		fmt.Fprintf(&b, `<text x="1" y="%s" class="lbl">peak %s</text>`, f(height-2), f(maxY))
		b.WriteString(`</svg>`)
		out = append(out, sparkView{
			Name:   spec.name,
			Legend: strings.Join(legend, " &middot; "),
			SVG:    template.HTML(b.String()),
		})
	}
	return out
}

// buildSnapshotTables folds the final registry snapshot into the
// histogram-quantile, counter and gauge tables.
func buildSnapshotTables(probes *ProbeData) (hists []histView, counters, gauges []kvView) {
	snap := probes.Snapshot
	if snap == nil {
		return nil, nil, nil
	}
	var names []string
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		hists = append(hists, histView{
			Name:  n,
			Count: fmt.Sprintf("%d", h.Count),
			Mean:  f(mean),
			P50:   f(h.P50),
			P95:   f(h.P95),
			P99:   f(h.P99),
		})
	}
	names = names[:0]
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		counters = append(counters, kvView{Name: n, Value: fmt.Sprintf("%d", snap.Counters[n])})
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		gauges = append(gauges, kvView{Name: n, Value: fmt.Sprintf("%d", snap.Gauges[n])})
	}
	return hists, counters, gauges
}

var pageTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:920px;color:#1f2937;padding:0 1rem}
h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #e5e7eb;padding-bottom:.2rem}
table{border-collapse:collapse;margin:.5rem 0}
td,th{border:1px solid #e5e7eb;padding:.2rem .6rem;text-align:right}
th{background:#f9fafb}td:first-child,th:first-child{text-align:left;font-family:ui-monospace,monospace}
.meta{color:#6b7280;font-size:.85rem}
.note{color:#92400e;background:#fffbeb;border:1px solid #fde68a;padding:.3rem .6rem;border-radius:4px;margin:.2rem 0;font-size:.85rem}
svg{display:block;margin:.5rem 0}
svg .lbl{font:9px ui-monospace,monospace;fill:#6b7280}
svg .bar{font:10px ui-monospace,monospace;fill:#fff}
.legend{color:#6b7280;font-size:.85rem}
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Generated}}<p class="meta">generated {{.Generated}}</p>{{end}}
{{range .Inputs}}<p class="meta">{{.}}</p>
{{end}}{{if .Schemas}}<p class="meta">schemas: {{range $i, $s := .Schemas}}{{if $i}}, {{end}}{{$s}}{{end}}</p>{{end}}
{{range .Notes}}<p class="note">{{.}}</p>
{{end}}
{{if .Heatmap}}<h2>Link utilization</h2>
{{.Heatmap}}{{end}}
{{if .QueueHeatmap}}<h2>Queue depth over time</h2>
{{.QueueHeatmap}}
{{end}}{{if .HotLinks}}<table>
<tr><th>channel</th><th>max queue</th><th>busy %</th></tr>
{{range .HotLinks}}<tr><td>{{.Channel}}</td><td>{{.MaxQueue}}</td><td>{{.BusyPct}}</td></tr>
{{end}}</table>
{{end}}{{if .ShardRows}}<h2>Shard balance</h2>
{{if .ShardImbalance}}<p class="meta">events imbalance (max/mean): {{.ShardImbalance}}</p>
{{end}}<table>
<tr><th>shard</th><th>events</th><th>max pending</th><th>mailbox peak</th><th>busy ms</th><th>stall ms</th><th>cal rebases</th><th>cal overflow peak</th><th>cal slots peak</th></tr>
{{range .ShardRows}}<tr><td>{{.Shard}}</td><td>{{.Events}}</td><td>{{.MaxPending}}</td><td>{{.MailboxPeak}}</td><td>{{.BusyMS}}</td><td>{{.StallMS}}</td><td>{{.CalRebases}}</td><td>{{.CalOverflowPeak}}</td><td>{{.CalSlotsPeak}}</td></tr>
{{end}}</table>
{{end}}{{if .Timeline}}<h2>Stage timeline</h2>
{{.Timeline}}{{end}}
{{if .Sparks}}<h2>Time series</h2>
{{range .Sparks}}<h3>{{.Name}}</h3>
<p class="legend">{{.Legend}}</p>
{{.SVG}}
{{end}}{{end}}
{{range .LoadSects}}<h2>{{.Title}}</h2>
{{.Curve}}
{{if .Levels}}<table>
<tr><th>level</th><th>req/s</th><th>routes/s</th><th>sent</th><th>errors</th><th>p50 &#181;s</th><th>p95 &#181;s</th><th>p99 &#181;s</th><th>server p99 &#181;s</th></tr>
{{range .Levels}}<tr><td>{{.Level}}</td><td>{{.RPS}}</td><td>{{.Routes}}</td><td>{{.Sent}}</td><td>{{.Errors}}</td><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td><td>{{.ServerP99}}</td></tr>
{{end}}</table>
{{end}}{{end}}{{if .BakeoffLevels}}<h2>Engine bake-off</h2>
{{if .BakeoffHead}}<p class="meta">{{.BakeoffHead}}</p>
{{end}}{{.BakeoffCurve}}
{{range .BakeoffLevels}}<h3>{{.Level}} ({{.FailedLinks}} failed link(s))</h3>
<table>
<tr><th>engine</th><th>routable %</th><th>unroutable hosts</th><th>broken pairs</th><th>max HSD</th><th>avg max HSD</th><th>contention-free</th><th>reroute ms</th><th>max queue</th><th>error</th></tr>
{{range .Rows}}<tr><td>{{.Engine}}</td><td>{{.Routability}}</td><td>{{.Unroutable}}</td><td>{{.BrokenPairs}}</td><td>{{.MaxHSD}}</td><td>{{.AvgMaxHSD}}</td><td>{{.ContentionFree}}</td><td>{{.RerouteMS}}</td><td>{{.MaxQueue}}</td><td>{{.Err}}</td></tr>
{{end}}</table>
{{end}}{{end}}{{if .EventStrip}}<h2>Fabric events</h2>
{{.EventStrip}}
{{end}}{{if .Events}}<table>
<tr><th>seq</th><th>time</th><th>kind</th><th>epoch</th><th>&#181;s</th><th>outcome</th><th>detail</th></tr>
{{range .Events}}<tr><td>{{.Seq}}</td><td>{{.Offset}}</td><td>{{.Kind}}</td><td>{{.Epoch}}</td><td>{{.Duration}}</td><td>{{.Outcome}}</td><td>{{.Detail}}</td></tr>
{{end}}</table>
{{end}}{{if .Hists}}<h2>Latency and distribution quantiles</h2>
<table>
<tr><th>histogram</th><th>count</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th></tr>
{{range .Hists}}<tr><td>{{.Name}}</td><td>{{.Count}}</td><td>{{.Mean}}</td><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td></tr>
{{end}}</table>{{end}}
{{if .Counters}}<h2>Counters</h2>
<table>
<tr><th>counter</th><th>value</th></tr>
{{range .Counters}}<tr><td>{{.Name}}</td><td>{{.Value}}</td></tr>
{{end}}</table>{{end}}
{{if .Gauges}}<h2>Gauges</h2>
<table>
<tr><th>gauge</th><th>value</th></tr>
{{range .Gauges}}<tr><td>{{.Name}}</td><td>{{.Value}}</td></tr>
{{end}}</table>{{end}}
</body>
</html>
`))
