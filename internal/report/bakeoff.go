package report

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"strings"
)

// BakeoffSchema is the stamp of cmd/ftbakeoff's verdict. Like LoadDoc
// and EventsDoc, the report package keeps its own mirror of the wire
// shape — it consumes the JSON file, never the producing package.
const BakeoffSchema = "fattree-bakeoff/v1"

// BakeoffDoc mirrors the fattree-bakeoff/v1 verdict: one Level per
// fault-storm rung, one BakeoffResult per engine per rung.
type BakeoffDoc struct {
	Schema   string          `json:"schema"`
	Topology string          `json:"topology"`
	Hosts    int             `json:"hosts"`
	Seed     int64           `json:"seed"`
	Engines  []BakeoffEngine `json:"engines"`
	Levels   []BakeoffLevel  `json:"levels"`
}

// BakeoffEngine mirrors the registry's engine.Info.
type BakeoffEngine struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	LFT         bool   `json:"lft"`
	FaultAware  bool   `json:"fault_aware"`
}

// BakeoffLevel is one rung of the fault storm.
type BakeoffLevel struct {
	Name        string          `json:"name"`
	FailedLinks []int           `json:"failed_links"`
	Engines     []BakeoffResult `json:"engines"`
}

// BakeoffResult scores one engine at one fault level; Err set means the
// engine failed outright and every metric is zero.
type BakeoffResult struct {
	Engine         string  `json:"engine"`
	Err            string  `json:"err,omitempty"`
	RoutabilityPct float64 `json:"routability_pct"`
	Unroutable     int     `json:"unroutable"`
	BrokenPairs    int     `json:"broken_pairs"`
	MaxHSD         int     `json:"max_hsd"`
	AvgMaxHSD      float64 `json:"avg_max_hsd"`
	ContentionFree bool    `json:"contention_free"`
	RerouteUS      int64   `json:"reroute_us"`
	MaxQueueDepth  int64   `json:"max_queue_depth"`
}

// ParseBakeoff reads a fattree-bakeoff/v1 verdict (ftbakeoff -o). The
// schema stamp is checked so a report never silently renders the wrong
// document kind.
func ParseBakeoff(r io.Reader) (*BakeoffDoc, error) {
	var doc BakeoffDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("bakeoff: %w", err)
	}
	if doc.Schema != BakeoffSchema {
		return nil, fmt.Errorf("bakeoff: schema %q, want %s", doc.Schema, BakeoffSchema)
	}
	return &doc, nil
}

// bakeoffLevelView is one fault-storm rung: its engine rows render as
// one comparison table under the rung's heading.
type bakeoffLevelView struct {
	Level       string
	FailedLinks string
	Rows        []bakeoffRowView
}

type bakeoffRowView struct {
	Engine, Routability, Unroutable, BrokenPairs string
	MaxHSD, AvgMaxHSD, ContentionFree            string
	RerouteMS, MaxQueue, Err                     string
}

// bakeoffEngineColors cycles per-engine curve colors (categorical,
// color-blind-safe-ish palette).
var bakeoffEngineColors = []string{
	"#1e40af", "#b45309", "#15803d", "#b91c1c", "#7c3aed", "#0e7490", "#be185d", "#4d7c0f",
}

// buildBakeoffSection folds a bake-off verdict into the report: a
// summary line, per-level comparison tables and the degradation curve
// (routability per engine across the storm).
func buildBakeoffSection(doc *BakeoffDoc, notes *[]string) (string, template.HTML, []bakeoffLevelView) {
	if len(doc.Levels) == 0 {
		*notes = append(*notes, "bake-off has no fault levels: section omitted")
		return "", "", nil
	}
	head := fmt.Sprintf("%s, %d hosts, seed %d, %d engine(s) x %d fault level(s)",
		doc.Topology, doc.Hosts, doc.Seed, len(doc.Engines), len(doc.Levels))
	var levels []bakeoffLevelView
	for _, l := range doc.Levels {
		lv := bakeoffLevelView{Level: l.Name, FailedLinks: fmt.Sprintf("%d", len(l.FailedLinks))}
		for _, e := range l.Engines {
			row := bakeoffRowView{Engine: e.Engine, Err: e.Err}
			if e.Err == "" {
				row.Routability = f(e.RoutabilityPct)
				row.Unroutable = fmt.Sprintf("%d", e.Unroutable)
				row.BrokenPairs = fmt.Sprintf("%d", e.BrokenPairs)
				row.MaxHSD = fmt.Sprintf("%d", e.MaxHSD)
				row.AvgMaxHSD = f(e.AvgMaxHSD)
				row.ContentionFree = fmt.Sprintf("%v", e.ContentionFree)
				row.RerouteMS = f(float64(e.RerouteUS) / 1e3)
				if e.MaxQueueDepth >= 0 {
					row.MaxQueue = fmt.Sprintf("%d", e.MaxQueueDepth)
				}
			}
			lv.Rows = append(lv.Rows, row)
		}
		levels = append(levels, lv)
	}
	return head, buildBakeoffCurve(doc), levels
}

// buildBakeoffCurve plots each engine's routability percentage across
// the storm rungs: flat at 100 is full resilience, a cliff is where an
// engine (or the fabric) gives out. Engines that errored at a rung get
// no point there, so their line visibly breaks.
func buildBakeoffCurve(doc *BakeoffDoc) template.HTML {
	const width, height, left, bottom, top = 640.0, 220.0, 44.0, 34.0, 10.0
	nLevels := len(doc.Levels)
	px := func(i int) float64 {
		if nLevels == 1 {
			return left
		}
		return left + float64(i)/float64(nLevels-1)*(width-left-8)
	}
	py := func(pct float64) float64 { return top + (height-bottom-top)*(1-pct/100) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label="routability degradation curves">`,
		f(width), f(height), f(width), f(height))
	// Gridlines at 100/75/50/25/0 percent.
	for _, pct := range []float64{100, 75, 50, 25, 0} {
		y := py(pct)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#e5e7eb"/>`,
			f(left), f(y), f(width-8), f(y))
		fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="end">%s%%</text>`,
			f(left-4), f(y+3), f(pct))
	}
	for ei, info := range doc.Engines {
		color := bakeoffEngineColors[ei%len(bakeoffEngineColors)]
		var pts []string
		for li, l := range doc.Levels {
			for _, e := range l.Engines {
				if e.Engine != info.Name || e.Err != "" {
					continue
				}
				pts = append(pts, f(px(li))+","+f(py(e.RoutabilityPct)))
				fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"><title>%s @ %s: %.2f%% routable</title></circle>`,
					f(px(li)), f(py(e.RoutabilityPct)), color,
					template.HTMLEscapeString(info.Name), template.HTMLEscapeString(l.Name), e.RoutabilityPct)
			}
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
				color, strings.Join(pts, " "))
		}
		// Legend swatches along the top edge.
		lx := left + float64(ei)*140
		fmt.Fprintf(&b, `<rect x="%s" y="0" width="10" height="8" fill="%s"/>`, f(lx), color)
		fmt.Fprintf(&b, `<text x="%s" y="8" class="lbl">%s</text>`, f(lx+13), template.HTMLEscapeString(info.Name))
	}
	// Level labels on the x axis.
	for li, l := range doc.Levels {
		anchor := "middle"
		if li == 0 {
			anchor = "start"
		} else if li == nLevels-1 {
			anchor = "end"
		}
		fmt.Fprintf(&b, `<text x="%s" y="%s" class="lbl" text-anchor="%s">%s</text>`,
			f(px(li)), f(height-bottom+14), anchor, template.HTMLEscapeString(l.Name))
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}
