package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadSchema stamps ftload sweep documents.
const LoadSchema = "fattree-load/v1"

// LoadLevel is one rung of a load sweep: a fixed concurrency (closed
// loop) or offered rate (open loop) held for DurationS seconds, with
// client-side latency quantiles and the server-side histogram estimate
// over the same window.
type LoadLevel struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency,omitempty"`
	OfferedRPS  float64 `json:"offered_rps,omitempty"`
	AchievedRPS float64 `json:"achieved_rps"`
	Sent        int64   `json:"sent"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed,omitempty"`     // open loop: ticks dropped at the outstanding cap
	ShedRPS     float64 `json:"shed_rps,omitempty"` // shed ticks per second of the measurement window
	DurationS   float64 `json:"duration_s"`
	// RoutesRPS is resolved routes per second: AchievedRPS times the
	// request batch size. For the JSON protocol (one route per request)
	// it equals AchievedRPS and may be omitted.
	RoutesRPS float64 `json:"routes_rps,omitempty"`
	// EpochRegressions counts binary responses whose epoch rolled back
	// relative to an earlier response in the same sweep — nonzero means
	// some replica served stale tables.
	EpochRegressions int64 `json:"epoch_regressions,omitempty"`

	// Client-side quantiles over exact samples, microseconds.
	P50US float64 `json:"p50_us"`
	P95US float64 `json:"p95_us"`
	P99US float64 `json:"p99_us"`
	MaxUS float64 `json:"max_us"`

	// BucketP99US re-estimates the client p99 through the server's
	// histogram bounds; ServerP99US is the server histogram delta over
	// the level's window. Comparing these two is like-for-like — both
	// carry the same bucketing error.
	BucketP99US float64 `json:"bucket_p99_us,omitempty"`
	ServerP99US float64 `json:"server_p99_us,omitempty"`
}

// LoadDoc is a full ftload sweep.
type LoadDoc struct {
	Schema   string `json:"schema"`
	Target   string `json:"target"`
	Endpoint string `json:"endpoint"`
	// Protocol records what the sweep spoke: "json" (per-pair HTTP) or
	// "binary" (batched RouteSet frames). Empty means json — documents
	// predate the field.
	Protocol string `json:"protocol,omitempty"`
	// Batch is the pairs-per-request batch size of a binary sweep.
	Batch int `json:"batch,omitempty"`
	Hosts int `json:"hosts,omitempty"`
	// RTTFloorUS is the median /healthz round trip; RTTFloorP99US the
	// bucketized p99 of the same probes — the transport tail a client
	// p99 carries that the server handler histogram does not.
	RTTFloorUS    float64     `json:"rtt_floor_us,omitempty"`
	RTTFloorP99US float64     `json:"rtt_floor_p99_us,omitempty"`
	Levels        []LoadLevel `json:"levels"`
}

// ParseLoad reads a fattree-load/v1 document.
func ParseLoad(r io.Reader) (*LoadDoc, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("report: reading load doc: %w", err)
	}
	var doc LoadDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("report: load doc is not JSON: %w", err)
	}
	if doc.Schema != LoadSchema {
		return nil, fmt.Errorf("report: load doc schema %q, want %q", doc.Schema, LoadSchema)
	}
	return &doc, nil
}

// FabricEvent mirrors the fmgr journal record on the wire
// (fattree-events/v1); report keeps its own copy so rendering does not
// pull in the daemon.
type FabricEvent struct {
	Seq        uint64 `json:"seq"`
	TimeUnixNS int64  `json:"time_unix_ns"`
	Kind       string `json:"kind"`
	Epoch      uint64 `json:"epoch"`
	DurationUS int64  `json:"duration_us,omitempty"`
	Outcome    string `json:"outcome,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// EventsSchema stamps fabric event journal documents.
const EventsSchema = "fattree-events/v1"

// EventsDoc is a GET /v1/events response.
type EventsDoc struct {
	Schema  string        `json:"schema"`
	Epoch   uint64        `json:"epoch"`
	Dropped uint64        `json:"dropped"`
	Events  []FabricEvent `json:"events"`
}

// ParseEvents reads a fattree-events/v1 document.
func ParseEvents(r io.Reader) (*EventsDoc, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("report: reading events doc: %w", err)
	}
	var doc EventsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("report: events doc is not JSON: %w", err)
	}
	if doc.Schema != EventsSchema {
		return nil, fmt.Errorf("report: events doc schema %q, want %q", doc.Schema, EventsSchema)
	}
	return &doc, nil
}
