// Package viz renders fat-tree topologies and per-link load annotations:
// Graphviz DOT output for offline drawing, and a compact ASCII rendering
// of small trees in the style of the paper's Figure 1 (links labelled
// with the destinations routed through them, hot links highlighted).
package viz

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"fattree/internal/route"
	"fattree/internal/topo"
)

// DOTOptions tunes the Graphviz output.
type DOTOptions struct {
	// RankPerLevel groups nodes of each tree level on one rank.
	RankPerLevel bool
	// LinkLoads annotates links with flow counts (nil = no labels);
	// indexed like hsd.Analyzer counters: per link, up and down.
	UpLoads, DownLoads []int32
	// HotThreshold colors links carrying at least this many flows
	// (0 = disabled).
	HotThreshold int
}

// WriteDOT emits the topology as a Graphviz graph.
func WriteDOT(w io.Writer, t *topo.Topology, o DOTOptions) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph fattree {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n")
	for l := 0; l <= t.Spec.H; l++ {
		if o.RankPerLevel {
			fmt.Fprintf(bw, "  { rank=same;")
			for _, id := range t.ByLevel[l] {
				fmt.Fprintf(bw, " %s;", dotName(t.Node(id)))
			}
			fmt.Fprintf(bw, " }\n")
		}
		for _, id := range t.ByLevel[l] {
			n := t.Node(id)
			shape := "box"
			if n.Kind == topo.Host {
				shape = "ellipse"
			}
			fmt.Fprintf(bw, "  %s [label=\"%s\", shape=%s];\n", dotName(n), dotLabel(n), shape)
		}
	}
	for i := range t.Links {
		lk := &t.Links[i]
		lo := t.Node(t.Ports[lk.Lower].Node)
		up := t.Node(t.Ports[lk.Upper].Node)
		attrs := []string{}
		if o.UpLoads != nil && o.DownLoads != nil {
			attrs = append(attrs, fmt.Sprintf("label=\"%d/%d\"", o.UpLoads[i], o.DownLoads[i]))
			if o.HotThreshold > 0 &&
				(int(o.UpLoads[i]) >= o.HotThreshold || int(o.DownLoads[i]) >= o.HotThreshold) {
				attrs = append(attrs, "color=red", "penwidth=2")
			}
		}
		a := ""
		if len(attrs) > 0 {
			a = " [" + strings.Join(attrs, ", ") + "]"
		}
		fmt.Fprintf(bw, "  %s -- %s%s;\n", dotName(lo), dotName(up), a)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func dotName(n *topo.Node) string {
	if n.Kind == topo.Host {
		return fmt.Sprintf("h%d", n.Index)
	}
	return fmt.Sprintf("s%d_%d", n.Level, n.Index)
}

func dotLabel(n *topo.Node) string {
	if n.Kind == topo.Host {
		return fmt.Sprintf("H%d", n.Index)
	}
	return fmt.Sprintf("L%d:%d", n.Level, n.Index)
}

// Figure1Style renders a small 2-level tree the way the paper's Figure 1
// does: one line per leaf switch listing, for every up-going port, the
// destinations routed through it for the given traffic stage, with
// multi-flow ports flagged as HOT.
func Figure1Style(w io.Writer, lft *route.LFT, pairs [][2]int) error {
	t := lft.T
	if t.Spec.H != 2 {
		return fmt.Errorf("viz: figure-1 rendering wants a 2-level tree, got %d levels", t.Spec.H)
	}
	// For every flow, find the leaf up-port it uses and record the
	// destination.
	type key struct {
		leaf, port int
	}
	flows := make(map[key][]int)
	for _, p := range pairs {
		src, dst := p[0], p[1]
		if src == dst {
			continue
		}
		err := lft.Walk(src, dst, func(l topo.LinkID, up bool) {
			if !up {
				return
			}
			lk := &t.Links[l]
			lo := t.Node(t.Ports[lk.Lower].Node)
			if lo.Kind != topo.Switch || lo.Level != 1 {
				return
			}
			flows[key{lo.Index, t.Ports[lk.Lower].Num}] = append(
				flows[key{lo.Index, t.Ports[lk.Lower].Num}], dst)
		})
		if err != nil {
			return err
		}
	}
	bw := bufio.NewWriter(w)
	hot := 0
	for leaf := 0; leaf < len(t.ByLevel[1]); leaf++ {
		fmt.Fprintf(bw, "leaf %d:", leaf)
		nUp := t.Spec.UpPorts(1)
		for q := 0; q < nUp; q++ {
			ds := flows[key{leaf, q}]
			sort.Ints(ds)
			cell := "-"
			if len(ds) > 0 {
				parts := make([]string, len(ds))
				for i, d := range ds {
					parts[i] = fmt.Sprint(d)
				}
				cell = strings.Join(parts, ",")
			}
			if len(ds) > 1 {
				cell += " HOT"
				hot++
			}
			fmt.Fprintf(bw, "  u%d[%s]", q, cell)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "hot up-ports: %d\n", hot)
	return bw.Flush()
}
