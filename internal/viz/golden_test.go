package viz

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (run with -update to refresh)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenDOT(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{2, 2}, []int{1, 2}, []int{1, 1}))
	var buf bytes.Buffer
	if err := WriteDOT(&buf, tp, DOTOptions{RankPerLevel: true}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4_small.dot", buf.Bytes())
}

func TestGoldenFigure1Listing(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	lft := route.DModK(tp)
	o := order.Topology(16, nil)
	var pairs [][2]int
	for r := 0; r < 16; r++ {
		pairs = append(pairs, [2]int{o.HostOf[r], o.HostOf[(r+4)%16]})
	}
	var buf bytes.Buffer
	if err := Figure1Style(&buf, lft, pairs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure1_ordered.txt", buf.Bytes())
}
