package viz

import (
	"bytes"
	"strings"
	"testing"

	"fattree/internal/hsd"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func fig1Topo() *topo.Topology {
	return topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
}

func TestWriteDOTBasic(t *testing.T) {
	tp := fig1Topo()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, tp, DOTOptions{RankPerLevel: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph fattree {", "rank=same", "h0 [label=\"H0\"", "s1_0 [label=\"L1:0\"",
		"s2_1", "h15", "--",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// 16 host links + 16 fabric links.
	if got := strings.Count(out, " -- "); got != 32 {
		t.Errorf("DOT has %d edges, want 32", got)
	}
}

func TestWriteDOTWithLoads(t *testing.T) {
	tp := fig1Topo()
	lft := route.DModK(tp)
	a := hsd.NewAnalyzer(lft)
	// A contended stage: two sources aiming at same-slot destinations.
	if _, err := a.Stage([][2]int{{0, 4}, {1, 8}}); err != nil {
		t.Fatal(err)
	}
	up, down := a.LinkLoads(nil, nil)
	var buf bytes.Buffer
	err := WriteDOT(&buf, tp, DOTOptions{UpLoads: up, DownLoads: down, HotThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "color=red") {
		t.Error("hot link not highlighted")
	}
	if !strings.Contains(out, "label=\"2/0\"") {
		t.Error("load label 2/0 missing")
	}
}

func TestFigure1StyleOrderedVsRandom(t *testing.T) {
	tp := fig1Topo()
	lft := route.DModK(tp)
	mk := func(o *order.Ordering) [][2]int {
		var pairs [][2]int
		for r := 0; r < 16; r++ {
			pairs = append(pairs, [2]int{o.HostOf[r], o.HostOf[(r+4)%16]})
		}
		return pairs
	}
	var good bytes.Buffer
	if err := Figure1Style(&good, lft, mk(order.Topology(16, nil))); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(good.String(), "hot up-ports: 0") {
		t.Errorf("ordered rendering should show zero hot ports:\n%s", good.String())
	}
	// The paper's random example shows 3 hot links; find a seed that
	// reproduces contention.
	var bad bytes.Buffer
	if err := Figure1Style(&bad, lft, mk(order.Random(16, nil, 4))); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(bad.String(), "hot up-ports: 0") {
		t.Errorf("random(4) rendering should show hot ports:\n%s", bad.String())
	}
	if !strings.Contains(bad.String(), "HOT") {
		t.Error("hot cells not flagged")
	}
}

func TestFigure1StyleWants2Level(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(3, []int{2, 2, 2}, []int{1, 2, 1}, []int{1, 1, 2}))
	lft := route.DModK(tp)
	var buf bytes.Buffer
	if err := Figure1Style(&buf, lft, nil); err == nil {
		t.Error("3-level tree accepted")
	}
}

func TestFigure1StyleSkipsSelfFlows(t *testing.T) {
	tp := fig1Topo()
	lft := route.DModK(tp)
	var buf bytes.Buffer
	if err := Figure1Style(&buf, lft, [][2]int{{3, 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hot up-ports: 0") {
		t.Error("self flow counted")
	}
}
