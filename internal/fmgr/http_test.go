package fmgr

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fattree/internal/obs"
)

func get(tb testing.TB, h http.Handler, url string) (*httptest.ResponseRecorder, map[string]interface{}) {
	tb.Helper()
	return do(tb, h, httptest.NewRequest("GET", url, nil))
}

func do(tb testing.TB, h http.Handler, req *http.Request) (*httptest.ResponseRecorder, map[string]interface{}) {
	tb.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]interface{}
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			tb.Fatalf("non-JSON body (%d): %q", rec.Code, rec.Body.String())
		}
	}
	return rec, body
}

func TestHandlerRoute(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/route?src=0&dst=9", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var doc RouteDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != RouteSchema || doc.Epoch != 1 || doc.Src != 0 || doc.Dst != 9 {
		t.Fatalf("bad doc header: %+v", doc)
	}
	want, err := m.Current().LFT.Trace(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Hops) != len(want) {
		t.Fatalf("%d hops, want %d", len(doc.Hops), len(want))
	}
	for i, hop := range doc.Hops {
		if hop.Link != int(want[i].Link) || hop.Up != want[i].Up {
			t.Fatalf("hop %d: %+v vs %+v", i, hop, want[i])
		}
		if hop.From == "" || hop.To == "" {
			t.Fatalf("hop %d missing node labels: %+v", i, hop)
		}
	}

	// src == dst: empty path, still OK.
	rec, body := get(t, h, "/v1/route?src=3&dst=3")
	if rec.Code != http.StatusOK || len(body["hops"].([]interface{})) != 0 {
		t.Fatalf("self route: %d %v", rec.Code, body)
	}
	// Parameter validation.
	for _, u := range []string{"/v1/route", "/v1/route?src=0", "/v1/route?src=0&dst=bad", "/v1/route?src=0&dst=4096"} {
		if rec, _ := get(t, h, u); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", u, rec.Code)
		}
	}
}

func TestHandlerOrderHSDFabricHealthMetrics(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()

	rec, body := get(t, h, "/v1/order")
	if rec.Code != 200 || body["schema"] != OrderSchema || body["label"] != "topology" {
		t.Fatalf("order: %d %v", rec.Code, body)
	}
	if n := len(body["host_of"].([]interface{})); n != m.t.NumHosts() {
		t.Fatalf("order lists %d hosts, want %d", n, m.t.NumHosts())
	}

	rec, body = get(t, h, "/v1/hsd")
	if rec.Code != 200 || body["contention_free"] != true || body["max_hsd"].(float64) != 1 {
		t.Fatalf("hsd: %d %v", rec.Code, body)
	}

	rec, body = get(t, h, "/v1/fabric")
	if rec.Code != 200 || body["schema"] != "fattree-fabric/v1" {
		t.Fatalf("fabric: %d %v", rec.Code, body)
	}
	if body["hosts"].(float64) != 32 {
		t.Fatalf("fabric hosts: %v", body["hosts"])
	}

	rec, body = get(t, h, "/healthz")
	if rec.Code != 200 || body["ok"] != true {
		t.Fatalf("healthz: %d %v", rec.Code, body)
	}

	rec, _ = get(t, h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Gauges["fmgr_epoch"]; !ok {
		t.Fatalf("metrics snapshot missing fmgr_epoch: %v", snap.Gauges)
	}
}

func TestHandlerFaultsAndRouteDegradation(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()

	host0 := m.t.Host(0)
	uplink := int(m.t.Ports[host0.Up[0]].Link)
	req := httptest.NewRequest("POST", "/v1/faults",
		strings.NewReader(fmt.Sprintf(`{"fail":[%d]}`, uplink)))
	rec, body := do(t, h, req)
	if rec.Code != http.StatusAccepted || body["accepted"].(float64) != 1 {
		t.Fatalf("faults: %d %v", rec.Code, body)
	}
	waitEpoch(t, m, 2)

	if rec, _ := get(t, h, "/v1/route?src=0&dst=9"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("route to unroutable host: %d, want 503", rec.Code)
	}
	if rec, _ := get(t, h, "/v1/route?src=1&dst=9"); rec.Code != http.StatusOK {
		t.Fatalf("unaffected route: %d, want 200", rec.Code)
	}

	// Bad requests.
	req = httptest.NewRequest("POST", "/v1/faults", strings.NewReader("not json"))
	if rec, _ := do(t, h, req); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad faults JSON: %d", rec.Code)
	}
	req = httptest.NewRequest("POST", "/v1/faults", strings.NewReader(`{"fail":[99999]}`))
	if rec, _ := do(t, h, req); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range fault link: %d", rec.Code)
	}
}

func TestHandlerJobs(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()
	g := m.alloc.Granule()

	req := httptest.NewRequest("POST", "/v1/jobs",
		strings.NewReader(fmt.Sprintf(`{"size":%d,"aligned":true}`, 2*g)))
	rec, body := do(t, h, req)
	if rec.Code != 200 || body["contention_free"] != true || body["isolated"] != true {
		t.Fatalf("job alloc: %d %v", rec.Code, body)
	}
	id := int(body["id"].(float64))

	waitEpoch(t, m, 2)
	rec, body = get(t, h, "/v1/jobs")
	if rec.Code != 200 || len(body["jobs"].([]interface{})) != 1 {
		t.Fatalf("jobs list: %d %v", rec.Code, body)
	}

	req = httptest.NewRequest("DELETE", fmt.Sprintf("/v1/jobs?id=%d", id), nil)
	if rec, _ := do(t, h, req); rec.Code != 200 {
		t.Fatalf("job free: %d", rec.Code)
	}
	req = httptest.NewRequest("DELETE", fmt.Sprintf("/v1/jobs?id=%d", id), nil)
	if rec, _ := do(t, h, req); rec.Code != http.StatusNotFound {
		t.Fatalf("double free: %d, want 404", rec.Code)
	}
	// Unsatisfiable request: 409, not 500.
	req = httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"size":100000}`))
	if rec, _ := do(t, h, req); rec.Code != http.StatusConflict {
		t.Fatalf("oversized job: %d, want 409", rec.Code)
	}
}

func TestHandlerMaxInflightGate(t *testing.T) {
	m := newManager(t, "rlft2:4,8", func(c *Config) {
		c.MaxInflight = 2
	})
	m.Start()
	h := m.Handler()

	// Fill the gate so the next /v1 request is over the cap.
	m.gate <- struct{}{}
	m.gate <- struct{}{}
	rec, body := get(t, h, "/v1/route?src=0&dst=9")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%v)", rec.Code, body)
	}
	if got := m.cfg.Metrics.Counter("fmgr_http_throttled_total").Value(); got != 1 {
		t.Fatalf("fmgr_http_throttled_total = %d, want 1", got)
	}
	// healthz bypasses the gate.
	if rec, _ := get(t, h, "/healthz"); rec.Code != 200 {
		t.Fatalf("healthz gated: %d", rec.Code)
	}
	<-m.gate
	<-m.gate
	if rec, _ := get(t, h, "/v1/route?src=0&dst=9"); rec.Code != 200 {
		t.Fatalf("route after gate drained: %d", rec.Code)
	}
}

func TestHandlerRequestTimeout(t *testing.T) {
	m := newManager(t, "rlft2:4,8", func(c *Config) {
		c.RequestTimeout = time.Nanosecond
	})
	m.Start()
	rec, _ := get(t, m.Handler(), "/v1/route?src=0&dst=9")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 from the timeout handler", rec.Code)
	}
}
