package fmgr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fattree/internal/obs"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func buildTopo(tb testing.TB, spec string) *topo.Topology {
	tb.Helper()
	g, err := topo.ParseSpec(spec)
	if err != nil {
		tb.Fatal(err)
	}
	t, err := topo.Build(g)
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func newManager(tb testing.TB, spec string, mutate func(*Config)) *Manager {
	tb.Helper()
	cfg := Config{
		Topo:     buildTopo(tb, spec),
		Debounce: 5 * time.Millisecond,
		Metrics:  obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(m.Close)
	return m
}

// waitEpoch polls until the current snapshot reaches at least the given
// epoch.
func waitEpoch(tb testing.TB, m *Manager, min uint64) *FabricState {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := m.Current()
		if st.Epoch >= min {
			return st
		}
		if time.Now().After(deadline) {
			tb.Fatalf("timed out waiting for epoch %d (at %d)", min, st.Epoch)
		}
		time.Sleep(time.Millisecond)
	}
}

// fabricLink returns a switch-to-switch link (level >= 2), so failing it
// never makes a host unroutable.
func fabricLink(tb testing.TB, t *topo.Topology, skip int) topo.LinkID {
	tb.Helper()
	for i := range t.Links {
		if t.Links[i].Level >= 2 {
			if skip == 0 {
				return topo.LinkID(i)
			}
			skip--
		}
	}
	tb.Fatal("no fabric link found")
	return topo.None
}

func sameTrace(tb testing.TB, a, b *route.LFT, src, dst int) {
	tb.Helper()
	ha, err := a.Trace(src, dst)
	if err != nil {
		tb.Fatalf("trace %d->%d on %s: %v", src, dst, a.Name, err)
	}
	hb, err := b.Trace(src, dst)
	if err != nil {
		tb.Fatalf("trace %d->%d on %s: %v", src, dst, b.Name, err)
	}
	if len(ha) != len(hb) {
		tb.Fatalf("trace %d->%d: %d hops vs %d", src, dst, len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			tb.Fatalf("trace %d->%d hop %d: %+v vs %+v", src, dst, i, ha[i], hb[i])
		}
	}
}

func TestInitialSnapshotMatchesDModK(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	st := m.Current()
	if st.Epoch != 1 {
		t.Fatalf("initial epoch = %d, want 1", st.Epoch)
	}
	if !st.HSD.ContentionFree() {
		t.Fatalf("fault-free Shift summary not contention free: max HSD %d", st.HSD.MaxHSD())
	}
	if st.Paths.NumBroken() != 0 || len(st.Unroutable) != 0 || len(st.FailedLinks) != 0 {
		t.Fatalf("fault-free snapshot reports damage: %d broken, %v unroutable, %v failed",
			st.Paths.NumBroken(), st.Unroutable, st.FailedLinks)
	}
	ref := route.DModK(st.Topo)
	n := st.Topo.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				sameTrace(t, st.LFT, ref, src, dst)
			}
		}
	}
}

func TestFaultRerouteAndRevive(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	init := m.Current()
	m.Start()
	lnk := fabricLink(t, init.Topo, 0)

	if _, err := m.InjectFaults([]topo.LinkID{lnk}, nil, 0); err != nil {
		t.Fatal(err)
	}
	st := waitEpoch(t, m, 2)
	if len(st.FailedLinks) != 1 || st.FailedLinks[0] != lnk {
		t.Fatalf("failed links = %v, want [%d]", st.FailedLinks, lnk)
	}
	if len(st.Unroutable) != 0 {
		t.Fatalf("fabric-link fault made hosts unroutable: %v", st.Unroutable)
	}
	// Every pair must still be served (fabric links have parallel
	// copies on an RLFT, so one dead link cannot partition it).
	if st.Paths.NumBroken() != 0 {
		t.Fatalf("%d broken pairs after a single fabric-link fault", st.Paths.NumBroken())
	}

	if _, err := m.InjectFaults(nil, []topo.LinkID{lnk}, 0); err != nil {
		t.Fatal(err)
	}
	st = waitEpoch(t, m, 3)
	if len(st.FailedLinks) != 0 {
		t.Fatalf("failed links after revive = %v, want none", st.FailedLinks)
	}
	// Recovered tables must be bit-identical with the original routing.
	n := st.Topo.NumHosts()
	for src := 0; src < n; src += 3 {
		for dst := 0; dst < n; dst += 5 {
			if src != dst {
				sameTrace(t, st.LFT, init.LFT, src, dst)
			}
		}
	}
}

func TestDebounceCoalescesBursts(t *testing.T) {
	var swaps atomic.Int64
	m := newManager(t, "rlft2:4,8", func(c *Config) {
		c.Debounce = 40 * time.Millisecond
	})
	m.OnSwap = func(*FabricState) { swaps.Add(1) }
	m.Start()

	var fail []topo.LinkID
	for i := 0; i < 6; i++ {
		fail = append(fail, fabricLink(t, m.t, i))
	}
	// Six fault events land well inside one debounce window.
	if _, err := m.InjectFaults(fail, nil, 0); err != nil {
		t.Fatal(err)
	}
	st := waitEpoch(t, m, 2)
	if len(st.FailedLinks) != len(fail) {
		t.Fatalf("snapshot has %d failed links, want %d", len(st.FailedLinks), len(fail))
	}
	time.Sleep(100 * time.Millisecond) // catch any spurious extra swaps
	// Initial announce + one coalesced reroute; allow one extra in case
	// a scheduling stall split the burst across two windows.
	if got := swaps.Load(); got < 2 || got > 3 {
		t.Fatalf("swaps = %d, want 2 (initial + one coalesced reroute)", got)
	}
}

func TestRetryBackoffOnValidationFailure(t *testing.T) {
	m := newManager(t, "rlft2:4,8", func(c *Config) {
		c.RetryBase = 5 * time.Millisecond
		c.RetryMax = 20 * time.Millisecond
	})
	var calls atomic.Int64
	inner := m.validate
	m.validate = func(st *FabricState) error {
		if calls.Add(1) <= 2 {
			return fmt.Errorf("injected validation failure")
		}
		return inner(st)
	}
	m.Start()
	if _, err := m.InjectFaults([]topo.LinkID{fabricLink(t, m.t, 0)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	st := waitEpoch(t, m, 2)
	if len(st.FailedLinks) != 1 {
		t.Fatalf("failed links = %v, want 1", st.FailedLinks)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("validate called %d times, want 3 (two failures, one success)", got)
	}
	if got := m.cfg.Metrics.Counter("fmgr_reroute_failures_total").Value(); got != 2 {
		t.Fatalf("fmgr_reroute_failures_total = %d, want 2", got)
	}
	if got := m.cfg.Metrics.Counter("fmgr_check_failures_total").Value(); got != 2 {
		t.Fatalf("fmgr_check_failures_total = %d, want 2", got)
	}
}

func TestJobsThroughEventLoop(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	g := m.alloc.Granule()

	a, err := m.AllocJob(2*g, true)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ContentionFree || !a.Isolated {
		t.Fatalf("aligned granule-multiple job not CF/isolated: %+v", a)
	}
	b, err := m.AllocJob(g-1, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.ContentionFree {
		t.Fatalf("ragged job reported contention free")
	}
	if _, err := m.AllocJob(10*m.t.NumHosts(), false); err == nil {
		t.Fatal("oversized job allocated")
	}

	// The snapshot view catches up after the debounce window.
	st := waitEpoch(t, m, 2)
	if len(st.Jobs) != 2 {
		t.Fatalf("snapshot has %d jobs, want 2", len(st.Jobs))
	}
	// Snapshot jobs are deep copies: mutating them must not reach the
	// allocator's live records.
	st.Jobs[0].Hosts[0] = -99
	if err := m.FreeJob(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeJob(a.ID); err == nil {
		t.Fatal("double free succeeded")
	}
	if err := m.FreeJob(b.ID); err != nil {
		t.Fatal(err)
	}
	if got := m.cfg.Metrics.Gauge("fmgr_jobs_active").Value(); got != 0 {
		t.Fatalf("fmgr_jobs_active = %d, want 0", got)
	}
}

func TestUnroutableHostServedAsBroken(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	host0 := m.t.Host(0)
	uplink := m.t.Ports[host0.Up[0]].Link
	if _, err := m.InjectFaults([]topo.LinkID{uplink}, nil, 0); err != nil {
		t.Fatal(err)
	}
	st := waitEpoch(t, m, 2)
	if !st.HostUnroutable(0) {
		t.Fatalf("host 0 not marked unroutable; unroutable = %v", st.Unroutable)
	}
	if !st.Paths.Broken(0, 5) || !st.Paths.Broken(5, 0) {
		t.Fatal("pairs touching the unroutable host not marked broken")
	}
	if st.HSD == nil || st.HSD.MaxHSD() < 1 {
		t.Fatalf("no usable HSD summary on the degraded fabric: %+v", st.HSD)
	}
	// Unaffected pairs keep valid paths.
	if _, err := st.Paths.PackedPath(1, 9); err != nil {
		t.Fatal(err)
	}
}

func TestClosedManagerRejectsEvents(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	m.Close()
	if _, err := m.InjectFaults([]topo.LinkID{0}, nil, 0); err == nil {
		t.Fatal("InjectFaults succeeded on a closed manager")
	}
	if _, err := m.AllocJob(4, false); err == nil {
		t.Fatal("AllocJob succeeded on a closed manager")
	}
	// Current still serves the last snapshot after close.
	if m.Current() == nil {
		t.Fatal("Current returned nil after close")
	}
}

func TestInjectFaultsValidatesLinks(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	if _, err := m.InjectFaults([]topo.LinkID{topo.LinkID(len(m.t.Links))}, nil, 0); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if _, err := m.InjectFaults(nil, nil, -1); err == nil {
		t.Fatal("negative fail_random accepted")
	}
}

// TestSnapshotImmutableUnderSwaps drives many reroute rounds while a
// reader holds an old snapshot, checking the old epoch's paths never
// change — the RCU property the HTTP layer relies on.
func TestSnapshotImmutableUnderSwaps(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	held := m.Current()
	want, err := held.LFT.Trace(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	lnk := fabricLink(t, m.t, 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			m.InjectFaults([]topo.LinkID{lnk}, nil, 0)
			m.InjectFaults(nil, []topo.LinkID{lnk}, 0)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	waitEpoch(t, m, 2)
	got, err := held.LFT.Trace(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("held snapshot changed: %d hops vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("held snapshot hop %d changed: %+v vs %+v", i, got[i], want[i])
		}
	}
}
