package fmgr

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fattree/internal/engine"
	"fattree/internal/topo"
)

// TestConfigEngine runs the daemon under a non-default engine and checks
// the snapshot and the HTTP surface both report it.
func TestConfigEngine(t *testing.T) {
	m := newManager(t, "rlft2:4,8", func(c *Config) { c.Engine = "smodk" })
	m.Start()
	st := m.Current()
	if st.Engine != "smodk" || st.Routing != "s-mod-k" {
		t.Fatalf("engine %q routing %q, want smodk / s-mod-k", st.Engine, st.Routing)
	}
	if st.LFT != nil {
		t.Fatalf("s-mod-k has no forwarding-table realization, got LFT %q", st.LFT.Name)
	}
	if st.Paths == nil || st.Paths.NumBroken() != 0 {
		t.Fatalf("healthy smodk arena: %+v", st.Paths)
	}
	h := m.Handler()
	rec, body := get(t, h, "/v1/fabric")
	if rec.Code != 200 || body["engine"] != "smodk" || body["routing"] != "s-mod-k" {
		t.Fatalf("fabric: %d engine=%v routing=%v", rec.Code, body["engine"], body["routing"])
	}
	rec, body = get(t, h, "/v1/route?src=0&dst=9")
	if rec.Code != 200 || body["engine"] != "smodk" {
		t.Fatalf("route: %d %v", rec.Code, body)
	}
	rec, body = get(t, h, "/v1/hsd")
	if rec.Code != 200 || body["engine"] != "smodk" {
		t.Fatalf("hsd: %d %v", rec.Code, body)
	}
}

// TestConfigEngineUnknown pins the self-correcting error: a bad engine
// name fails construction and the message lists the registered names.
func TestConfigEngineUnknown(t *testing.T) {
	_, err := New(Config{Topo: buildTopo(t, "rlft2:4,8"), Engine: "nope"})
	if err == nil {
		t.Fatal("New accepted an unknown engine")
	}
	for _, want := range []string{`"nope"`, "dmodk", "smodk", "fault-resilient"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
}

// TestJobEngineLifecycle allocates a job under a specific engine and
// follows it end to end: snapshot ByEngine tables, /v1/route?engine=,
// /v1/jobs, the journal, and the cleanup after the job is freed.
func TestJobEngineLifecycle(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()

	req := httptest.NewRequest("POST", "/v1/jobs",
		strings.NewReader(`{"size":4,"engine":"fault-resilient"}`))
	rec, body := do(t, h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("alloc: %d %v", rec.Code, body)
	}
	if body["engine"] != "fault-resilient" {
		t.Fatalf("alloc doc engine %v, want fault-resilient", body["engine"])
	}
	id := int(body["id"].(float64))

	st := waitEpoch(t, m, 2)
	if st.Engine != "dmodk" {
		t.Fatalf("active engine %q, want dmodk", st.Engine)
	}
	for _, name := range []string{"dmodk", "fault-resilient"} {
		if st.ByEngine[name] == nil {
			t.Fatalf("epoch %d ByEngine missing %s (have %v)", st.Epoch, name, len(st.ByEngine))
		}
	}

	// The alternate tables answer /v1/route from the same epoch.
	rec, body = get(t, h, "/v1/route?src=0&dst=9&engine=fault-resilient")
	if rec.Code != 200 || body["engine"] != "fault-resilient" {
		t.Fatalf("route via job engine: %d %v", rec.Code, body)
	}
	if rec, body = get(t, h, "/v1/route?src=0&dst=9&engine=smodk"); rec.Code != http.StatusNotFound {
		t.Fatalf("route via engine with no tables: %d %v", rec.Code, body)
	} else if msg := body["error"].(string); !strings.Contains(msg, "dmodk, fault-resilient") {
		t.Fatalf("404 does not list the available engines: %q", msg)
	}

	rec, body = get(t, h, "/v1/jobs")
	jobs := body["jobs"].([]interface{})
	if rec.Code != 200 || len(jobs) != 1 {
		t.Fatalf("jobs: %d %v", rec.Code, body)
	}
	if eng := jobs[0].(map[string]interface{})["engine"]; eng != "fault-resilient" {
		t.Fatalf("job engine %v, want fault-resilient", eng)
	}

	// The journal's alloc record carries the engine, and the swap record
	// names the engine that produced the served tables.
	recs, _ := m.Events(0)
	var sawAlloc, sawSwap bool
	for _, r := range recs {
		if r.Kind == EvAlloc && r.Engine == "fault-resilient" {
			sawAlloc = true
		}
		if r.Kind == EvSwap && r.Engine == "dmodk" && strings.Contains(r.Detail, "engine=dmodk") {
			sawSwap = true
		}
	}
	if !sawAlloc || !sawSwap {
		t.Fatalf("journal missing engine stamps (alloc=%v swap=%v): %+v", sawAlloc, sawSwap, recs)
	}

	// Freeing the job retires its engine from the next snapshot.
	req = httptest.NewRequest("DELETE", fmt.Sprintf("/v1/jobs?id=%d", id), nil)
	if rec, body = do(t, h, req); rec.Code != http.StatusOK {
		t.Fatalf("free: %d %v", rec.Code, body)
	}
	st = waitEpoch(t, m, st.Epoch+1)
	if st.ByEngine["fault-resilient"] != nil {
		t.Fatalf("epoch %d still carries the freed job's engine tables", st.Epoch)
	}
}

// TestJobEngineUnknown checks both refusal layers: the HTTP handler's
// 400 and the manager API's registry error.
func TestJobEngineUnknown(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"size":4,"engine":"bogus"}`))
	rec, body := do(t, h, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("alloc with bogus engine: %d %v", rec.Code, body)
	}
	if msg := body["error"].(string); !strings.Contains(msg, "registered:") {
		t.Fatalf("400 does not list registered engines: %q", msg)
	}
	if _, err := m.AllocJobEngine(4, false, "bogus"); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("AllocJobEngine(bogus) = %v, want unknown-engine error", err)
	}
	// No placement leaked from the refused request.
	if jobs := m.Current().Jobs; len(jobs) != 0 {
		t.Fatalf("refused alloc leaked %d jobs", len(jobs))
	}
}

// TestEngineRerouteUnderFault reruns the classic fault cycle under a
// non-default fault-aware engine and checks the swapped snapshot stays
// valid and labeled.
func TestEngineRerouteUnderFault(t *testing.T) {
	m := newManager(t, "rlft2:4,8", func(c *Config) { c.Engine = "fault-resilient" })
	m.Start()
	link := fabricLink(t, m.t, 0)
	if _, err := m.InjectFaults([]topo.LinkID{link}, nil, 0); err != nil {
		t.Fatal(err)
	}
	st := waitEpoch(t, m, 2)
	if st.Engine != "fault-resilient" {
		t.Fatalf("engine %q after reroute", st.Engine)
	}
	if len(st.FailedLinks) != 1 || st.FailedLinks[0] != link {
		t.Fatalf("failed links %v, want [%d]", st.FailedLinks, link)
	}
	if st.LFT == nil || !strings.Contains(st.LFT.Name, "patch") {
		t.Fatalf("fault-resilient reroute did not serve patched tables: %+v", st.LFT)
	}
	if st.Paths.NumBroken() != 0 {
		t.Fatalf("%d broken pairs after a 1-link incremental repair", st.Paths.NumBroken())
	}
	// Registry metadata is reachable for reports.
	found := false
	for _, info := range engine.Infos() {
		if info.Name == st.Engine && info.FaultAware {
			found = true
		}
	}
	if !found {
		t.Fatalf("registry does not describe %s as fault-aware", st.Engine)
	}
}
