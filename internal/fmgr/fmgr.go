// Package fmgr is the fabric-manager daemon core: the long-running
// subnet-manager role the paper's D-Mod-K engine shipped inside
// (OpenSM), rebuilt as a concurrent Go service. A Manager owns an
// immutable FabricState snapshot — topology, rerouted forwarding
// tables, compiled path arena, node ordering, job placements and the
// cached Shift-HSD summary — behind an atomic pointer: readers load the
// pointer and work lock-free on a consistent snapshot (RCU style),
// while a single event loop consumes fault/revive and job events,
// debounces them, reroutes via fabric.RouteAround, validates the result
// and swaps the whole snapshot. A query served mid-reroute therefore
// always answers from exactly one epoch — the previous valid tables
// until the new ones are proven good, never a mix.
package fmgr

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fattree/internal/cps"
	"fattree/internal/engine"
	"fattree/internal/fabric"
	"fattree/internal/hsd"
	"fattree/internal/invariant"
	"fattree/internal/obs"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/sched"
	"fattree/internal/topo"
	"fattree/internal/wire"
)

// FabricState is one immutable snapshot of the managed fabric. Every
// field is frozen at build time; readers must not mutate anything
// reachable from it. Epoch increases by one per swap.
type FabricState struct {
	Epoch  uint64
	Topo   *topo.Topology
	Subnet *fabric.Subnet
	// LFT is the current (re)routed forwarding tables (nil for engines
	// with no forwarding-table realization, like s-mod-k); Paths the
	// lenient-compiled arena over the routing (broken pairs recorded,
	// not fatal).
	LFT   *route.LFT
	Paths *route.Compiled
	// Engine is the registry name of the active engine that produced
	// LFT/Paths; Routing is that engine's router label.
	Engine  string
	Routing string
	// ByEngine holds this epoch's tables for the active engine plus
	// every engine a live job requested, all computed against the same
	// fault set — one epoch, several routing policies. JobEngines maps
	// each job that asked for a specific engine to its name; jobs absent
	// from it ride the active engine.
	ByEngine   map[string]*engine.Tables
	JobEngines map[sched.JobID]string
	// Ordering is the topology-aware MPI node order served by /v1/order.
	Ordering *order.Ordering
	// HSD is the cached Shift summary over the routable pairs.
	HSD *hsd.Report
	// FailedLinks, Unroutable and BrokenPairs describe the fault state
	// the tables were computed under.
	FailedLinks []topo.LinkID
	Unroutable  []int
	BrokenPairs int
	// Jobs is a deep copy of the live allocations at swap time.
	Jobs []*sched.Allocation
	// JobRouteSets holds, per placed job, the fully encoded binary
	// answer for the job's whole ordered src→dst pair set, resolved
	// under this epoch's tables for the job's engine. Precomputed at
	// snapshot build (i.e. at placement and at every reroute), so a
	// steady-state job-mode wire query is a map lookup plus one conn
	// write — a pure cache hit, no path walk, no encode.
	JobRouteSets map[sched.JobID]JobWireFrame

	unroutable []bool // per-host, for O(1) request checks
	wireOrder  []byte // pre-encoded binary OrderResp frame
}

// JobWireFrame is one job's precomputed binary answer, served verbatim
// by job-mode RouteSet requests. Frame is normally a RouteSetResp; when
// the job's full set would encode past wire.MaxPayload — a frame every
// peer rejects unread — it is instead an ErrorResp directing the client
// to pairs-mode chunks (Pairs 0, Code 500).
type JobWireFrame struct {
	Frame []byte
	Pairs int // resolved pairs, for the served-routes counter
	Code  int // HTTP-style observation code: 200 served, 500 oversized
}

// HostUnroutable reports whether host j lost its only uplink in this
// snapshot.
func (st *FabricState) HostUnroutable(j int) bool {
	return j >= 0 && j < len(st.unroutable) && st.unroutable[j]
}

// JobEngine resolves which engine serves a job's traffic in this
// snapshot: the one it requested at allocation, else the active engine.
func (st *FabricState) JobEngine(id sched.JobID) string {
	if name, ok := st.JobEngines[id]; ok {
		return name
	}
	return st.Engine
}

// Config configures a Manager. Topo is required; everything else has
// serviceable defaults.
type Config struct {
	Topo *topo.Topology
	// Engine selects the routing engine (by registry name) that produces
	// the served tables. Default engine.Default, the paper's D-Mod-K
	// with RouteAround fault handling.
	Engine string
	// EngineOpts is handed to every engine builder (randomized-engine
	// seed, node-type assignment for nodetype-lb).
	EngineOpts engine.Options
	// Debounce is how long the event loop waits after the last fault or
	// job event before rerouting, so a burst of link flaps costs one
	// reroute instead of one per event. Default 25ms.
	Debounce time.Duration
	// RetryBase and RetryMax bound the exponential backoff applied when
	// a rebuild fails validation (the previous snapshot keeps serving
	// meanwhile). Defaults 50ms and 2s.
	RetryBase, RetryMax time.Duration
	// Rand drives the fail_random fault draws. Default: seeded with 1,
	// so a daemon restart replays the same draw sequence.
	Rand *rand.Rand
	// Metrics receives the fmgr_* counters, gauges and histograms. Nil
	// disables instrumentation at nil-handle cost.
	Metrics *obs.Registry
	// Spans receives request and event-loop spans (trace/span IDs over
	// the Chrome trace-event writer). Nil disables tracing at
	// nil-handle cost.
	Spans *obs.SpanTracer
	// SpanSample traces one in every SpanSample requests when Spans is
	// set (1 = every request, the default). The event loop is always
	// traced — it is rare and load-bearing.
	SpanSample int
	// JournalSize bounds the in-memory fabric event journal served at
	// GET /v1/events. Default 1024 records; the ring drops oldest
	// first.
	JournalSize int
	// MaxInflight gates concurrent HTTP requests on /v1 (excess gets
	// 429). Default 64.
	MaxInflight int
	// RequestTimeout bounds /v1 request handling. Default 2s.
	RequestTimeout time.Duration
}

func (c *Config) fill() {
	if c.Engine == "" {
		c.Engine = engine.Default
	}
	if c.Debounce <= 0 {
		c.Debounce = 25 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	if c.SpanSample <= 0 {
		c.SpanSample = 1
	}
	if c.JournalSize <= 0 {
		c.JournalSize = 1024
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
}

type evKind int

const (
	evFail evKind = iota
	evRevive
	evFailRandom
	evAlloc
	evFree
)

type jobReply struct {
	alloc *sched.Allocation
	err   error
}

type event struct {
	kind    evKind
	link    topo.LinkID
	n       int
	size    int
	aligned bool
	engine  string // requested engine for evAlloc ("" = active)
	job     sched.JobID
	reply   chan jobReply // non-nil for job events only
}

// Manager owns the fabric state and the event loop. Create with New,
// then Start; readers call Current or go through Handler.
type Manager struct {
	cfg    Config
	t      *topo.Topology
	subnet *fabric.Subnet
	faults *fabric.FaultSet
	alloc  *sched.Allocator // nil when the topology is not an RLFT
	orderv *order.Ordering

	// engines caches built engine instances by registry name;
	// jobEngines tracks per-job engine requests. Both are touched only
	// by New (pre-Start) and the event loop, so they need no lock.
	engines    map[string]engine.Engine
	jobEngines map[sched.JobID]string

	cur     atomic.Pointer[FabricState]
	events  chan event
	done    chan struct{}
	wg      sync.WaitGroup
	started bool
	closed  bool
	mu      sync.Mutex // guards started/closed transitions

	// OnSwap, when set before Start, is called with every snapshot just
	// before it becomes current (including the initial one from New via
	// Start). Tests use it to record the exact set of states ever
	// served.
	OnSwap func(*FabricState)

	// validate is swappable so tests can force rebuild failures and
	// observe the retry/backoff path. Defaults to validateState.
	validate func(*FabricState) error

	gate chan struct{} // max-inflight semaphore for the HTTP layer

	// Live binary-protocol connections, force-closed on Close so
	// ServeWire loops never outlive the manager.
	wireMu     sync.Mutex
	wireConns  map[net.Conn]struct{}
	wireClosed bool

	// Per-endpoint RED handles for the binary protocol, resolved once.
	wireEpochEP    *obs.REDEndpoint
	wireRouteSetEP *obs.REDEndpoint
	wireOrderEP    *obs.REDEndpoint

	// journal is the bounded fabric event ring served at /v1/events.
	journal *Journal
	// spanSeq drives 1-in-N request-span sampling.
	spanSeq atomic.Uint64

	// metrics handles (nil-safe when cfg.Metrics is nil)
	mEpoch       *obs.Gauge
	mReroutes    *obs.Counter
	mRerouteFail *obs.Counter
	mEvents      *obs.Counter
	mJobsActive  *obs.Gauge
	mRerouteUS   *obs.Histogram
	mCheckFail   *obs.Counter
	mWireRoutes  *obs.Counter
	mWireConns   *obs.Gauge
}

// New builds a manager and its initial epoch-1 snapshot (synchronously,
// so Current never returns nil). The event loop is not running until
// Start.
func New(cfg Config) (*Manager, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("fmgr: Config.Topo is required")
	}
	cfg.fill()
	m := &Manager{
		cfg:    cfg,
		t:      cfg.Topo,
		subnet: fabric.NewSubnet(cfg.Topo),
		faults: fabric.NewFaultSet(cfg.Topo),
		orderv: order.Topology(cfg.Topo.NumHosts(), nil),
		events: make(chan event, 256),
		done:   make(chan struct{}),
		gate:   make(chan struct{}, cfg.MaxInflight),

		engines:    map[string]engine.Engine{},
		jobEngines: map[sched.JobID]string{},
		wireConns:  map[net.Conn]struct{}{},
	}
	m.journal = NewJournal(cfg.JournalSize)
	m.validate = m.validateState
	// Build the active engine up front so a bad -engine name or a
	// builder failure surfaces here, not inside the event loop.
	if _, err := m.getEngine(cfg.Engine); err != nil {
		return nil, fmt.Errorf("fmgr: %w", err)
	}
	if reg := cfg.Metrics; reg != nil {
		m.mEpoch = reg.Gauge("fmgr_epoch")
		m.mReroutes = reg.Counter("fmgr_reroutes_total")
		m.mRerouteFail = reg.Counter("fmgr_reroute_failures_total")
		m.mEvents = reg.Counter("fmgr_events_total")
		m.mJobsActive = reg.Gauge("fmgr_jobs_active")
		m.mRerouteUS = reg.MustHistogram("fmgr_reroute_latency_us",
			[]float64{100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1e6})
		m.mCheckFail = reg.Counter("fmgr_check_failures_total")
		m.mWireRoutes = reg.Counter("fmgr_wire_routes_served_total")
		m.mWireConns = reg.Gauge("fmgr_wire_conns")
	}
	wireRED := obs.NewRED(cfg.Metrics, "fmgr_wire", nil)
	m.wireEpochEP = wireRED.Endpoint("epoch")
	m.wireRouteSetEP = wireRED.Endpoint("route_set")
	m.wireOrderEP = wireRED.Endpoint("order")
	if a, err := sched.New(cfg.Topo); err == nil {
		m.alloc = a
	}
	st, err := m.buildState(1, nil)
	if err != nil {
		return nil, fmt.Errorf("fmgr: initial snapshot: %w", err)
	}
	if err := m.validate(st); err != nil {
		return nil, fmt.Errorf("fmgr: initial snapshot invalid: %w", err)
	}
	m.cur.Store(st)
	m.mEpoch.Set(int64(st.Epoch))
	return m, nil
}

// Start launches the event loop. Safe to call once.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || m.closed {
		return
	}
	m.started = true
	if m.OnSwap != nil {
		// Announce the initial snapshot through the same channel as
		// later swaps, so observers hold a complete epoch history.
		m.OnSwap(m.cur.Load())
	}
	m.wg.Add(1)
	go m.loop()
}

// Close stops the event loop and waits for it to exit. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.done)
	m.mu.Unlock()
	m.closeWireConns()
	m.wg.Wait()
}

// Current returns the live snapshot. The result is immutable and safe
// to use for any length of time; it just stops being current after the
// next swap.
func (m *Manager) Current() *FabricState { return m.cur.Load() }

// Events returns up to n journal records, oldest first (n <= 0 means
// all kept), plus the count of older records the ring has dropped.
func (m *Manager) Events(n int) ([]EventRecord, uint64) { return m.journal.Snapshot(n) }

// EventsSince returns up to n journal records with Seq >= since, oldest
// first, plus the count of matching records already dropped by the ring
// — the incremental-polling form of Events.
func (m *Manager) EventsSince(since uint64, n int) ([]EventRecord, uint64) {
	return m.journal.SnapshotSince(since, n)
}

// InjectFaults enqueues fail/revive events for the given links plus a
// failRandom draw of that many extra fabric links. Link IDs are
// validated here; the reroute itself happens asynchronously after the
// debounce window. Returns the number of events enqueued.
func (m *Manager) InjectFaults(fail, revive []topo.LinkID, failRandom int) (int, error) {
	for _, l := range append(append([]topo.LinkID(nil), fail...), revive...) {
		if l < 0 || int(l) >= len(m.t.Links) {
			return 0, fmt.Errorf("fmgr: link %d out of range [0,%d)", l, len(m.t.Links))
		}
	}
	if failRandom < 0 {
		return 0, fmt.Errorf("fmgr: fail_random %d is negative", failRandom)
	}
	sent := 0
	for _, l := range fail {
		if err := m.send(event{kind: evFail, link: l}); err != nil {
			return sent, err
		}
		sent++
	}
	for _, l := range revive {
		if err := m.send(event{kind: evRevive, link: l}); err != nil {
			return sent, err
		}
		sent++
	}
	if failRandom > 0 {
		if err := m.send(event{kind: evFailRandom, n: failRandom}); err != nil {
			return sent, err
		}
		sent++
	}
	return sent, nil
}

// AllocJob places a job through the event loop (the allocator is owned
// by the loop, so placements serialize with fault handling) and waits
// for the result. aligned selects the strict AllocAligned admission.
func (m *Manager) AllocJob(size int, aligned bool) (*sched.Allocation, error) {
	return m.AllocJobEngine(size, aligned, "")
}

// AllocJobEngine places a job whose traffic should be routed by a
// specific engine from the registry ("" means the active one). Every
// snapshot built while the job lives carries that engine's tables in
// ByEngine, so GET /v1/route?engine=... answers from the same epoch and
// fault state the active tables were computed under.
func (m *Manager) AllocJobEngine(size int, aligned bool, engineName string) (*sched.Allocation, error) {
	if m.alloc == nil {
		return nil, fmt.Errorf("fmgr: topology %v is not an RLFT; no allocator", m.t.Spec)
	}
	reply := make(chan jobReply, 1)
	if err := m.send(event{kind: evAlloc, size: size, aligned: aligned, engine: engineName, reply: reply}); err != nil {
		return nil, err
	}
	r := <-reply
	return r.alloc, r.err
}

// getEngine returns the cached engine instance for a registry name,
// building it on first use. Called only from New and the event loop.
func (m *Manager) getEngine(name string) (engine.Engine, error) {
	if e, ok := m.engines[name]; ok {
		return e, nil
	}
	e, err := engine.Build(name, m.t, m.cfg.EngineOpts)
	if err != nil {
		return nil, err
	}
	m.engines[name] = e
	return e, nil
}

// FreeJob releases a job through the event loop.
func (m *Manager) FreeJob(id sched.JobID) error {
	if m.alloc == nil {
		return fmt.Errorf("fmgr: topology %v is not an RLFT; no allocator", m.t.Spec)
	}
	reply := make(chan jobReply, 1)
	if err := m.send(event{kind: evFree, job: id, reply: reply}); err != nil {
		return err
	}
	return (<-reply).err
}

func (m *Manager) send(ev event) error {
	// Check done first: a select with both an open buffer slot and a
	// closed done channel picks randomly, which would let events slip
	// into a closed manager.
	select {
	case <-m.done:
		return fmt.Errorf("fmgr: manager closed")
	default:
	}
	select {
	case m.events <- ev:
		m.mEvents.Inc()
		return nil
	case <-m.done:
		return fmt.Errorf("fmgr: manager closed")
	}
}

// loop is the single writer: it owns the fault set and the allocator,
// coalesces events over the debounce window, and swaps validated
// snapshots. A failed rebuild keeps the previous snapshot current and
// retries with exponential backoff.
func (m *Manager) loop() {
	defer m.wg.Done()
	var (
		debounceC <-chan time.Time
		retryC    <-chan time.Time
		backoff   = m.cfg.RetryBase
		dirty     bool
	)
	rebuild := func() {
		st, err := m.tryRebuild()
		if err != nil {
			m.mRerouteFail.Inc()
			retryC = time.After(backoff)
			if backoff *= 2; backoff > m.cfg.RetryMax {
				backoff = m.cfg.RetryMax
			}
			return
		}
		if m.OnSwap != nil {
			m.OnSwap(st)
		}
		m.cur.Store(st)
		m.mEpoch.Set(int64(st.Epoch))
		m.journal.Record(EventRecord{Kind: EvSwap, Epoch: st.Epoch, Engine: st.Engine,
			Outcome: OutcomeOK,
			Detail: fmt.Sprintf("engine=%s failed_links=%d broken_pairs=%d jobs=%d",
				st.Engine, len(st.FailedLinks), st.BrokenPairs, len(st.Jobs))})
		backoff = m.cfg.RetryBase
		retryC = nil
		dirty = false
	}
	for {
		select {
		case ev := <-m.events:
			m.apply(ev)
			dirty = true
			debounceC = time.After(m.cfg.Debounce)
		case <-debounceC:
			debounceC = nil
			if dirty {
				rebuild()
			}
		case <-retryC:
			retryC = nil
			if dirty {
				rebuild()
			}
		case <-m.done:
			// Unblock any callers waiting on a job reply.
			for {
				select {
				case ev := <-m.events:
					if ev.reply != nil {
						ev.reply <- jobReply{err: fmt.Errorf("fmgr: manager closed")}
					}
				default:
					return
				}
			}
		}
	}
}

// apply mutates the loop-owned fault set / allocator for one event and
// journals what was asked for. The reroute/validate/swap phases that
// follow journal themselves, so /v1/events replays the full
// fault → reroute → swap lifecycle.
func (m *Manager) apply(ev event) {
	epoch := m.cur.Load().Epoch
	switch ev.kind {
	case evFail:
		m.faults.Fail(ev.link)
		m.journal.Record(EventRecord{Kind: EvFault, Epoch: epoch,
			Outcome: OutcomeOK, Detail: fmt.Sprintf("link %d", ev.link)})
	case evRevive:
		m.faults.Revive(ev.link)
		m.journal.Record(EventRecord{Kind: EvRevive, Epoch: epoch,
			Outcome: OutcomeOK, Detail: fmt.Sprintf("link %d", ev.link)})
	case evFailRandom:
		if err := m.faults.FailRandomFabricLinksRand(ev.n, m.cfg.Rand); err != nil {
			// Draw failed (more faults requested than links); the fault
			// set is unchanged, nothing to roll back.
			m.mRerouteFail.Inc()
			m.journal.Record(EventRecord{Kind: EvFaultRandom, Epoch: epoch,
				Outcome: OutcomeError, Detail: err.Error()})
		} else {
			m.journal.Record(EventRecord{Kind: EvFaultRandom, Epoch: epoch,
				Outcome: OutcomeOK, Detail: fmt.Sprintf("n=%d", ev.n)})
		}
	case evAlloc:
		var a *sched.Allocation
		var err error
		if ev.engine != "" {
			// Resolve the requested engine before placing anything, so
			// an unknown name or a failing builder refuses the job
			// instead of poisoning every later rebuild.
			_, err = m.getEngine(ev.engine)
		}
		if err == nil {
			if ev.aligned {
				a, err = m.alloc.AllocAligned(ev.size)
			} else {
				a, err = m.alloc.Alloc(ev.size)
			}
		}
		if err == nil {
			if ev.engine != "" {
				m.jobEngines[a.ID] = ev.engine
			}
			m.mJobsActive.Add(1)
			detail := fmt.Sprintf("job %d size %d", a.ID, ev.size)
			if ev.engine != "" {
				detail += " engine " + ev.engine
			}
			m.journal.Record(EventRecord{Kind: EvAlloc, Epoch: epoch,
				Engine: ev.engine, Outcome: OutcomeOK, Detail: detail})
		} else {
			m.journal.Record(EventRecord{Kind: EvAlloc, Epoch: epoch,
				Engine: ev.engine, Outcome: OutcomeError, Detail: err.Error()})
		}
		ev.reply <- jobReply{alloc: a, err: err}
	case evFree:
		err := m.alloc.Free(ev.job)
		if err == nil {
			delete(m.jobEngines, ev.job)
			m.mJobsActive.Add(-1)
			m.journal.Record(EventRecord{Kind: EvFree, Epoch: epoch,
				Outcome: OutcomeOK, Detail: fmt.Sprintf("job %d", ev.job)})
		} else {
			m.journal.Record(EventRecord{Kind: EvFree, Epoch: epoch,
				Outcome: OutcomeError, Detail: err.Error()})
		}
		ev.reply <- jobReply{err: err}
	}
}

// tryRebuild computes and validates the next snapshot; on any error the
// caller keeps the previous one current. Each phase is spanned and
// journaled: reroute (tables + arena + HSD) then validate.
func (m *Manager) tryRebuild() (*FabricState, error) {
	sp := m.cfg.Spans.StartTrace("rebuild")
	defer sp.End()
	epoch := m.cur.Load().Epoch + 1
	sp.Tag(obs.Num("epoch", float64(epoch)))

	start := time.Now()
	rsp := sp.Child("reroute")
	st, err := m.buildState(epoch, rsp)
	rsp.End()
	rec := EventRecord{Kind: EvReroute, Epoch: epoch, Engine: m.cfg.Engine,
		DurationUS: time.Since(start).Microseconds(), Outcome: OutcomeOK}
	if err != nil {
		rec.Outcome, rec.Detail = OutcomeError, err.Error()
	} else {
		rec.Detail = fmt.Sprintf("engine=%s failed_links=%d broken_pairs=%d unroutable=%d",
			st.Engine, len(st.FailedLinks), st.BrokenPairs, len(st.Unroutable))
	}
	m.journal.Record(rec)

	if err == nil {
		vstart := time.Now()
		vsp := sp.Child("validate")
		err = m.validate(st)
		vsp.End()
		vrec := EventRecord{Kind: EvValidate, Epoch: epoch, Engine: m.cfg.Engine,
			DurationUS: time.Since(vstart).Microseconds(), Outcome: OutcomeOK}
		if err != nil {
			m.mCheckFail.Inc()
			vrec.Outcome, vrec.Detail = OutcomeError, err.Error()
		}
		m.journal.Record(vrec)
	}
	m.mRerouteUS.Observe(float64(time.Since(start).Microseconds()))
	if err != nil {
		sp.Tag(obs.Str("outcome", OutcomeError))
		return nil, err
	}
	m.mReroutes.Inc()
	return st, nil
}

// buildState asks the active engine (and every engine a live job
// requested) for tables under the current fault set and assembles a full
// snapshot: tables, lenient path arena, job view and Shift-HSD summary.
// sp, when tracing, parents one child span per phase.
func (m *Manager) buildState(epoch uint64, sp *obs.Span) (*FabricState, error) {
	st := &FabricState{
		Epoch:       epoch,
		Topo:        m.t,
		Subnet:      m.subnet,
		Ordering:    m.orderv,
		Engine:      m.cfg.Engine,
		ByEngine:    map[string]*engine.Tables{},
		JobEngines:  map[sched.JobID]string{},
		FailedLinks: m.faults.FailedLinks(),
		unroutable:  make([]bool, m.t.NumHosts()),
	}
	want := map[string]bool{m.cfg.Engine: true}
	for id, name := range m.jobEngines {
		st.JobEngines[id] = name
		want[name] = true
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	var fs *fabric.FaultSet
	if m.faults.Failed() > 0 {
		fs = m.faults
	}
	for _, name := range names {
		e, err := m.getEngine(name)
		if err != nil {
			return nil, err
		}
		c := sp.Child("engine_tables")
		c.TagStr("engine", name)
		tb, err := e.Tables(fs)
		c.End()
		if err != nil {
			return nil, fmt.Errorf("engine %s: %w", name, err)
		}
		st.ByEngine[name] = tb
	}
	tb := st.ByEngine[m.cfg.Engine]
	st.LFT = tb.LFT
	st.Paths = tb.Compiled
	st.Routing = tb.Router.Label()
	st.Unroutable = tb.Unroutable
	st.BrokenPairs = tb.BrokenPairs
	for _, j := range st.Unroutable {
		st.unroutable[j] = true
	}
	if m.alloc != nil {
		for _, j := range m.alloc.Jobs() {
			jc := *j
			jc.Hosts = append([]int(nil), j.Hosts...)
			st.Jobs = append(st.Jobs, &jc)
		}
	}
	c := sp.Child("shift_hsd")
	var err error
	st.HSD, err = shiftSummary(st)
	c.End()
	if err != nil {
		return nil, err
	}
	c = sp.Child("wire_precompute")
	err = precomputeWire(st)
	c.End()
	if err != nil {
		return nil, err
	}
	return st, nil
}

// precomputeWire freezes the snapshot's binary-protocol answers: the
// order frame and one fully encoded RouteSetResp frame per placed job
// (the job's whole ordered pair set under its engine's tables). Done
// here — at placement and at every reroute — so the wire read path
// serves precomputed bytes and steady-state job queries never touch
// the arena.
func precomputeWire(st *FabricState) error {
	hostOf := make([]uint32, len(st.Ordering.HostOf))
	for i, h := range st.Ordering.HostOf {
		hostOf[i] = uint32(h)
	}
	st.wireOrder = wire.AppendFrame(nil, &wire.OrderResp{
		Epoch:  st.Epoch,
		Label:  st.Ordering.Label,
		HostOf: hostOf,
	})
	st.JobRouteSets = make(map[sched.JobID]JobWireFrame, len(st.Jobs))
	for _, j := range st.Jobs {
		eng := st.JobEngine(j.ID)
		tb, ok := st.ByEngine[eng]
		if !ok {
			return fmt.Errorf("job %d wants engine %s but epoch %d has no tables for it", j.ID, eng, st.Epoch)
		}
		pairs := orderedPairs(j.Hosts)
		resp, err := routeSetResp(st.Epoch, eng, tb, pairs)
		if err != nil {
			return fmt.Errorf("job %d route set: %w", j.ID, err)
		}
		st.JobRouteSets[j.ID] = encodeJobFrame(j.ID, len(pairs), resp)
	}
	return nil
}

// encodeJobFrame freezes one job's served bytes under the wire frame
// budget: an oversized set degrades to a stored ErrorResp, so the
// client gets an application-level answer instead of a frame its
// decoder must reject.
func encodeJobFrame(job sched.JobID, pairs int, resp *wire.RouteSetResp) JobWireFrame {
	frame, err := wire.AppendFrameChecked(nil, resp)
	if err == nil {
		return JobWireFrame{Frame: frame, Pairs: pairs, Code: 200}
	}
	return JobWireFrame{
		Frame: wire.EncodeFrame(&wire.ErrorResp{
			Code: wire.CodeInternal,
			Msg: fmt.Sprintf("job %d: %d-pair route set exceeds the %d-byte frame cap; fetch in pairs-mode chunks",
				job, pairs, wire.MaxPayload),
		}),
		Code: 500,
	}
}

// shiftSummary analyzes the Shift sequence under the topology order over
// the snapshot's routable pairs — the daemon's standing answer to "is
// this fabric still contention free". Pairs broken by faults are
// skipped (they carry no traffic), so the summary reflects the flows the
// fabric can actually deliver.
func shiftSummary(st *FabricState) (*hsd.Report, error) {
	n := st.Topo.NumHosts()
	seq := cps.Shift(n)
	a := hsd.NewAnalyzer(st.Paths)
	rep := &hsd.Report{Sequence: seq.Name(), Ordering: st.Ordering.Label, Routing: st.Routing}
	var pairs [][2]int
	for s := 0; s < seq.NumStages(); s++ {
		pairs = pairs[:0]
		for _, p := range seq.Stage(s) {
			src, dst := st.Ordering.HostOf[p.Src], st.Ordering.HostOf[p.Dst]
			if src == dst || st.HostUnroutable(src) || st.HostUnroutable(dst) || st.Paths.Broken(src, dst) {
				continue
			}
			pairs = append(pairs, [2]int{src, dst})
		}
		sr, err := a.Stage(pairs)
		if err != nil {
			return nil, err
		}
		rep.Stages = append(rep.Stages, sr)
	}
	return rep, nil
}

// validateState proves a candidate snapshot safe to serve via the shared
// invariant engine: for every engine's arena in the snapshot, every
// non-broken pair's compiled path must be connected, up*/down*-shaped
// and delivered, and pairs involving unroutable hosts must be marked
// broken — the same assertions ftcheck and the property sweeps run, so
// the daemon cannot drift from the tested contract.
func (m *Manager) validateState(st *FabricState) error {
	names := make([]string, 0, len(st.ByEngine))
	for name := range st.ByEngine {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tb := st.ByEngine[name]
		un := make([]bool, st.Topo.NumHosts())
		for _, j := range tb.Unroutable {
			un[j] = true
		}
		pred := func(j int) bool { return j >= 0 && j < len(un) && un[j] }
		if err := invariant.LenientArena(st.Topo, tb.Compiled, pred); err != nil {
			return fmt.Errorf("fmgr: epoch %d engine %s: %w", st.Epoch, name, err)
		}
	}
	return nil
}
