package fmgr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fattree/internal/obs"
)

func TestJournalRingWrap(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(EventRecord{Kind: EvFault, Detail: fmt.Sprintf("link %d", i)})
	}
	recs, dropped := j.Snapshot(0)
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(recs) != 4 {
		t.Fatalf("kept %d records, want 4", len(recs))
	}
	for i, r := range recs {
		wantSeq := uint64(6 + i)
		if r.Seq != wantSeq {
			t.Fatalf("record %d: seq %d, want %d (out of order?)", i, r.Seq, wantSeq)
		}
		if want := fmt.Sprintf("link %d", 6+i); r.Detail != want {
			t.Fatalf("record %d: detail %q, want %q", i, r.Detail, want)
		}
		if r.TimeUnixNS == 0 {
			t.Fatalf("record %d: time not stamped", i)
		}
	}
	// Limited snapshot returns the newest n, still oldest first.
	recs, _ = j.Snapshot(2)
	if len(recs) != 2 || recs[0].Seq != 8 || recs[1].Seq != 9 {
		t.Fatalf("Snapshot(2) = %+v, want seqs 8,9", recs)
	}
}

func TestJournalPartialAndNil(t *testing.T) {
	j := NewJournal(8)
	j.Record(EventRecord{Kind: EvSwap})
	j.Record(EventRecord{Kind: EvFault})
	recs, dropped := j.Snapshot(0)
	if dropped != 0 || len(recs) != 2 || recs[0].Kind != EvSwap || recs[1].Kind != EvFault {
		t.Fatalf("partial ring: dropped=%d recs=%+v", dropped, recs)
	}
	if j.Len() != 2 {
		t.Fatalf("Len = %d, want 2", j.Len())
	}
	var nilJ *Journal
	nilJ.Record(EventRecord{Kind: EvFault})
	if recs, dropped := nilJ.Snapshot(0); recs != nil || dropped != 0 || nilJ.Len() != 0 {
		t.Fatal("nil journal must no-op")
	}
}

// TestEventsReplayFaultLifecycle injects a fault over HTTP and checks
// that GET /v1/events replays the full fault → reroute → validate →
// swap lifecycle in order, stamped with the new epoch.
func TestEventsReplayFaultLifecycle(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()

	link := fabricLink(t, m.t, 0)
	req := httptest.NewRequest("POST", "/v1/faults",
		strings.NewReader(fmt.Sprintf(`{"fail":[%d]}`, link)))
	if rec, body := do(t, h, req); rec.Code != http.StatusAccepted {
		t.Fatalf("faults: %d %v", rec.Code, body)
	}
	waitEpoch(t, m, 2)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/events", nil))
	if rec.Code != 200 {
		t.Fatalf("events: %d %s", rec.Code, rec.Body.String())
	}
	var doc EventsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != EventsSchema || doc.Epoch != 2 || doc.Dropped != 0 {
		t.Fatalf("events header: %+v", doc)
	}
	var kinds []string
	for _, e := range doc.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []string{EvFault, EvReroute, EvValidate, EvSwap}
	pos := -1
	for _, k := range want {
		next := -1
		for i := pos + 1; i < len(kinds); i++ {
			if kinds[i] == k {
				next = i
				break
			}
		}
		if next < 0 {
			t.Fatalf("lifecycle %v not found in order within %v", want, kinds)
		}
		pos = next
	}
	for _, e := range doc.Events {
		switch e.Kind {
		case EvReroute, EvValidate, EvSwap:
			if e.Epoch != 2 || e.Outcome != OutcomeOK {
				t.Fatalf("%s record: %+v, want epoch 2 outcome ok", e.Kind, e)
			}
		case EvFault:
			if want := fmt.Sprintf("link %d", link); e.Detail != want {
				t.Fatalf("fault detail %q, want %q", e.Detail, want)
			}
		}
	}
	// Reroute duration must be recorded.
	for _, e := range doc.Events {
		if e.Kind == EvReroute && e.DurationUS < 0 {
			t.Fatalf("reroute duration %d < 0", e.DurationUS)
		}
	}

	// n-limited and invalid-n queries.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/events?n=1", nil))
	var one EventsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Events) != 1 || one.Events[0].Kind != EvSwap {
		t.Fatalf("events?n=1 = %+v, want just the swap", one.Events)
	}
	if rec, _ := get(t, h, "/v1/events?n=bad"); rec.Code != http.StatusBadRequest {
		t.Fatalf("events?n=bad: %d, want 400", rec.Code)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()
	// Drive one request so the RED family exists.
	if rec, _ := get(t, h, "/v1/route?src=0&dst=9"); rec.Code != 200 {
		t.Fatalf("route: %d", rec.Code)
	}

	// Default stays JSON.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	name := obs.Labeled("fmgr_http_requests_total",
		"endpoint", "GET /v1/route", "code", "2xx")
	if snap.Counters[name] != 1 {
		t.Fatalf("RED counter %q = %d, want 1 (counters: %v)", name, snap.Counters[name], snap.Counters)
	}

	// Accept: text/plain selects Prometheus exposition.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("negotiated content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE fmgr_epoch gauge",
		"# TYPE fmgr_http_requests_total counter",
		`fmgr_http_requests_total{endpoint="GET /v1/route",code="2xx"} 1`,
		`fmgr_http_request_duration_us_bucket{endpoint="GET /v1/route",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// ?format=prometheus works without the header; ?format=json forces
	// JSON even with a text Accept.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("?format=prometheus content type %q", ct)
	}
	req = httptest.NewRequest("GET", "/metrics?format=json", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("?format=json content type %q", ct)
	}
}

// TestRequestSpans wires a span tracer into the manager and checks the
// request path and the rebuild loop both emit linked spans.
func TestRequestSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	m := newManager(t, "rlft2:4,8", func(c *Config) {
		c.Spans = obs.NewSpanTracer(tr, 1, "fmgr-test")
	})
	m.Start()
	h := m.Handler()

	if rec, _ := get(t, h, "/v1/route?src=0&dst=9"); rec.Code != 200 {
		t.Fatalf("route: %d", rec.Code)
	}
	link := fabricLink(t, m.t, 0)
	req := httptest.NewRequest("POST", "/v1/faults",
		strings.NewReader(fmt.Sprintf(`{"fail":[%d]}`, link)))
	if rec, _ := do(t, h, req); rec.Code != http.StatusAccepted {
		t.Fatalf("faults: %d", rec.Code)
	}
	waitEpoch(t, m, 2)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	for _, want := range []string{
		`"GET /v1/route"`, `"decode"`, `"snapshot"`, `"lookup"`, `"encode"`,
		`"rebuild"`, `"reroute"`, `"engine_tables"`,
		`"shift_hsd"`, `"validate"`, `"trace_id"`, `"parent_id"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%s", want, out)
		}
	}
}

// TestSpanSampling checks that SpanSample=N keeps one in N request
// traces.
func TestSpanSampling(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	m := newManager(t, "rlft2:4,8", func(c *Config) {
		c.Spans = obs.NewSpanTracer(tr, 1, "fmgr-test")
		c.SpanSample = 4
	})
	m.Start()
	h := m.Handler()
	for i := 0; i < 8; i++ {
		if rec, _ := get(t, h, "/v1/route?src=0&dst=9"); rec.Code != 200 {
			t.Fatalf("route %d: %d", i, rec.Code)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"GET /v1/route"`); got != 2 {
		t.Fatalf("sampled %d route traces out of 8 at 1-in-4, want 2", got)
	}
}

func TestJournalSnapshotSince(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(EventRecord{Kind: EvFault, Detail: fmt.Sprintf("link %d", i)})
	}
	// Ring keeps seqs 6..9. A poller resuming from seq 8 gets 8 and 9
	// with nothing dropped.
	recs, dropped := j.SnapshotSince(8, 0)
	if dropped != 0 || len(recs) != 2 || recs[0].Seq != 8 || recs[1].Seq != 9 {
		t.Fatalf("since 8: %d dropped, %+v", dropped, recs)
	}
	// A poller that fell behind (since 2) lost seqs 2..5.
	recs, dropped = j.SnapshotSince(2, 0)
	if dropped != 4 || len(recs) != 4 || recs[0].Seq != 6 {
		t.Fatalf("since 2: %d dropped, %d recs starting %d; want 4 dropped, 4 recs from 6",
			dropped, len(recs), recs[0].Seq)
	}
	// Limit takes the OLDEST matching n so a poller pages forward.
	recs, dropped = j.SnapshotSince(6, 2)
	if dropped != 0 || len(recs) != 2 || recs[0].Seq != 6 || recs[1].Seq != 7 {
		t.Fatalf("since 6 limit 2: %d dropped, %+v", dropped, recs)
	}
	// Fully caught up: nothing to return, nothing dropped.
	recs, dropped = j.SnapshotSince(10, 0)
	if dropped != 0 || len(recs) != 0 {
		t.Fatalf("since 10: %d dropped, %+v, want empty", dropped, recs)
	}
	// Beyond the head is clamped.
	recs, dropped = j.SnapshotSince(99, 0)
	if dropped != 0 || len(recs) != 0 {
		t.Fatalf("since 99: %d dropped, %+v, want empty", dropped, recs)
	}
	// Unwrapped ring (fewer records than capacity).
	j2 := NewJournal(8)
	for i := 0; i < 3; i++ {
		j2.Record(EventRecord{Kind: EvAlloc})
	}
	recs, dropped = j2.SnapshotSince(1, 0)
	if dropped != 0 || len(recs) != 2 || recs[0].Seq != 1 {
		t.Fatalf("unwrapped since 1: %d dropped, %+v", dropped, recs)
	}
	// Nil journal no-ops.
	var nilJ *Journal
	if recs, dropped = nilJ.SnapshotSince(0, 0); recs != nil || dropped != 0 {
		t.Fatal("nil journal must no-op")
	}
}

// TestEventsSinceHTTP drives the ?limit and ?since_seq query filters.
func TestEventsSinceHTTP(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()

	link := fabricLink(t, m.t, 0)
	req := httptest.NewRequest("POST", "/v1/faults",
		strings.NewReader(fmt.Sprintf(`{"fail":[%d]}`, link)))
	if rec, body := do(t, h, req); rec.Code != http.StatusAccepted {
		t.Fatalf("faults: %d %v", rec.Code, body)
	}
	waitEpoch(t, m, 2)

	fetch := func(url string) EventsDoc {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: %d %s", url, rec.Code, rec.Body.String())
		}
		var doc EventsDoc
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	all := fetch("/v1/events")
	if len(all.Events) < 2 {
		t.Fatalf("expected a fault lifecycle, got %+v", all.Events)
	}
	// ?limit is a synonym for ?n: newest records win.
	lim := fetch("/v1/events?limit=1")
	if len(lim.Events) != 1 || lim.Events[0].Seq != all.Events[len(all.Events)-1].Seq {
		t.Fatalf("limit=1 = %+v, want the newest record", lim.Events)
	}
	// ?since_seq resumes after a seen seq: oldest matching first.
	mid := all.Events[1].Seq
	inc := fetch(fmt.Sprintf("/v1/events?since_seq=%d", mid))
	if len(inc.Events) != len(all.Events)-1 || inc.Events[0].Seq != mid {
		t.Fatalf("since_seq=%d returned %d events starting %d, want %d starting %d",
			mid, len(inc.Events), inc.Events[0].Seq, len(all.Events)-1, mid)
	}
	// since_seq with limit pages forward from the oldest match.
	page := fetch(fmt.Sprintf("/v1/events?since_seq=%d&limit=1", mid))
	if len(page.Events) != 1 || page.Events[0].Seq != mid {
		t.Fatalf("since_seq+limit = %+v, want just seq %d", page.Events, mid)
	}
	// Caught-up poller sees an empty (non-null) list.
	tail := all.Events[len(all.Events)-1].Seq + 1
	if doc := fetch(fmt.Sprintf("/v1/events?since_seq=%d", tail)); len(doc.Events) != 0 || doc.Dropped != 0 {
		t.Fatalf("caught-up poll = %+v", doc)
	}
	if rec, _ := get(t, h, "/v1/events?since_seq=bad"); rec.Code != http.StatusBadRequest {
		t.Fatalf("since_seq=bad: %d, want 400", rec.Code)
	}
	if rec, _ := get(t, h, "/v1/events?limit=bad"); rec.Code != http.StatusBadRequest {
		t.Fatalf("limit=bad: %d, want 400", rec.Code)
	}
}
