package fmgr

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"fattree/internal/engine"
	"fattree/internal/fabric"
	"fattree/internal/obs"
	"fattree/internal/route"
	"fattree/internal/sched"
	"fattree/internal/topo"
)

// RouteSchema stamps GET /v1/route responses.
const RouteSchema = "fattree-route/v1"

// HopDoc is one hop of a served path.
type HopDoc struct {
	Link int    `json:"link"`
	Up   bool   `json:"up"`
	From string `json:"from"`
	To   string `json:"to"`
}

// RouteDoc is the GET /v1/route response body.
type RouteDoc struct {
	Schema  string   `json:"schema"`
	Epoch   uint64   `json:"epoch"`
	Engine  string   `json:"engine"`
	Routing string   `json:"routing"`
	Src     int      `json:"src"`
	Dst     int      `json:"dst"`
	Hops    []HopDoc `json:"hops"`
}

// OrderDoc is the GET /v1/order response body.
type OrderDoc struct {
	Schema string `json:"schema"`
	Epoch  uint64 `json:"epoch"`
	Label  string `json:"label"`
	HostOf []int  `json:"host_of"`
}

// OrderSchema stamps GET /v1/order responses.
const OrderSchema = "fattree-order/v1"

// HSDDoc is the GET /v1/hsd response body: the cached Shift summary of
// the current snapshot.
type HSDDoc struct {
	Epoch          uint64  `json:"epoch"`
	Engine         string  `json:"engine"`
	Sequence       string  `json:"sequence"`
	Ordering       string  `json:"ordering"`
	Routing        string  `json:"routing"`
	Stages         int     `json:"stages"`
	MaxHSD         int     `json:"max_hsd"`
	AvgMaxHSD      float64 `json:"avg_max_hsd"`
	ContentionFree bool    `json:"contention_free"`
	SyncBandwidth  float64 `json:"sync_bandwidth"`
	FailedLinks    int     `json:"failed_links"`
	Unroutable     int     `json:"unroutable_hosts"`
	BrokenPairs    int     `json:"broken_pairs"`
}

// JobDoc is one allocation in job responses. Engine is the resolved
// routing engine serving the job's traffic (the requested one, else the
// manager's active engine).
type JobDoc struct {
	ID             int    `json:"id"`
	Size           int    `json:"size"`
	Hosts          []int  `json:"hosts"`
	Engine         string `json:"engine"`
	ContentionFree bool   `json:"contention_free"`
	Isolated       bool   `json:"isolated"`
}

type errorDoc struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	GET  /v1/route?src=S&dst=D  traced path under the current snapshot
//	     (&engine=NAME answers from that engine's tables when the
//	     snapshot carries them: the active engine plus any engine a
//	     live job requested)
//	GET  /v1/order              topology-aware MPI node order
//	GET  /v1/hsd                cached Shift-HSD summary
//	GET  /v1/fabric             fattree-fabric/v1 fabric document
//	GET  /v1/jobs               placements frozen in the snapshot
//	GET  /v1/events?limit=N&since_seq=S  fabric event journal, oldest
//	     first; since_seq returns only records with seq >= S for
//	     incremental polling (n is accepted as a synonym for limit)
//	POST /v1/faults             enqueue fail/revive/fail_random events
//	POST /v1/jobs               allocate a job (synchronous)
//	DELETE /v1/jobs?id=N        release a job (synchronous)
//	GET  /healthz               liveness + current epoch
//	GET  /metrics               obs registry snapshot; JSON by default,
//	                            Prometheus text exposition when the
//	                            Accept header asks for text/plain or
//	                            with ?format=prometheus
//	     /debug/pprof/          the usual pprof handlers
//
// Every /v1 route runs behind the max-inflight gate (429 when full) and
// the request timeout; /healthz, /metrics and pprof bypass both so the
// daemon stays observable under load.
func (m *Manager) Handler() http.Handler {
	api := http.NewServeMux()
	red := obs.NewRED(m.cfg.Metrics, "fmgr_http", nil)
	// Per-route RED handles are resolved once here, not per request:
	// the serving path pays two atomic adds and one histogram
	// observation, no lock, no map lookup — and the endpoint label is
	// the registered pattern, so label cardinality is bounded by the
	// route table.
	handle := func(pattern string, h http.HandlerFunc) {
		ep := red.Endpoint(pattern)
		api.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			h(sw, r)
			ep.Observe(sw.status, time.Since(start))
		})
	}
	handle("GET /v1/route", m.handleRoute)
	handle("GET /v1/order", m.handleOrder)
	handle("GET /v1/hsd", m.handleHSD)
	handle("GET /v1/fabric", m.handleFabric)
	handle("GET /v1/jobs", m.handleJobsList)
	handle("GET /v1/events", m.handleEvents)
	handle("POST /v1/faults", m.handleFaults)
	handle("POST /v1/jobs", m.handleJobAlloc)
	handle("DELETE /v1/jobs", m.handleJobFree)

	mux := http.NewServeMux()
	mux.Handle("/v1/", m.instrument(m.gated(http.TimeoutHandler(api, m.cfg.RequestTimeout, `{"error":"request timed out"}`))))
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// gated applies the max-inflight semaphore: requests beyond the cap get
// an immediate 429 instead of queueing.
func (m *Manager) gated(next http.Handler) http.Handler {
	throttled := m.cfg.Metrics.Counter("fmgr_http_throttled_total")
	inflight := m.cfg.Metrics.Gauge("fmgr_http_inflight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case m.gate <- struct{}{}:
			inflight.Add(1)
			defer func() {
				<-m.gate
				inflight.Add(-1)
			}()
			next.ServeHTTP(w, r)
		default:
			throttled.Inc()
			writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: "too many in-flight requests"})
		}
	})
}

// instrument counts requests and observes handling latency in
// aggregate (requests_total + latency_us, kept for compatibility).
// Per-endpoint RED instrumentation lives in the per-route wrappers
// installed by Handler, where the endpoint handle is resolved once at
// mux construction.
func (m *Manager) instrument(next http.Handler) http.Handler {
	total := m.cfg.Metrics.Counter("fmgr_http_requests_total")
	latHist := m.cfg.Metrics.MustHistogram("fmgr_http_latency_us",
		[]float64{10, 50, 100, 500, 1000, 5000, 10000, 100000, 1e6})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		total.Inc()
		next.ServeHTTP(w, r)
		latHist.Observe(float64(time.Since(start).Microseconds()))
	})
}

// statusWriter captures the status code the wrapped handler sends so
// the middleware can classify the response after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// reqSpan starts a request trace for one in every SpanSample requests;
// the rest get a nil span, which every span method treats as a no-op.
func (m *Manager) reqSpan(name string) *obs.Span {
	if m.cfg.Spans == nil {
		return nil
	}
	if n := uint64(m.cfg.SpanSample); n > 1 && m.spanSeq.Add(1)%n != 0 {
		return nil
	}
	return m.cfg.Spans.StartTrace(name)
}

func (m *Manager) handleRoute(w http.ResponseWriter, r *http.Request) {
	sp := m.reqSpan("GET /v1/route")
	defer sp.End()

	c := sp.Child("decode")
	src, err := intParam(r, "src")
	if err != nil {
		c.End()
		sp.TagStr("outcome", "bad_request")
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	dst, err := intParam(r, "dst")
	c.End()
	if err != nil {
		sp.TagStr("outcome", "bad_request")
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	sp.TagNum("src", float64(src))
	sp.TagNum("dst", float64(dst))

	c = sp.Child("snapshot")
	st := m.Current()
	n := st.Topo.NumHosts()
	c.End()
	sp.TagNum("epoch", float64(st.Epoch))
	if src < 0 || src >= n || dst < 0 || dst >= n {
		sp.TagStr("outcome", "bad_request")
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("pair %d->%d out of range [0,%d)", src, dst, n)})
		return
	}
	// ?engine= selects any engine with tables in this snapshot (the
	// active one plus every engine a live job requested); the default is
	// the active engine.
	engName, paths, routing := st.Engine, st.Paths, st.Routing
	unroutable := st.HostUnroutable
	if q := r.URL.Query().Get("engine"); q != "" && q != st.Engine {
		tb, ok := st.ByEngine[q]
		if !ok {
			sp.TagStr("outcome", "bad_request")
			names := make([]string, 0, len(st.ByEngine))
			for name := range st.ByEngine {
				names = append(names, name)
			}
			sort.Strings(names)
			writeJSON(w, http.StatusNotFound, errorDoc{
				Error: fmt.Sprintf("engine %q has no tables in epoch %d (available: %s)",
					q, st.Epoch, strings.Join(names, ", ")),
			})
			return
		}
		engName, paths, routing = q, tb.Compiled, tb.Router.Label()
		unroutable = func(j int) bool {
			for _, u := range tb.Unroutable {
				if u == j {
					return true
				}
			}
			return false
		}
	}
	doc := RouteDoc{Schema: RouteSchema, Epoch: st.Epoch, Engine: engName, Routing: routing, Src: src, Dst: dst, Hops: []HopDoc{}}
	if src == dst {
		writeJSON(w, http.StatusOK, doc)
		return
	}

	c = sp.Child("lookup")
	if unroutable(src) || unroutable(dst) || paths.Broken(src, dst) {
		c.End()
		sp.TagStr("outcome", "unroutable")
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{
			Error: fmt.Sprintf("no path %d->%d under epoch %d (%d dead links)", src, dst, st.Epoch, len(st.FailedLinks)),
		})
		return
	}
	path, err := paths.PackedPath(src, dst)
	if err != nil {
		c.End()
		sp.TagStr("outcome", "error")
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
		return
	}
	t := st.Topo
	cur := t.HostID(src)
	for _, e := range path {
		lk := &t.Links[route.EntryLink(e)]
		from := t.Node(cur)
		var to = cur
		if route.EntryUp(e) {
			to = t.Ports[lk.Upper].Node
		} else {
			to = t.Ports[lk.Lower].Node
		}
		doc.Hops = append(doc.Hops, HopDoc{
			Link: int(route.EntryLink(e)),
			Up:   route.EntryUp(e),
			From: from.String(),
			To:   t.Node(to).String(),
		})
		cur = to
	}
	c.End()

	c = sp.Child("encode")
	writeJSON(w, http.StatusOK, doc)
	c.End()
	sp.TagNum("hops", float64(len(doc.Hops)))
}

func (m *Manager) handleOrder(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	writeJSON(w, http.StatusOK, OrderDoc{
		Schema: OrderSchema,
		Epoch:  st.Epoch,
		Label:  st.Ordering.Label,
		HostOf: st.Ordering.HostOf,
	})
}

func (m *Manager) handleHSD(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	rep := st.HSD
	writeJSON(w, http.StatusOK, HSDDoc{
		Epoch:          st.Epoch,
		Engine:         st.Engine,
		Sequence:       rep.Sequence,
		Ordering:       rep.Ordering,
		Routing:        rep.Routing,
		Stages:         len(rep.Stages),
		MaxHSD:         rep.MaxHSD(),
		AvgMaxHSD:      rep.AvgMaxHSD(),
		ContentionFree: rep.ContentionFree(),
		SyncBandwidth:  rep.SyncEffectiveBandwidth(),
		FailedLinks:    len(st.FailedLinks),
		Unroutable:     len(st.Unroutable),
		BrokenPairs:    st.Paths.NumBroken(),
	})
}

func (m *Manager) handleFabric(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	doc := fabric.NewDoc(st.Topo)
	doc.Routing = st.Routing
	fd := &fabric.FaultDoc{FailedLinks: []int{}, UnroutableHosts: []int{}, BrokenPairs: st.BrokenPairs}
	for _, l := range st.FailedLinks {
		fd.FailedLinks = append(fd.FailedLinks, int(l))
	}
	fd.UnroutableHosts = append(fd.UnroutableHosts, st.Unroutable...)
	doc.Faults = fd
	doc.HSD = &fabric.HSDDoc{
		Sequence:       st.HSD.Sequence,
		Ordering:       st.HSD.Ordering,
		Stages:         len(st.HSD.Stages),
		MaxHSD:         st.HSD.MaxHSD(),
		AvgMaxHSD:      st.HSD.AvgMaxHSD(),
		ContentionFree: st.HSD.ContentionFree(),
	}
	writeJSON(w, http.StatusOK, struct {
		Epoch  uint64 `json:"epoch"`
		Engine string `json:"engine"`
		*fabric.Doc
	}{st.Epoch, st.Engine, doc})
}

// faultsRequest is the POST /v1/faults body.
type faultsRequest struct {
	Fail       []int `json:"fail"`
	Revive     []int `json:"revive"`
	FailRandom int   `json:"fail_random"`
}

func (m *Manager) handleFaults(w http.ResponseWriter, r *http.Request) {
	var req faultsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad JSON: " + err.Error()})
		return
	}
	sent, err := m.InjectFaults(linkIDs(req.Fail), linkIDs(req.Revive), req.FailRandom)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		Accepted int    `json:"accepted"`
		Epoch    uint64 `json:"epoch"`
	}{sent, m.Current().Epoch})
}

// jobRequest is the POST /v1/jobs body. Engine, when set, asks for the
// job's traffic to be routed by that registry engine; the daemon then
// maintains the engine's tables alongside the active ones every epoch.
type jobRequest struct {
	Size    int    `json:"size"`
	Aligned bool   `json:"aligned"`
	Engine  string `json:"engine"`
}

func (m *Manager) handleJobAlloc(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad JSON: " + err.Error()})
		return
	}
	if req.Engine != "" && !engineKnown(req.Engine) {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf(
			"unknown engine %q (registered: %s)", req.Engine, strings.Join(engine.Names(), ", "))})
		return
	}
	a, err := m.AllocJobEngine(req.Size, req.Aligned, req.Engine)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error()})
		return
	}
	eng := req.Engine
	if eng == "" {
		eng = m.cfg.Engine
	}
	writeJSON(w, http.StatusOK, jobDoc(a, eng))
}

// engineKnown reports whether a registry engine with that name exists.
func engineKnown(name string) bool {
	for _, n := range engine.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func (m *Manager) handleJobFree(w http.ResponseWriter, r *http.Request) {
	id, err := intParam(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	if err := m.FreeJob(sched.JobID(id)); err != nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Released int `json:"released"`
	}{id})
}

func (m *Manager) handleJobsList(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	jobs := make([]JobDoc, 0, len(st.Jobs))
	for _, j := range st.Jobs {
		jobs = append(jobs, jobDoc(j, st.JobEngine(j.ID)))
	}
	writeJSON(w, http.StatusOK, struct {
		Epoch uint64   `json:"epoch"`
		Jobs  []JobDoc `json:"jobs"`
	}{st.Epoch, jobs})
}

// EventsDoc is the GET /v1/events response body.
type EventsDoc struct {
	Schema  string        `json:"schema"`
	Epoch   uint64        `json:"epoch"`
	Dropped uint64        `json:"dropped"`
	Events  []EventRecord `json:"events"`
}

func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 0
	// ?limit is the documented spelling; ?n remains as the original.
	for _, key := range []string{"n", "limit"} {
		if s := q.Get(key); s != "" {
			var err error
			if n, err = strconv.Atoi(s); err != nil {
				writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad \"" + key + "\": " + err.Error()})
				return
			}
		}
	}
	var recs []EventRecord
	var dropped uint64
	if s := q.Get("since_seq"); s != "" {
		since, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad \"since_seq\": " + err.Error()})
			return
		}
		recs, dropped = m.EventsSince(since, n)
	} else {
		recs, dropped = m.Events(n)
	}
	if recs == nil {
		recs = []EventRecord{}
	}
	writeJSON(w, http.StatusOK, EventsDoc{
		Schema:  EventsSchema,
		Epoch:   m.Current().Epoch,
		Dropped: dropped,
		Events:  recs,
	})
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	writeJSON(w, http.StatusOK, struct {
		OK          bool   `json:"ok"`
		Epoch       uint64 `json:"epoch"`
		FailedLinks int    `json:"failed_links"`
	}{true, st.Epoch, len(st.FailedLinks)})
}

func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := m.cfg.Metrics.Snapshot()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = snap.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = snap.WriteJSON(w)
}

// wantsPrometheus decides the /metrics representation: the explicit
// ?format=prometheus override wins, otherwise an Accept header naming
// text/plain or OpenMetrics selects the text exposition. JSON stays
// the default for bare curls and existing tooling.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func jobDoc(a *sched.Allocation, eng string) JobDoc {
	return JobDoc{
		ID:             int(a.ID),
		Size:           len(a.Hosts),
		Hosts:          a.Hosts,
		Engine:         eng,
		ContentionFree: a.ContentionFree,
		Isolated:       a.Isolated,
	}
}

func linkIDs(in []int) []topo.LinkID {
	out := make([]topo.LinkID, len(in))
	for i, l := range in {
		out[i] = topo.LinkID(l)
	}
	return out
}

func intParam(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %q: %v", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
