package fmgr

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/sched"
	"fattree/internal/topo"
)

// RouteSchema stamps GET /v1/route responses.
const RouteSchema = "fattree-route/v1"

// HopDoc is one hop of a served path.
type HopDoc struct {
	Link int    `json:"link"`
	Up   bool   `json:"up"`
	From string `json:"from"`
	To   string `json:"to"`
}

// RouteDoc is the GET /v1/route response body.
type RouteDoc struct {
	Schema  string   `json:"schema"`
	Epoch   uint64   `json:"epoch"`
	Routing string   `json:"routing"`
	Src     int      `json:"src"`
	Dst     int      `json:"dst"`
	Hops    []HopDoc `json:"hops"`
}

// OrderDoc is the GET /v1/order response body.
type OrderDoc struct {
	Schema string `json:"schema"`
	Epoch  uint64 `json:"epoch"`
	Label  string `json:"label"`
	HostOf []int  `json:"host_of"`
}

// OrderSchema stamps GET /v1/order responses.
const OrderSchema = "fattree-order/v1"

// HSDDoc is the GET /v1/hsd response body: the cached Shift summary of
// the current snapshot.
type HSDDoc struct {
	Epoch          uint64  `json:"epoch"`
	Sequence       string  `json:"sequence"`
	Ordering       string  `json:"ordering"`
	Routing        string  `json:"routing"`
	Stages         int     `json:"stages"`
	MaxHSD         int     `json:"max_hsd"`
	AvgMaxHSD      float64 `json:"avg_max_hsd"`
	ContentionFree bool    `json:"contention_free"`
	SyncBandwidth  float64 `json:"sync_bandwidth"`
	FailedLinks    int     `json:"failed_links"`
	Unroutable     int     `json:"unroutable_hosts"`
	BrokenPairs    int     `json:"broken_pairs"`
}

// JobDoc is one allocation in job responses.
type JobDoc struct {
	ID             int   `json:"id"`
	Size           int   `json:"size"`
	Hosts          []int `json:"hosts"`
	ContentionFree bool  `json:"contention_free"`
	Isolated       bool  `json:"isolated"`
}

type errorDoc struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	GET  /v1/route?src=S&dst=D  traced path under the current snapshot
//	GET  /v1/order              topology-aware MPI node order
//	GET  /v1/hsd                cached Shift-HSD summary
//	GET  /v1/fabric             fattree-fabric/v1 fabric document
//	GET  /v1/jobs               placements frozen in the snapshot
//	POST /v1/faults             enqueue fail/revive/fail_random events
//	POST /v1/jobs               allocate a job (synchronous)
//	DELETE /v1/jobs?id=N        release a job (synchronous)
//	GET  /healthz               liveness + current epoch
//	GET  /metrics               obs registry snapshot (JSON)
//	     /debug/pprof/          the usual pprof handlers
//
// Every /v1 route runs behind the max-inflight gate (429 when full) and
// the request timeout; /healthz, /metrics and pprof bypass both so the
// daemon stays observable under load.
func (m *Manager) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("GET /v1/route", m.handleRoute)
	api.HandleFunc("GET /v1/order", m.handleOrder)
	api.HandleFunc("GET /v1/hsd", m.handleHSD)
	api.HandleFunc("GET /v1/fabric", m.handleFabric)
	api.HandleFunc("GET /v1/jobs", m.handleJobsList)
	api.HandleFunc("POST /v1/faults", m.handleFaults)
	api.HandleFunc("POST /v1/jobs", m.handleJobAlloc)
	api.HandleFunc("DELETE /v1/jobs", m.handleJobFree)

	mux := http.NewServeMux()
	mux.Handle("/v1/", m.instrument(m.gated(http.TimeoutHandler(api, m.cfg.RequestTimeout, `{"error":"request timed out"}`))))
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// gated applies the max-inflight semaphore: requests beyond the cap get
// an immediate 429 instead of queueing.
func (m *Manager) gated(next http.Handler) http.Handler {
	throttled := m.cfg.Metrics.Counter("fmgr_http_throttled_total")
	inflight := m.cfg.Metrics.Gauge("fmgr_http_inflight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case m.gate <- struct{}{}:
			inflight.Add(1)
			defer func() {
				<-m.gate
				inflight.Add(-1)
			}()
			next.ServeHTTP(w, r)
		default:
			throttled.Inc()
			writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: "too many in-flight requests"})
		}
	})
}

// instrument counts requests and observes handling latency.
func (m *Manager) instrument(next http.Handler) http.Handler {
	total := m.cfg.Metrics.Counter("fmgr_http_requests_total")
	latHist := m.cfg.Metrics.MustHistogram("fmgr_http_latency_us",
		[]float64{10, 50, 100, 500, 1000, 5000, 10000, 100000, 1e6})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		total.Inc()
		next.ServeHTTP(w, r)
		latHist.Observe(float64(time.Since(start).Microseconds()))
	})
}

func (m *Manager) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	dst, err := intParam(r, "dst")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	st := m.Current()
	n := st.Topo.NumHosts()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("pair %d->%d out of range [0,%d)", src, dst, n)})
		return
	}
	doc := RouteDoc{Schema: RouteSchema, Epoch: st.Epoch, Routing: st.LFT.Name, Src: src, Dst: dst, Hops: []HopDoc{}}
	if src == dst {
		writeJSON(w, http.StatusOK, doc)
		return
	}
	if st.HostUnroutable(src) || st.HostUnroutable(dst) || st.Paths.Broken(src, dst) {
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{
			Error: fmt.Sprintf("no path %d->%d under epoch %d (%d dead links)", src, dst, st.Epoch, len(st.FailedLinks)),
		})
		return
	}
	path, err := st.Paths.PackedPath(src, dst)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
		return
	}
	t := st.Topo
	cur := t.HostID(src)
	for _, e := range path {
		lk := &t.Links[route.EntryLink(e)]
		from := t.Node(cur)
		var to = cur
		if route.EntryUp(e) {
			to = t.Ports[lk.Upper].Node
		} else {
			to = t.Ports[lk.Lower].Node
		}
		doc.Hops = append(doc.Hops, HopDoc{
			Link: int(route.EntryLink(e)),
			Up:   route.EntryUp(e),
			From: from.String(),
			To:   t.Node(to).String(),
		})
		cur = to
	}
	writeJSON(w, http.StatusOK, doc)
}

func (m *Manager) handleOrder(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	writeJSON(w, http.StatusOK, OrderDoc{
		Schema: OrderSchema,
		Epoch:  st.Epoch,
		Label:  st.Ordering.Label,
		HostOf: st.Ordering.HostOf,
	})
}

func (m *Manager) handleHSD(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	rep := st.HSD
	writeJSON(w, http.StatusOK, HSDDoc{
		Epoch:          st.Epoch,
		Sequence:       rep.Sequence,
		Ordering:       rep.Ordering,
		Routing:        rep.Routing,
		Stages:         len(rep.Stages),
		MaxHSD:         rep.MaxHSD(),
		AvgMaxHSD:      rep.AvgMaxHSD(),
		ContentionFree: rep.ContentionFree(),
		SyncBandwidth:  rep.SyncEffectiveBandwidth(),
		FailedLinks:    len(st.FailedLinks),
		Unroutable:     len(st.Unroutable),
		BrokenPairs:    st.Paths.NumBroken(),
	})
}

func (m *Manager) handleFabric(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	doc := fabric.NewDoc(st.Topo)
	doc.Routing = st.LFT.Name
	fd := &fabric.FaultDoc{FailedLinks: []int{}, UnroutableHosts: []int{}, BrokenPairs: st.BrokenPairs}
	for _, l := range st.FailedLinks {
		fd.FailedLinks = append(fd.FailedLinks, int(l))
	}
	fd.UnroutableHosts = append(fd.UnroutableHosts, st.Unroutable...)
	doc.Faults = fd
	doc.HSD = &fabric.HSDDoc{
		Sequence:       st.HSD.Sequence,
		Ordering:       st.HSD.Ordering,
		Stages:         len(st.HSD.Stages),
		MaxHSD:         st.HSD.MaxHSD(),
		AvgMaxHSD:      st.HSD.AvgMaxHSD(),
		ContentionFree: st.HSD.ContentionFree(),
	}
	writeJSON(w, http.StatusOK, struct {
		Epoch uint64 `json:"epoch"`
		*fabric.Doc
	}{st.Epoch, doc})
}

// faultsRequest is the POST /v1/faults body.
type faultsRequest struct {
	Fail       []int `json:"fail"`
	Revive     []int `json:"revive"`
	FailRandom int   `json:"fail_random"`
}

func (m *Manager) handleFaults(w http.ResponseWriter, r *http.Request) {
	var req faultsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad JSON: " + err.Error()})
		return
	}
	sent, err := m.InjectFaults(linkIDs(req.Fail), linkIDs(req.Revive), req.FailRandom)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		Accepted int    `json:"accepted"`
		Epoch    uint64 `json:"epoch"`
	}{sent, m.Current().Epoch})
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Size    int  `json:"size"`
	Aligned bool `json:"aligned"`
}

func (m *Manager) handleJobAlloc(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad JSON: " + err.Error()})
		return
	}
	a, err := m.AllocJob(req.Size, req.Aligned)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, jobDoc(a))
}

func (m *Manager) handleJobFree(w http.ResponseWriter, r *http.Request) {
	id, err := intParam(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	if err := m.FreeJob(sched.JobID(id)); err != nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Released int `json:"released"`
	}{id})
}

func (m *Manager) handleJobsList(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	jobs := make([]JobDoc, 0, len(st.Jobs))
	for _, j := range st.Jobs {
		jobs = append(jobs, jobDoc(j))
	}
	writeJSON(w, http.StatusOK, struct {
		Epoch uint64   `json:"epoch"`
		Jobs  []JobDoc `json:"jobs"`
	}{st.Epoch, jobs})
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := m.Current()
	writeJSON(w, http.StatusOK, struct {
		OK          bool   `json:"ok"`
		Epoch       uint64 `json:"epoch"`
		FailedLinks int    `json:"failed_links"`
	}{true, st.Epoch, len(st.FailedLinks)})
}

func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := m.cfg.Metrics.Snapshot().WriteJSON(w); err != nil {
		// Too late for a status code; the connection will surface it.
		return
	}
}

func jobDoc(a *sched.Allocation) JobDoc {
	return JobDoc{
		ID:             int(a.ID),
		Size:           len(a.Hosts),
		Hosts:          a.Hosts,
		ContentionFree: a.ContentionFree,
		Isolated:       a.Isolated,
	}
}

func linkIDs(in []int) []topo.LinkID {
	out := make([]topo.LinkID, len(in))
	for i, l := range in {
		out[i] = topo.LinkID(l)
	}
	return out
}

func intParam(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %q: %v", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
