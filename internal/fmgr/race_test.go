package fmgr

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"fattree/internal/topo"
)

// TestConcurrentRouteDuringReroute is the daemon's core consistency
// guarantee under load: many goroutines hammer /v1/route while faults
// are injected and revived concurrently, and every served path must be
// exactly the trace of ONE snapshot the manager ever made current —
// valid under either the old or the new tables, never a mix. Run with
// -race to also prove the RCU snapshot discipline data-race free.
func TestConcurrentRouteDuringReroute(t *testing.T) {
	const (
		readers     = 8
		perReader   = 400
		faultRounds = 6
	)
	var (
		mu        sync.Mutex
		snapshots = map[uint64]*FabricState{}
	)
	m := newManager(t, "128", func(c *Config) {
		c.Debounce = 2 * time.Millisecond
		c.MaxInflight = readers + 4
	})
	m.OnSwap = func(st *FabricState) {
		// OnSwap runs before the pointer store, so by the time any
		// response carries an epoch, its snapshot is recorded here.
		mu.Lock()
		snapshots[st.Epoch] = st
		mu.Unlock()
	}
	m.Start()
	h := m.Handler()
	n := m.t.NumHosts()

	var wg sync.WaitGroup
	// Fault injector: rounds of random fabric faults plus a host-uplink
	// kill, then full revive, so readers race real degraded epochs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		uplink := m.t.Ports[m.t.Host(3).Up[0]].Link
		for round := 0; round < faultRounds; round++ {
			if _, err := m.InjectFaults([]topo.LinkID{uplink}, nil, 2); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(8 * time.Millisecond)
			st := m.Current()
			if _, err := m.InjectFaults(nil, st.FailedLinks, 0); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(8 * time.Millisecond)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perReader; i++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				req := httptest.NewRequest("GET", "/v1/route", nil)
				q := req.URL.Query()
				q.Set("src", strconv.Itoa(src))
				q.Set("dst", strconv.Itoa(dst))
				req.URL.RawQuery = q.Encode()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					var doc RouteDoc
					if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
						t.Errorf("reader: %v", err)
						return
					}
					mu.Lock()
					st := snapshots[doc.Epoch]
					mu.Unlock()
					if st == nil {
						t.Errorf("response carries unknown epoch %d", doc.Epoch)
						return
					}
					if src == dst {
						if len(doc.Hops) != 0 {
							t.Errorf("self pair %d served %d hops", src, len(doc.Hops))
						}
						continue
					}
					want, err := st.LFT.Trace(src, dst)
					if err != nil {
						t.Errorf("epoch %d served %d->%d but its own tables cannot trace it: %v",
							doc.Epoch, src, dst, err)
						return
					}
					if len(doc.Hops) != len(want) {
						t.Errorf("epoch %d %d->%d: served %d hops, snapshot traces %d",
							doc.Epoch, src, dst, len(doc.Hops), len(want))
						return
					}
					for k := range want {
						if doc.Hops[k].Link != int(want[k].Link) || doc.Hops[k].Up != want[k].Up {
							t.Errorf("epoch %d %d->%d hop %d: served %+v, snapshot %+v — mixed-snapshot path",
								doc.Epoch, src, dst, k, doc.Hops[k], want[k])
							return
						}
					}
				case http.StatusServiceUnavailable:
					// The pair was broken under the serving snapshot;
					// legitimate while host 3 is cut off.
				default:
					t.Errorf("route %d->%d: status %d: %s", src, dst, rec.Code, rec.Body.String())
					return
				}
			}
		}(int64(r + 1))
	}
	wg.Wait()

	// The injector must have actually caused swaps for the test to mean
	// anything.
	if m.Current().Epoch < 3 {
		t.Fatalf("only reached epoch %d; reroutes did not overlap the readers", m.Current().Epoch)
	}
}
