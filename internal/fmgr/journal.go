package fmgr

import (
	"sync"
	"time"
)

// EventsSchema stamps GET /v1/events responses.
const EventsSchema = "fattree-events/v1"

// Event kinds recorded in the fabric journal. Inputs (what the manager
// was told) and lifecycle phases (what it did about them) share one
// stream, so a reader sees fault → reroute → validate → swap in order.
const (
	EvFault       = "fault"        // a link was failed
	EvRevive      = "revive"       // a link was revived
	EvFaultRandom = "fault_random" // a random fault draw
	EvAlloc       = "alloc"        // a job placement request
	EvFree        = "free"         // a job release
	EvReroute     = "reroute"      // tables + arena + HSD rebuilt
	EvValidate    = "validate"     // invariant check of the candidate
	EvSwap        = "swap"         // candidate became current
)

// Event outcomes.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// EventRecord is one entry of the fabric event journal: what happened,
// when (wall clock), under or producing which epoch, how long it took
// and how it ended. Detail is a short human-readable elaboration
// (link id, job size, broken-pair count, error text).
type EventRecord struct {
	Seq        uint64 `json:"seq"`
	TimeUnixNS int64  `json:"time_unix_ns"`
	Kind       string `json:"kind"`
	Epoch      uint64 `json:"epoch"`
	// Engine names the routing engine involved: the engine that produced
	// the tables on reroute/validate/swap records, or the one a job
	// requested on alloc records. Empty when no engine was involved.
	Engine     string `json:"engine,omitempty"`
	DurationUS int64  `json:"duration_us,omitempty"`
	Outcome    string `json:"outcome,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// Journal is a bounded in-memory ring of EventRecords: the fabric
// manager's flight recorder. Writes never block and never grow memory
// past the capacity; once full, the oldest records fall off and the
// Dropped count says how many. Safe for concurrent use; the single
// writer is the manager's event loop but readers snapshot from request
// goroutines.
type Journal struct {
	mu   sync.Mutex
	buf  []EventRecord
	cap  int
	next uint64 // seq of the next record == total ever recorded
}

// NewJournal returns a ring holding at most capacity records
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]EventRecord, 0, capacity), cap: capacity}
}

// Record appends one record, stamping Seq and, if unset, the wall-clock
// time. No-op on a nil journal.
func (j *Journal) Record(rec EventRecord) {
	if j == nil {
		return
	}
	if rec.TimeUnixNS == 0 {
		rec.TimeUnixNS = time.Now().UnixNano()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Seq = j.next
	j.next++
	if len(j.buf) < j.cap {
		j.buf = append(j.buf, rec)
		return
	}
	j.buf[int(rec.Seq)%j.cap] = rec
}

// Snapshot returns up to n kept records, oldest first (n <= 0 means
// all), plus how many older records the ring has dropped.
func (j *Journal) Snapshot(n int) (recs []EventRecord, dropped uint64) {
	if j == nil {
		return nil, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	kept := len(j.buf)
	dropped = j.next - uint64(kept)
	if n <= 0 || n > kept {
		n = kept
	}
	recs = make([]EventRecord, 0, n)
	// Oldest kept record is seq j.next-kept at index (j.next-kept)%cap.
	for i := kept - n; i < kept; i++ {
		seq := j.next - uint64(kept) + uint64(i)
		if kept < j.cap {
			recs = append(recs, j.buf[i])
		} else {
			recs = append(recs, j.buf[int(seq)%j.cap])
		}
	}
	return recs, dropped
}

// SnapshotSince returns up to n kept records with Seq >= since, oldest
// first (n <= 0 means all), plus how many matching records the ring
// has already dropped — the incremental-polling companion to Snapshot.
// A poller passes its last seen seq + 1 and gets only what is new; a
// non-zero dropped return means it fell behind the ring.
func (j *Journal) SnapshotSince(since uint64, n int) (recs []EventRecord, dropped uint64) {
	if j == nil {
		return nil, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	kept := len(j.buf)
	oldest := j.next - uint64(kept) // seq of the oldest kept record
	if since > oldest {
		// Everything before `since` was dropped deliberately by the
		// caller, not by the ring.
		dropped = 0
	} else {
		dropped = oldest - since
	}
	if since < oldest {
		since = oldest
	}
	if since > j.next {
		since = j.next
	}
	match := int(j.next - since)
	if n <= 0 || n > match {
		n = match
	}
	recs = make([]EventRecord, 0, n)
	for seq := since; seq < since+uint64(n); seq++ {
		if kept < j.cap {
			recs = append(recs, j.buf[int(seq-oldest)])
		} else {
			recs = append(recs, j.buf[int(seq)%j.cap])
		}
	}
	return recs, dropped
}

// Len returns the number of kept records.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.buf)
}
