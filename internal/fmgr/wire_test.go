package fmgr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fattree/internal/sched"
	"fattree/internal/topo"
	"fattree/internal/wire"
)

// startWireConn serves the binary protocol on an in-process pipe and
// returns the client end.
func startWireConn(t *testing.T, m *Manager) net.Conn {
	t.Helper()
	srv, cli := net.Pipe()
	go m.ServeWire(srv)
	t.Cleanup(func() { cli.Close() })
	return cli
}

// wireCall does one request/response round-trip.
func wireCall(t *testing.T, c net.Conn, req wire.Message) wire.Message {
	t.Helper()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if err := wire.WriteMessage(c, req); err != nil {
		t.Fatalf("write %T: %v", req, err)
	}
	resp, err := wire.ReadMessage(c)
	if err != nil {
		t.Fatalf("read after %T: %v", req, err)
	}
	return resp
}

func TestWireEpochProbeAndOrder(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	c := startWireConn(t, m)

	er, ok := wireCall(t, c, wire.EpochReq{}).(*wire.EpochResp)
	if !ok || er.Epoch != m.Current().Epoch || er.Engine != m.Current().Engine {
		t.Fatalf("epoch probe: %#v (current epoch %d)", er, m.Current().Epoch)
	}

	or, ok := wireCall(t, c, wire.OrderReq{}).(*wire.OrderResp)
	if !ok {
		t.Fatalf("order: %#v", or)
	}
	st := m.Current()
	if or.Epoch != st.Epoch || or.Label != st.Ordering.Label || len(or.HostOf) != len(st.Ordering.HostOf) {
		t.Fatalf("order resp %#v vs snapshot %q/%d hosts", or, st.Ordering.Label, len(st.Ordering.HostOf))
	}
	for i, h := range st.Ordering.HostOf {
		if or.HostOf[i] != uint32(h) {
			t.Fatalf("host_of[%d] = %d, want %d", i, or.HostOf[i], h)
		}
	}
}

func TestWireEpochNegotiation(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	c := startWireConn(t, m)
	epoch := m.Current().Epoch

	// Matching hint: NotModified, no table touch.
	nm, ok := wireCall(t, c, &wire.RouteSetReq{EpochHint: epoch, Pairs: [][2]uint32{{0, 1}}}).(*wire.NotModified)
	if !ok || nm.Epoch != epoch {
		t.Fatalf("matching hint: %#v", nm)
	}

	// Fault → new epoch → the stale hint must now yield a full answer
	// stamped with the new epoch.
	if _, err := m.InjectFaults(nil, nil, 1); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, m, epoch+1)
	rs, ok := wireCall(t, c, &wire.RouteSetReq{EpochHint: epoch, Pairs: [][2]uint32{{0, 1}}}).(*wire.RouteSetResp)
	if !ok || rs.Epoch != epoch+1 {
		t.Fatalf("stale hint: %#v (want epoch %d)", rs, epoch+1)
	}
}

func TestWireErrors(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	c := startWireConn(t, m)
	n := uint32(m.t.NumHosts())

	cases := []struct {
		req  wire.Message
		code uint8
	}{
		{&wire.RouteSetReq{Pairs: [][2]uint32{{0, n}}}, wire.CodeBadRequest},
		{&wire.RouteSetReq{Engine: "no-such-engine", Pairs: [][2]uint32{{0, 1}}}, wire.CodeNotFound},
		{&wire.RouteSetReq{ByJob: true, Job: 999}, wire.CodeNotFound},
		{&wire.EpochResp{Epoch: 1}, wire.CodeBadRequest}, // response type as request
	}
	for i, tc := range cases {
		er, ok := wireCall(t, c, tc.req).(*wire.ErrorResp)
		if !ok || er.Code != tc.code {
			t.Fatalf("case %d (%#v): got %#v, want code %d", i, tc.req, er, tc.code)
		}
	}

	// Errors must not kill the connection.
	if _, ok := wireCall(t, c, wire.EpochReq{}).(*wire.EpochResp); !ok {
		t.Fatal("connection dead after error responses")
	}
}

// TestWireJobRouteSetPrecomputed proves job-mode serving is the
// placement-time cache: the served frame must be byte-identical to the
// snapshot's precomputed bytes, cover exactly the job's ordered pair
// set, and carry hops matching the compiled arena.
func TestWireJobRouteSetPrecomputed(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	a, err := m.AllocJob(8, false)
	if err != nil {
		t.Fatal(err)
	}
	st := waitEpoch(t, m, 2) // placement rebuild
	jw, ok := st.JobRouteSets[a.ID]
	if !ok {
		t.Fatalf("epoch %d has no precomputed set for job %d", st.Epoch, a.ID)
	}
	if jw.Code != 200 || jw.Pairs != len(a.Hosts)*(len(a.Hosts)-1) {
		t.Fatalf("precomputed frame code=%d pairs=%d", jw.Code, jw.Pairs)
	}
	frame := jw.Frame

	c := startWireConn(t, m)
	rs, ok := wireCall(t, c, &wire.RouteSetReq{ByJob: true, Job: uint64(a.ID)}).(*wire.RouteSetResp)
	if !ok {
		t.Fatalf("job route set: %#v", rs)
	}
	if got := wire.EncodeFrame(rs); string(got) != string(frame) {
		t.Fatal("served job frame differs from the precomputed snapshot bytes")
	}
	want := len(a.Hosts) * (len(a.Hosts) - 1)
	if len(rs.Pairs) != want {
		t.Fatalf("%d pairs, want %d (ordered pairs of %d hosts)", len(rs.Pairs), want, len(a.Hosts))
	}
	for _, p := range rs.Pairs {
		path, err := st.Paths.PackedPath(int(p.Src), int(p.Dst))
		if err != nil {
			t.Fatalf("%d->%d: %v", p.Src, p.Dst, err)
		}
		if !p.OK || len(p.Hops) != len(path) {
			t.Fatalf("%d->%d: ok=%v hops=%d, arena %d", p.Src, p.Dst, p.OK, len(p.Hops), len(path))
		}
		for k, e := range path {
			if p.Hops[k] != uint32(e) {
				t.Fatalf("%d->%d hop %d: %d != %d", p.Src, p.Dst, k, p.Hops[k], uint32(e))
			}
		}
	}

	// Freeing the job must evict its precomputed set at the next epoch.
	if err := m.FreeJob(a.ID); err != nil {
		t.Fatal(err)
	}
	st = waitEpoch(t, m, st.Epoch+1)
	if _, ok := st.JobRouteSets[a.ID]; ok {
		t.Fatalf("freed job %d still has a route set in epoch %d", a.ID, st.Epoch)
	}
	// A matching epoch hint must not resurrect it: validation precedes
	// negotiation, so the freed job answers NotFound, never NotModified
	// (which would validate a client cache the server cannot serve).
	er, ok := wireCall(t, c, &wire.RouteSetReq{ByJob: true, Job: uint64(a.ID), EpochHint: st.Epoch}).(*wire.ErrorResp)
	if !ok || er.Code != wire.CodeNotFound {
		t.Fatalf("freed job with matching hint: %#v", er)
	}
}

// TestWireJobFrameBudget pins the encode-time byte budget: a job route
// set that encodes past wire.MaxPayload must be stored as a decodable
// ErrorResp frame (CodeInternal, observation code 500), never as a
// frame every peer rejects unread with ErrTooLarge.
func TestWireJobFrameBudget(t *testing.T) {
	hops := make([]uint32, 14_000_000)
	for i := range hops {
		hops[i] = 0xFFFFFFF0 // 5-byte varints push the payload past 64 MiB
	}
	big := &wire.RouteSetResp{Epoch: 3, Engine: "dmodk", Routing: "d-mod-k",
		Pairs: []wire.PairRoute{{Src: 0, Dst: 1, OK: true, Hops: hops}}}
	jw := encodeJobFrame(7, 1, big)
	if jw.Code != 500 || jw.Pairs != 0 {
		t.Fatalf("oversized set stored as code=%d pairs=%d", jw.Code, jw.Pairs)
	}
	msg, err := wire.ReadMessage(bytes.NewReader(jw.Frame))
	if err != nil {
		t.Fatalf("stored frame does not decode: %v", err)
	}
	er, ok := msg.(*wire.ErrorResp)
	if !ok || er.Code != wire.CodeInternal {
		t.Fatalf("stored frame decodes to %#v, want CodeInternal ErrorResp", msg)
	}

	// A set inside the budget passes through byte-identical.
	small := &wire.RouteSetResp{Epoch: 3, Engine: "dmodk", Routing: "d-mod-k",
		Pairs: []wire.PairRoute{{Src: 0, Dst: 1, OK: true, Hops: []uint32{2, 4}}}}
	jw = encodeJobFrame(7, 1, small)
	if jw.Code != 200 || jw.Pairs != 1 || !bytes.Equal(jw.Frame, wire.EncodeFrame(small)) {
		t.Fatalf("small set stored as code=%d pairs=%d", jw.Code, jw.Pairs)
	}
}

// TestWireJSONBinaryEquivalence is the cross-protocol conformance wall:
// on both a healthy and a faulted fabric, every /v1/route answer must —
// after canonicalizing JSON hops back to packed entries — byte-compare
// with its binary RouteSet counterpart, 503s must map to OK=false, and
// /v1/order must equal the binary order. A divergence means the two
// protocols serve different fabrics.
func TestWireJSONBinaryEquivalence(t *testing.T) {
	m := newManager(t, "rlft2:4,8", nil)
	m.Start()
	h := m.Handler()
	c := startWireConn(t, m)
	n := m.t.NumHosts()

	check := func(t *testing.T) {
		st := m.Current()
		var pairs [][2]uint32
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				pairs = append(pairs, [2]uint32{uint32(s), uint32(d)})
			}
		}
		rs, ok := wireCall(t, c, &wire.RouteSetReq{Pairs: pairs}).(*wire.RouteSetResp)
		if !ok {
			t.Fatalf("route set: %#v", rs)
		}
		if rs.Epoch != st.Epoch {
			t.Fatalf("binary epoch %d, snapshot %d", rs.Epoch, st.Epoch)
		}
		for _, p := range rs.Pairs {
			req := httptest.NewRequest("GET",
				fmt.Sprintf("/v1/route?src=%d&dst=%d", p.Src, p.Dst), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
				var doc RouteDoc
				if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
					t.Fatal(err)
				}
				if doc.Epoch != rs.Epoch {
					t.Fatalf("%d->%d: JSON epoch %d, binary %d", p.Src, p.Dst, doc.Epoch, rs.Epoch)
				}
				if doc.Engine != rs.Engine || doc.Routing != rs.Routing {
					t.Fatalf("%d->%d: JSON %s/%s, binary %s/%s",
						p.Src, p.Dst, doc.Engine, doc.Routing, rs.Engine, rs.Routing)
				}
				// Canonicalize: JSON hop (link, up) -> packed entry.
				if !p.OK {
					t.Fatalf("%d->%d: JSON 200 but binary not-OK", p.Src, p.Dst)
				}
				if len(doc.Hops) != len(p.Hops) {
					t.Fatalf("%d->%d: JSON %d hops, binary %d", p.Src, p.Dst, len(doc.Hops), len(p.Hops))
				}
				for k, hop := range doc.Hops {
					packed := uint32(hop.Link) << 1
					if hop.Up {
						packed |= 1
					}
					if packed != p.Hops[k] {
						t.Fatalf("%d->%d hop %d: JSON packs to %d, binary %d",
							p.Src, p.Dst, k, packed, p.Hops[k])
					}
				}
			case http.StatusServiceUnavailable:
				if p.OK {
					t.Fatalf("%d->%d: JSON 503 but binary OK", p.Src, p.Dst)
				}
			default:
				t.Fatalf("%d->%d: JSON status %d: %s", p.Src, p.Dst, rec.Code, rec.Body.String())
			}
		}

		// Order: JSON vs binary.
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/order", nil))
		var od OrderDoc
		if err := json.Unmarshal(rec.Body.Bytes(), &od); err != nil {
			t.Fatal(err)
		}
		or, ok := wireCall(t, c, wire.OrderReq{}).(*wire.OrderResp)
		if !ok || or.Epoch != od.Epoch || or.Label != od.Label || len(or.HostOf) != len(od.HostOf) {
			t.Fatalf("order mismatch: JSON %+v, binary %#v", od, or)
		}
		for i := range od.HostOf {
			if uint32(od.HostOf[i]) != or.HostOf[i] {
				t.Fatalf("order host_of[%d]: JSON %d, binary %d", i, od.HostOf[i], or.HostOf[i])
			}
		}
	}

	t.Run("healthy", check)

	// Fault a host uplink plus two fabric links: some pairs must go
	// 503/not-OK and the rest still have to match hop for hop.
	uplink := m.t.Ports[m.t.Host(2).Up[0]].Link
	if _, err := m.InjectFaults([]topo.LinkID{uplink}, nil, 2); err != nil {
		t.Fatal(err)
	}
	st := waitEpoch(t, m, 2)
	if len(st.Unroutable) == 0 {
		t.Fatalf("uplink kill left no unroutable host: %+v", st.FailedLinks)
	}
	t.Run("faulted", check)
}

// TestWireConnsClosedOnManagerClose proves Close unblocks serving
// loops: a wire connection idle in a read must be force-closed.
func TestWireConnsClosedOnManagerClose(t *testing.T) {
	m := newManager(t, "128", nil)
	m.Start()
	srv, cli := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.ServeWire(srv)
	}()
	// One round-trip so the conn is definitely registered.
	cli.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteMessage(cli, wire.EpochReq{}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(cli); err != nil {
		t.Fatal(err)
	}
	m.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWire still running after Close")
	}
	// And a post-Close conn must be refused immediately.
	srv2, cli2 := net.Pipe()
	go m.ServeWire(srv2)
	cli2.SetDeadline(time.Now().Add(5 * time.Second))
	wire.WriteMessage(cli2, wire.EpochReq{})
	if _, err := wire.ReadMessage(cli2); err == nil {
		t.Fatal("closed manager served a wire request")
	}
	cli.Close()
	cli2.Close()
	_ = sched.JobID(0)
}
