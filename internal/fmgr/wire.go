package fmgr

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"fattree/internal/engine"
	"fattree/internal/obs"
	"fattree/internal/route"
	"fattree/internal/sched"
	"fattree/internal/wire"
)

// MaxWirePairs bounds one pairs-mode RouteSetReq's pair count before
// any resolution work. It is a request-size guard only; the response
// byte budget is enforced separately at encode time, where a batch
// whose answer would exceed wire.MaxPayload is refused with
// CodeBadRequest (and an oversized precomputed job set is stored as a
// CodeInternal frame — see encodeJobFrame).
const MaxWirePairs = 1 << 22

// ServeWire runs the binary protocol on one connection: a loop of
// length-prefixed request frames answered from the current snapshot.
// The connection is tracked by the manager and force-closed by Close,
// so a draining daemon never leaks serving goroutines. Every request is
// observed through the fmgr_wire RED family, mirroring the HTTP
// middleware.
func (m *Manager) ServeWire(conn net.Conn) {
	if !m.trackWire(conn) {
		conn.Close()
		return
	}
	defer m.untrackWire(conn)
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	var out []byte
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			return // EOF, hangup or garbage: either way the conn is done
		}
		start := time.Now()
		var ep *obs.REDEndpoint
		var code int
		out, ep, code = m.wireRespond(out[:0], msg)
		if len(out) > 0 {
			if _, err := conn.Write(out); err != nil {
				ep.Observe(0, time.Since(start))
				return
			}
		}
		ep.Observe(code, time.Since(start))
	}
}

// wireRespond builds the response frame for one request into dst and
// returns it with the RED endpoint and a status code for observation
// (HTTP-style classes: 200 served, 304 not-modified, 4xx refused, 500
// internal).
func (m *Manager) wireRespond(dst []byte, msg wire.Message) ([]byte, *obs.REDEndpoint, int) {
	switch req := msg.(type) {
	case wire.EpochReq:
		st := m.Current()
		return wire.AppendFrame(dst, &wire.EpochResp{Epoch: st.Epoch, Engine: st.Engine}),
			m.wireEpochEP, 200
	case wire.OrderReq:
		st := m.Current()
		return append(dst, st.wireOrder...), m.wireOrderEP, 200
	case *wire.RouteSetReq:
		out, code := m.wireRouteSet(dst, req)
		return out, m.wireRouteSetEP, code
	default:
		// A well-formed frame of a type the server does not answer
		// (e.g. a response type): refuse politely, keep the conn.
		return wire.AppendFrame(dst, &wire.ErrorResp{
			Code: wire.CodeBadRequest,
			Msg:  fmt.Sprintf("unexpected message type 0x%02x", uint8(msg.Type())),
		}), nil, 400
	}
}

// wireRouteSet answers one RouteSetReq from the current snapshot. The
// request is validated first — job existence, pair cap and range,
// engine — and only then does epoch negotiation short-circuit (a
// matching hint costs one NotModified frame, no table touch). The
// order matters: a NotModified must certify that the server could
// serve the request under this epoch, or a client whose hint happens
// to match gets its cache "validated" for state the server no longer
// has. After that, either the precomputed per-job frame is served
// (pure cache hit — the bytes were encoded at placement rebuild) or
// the explicit pairs batch is resolved from the engine's compiled
// arena.
func (m *Manager) wireRouteSet(dst []byte, req *wire.RouteSetReq) ([]byte, int) {
	st := m.Current()
	if req.ByJob {
		jw, ok := st.JobRouteSets[sched.JobID(req.Job)]
		if !ok {
			return wire.AppendFrame(dst, &wire.ErrorResp{
				Code: wire.CodeNotFound,
				Msg:  fmt.Sprintf("job %d has no route set in epoch %d", req.Job, st.Epoch),
			}), 404
		}
		if req.EpochHint != 0 && req.EpochHint == st.Epoch {
			return wire.AppendFrame(dst, &wire.NotModified{Epoch: st.Epoch}), 304
		}
		m.mWireRoutes.Add(int64(jw.Pairs))
		return append(dst, jw.Frame...), jw.Code
	}
	if len(req.Pairs) > MaxWirePairs {
		return wire.AppendFrame(dst, &wire.ErrorResp{
			Code: wire.CodeBadRequest,
			Msg:  fmt.Sprintf("%d pairs exceed the %d per-request cap", len(req.Pairs), MaxWirePairs),
		}), 400
	}
	engName := req.Engine
	if engName == "" {
		engName = st.Engine
	}
	tb, ok := st.ByEngine[engName]
	if !ok {
		return wire.AppendFrame(dst, &wire.ErrorResp{
			Code: wire.CodeNotFound,
			Msg:  fmt.Sprintf("engine %q has no tables in epoch %d", engName, st.Epoch),
		}), 404
	}
	n := st.Topo.NumHosts()
	for _, p := range req.Pairs {
		if int(p[0]) >= n || int(p[1]) >= n {
			return wire.AppendFrame(dst, &wire.ErrorResp{
				Code: wire.CodeBadRequest,
				Msg:  fmt.Sprintf("pair %d->%d out of range [0,%d)", p[0], p[1], n),
			}), 400
		}
	}
	if req.EpochHint != 0 && req.EpochHint == st.Epoch {
		return wire.AppendFrame(dst, &wire.NotModified{Epoch: st.Epoch}), 304
	}
	resp, err := routeSetResp(st.Epoch, engName, tb, req.Pairs)
	if err != nil {
		return wire.AppendFrame(dst, &wire.ErrorResp{
			Code: wire.CodeInternal, Msg: err.Error(),
		}), 500
	}
	out, err := wire.AppendFrameChecked(dst, resp)
	if err != nil {
		return wire.AppendFrame(dst, &wire.ErrorResp{
			Code: wire.CodeBadRequest,
			Msg:  fmt.Sprintf("%d-pair batch encodes past the %d-byte frame cap; split the request", len(req.Pairs), wire.MaxPayload),
		}), 400
	}
	m.mWireRoutes.Add(int64(len(req.Pairs)))
	return out, 200
}

// routeSetResp resolves pairs against one engine's tables into the
// batched wire message. All hops across the batch share one backing
// slice, sized in a first pass, so a whole-job set costs two
// allocations, not one per pair.
func routeSetResp(epoch uint64, engName string, tb *engine.Tables, pairs [][2]uint32) (*wire.RouteSetResp, error) {
	unroutable := map[int]bool{}
	for _, h := range tb.Unroutable {
		unroutable[h] = true
	}
	total := 0
	for _, p := range pairs {
		src, dst := int(p[0]), int(p[1])
		if src == dst || unroutable[src] || unroutable[dst] || tb.Compiled.Broken(src, dst) {
			continue
		}
		path, err := tb.Compiled.PackedPath(src, dst)
		if err != nil {
			return nil, err
		}
		total += len(path)
	}
	resp := &wire.RouteSetResp{
		Epoch:   epoch,
		Engine:  engName,
		Routing: tb.Router.Label(),
		Pairs:   make([]wire.PairRoute, len(pairs)),
	}
	hops := make([]uint32, 0, total)
	for i, p := range pairs {
		src, dst := int(p[0]), int(p[1])
		pr := &resp.Pairs[i]
		pr.Src, pr.Dst = p[0], p[1]
		if src == dst {
			pr.OK = true
			continue
		}
		if unroutable[src] || unroutable[dst] || tb.Compiled.Broken(src, dst) {
			continue // OK=false: the binary twin of the JSON 503
		}
		path, err := tb.Compiled.PackedPath(src, dst)
		if err != nil {
			return nil, err
		}
		start := len(hops)
		for _, e := range path {
			hops = append(hops, uint32(route.PathEntry(e)))
		}
		pr.OK = true
		pr.Hops = hops[start:len(hops):len(hops)]
	}
	return resp, nil
}

// orderedPairs lists every ordered src!=dst pair among a job's hosts —
// the full flow set its global collectives can generate, and therefore
// what one job-mode RouteSet request must resolve.
func orderedPairs(hosts []int) [][2]uint32 {
	out := make([][2]uint32, 0, len(hosts)*(len(hosts)-1))
	for _, s := range hosts {
		for _, d := range hosts {
			if s != d {
				out = append(out, [2]uint32{uint32(s), uint32(d)})
			}
		}
	}
	return out
}

// trackWire registers a live wire connection; false means the manager
// is closed and the conn must not be served.
func (m *Manager) trackWire(c net.Conn) bool {
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	if m.wireClosed {
		return false
	}
	m.wireConns[c] = struct{}{}
	m.mWireConns.Add(1)
	return true
}

func (m *Manager) untrackWire(c net.Conn) {
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	if _, ok := m.wireConns[c]; ok {
		delete(m.wireConns, c)
		m.mWireConns.Add(-1)
	}
}

// closeWireConns force-closes every live wire connection; called from
// Close so ServeWire loops blocked in a read unblock and exit.
func (m *Manager) closeWireConns() {
	m.wireMu.Lock()
	m.wireClosed = true
	conns := make([]net.Conn, 0, len(m.wireConns))
	for c := range m.wireConns {
		conns = append(conns, c)
	}
	m.wireMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
