package route

import (
	"fmt"

	"fattree/internal/topo"
)

// SModK is the source-based mirror of D-Mod-K: the up-going port at a
// level-l node is chosen by the *source* index,
//
//	q = floor(src / prod_{i<=l} w_i) mod (w_{l+1} * p_{l+1})
//
// and the down path follows the destination's digits with the parallel
// copy pinned by the source. For permutation traffic it is exactly as
// contention free as D-Mod-K (the same arithmetic-sequence argument
// applies with the roles of source and destination swapped). Its fatal
// flaw is practical: the choice depends on the source, so it cannot be
// programmed into destination-routed hardware — an InfiniBand switch has
// one linear forwarding table keyed by destination LID. The paper's
// choice of D-Mod-K over the source-based family (studied by the related
// work it cites) is exactly this implementability argument; SModK exists
// here so the equivalence and the difference are both testable.
type SModK struct {
	T *topo.Topology
}

// NewSModK builds the source-based router for a topology.
func NewSModK(t *topo.Topology) *SModK { return &SModK{T: t} }

// Topology implements Router.
func (s *SModK) Topology() *topo.Topology { return s.T }

// Label implements Router.
func (s *SModK) Label() string { return "s-mod-k" }

// Walk implements Router: climb until an ancestor of dst is reached
// (spreading by source), then descend along dst's digits.
func (s *SModK) Walk(src, dst int, visit func(link topo.LinkID, up bool)) error {
	t := s.T
	g := t.Spec
	n := t.NumHosts()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("route: s-mod-k: pair %d->%d out of range [0,%d)", src, dst, n)
	}
	if src == dst {
		return nil
	}
	top := g.LCALevel(src, dst)
	cur := t.Host(src)
	wprod := 1
	// Climb: at level l use the source-spread rule.
	for l := 0; l < top; l++ {
		q := (src / wprod) % (g.Wi(l+1) * g.Pi(l+1))
		pid := cur.Up[q]
		visit(t.Ports[pid].Link, true)
		cur = t.Node(t.PeerNode(pid))
		wprod *= g.Wi(l + 1)
	}
	// Descend: child digit from dst, parallel copy from src.
	wprod = g.WProd(top)
	for l := top; l >= 1; l-- {
		wprod /= g.Wi(l)
		a := (dst / g.MProd(l-1)) % g.Mi(l)
		k := (src / wprod) % (g.Wi(l) * g.Pi(l)) / g.Wi(l)
		r := a + k*g.Mi(l)
		pid := cur.Down[r]
		visit(t.Ports[pid].Link, false)
		cur = t.Node(t.PeerNode(pid))
	}
	if cur.Kind != topo.Host || cur.Index != dst {
		return fmt.Errorf("route: s-mod-k: %d->%d landed on %v", src, dst, cur)
	}
	return nil
}

// Trace mirrors LFT.Trace for the source-based router.
func (s *SModK) Trace(src, dst int) ([]Hop, error) {
	var hops []Hop
	err := s.Walk(src, dst, func(l topo.LinkID, up bool) {
		hops = append(hops, Hop{Link: l, Up: up})
	})
	return hops, err
}
