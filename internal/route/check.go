package route

import (
	"fmt"

	"fattree/internal/topo"
)

// Verify checks that the tables deliver every source-destination pair over
// an up*/down* path of the minimal length 2*LCALevel. pairs limits the
// number of (src,dst) combinations checked per source (0 = all); sources
// are always all checked.
func Verify(f *LFT, pairsPerSrc int) error {
	t := f.T
	n := t.NumHosts()
	for src := 0; src < n; src++ {
		step := 1
		if pairsPerSrc > 0 && n > pairsPerSrc {
			step = n / pairsPerSrc
		}
		for dst := 0; dst < n; dst += step {
			if dst == src {
				continue
			}
			if err := VerifyPath(f, src, dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyPath checks a single pair: delivery, up*/down* shape, minimality.
func VerifyPath(f *LFT, src, dst int) error {
	hops, err := f.Trace(src, dst)
	if err != nil {
		return err
	}
	descending := false
	for i, h := range hops {
		if h.Up && descending {
			return fmt.Errorf("route: %s: %d->%d climbs after descending at hop %d", f.Name, src, dst, i)
		}
		if !h.Up {
			descending = true
		}
	}
	if want := 2 * f.T.Spec.LCALevel(src, dst); len(hops) != want {
		return fmt.Errorf("route: %s: %d->%d takes %d hops, want minimal %d", f.Name, src, dst, len(hops), want)
	}
	return nil
}

// DownPortConflicts counts Theorem 2 violations: for every switch down
// port it tallies how many distinct destinations are ever routed *through*
// that port (over all-to-all traffic) and returns the number of ports
// carrying more than one destination. D-Mod-K on a complete RLFT must
// return 0.
func DownPortConflicts(f *LFT) (int, error) {
	t := f.T
	n := t.NumHosts()
	// destOn[port] = first destination seen on this down port, or -1.
	destOn := make([]int, len(t.Ports))
	for i := range destOn {
		destOn[i] = -1
	}
	conflicts := make(map[topo.PortID]bool)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			cur := t.HostID(src)
			for {
				node := t.Node(cur)
				if node.Kind == topo.Host && node.Index == dst {
					break
				}
				out := f.Out[cur][dst]
				if out == topo.None {
					return 0, fmt.Errorf("route: %s: no entry for dst %d at %v", f.Name, dst, node)
				}
				if t.Ports[out].Dir == topo.Down {
					switch destOn[out] {
					case -1:
						destOn[out] = dst
					case dst:
					default:
						conflicts[out] = true
					}
				}
				cur = t.PeerNode(out)
			}
		}
	}
	return len(conflicts), nil
}

// TopSwitchOf returns the index (within the top level) of the single
// root switch that carries all traffic towards dst, per Lemma 5, by
// walking up from host 0 (any non-descendant source reaches the same
// root). Returns an error if dst shares a leaf with host 0 and never
// reaches the top (use another probe source in that case).
func TopSwitchOf(f *LFT, probe, dst int) (int, error) {
	t := f.T
	cur := t.HostID(probe)
	for {
		node := t.Node(cur)
		if node.Level == t.Spec.H {
			return node.Index, nil
		}
		if node.Kind == topo.Host && node.Index == dst {
			return 0, fmt.Errorf("route: %s: path %d->%d never reaches the top", f.Name, probe, dst)
		}
		out := f.Out[cur][dst]
		if out == topo.None {
			return 0, fmt.Errorf("route: %s: no entry for dst %d at %v", f.Name, dst, node)
		}
		if t.Ports[out].Dir == topo.Down && node.Level < t.Spec.H {
			return 0, fmt.Errorf("route: %s: path %d->%d turns down at level %d", f.Name, probe, dst, node.Level)
		}
		cur = t.PeerNode(out)
	}
}
