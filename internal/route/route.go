// Package route implements deterministic destination-based routing for
// PGFT/RLFT fat-trees, centered on the D-Mod-K routing of Section V of the
// paper (equation 1), plus baseline routings used for comparison and
// validation helpers.
//
// Routing is materialized as linear forwarding tables (LFTs), exactly like
// an InfiniBand subnet manager would program switches: for every switch and
// every destination end-port the table names the output port. Traffic
// climbs the tree until it reaches an ancestor of the destination and then
// descends; D-Mod-K chooses *which* ancestor by spreading destinations
// cyclically over up-going ports.
package route

import (
	"fmt"

	"fattree/internal/topo"
)

// Router is anything that can walk the hops of a source-destination flow
// on a topology. Destination-based linear forwarding tables (LFT) are the
// canonical implementation — the only one InfiniBand switches can be
// programmed with — but source-based schemes like S-Mod-K implement it
// too, which lets the analysis and simulation layers compare them.
type Router interface {
	// Topology returns the fabric the router is bound to.
	Topology() *topo.Topology
	// Label names the routing scheme for reports.
	Label() string
	// Walk visits every hop of the src->dst flow in order.
	Walk(src, dst int, visit func(link topo.LinkID, up bool)) error
}

// LFT is a set of per-node linear forwarding tables. Out[node][dst] is the
// port (a PortID on that node) that traffic for destination end-port dst
// leaves through. Host nodes also carry a table (their single up port) so
// that tracing can start uniformly.
//
// All rows are views into one flat backing slice (two allocations total
// instead of one per node), so a trace touching consecutive nodes stays
// within a single arena and table builds like DModK stream through
// contiguous memory.
type LFT struct {
	T    *topo.Topology
	Name string
	Out  [][]topo.PortID
}

// Topology implements Router.
func (f *LFT) Topology() *topo.Topology { return f.T }

// Label implements Router.
func (f *LFT) Label() string { return f.Name }

// NewLFT allocates an empty table set for t (all entries topo.None).
func NewLFT(t *topo.Topology, name string) *LFT {
	n := t.NumHosts()
	flat := make([]topo.PortID, len(t.Nodes)*n)
	for i := range flat {
		flat[i] = topo.None
	}
	out := make([][]topo.PortID, len(t.Nodes))
	for i := range out {
		out[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return &LFT{T: t, Name: name, Out: out}
}

// OutPort returns the forwarding entry for dst at node id.
func (f *LFT) OutPort(id topo.NodeID, dst int) topo.PortID {
	return f.Out[id][dst]
}

// Hop is one link traversal of a traced path.
type Hop struct {
	Link topo.LinkID
	Up   bool // true when traversed from the lower to the upper node
}

// Trace follows the forwarding tables from src to dst and returns the
// traversed hops. It fails on dead ends and forwarding loops.
func (f *LFT) Trace(src, dst int) ([]Hop, error) {
	t := f.T
	cur := t.HostID(src)
	limit := 2*t.Spec.H + 2
	hops := make([]Hop, 0, limit)
	for steps := 0; ; steps++ {
		n := t.Node(cur)
		if n.Kind == topo.Host && n.Index == dst {
			return hops, nil
		}
		if steps >= limit {
			return nil, fmt.Errorf("route: %s: loop routing %d->%d (hops %v)", f.Name, src, dst, hops)
		}
		out := f.Out[cur][dst]
		if out == topo.None {
			return nil, fmt.Errorf("route: %s: no entry for dst %d at %v", f.Name, dst, n)
		}
		p := &t.Ports[out]
		if p.Node != cur {
			return nil, fmt.Errorf("route: %s: entry for dst %d at %v names foreign port", f.Name, dst, n)
		}
		hops = append(hops, Hop{Link: p.Link, Up: p.Dir == topo.Up})
		cur = t.PeerNode(out)
	}
}

// Walk is a zero-allocation Trace for hot loops: visit is called once per
// hop. It returns an error under the same conditions as Trace.
func (f *LFT) Walk(src, dst int, visit func(link topo.LinkID, up bool)) error {
	t := f.T
	cur := t.HostID(src)
	limit := 2*t.Spec.H + 2
	for steps := 0; ; steps++ {
		n := t.Node(cur)
		if n.Kind == topo.Host && n.Index == dst {
			return nil
		}
		if steps >= limit {
			return fmt.Errorf("route: %s: loop routing %d->%d", f.Name, src, dst)
		}
		out := f.Out[cur][dst]
		if out == topo.None {
			return fmt.Errorf("route: %s: no entry for dst %d at %v", f.Name, dst, n)
		}
		p := &t.Ports[out]
		visit(p.Link, p.Dir == topo.Up)
		cur = t.PeerNode(out)
	}
}

// NextNode returns the node reached from id when forwarding towards dst.
func (f *LFT) NextNode(id topo.NodeID, dst int) (topo.NodeID, error) {
	out := f.Out[id][dst]
	if out == topo.None {
		return 0, fmt.Errorf("route: %s: no entry for dst %d at node %d", f.Name, dst, id)
	}
	return f.T.PeerNode(out), nil
}
