package route

import (
	"strings"
	"testing"

	"fattree/internal/topo"
)

var compiledTopos = []topo.PGFT{
	topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}),          // Figure 1 tree, 16 hosts
	topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}), // 3-level, 64 hosts
	topo.Cluster128,
}

// pathOfHops packs a Trace result for comparison against PackedPath.
func pathOfHops(hops []Hop) []PathEntry {
	out := make([]PathEntry, len(hops))
	for i, h := range hops {
		out[i] = PackEntry(h.Link, h.Up)
	}
	return out
}

func TestCompiledMatchesTraceAllPairs(t *testing.T) {
	for _, g := range compiledTopos {
		tp := topo.MustBuild(g)
		for _, lft := range []*LFT{DModK(tp), DModKNaive(tp), MinHopRandom(tp, 3)} {
			c, err := Compile(lft)
			if err != nil {
				t.Fatalf("%v %s: %v", g, lft.Name, err)
			}
			n := tp.NumHosts()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					got, err := c.PackedPath(src, dst)
					if err != nil {
						t.Fatalf("%v %s: %v", g, lft.Name, err)
					}
					if src == dst {
						if len(got) != 0 {
							t.Fatalf("%v %s: self pair %d has %d hops", g, lft.Name, src, len(got))
						}
						continue
					}
					hops, err := lft.Trace(src, dst)
					if err != nil {
						t.Fatalf("%v %s: %v", g, lft.Name, err)
					}
					want := pathOfHops(hops)
					if len(got) != len(want) {
						t.Fatalf("%v %s %d->%d: %d hops, want %d", g, lft.Name, src, dst, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%v %s %d->%d hop %d: link %d up %v, want link %d up %v",
								g, lft.Name, src, dst, i,
								EntryLink(got[i]), EntryUp(got[i]), EntryLink(want[i]), EntryUp(want[i]))
						}
					}
				}
			}
		}
	}
}

func TestCompiledSModK(t *testing.T) {
	// The cache is router-generic: a source-based scheme compiles too.
	tp := topo.MustBuild(topo.Cluster128)
	s := NewSModK(tp)
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	n := tp.NumHosts()
	for src := 0; src < n; src += 7 {
		for dst := 0; dst < n; dst += 5 {
			if src == dst {
				continue
			}
			hops, err := s.Trace(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.PackedPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			want := pathOfHops(hops)
			if len(got) != len(want) {
				t.Fatalf("%d->%d: %d hops, want %d", src, dst, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%d->%d hop %d mismatch", src, dst, i)
				}
			}
		}
	}
}

func TestCompiledWalkMatchesInnerWalk(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := DModK(tp)
	c, err := Compile(lft)
	if err != nil {
		t.Fatal(err)
	}
	var direct, cached []Hop
	if err := lft.Walk(3, 101, func(l topo.LinkID, up bool) {
		direct = append(direct, Hop{l, up})
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Walk(3, 101, func(l topo.LinkID, up bool) {
		cached = append(cached, Hop{l, up})
	}); err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(cached) {
		t.Fatalf("walk lengths differ: %d vs %d", len(direct), len(cached))
	}
	for i := range direct {
		if direct[i] != cached[i] {
			t.Fatalf("hop %d: %v vs %v", i, direct[i], cached[i])
		}
	}
}

func TestCompiledTransparency(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := DModK(tp)
	c, err := Compile(lft)
	if err != nil {
		t.Fatal(err)
	}
	if c.Label() != lft.Label() {
		t.Errorf("label %q, want inner %q", c.Label(), lft.Label())
	}
	if c.Topology() != tp {
		t.Error("topology not forwarded")
	}
	if c.Inner() != Router(lft) {
		t.Error("inner router not retained")
	}
	// Compiling a compiled router is the identity.
	c2, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Error("re-compile allocated a new cache")
	}
	if c.NumEntries() == 0 {
		t.Error("no entries compiled")
	}
}

func TestCompiledPackedPathRange(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	c, err := Compile(DModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {128, 0}, {0, 128}} {
		if _, err := c.PackedPath(pair[0], pair[1]); err == nil {
			t.Errorf("PackedPath(%d, %d) accepted out-of-range pair", pair[0], pair[1])
		}
		if err := c.Walk(pair[0], pair[1], func(topo.LinkID, bool) {}); err == nil {
			t.Errorf("Walk(%d, %d) accepted out-of-range pair", pair[0], pair[1])
		}
	}
}

func TestCompileReportsBrokenTables(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := DModK(tp)
	leaf := tp.LeafOf(0)
	lft.Out[leaf.ID][127] = topo.None // dead end on the way to host 127
	if _, err := Compile(lft); err == nil {
		t.Fatal("Compile accepted tables with a dead end")
	} else if !strings.Contains(err.Error(), "no entry") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPackEntryRoundTrip(t *testing.T) {
	for _, l := range []topo.LinkID{0, 1, 17, 1 << 20} {
		for _, up := range []bool{true, false} {
			e := PackEntry(l, up)
			if EntryLink(e) != l || EntryUp(e) != up {
				t.Fatalf("round trip (%d, %v) -> (%d, %v)", l, up, EntryLink(e), EntryUp(e))
			}
		}
	}
}
