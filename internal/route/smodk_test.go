package route

import (
	"testing"

	"fattree/internal/topo"
)

func TestSModKDelivers(t *testing.T) {
	for _, g := range []topo.PGFT{
		topo.Cluster128,
		topo.Cluster324,
		topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}),
	} {
		tp := topo.MustBuild(g)
		s := NewSModK(tp)
		n := tp.NumHosts()
		for src := 0; src < n; src += 3 {
			for dst := 0; dst < n; dst += 5 {
				if src == dst {
					continue
				}
				hops, err := s.Trace(src, dst)
				if err != nil {
					t.Fatalf("%v: %v", g, err)
				}
				if want := 2 * g.LCALevel(src, dst); len(hops) != want {
					t.Fatalf("%v: %d->%d has %d hops, want %d", g, src, dst, len(hops), want)
				}
				// up*/down* shape.
				down := false
				for _, h := range hops {
					if h.Up && down {
						t.Fatalf("%v: %d->%d climbs after descending", g, src, dst)
					}
					if !h.Up {
						down = true
					}
				}
			}
		}
	}
}

func TestSModKSelfFlowNoHops(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	s := NewSModK(tp)
	hops, err := s.Trace(5, 5)
	if err != nil || len(hops) != 0 {
		t.Errorf("self trace = (%v, %v), want no hops", hops, err)
	}
	if _, err := s.Trace(-1, 5); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := s.Trace(0, 1000); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestSModKSpreadsBySource(t *testing.T) {
	// Two sources in the same leaf must leave through different up
	// ports regardless of destination — the defining property.
	tp := topo.MustBuild(topo.Cluster324)
	s := NewSModK(tp)
	dst := 323
	used := make(map[topo.LinkID]bool)
	for src := 0; src < 18; src++ { // leaf 0
		hops, err := s.Trace(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		first := hops[1] // hop 0 is host->leaf; hop 1 is the leaf's up link
		if used[first.Link] {
			t.Fatalf("sources in one leaf share up link %d", first.Link)
		}
		used[first.Link] = true
	}
}

func TestSModKUsesManyRootsPerDest(t *testing.T) {
	// The contrast to D-Mod-K's Lemma 5: under S-Mod-K, different
	// sources reach a destination via different top switches — the
	// reason it cannot be expressed as a destination-keyed LFT.
	tp := topo.MustBuild(topo.Cluster324)
	s := NewSModK(tp)
	dst := 300
	roots := make(map[topo.NodeID]bool)
	for src := 0; src < 100; src++ {
		if tp.Spec.LCALevel(src, dst) != tp.Spec.H {
			continue
		}
		err := s.Walk(src, dst, func(l topo.LinkID, up bool) {
			lk := &tp.Links[l]
			node := tp.Node(tp.Ports[lk.Upper].Node)
			if node.Level == tp.Spec.H {
				roots[node.ID] = true
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(roots) < 2 {
		t.Errorf("s-mod-k uses %d roots for dest %d, expected several (unlike d-mod-k)", len(roots), dst)
	}
}

func TestRouterInterfaceCompliance(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	var _ Router = DModK(tp)
	var _ Router = NewSModK(tp)
	if got := DModK(tp).Label(); got != "d-mod-k" {
		t.Errorf("LFT label = %q", got)
	}
	if got := NewSModK(tp).Label(); got != "s-mod-k" {
		t.Errorf("SModK label = %q", got)
	}
	if NewSModK(tp).Topology() != tp {
		t.Error("SModK topology accessor broken")
	}
}
