package route

import (
	"math/rand"
	"sync"

	"fattree/internal/topo"
)

// Adaptive approximates an adaptive-routing fabric: every Walk of the
// same source-destination pair may climb through a different random
// up-path (the down-path is still forced by the destination). This is
// the alternative the paper's introduction argues against: it reacts to
// congestion only after it forms, and because consecutive packets of a
// flow take different paths, packets arrive out of order — which
// InfiniBand's Reliable Connected transport cannot tolerate. The
// simulator counts those out-of-order arrivals.
//
// Walk draws from the router's internal RNG, so two Walks of the same
// pair differ; use a fixed seed for reproducible experiments.
type Adaptive struct {
	T *topo.Topology

	mu  sync.Mutex
	rng *rand.Rand
}

// NewAdaptive builds the randomized router.
func NewAdaptive(t *topo.Topology, seed int64) *Adaptive {
	return &Adaptive{T: t, rng: rand.New(rand.NewSource(seed))}
}

// Topology implements Router.
func (a *Adaptive) Topology() *topo.Topology { return a.T }

// Label implements Router.
func (a *Adaptive) Label() string { return "adaptive-random" }

// Walk implements Router: random alive up-port at each climb step, then
// the destination-digit down-path using the parallel copy drawn at the
// top.
func (a *Adaptive) Walk(src, dst int, visit func(link topo.LinkID, up bool)) error {
	t := a.T
	g := t.Spec
	if src == dst {
		return nil
	}
	top := g.LCALevel(src, dst)
	cur := t.Host(src)
	a.mu.Lock()
	picks := make([]int, top)
	for l := 0; l < top; l++ {
		picks[l] = a.rng.Int()
	}
	a.mu.Unlock()
	for l := 0; l < top; l++ {
		q := picks[l] % len(cur.Up)
		pid := cur.Up[q]
		visit(t.Ports[pid].Link, true)
		cur = t.Node(t.PeerNode(pid))
	}
	for l := top; l >= 1; l-- {
		aDigit := (dst / g.MProd(l-1)) % g.Mi(l)
		// Any parallel copy reaches the child; reuse the climb draw for
		// the level to stay within the RNG budget.
		k := picks[l-1] % g.Pi(l)
		pid := cur.Down[aDigit+k*g.Mi(l)]
		visit(t.Ports[pid].Link, false)
		cur = t.Node(t.PeerNode(pid))
	}
	return nil
}
