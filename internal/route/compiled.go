package route

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"fattree/internal/topo"
)

// ErrNoPath marks a pair with no usable path in a leniently compiled
// cache (see CompileLenient). Callers distinguish it from structural
// errors with errors.Is.
var ErrNoPath = errors.New("no path")

// PathEntry is one hop of a compiled path, packed into an int32: the link
// id shifted left once with the direction in bit 0 (1 = up). Packing keeps
// a full 1944-host path table under one cache-friendly []int32 arena.
type PathEntry = int32

// PackEntry packs a link traversal into a PathEntry.
func PackEntry(l topo.LinkID, up bool) PathEntry {
	e := PathEntry(l) << 1
	if up {
		e |= 1
	}
	return e
}

// EntryLink unpacks the link id of a PathEntry.
func EntryLink(e PathEntry) topo.LinkID { return topo.LinkID(e >> 1) }

// EntryUp unpacks the direction bit of a PathEntry.
func EntryUp(e PathEntry) bool { return e&1 == 1 }

// PackedPather is implemented by routers that can hand out a
// pre-materialized per-pair path as a packed slice, letting hot loops (the
// HSD analyzer above all) iterate hops directly instead of paying a
// per-hop callback and forwarding-table chase. The returned slice is a
// view into shared storage: callers must not modify it.
type PackedPather interface {
	Router
	// PackedPath returns the hops of the src->dst flow (empty for
	// src == dst) or an error for out-of-range indices.
	PackedPath(src, dst int) ([]PathEntry, error)
}

// Compiled is a path cache over any deterministic Router: every src->dst
// path is walked once at construction and stored in a flat CSR-style
// arena (one []int32 of packed entries plus an offsets table). After
// construction the cache is immutable, so Walk and PackedPath are safe
// for unlimited concurrent use — the property the parallel HSD sweeps
// rely on.
//
// Compiling a randomized router (Adaptive) freezes one draw per pair and
// is almost certainly not what you want; compile forwarding tables
// (LFT) or deterministic source-based schemes (SModK) instead.
type Compiled struct {
	inner   Router
	n       int
	offs    []int32 // len n*n+1; path (s,d) is entries[offs[s*n+d]:offs[s*n+d+1]]
	entries []PathEntry
	// broken, when non-nil, is an n*n bitset of pairs the inner router
	// could not walk — or walked non-minimally — during a lenient
	// compile over a faulted fabric. PackedPath and Walk return
	// ErrNoPath for them.
	broken    []uint64
	numBroken int
}

// Compile materializes every path of r in parallel across sources. It
// returns r unchanged when it is already a *Compiled.
func Compile(r Router) (*Compiled, error) { return CompileParallel(r, 0) }

// CompileParallel is Compile with an explicit worker count (<= 0 uses
// GOMAXPROCS). Each worker walks all destinations of a source into a
// private row buffer; the rows are then stitched into the shared arena,
// so no locking is needed during the build either.
func CompileParallel(r Router, workers int) (*Compiled, error) {
	return compileParallel(r, workers, false)
}

// CompileLenient is Compile for routers with degraded pairs — the
// rerouted tables of a faulted fabric above all. Pairs the inner router
// fails to walk (dead ends after a fault has cut every minimal path) and
// pairs it walks over a non-minimal path (longer than 2*LCALevel — a
// detour a correct fat-tree reroute never takes, so any occurrence is a
// routing bug the arena must refuse to serve) are recorded instead of
// aborting the build; PackedPath and Walk report them as ErrNoPath and
// NumBroken counts them. A fully routable minimal router compiles to the
// exact same arena as Compile.
func CompileLenient(r Router) (*Compiled, error) {
	return compileParallel(r, 0, true)
}

func compileParallel(r Router, workers int, lenient bool) (*Compiled, error) {
	if c, ok := r.(*Compiled); ok {
		return c, nil
	}
	t := r.Topology()
	n := t.NumHosts()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	rows := make([][]PathEntry, n)
	rowOffs := make([][]int32, n)
	brokenDst := make([][]int32, n) // per-source unreachable destinations
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int, n)
	)
	for src := 0; src < n; src++ {
		next <- src
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := range next {
				offs := make([]int32, n+1)
				buf := make([]PathEntry, 0, n*t.Spec.H)
				for dst := 0; dst < n; dst++ {
					if dst != src {
						start := len(buf)
						err := r.Walk(src, dst, func(l topo.LinkID, up bool) {
							buf = append(buf, PackEntry(l, up))
						})
						if err != nil {
							if !lenient {
								errOnce.Do(func() {
									firstErr = fmt.Errorf("route: compile %s: %w", r.Label(), err)
								})
								return
							}
							buf = buf[:start] // drop the partial walk
							brokenDst[src] = append(brokenDst[src], int32(dst))
						} else if lenient && len(buf)-start != 2*t.Spec.LCALevel(src, dst) {
							// A delivered but non-minimal path: mark the
							// pair broken rather than serve a detour that
							// silently breaks the minimality guarantee.
							buf = buf[:start]
							brokenDst[src] = append(brokenDst[src], int32(dst))
						}
					}
					offs[dst+1] = int32(len(buf))
				}
				rows[src] = buf
				rowOffs[src] = offs
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	total := 0
	for _, row := range rows {
		total += len(row)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("route: compile %s: %d path entries overflow the int32 offset table", r.Label(), total)
	}
	c := &Compiled{
		inner:   r,
		n:       n,
		offs:    make([]int32, n*n+1),
		entries: make([]PathEntry, total),
	}
	base := int32(0)
	for src := 0; src < n; src++ {
		copy(c.entries[base:], rows[src])
		o := c.offs[src*n : src*n+n]
		ro := rowOffs[src]
		for dst := 0; dst < n; dst++ {
			o[dst] = base + ro[dst]
		}
		base += int32(len(rows[src]))
	}
	c.offs[n*n] = base
	for src, dsts := range brokenDst {
		for _, dst := range dsts {
			if c.broken == nil {
				c.broken = make([]uint64, (n*n+63)/64)
			}
			i := src*n + int(dst)
			c.broken[i/64] |= 1 << (i % 64)
			c.numBroken++
		}
	}
	return c, nil
}

// Broken reports whether a leniently compiled pair had no usable
// (delivered and minimal) path.
// Out-of-range pairs report false; PackedPath still rejects them.
func (c *Compiled) Broken(src, dst int) bool {
	if c.broken == nil || src < 0 || src >= c.n || dst < 0 || dst >= c.n {
		return false
	}
	i := src*c.n + dst
	return c.broken[i/64]&(1<<(i%64)) != 0
}

// NumBroken returns the number of pairs a lenient compile recorded as
// broken — unreachable or served only by a non-minimal path (0 for
// strict compiles).
func (c *Compiled) NumBroken() int { return c.numBroken }

// Topology implements Router.
func (c *Compiled) Topology() *topo.Topology { return c.inner.Topology() }

// Label implements Router. The compiled view is a transparent
// acceleration, so it reports the inner router's label unchanged and
// reports/goldens are identical either way.
func (c *Compiled) Label() string { return c.inner.Label() }

// Inner returns the router the cache was compiled from.
func (c *Compiled) Inner() Router { return c.inner }

// NumEntries returns the total packed hop count across all pairs.
func (c *Compiled) NumEntries() int { return len(c.entries) }

// PackedPath implements PackedPather. For pairs a lenient compile found
// unreachable it returns an error wrapping ErrNoPath.
func (c *Compiled) PackedPath(src, dst int) ([]PathEntry, error) {
	if src < 0 || src >= c.n || dst < 0 || dst >= c.n {
		return nil, fmt.Errorf("route: compiled %s: pair %d->%d out of range [0,%d)", c.Label(), src, dst, c.n)
	}
	if c.Broken(src, dst) {
		return nil, fmt.Errorf("route: compiled %s: pair %d->%d: %w", c.Label(), src, dst, ErrNoPath)
	}
	i := src*c.n + dst
	return c.entries[c.offs[i]:c.offs[i+1]], nil
}

// Walk implements Router by replaying the cached path.
func (c *Compiled) Walk(src, dst int, visit func(link topo.LinkID, up bool)) error {
	p, err := c.PackedPath(src, dst)
	if err != nil {
		return err
	}
	for _, e := range p {
		visit(EntryLink(e), EntryUp(e))
	}
	return nil
}
