package route

import (
	"math/rand"

	"fattree/internal/topo"
)

// MinHopRandom builds minimal-hop forwarding tables with uniformly random
// port choices: a valid but oblivious routing, representative of a subnet
// manager that balances nothing. Down-going entries keep the mandatory
// child digit but pick a random parallel copy, up-going entries pick any
// up port. Deterministic for a given seed.
func MinHopRandom(t *topo.Topology, seed int64) *LFT {
	r := rand.New(rand.NewSource(seed))
	f := NewLFT(t, "minhop-random")
	g := t.Spec
	n := t.NumHosts()
	for id := range t.Nodes {
		node := &t.Nodes[id]
		l := node.Level
		for j := 0; j < n; j++ {
			switch {
			case node.Kind == topo.Host:
				if node.Index == j {
					continue
				}
				f.Out[id][j] = node.Up[r.Intn(len(node.Up))]
			case t.IsDescendantHost(node, j):
				a := g.HostDigit(j, l)
				k := r.Intn(g.Pi(l))
				f.Out[id][j] = node.Down[a+k*g.Mi(l)]
			default:
				f.Out[id][j] = node.Up[r.Intn(len(node.Up))]
			}
		}
	}
	return f
}

// DModKNaive is the broken variant of D-Mod-K that skips the division by
// prod(w_i): every level spreads by the raw destination index,
//
//	q = j mod (w_{l+1} * p_{l+1})
//
// which re-correlates flows above the leaves (all destinations passing a
// level-2 switch already share j mod w_2, so they pile onto few ports).
// Kept as an ablation baseline demonstrating why equation (1) divides.
func DModKNaive(t *topo.Topology) *LFT {
	f := NewLFT(t, "d-mod-k-naive")
	g := t.Spec
	n := t.NumHosts()
	for id := range t.Nodes {
		node := &t.Nodes[id]
		l := node.Level
		for j := 0; j < n; j++ {
			switch {
			case node.Kind == topo.Host:
				if node.Index == j {
					continue
				}
				f.Out[id][j] = node.Up[j%(g.Wi(1)*g.Pi(1))]
			case t.IsDescendantHost(node, j):
				a := g.HostDigit(j, l)
				k := (j % (g.Wi(l) * g.Pi(l))) / g.Wi(l)
				f.Out[id][j] = node.Down[a+k*g.Mi(l)]
			default:
				f.Out[id][j] = node.Up[j%(g.Wi(l+1)*g.Pi(l+1))]
			}
		}
	}
	return f
}
