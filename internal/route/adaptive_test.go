package route

import (
	"testing"

	"fattree/internal/topo"
)

func TestAdaptiveDelivers(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	a := NewAdaptive(tp, 1)
	n := tp.NumHosts()
	for src := 0; src < n; src += 5 {
		for dst := 0; dst < n; dst += 7 {
			if src == dst {
				continue
			}
			hops := 0
			last := topo.NodeID(tp.HostID(src))
			err := a.Walk(src, dst, func(l topo.LinkID, up bool) {
				hops++
				lk := &tp.Links[l]
				if up {
					if tp.Ports[lk.Lower].Node != last {
						t.Fatalf("%d->%d: discontinuous path", src, dst)
					}
					last = tp.Ports[lk.Upper].Node
				} else {
					if tp.Ports[lk.Upper].Node != last {
						t.Fatalf("%d->%d: discontinuous path", src, dst)
					}
					last = tp.Ports[lk.Lower].Node
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if last != tp.HostID(dst) {
				t.Fatalf("%d->%d landed on node %d", src, dst, last)
			}
			if want := 2 * tp.Spec.LCALevel(src, dst); hops != want {
				t.Fatalf("%d->%d: %d hops, want minimal %d", src, dst, hops, want)
			}
		}
	}
}

func TestAdaptiveVariesPaths(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	a := NewAdaptive(tp, 2)
	paths := make(map[string]bool)
	for i := 0; i < 20; i++ {
		key := ""
		err := a.Walk(0, 323, func(l topo.LinkID, up bool) {
			key += string(rune(l)) + ","
		})
		if err != nil {
			t.Fatal(err)
		}
		paths[key] = true
	}
	if len(paths) < 2 {
		t.Errorf("adaptive router produced %d distinct paths in 20 walks", len(paths))
	}
}

func TestAdaptiveSelfFlow(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	a := NewAdaptive(tp, 3)
	called := false
	if err := a.Walk(4, 4, func(topo.LinkID, bool) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("self flow visited links")
	}
	if a.Label() != "adaptive-random" || a.Topology() != tp {
		t.Error("router metadata wrong")
	}
}
