package route_test

// Lenient compilation is exercised against the fabric package's
// rerouted tables — the real producer of partially routable LFTs — so
// the test lives in an external test package to use it without an
// import cycle.

import (
	"errors"
	"testing"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func buildRLFT(t *testing.T, spec string) *topo.Topology {
	t.Helper()
	g, err := topo.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestCompileLenientCleanFabricMatchesStrict(t *testing.T) {
	tp := buildRLFT(t, "rlft2:4,8")
	lft := route.DModK(tp)
	strict, err := route.Compile(lft)
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := route.CompileLenient(lft)
	if err != nil {
		t.Fatal(err)
	}
	if lenient.NumBroken() != 0 {
		t.Fatalf("clean fabric compiled with %d broken pairs", lenient.NumBroken())
	}
	n := tp.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			a, err := strict.PackedPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			b, err := lenient.PackedPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%d->%d: %d vs %d entries", src, dst, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%d->%d entry %d differs", src, dst, i)
				}
			}
		}
	}
}

func TestCompileLenientRecordsBrokenPairs(t *testing.T) {
	tp := buildRLFT(t, "rlft2:4,8")
	fs := fabric.NewFaultSet(tp)
	// Cut host 0's only uplink: every pair touching host 0 loses its
	// path, everything else keeps one.
	fs.Fail(tp.Ports[tp.Host(0).Up[0]].Link)
	lft, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnroutableHosts) != 1 || res.UnroutableHosts[0] != 0 {
		t.Fatalf("unroutable = %v, want [0]", res.UnroutableHosts)
	}

	if _, err := route.Compile(lft); err == nil {
		t.Fatal("strict compile accepted a partially routable LFT")
	}
	c, err := route.CompileLenient(lft)
	if err != nil {
		t.Fatal(err)
	}
	n := tp.NumHosts()
	wantBroken := 2 * (n - 1) // host 0 as source and as destination
	if c.NumBroken() != wantBroken {
		t.Fatalf("NumBroken = %d, want %d", c.NumBroken(), wantBroken)
	}
	for other := 1; other < n; other++ {
		if !c.Broken(0, other) || !c.Broken(other, 0) {
			t.Fatalf("pair with host 0 not marked broken (other=%d)", other)
		}
	}
	if _, err := c.PackedPath(0, 5); !errors.Is(err, route.ErrNoPath) {
		t.Fatalf("PackedPath on broken pair: %v, want ErrNoPath", err)
	}
	if err := c.Walk(0, 5, func(topo.LinkID, bool) {}); !errors.Is(err, route.ErrNoPath) {
		t.Fatalf("Walk on broken pair: %v, want ErrNoPath", err)
	}

	// Unaffected pairs replay the rerouted tables exactly.
	for src := 1; src < n; src += 3 {
		for dst := 1; dst < n; dst += 5 {
			if src == dst {
				continue
			}
			var want []route.PathEntry
			if err := lft.Walk(src, dst, func(l topo.LinkID, up bool) {
				want = append(want, route.PackEntry(l, up))
			}); err != nil {
				t.Fatal(err)
			}
			got, err := c.PackedPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d->%d: %d vs %d entries", src, dst, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%d->%d entry %d differs", src, dst, i)
				}
			}
		}
	}
}

func TestCompileLenientOutOfRangeStillErrors(t *testing.T) {
	tp := buildRLFT(t, "rlft2:4,8")
	c, err := route.CompileLenient(route.DModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PackedPath(-1, 0); err == nil || errors.Is(err, route.ErrNoPath) {
		t.Fatalf("out-of-range pair: %v, want a range error distinct from ErrNoPath", err)
	}
	if c.Broken(-1, 0) || c.Broken(0, 10_000) {
		t.Fatal("Broken reported true for out-of-range pair")
	}
}
