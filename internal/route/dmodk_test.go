package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fattree/internal/topo"
)

func TestDModKDelivers(t *testing.T) {
	for _, g := range []topo.PGFT{
		topo.Cluster128,
		topo.Cluster324,
		topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}),
		topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}),
	} {
		tp := topo.MustBuild(g)
		f := DModK(tp)
		if err := Verify(f, 0); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
}

func TestDModKDelivers1944Sampled(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster1944)
	f := DModK(tp)
	if err := Verify(f, 64); err != nil {
		t.Error(err)
	}
}

func TestDModKMatchesClosedForm(t *testing.T) {
	g := topo.Cluster324
	tp := topo.MustBuild(g)
	f := DModK(tp)
	// At every leaf, for every non-descendant destination, the chosen up
	// port must equal equation (1).
	for _, lid := range tp.ByLevel[1] {
		leaf := tp.Node(lid)
		for j := 0; j < tp.NumHosts(); j++ {
			if tp.IsDescendantHost(leaf, j) {
				continue
			}
			out := f.Out[lid][j]
			got := tp.Ports[out].Num
			if tp.Ports[out].Dir != topo.Up {
				t.Fatalf("leaf %v dst %d: entry is not an up port", leaf, j)
			}
			if want := UpPortOf(g, 1, j); got != want {
				t.Fatalf("leaf %v dst %d: up port %d, want %d", leaf, j, got, want)
			}
		}
	}
}

func TestDModKDownPortUniqueness(t *testing.T) {
	// Theorem 2: over all-to-all traffic no down port carries more than
	// one destination on a complete RLFT.
	for _, g := range []topo.PGFT{
		topo.Cluster128,
		topo.Cluster324,
		topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}),
	} {
		tp := topo.MustBuild(g)
		f := DModK(tp)
		c, err := DownPortConflicts(f)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if c != 0 {
			t.Errorf("%v: %d down ports carry multiple destinations, want 0", g, c)
		}
	}
}

func TestDModKLemma5SingleRootPerDest(t *testing.T) {
	// Lemma 5: all sources send traffic for a destination through the
	// same top-level switch.
	tp := topo.MustBuild(topo.Cluster324)
	f := DModK(tp)
	n := tp.NumHosts()
	for dst := 0; dst < n; dst += 7 {
		want := -1
		for probe := 0; probe < n; probe += 13 {
			if tp.Spec.LCALevel(probe, dst) != tp.Spec.H {
				continue // path would not reach the top
			}
			got, err := TopSwitchOf(f, probe, dst)
			if err != nil {
				t.Fatal(err)
			}
			if want == -1 {
				want = got
			} else if got != want {
				t.Fatalf("dst %d reached via roots %d and %d", dst, want, got)
			}
		}
	}
}

func TestDModKRootLoadBalanced(t *testing.T) {
	// Lemma 6 corollary: each root switch serves at most
	// ceil(N / numRoots) destinations; on a complete RLFT exactly
	// N / numRoots.
	tp := topo.MustBuild(topo.Cluster1728)
	f := DModK(tp)
	n := tp.NumHosts()
	roots := len(tp.ByLevel[tp.Spec.H])
	counts := make([]int, roots)
	for dst := 0; dst < n; dst++ {
		// Probe from a host in a different top-level subtree.
		probe := (dst + n/2) % n
		if tp.Spec.LCALevel(probe, dst) != tp.Spec.H {
			t.Fatalf("bad probe choice for dst %d", dst)
		}
		r, err := TopSwitchOf(f, probe, dst)
		if err != nil {
			t.Fatal(err)
		}
		counts[r]++
	}
	want := n / roots
	for r, c := range counts {
		if c != want {
			t.Errorf("root %d serves %d destinations, want %d", r, c, want)
		}
	}
}

func TestDModKActiveDelivers(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	r := rand.New(rand.NewSource(42))
	active := r.Perm(tp.NumHosts())[:300]
	f, err := DModKActive(tp, active)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f, 0); err != nil {
		t.Error(err)
	}
}

func TestDModKActiveFullEqualsDModK(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	all := make([]int, tp.NumHosts())
	for i := range all {
		all[i] = i
	}
	a, err := DModKActive(tp, all)
	if err != nil {
		t.Fatal(err)
	}
	b := DModK(tp)
	for id := range tp.Nodes {
		for j := 0; j < tp.NumHosts(); j++ {
			if a.Out[id][j] != b.Out[id][j] {
				t.Fatalf("node %d dst %d: active-all %d != full %d", id, j, a.Out[id][j], b.Out[id][j])
			}
		}
	}
}

func TestActiveRanks(t *testing.T) {
	r, err := activeRanks(8, []int{1, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 1, 2, 3, 3}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("activeRanks = %v, want %v", r, want)
		}
	}
}

func TestActiveRanksRejectsMalformedSets(t *testing.T) {
	for _, bad := range [][]int{{1, 1}, {-1}, {8}} {
		if _, err := activeRanks(8, bad); err == nil {
			t.Errorf("activeRanks(8, %v) accepted a malformed set", bad)
		}
	}
	tp := topo.MustBuild(topo.Cluster128)
	if _, err := DModKActive(tp, []int{0, 0}); err == nil {
		t.Error("DModKActive accepted a duplicate active host")
	}
}

func TestMinHopRandomDelivers(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	f := MinHopRandom(tp, 1)
	if err := Verify(f, 0); err != nil {
		t.Error(err)
	}
	// Deterministic per seed.
	f2 := MinHopRandom(tp, 1)
	f3 := MinHopRandom(tp, 2)
	same, diff := true, false
	for id := range tp.Nodes {
		for j := 0; j < tp.NumHosts(); j++ {
			if f.Out[id][j] != f2.Out[id][j] {
				same = false
			}
			if f.Out[id][j] != f3.Out[id][j] {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different tables")
	}
	if !diff {
		t.Error("different seeds produced identical tables")
	}
}

func TestDModKNaiveDeliversButConflicts(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(3, []int{4, 4, 4}, []int{1, 4, 2}, []int{1, 1, 2}))
	f := DModKNaive(tp)
	if err := Verify(f, 0); err != nil {
		t.Fatal(err)
	}
	c, err := DownPortConflicts(f)
	if err != nil {
		t.Fatal(err)
	}
	if c == 0 {
		t.Error("naive variant shows no down-port conflicts; expected it to be worse than d-mod-k")
	}
}

func TestTraceErrors(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	f := DModK(tp)
	// Dead end: erase an entry on the path 0 -> 127.
	leaf := tp.LeafOf(0)
	f.Out[leaf.ID][127] = topo.None
	if _, err := f.Trace(0, 127); err == nil {
		t.Error("trace across erased entry should fail")
	}
	// Loop: bounce between host 0 and its leaf.
	f2 := DModK(tp)
	f2.Out[leaf.ID][127] = leaf.Down[0] // back to host 0
	if _, err := f2.Trace(0, 127); err == nil {
		t.Error("forwarding loop should be detected")
	}
}

func TestWalkMatchesTrace(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	f := DModK(tp)
	for _, pair := range [][2]int{{0, 323}, {17, 18}, {100, 200}, {5, 4}} {
		hops, err := f.Trace(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		var walked []Hop
		err = f.Walk(pair[0], pair[1], func(l topo.LinkID, up bool) {
			walked = append(walked, Hop{Link: l, Up: up})
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(walked) != len(hops) {
			t.Fatalf("walk %v: %d hops, trace %d", pair, len(walked), len(hops))
		}
		for i := range hops {
			if hops[i] != walked[i] {
				t.Fatalf("walk %v hop %d: %v != %v", pair, i, walked[i], hops[i])
			}
		}
	}
}

func TestDModKActiveDownPortUniquenessOverActivePairs(t *testing.T) {
	// Theorem 2's analogue for partial trees: over all-to-all traffic
	// among the active hosts, no down port carries two destinations
	// when the removal respects the allocation granule.
	tp := topo.MustBuild(topo.Cluster128) // granule 8
	r := rand.New(rand.NewSource(31))
	perm := r.Perm(tp.NumHosts())
	active := append([]int(nil), perm[8:]...) // drop one granule
	f, err := DModKActive(tp, active)
	if err != nil {
		t.Fatal(err)
	}

	destOn := make(map[topo.PortID]int)
	for _, src := range active {
		for _, dst := range active {
			if src == dst {
				continue
			}
			err := f.Walk(src, dst, func(l topo.LinkID, up bool) {
				if up {
					return
				}
				port := tp.Links[l].Upper
				if prev, ok := destOn[port]; ok && prev != dst {
					t.Fatalf("down port %d carries destinations %d and %d", port, prev, dst)
				}
				destOn[port] = dst
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestUpPortOfMatchesTablesQuick(t *testing.T) {
	// Property: for random (switch level, destination) samples on the
	// 1728-node cluster, the built tables agree with the closed form.
	tp := topo.MustBuild(topo.Cluster1728)
	g := tp.Spec
	f := DModK(tp)
	check := func(raw uint32) bool {
		l := 1 + int(raw>>16)%(g.H-1) // levels 1..H-1 have up ports
		idx := int(raw>>8) % g.NumSwitches(l)
		j := int(raw) % tp.NumHosts()
		sw := tp.SwitchAt(l, idx)
		if tp.IsDescendantHost(sw, j) {
			return true // down entries are covered elsewhere
		}
		out := f.Out[sw.ID][j]
		port := tp.Ports[out]
		return port.Dir == topo.Up && port.Num == UpPortOf(g, l, j)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
