package route_test

import (
	"errors"
	"testing"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// detour wraps a router and replaces one pair's walk with a delivered,
// up*/down*-shaped but non-minimal path over the source leaf's first
// spine — emulating a reroute engine that forgot the minimality rule.
type detour struct {
	route.Router
	src, dst int
}

func (d *detour) Walk(src, dst int, visit func(topo.LinkID, bool)) error {
	if src != d.src || dst != d.dst {
		return d.Router.Walk(src, dst, visit)
	}
	t := d.Topology()
	leaf := t.LeafOf(src)
	srcUp := t.Ports[t.Host(src).Up[0]].Link
	leafUp := t.Ports[leaf.Up[0]].Link
	dstUp := t.Ports[t.Host(dst).Up[0]].Link
	visit(srcUp, true)
	visit(leafUp, true)
	visit(leafUp, false)
	visit(dstUp, false)
	return nil
}

// TestCompileLenientRecordsNonMinimal is the regression test for the
// broken-bitset contract: a pair served by a delivered but non-minimal
// path must be recorded broken, exactly like an unreachable one, so the
// arena never silently serves a detour. The scenario starts from a real
// single mid-tier link fault (where the reroute legitimately changes
// paths) and then injects the minimality bug on top.
func TestCompileLenientRecordsNonMinimal(t *testing.T) {
	g, err := topo.RLFT3(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.MustBuild(g)
	fs := fabric.NewFaultSet(tp)
	// Fail one mid-tier link (between switch levels, not a host uplink).
	var fault topo.LinkID = topo.None
	for i := range tp.Links {
		if tp.Links[i].Level == 2 {
			fault = topo.LinkID(i)
			break
		}
	}
	if fault == topo.None {
		t.Fatal("no mid-tier link found")
	}
	fs.Fail(fault)
	lft, res, err := fs.RouteAround()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnroutableHosts) != 0 || res.BrokenPairs != 0 {
		t.Fatalf("single mid-tier fault should leave every pair routable, got unroutable=%v broken=%d",
			res.UnroutableHosts, res.BrokenPairs)
	}

	// The genuine reroute stays minimal everywhere: nothing is broken.
	clean, err := route.CompileLenient(lft)
	if err != nil {
		t.Fatal(err)
	}
	if clean.NumBroken() != 0 {
		t.Fatalf("rerouted tables compile with %d broken pairs, want 0", clean.NumBroken())
	}
	n := tp.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			p, err := clean.PackedPath(src, dst)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			if want := 2 * g.LCALevel(src, dst); len(p) != want {
				t.Fatalf("%d->%d rerouted to %d hops, want minimal %d", src, dst, len(p), want)
			}
		}
	}

	// Now the buggy engine: pair (0,1) comes back delivered but twice as
	// long as minimal. The lenient compile must refuse to serve it.
	c, err := route.CompileLenient(&detour{Router: lft, src: 0, dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Broken(0, 1) {
		t.Fatal("non-minimal pair 0->1 not recorded in the broken bitset")
	}
	if c.NumBroken() != 1 {
		t.Fatalf("NumBroken = %d, want 1", c.NumBroken())
	}
	if _, err := c.PackedPath(0, 1); !errors.Is(err, route.ErrNoPath) {
		t.Fatalf("PackedPath(0,1) = %v, want ErrNoPath", err)
	}
	// Every other pair is untouched by the bug and still served.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || (src == 0 && dst == 1) {
				continue
			}
			if c.Broken(src, dst) {
				t.Fatalf("pair %d->%d wrongly marked broken", src, dst)
			}
		}
	}
}
