package route

import (
	"fmt"
	"sort"

	"fattree/internal/topo"
)

// DModK builds the D-Mod-K forwarding tables of equation (1) for a fully
// populated tree: at a level-l node, traffic towards a non-descendant
// destination j leaves through up port
//
//	q = floor(j / prod_{i<=l} w_i) mod (w_{l+1} * p_{l+1})
//
// and traffic towards a descendant j leaves through the down port selected
// by j's child digit at that level, on the parallel copy the up-going rule
// would have used one level below — which makes the down path to every
// destination unique (Theorem 2).
func DModK(t *topo.Topology) *LFT {
	return dModK(t, nil, "d-mod-k")
}

// DModKActive builds the rank-compacted D-Mod-K tables for a partially
// populated tree running a job on the given active end-ports (ascending
// order not required). Duplicate or out-of-range hosts — the kind of
// malformed active set a hand-edited topology file produces — are
// reported as errors rather than crashing the caller.
// The spreading index of destination j is its rank among the active hosts
// rather than its raw index, which is how the production subnet-manager
// variant ("enhanced to handle real-life fat-trees") keeps the cyclic
// up-port assignment gap-free when hosts are missing. Inactive
// destinations still get consistent entries (routed by the same rule).
func DModKActive(t *topo.Topology, active []int) (*LFT, error) {
	rank, err := activeRanks(t.NumHosts(), active)
	if err != nil {
		return nil, err
	}
	return dModK(t, rank, fmt.Sprintf("d-mod-k[%d active]", len(active))), nil
}

// DModKRanked builds D-Mod-K tables spreading destinations by an
// arbitrary rank table instead of the raw index: rank[j] replaces j in
// every up-port and parallel-copy choice while the mandatory down-going
// child digits keep following j's real address, so delivery is unchanged
// and only the load spreading moves. DModKActive is the special case
// ranking by position among the active hosts; the node-type
// load-balancing engine ranks by position within each destination's node
// type. A nil rank is the identity (plain DModK).
func DModKRanked(t *topo.Topology, rank []int, name string) (*LFT, error) {
	if rank != nil && len(rank) != t.NumHosts() {
		return nil, fmt.Errorf("route: rank table has %d entries for %d hosts", len(rank), t.NumHosts())
	}
	return dModK(t, rank, name), nil
}

// activeRanks maps each host index to its rank among the sorted active
// set; inactive hosts get the rank they would have if inserted (count of
// active hosts below them), keeping the rule monotone.
func activeRanks(n int, active []int) ([]int, error) {
	as := append([]int(nil), active...)
	sort.Ints(as)
	for i := 1; i < len(as); i++ {
		if as[i] == as[i-1] {
			return nil, fmt.Errorf("route: duplicate active host %d", as[i])
		}
	}
	if len(as) > 0 && (as[0] < 0 || as[len(as)-1] >= n) {
		return nil, fmt.Errorf("route: active host out of range [0,%d)", n)
	}
	rank := make([]int, n)
	k := 0
	for j := 0; j < n; j++ {
		if k < len(as) && as[k] == j {
			rank[j] = k
			k++
		} else {
			rank[j] = k
		}
	}
	return rank, nil
}

func dModK(t *topo.Topology, rank []int, name string) *LFT {
	f := NewLFT(t, name)
	g := t.Spec
	n := t.NumHosts()
	rnk := func(j int) int {
		if rank == nil {
			return j
		}
		return rank[j]
	}
	// Precompute prod w and prod m per level.
	wprod := make([]int, g.H+1)
	mprod := make([]int, g.H+1)
	wprod[0], mprod[0] = 1, 1
	for l := 1; l <= g.H; l++ {
		wprod[l] = wprod[l-1] * g.Wi(l)
		mprod[l] = mprod[l-1] * g.Mi(l)
	}
	for id := range t.Nodes {
		node := &t.Nodes[id]
		l := node.Level
		for j := 0; j < n; j++ {
			if node.Kind == topo.Host {
				if node.Index == j {
					continue // delivered
				}
				q := rnk(j) % (g.Wi(1) * g.Pi(1)) // w1*p1 == 1 on RLFTs
				f.Out[id][j] = node.Up[q]
				continue
			}
			if t.IsDescendantHost(node, j) {
				// Down: child digit at this level plus the
				// parallel copy the level-(l-1) up rule uses.
				a := (j / mprod[l-1]) % g.Mi(l)
				k := (rnk(j) / wprod[l-1]) % (g.Wi(l) * g.Pi(l)) / g.Wi(l)
				f.Out[id][j] = node.Down[a+k*g.Mi(l)]
				continue
			}
			// Up: equation (1).
			q := (rnk(j) / wprod[l]) % (g.Wi(l+1) * g.Pi(l+1))
			f.Out[id][j] = node.Up[q]
		}
	}
	return f
}

// UpPortOf exposes the closed-form up-port rule for a level-l node and
// destination index j on spec g (used by tests against the built tables).
func UpPortOf(g topo.PGFT, l, j int) int {
	return (j / g.WProd(l)) % (g.Wi(l+1) * g.Pi(l+1))
}
