package route

import (
	"fmt"

	"fattree/internal/topo"
)

// Clone returns an independent deep copy of the forwarding tables under a
// new name, backed by its own flat arena. Fault-resilient engines clone
// the healthy baseline and repair only the columns a fault touched,
// instead of regenerating every table.
func (f *LFT) Clone(name string) *LFT {
	n := f.T.NumHosts()
	flat := make([]topo.PortID, len(f.T.Nodes)*n)
	out := make([][]topo.PortID, len(f.T.Nodes))
	for i, row := range f.Out {
		copy(flat[i*n:(i+1)*n], row)
		out[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return &LFT{T: f.T, Name: name, Out: out}
}

// Repatch returns a copy of the compiled arena with the paths towards the
// given destination columns re-walked through inner (typically a locally
// repaired LFT), without re-walking any other pair. A patched pair whose
// new walk fails, is non-minimal, or no longer fits its original slot is
// marked broken instead — the lenient-compile contract — as is every pair
// touching a host in brokenHosts (hosts that lost their only uplink; inner
// must fail their walks too). The offsets table is shared with the
// receiver (both stay immutable); only the entry arena is copied, which is
// what makes a few-column repair cheap relative to a full CompileLenient
// rebuild.
//
// Pairs already broken in the receiver stay broken: Repatch narrows the
// served set, it never revives a pair, so repair from a pristine healthy
// arena rather than chaining patches across fault sets.
func (c *Compiled) Repatch(inner Router, dsts []int, brokenHosts []int) (*Compiled, error) {
	t := inner.Topology()
	if t.NumHosts() != c.n {
		return nil, fmt.Errorf("route: repatch %s: inner router has %d hosts, arena %d", c.Label(), t.NumHosts(), c.n)
	}
	p := &Compiled{
		inner:   inner,
		n:       c.n,
		offs:    c.offs,
		entries: append([]PathEntry(nil), c.entries...),
		broken:  make([]uint64, (c.n*c.n+63)/64),
	}
	if c.broken != nil {
		copy(p.broken, c.broken)
		p.numBroken = c.numBroken
	}
	mark := func(src, dst int) {
		i := src*p.n + dst
		if p.broken[i/64]&(1<<(i%64)) == 0 {
			p.broken[i/64] |= 1 << (i % 64)
			p.numBroken++
		}
	}
	for _, h := range brokenHosts {
		if h < 0 || h >= c.n {
			return nil, fmt.Errorf("route: repatch %s: host %d out of range [0,%d)", c.Label(), h, c.n)
		}
		for o := 0; o < c.n; o++ {
			if o != h {
				mark(h, o)
				mark(o, h)
			}
		}
	}
	buf := make([]PathEntry, 0, 2*t.Spec.H)
	for _, dst := range dsts {
		if dst < 0 || dst >= c.n {
			return nil, fmt.Errorf("route: repatch %s: destination %d out of range [0,%d)", c.Label(), dst, c.n)
		}
		for src := 0; src < c.n; src++ {
			if src == dst || p.Broken(src, dst) {
				continue
			}
			buf = buf[:0]
			err := inner.Walk(src, dst, func(l topo.LinkID, up bool) {
				buf = append(buf, PackEntry(l, up))
			})
			i := src*p.n + dst
			slot := p.entries[p.offs[i]:p.offs[i+1]]
			if err != nil || len(buf) != 2*t.Spec.LCALevel(src, dst) || len(buf) != len(slot) {
				mark(src, dst)
				continue
			}
			copy(slot, buf)
		}
	}
	return p, nil
}
