// Package wire is the daemon's compact binary protocol: the batched,
// epoch-stamped route-serving format ftfabricd speaks next to its JSON
// API, on the same listener. Where GET /v1/route resolves one src→dst
// pair per HTTP round-trip, one RouteSetReq resolves an entire job's
// src→dst set in a single frame, with hops served straight out of the
// compiled CSR arena as varint-packed path entries.
//
// Framing (all integers little-endian, varints unsigned LEB128):
//
//	offset 0  magic   [2]byte  {0xFA, 0xB1} — never a valid HTTP method
//	offset 2  version uint8    (1)
//	offset 3  type    uint8    message type
//	offset 4  length  uint32   payload bytes (<= MaxPayload)
//	offset 8  payload
//
// The first magic byte is what lets one listener serve both protocols:
// no HTTP request line can begin with 0xFA, so a connection's first
// byte decides which handler owns it (see Split).
//
// Message payloads are pure varint/byte sequences — no reflection, no
// field tags — and every decoder is strictly bounds-checked: a count
// can never exceed the bytes that remain, so malformed or truncated
// frames fail fast without large allocations. FuzzWireDecode and the
// byte-exact fixtures under testdata/ pin both properties; protocol
// drift is a test failure, not a silent incompatibility.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol constants.
const (
	// Magic0 and Magic1 open every frame. Magic0 doubles as the
	// protocol-sniffing byte in Split.
	Magic0 = 0xFA
	Magic1 = 0xB1
	// Version is the only wire version this package speaks.
	Version = 1
	// HeaderSize is the fixed frame header length.
	HeaderSize = 8
	// MaxPayload bounds a frame's payload: large enough for a full
	// 100k-endpoint order table or a whole-job route set, small enough
	// that a hostile length field cannot balloon memory.
	MaxPayload = 1 << 26 // 64 MiB
)

// MsgType identifies a frame's payload encoding.
type MsgType uint8

// Message types. Requests are odd-ish conventions aside, every response
// carries the epoch of the snapshot that produced it, so a client can
// pin cached state to an epoch and detect replica skew.
const (
	// TEpochReq asks for the serving epoch: the cheap revalidation
	// probe. Empty payload.
	TEpochReq MsgType = 0x01
	// TEpochResp answers with the current epoch and active engine.
	TEpochResp MsgType = 0x02
	// TRouteSetReq resolves a batch of src→dst pairs (or a placed
	// job's whole pair set) in one round-trip.
	TRouteSetReq MsgType = 0x03
	// TRouteSetResp carries the epoch-stamped batched answer.
	TRouteSetResp MsgType = 0x04
	// TNotModified short-circuits a RouteSetReq whose EpochHint still
	// matches the serving epoch: the client's cached set remains valid.
	TNotModified MsgType = 0x05
	// TOrderReq asks for the MPI node ordering. Empty payload.
	TOrderReq MsgType = 0x06
	// TOrderResp carries the epoch-stamped rank→host table.
	TOrderResp MsgType = 0x07
	// TError reports a request-level failure.
	TError MsgType = 0x08
)

// Error codes carried by TError.
const (
	CodeBadRequest  = 1 // malformed or out-of-range request
	CodeNotFound    = 2 // unknown engine or job
	CodeUnavailable = 3 // pair unroutable under the serving epoch
	CodeInternal    = 4 // server-side failure
)

// Decode errors.
var (
	// ErrBadMagic marks a frame that does not open with the protocol
	// magic — usually an HTTP request hitting the wrong handler.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion marks an unsupported protocol version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrTruncated marks a payload that ends before its own fields do.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrTooLarge marks a frame whose declared length exceeds
	// MaxPayload.
	ErrTooLarge = errors.New("wire: frame exceeds MaxPayload")
	// ErrUnknownType marks an unrecognized message type byte.
	ErrUnknownType = errors.New("wire: unknown message type")
	// ErrTrailing marks extra bytes after a fully decoded payload.
	ErrTrailing = errors.New("wire: trailing bytes after payload")
)

// Message is one protocol message; every concrete type knows its frame
// type byte and how to append its payload encoding.
type Message interface {
	Type() MsgType
	appendPayload(dst []byte) []byte
}

// EpochReq is the cheap epoch probe (empty payload).
type EpochReq struct{}

// Type implements Message.
func (EpochReq) Type() MsgType                   { return TEpochReq }
func (EpochReq) appendPayload(dst []byte) []byte { return dst }

// EpochResp answers an EpochReq.
type EpochResp struct {
	Epoch  uint64
	Engine string
}

// Type implements Message.
func (*EpochResp) Type() MsgType { return TEpochResp }

func (m *EpochResp) appendPayload(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, m.Epoch)
	return appendString(dst, m.Engine)
}

// RouteSetReq resolves many pairs at once. Exactly one of the two
// shapes is used per request: ByJob selects the whole pair set of a
// placed job (precomputed server-side at placement, so the lookup is a
// pure cache hit); otherwise Pairs lists explicit src→dst pairs.
type RouteSetReq struct {
	// EpochHint, when non-zero, asks the server to answer NotModified
	// if its serving epoch still equals the hint — the conditional
	// fetch that makes client caches cheap to revalidate.
	EpochHint uint64
	// Engine selects the routing engine's tables ("" = active engine).
	Engine string
	// ByJob selects job mode; Job is the placement id.
	ByJob bool
	Job   uint64
	// Pairs is the explicit batch, pairs-mode only.
	Pairs [][2]uint32
}

// Type implements Message.
func (*RouteSetReq) Type() MsgType { return TRouteSetReq }

func (m *RouteSetReq) appendPayload(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, m.EpochHint)
	if m.ByJob {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendString(dst, m.Engine)
	if m.ByJob {
		return binary.AppendUvarint(dst, m.Job)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Pairs)))
	for _, p := range m.Pairs {
		dst = binary.AppendUvarint(dst, uint64(p[0]))
		dst = binary.AppendUvarint(dst, uint64(p[1]))
	}
	return dst
}

// PairRoute is one resolved pair of a RouteSetResp. Hops are the packed
// path entries of the compiled arena (link id shifted left once, bit 0
// = up), varint-encoded on the wire; OK=false marks a pair the serving
// epoch cannot route (broken by faults or an unroutable host) — the
// binary twin of the JSON 503.
type PairRoute struct {
	Src, Dst uint32
	OK       bool
	Hops     []uint32
}

// RouteSetResp is the batched, epoch-stamped answer. All pairs were
// resolved against exactly one snapshot: one epoch, one engine's
// tables, never a mix.
type RouteSetResp struct {
	Epoch   uint64
	Engine  string
	Routing string
	Pairs   []PairRoute
}

// Type implements Message.
func (*RouteSetResp) Type() MsgType { return TRouteSetResp }

func (m *RouteSetResp) appendPayload(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, m.Epoch)
	dst = appendString(dst, m.Engine)
	dst = appendString(dst, m.Routing)
	dst = binary.AppendUvarint(dst, uint64(len(m.Pairs)))
	for i := range m.Pairs {
		p := &m.Pairs[i]
		dst = binary.AppendUvarint(dst, uint64(p.Src))
		dst = binary.AppendUvarint(dst, uint64(p.Dst))
		if !p.OK {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(p.Hops)))
		for _, h := range p.Hops {
			dst = binary.AppendUvarint(dst, uint64(h))
		}
	}
	return dst
}

// NotModified answers a RouteSetReq whose EpochHint matched: the
// client's pinned set is still the serving truth.
type NotModified struct {
	Epoch uint64
}

// Type implements Message.
func (*NotModified) Type() MsgType { return TNotModified }

func (m *NotModified) appendPayload(dst []byte) []byte {
	return binary.AppendUvarint(dst, m.Epoch)
}

// OrderReq asks for the MPI node ordering (empty payload).
type OrderReq struct{}

// Type implements Message.
func (OrderReq) Type() MsgType                   { return TOrderReq }
func (OrderReq) appendPayload(dst []byte) []byte { return dst }

// OrderResp carries the epoch-stamped rank→host table.
type OrderResp struct {
	Epoch  uint64
	Label  string
	HostOf []uint32
}

// Type implements Message.
func (*OrderResp) Type() MsgType { return TOrderResp }

func (m *OrderResp) appendPayload(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, m.Epoch)
	dst = appendString(dst, m.Label)
	dst = binary.AppendUvarint(dst, uint64(len(m.HostOf)))
	for _, h := range m.HostOf {
		dst = binary.AppendUvarint(dst, uint64(h))
	}
	return dst
}

// ErrorResp reports a request-level failure without closing the
// connection.
type ErrorResp struct {
	Code uint8
	Msg  string
}

// Type implements Message.
func (*ErrorResp) Type() MsgType { return TError }

func (m *ErrorResp) appendPayload(dst []byte) []byte {
	dst = append(dst, m.Code)
	return appendString(dst, m.Msg)
}

// Error makes ErrorResp usable as a Go error on the client side.
func (m *ErrorResp) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", m.Code, m.Msg)
}

// DecodePayload decodes one payload of the given type. The whole
// payload must be consumed; trailing bytes are an error (they would
// mean encoder and decoder disagree about the format).
func DecodePayload(t MsgType, payload []byte) (Message, error) {
	d := decoder{b: payload}
	var m Message
	switch t {
	case TEpochReq:
		m = EpochReq{}
	case TEpochResp:
		r := &EpochResp{}
		r.Epoch = d.uvarint()
		r.Engine = d.str()
		m = r
	case TRouteSetReq:
		r := &RouteSetReq{}
		r.EpochHint = d.uvarint()
		mode := d.byte()
		r.Engine = d.str()
		switch mode {
		case 1:
			r.ByJob = true
			r.Job = d.uvarint()
		case 0:
			n := d.count(2) // a pair is at least two varint bytes
			if d.err == nil {
				r.Pairs = make([][2]uint32, n)
				for i := range r.Pairs {
					r.Pairs[i][0] = d.u32()
					r.Pairs[i][1] = d.u32()
				}
			}
		default:
			return nil, fmt.Errorf("%w: route-set mode %d", ErrTruncated, mode)
		}
		m = r
	case TRouteSetResp:
		r := &RouteSetResp{}
		r.Epoch = d.uvarint()
		r.Engine = d.str()
		r.Routing = d.str()
		n := d.count(3) // src, dst, status
		if d.err == nil {
			r.Pairs = make([]PairRoute, n)
			for i := range r.Pairs {
				p := &r.Pairs[i]
				p.Src = d.u32()
				p.Dst = d.u32()
				switch d.byte() {
				case 1:
					p.OK = true
					nh := d.count(1)
					if d.err != nil {
						break
					}
					p.Hops = make([]uint32, nh)
					for k := range p.Hops {
						p.Hops[k] = d.u32()
					}
				case 0:
				default:
					if d.err == nil {
						d.err = fmt.Errorf("%w: pair status byte", ErrTruncated)
					}
				}
				if d.err != nil {
					break
				}
			}
		}
		m = r
	case TNotModified:
		r := &NotModified{}
		r.Epoch = d.uvarint()
		m = r
	case TOrderReq:
		m = OrderReq{}
	case TOrderResp:
		r := &OrderResp{}
		r.Epoch = d.uvarint()
		r.Label = d.str()
		n := d.count(1)
		if d.err == nil {
			r.HostOf = make([]uint32, n)
			for i := range r.HostOf {
				r.HostOf[i] = d.u32()
			}
		}
		m = r
	case TError:
		r := &ErrorResp{}
		r.Code = d.byte()
		r.Msg = d.str()
		m = r
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, uint8(t))
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d byte(s)", ErrTrailing, len(d.b))
	}
	return m, nil
}

// appendString appends a uvarint length followed by the raw bytes.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decoder consumes a payload front to back, latching the first error;
// after an error every accessor returns a zero value, so decode paths
// can run straight-line and check err once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// u32 reads a uvarint that must fit uint32 (host indices, packed path
// entries).
func (d *decoder) u32() uint32 {
	v := d.uvarint()
	if v > 0xFFFFFFFF {
		d.fail()
		return 0
	}
	return uint32(v)
}

// count reads an element count and rejects any value that could not
// possibly fit in the remaining bytes at minBytes per element — the
// guard that keeps a hostile count from allocating gigabytes.
func (d *decoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)/minBytes) {
		d.fail()
		return 0
	}
	return int(v)
}

// str reads a uvarint-length-prefixed string, bounds-checked against
// the remaining payload.
func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
