package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSplitServesBothProtocols proves one listener serves HTTP and the
// binary protocol side by side: an http.Server answers plain requests
// while magic-opened connections land in the wire handler, each seeing
// its full byte stream including the sniffed prefix.
func TestSplitServesBothProtocols(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wireConns atomic.Int64
	httpLn := Split(ln, func(c net.Conn) {
		defer c.Close()
		wireConns.Add(1)
		for {
			m, err := ReadMessage(c)
			if err != nil {
				return
			}
			if _, ok := m.(EpochReq); ok {
				if err := WriteMessage(c, &EpochResp{Epoch: 7, Engine: "dmodk"}); err != nil {
					return
				}
			}
		}
	})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "http-ok")
	})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(httpLn)
	}()
	defer func() {
		srv.Close()
		<-done
	}()
	addr := ln.Addr().String()

	// HTTP side.
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "http-ok" {
		t.Fatalf("http body %q", body)
	}

	// Binary side, twice over one connection (persistence).
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		if err := WriteMessage(c, EpochReq{}); err != nil {
			t.Fatal(err)
		}
		m, err := ReadMessage(c)
		if err != nil {
			t.Fatal(err)
		}
		er, ok := m.(*EpochResp)
		if !ok || er.Epoch != 7 {
			t.Fatalf("reply %#v", m)
		}
	}
	if got := wireConns.Load(); got != 1 {
		t.Fatalf("wire handler saw %d conns, want 1", got)
	}

	// HTTP still works after binary traffic.
	resp, err = http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// tempErr is a transient accept failure (EMFILE-style): a net.Error
// whose Temporary() is true.
type tempErr struct{}

func (tempErr) Error() string   { return "temporary accept error" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// flakyListener injects scripted Accept errors before delegating to
// the real listener.
type flakyListener struct {
	net.Listener
	mu   sync.Mutex
	errs []error
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if len(l.errs) > 0 {
		err := l.errs[0]
		l.errs = l.errs[1:]
		l.mu.Unlock()
		return nil, err
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestSplitSurvivesTemporaryAcceptErrors: transient accept failures
// must not permanently stop the accept loop — the next connections are
// still served — while a permanent error still surfaces through the
// HTTP side's Accept and ends the loop.
func TestSplitSurvivesTemporaryAcceptErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln, errs: []error{tempErr{}, tempErr{}}}
	split := Split(fl, func(c net.Conn) {
		defer c.Close()
		if m, err := ReadMessage(c); err == nil {
			if _, ok := m.(EpochReq); ok {
				WriteMessage(c, &EpochResp{Epoch: 3, Engine: "dmodk"})
			}
		}
	})
	defer split.Close()

	roundTrip := func() {
		t.Helper()
		c, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(5 * time.Second))
		if err := WriteMessage(c, EpochReq{}); err != nil {
			t.Fatal(err)
		}
		m, err := ReadMessage(c)
		if err != nil {
			t.Fatalf("round-trip after injected errors: %v", err)
		}
		if er, ok := m.(*EpochResp); !ok || er.Epoch != 3 {
			t.Fatalf("reply %#v", m)
		}
	}
	roundTrip() // the two temporary errors were retried through

	// A permanent error ends the loop and surfaces on Accept. It is
	// only hit on the accept after the next successful one, so drive
	// one more connection through first.
	permanent := errors.New("permanent accept failure")
	fl.mu.Lock()
	fl.errs = []error{permanent}
	fl.mu.Unlock()
	roundTrip()
	if _, err := split.Accept(); err != permanent {
		t.Fatalf("Accept after permanent error: %v", err)
	}
}
