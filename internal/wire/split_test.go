package wire

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestSplitServesBothProtocols proves one listener serves HTTP and the
// binary protocol side by side: an http.Server answers plain requests
// while magic-opened connections land in the wire handler, each seeing
// its full byte stream including the sniffed prefix.
func TestSplitServesBothProtocols(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wireConns atomic.Int64
	httpLn := Split(ln, func(c net.Conn) {
		defer c.Close()
		wireConns.Add(1)
		for {
			m, err := ReadMessage(c)
			if err != nil {
				return
			}
			if _, ok := m.(EpochReq); ok {
				if err := WriteMessage(c, &EpochResp{Epoch: 7, Engine: "dmodk"}); err != nil {
					return
				}
			}
		}
	})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "http-ok")
	})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(httpLn)
	}()
	defer func() {
		srv.Close()
		<-done
	}()
	addr := ln.Addr().String()

	// HTTP side.
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "http-ok" {
		t.Fatalf("http body %q", body)
	}

	// Binary side, twice over one connection (persistence).
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		if err := WriteMessage(c, EpochReq{}); err != nil {
			t.Fatal(err)
		}
		m, err := ReadMessage(c)
		if err != nil {
			t.Fatal(err)
		}
		er, ok := m.(*EpochResp)
		if !ok || er.Epoch != 7 {
			t.Fatalf("reply %#v", m)
		}
	}
	if got := wireConns.Load(); got != 1 {
		t.Fatalf("wire handler saw %d conns, want 1", got)
	}

	// HTTP still works after binary traffic.
	resp, err = http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
