package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// AppendFrame appends a complete frame — header plus encoded payload —
// for m to dst and returns the extended slice. This is the zero-copy
// building block: the daemon pre-encodes whole job route sets with it
// at placement time and serves the bytes verbatim.
func AppendFrame(dst []byte, m Message) []byte {
	head := len(dst)
	dst = append(dst, Magic0, Magic1, Version, byte(m.Type()), 0, 0, 0, 0)
	dst = m.appendPayload(dst)
	binary.LittleEndian.PutUint32(dst[head+4:head+8], uint32(len(dst)-head-HeaderSize))
	return dst
}

// EncodeFrame is AppendFrame into a fresh slice.
func EncodeFrame(m Message) []byte { return AppendFrame(nil, m) }

// AppendFrameChecked is AppendFrame for producers whose payload size
// is data-dependent (whole-job route sets): it refuses to emit a frame
// whose payload exceeds MaxPayload — which every peer would reject
// unread with ErrTooLarge — returning dst unextended and the error
// instead.
func AppendFrameChecked(dst []byte, m Message) ([]byte, error) {
	out := AppendFrame(dst, m)
	if n := len(out) - len(dst) - HeaderSize; n > MaxPayload {
		return dst, fmt.Errorf("%w: %d-byte payload", ErrTooLarge, n)
	}
	return out, nil
}

// WriteMessage frames and writes m in a single Write call.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(EncodeFrame(m))
	return err
}

// ReadMessage reads one frame from r and decodes its payload. Frames
// larger than MaxPayload are rejected before any payload allocation.
// io.EOF is returned untouched at a clean frame boundary so connection
// loops can distinguish hangup from corruption.
func ReadMessage(r io.Reader) (Message, error) {
	t, payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return DecodePayload(t, payload)
}

// ReadFrame reads and validates one frame header plus raw payload.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var head [HeaderSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: mid-header", ErrTruncated)
		}
		return 0, nil, err
	}
	if head[0] != Magic0 || head[1] != Magic1 {
		return 0, nil, fmt.Errorf("%w: 0x%02x 0x%02x", ErrBadMagic, head[0], head[1])
	}
	if head[2] != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, head[2])
	}
	n := binary.LittleEndian.Uint32(head[4:8])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: mid-payload: %v", ErrTruncated, err)
	}
	return MsgType(head[3]), payload, nil
}
