package wire

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// Split serves two protocols on one listener. Every accepted connection
// has its first byte sniffed: Magic0 can never open an HTTP request
// line, so a match hands the connection to handle (on its own
// goroutine, with the sniffed bytes still readable); everything else is
// delivered through the returned listener, which an http.Server can
// Serve from unchanged. Closing the returned listener closes ln and
// stops the accept loop; connections already handed to handle are the
// handler's to close.
func Split(ln net.Listener, handle func(net.Conn)) net.Listener {
	s := &splitListener{
		inner:  ln,
		handle: handle,
		conns:  make(chan net.Conn),
		errs:   make(chan error, 1),
		done:   make(chan struct{}),
	}
	go s.acceptLoop()
	return s
}

type splitListener struct {
	inner  net.Listener
	handle func(net.Conn)
	conns  chan net.Conn
	errs   chan error
	done   chan struct{}
	once   sync.Once
}

func (s *splitListener) acceptLoop() {
	var delay time.Duration
	for {
		c, err := s.inner.Accept()
		if err != nil {
			// A transient error (EMFILE, ECONNABORTED, ...) must not
			// permanently stop accepting for both protocols while the
			// daemon otherwise looks healthy: retry with backoff, the
			// same discipline net/http's serve loop applies. Only
			// permanent errors and listener close end the loop.
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				select {
				case <-time.After(delay):
					continue
				case <-s.done:
					return
				}
			}
			select {
			case s.errs <- err:
			case <-s.done:
			}
			return
		}
		delay = 0
		// Sniff on a goroutine: a client that connects and sends
		// nothing must not stall every other accept.
		go s.sniff(c)
	}
}

func (s *splitListener) sniff(c net.Conn) {
	br := bufio.NewReader(c)
	first, err := br.Peek(1)
	if err != nil {
		c.Close()
		return
	}
	bc := &bufferedConn{Conn: c, r: br}
	if first[0] == Magic0 {
		s.handle(bc)
		return
	}
	select {
	case s.conns <- bc:
	case <-s.done:
		c.Close()
	}
}

// Accept implements net.Listener for the HTTP side.
func (s *splitListener) Accept() (net.Conn, error) {
	select {
	case c := <-s.conns:
		return c, nil
	case err := <-s.errs:
		return nil, err
	case <-s.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener: closes the underlying listener and
// releases anything blocked in Accept.
func (s *splitListener) Close() error {
	var err error
	s.once.Do(func() {
		close(s.done)
		err = s.inner.Close()
	})
	return err
}

// Addr implements net.Listener.
func (s *splitListener) Addr() net.Addr { return s.inner.Addr() }

// bufferedConn replays the sniffed bytes before the raw connection.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }
