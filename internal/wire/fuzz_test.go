package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame reader and every
// payload decoder: malformed lengths, truncated frames, hostile counts,
// epoch overflows. The decoder must never panic, never allocate past
// the payload it was handed, and anything it accepts must re-encode to
// a frame that decodes to the same bytes again (canonical round-trip).
// Wired into the CI fuzz-smoke job next to FuzzDoc.
func FuzzWireDecode(f *testing.F) {
	for _, m := range exampleMessages() {
		f.Add(EncodeFrame(m))
	}
	// Hand-built hostile seeds: truncated header, giant declared
	// length, count overflow, epoch at the uint64 edge.
	f.Add([]byte{Magic0, Magic1, Version, byte(TEpochReq)})
	f.Add([]byte{Magic0, Magic1, Version, byte(TRouteSetResp), 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(EncodeFrame(&NotModified{Epoch: ^uint64(0)}))
	f.Add(EncodeFrame(&EpochResp{Epoch: ^uint64(0), Engine: "e"}))
	huge := binary.AppendUvarint(nil, 1)
	huge = appendString(huge, "x")
	huge = appendString(huge, "y")
	huge = binary.AppendUvarint(huge, 1<<40) // absurd pair count
	f.Add(append([]byte{Magic0, Magic1, Version, byte(TRouteSetResp),
		byte(len(huge)), 0, 0, 0}, huge...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			m, err := ReadMessage(r)
			if err != nil {
				// Any error is fine — io.EOF, truncation, bad magic —
				// as long as it is an error, not a panic.
				if err == io.EOF {
					return
				}
				return
			}
			// Accepted messages must round-trip canonically.
			frame := EncodeFrame(m)
			m2, err := ReadMessage(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("re-decode of accepted message failed: %v (frame %x)", err, frame)
			}
			if re := EncodeFrame(m2); !bytes.Equal(re, frame) {
				t.Fatalf("non-canonical round-trip:\n got %x\nwant %x", re, frame)
			}
		}
	})
}
