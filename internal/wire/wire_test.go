package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

// exampleMessages returns one representative value per message type —
// the same set the golden fixtures pin. Kept in one place so a new
// message type added without a fixture fails TestGoldenCoverage.
func exampleMessages() map[string]Message {
	return map[string]Message{
		"epoch_req":  EpochReq{},
		"epoch_resp": &EpochResp{Epoch: 42, Engine: "dmodk"},
		"routeset_req_pairs": &RouteSetReq{
			EpochHint: 7,
			Engine:    "fault-resilient",
			Pairs:     [][2]uint32{{0, 17}, {17, 0}, {300, 23}},
		},
		"routeset_req_job": &RouteSetReq{ByJob: true, Job: 3, Engine: ""},
		"routeset_resp": &RouteSetResp{
			Epoch:   42,
			Engine:  "dmodk",
			Routing: "d-mod-k",
			Pairs: []PairRoute{
				{Src: 0, Dst: 17, OK: true, Hops: []uint32{5, 12, 130, 261}},
				{Src: 17, Dst: 17, OK: true, Hops: []uint32{}},
				{Src: 3, Dst: 9, OK: false},
			},
		},
		"not_modified": &NotModified{Epoch: 42},
		"order_req":    OrderReq{},
		"order_resp": &OrderResp{
			Epoch:  9,
			Label:  "topology",
			HostOf: []uint32{0, 1, 2, 3, 7, 6, 5, 4},
		},
		"error": &ErrorResp{Code: CodeNotFound, Msg: "job 99 not placed"},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for name, m := range exampleMessages() {
		t.Run(name, func(t *testing.T) {
			frame := EncodeFrame(m)
			got, err := ReadMessage(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Type() != m.Type() {
				t.Fatalf("type %d, want %d", got.Type(), m.Type())
			}
			// Re-encoding the decoded message must be byte-identical:
			// the canonical-encoding property the conformance fixtures
			// rely on.
			if re := EncodeFrame(got); !bytes.Equal(re, frame) {
				t.Fatalf("re-encode differs:\n got %x\nwant %x", re, frame)
			}
			// Hops/empty-slice normalization aside, the decoded value
			// must match semantically.
			if !equalMessages(m, got) {
				t.Fatalf("decoded %#v, want %#v", got, m)
			}
		})
	}
}

// equalMessages compares messages, treating nil and empty slices as
// equal (decode materializes empty slices).
func equalMessages(a, b Message) bool {
	return bytes.Equal(EncodeFrame(a), EncodeFrame(b)) &&
		reflect.TypeOf(a) == reflect.TypeOf(b)
}

func TestStreamedFrames(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&RouteSetReq{Pairs: [][2]uint32{{1, 2}}},
		EpochReq{},
		&EpochResp{Epoch: 1, Engine: "dmodk"},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !equalMessages(want, got) {
			t.Fatalf("frame %d: %#v != %#v", i, got, want)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	okFrame := EncodeFrame(&EpochResp{Epoch: 3, Engine: "dmodk"})
	cases := map[string]struct {
		frame []byte
		want  error
	}{
		"bad magic":     {append([]byte{'G', 'E'}, okFrame[2:]...), ErrBadMagic},
		"bad version":   {mutate(okFrame, 2, 9), ErrBadVersion},
		"unknown type":  {mutate(okFrame, 3, 0x7F), ErrUnknownType},
		"mid header":    {okFrame[:4], ErrTruncated},
		"mid payload":   {okFrame[:len(okFrame)-2], ErrTruncated},
		"trailing junk": {lengthened(okFrame, 2), ErrTrailing},
		"huge length":   {hugeLength(okFrame), ErrTooLarge},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadMessage(bytes.NewReader(tc.frame))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestCountGuard proves a hostile element count cannot force a large
// allocation: a route-set response claiming 2^30 pairs in a tiny
// payload must fail as truncated, not OOM.
func TestCountGuard(t *testing.T) {
	payload := binary.AppendUvarint(nil, 1) // epoch
	payload = appendString(payload, "e")
	payload = appendString(payload, "r")
	payload = binary.AppendUvarint(payload, 1<<30) // pairs "count"
	if _, err := DecodePayload(TRouteSetResp, payload); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Same for a string length overrunning the payload.
	payload = binary.AppendUvarint(nil, 1)
	payload = binary.AppendUvarint(payload, 1<<20)
	if _, err := DecodePayload(TEpochResp, payload); !errors.Is(err, ErrTruncated) {
		t.Fatalf("string overrun: err = %v, want ErrTruncated", err)
	}
}

func mutate(frame []byte, i int, b byte) []byte {
	out := append([]byte(nil), frame...)
	out[i] = b
	return out
}

// lengthened declares n extra payload bytes and appends them, producing
// a frame whose payload decodes clean but leaves trailing bytes.
func lengthened(frame []byte, n int) []byte {
	out := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(frame)-HeaderSize+n))
	for i := 0; i < n; i++ {
		out = append(out, 0xEE)
	}
	return out
}

func hugeLength(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(out[4:8], MaxPayload+1)
	return out
}

// TestAppendFrameCheckedBudget: a message whose payload encodes past
// MaxPayload is refused with ErrTooLarge and dst comes back
// unextended, so a producer can substitute an application-level error
// frame instead of emitting bytes every peer rejects unread.
func TestAppendFrameCheckedBudget(t *testing.T) {
	dst := []byte("prefix")
	out, err := AppendFrameChecked(dst, &EpochResp{Epoch: 1, Engine: "dmodk"})
	if err != nil {
		t.Fatalf("in-budget frame refused: %v", err)
	}
	if !bytes.Equal(out, AppendFrame([]byte("prefix"), &EpochResp{Epoch: 1, Engine: "dmodk"})) {
		t.Fatal("checked append differs from AppendFrame")
	}

	hops := make([]uint32, 14_000_000)
	for i := range hops {
		hops[i] = 0xFFFFFFF0 // 5-byte varints push the payload past 64 MiB
	}
	big := &RouteSetResp{Pairs: []PairRoute{{Src: 0, Dst: 1, OK: true, Hops: hops}}}
	out, err = AppendFrameChecked(dst, big)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrTooLarge", err)
	}
	if len(out) != len(dst) {
		t.Fatalf("refused append still extended dst to %d bytes", len(out))
	}
}
