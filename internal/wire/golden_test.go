package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite wire golden fixtures")

// TestGoldenFrames pins the exact on-the-wire bytes of every message
// type against checked-in fixtures. Any encoding change — field order,
// varint widths, header layout — fails here first, so protocol drift is
// a reviewed diff in testdata/, never a silent incompatibility between
// a new client and an old daemon. Regenerate deliberately with
// `go test ./internal/wire -run Golden -update`.
func TestGoldenFrames(t *testing.T) {
	for name, m := range exampleMessages() {
		t.Run(name, func(t *testing.T) {
			frame := EncodeFrame(m)
			path := filepath.Join("testdata", name+".bin")
			if *update {
				if err := os.WriteFile(path, frame, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(frame, want) {
				t.Fatalf("encoding drifted from %s:\n got %x\nwant %x\n(run with -update only for a deliberate protocol change)",
					path, frame, want)
			}
			// The fixture must decode back to a message that re-encodes
			// identically: decoder and fixture agree, not just encoder.
			got, err := ReadMessage(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("fixture does not decode: %v", err)
			}
			if re := EncodeFrame(got); !bytes.Equal(re, want) {
				t.Fatalf("fixture re-encode differs:\n got %x\nwant %x", re, want)
			}
		})
	}
}

// TestGoldenCoverage fails when a message type exists without a golden
// fixture, so new protocol messages cannot dodge conformance pinning.
func TestGoldenCoverage(t *testing.T) {
	covered := map[MsgType]bool{}
	for _, m := range exampleMessages() {
		covered[m.Type()] = true
	}
	for ty := TEpochReq; ty <= TError; ty++ {
		if !covered[ty] {
			t.Errorf("message type 0x%02x has no example/golden fixture", uint8(ty))
		}
	}
	// And every fixture on disk must belong to a known example, so
	// stale fixtures do not linger unverified.
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	names := exampleMessages()
	var stray []string
	for _, e := range ents {
		if e.IsDir() { // fuzz corpus lives under testdata/fuzz/
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".bin")
		if _, ok := names[base]; !ok {
			stray = append(stray, e.Name())
		}
	}
	sort.Strings(stray)
	if len(stray) > 0 {
		t.Errorf("stray fixtures with no example message: %v", stray)
	}
}
