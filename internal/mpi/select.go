package mpi

import (
	"fmt"
	"sort"

	"fattree/internal/cps"
)

// This file models the algorithm-selection layer of a tuned MPI
// collectives module: given a collective, a communicator size and a
// message size, pick the algorithm (and hence the CPS) the library would
// run. Thresholds follow the common MVAPICH/OpenMPI defaults the paper's
// survey covers: ~8 KiB separates "small" from "large", and some
// algorithms are only selected on power-of-two communicators.

// SmallMessageThreshold is the byte boundary between the small- and
// large-message algorithm families.
const SmallMessageThreshold = 8 << 10

// Selection is a resolved algorithm choice.
type Selection struct {
	Use      AlgorithmUse
	Sequence cps.Sequence
}

// SelectAlgorithm resolves the algorithm a library would pick for the
// collective at the given communicator and message size, and instantiates
// its permutation sequence. The choice honours the Pow2Only annotations;
// when the preferred row is pow2-only and the size is not a power of two,
// the next matching row is used (the libraries' own fallback behaviour).
func SelectAlgorithm(lib Library, collective string, commSize int, msgBytes int64) (*Selection, error) {
	if commSize < 1 {
		return nil, fmt.Errorf("mpi: communicator size %d", commSize)
	}
	class := SmallMessages
	if msgBytes >= SmallMessageThreshold {
		class = LargeMessages
	}
	pow2 := commSize&(commSize-1) == 0
	var fallback *AlgorithmUse
	for i := range Catalog {
		u := &Catalog[i]
		if u.Library != lib || u.Collective != collective {
			continue
		}
		if u.Sizes != class {
			if fallback == nil {
				fallback = u // size-class mismatch beats nothing
			}
			continue
		}
		if u.Pow2Only && !pow2 {
			continue
		}
		seq, err := NewSequence(u.CPS, commSize)
		if err != nil {
			return nil, err
		}
		return &Selection{Use: *u, Sequence: seq}, nil
	}
	if fallback != nil && (!fallback.Pow2Only || pow2) {
		seq, err := NewSequence(fallback.CPS, commSize)
		if err != nil {
			return nil, err
		}
		return &Selection{Use: *fallback, Sequence: seq}, nil
	}
	return nil, fmt.Errorf("mpi: %s has no %s algorithm for n=%d, %d bytes", lib, collective, commSize, msgBytes)
}

// Collectives returns the distinct collective names a library's
// catalogue covers, sorted.
func Collectives(lib Library) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range Catalog {
		if u.Library == lib && !seen[u.Collective] {
			seen[u.Collective] = true
			out = append(out, u.Collective)
		}
	}
	sort.Strings(out)
	return out
}
