package mpi

import (
	"fmt"
)

// Segment-level execution of the large-message collective algorithms.
// Where datasim.go moves whole vectors, these functions move the vector
// *pieces* the real algorithms move — each rank owns segment slices, and
// every stage transfers specific segments, exactly like MVAPICH's and
// OpenMPI's large-message paths. They validate that the Table 1
// algorithms' data movement matches their permutation sequences.

// RingAllGather executes the ring allgather: rank r starts holding
// segment r; in stage s it sends segment (r-s mod n) to rank r+1 and
// receives segment (r-1-s mod n) from rank r-1. After n-1 stages every
// rank holds every segment. The returned matrix is out[rank][segment].
func RingAllGather(contrib [][]float64) ([][][]float64, error) {
	n := len(contrib)
	if n == 0 {
		return nil, fmt.Errorf("mpi: no ranks")
	}
	// state[rank][segment] = the segment's data or nil.
	state := make([][][]float64, n)
	for r := 0; r < n; r++ {
		state[r] = make([][]float64, n)
		state[r][r] = append([]float64(nil), contrib[r]...)
	}
	for s := 0; s < n-1; s++ {
		type move struct {
			dst, seg int
			data     []float64
		}
		var moves []move
		for r := 0; r < n; r++ {
			seg := ((r-s)%n + n) % n
			if state[r][seg] == nil {
				return nil, fmt.Errorf("mpi: ring stage %d: rank %d missing segment %d to forward", s, r, seg)
			}
			moves = append(moves, move{dst: (r + 1) % n, seg: seg, data: state[r][seg]})
		}
		for _, m := range moves {
			if state[m.dst][m.seg] != nil && s < n-2 {
				return nil, fmt.Errorf("mpi: ring: duplicate delivery of segment %d to rank %d", m.seg, m.dst)
			}
			state[m.dst][m.seg] = m.data
		}
	}
	for r := 0; r < n; r++ {
		for seg := 0; seg < n; seg++ {
			if state[r][seg] == nil {
				return nil, fmt.Errorf("mpi: ring allgather incomplete: rank %d misses segment %d", r, seg)
			}
		}
	}
	return state, nil
}

// HalvingDoublingAllReduce executes the large-message allreduce: a
// recursive-halving reduce-scatter (each stage exchanges half of the
// remaining range with the XOR partner and reduces it) followed by a
// recursive-doubling allgather of the reduced pieces. Power-of-two rank
// counts only, like the libraries' fast path. contrib is
// contrib[rank][element]; the element count must be divisible by n.
// Returns the fully reduced vector per rank.
func HalvingDoublingAllReduce(contrib [][]float64) ([][]float64, error) {
	n := len(contrib)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("mpi: halving-doubling wants a power-of-two rank count, got %d", n)
	}
	width := len(contrib[0])
	if width%n != 0 {
		return nil, fmt.Errorf("mpi: vector width %d not divisible by %d ranks", width, n)
	}
	buf := make([][]float64, n)
	for r := range buf {
		if len(contrib[r]) != width {
			return nil, fmt.Errorf("mpi: ragged contribution at rank %d", r)
		}
		buf[r] = append([]float64(nil), contrib[r]...)
	}
	// Reduce-scatter: after stage s, rank r is responsible for a range
	// of width/2^(s+1) elements; ranges follow the binary structure.
	log := 0
	for 1<<log < n {
		log++
	}
	lo := make([]int, n)
	hi := make([]int, n)
	for r := range lo {
		lo[r], hi[r] = 0, width
	}
	for s := log - 1; s >= 0; s-- {
		d := 1 << s
		// Snapshot the halves being sent.
		sendLo := make([]int, n)
		sendHi := make([]int, n)
		data := make([][]float64, n)
		for r := 0; r < n; r++ {
			mid := (lo[r] + hi[r]) / 2
			if r&d == 0 {
				// Keep the lower half, send the upper.
				sendLo[r], sendHi[r] = mid, hi[r]
			} else {
				sendLo[r], sendHi[r] = lo[r], mid
			}
			data[r] = append([]float64(nil), buf[r][sendLo[r]:sendHi[r]]...)
		}
		for r := 0; r < n; r++ {
			p := r ^ d
			// Receive the partner's sent half (which is the half r
			// keeps) and reduce.
			for i, v := range data[p] {
				buf[r][sendLo[p]+i] += v
			}
			if r&d == 0 {
				hi[r] = (lo[r] + hi[r]) / 2
			} else {
				lo[r] = (lo[r] + hi[r]) / 2
			}
		}
	}
	// Allgather the reduced ranges back: mirror the halving.
	for s := 0; s < log; s++ {
		d := 1 << s
		data := make([][]float64, n)
		plo := append([]int(nil), lo...)
		phi := append([]int(nil), hi...)
		for r := 0; r < n; r++ {
			data[r] = append([]float64(nil), buf[r][plo[r]:phi[r]]...)
		}
		for r := 0; r < n; r++ {
			p := r ^ d
			copy(buf[r][plo[p]:plo[p]+len(data[p])], data[p])
			if plo[p] < lo[r] {
				lo[r] = plo[p]
			}
			if phi[p] > hi[r] {
				hi[r] = phi[p]
			}
		}
	}
	for r := 0; r < n; r++ {
		if lo[r] != 0 || hi[r] != width {
			return nil, fmt.Errorf("mpi: rank %d covers [%d,%d) of %d after allgather", r, lo[r], hi[r], width)
		}
	}
	return buf, nil
}
