package mpi

import (
	"math"
	"math/rand"
	"testing"
)

func TestRingAllGather(t *testing.T) {
	for _, n := range []int{2, 3, 8, 18, 32} {
		contrib := make([][]float64, n)
		for r := range contrib {
			contrib[r] = []float64{float64(r), float64(r * r)}
		}
		out, err := RingAllGather(contrib)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r := 0; r < n; r++ {
			for seg := 0; seg < n; seg++ {
				if out[r][seg][0] != float64(seg) || out[r][seg][1] != float64(seg*seg) {
					t.Fatalf("n=%d: rank %d segment %d = %v", n, r, seg, out[r][seg])
				}
			}
		}
	}
}

func TestRingAllGatherEmpty(t *testing.T) {
	if _, err := RingAllGather(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestHalvingDoublingAllReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 4, 8, 16, 32} {
		width := n * 3
		contrib := make([][]float64, n)
		want := make([]float64, width)
		for r := range contrib {
			contrib[r] = make([]float64, width)
			for j := range contrib[r] {
				contrib[r][j] = float64(rng.Intn(100)) / 4
				want[j] += contrib[r][j]
			}
		}
		out, err := HalvingDoublingAllReduce(contrib)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r := 0; r < n; r++ {
			for j := 0; j < width; j++ {
				if math.Abs(out[r][j]-want[j]) > 1e-9 {
					t.Fatalf("n=%d rank %d elem %d = %v, want %v", n, r, j, out[r][j], want[j])
				}
			}
		}
	}
}

func TestHalvingDoublingValidation(t *testing.T) {
	if _, err := HalvingDoublingAllReduce(nil); err == nil {
		t.Error("empty accepted")
	}
	bad := make([][]float64, 3) // not a power of two
	for i := range bad {
		bad[i] = make([]float64, 6)
	}
	if _, err := HalvingDoublingAllReduce(bad); err == nil {
		t.Error("non-pow2 accepted")
	}
	odd := make([][]float64, 4)
	for i := range odd {
		odd[i] = make([]float64, 5) // 5 not divisible by 4
	}
	if _, err := HalvingDoublingAllReduce(odd); err == nil {
		t.Error("indivisible width accepted")
	}
	ragged := make([][]float64, 4)
	for i := range ragged {
		ragged[i] = make([]float64, 8)
	}
	ragged[2] = make([]float64, 4)
	if _, err := HalvingDoublingAllReduce(ragged); err == nil {
		t.Error("ragged accepted")
	}
}
